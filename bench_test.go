// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§VI), plus the A1-A5 ablations. Each benchmark runs the
// full measurement campaign and reports the paper's headline metrics as
// custom benchmark outputs, so
//
//	go test -bench=. -benchmem
//
// regenerates every artefact. Campaigns run at the paper-scale 1000
// runs (matching cmd/dsrsim -all) — affordable since the hot-path
// optimisation pass (DESIGN.md §8); set -benchtime=1x (the default
// behaviour here — campaigns ignore b.N beyond the first iteration).
package dsr_test

import (
	"sync"
	"testing"

	"dsr/internal/experiments"
	"dsr/internal/mbpta"
	"dsr/internal/platform"
	"dsr/internal/prng"
	"dsr/internal/stats"
	"dsr/internal/telemetry"
)

// benchRuns is the per-configuration campaign size used by benchmarks.
// After the hot-path optimisation pass this matches the paper-scale 1000
// runs (§VI): a full campaign now completes in roughly the wall time 400
// runs took before, so the benchmarks exercise the real experiment size.
const benchRuns = 1000

func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.Runs = benchRuns
	cfg.MBPTA.BlockSize = 40
	return cfg
}

// Campaigns are expensive and shared by several benchmarks; memoise them.
var (
	campaignOnce sync.Once
	baseSeries   *experiments.Series
	dsrSeries    *experiments.Series
	campaignErr  error
)

func campaigns(b *testing.B) (*experiments.Series, *experiments.Series) {
	b.Helper()
	campaignOnce.Do(func() {
		cfg := benchConfig()
		baseSeries, campaignErr = experiments.RunBaseline(cfg)
		if campaignErr != nil {
			return
		}
		dsrSeries, campaignErr = experiments.RunDSR(cfg)
	})
	if campaignErr != nil {
		b.Fatal(campaignErr)
	}
	return baseSeries, dsrSeries
}

// BenchmarkTable1_PerformanceCounters regenerates Table I: the
// performance-counter comparison between the original and the
// software-randomised binary.
func BenchmarkTable1_PerformanceCounters(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, dsr := campaigns(b)
		rows := experiments.Table1(base, dsr)
		if i == 0 {
			b.Logf("\n%s", experiments.FormatTable1(rows))
			bi, di := base.Results[0].PMCs, dsr.Results[0].PMCs
			b.ReportMetric(float64(di.Instr-bi.Instr)/float64(bi.Instr)*100, "instr-overhead-%")
			b.ReportMetric(float64(di.FPU), "fpu-ops")
			b.ReportMetric(float64(base.Results[0].Cycles)/float64(bi.Instr), "base-cpi")
			b.ReportMetric(float64(dsr.Results[0].Cycles)/float64(di.Instr), "dsr-cpi")
			b.ReportMetric(di.L2MissRatio(), "dsr-l2-miss-ratio")
		}
	}
}

// BenchmarkFigure2_MinAvgMax regenerates Fig. 2: the min/average/max
// execution-time comparison.
func BenchmarkFigure2_MinAvgMax(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, dsr := campaigns(b)
		bars := experiments.Figure2(base, dsr)
		if i == 0 {
			b.Logf("\n%s", experiments.FormatFigure2(bars))
			b.ReportMetric(bars[1].Mean/bars[0].Mean, "dsr/base-avg-ratio")
			b.ReportMetric(bars[1].Max/bars[0].Max, "dsr/base-max-ratio")
			b.ReportMetric((bars[1].Mean/bars[0].Mean-1)*100, "dsr-overhead-%")
		}
	}
}

// BenchmarkFigure3_PWCETCurve regenerates Fig. 3: the pWCET curve of the
// DSR binary with the estimate at 1e-15.
func BenchmarkFigure3_PWCETCurve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, dsr := campaigns(b)
		rep, err := experiments.Figure3(dsr, benchConfig().MBPTA)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.RenderFigure3(dsr, rep))
			b.ReportMetric(rep.PWCET, "pwcet-cycles")
			b.ReportMetric((rep.PWCET/rep.MOET-1)*100, "pwcet-over-moet-%")
		}
	}
}

// BenchmarkIID_Verification regenerates the E4 result: the Ljung-Box and
// Kolmogorov-Smirnov p-values of the DSR execution-time series.
func BenchmarkIID_Verification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, dsr := campaigns(b)
		rep, err := mbpta.CheckIID(dsr.Cycles, benchConfig().MBPTA)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", experiments.FormatIID(rep))
			b.ReportMetric(rep.LjungBox.PValue, "ljung-box-p")
			b.ReportMetric(rep.KS.PValue, "ks-p")
			if !rep.Pass() {
				b.Log("note: this campaign failed the 5% gate (expected for ~10% of seeds)")
			}
		}
	}
}

// BenchmarkMargin_VsIndustrialPractice regenerates the E5 result: the
// pWCET estimate against MOET + 20% engineering margin.
func BenchmarkMargin_VsIndustrialPractice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		base, dsr := campaigns(b)
		rep, err := experiments.Figure3(dsr, benchConfig().MBPTA)
		if err != nil {
			b.Fatal(err)
		}
		_, _, moetRef := base.MinMeanMax()
		mc := mbpta.CompareWithMargin(rep, moetRef, 0.20)
		if i == 0 {
			b.Logf("\n%s", experiments.FormatMargin(mc, rep.MOET))
			b.ReportMetric(mc.Gain*100, "gain-vs-margin-%")
		}
	}
}

// BenchmarkAblationEagerLazy is A1: eager vs lazy relocation. Lazy pays
// the relocation inside the measured window, which is why the paper's
// port chose eager (§III.B.1).
func BenchmarkAblationEagerLazy(b *testing.B) {
	cfg := benchConfig()
	cfg.Runs = 100
	for i := 0; i < b.N; i++ {
		eager, err := experiments.RunDSR(cfg)
		if err != nil {
			b.Fatal(err)
		}
		lazy, err := experiments.RunDSRLazy(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			_, em, _ := eager.MinMeanMax()
			_, lm, _ := lazy.MinMeanMax()
			b.ReportMetric(em, "eager-avg-cycles")
			b.ReportMetric(lm, "lazy-avg-cycles")
			b.ReportMetric((lm/em-1)*100, "lazy-penalty-%")
		}
	}
}

// BenchmarkAblationOffsetBound is A2: bounding placement offsets by the
// L1 way size instead of the L2's (§III.B.4). The smaller bound leaves
// the L2 layout under-randomised: less variability is exposed.
func BenchmarkAblationOffsetBound(b *testing.B) {
	cfg := benchConfig()
	cfg.Runs = 150
	dl1 := platform.ProximaLEON3().DL1
	for i := 0; i < b.N; i++ {
		l2bound, err := experiments.RunDSR(cfg)
		if err != nil {
			b.Fatal(err)
		}
		l1bound, err := experiments.RunDSRWithOffsetBound(cfg, dl1.WaySize(), "L1-way bound")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(stats.StdDev(l2bound.Cycles), "l2-bound-stddev")
			b.ReportMetric(stats.StdDev(l1bound.Cycles), "l1-bound-stddev")
		}
	}
}

// BenchmarkAblationPRNG is A3: MWC vs LFSR as the randomisation source
// (§III.B.3). Both must produce statistically equivalent campaigns.
func BenchmarkAblationPRNG(b *testing.B) {
	cfg := benchConfig()
	cfg.Runs = 150
	for i := 0; i < b.N; i++ {
		mwc, err := experiments.RunDSRWithPRNG(cfg, func() prng.Source { return prng.NewMWC(1) }, "MWC")
		if err != nil {
			b.Fatal(err)
		}
		lfsr, err := experiments.RunDSRWithPRNG(cfg, func() prng.Source { return prng.NewLFSR(1) }, "LFSR")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			ks, err := stats.KolmogorovSmirnov2(mwc.Cycles, lfsr.Cycles)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(stats.Mean(mwc.Cycles), "mwc-avg-cycles")
			b.ReportMetric(stats.Mean(lfsr.Cycles), "lfsr-avg-cycles")
			b.ReportMetric(ks.PValue, "same-distribution-ks-p")
		}
	}
}

// BenchmarkAblationHWRand is A4: the hardware time-randomised platform
// the software randomisation substitutes for.
func BenchmarkAblationHWRand(b *testing.B) {
	cfg := benchConfig()
	cfg.Runs = 200
	for i := 0; i < b.N; i++ {
		hw, err := experiments.RunHWRand(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			_, mean, max := hw.MinMeanMax()
			b.ReportMetric(mean, "hw-avg-cycles")
			b.ReportMetric(max, "hw-moet-cycles")
		}
	}
}

// BenchmarkAblationStatic is A5: static (TASA-like) software
// randomisation — zero runtime overhead, one binary per layout.
func BenchmarkAblationStatic(b *testing.B) {
	cfg := benchConfig()
	cfg.Runs = 150
	for i := 0; i < b.N; i++ {
		static, err := experiments.RunStatic(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			_, mean, _ := static.MinMeanMax()
			b.ReportMetric(mean, "static-avg-cycles")
			b.ReportMetric(float64(static.Results[0].PMCs.Instr), "static-instr")
		}
	}
}

// BenchmarkSimulatorThroughput measures the substrate itself: simulated
// control-task runs per second (useful when sizing campaigns).
func BenchmarkSimulatorThroughput(b *testing.B) {
	cfg := benchConfig()
	cfg.Runs = 1
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunBaseline(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAttributionProfiler runs the control task with the cycle-
// attribution profiler enabled and reports where the cycles go: CPI, the
// L2 miss ratio, and the memory-stall share of the run. Comparing ns/op
// against BenchmarkSimulatorThroughput gives the profiler's host-side
// cost (the simulated cycle count is identical by construction).
func BenchmarkAttributionProfiler(b *testing.B) {
	cfg := benchConfig()
	cfg.Runs = 1
	cfg.Attribution = true
	for i := 0; i < b.N; i++ {
		s, err := experiments.RunBaseline(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res := s.Results[0]
			b.ReportMetric(float64(res.Cycles)/float64(res.PMCs.Instr), "cycles-per-instr")
			b.ReportMetric(res.PMCs.L2MissRatio(), "l2-miss-ratio")
			att := res.Attribution
			if !att.Valid || att.Total() == 0 {
				b.Fatal("attribution snapshot missing")
			}
			memStall := att.Component(telemetry.CompIL1) + att.Component(telemetry.CompDL1) +
				att.Component(telemetry.CompBus) + att.Component(telemetry.CompL2) +
				att.Component(telemetry.CompDRAM) + att.Component(telemetry.CompStorePath)
			b.ReportMetric(float64(memStall)/float64(att.Total())*100, "mem-stall-%")
		}
	}
}

// BenchmarkTelemetryDisabled proves the zero-overhead-when-disabled
// claim: every telemetry entry point on the nil (disabled) receivers
// must complete without allocating. The 0 B/op, 0 allocs/op columns of
// this benchmark are the claim's evidence; the noop-allocs metric
// cross-checks it with testing.AllocsPerRun.
func BenchmarkTelemetryDisabled(b *testing.B) {
	var att *telemetry.Attribution
	var log *telemetry.EventLog
	var reg *telemetry.Registry
	noop := func() {
		att.Charge(telemetry.CompBaseIssue, 1)
		prev, eff := att.SetOverride(telemetry.CompWindowTrap)
		att.Rebate(eff, 1)
		att.ClearOverride(prev)
		att.Suspend()
		att.Resume()
		att.Reset()
		_ = att.Total()
		log.Emit("track", "kind", telemetry.PhaseInstant)
		reg.Counter("c", nil).Add(1)
		reg.Gauge("g", nil).Set(1)
		reg.Histogram("h", nil, nil).Observe(1)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		noop()
	}
	b.StopTimer()
	b.ReportMetric(testing.AllocsPerRun(1000, noop), "noop-allocs")
}
