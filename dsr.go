// Package dsr is the public face of the PROXIMA dynamic software
// randomisation (DSR) reproduction: a LEON3-like timing-simulation
// platform, a toolchain for small SPARC-flavoured programs, the DSR
// compiler pass and runtime, and the MBPTA analysis pipeline (i.i.d.
// gate, EVT fit, pWCET estimation), after Cros, Kosmidis et al.,
// "Dynamic Software Randomisation: Lessons Learned From an Aerospace
// Case Study", DATE 2017.
//
// Typical workflow (see examples/quickstart):
//
//	p := ...                              // build a Program
//	plat := dsr.NewPlatform()             // the PROXIMA LEON3 target
//	rt, _ := dsr.NewRuntime(p, plat, dsr.Options{})
//	times := []float64{}
//	for i := 0; i < 1000; i++ {           // measurement protocol, §IV-V
//		rt.Reboot(uint64(i))              // fresh random layout
//		res, _ := rt.Run()
//		times = append(times, float64(res.Cycles))
//	}
//	rep, _ := dsr.Analyse(times)          // MBPTA
//	fmt.Println(rep.PWCET)                // pWCET @ 1e-15
package dsr

import (
	"dsr/internal/analysis"
	"dsr/internal/core"
	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/mbpta"
	"dsr/internal/mem"
	"dsr/internal/platform"
	"dsr/internal/prog"
	"dsr/internal/rvs"
	"dsr/internal/spaceapp"
)

// Program construction (the IR the toolchain consumes).
type (
	// Program is a linkable unit: functions, data objects, entry point.
	Program = prog.Program
	// Function is one routine in the IR.
	Function = prog.Function
	// DataObject is one global data region.
	DataObject = prog.DataObject
	// Builder assembles a function with symbolic labels.
	Builder = prog.Builder
)

// Re-exported builder entry points.
var (
	// NewFunc starts a non-leaf function with a frame.
	NewFunc = prog.NewFunc
	// NewLeaf starts a leaf function.
	NewLeaf = prog.NewLeaf
)

// MinFrame is the smallest legal stack frame (SPARC v8 ABI).
const MinFrame = prog.MinFrame

// Platform and execution.
type (
	// Platform is the assembled LEON3-like machine.
	Platform = platform.Platform
	// PlatformConfig describes a platform variant.
	PlatformConfig = platform.Config
	// RunResult is one measured run: cycles, counters, trace.
	RunResult = platform.RunResult
	// PMCs are the performance-monitoring counters of Table I.
	PMCs = platform.PMCs
	// Image is a loaded executable.
	Image = loader.Image
)

// NewPlatform builds the paper's target: the PROXIMA LEON3 with COTS
// (modulo-placement, LRU) caches — the platform DSR makes analysable.
func NewPlatform() *Platform { return platform.New(platform.ProximaLEON3()) }

// NewHWRandPlatform builds the hardware time-randomised variant used for
// comparison: random placement and replacement in every cache.
func NewHWRandPlatform() *Platform { return platform.New(platform.HWRandLEON3()) }

// LoadSequential lays a program out the way a conventional linker does
// (the non-randomised baseline) and returns the image.
func LoadSequential(p *Program) (*Image, error) {
	return loader.Load(p, loader.DefaultSequentialConfig())
}

// The DSR core.
type (
	// Runtime is the DSR runtime bound to a platform: Reboot draws a
	// fresh random layout, Run performs one measured execution.
	Runtime = core.Runtime
	// Options configures the DSR runtime (offset bounds, relocation
	// mode, PRNG).
	Options = core.Options
	// BootStats reports what one re-randomisation did.
	BootStats = core.BootStats
	// PassStats reports the compiler pass's code growth.
	PassStats = core.PassStats
)

// Relocation modes (§III.B.1).
const (
	// Eager relocates all functions at boot (the paper's choice).
	Eager = core.Eager
	// Lazy relocates at first call — inside the measured window.
	Lazy = core.Lazy
)

// NewRuntime runs the DSR compiler pass on p and binds the runtime to
// plat. Call Reboot before every measured run.
func NewRuntime(p *Program, plat *Platform, opts Options) (*Runtime, error) {
	return core.NewRuntime(p, plat, opts)
}

// StaticBuild produces one statically randomised binary (the TASA-like
// variant): link-time layout randomisation with zero runtime overhead.
func StaticBuild(p *Program, offsetBound int, seed uint64) (*Image, error) {
	return core.StaticBuild(p, loader.DefaultSequentialConfig(), offsetBound, seed)
}

// MBPTA analysis.
type (
	// Report is a complete MBPTA analysis result.
	Report = mbpta.Report
	// AnalysisOptions configures the MBPTA pipeline.
	AnalysisOptions = mbpta.Options
	// IIDReport is the i.i.d. gate outcome.
	IIDReport = mbpta.IIDReport
	// MarginComparison compares a pWCET against MOET + margin.
	MarginComparison = mbpta.MarginComparison
)

// Analyse runs MBPTA with the paper's defaults (5% significance, block
// size 50, target exceedance 1e-15) on a series of execution times.
func Analyse(times []float64) (*Report, error) {
	return mbpta.Analyse(times, mbpta.DefaultOptions())
}

// AnalyseWith runs MBPTA with explicit options.
func AnalyseWith(times []float64, opts AnalysisOptions) (*Report, error) {
	return mbpta.Analyse(times, opts)
}

// DefaultAnalysisOptions returns the paper's analysis configuration.
func DefaultAnalysisOptions() AnalysisOptions { return mbpta.DefaultOptions() }

// CompareWithMargin compares a report's pWCET against the industrial
// practice of MOET + margin on the reference (non-randomised) binary.
func CompareWithMargin(rep *Report, moetRef, margin float64) MarginComparison {
	return mbpta.CompareWithMargin(rep, moetRef, margin)
}

// RenderCurve draws the pWCET plot (Fig. 3) as text.
func RenderCurve(rep *Report, times []float64) string {
	return rvs.RenderCurve(rep, times, 72, 18)
}

// Static analysis and verification (internal/analysis).
type (
	// Diagnostic is one static-analysis finding.
	Diagnostic = analysis.Diagnostic
	// Severity ranks a diagnostic (Info, Warning, Error).
	Severity = analysis.Severity
)

// Diagnostic severities.
const (
	Info    = analysis.Info
	Warning = analysis.Warning
	Error   = analysis.Error
)

// Lint runs the standard static-analysis passes (reserved registers,
// return shapes, alignment, frame conventions, unreachable code, dead
// stores) over a program.
func Lint(p *Program) []Diagnostic {
	return analysis.Run(p, analysis.DefaultPasses(), nil)
}

// Verify checks every invariant of the DSR transformation a runtime is
// about to execute: all direct calls indirected through the function
// table, all prologues carrying the stack-offset load, tables complete
// and index-consistent, branch displacements remapped. Run it before a
// measurement campaign — a malformed rewrite breaks the i.i.d. premise
// without breaking the program visibly.
func Verify(orig *Program, rt *Runtime) []Diagnostic {
	return analysis.VerifyTransform(orig, rt.Program(), analysis.TransformInfo{
		FTableSym:  core.FTableSym,
		OffsetsSym: core.OffsetsSym,
		Funcs:      rt.Metadata().Funcs,
	})
}

// HasErrors reports whether any diagnostic is Error-level.
func HasErrors(ds []Diagnostic) bool { return analysis.HasErrors(ds) }

// The space case study (§IV).

// BuildControlTask constructs the high-criticality active-optics control
// task, the paper's unit of analysis.
func BuildControlTask() (*Program, error) { return spaceapp.BuildControl() }

// BuildProcessingTask constructs the low-criticality image-processing
// task (12×12 lenses of 34×34 pixels, ~70% lit).
func BuildProcessingTask() (*Program, error) { return spaceapp.BuildProcessing() }

// Addr is a simulated physical address; DataObject sizes and bases use it.
type Addr = mem.Addr

// Cycles counts simulated processor cycles.
type Cycles = mem.Cycles

// Reg is an integer register name for builder code.
type Reg = isa.Reg

// FReg is a floating-point register name for builder code.
type FReg = isa.FReg
