// Spacestudy walks through the paper's full case study (§IV-VI): the
// mixed-criticality active-optics software hosted in two PikeOS-like
// partitions, the measurement protocol, and the timing analysis of the
// high-criticality control task.
package main

import (
	"fmt"
	"log"
	"math"

	"dsr"
	"dsr/internal/core"
	"dsr/internal/platform"
	"dsr/internal/rtos"
	"dsr/internal/sched"
	"dsr/internal/spaceapp"
)

func main() {
	// --- Part 1: the hosted system under the partition scheduler -----
	fmt.Println("== Part 1: two partitions under the cyclic executive ==")

	// Processing partition (low criticality, 100 ms period).
	procProg, err := spaceapp.BuildProcessing()
	check(err)
	procPlat := platform.New(platform.ProximaLEON3())
	procImg, err := dsr.LoadSequential(procProg)
	check(err)
	procPlat.LoadImage(procImg)
	scene := spaceapp.GenScene(1, spaceapp.LitFraction)
	check(spaceapp.ApplyScene(procPlat.Mem, procImg, scene))

	// Control partition (high criticality, 1 s period) under DSR.
	ctrlProg, err := spaceapp.BuildControl()
	check(err)
	ctrlPlat := platform.New(platform.ProximaLEON3())
	rt, err := core.NewRuntime(ctrlProg, ctrlPlat, core.Options{})
	check(err)

	proc := &rtos.Partition{
		Name:         "processing",
		Criticality:  rtos.LowCriticality,
		Runner:       rtos.NewImageRunner(procPlat),
		PeriodMillis: 100,
	}
	ctrl := &rtos.Partition{
		Name:         "control",
		Criticality:  rtos.HighCriticality,
		Runner:       rtos.NewDSRRunner(rt, 1),
		PeriodMillis: 1000,
	}
	executive, err := rtos.NewScheduler(rtos.DefaultConfig(), []rtos.Window{
		{Partition: proc, OffsetMillis: 0, BudgetMillis: 60},
		{Partition: ctrl, OffsetMillis: 100, BudgetMillis: 200},
	})
	check(err)

	acts, err := executive.RunMajorFrames(3)
	check(err)
	for _, a := range acts {
		status := "completed"
		if a.Overrun() {
			status = "OVERRUN (cut by temporal isolation)"
		}
		fmt.Printf("  frame %d  %-11s (%s crit)  %8d cycles / budget %8d  %s\n",
			a.MajorFrame, a.Partition, a.Criticality, a.Cycles, a.Budget, status)
	}
	ref := spaceapp.ProcessingReference(scene)
	fmt.Printf("  processing: %d/%d lenses lit, RMS wavefront error %.4f px\n\n",
		ref.Lit, spaceapp.NumLenses, math.Float32frombits(ref.RMSBits))

	// --- Part 2: the control task's timing analysis ------------------
	fmt.Println("== Part 2: MBPTA of the control task (the unit of analysis) ==")
	const runs = 1000
	fmt.Printf("  collecting %d DSR measurement runs (reboot + fresh input each)...\n", runs)
	var times []float64
	for i := 0; i < runs; i++ {
		_, err := rt.Reboot(uint64(i) + 1)
		check(err)
		in := spaceapp.GenControlInput(9000 + uint64(i))
		check(spaceapp.ApplyControlInput(ctrlPlat.Mem, rt.Image(), in))
		res, err := rt.Run()
		check(err)
		if res.ExitValue != spaceapp.ControlReference(in) {
			log.Fatalf("run %d: functional mismatch under DSR", i)
		}
		times = append(times, float64(res.Cycles))
	}
	rep, err := dsr.Analyse(times)
	check(err)
	fmt.Printf("  i.i.d.: Ljung-Box p=%.3f, KS p=%.3f → %v\n",
		rep.IID.LjungBox.PValue, rep.IID.KS.PValue, rep.IID.Pass())
	fmt.Printf("  MOET=%.0f  pWCET@1e-15=%.0f (+%.2f%%)\n\n",
		rep.MOET, rep.PWCET, (rep.PWCET/rep.MOET-1)*100)
	fmt.Print(dsr.RenderCurve(rep, times))

	// --- Part 3: the other half of timing V&V — scheduling analysis ---
	fmt.Println("\n== Part 3: scheduling analysis with the derived bounds ==")
	procWCET := float64(acts[0].Cycles) * 1.2 // processing: MOET + 20% (low crit)
	tasks := []sched.Task{
		{Name: "control (pWCET)", PeriodMillis: 1000, WCETCycles: rep.PWCET, WindowBudgetMillis: 30},
		{Name: "processing (MOET+20%)", PeriodMillis: 100, WCETCycles: procWCET, WindowBudgetMillis: 60},
	}
	srep, err := sched.Check(tasks, rtos.DefaultConfig().CyclesPerMilli)
	check(err)
	for _, r := range srep.Results {
		fmt.Printf("  %-24s bound=%-9.0f window=%-9.0f slack=%-9.0f fits=%v\n",
			r.Task.Name, r.Task.WCETCycles, r.BudgetCycles, r.SlackCycles, r.Fits)
	}
	hyper, packs, err := sched.HyperperiodFit(tasks)
	check(err)
	fmt.Printf("  hyperperiod %dms, windows pack=%v, utilisation=%.2f%%, schedulable=%v\n",
		hyper, packs, srep.TotalUtilisation*100, srep.Schedulable)
	fmt.Printf("  min window for the control task at its pWCET: %dms\n",
		sched.MinWindow(rep.PWCET, rtos.DefaultConfig().CyclesPerMilli))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
