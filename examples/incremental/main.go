// Incremental demonstrates the integration problem of §II: with caches,
// the memory position — and therefore the cache alignment — of already
// integrated and verified software shifts whenever a new module is
// linked in, silently invalidating previously derived WCET estimates.
// DSR breaks the link between memory position and cache placement, so
// its timing distribution (and the pWCET bound on it) is stable across
// integrations.
package main

import (
	"fmt"
	"log"

	"dsr"
	"dsr/internal/isa"
	"dsr/internal/spaceapp"
	"dsr/internal/stats"
)

const runs = 400

// integrationStep returns the control program with extraKB of unrelated
// newly-integrated code and data linked IN FRONT of the verified
// software, shifting everything downstream.
func integrationStep(extraKB int) *dsr.Program {
	p, err := dsr.BuildControlTask()
	check(err)
	if extraKB == 0 {
		return p
	}
	instrs := extraKB * 1024 / 4
	b := dsr.NewFunc("new_module", dsr.MinFrame).Prologue()
	for i := 0; i < instrs-3; i++ {
		b.AddI(isa.L0, isa.L0, 1)
	}
	b.Epilogue()
	newFn := b.MustBuild()
	newData := &dsr.DataObject{Name: "new_module_buf", Size: dsr.Addr(extraKB) * 1024, Align: 8}

	// Link the new module where an incremental build's object-file order
	// would put it: its code ahead of the verified code, its data among
	// the existing data sections. Inserting data mid-map shifts the
	// relative cache alignment of everything behind it — here, the EDAC
	// scrub window relative to the control-law tables.
	q := &dsr.Program{Name: p.Name, Entry: p.Entry}
	check(q.AddFunction(newFn))
	for _, f := range p.Functions {
		check(q.AddFunction(f))
	}
	for _, d := range p.Data {
		if d.Name == spaceapp.SymReserved {
			check(q.AddData(newData))
		}
		check(q.AddData(d))
	}
	return q
}

func measureBaseline(p *dsr.Program) []float64 {
	img, err := dsr.LoadSequential(p)
	check(err)
	plat := dsr.NewPlatform()
	plat.LoadImage(img)
	var times []float64
	for i := 0; i < runs; i++ {
		plat.Reload()
		in := spaceapp.GenControlInput(9000 + uint64(i))
		check(spaceapp.ApplyControlInput(plat.Mem, img, in))
		res, err := plat.Run()
		check(err)
		times = append(times, float64(res.Cycles))
	}
	return times
}

func measureDSR(p *dsr.Program) []float64 {
	plat := dsr.NewPlatform()
	rt, err := dsr.NewRuntime(p, plat, dsr.Options{})
	check(err)
	var times []float64
	for i := 0; i < runs; i++ {
		_, err := rt.Reboot(uint64(i) + 1)
		check(err)
		in := spaceapp.GenControlInput(9000 + uint64(i))
		check(spaceapp.ApplyControlInput(plat.Mem, rt.Image(), in))
		res, err := rt.Run()
		check(err)
		times = append(times, float64(res.Cycles))
	}
	return times
}

func main() {
	steps := []int{0, 1, 3, 7} // KB of newly integrated code per step
	fmt.Printf("incremental integration of the verified control task (%d runs each):\n\n", runs)
	fmt.Printf("%-28s %-30s %s\n", "", "fixed layout (baseline)", "DSR")
	fmt.Printf("%-28s %-10s %-10s %-9s %-10s %-10s\n",
		"integration step", "mean", "MOET", "", "mean", "MOET")

	var baseMeans, dsrMeans []float64
	for _, kb := range steps {
		p := integrationStep(kb)
		bt := measureBaseline(p)
		dt := measureDSR(p)
		bm, dm := stats.Mean(bt), stats.Mean(dt)
		baseMeans = append(baseMeans, bm)
		dsrMeans = append(dsrMeans, dm)
		fmt.Printf("+%2d KB new module linked    %-10.0f %-10.0f %-9s %-10.0f %-10.0f\n",
			kb, bm, stats.Max(bt), "", dm, stats.Max(dt))
	}

	spread := func(xs []float64) float64 {
		return (stats.Max(xs) - stats.Min(xs)) / stats.Mean(xs) * 100
	}
	fmt.Printf("\nmean execution time drift across integrations:\n")
	fmt.Printf("  fixed layout: %.2f%%   (previously derived WCET estimates invalidated)\n", spread(baseMeans))
	fmt.Printf("  DSR:          %.2f%%   (distribution stable: estimates survive integration)\n", spread(dsrMeans))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
