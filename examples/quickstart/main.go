// Quickstart: build a small program, randomise it with DSR, collect a
// measurement campaign, and derive a pWCET estimate with MBPTA.
package main

import (
	"fmt"
	"log"

	"dsr"
	"dsr/internal/isa"
)

func main() {
	// 1. A small workload: sum a table through a helper function.
	table := &dsr.DataObject{Name: "table", Size: 256 * 4}
	helper := dsr.NewLeaf("load").
		Ld(isa.O0, isa.O0, 0).
		RetLeaf().
		MustBuild()
	main_ := dsr.NewFunc("main", dsr.MinFrame).
		Prologue().
		MovI(isa.L0, 0). // i
		MovI(isa.L1, 0). // sum
		Set(isa.L2, "table").
		Label("loop").
		SllI(isa.L3, isa.L0, 2).
		Add(isa.O0, isa.L2, isa.L3).
		Call("load").
		Add(isa.L1, isa.L1, isa.O0).
		AddI(isa.L0, isa.L0, 1).
		CmpI(isa.L0, 256).
		Bl("loop").
		Mov(isa.O0, isa.L1).
		Halt().
		MustBuild()

	p := &dsr.Program{Name: "quickstart", Entry: "main"}
	check(p.AddData(table))
	check(p.AddFunction(main_))
	check(p.AddFunction(helper))

	// 2. Bind the DSR runtime to the PROXIMA LEON3 platform, then verify
	// the transformation before trusting any measurement: MBPTA's i.i.d.
	// argument only holds if the rewrite is well-formed.
	plat := dsr.NewPlatform()
	rt, err := dsr.NewRuntime(p, plat, dsr.Options{})
	check(err)
	if diags := dsr.Verify(p, rt); dsr.HasErrors(diags) {
		for _, d := range diags {
			fmt.Println(d)
		}
		log.Fatal("DSR transform verification failed")
	}

	// 3. Measurement protocol: reboot (fresh random layout) before every
	// run, collect the execution times.
	var times []float64
	for i := 0; i < 1000; i++ {
		_, err := rt.Reboot(uint64(i) + 1)
		check(err)
		res, err := rt.Run()
		check(err)
		times = append(times, float64(res.Cycles))
	}

	// 4. MBPTA: i.i.d. gate, EVT fit, pWCET estimate.
	rep, err := dsr.Analyse(times)
	check(err)
	fmt.Printf("runs: %d   min=%.0f  mean=%.0f  MOET=%.0f cycles\n",
		rep.N, rep.Min, rep.Mean, rep.MOET)
	fmt.Printf("i.i.d.: Ljung-Box p=%.3f, KS p=%.3f\n",
		rep.IID.LjungBox.PValue, rep.IID.KS.PValue)
	fmt.Printf("pWCET @ 1e-15 = %.0f cycles (+%.2f%% over MOET)\n\n",
		rep.PWCET, (rep.PWCET/rep.MOET-1)*100)
	fmt.Print(dsr.RenderCurve(rep, times))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
