// Hwrand compares the two roads to MBPTA compliance the paper discusses
// (§I, §III): hardware time-randomised caches versus dynamic software
// randomisation on stock COTS caches. Both must yield i.i.d. execution
// times and comparable pWCET estimates; DSR's price is a small runtime
// overhead, hardware's is silicon that does not exist off the shelf.
package main

import (
	"fmt"
	"log"

	"dsr"
	"dsr/internal/spaceapp"
)

const runs = 600

func main() {
	prog, err := dsr.BuildControlTask()
	check(err)

	// --- Software randomisation on the COTS platform -----------------
	swPlat := dsr.NewPlatform()
	rt, err := dsr.NewRuntime(prog, swPlat, dsr.Options{})
	check(err)
	var sw []float64
	for i := 0; i < runs; i++ {
		_, err := rt.Reboot(uint64(i) + 1)
		check(err)
		in := spaceapp.GenControlInput(9000 + uint64(i))
		check(spaceapp.ApplyControlInput(swPlat.Mem, rt.Image(), in))
		res, err := rt.Run()
		check(err)
		sw = append(sw, float64(res.Cycles))
	}

	// --- Hardware randomisation, unmodified binary -------------------
	hwPlat := dsr.NewHWRandPlatform()
	img, err := dsr.LoadSequential(prog)
	check(err)
	hwPlat.LoadImage(img)
	var hw []float64
	for i := 0; i < runs; i++ {
		hwPlat.ReseedCaches(uint64(i) + 1)
		hwPlat.Reload()
		in := spaceapp.GenControlInput(9000 + uint64(i))
		check(spaceapp.ApplyControlInput(hwPlat.Mem, img, in))
		res, err := hwPlat.Run()
		check(err)
		hw = append(hw, float64(res.Cycles))
	}

	opts := dsr.DefaultAnalysisOptions()
	report := func(name string, times []float64) {
		rep, err := dsr.AnalyseWith(times, opts)
		if err != nil {
			fmt.Printf("%-10s MBPTA not applicable: %v\n", name, err)
			return
		}
		fmt.Printf("%-10s mean=%-9.0f MOET=%-9.0f pWCET@1e-15=%-9.0f (+%.2f%%)  LB p=%.3f KS p=%.3f\n",
			name, rep.Mean, rep.MOET, rep.PWCET, (rep.PWCET/rep.MOET-1)*100,
			rep.IID.LjungBox.PValue, rep.IID.KS.PValue)
	}
	fmt.Printf("control task, %d runs per configuration:\n", runs)
	report("Sw Rand", sw)
	report("Hw Rand", hw)
	fmt.Println("\nBoth configurations expose cache jitter as i.i.d. variability;")
	fmt.Println("DSR achieves it without modified silicon (the paper's motivation).")
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
