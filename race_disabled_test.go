//go:build !race

package dsr_test

// raceEnabled reports whether the race detector is compiled in; timing
// assertions are skipped under -race because instrumentation distorts
// the sequential/parallel ratio.
const raceEnabled = false
