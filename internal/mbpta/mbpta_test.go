package mbpta

import (
	"errors"
	"math"
	"testing"

	"dsr/internal/prng"
)

// iidSample produces light-tailed i.i.d. execution times around base.
func iidSample(seed uint64, n int) []float64 {
	src := prng.NewMWC(seed)
	out := make([]float64, n)
	for i := range out {
		// Sum of uniforms → approximately normal, strictly bounded.
		var s float64
		for k := 0; k < 8; k++ {
			s += prng.Float64(src)
		}
		out[i] = 300000 + 2000*s
	}
	return out
}

func TestAnalyseIIDSample(t *testing.T) {
	times := iidSample(1, 1000)
	rep, err := Analyse(times, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IID.Pass() {
		t.Fatalf("i.i.d. gate failed: LB p=%f KS p=%f", rep.IID.LjungBox.PValue, rep.IID.KS.PValue)
	}
	if rep.PWCET <= rep.MOET {
		t.Errorf("pWCET %f does not upper-bound MOET %f", rep.PWCET, rep.MOET)
	}
	if rep.N != 1000 || rep.Min >= rep.MOET || rep.Mean <= rep.Min || rep.Mean >= rep.MOET {
		t.Errorf("descriptives wrong: %+v", rep)
	}
	if len(rep.Curve) != 16 {
		t.Errorf("curve points=%d, want 16", len(rep.Curve))
	}
	if !rep.Converged {
		t.Error("1000-run stationary sample should be converged")
	}
}

func TestAnalyseRejectsAutocorrelated(t *testing.T) {
	src := prng.NewMWC(2)
	times := make([]float64, 1000)
	x := 0.0
	for i := range times {
		x = 0.95*x + prng.Float64(src)
		times[i] = 300000 + 1000*x
	}
	rep, err := Analyse(times, DefaultOptions())
	if !errors.Is(err, ErrNotIID) {
		t.Fatalf("err=%v, want ErrNotIID", err)
	}
	if rep == nil || rep.IID.Pass() {
		t.Error("rejected report should carry failing IID results")
	}
	if rep.Fit != nil {
		t.Error("EVT fit must not run on non-i.i.d. data")
	}
}

func TestAnalyseRejectsTrend(t *testing.T) {
	// A drifting series fails the split-sample KS test.
	src := prng.NewMWC(3)
	times := make([]float64, 1000)
	for i := range times {
		times[i] = 300000 + float64(i)*10 + 500*prng.Float64(src)
	}
	_, err := Analyse(times, DefaultOptions())
	if !errors.Is(err, ErrNotIID) {
		t.Fatalf("drifting series accepted: %v", err)
	}
}

func TestAnalyseSampleSizeGuard(t *testing.T) {
	if _, err := Analyse(iidSample(4, 100), DefaultOptions()); err == nil {
		t.Error("100 runs with block 50 accepted")
	}
	opts := DefaultOptions()
	opts.BlockSize = 0
	if _, err := Analyse(iidSample(4, 1000), opts); err == nil {
		t.Error("block size 0 accepted")
	}
}

func TestPWCETTightness(t *testing.T) {
	// For a light-tailed sample the pWCET at 1e-15 should sit within a
	// modest factor of the MOET — the paper's tightness claim.
	times := iidSample(5, 2000)
	rep, err := Analyse(times, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	over := rep.PWCET/rep.MOET - 1
	if over < 0 {
		t.Errorf("pWCET below MOET: %f", over)
	}
	if over > 0.25 {
		t.Errorf("pWCET %.1f%% over MOET: implausibly loose for a bounded sample", over*100)
	}
	if !rep.CVPass {
		t.Logf("note: CV test failed (cv=%f band=%f) — acceptable for bounded data", rep.CV, rep.CVBand)
	}
}

func TestCompareWithMargin(t *testing.T) {
	times := iidSample(6, 1000)
	rep, err := Analyse(times, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Reference MOET close to the randomised MOET (the paper's case).
	moetRef := rep.MOET * 1.001
	mc := CompareWithMargin(rep, moetRef, 0.20)
	if mc.Budget != moetRef*1.2 {
		t.Errorf("budget=%f", mc.Budget)
	}
	if mc.Gain <= 0 {
		t.Errorf("gain=%f, want positive (pWCET tighter than 20%% margin)", mc.Gain)
	}
	if mc.Gain > 0.25 {
		t.Errorf("gain=%f implausibly high", mc.Gain)
	}
	if mc.OverMOET < 0 || mc.OverMOET > 0.25 {
		t.Errorf("pWCET over MOET=%f out of plausible range", mc.OverMOET)
	}
	// Consistency: Budget*(1-Gain) == PWCET.
	if math.Abs(mc.Budget*(1-mc.Gain)-mc.PWCET) > 1e-6*mc.PWCET {
		t.Error("gain identity broken")
	}
}

func TestCheckIIDDirectly(t *testing.T) {
	rep, err := CheckIID(iidSample(9, 500), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass() {
		t.Error("i.i.d. sample rejected")
	}
	if _, err := CheckIID([]float64{1, 2, 3}, DefaultOptions()); err == nil {
		t.Error("tiny sample accepted")
	}
}

func TestDefaultOptionsMatchPaper(t *testing.T) {
	o := DefaultOptions()
	if o.Alpha != 0.05 {
		t.Error("significance level must be 5%")
	}
	if o.TargetExceedance != 1e-15 {
		t.Error("target exceedance must be 1e-15")
	}
}

func TestPWMCrossEstimateAgrees(t *testing.T) {
	rep, err := Analyse(iidSample(1, 2000), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.PWCETAlt <= 0 {
		t.Fatal("no PWM cross-estimate")
	}
	rel := rep.PWCETAlt/rep.PWCET - 1
	if rel < -0.10 || rel > 0.10 {
		t.Errorf("PWM estimate %.0f vs moments %.0f: %.1f%% apart",
			rep.PWCETAlt, rep.PWCET, rel*100)
	}
}
