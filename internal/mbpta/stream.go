package mbpta

import "math"

// Stream ingests execution times one at a time, in canonical run
// order, as the campaign engine merges shards — the streaming side of
// the parallel campaign pipeline. It maintains the descriptive
// statistics (min/mean/max) and the EVT block maxima incrementally, so
// that once the campaign ends Report needs no second pass over the
// series to fit the tail model (the i.i.d. gate still needs the full
// series, which the stream retains).
//
// A nil *Stream is the disabled stream: Observe no-ops, mirroring the
// telemetry conventions, so campaign code needs no guards.
//
// Stream is not safe for concurrent use; the campaign engine calls
// Observe only from the single-threaded canonical-order merge.
type Stream struct {
	opts Options

	times  []float64
	min    float64
	max    float64
	sum    float64
	maxima []float64 // completed blocks only
	curMax float64   // running maximum of the open block
	curN   int       // observations in the open block
}

// NewStream returns a stream analysing under opts; a non-positive
// BlockSize adopts the default (paper) block size.
func NewStream(opts Options) *Stream {
	if opts.BlockSize <= 0 {
		opts.BlockSize = DefaultOptions().BlockSize
	}
	return &Stream{opts: opts, min: math.Inf(1), max: math.Inf(-1)}
}

// Observe ingests one execution time; nil-safe.
func (s *Stream) Observe(x float64) {
	if s == nil {
		return
	}
	s.times = append(s.times, x)
	s.sum += x
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	if s.curN == 0 || x > s.curMax {
		s.curMax = x
	}
	s.curN++
	if s.curN == s.opts.BlockSize {
		s.maxima = append(s.maxima, s.curMax)
		s.curN, s.curMax = 0, 0
	}
}

// N returns the number of observations; nil-safe (0).
func (s *Stream) N() int {
	if s == nil {
		return 0
	}
	return len(s.times)
}

// Min returns the smallest observation (+Inf when empty); nil-safe.
func (s *Stream) Min() float64 {
	if s == nil {
		return math.Inf(1)
	}
	return s.min
}

// Max returns the largest observation, the running MOET (-Inf when
// empty); nil-safe.
func (s *Stream) Max() float64 {
	if s == nil {
		return math.Inf(-1)
	}
	return s.max
}

// Mean returns the running mean (NaN when empty); nil-safe.
func (s *Stream) Mean() float64 {
	if s == nil || len(s.times) == 0 {
		return math.NaN()
	}
	return s.sum / float64(len(s.times))
}

// Times returns the ingested series in canonical run order (not a
// copy); nil-safe.
func (s *Stream) Times() []float64 {
	if s == nil {
		return nil
	}
	return s.times
}

// BlockMaxima returns the incrementally maintained maxima of the
// completed blocks — identical to evt.BlockMaxima(Times(), BlockSize),
// with any trailing partial block dropped as the batch path does.
func (s *Stream) BlockMaxima() []float64 {
	if s == nil {
		return nil
	}
	return s.maxima
}

// Report runs the full MBPTA pipeline over everything observed so far:
// the i.i.d. gate on the retained series, then the EVT fit reusing the
// incrementally maintained block maxima. The result is identical to
// Analyse(Times(), opts).
func (s *Stream) Report() (*Report, error) {
	return analyse(s.times, s.maxima, s.opts)
}
