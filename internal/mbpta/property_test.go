package mbpta

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"dsr/internal/evt"
	"dsr/internal/prng"
)

// Statistical property tests for the i.i.d. gate: the gate is the
// safety argument of MBPTA (§V), so its two tests must demonstrably
// catch the failure modes they exist for — serial dependence
// (Ljung-Box) and distribution drift (KS) — while passing genuinely
// i.i.d. series at close to the nominal false-positive rate.

// gauss returns one approximately standard normal draw (sum of 12
// uniforms, Irwin-Hall).
func gauss(src prng.Source) float64 {
	var s float64
	for k := 0; k < 12; k++ {
		s += prng.Float64(src)
	}
	return s - 6
}

// ar1Sample generates x_t = phi*x_{t-1} + eps_t scaled onto an
// execution-time-like level.
func ar1Sample(seed uint64, phi float64, n int) []float64 {
	src := prng.NewMWC(seed)
	out := make([]float64, n)
	var x float64
	for i := range out {
		x = phi*x + gauss(src)
		out[i] = 300000 + 2000*x
	}
	return out
}

// TestLjungBoxRejectsAR1Sweep checks the gate rejects AR(1) series
// across a sweep of correlation strengths; rejection must get easier
// as phi grows.
func TestLjungBoxRejectsAR1Sweep(t *testing.T) {
	opts := DefaultOptions()
	for _, phi := range []float64{0.3, 0.5, 0.8} {
		t.Run(fmt.Sprintf("phi=%g", phi), func(t *testing.T) {
			rejected := 0
			const trials = 20
			for s := uint64(0); s < trials; s++ {
				rep, err := CheckIID(ar1Sample(1000+s, phi, 1000), opts)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.LjungBox.Passed(opts.Alpha) {
					rejected++
				}
			}
			// Even at phi=0.3 with n=1000 the LB test has essentially
			// full power; demand near-certain detection.
			if rejected < trials-1 {
				t.Errorf("phi=%g: rejected %d/%d AR(1) series", phi, rejected, trials)
			}
		})
	}
}

// TestIIDGatePassesTrueIID checks the false-positive side: the gate
// (both tests jointly at alpha=0.05) must pass true i.i.d. series at
// roughly the nominal rate. With 40 independent series and a joint
// false-positive probability below ~0.1, seeing more than a handful of
// rejections means the gate is biased.
func TestIIDGatePassesTrueIID(t *testing.T) {
	opts := DefaultOptions()
	passed := 0
	const trials = 40
	for s := uint64(0); s < trials; s++ {
		rep, err := CheckIID(ar1Sample(5000+s, 0, 1000), opts)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Pass() {
			passed++
		}
	}
	if passed < trials-6 {
		t.Errorf("gate passed only %d/%d true i.i.d. series", passed, trials)
	}
}

// TestKSDetectsShiftSweep checks the identical-distribution half of
// the gate: a mean shift between the first and second half of the
// campaign — the signature of drift, exactly what split-sample KS
// exists to catch — must be rejected once the shift is comparable to
// the spread.
func TestKSDetectsShiftSweep(t *testing.T) {
	opts := DefaultOptions()
	const n = 1000
	for _, shiftSD := range []float64{0.5, 1, 2} {
		t.Run(fmt.Sprintf("shift=%gsd", shiftSD), func(t *testing.T) {
			detected := 0
			const trials = 20
			for s := uint64(0); s < trials; s++ {
				times := ar1Sample(9000+s, 0, n)
				for i := n / 2; i < n; i++ {
					times[i] += shiftSD * 2000 // sd of the level is 2000
				}
				rep, err := CheckIID(times, opts)
				if err != nil {
					t.Fatal(err)
				}
				if !rep.KS.Passed(opts.Alpha) {
					detected++
				}
			}
			if detected < trials-1 {
				t.Errorf("shift %gsd: KS detected %d/%d", shiftSD, detected, trials)
			}
		})
	}
}

// TestKSToleratesSmallShift is the other side: a shift far below the
// noise floor should not blow the false-positive rate up.
func TestKSToleratesSmallShift(t *testing.T) {
	opts := DefaultOptions()
	const n = 1000
	passed := 0
	const trials = 20
	for s := uint64(0); s < trials; s++ {
		times := ar1Sample(13000+s, 0, n)
		for i := n / 2; i < n; i++ {
			times[i] += 0.02 * 2000
		}
		rep, err := CheckIID(times, opts)
		if err != nil {
			t.Fatal(err)
		}
		if rep.KS.Passed(opts.Alpha) {
			passed++
		}
	}
	if passed < trials-4 {
		t.Errorf("negligible shift rejected too often: passed %d/%d", passed, trials)
	}
}

// --- Stream parity: the streaming path must be the batch path ---

// TestStreamReportMatchesAnalyse checks the campaign engine's
// streaming ingestion gives byte-identical analysis to the batch call.
func TestStreamReportMatchesAnalyse(t *testing.T) {
	times := iidSample(3, 1000)
	opts := DefaultOptions()
	s := NewStream(opts)
	for _, x := range times {
		s.Observe(x)
	}
	batch, errB := Analyse(times, opts)
	stream, errS := s.Report()
	if (errB == nil) != (errS == nil) {
		t.Fatalf("error mismatch: batch %v, stream %v", errB, errS)
	}
	if !reflect.DeepEqual(batch, stream) {
		t.Errorf("stream report differs from batch:\n batch  %+v\n stream %+v", batch, stream)
	}
}

// TestStreamBlockMaximaIncremental checks the incrementally maintained
// maxima equal the batch derivation for sizes that do and do not
// divide the block size.
func TestStreamBlockMaximaIncremental(t *testing.T) {
	opts := DefaultOptions()
	opts.BlockSize = 7
	for _, n := range []int{0, 6, 7, 8, 70, 75} {
		times := iidSample(uint64(n)+1, n)
		s := NewStream(opts)
		for _, x := range times {
			s.Observe(x)
		}
		want := evt.BlockMaxima(times, opts.BlockSize)
		if len(want) == 0 {
			want = nil
		}
		if got := s.BlockMaxima(); !reflect.DeepEqual(got, want) {
			t.Errorf("n=%d: stream maxima %v, batch %v", n, got, want)
		}
	}
}

// TestStreamDescriptives checks the running min/mean/max/N.
func TestStreamDescriptives(t *testing.T) {
	s := NewStream(Options{BlockSize: 4})
	for _, x := range []float64{5, 1, 9, 3} {
		s.Observe(x)
	}
	if s.N() != 4 || s.Min() != 1 || s.Max() != 9 {
		t.Errorf("N/Min/Max = %d/%g/%g", s.N(), s.Min(), s.Max())
	}
	if got := s.Mean(); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("Mean = %g, want 4.5", got)
	}
}

// TestStreamNilAndEmpty checks the disabled-stream conventions.
func TestStreamNilAndEmpty(t *testing.T) {
	var nilStream *Stream
	nilStream.Observe(1) // must not panic
	if nilStream.N() != 0 || nilStream.Times() != nil || nilStream.BlockMaxima() != nil {
		t.Error("nil stream not inert")
	}
	if !math.IsInf(nilStream.Min(), 1) || !math.IsInf(nilStream.Max(), -1) || !math.IsNaN(nilStream.Mean()) {
		t.Error("nil stream descriptive conventions")
	}
	empty := NewStream(Options{})
	if empty.N() != 0 || !math.IsNaN(empty.Mean()) {
		t.Error("empty stream descriptive conventions")
	}
	if _, err := empty.Report(); err == nil {
		t.Error("empty stream Report did not error")
	}
}
