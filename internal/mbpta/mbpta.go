// Package mbpta orchestrates Measurement-Based Probabilistic Timing
// Analysis as integrated in the paper's RVS tool (§V–VI): gate the
// measured execution times through the i.i.d. tests (Ljung-Box for
// independence, two-sample Kolmogorov-Smirnov on the split sample for
// identical distribution, both at the 5% significance level), fit the
// EVT model, and report the pWCET curve, the estimate at the target
// exceedance probability, and the comparison against the industrial
// practice of adding an engineering margin to the maximum observed
// execution time (MOET).
package mbpta

import (
	"errors"
	"fmt"

	"dsr/internal/evt"
	"dsr/internal/stats"
	"dsr/internal/telemetry"
)

// Options configures an analysis. The defaults reproduce the paper's
// choices.
type Options struct {
	// Alpha is the significance level of the i.i.d. tests (paper: 0.05).
	Alpha float64
	// LjungBoxLags is the number of autocorrelation lags tested.
	LjungBoxLags int
	// BlockSize is the EVT block-maxima size.
	BlockSize int
	// TargetExceedance is the probability at which the pWCET estimate is
	// quoted (paper: 1e-15).
	TargetExceedance float64
	// CurveDecades is how many decades of the pWCET curve to sample.
	CurveDecades int
	// TailQuantile is the threshold quantile of the CV exponentiality
	// cross-check.
	TailQuantile float64
	// ConvergenceTol is the relative tolerance of the convergence check.
	ConvergenceTol float64

	// Events, when non-nil, receives the analysis diagnostics (i.i.d.
	// verdicts, EVT fit parameters, convergence) as structured events on
	// the "mbpta" track; a nil log no-ops.
	Events *telemetry.EventLog
}

// mbptaTrack is the event-log track of analysis events.
const mbptaTrack = "mbpta"

// DefaultOptions returns the paper's analysis configuration.
func DefaultOptions() Options {
	return Options{
		Alpha:            0.05,
		LjungBoxLags:     20,
		BlockSize:        50,
		TargetExceedance: 1e-15,
		CurveDecades:     16,
		TailQuantile:     0.9,
		ConvergenceTol:   0.05,
	}
}

// ErrNotIID is returned by Analyse when the i.i.d. gate rejects the
// sample: EVT must not be applied (the paper's platform without
// randomisation is the canonical example).
var ErrNotIID = errors.New("mbpta: execution times failed the i.i.d. tests; EVT not applicable")

// IIDReport holds the outcome of the i.i.d. gate.
type IIDReport struct {
	LjungBox stats.TestResult
	KS       stats.TestResult
	Alpha    float64
}

// Pass reports whether both tests pass at the configured significance:
// the paper's criterion ("i.i.d. is rejected only if the value for any
// of the tests is lower than 0.05").
func (r IIDReport) Pass() bool {
	return r.LjungBox.Passed(r.Alpha) && r.KS.Passed(r.Alpha)
}

// CheckIID runs the independence and identical-distribution tests.
func CheckIID(times []float64, opts Options) (IIDReport, error) {
	lb, err := stats.LjungBox(times, opts.LjungBoxLags)
	if err != nil {
		return IIDReport{}, fmt.Errorf("mbpta: %w", err)
	}
	a, b := stats.SplitHalves(times)
	ks, err := stats.KolmogorovSmirnov2(a, b)
	if err != nil {
		return IIDReport{}, fmt.Errorf("mbpta: %w", err)
	}
	rep := IIDReport{LjungBox: lb, KS: ks, Alpha: opts.Alpha}
	verdict := "rejected"
	if rep.Pass() {
		verdict = "passed"
	}
	opts.Events.Emit(mbptaTrack, "mbpta.iid", telemetry.PhaseInstant,
		telemetry.Int("n", len(times)),
		telemetry.Float("ljung_box_p", lb.PValue),
		telemetry.Float("ks_p", ks.PValue),
		telemetry.Float("alpha", opts.Alpha),
		telemetry.String("verdict", verdict))
	return rep, nil
}

// Report is a complete MBPTA analysis result.
type Report struct {
	N                int
	Min, Mean, MOET  float64
	IID              IIDReport
	Fit              *evt.PWCET
	Curve            []evt.CurvePoint
	TargetExceedance float64
	// PWCET is the estimate at TargetExceedance.
	PWCET float64
	// PWCETAlt is the cross-estimate from the probability-weighted-
	// moments fit; agreement with PWCET is a robustness check.
	PWCETAlt float64
	// CV cross-check of tail exponentiality.
	CV     float64
	CVBand float64
	CVPass bool
	// Converged reports the sample-size sufficiency check.
	Converged bool
}

// Analyse runs the full MBPTA pipeline. It returns ErrNotIID (wrapped)
// if the i.i.d. gate rejects; use CheckIID alone to inspect a rejected
// sample.
func Analyse(times []float64, opts Options) (*Report, error) {
	return analyse(times, nil, opts)
}

// analyse is the shared pipeline behind Analyse and Stream.Report:
// maxima, when non-nil, are the precomputed block maxima of times
// (the streaming path maintains them incrementally; nil re-derives
// them from the series).
func analyse(times, maxima []float64, opts Options) (*Report, error) {
	if opts.BlockSize <= 0 {
		return nil, fmt.Errorf("mbpta: non-positive block size")
	}
	if len(times) < 4*opts.BlockSize {
		return nil, fmt.Errorf("mbpta: need at least %d runs for block size %d, got %d",
			4*opts.BlockSize, opts.BlockSize, len(times))
	}
	if maxima == nil {
		maxima = evt.BlockMaxima(times, opts.BlockSize)
	}
	iid, err := CheckIID(times, opts)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		N:                len(times),
		Min:              stats.Min(times),
		Mean:             stats.Mean(times),
		MOET:             stats.Max(times),
		IID:              iid,
		TargetExceedance: opts.TargetExceedance,
	}
	if !iid.Pass() {
		return rep, fmt.Errorf("%w (Ljung-Box p=%.4f, KS p=%.4f)",
			ErrNotIID, iid.LjungBox.PValue, iid.KS.PValue)
	}
	fit, err := evt.FitFromMaxima(maxima, opts.BlockSize, len(times), rep.MOET)
	if err != nil {
		return rep, fmt.Errorf("mbpta: %w", err)
	}
	rep.Fit = fit
	rep.Curve = fit.Curve(evt.DecadeProbs(opts.CurveDecades))
	rep.PWCET = fit.Quantile(opts.TargetExceedance)
	opts.Events.Emit(mbptaTrack, "mbpta.fit", telemetry.PhaseInstant,
		telemetry.Int("n", rep.N),
		telemetry.Int("block", opts.BlockSize),
		telemetry.Float("mu", fit.Model.Mu),
		telemetry.Float("beta", fit.Model.Beta),
		telemetry.Float("moet", rep.MOET),
		telemetry.Float("pwcet", rep.PWCET),
		telemetry.Float("exceedance", opts.TargetExceedance))
	if pwm, err := evt.FitGumbelPWM(maxima); err == nil {
		alt := evt.PWCET{Model: pwm, Block: opts.BlockSize, N: len(times), MOET: rep.MOET}
		rep.PWCETAlt = alt.Quantile(opts.TargetExceedance)
	}

	if cv, band, ok, err := evt.CVTest(times, opts.TailQuantile); err == nil {
		rep.CV, rep.CVBand, rep.CVPass = cv, band, ok
	}
	if conv, err := evt.Converged(times, opts.BlockSize, opts.TargetExceedance, opts.ConvergenceTol); err == nil {
		rep.Converged = conv
	}
	converged := "no"
	if rep.Converged {
		converged = "yes"
	}
	cvPass := "fail"
	if rep.CVPass {
		cvPass = "pass"
	}
	opts.Events.Emit(mbptaTrack, "mbpta.diagnostics", telemetry.PhaseInstant,
		telemetry.Float("pwcet_alt", rep.PWCETAlt),
		telemetry.Float("cv", rep.CV),
		telemetry.String("cv_check", cvPass),
		telemetry.String("converged", converged))
	return rep, nil
}

// MarginComparison quantifies the paper's headline result: the pWCET
// estimate versus the industrial practice of MOET + engineering margin
// on the non-randomised binary (§VI, "current practice").
type MarginComparison struct {
	// MOETRef is the reference MOET (non-randomised binary).
	MOETRef float64
	// Margin is the engineering margin (paper: 0.20).
	Margin float64
	// Budget is MOETRef * (1 + Margin).
	Budget float64
	// PWCET is the MBPTA estimate being compared.
	PWCET float64
	// Gain is how much tighter the pWCET is than the budget:
	// 1 - PWCET/Budget (paper: 19.6%).
	Gain float64
	// OverMOET is how far the pWCET sits above the randomised MOET:
	// PWCET/MOETRand - 1 (paper: 0.2%).
	OverMOET float64
}

// CompareWithMargin builds the comparison between rep's pWCET and the
// industrial margin applied to moetRef (the non-randomised MOET).
func CompareWithMargin(rep *Report, moetRef, margin float64) MarginComparison {
	budget := moetRef * (1 + margin)
	mc := MarginComparison{
		MOETRef: moetRef,
		Margin:  margin,
		Budget:  budget,
		PWCET:   rep.PWCET,
	}
	if budget > 0 {
		mc.Gain = 1 - rep.PWCET/budget
	}
	if rep.MOET > 0 {
		mc.OverMOET = rep.PWCET/rep.MOET - 1
	}
	return mc
}
