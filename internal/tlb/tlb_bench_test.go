package tlb

import (
	"testing"

	"dsr/internal/mem"
)

// TLB microbenchmarks: Translate runs once per instruction fetch and
// once per data access, so its hit path is as hot as the L1s'. The
// dominant pattern is a long run of translations of the same page
// (straight-line code, sweeps within a page), which the MRU fast path
// serves without scanning the 64-entry array.

var tlbSink mem.Cycles

// BenchmarkTranslateSamePage is the dominant pattern: repeated
// translations of one page (MRU hit).
func BenchmarkTranslateSamePage(b *testing.B) {
	tl, _ := newTestTLB(64)
	tl.Translate(0x4000_0000)
	b.ReportAllocs()
	b.ResetTimer()
	var lat mem.Cycles
	for i := 0; i < b.N; i++ {
		lat += tl.Translate(0x4000_0010)
	}
	tlbSink = lat
}

// BenchmarkTranslateTwoPages alternates two resident pages: defeats a
// single MRU slot, exercises the associative scan.
func BenchmarkTranslateTwoPages(b *testing.B) {
	tl, _ := newTestTLB(64)
	tl.Translate(0x4000_0000)
	tl.Translate(0x4002_0000)
	b.ReportAllocs()
	b.ResetTimer()
	var lat mem.Cycles
	for i := 0; i < b.N; i++ {
		lat += tl.Translate(0x4000_0000)
		lat += tl.Translate(0x4002_0000)
	}
	tlbSink = lat
}

// BenchmarkTranslateResidentSweep cycles through 48 resident pages: the
// full-scan hit path under a DSR-style page-diverse working set.
func BenchmarkTranslateResidentSweep(b *testing.B) {
	tl, _ := newTestTLB(64)
	const pages = 48
	for p := 0; p < pages; p++ {
		tl.Translate(mem.Addr(p) * mem.PageSize)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var lat mem.Cycles
	p := 0
	for i := 0; i < b.N; i++ {
		lat += tl.Translate(mem.Addr(p) * mem.PageSize)
		p++
		if p == pages {
			p = 0
		}
	}
	tlbSink = lat
}

// BenchmarkTranslateMiss always misses: eviction + 3-level walk.
func BenchmarkTranslateMiss(b *testing.B) {
	tl, _ := newTestTLB(64)
	b.ReportAllocs()
	b.ResetTimer()
	var lat mem.Cycles
	a := mem.Addr(0)
	for i := 0; i < b.N; i++ {
		lat += tl.Translate(a)
		a += mem.PageSize
	}
	tlbSink = lat
}

// TestTranslateAllocFree asserts the hit path never allocates.
func TestTranslateAllocFree(t *testing.T) {
	tl, _ := newTestTLB(64)
	tl.Translate(0x4000_0000)
	tl.Translate(0x4002_0000)
	if n := testing.AllocsPerRun(1000, func() { tlbSink = tl.Translate(0x4000_0000) }); n != 0 {
		t.Errorf("MRU-hit translate allocates %v times", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		tlbSink = tl.Translate(0x4000_0000)
		tlbSink = tl.Translate(0x4002_0000)
	}); n != 0 {
		t.Errorf("scan-hit translate allocates %v times", n)
	}
}
