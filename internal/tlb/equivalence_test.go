package tlb

import (
	"testing"

	"dsr/internal/mem"
	"dsr/internal/prng"
)

// refTLB is the plain eager reference the production TLB's accelerators
// (MRU page, hint table, deferred clock/age settling) must be
// bit-identical to: a linear-scan, fully associative LRU buffer that
// updates every counter and age on every access.
type refTLB struct {
	cfg     Config
	walkMem mem.Backend
	entries []entry
	clock   uint64
	ctr     Counters
	base    mem.Addr
}

func newRefTLB(cfg Config, walkMem mem.Backend, base mem.Addr) *refTLB {
	return &refTLB{cfg: cfg, walkMem: walkMem, entries: make([]entry, cfg.Entries), base: base}
}

func (t *refTLB) translate(addr mem.Addr) mem.Cycles {
	page := mem.Page(addr)
	t.ctr.Accesses++
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].page == page {
			t.ctr.Hits++
			t.clock++
			t.entries[i].age = t.clock
			return t.cfg.HitLatency
		}
	}
	t.ctr.Misses++
	lat := t.cfg.HitLatency
	levels := [3]mem.Addr{
		t.base + (page>>12)*mem.WordSize,
		t.base + 0x1000 + (page>>6)*mem.WordSize,
		t.base + 0x100000 + page*mem.WordSize,
	}
	n := t.cfg.WalkReads
	if n > len(levels) {
		n = len(levels)
	}
	for i := 0; i < n; i++ {
		lat += t.walkMem.Read(levels[i], mem.WordSize)
	}
	victim := 0
	for i := range t.entries {
		if !t.entries[i].valid {
			victim = i
			break
		}
		if t.entries[i].age < t.entries[victim].age {
			victim = i
		}
	}
	t.clock++
	t.entries[victim] = entry{valid: true, page: page, age: t.clock}
	return lat
}

func (t *refTLB) flush() {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
}

type walkCounter struct{ reads int }

func (w *walkCounter) Read(mem.Addr, int) mem.Cycles  { w.reads++; return 11 }
func (w *walkCounter) Write(mem.Addr, int) mem.Cycles { return 0 }

// TestTranslateEquivalence drives the production TLB and the eager
// reference with identical address streams — mixtures of same-page
// streaks (the deferred fast path), small alternating working sets (the
// hint table) and capacity-evicting sweeps (the LRU victim scan) — with
// flushes and counter resets interleaved to exercise the settle
// boundaries. Latency must match on every access, counters and the
// walk traffic at every checkpoint, and the resident set at the end.
func TestTranslateEquivalence(t *testing.T) {
	cfgs := []Config{
		{Name: "itlb", Entries: 64, WalkReads: 3},
		{Name: "small", Entries: 4, WalkReads: 3, HitLatency: 1},
		{Name: "two", Entries: 2, WalkReads: 2},
		{Name: "nowalk", Entries: 8, WalkReads: 0},
	}
	for _, cfg := range cfgs {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			wProd, wRef := &walkCounter{}, &walkCounter{}
			prod := New(cfg, wProd, 0x7000_0000)
			ref := newRefTLB(cfg, wRef, 0x7000_0000)
			src := prng.NewMWC(0xD1FF ^ uint64(cfg.Entries))
			page := mem.Addr(0)
			for i := 0; i < 60000; i++ {
				switch prng.Intn(src, 100) {
				case 0: // flush (partition start)
					prod.Flush()
					ref.flush()
					continue
				case 1: // counter reset mid-stream
					prod.ResetCounters()
					ref.ctr = Counters{}
					continue
				case 2, 3, 4: // jump to a random page (sweeps + evictions)
					page = mem.Addr(prng.Intn(src, 3*cfg.Entries))
				case 5, 6, 7, 8, 9, 10: // alternate within a small working set
					page = mem.Addr(prng.Intn(src, 3))
				default: // stay on the same page (the deferred fast path)
				}
				addr := page*mem.PageSize + mem.Addr(prng.Intn(src, int(mem.PageSize)))
				lp, lr := prod.Translate(addr), ref.translate(addr)
				if lp != lr {
					t.Fatalf("access %d page %#x: latency %d (prod) != %d (ref)", i, page, lp, lr)
				}
				if i%1000 == 0 {
					if got, want := prod.Counters(), (Counters{
						Accesses: ref.ctr.Hits + ref.ctr.Misses,
						Hits:     ref.ctr.Hits, Misses: ref.ctr.Misses,
					}); got != want {
						t.Fatalf("access %d: counters %+v, want %+v", i, got, want)
					}
					if wProd.reads != wRef.reads {
						t.Fatalf("access %d: %d walk reads (prod) != %d (ref)", i, wProd.reads, wRef.reads)
					}
				}
			}
			if prod.ValidEntries() != func() int {
				n := 0
				for i := range ref.entries {
					if ref.entries[i].valid {
						n++
					}
				}
				return n
			}() {
				t.Fatal("resident entry count diverged")
			}
			// The resident *set* (not just its size) must match: evictions
			// depend on ages, so any drift in the deferred clock shows up
			// here as a different survivor.
			resident := map[mem.Addr]bool{}
			for i := range ref.entries {
				if ref.entries[i].valid {
					resident[ref.entries[i].page] = true
				}
			}
			for i := range prod.entries {
				if prod.entries[i].valid && !resident[prod.entries[i].page] {
					t.Fatalf("page %#x resident in prod but not in ref", prod.entries[i].page)
				}
			}
		})
	}
}
