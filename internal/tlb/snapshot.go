package tlb

import "dsr/internal/mem"

// Snapshot is a full copy of a TLB's architectural and counter state:
// entries, LRU clock (with the fast path's deferred bookkeeping settled
// first), counters and lookup accelerators. Restoring it forks a booted
// machine's translation state for the next run.
type Snapshot struct {
	entries  []entry
	clock    uint64
	ctr      Counters
	mruPage  mem.Addr
	mru      int32
	hitsMark uint64
	hints    [hintSize]hint
}

// Snapshot captures the TLB's complete state. Deferred fast-path
// bookkeeping is settled first so the copy is the canonical state an
// eager implementation would hold.
func (t *TLB) Snapshot() *Snapshot {
	t.settle()
	return &Snapshot{
		entries:  append([]entry(nil), t.entries...),
		clock:    t.clock,
		ctr:      t.ctr,
		mruPage:  t.mruPage,
		mru:      t.mru,
		hitsMark: t.hitsMark,
		hints:    t.hints,
	}
}

// Restore reinstates a state captured by Snapshot on this TLB. The
// snapshot must come from a TLB with the same entry count (in practice:
// from this TLB).
func (t *TLB) Restore(s *Snapshot) {
	if len(s.entries) != len(t.entries) {
		panic("tlb: Restore with mismatched snapshot geometry")
	}
	copy(t.entries, s.entries)
	t.clock = s.clock
	t.ctr = s.ctr
	t.mruPage = s.mruPage
	t.mru = s.mru
	t.hitsMark = s.hitsMark
	t.hints = s.hints
}
