package tlb

import (
	"testing"

	"dsr/internal/mem"
)

type countingMem struct {
	reads int
	lat   mem.Cycles
}

func (c *countingMem) Read(a mem.Addr, size int) mem.Cycles  { c.reads++; return c.lat }
func (c *countingMem) Write(a mem.Addr, size int) mem.Cycles { return c.lat }

func newTestTLB(entries int) (*TLB, *countingMem) {
	m := &countingMem{lat: 10}
	t := New(Config{Name: "itlb", Entries: entries, WalkReads: 3, HitLatency: 0}, m, 0x8000_0000)
	return t, m
}

func TestHitAfterMiss(t *testing.T) {
	tl, m := newTestTLB(4)
	lat := tl.Translate(0x1000)
	if lat != 30 {
		t.Errorf("miss latency=%d, want 30 (3 walk reads x 10)", lat)
	}
	if m.reads != 3 {
		t.Errorf("walk reads=%d, want 3", m.reads)
	}
	if lat := tl.Translate(0x1FFC); lat != 0 {
		t.Errorf("same-page hit latency=%d, want 0", lat)
	}
	ctr := tl.Counters()
	if ctr.Accesses != 2 || ctr.Hits != 1 || ctr.Misses != 1 {
		t.Errorf("counters=%+v", ctr)
	}
}

func TestLRUEviction(t *testing.T) {
	tl, _ := newTestTLB(2)
	tl.Translate(0 * mem.PageSize)
	tl.Translate(1 * mem.PageSize)
	tl.Translate(0 * mem.PageSize) // refresh page 0
	tl.Translate(2 * mem.PageSize) // evicts page 1
	tl.ResetCounters()
	tl.Translate(0 * mem.PageSize)
	if tl.Counters().Misses != 0 {
		t.Error("recently used page was evicted")
	}
	tl.Translate(1 * mem.PageSize)
	if tl.Counters().Misses != 1 {
		t.Error("LRU page should have been evicted")
	}
}

func TestCapacity(t *testing.T) {
	tl, _ := newTestTLB(64)
	for p := 0; p < 64; p++ {
		tl.Translate(mem.Addr(p) * mem.PageSize)
	}
	if tl.ValidEntries() != 64 {
		t.Errorf("valid entries=%d, want 64", tl.ValidEntries())
	}
	tl.ResetCounters()
	for p := 0; p < 64; p++ {
		tl.Translate(mem.Addr(p) * mem.PageSize)
	}
	if tl.Counters().Misses != 0 {
		t.Errorf("64 resident pages should all hit, got %d misses", tl.Counters().Misses)
	}
	// One more distinct page evicts exactly one entry.
	tl.Translate(64 * mem.PageSize)
	if tl.ValidEntries() != 64 {
		t.Errorf("valid entries after overflow=%d, want 64", tl.ValidEntries())
	}
}

func TestFlush(t *testing.T) {
	tl, _ := newTestTLB(8)
	tl.Translate(0x1000)
	tl.Flush()
	if tl.ValidEntries() != 0 {
		t.Error("flush left valid entries")
	}
	tl.ResetCounters()
	tl.Translate(0x1000)
	if tl.Counters().Misses != 1 {
		t.Error("post-flush translation should miss")
	}
}

func TestMissRatio(t *testing.T) {
	tl, _ := newTestTLB(8)
	var c Counters
	if c.MissRatio() != 0 {
		t.Error("empty counters miss ratio should be 0")
	}
	tl.Translate(0x0000)
	tl.Translate(0x0004)
	got := tl.Counters().MissRatio()
	if got != 0.5 {
		t.Errorf("miss ratio=%f, want 0.5", got)
	}
}

func TestValidateAndPanic(t *testing.T) {
	bad := Config{Name: "bad", Entries: 0}
	if err := bad.Validate(); err == nil {
		t.Error("zero entries accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New with bad config did not panic")
		}
	}()
	New(bad, &countingMem{}, 0)
}
