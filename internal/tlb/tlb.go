// Package tlb models the LEON3 MMU translation lookaside buffers: 64
// entries each for instructions and data (§III.A of the paper). The DSR
// pool allocator randomises TLB contents indirectly by drawing memory
// from a diverse set of pages (§III.B.5); a TLB miss costs a page-table
// walk through the memory hierarchy, modelled here as a fixed number of
// memory-class accesses issued to a backend.
package tlb

import (
	"fmt"

	"dsr/internal/mem"
)

// Config describes a TLB instance.
type Config struct {
	Name    string
	Entries int
	// WalkReads is the number of page-table reads performed on a miss
	// (the SRMMU does a 3-level walk; contexts make it up to 4).
	WalkReads int
	// HitLatency is charged on every translation (pipelined to 0 on the
	// real chip; kept configurable).
	HitLatency mem.Cycles
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Entries <= 0 {
		return fmt.Errorf("tlb %q: non-positive entry count", c.Name)
	}
	if c.WalkReads < 0 {
		return fmt.Errorf("tlb %q: negative walk reads", c.Name)
	}
	return nil
}

// Counters are the TLB performance events. Accesses is always
// Hits+Misses; the TLB maintains only the latter two internally and
// derives Accesses in snapshots, which keeps the translation fast path
// to a single counter increment.
type Counters struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
}

// MissRatio returns misses/accesses, or 0 for an untouched TLB.
func (c Counters) MissRatio() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

type entry struct {
	valid bool
	page  mem.Addr
	age   uint64
}

// hintSize is the number of direct-mapped lookup hints (page → entry
// index) kept alongside the entry array. Hints are pure accelerators:
// always validated against the entry before use, so staleness after an
// eviction is harmless. 16 slots cover the hot working sets seen by the
// data TLB (stack page + a handful of data pages) without measurable
// cost on misses.
const (
	hintSize = 16
	hintMask = hintSize - 1
)

type hint struct {
	page mem.Addr // sentinel ^0 when empty
	idx  int32
}

// TLB is a fully associative, LRU-replaced translation buffer. The SRMMU
// TLB is fully associative, which is why software randomisation affects
// it only through the *number* of distinct pages touched, not their
// layout — the model reflects that.
type TLB struct {
	cfg     Config
	walkMem mem.Backend
	entries []entry
	clock   uint64
	ctr     Counters
	// mruPage/mru cache the most recently hit/inserted translation:
	// mruPage is the page number (sentinel ^0 when empty) and mru the
	// index of its entry. Translation streams have strong page locality,
	// so comparing against mruPage first turns the common
	// same-page-as-last-time case into one compare instead of a linear
	// scan. The pair is a lookup accelerator only — it is updated
	// together on every scan hit and insert, so it can never disagree
	// with the entry array, and a failed compare degrades to the scan.
	// Counters, ages and replacement are bit-identical either way. mru
	// is an index rather than an *entry so updates avoid the GC write
	// barrier a pointer-field store would pay on the hot path.
	//
	// hitsMark defers the fast path's clock tick and age write: a
	// fast-path hit only increments ctr.Hits, and settle() — run on
	// entry to every slow path — advances the clock by the number of
	// hits taken since the last settle (ctr.Hits - hitsMark) and writes
	// the MRU entry's age once. This is exact because clock and entry
	// ages are consumed only inside the slow paths (scan-hit age
	// updates, insert's LRU victim scan), which all pass through
	// settle() first: at that moment clock holds exactly the value the
	// last fast-path hit would have left, and no other age was written
	// in between (every other write also goes through a slow path). The
	// deferral is what brings Translate under the inlining budget, so
	// the common same-page translation costs one compare and one
	// increment with no call.
	mruPage  mem.Addr
	mru      int32
	hitsMark uint64
	// hitLat mirrors cfg.HitLatency; a direct field keeps the
	// fast-path selector chain (and its inlining cost) minimal.
	hitLat mem.Cycles
	// hints is the direct-mapped page→entry-index accelerator (see
	// the hint type); indexed by page & hintMask.
	hints [hintSize]hint
	// walkBase is a fixed region where the page tables live; walks read
	// from it so that walk traffic perturbs the data cache hierarchy the
	// way real walks do.
	walkBase mem.Addr
}

// New builds a TLB whose page-table walks are serviced by walkMem.
func New(cfg Config, walkMem mem.Backend, walkBase mem.Addr) *TLB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if walkMem == nil {
		panic(fmt.Sprintf("tlb %q: nil walk backend", cfg.Name))
	}
	t := &TLB{
		cfg:      cfg,
		walkMem:  walkMem,
		entries:  make([]entry, cfg.Entries),
		mruPage:  ^mem.Addr(0), // sentinel: no translation cached yet
		hitLat:   cfg.HitLatency,
		walkBase: walkBase,
	}
	t.clearHints()
	return t
}

// Config returns the TLB's configuration.
func (t *TLB) Config() Config { return t.cfg }

// SetWalkMem rebinds the page-table-walk backend; used to interpose
// telemetry probes after construction. Panics on nil.
func (t *TLB) SetWalkMem(walkMem mem.Backend) {
	if walkMem == nil {
		panic(fmt.Sprintf("tlb %q: nil walk backend", t.cfg.Name))
	}
	t.walkMem = walkMem
}

// Counters returns a snapshot of the event counters.
func (t *TLB) Counters() Counters {
	c := t.ctr
	c.Accesses = c.Hits + c.Misses
	return c
}

// ResetCounters zeroes the event counters without touching contents.
// Deferred fast-path bookkeeping is settled first so the LRU clock
// stays aligned with the reference implementation across the reset.
func (t *TLB) ResetCounters() {
	t.settle()
	t.ctr = Counters{}
	t.hitsMark = 0
}

// Translate looks up the page containing addr, charging a walk on a miss,
// and returns the total latency. The MRU translation is checked first —
// one compare on the same-page-as-last-time fast path, which is small
// enough to inline into the CPU's access routines — before falling back
// to the hint table and then the scan; all paths perform identical
// counter and age updates, so the accelerators never change behaviour.
func (t *TLB) Translate(addr mem.Addr) mem.Cycles {
	if addr/mem.PageSize == t.mruPage {
		t.ctr.Hits++ // clock/age deferred; see hitsMark
		return t.hitLat
	}
	return t.translateScan(addr / mem.PageSize)
}

// settle applies the fast path's deferred bookkeeping: the clock
// advances by one per deferred hit and the MRU entry's age is written
// once, landing on exactly the values an eager implementation would
// have produced (see the hitsMark field comment). Runs on entry to
// every slow path and before counter resets.
func (t *TLB) settle() {
	if d := t.ctr.Hits - t.hitsMark; d != 0 {
		t.clock += d
		t.entries[t.mru].age = t.clock
		t.hitsMark = t.ctr.Hits
	}
}

// translateScan resolves a non-MRU page: first via the direct-mapped
// hint table (covers small multi-page working sets, e.g. stack/data
// alternation in the DTLB), then the full scan. Hints are validated
// against the entry array before use — a stale hint (its entry was
// evicted) fails the compare and degrades to the scan.
func (t *TLB) translateScan(page mem.Addr) mem.Cycles {
	t.settle()
	if h := &t.hints[page&hintMask]; h.page == page {
		if e := &t.entries[h.idx]; e.valid && e.page == page {
			t.ctr.Hits++
			t.clock++
			e.age = t.clock
			t.hitsMark = t.ctr.Hits // eager hit: clock already ticked
			t.mruPage, t.mru = page, h.idx
			return t.cfg.HitLatency
		}
	}
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].page == page {
			t.ctr.Hits++
			t.clock++
			t.entries[i].age = t.clock
			t.hitsMark = t.ctr.Hits // eager hit: clock already ticked
			t.mruPage, t.mru = page, int32(i)
			t.hints[page&hintMask] = hint{page: page, idx: int32(i)}
			return t.cfg.HitLatency
		}
	}
	return t.translateMiss(page)
}

// translateMiss is the outlined walk path, keeping the hit path compact.
//
//go:noinline
func (t *TLB) translateMiss(page mem.Addr) mem.Cycles {
	t.ctr.Misses++
	lat := t.cfg.HitLatency
	// Page-table walk, modelled after the SRMMU's multi-level tables:
	// the upper-level entries are shared by large page groups (a level-1
	// entry covers 16 MB, a level-2 entry 256 KB), so walks for nearby
	// pages re-read the same table lines and hit in the L2 — only the
	// per-page level-3 entry is unique. This is what keeps TLB-miss cost
	// low even when the DSR pools spread objects over many pages.
	levels := [3]mem.Addr{
		t.walkBase + (page>>12)*mem.WordSize,         // level 1
		t.walkBase + 0x1000 + (page>>6)*mem.WordSize, // level 2
		t.walkBase + 0x100000 + page*mem.WordSize,    // level 3
	}
	n := t.cfg.WalkReads
	if n > len(levels) {
		n = len(levels)
	}
	for i := 0; i < n; i++ {
		lat += t.walkMem.Read(levels[i], mem.WordSize)
	}
	t.insert(page)
	return lat
}

func (t *TLB) insert(page mem.Addr) {
	victim := 0
	for i := range t.entries {
		if !t.entries[i].valid {
			victim = i
			goto place
		}
		if t.entries[i].age < t.entries[victim].age {
			victim = i
		}
	}
place:
	t.clock++
	t.entries[victim] = entry{valid: true, page: page, age: t.clock}
	t.mruPage, t.mru = page, int32(victim)
	t.hints[page&hintMask] = hint{page: page, idx: int32(victim)}
}

// clearHints empties the MRU and hint accelerators.
func (t *TLB) clearHints() {
	t.mruPage, t.mru = ^mem.Addr(0), 0
	for i := range t.hints {
		t.hints[i] = hint{page: ^mem.Addr(0)}
	}
}

// Flush invalidates all entries (partition start, as with the caches).
func (t *TLB) Flush() {
	t.settle() // keep the LRU clock aligned across the flush
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	t.clearHints()
}

// ValidEntries returns the number of valid entries (test convenience).
func (t *TLB) ValidEntries() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}
