// Package tlb models the LEON3 MMU translation lookaside buffers: 64
// entries each for instructions and data (§III.A of the paper). The DSR
// pool allocator randomises TLB contents indirectly by drawing memory
// from a diverse set of pages (§III.B.5); a TLB miss costs a page-table
// walk through the memory hierarchy, modelled here as a fixed number of
// memory-class accesses issued to a backend.
package tlb

import (
	"fmt"

	"dsr/internal/mem"
)

// Config describes a TLB instance.
type Config struct {
	Name    string
	Entries int
	// WalkReads is the number of page-table reads performed on a miss
	// (the SRMMU does a 3-level walk; contexts make it up to 4).
	WalkReads int
	// HitLatency is charged on every translation (pipelined to 0 on the
	// real chip; kept configurable).
	HitLatency mem.Cycles
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	if c.Entries <= 0 {
		return fmt.Errorf("tlb %q: non-positive entry count", c.Name)
	}
	if c.WalkReads < 0 {
		return fmt.Errorf("tlb %q: negative walk reads", c.Name)
	}
	return nil
}

// Counters are the TLB performance events.
type Counters struct {
	Accesses uint64
	Hits     uint64
	Misses   uint64
}

// MissRatio returns misses/accesses, or 0 for an untouched TLB.
func (c Counters) MissRatio() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

type entry struct {
	valid bool
	page  mem.Addr
	age   uint64
}

// TLB is a fully associative, LRU-replaced translation buffer. The SRMMU
// TLB is fully associative, which is why software randomisation affects
// it only through the *number* of distinct pages touched, not their
// layout — the model reflects that.
type TLB struct {
	cfg     Config
	walkMem mem.Backend
	entries []entry
	clock   uint64
	ctr     Counters
	// walkBase is a fixed region where the page tables live; walks read
	// from it so that walk traffic perturbs the data cache hierarchy the
	// way real walks do.
	walkBase mem.Addr
}

// New builds a TLB whose page-table walks are serviced by walkMem.
func New(cfg Config, walkMem mem.Backend, walkBase mem.Addr) *TLB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if walkMem == nil {
		panic(fmt.Sprintf("tlb %q: nil walk backend", cfg.Name))
	}
	return &TLB{
		cfg:      cfg,
		walkMem:  walkMem,
		entries:  make([]entry, cfg.Entries),
		walkBase: walkBase,
	}
}

// Config returns the TLB's configuration.
func (t *TLB) Config() Config { return t.cfg }

// SetWalkMem rebinds the page-table-walk backend; used to interpose
// telemetry probes after construction. Panics on nil.
func (t *TLB) SetWalkMem(walkMem mem.Backend) {
	if walkMem == nil {
		panic(fmt.Sprintf("tlb %q: nil walk backend", t.cfg.Name))
	}
	t.walkMem = walkMem
}

// Counters returns a snapshot of the event counters.
func (t *TLB) Counters() Counters { return t.ctr }

// ResetCounters zeroes the event counters without touching contents.
func (t *TLB) ResetCounters() { t.ctr = Counters{} }

// Translate looks up the page containing addr, charging a walk on a miss,
// and returns the total latency.
func (t *TLB) Translate(addr mem.Addr) mem.Cycles {
	t.ctr.Accesses++
	page := mem.Page(addr)
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].page == page {
			t.ctr.Hits++
			t.clock++
			t.entries[i].age = t.clock
			return t.cfg.HitLatency
		}
	}
	t.ctr.Misses++
	lat := t.cfg.HitLatency
	// Page-table walk, modelled after the SRMMU's multi-level tables:
	// the upper-level entries are shared by large page groups (a level-1
	// entry covers 16 MB, a level-2 entry 256 KB), so walks for nearby
	// pages re-read the same table lines and hit in the L2 — only the
	// per-page level-3 entry is unique. This is what keeps TLB-miss cost
	// low even when the DSR pools spread objects over many pages.
	levels := [3]mem.Addr{
		t.walkBase + (page>>12)*mem.WordSize,         // level 1
		t.walkBase + 0x1000 + (page>>6)*mem.WordSize, // level 2
		t.walkBase + 0x100000 + page*mem.WordSize,    // level 3
	}
	n := t.cfg.WalkReads
	if n > len(levels) {
		n = len(levels)
	}
	for i := 0; i < n; i++ {
		lat += t.walkMem.Read(levels[i], mem.WordSize)
	}
	t.insert(page)
	return lat
}

func (t *TLB) insert(page mem.Addr) {
	victim := 0
	for i := range t.entries {
		if !t.entries[i].valid {
			victim = i
			goto place
		}
		if t.entries[i].age < t.entries[victim].age {
			victim = i
		}
	}
place:
	t.clock++
	t.entries[victim] = entry{valid: true, page: page, age: t.clock}
}

// Flush invalidates all entries (partition start, as with the caches).
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
}

// ValidEntries returns the number of valid entries (test convenience).
func (t *TLB) ValidEntries() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].valid {
			n++
		}
	}
	return n
}
