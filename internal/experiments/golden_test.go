package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// The cycle-exactness contract: performance work on the simulator core
// (cache hit fast paths, functional-memory page tables, fetch
// short-circuits, devirtualisation) must not change a single reported
// cycle. The determinism suite proves worker-count independence; this
// golden file pins the absolute numbers across *code* changes. It was
// recorded before the PR 4 hot-path optimisations and must never be
// regenerated to make a failure pass — a mismatch means an
// "optimisation" changed simulated behaviour.
//
// Regenerate (only when the timing model itself is deliberately
// changed) with:
//
//	go test ./internal/experiments -run TestGoldenCycles -update-golden

var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/golden_cycles.json from the current binary")

const goldenPath = "testdata/golden_cycles.json"

// goldenRecord is the pinned observable output of one campaign variant.
type goldenRecord struct {
	// Cycles is the full execution-time series, in run order.
	Cycles []uint64 `json:"cycles"`
	// AttributionTotal is the summed per-run attribution (== sum of
	// Cycles when the conservation invariant holds).
	AttributionTotal uint64 `json:"attribution_total"`
	// TelemetrySHA256 is the hash of the campaign telemetry JSONL dump.
	TelemetrySHA256 string `json:"telemetry_sha256"`
	// PMCsSHA256 is the hash of the JSON-encoded per-run PMC snapshots.
	PMCsSHA256 string `json:"pmcs_sha256"`
}

// goldenCapture runs one series with full observability and reduces it
// to a goldenRecord.
func goldenCapture(t *testing.T, sr seriesRun) goldenRecord {
	t.Helper()
	out := runCampaign(t, sr, 1)
	rec := goldenRecord{Cycles: make([]uint64, len(out.series.Cycles))}
	for i, c := range out.series.Cycles {
		rec.Cycles[i] = uint64(c)
	}
	var attTotal uint64
	for _, r := range out.series.Results {
		attTotal += uint64(r.Attribution.Total())
	}
	rec.AttributionTotal = attTotal
	tsum := sha256.Sum256(out.telemetry)
	rec.TelemetrySHA256 = hex.EncodeToString(tsum[:])
	pmcs := make([]interface{}, len(out.series.Results))
	for i, r := range out.series.Results {
		pmcs[i] = r.PMCs
	}
	pj, err := json.Marshal(pmcs)
	if err != nil {
		t.Fatal(err)
	}
	psum := sha256.Sum256(pj)
	rec.PMCsSHA256 = hex.EncodeToString(psum[:])
	return rec
}

// TestGoldenCycles compares every series constructor against the
// pre-optimisation golden record: cycles, attribution, PMCs and the
// telemetry export must all be byte-identical.
func TestGoldenCycles(t *testing.T) {
	if *updateGolden {
		recs := map[string]goldenRecord{}
		for _, sr := range determinismSeries() {
			recs[sr.name] = goldenCapture(t, sr)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(recs, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("recorded %d golden series to %s", len(recs), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden file missing (record with -update-golden): %v", err)
	}
	var want map[string]goldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("golden file corrupt: %v", err)
	}
	for _, sr := range determinismSeries() {
		sr := sr
		t.Run(sr.name, func(t *testing.T) {
			t.Parallel()
			w, ok := want[sr.name]
			if !ok {
				t.Fatalf("series %q missing from golden file; re-record", sr.name)
			}
			got := goldenCapture(t, sr)
			if len(got.Cycles) != len(w.Cycles) {
				t.Fatalf("run count %d, golden %d", len(got.Cycles), len(w.Cycles))
			}
			for i := range got.Cycles {
				if got.Cycles[i] != w.Cycles[i] {
					t.Errorf("run %d: cycles %d, golden %d", i, got.Cycles[i], w.Cycles[i])
				}
			}
			if got.AttributionTotal != w.AttributionTotal {
				t.Errorf("attribution total %d, golden %d", got.AttributionTotal, w.AttributionTotal)
			}
			if got.PMCsSHA256 != w.PMCsSHA256 {
				t.Errorf("PMC snapshots diverge from golden (sha %s vs %s)",
					got.PMCsSHA256, w.PMCsSHA256)
			}
			if got.TelemetrySHA256 != w.TelemetrySHA256 {
				t.Errorf("telemetry export diverges from golden (sha %s vs %s)",
					got.TelemetrySHA256, w.TelemetrySHA256)
			}
		})
	}
}
