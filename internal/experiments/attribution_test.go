package experiments

import (
	"testing"

	"dsr/internal/platform"
	"dsr/internal/telemetry"
)

// checkConservation asserts the tentpole invariant: with attribution
// enabled, the per-component buckets of every run sum to the run's
// cycle counter exactly — not approximately.
func checkConservation(t *testing.T, s *Series) {
	t.Helper()
	if len(s.Results) == 0 {
		t.Fatal("empty series")
	}
	for i, res := range s.Results {
		if !res.Attribution.Valid {
			t.Fatalf("%s run %d: attribution snapshot not valid", s.Name, i)
		}
		if got, want := res.Attribution.Total(), res.Cycles; got != want {
			t.Fatalf("%s run %d: attributed %d cycles, counter says %d (off by %d)\n%s",
				s.Name, i, got, want, int64(got)-int64(want), res.Attribution.Render())
		}
	}
	if !s.Attribution.Valid {
		t.Fatalf("%s: aggregate attribution not valid", s.Name)
	}
	var total float64
	for _, res := range s.Results {
		total += float64(res.Cycles)
	}
	if got := float64(s.Attribution.Total()); got != total {
		t.Fatalf("%s: aggregate attribution %f != cycle sum %f", s.Name, got, total)
	}
}

func attribConfig(runs int) Config {
	cfg := smallConfig()
	cfg.Runs = runs
	cfg.Attribution = true
	return cfg
}

func TestConservationBaselineControl(t *testing.T) {
	s, err := RunBaseline(attribConfig(20))
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, s)
	// A deterministic run spends cycles somewhere concrete: the base
	// issue component is one cycle per instruction.
	r := s.Results[0]
	if got, want := uint64(r.Attribution.Component(telemetry.CompBaseIssue)), r.PMCs.Instr; got != want {
		t.Errorf("base issue %d != instruction count %d", got, want)
	}
	if r.Attribution.Component(telemetry.CompDSR) != 0 {
		t.Errorf("baseline booked DSR runtime cycles")
	}
}

func TestConservationDSREagerControl(t *testing.T) {
	s, err := RunDSR(attribConfig(20))
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, s)
	// Eager relocation happens at boot, outside the measured window.
	for i, r := range s.Results {
		if r.Attribution.Component(telemetry.CompDSR) != 0 {
			t.Errorf("run %d: eager DSR booked in-window runtime cycles", i)
		}
	}
}

func TestConservationDSRLazyControl(t *testing.T) {
	s, err := RunDSRLazy(attribConfig(20))
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, s)
	// Lazy relocation runs inside the measured window and must be
	// visible as DSR runtime cycles.
	var dsr uint64
	for _, r := range s.Results {
		dsr += uint64(r.Attribution.Component(telemetry.CompDSR))
	}
	if dsr == 0 {
		t.Errorf("lazy DSR booked no in-window runtime cycles")
	}
}

func TestConservationDSRProcessing(t *testing.T) {
	s, err := RunProcessing(attribConfig(10), 0.5, "proc")
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, s)
}

func TestConservationHWRand(t *testing.T) {
	s, err := RunHWRand(attribConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, s)
}

// TestAttributionDisabledSnapshotInvalid pins the zero-cost default:
// without Config.Attribution the snapshots must be invalid (no probes,
// no profiler), not silently zero-but-valid.
func TestAttributionDisabledSnapshotInvalid(t *testing.T) {
	cfg := smallConfig()
	cfg.Runs = 3
	s, err := RunBaseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range s.Results {
		if r.Attribution.Valid {
			t.Fatalf("run %d: attribution valid without EnableAttribution", i)
		}
	}
	if s.Attribution.Valid {
		t.Fatal("aggregate attribution valid without EnableAttribution")
	}
}

// TestTelemetryCampaignRecording checks the experiments → telemetry
// wiring: runs are booked as metrics and span events on the campaign
// timeline, and the trace renders and validates.
func TestTelemetryCampaignRecording(t *testing.T) {
	cfg := attribConfig(8)
	cfg.Telemetry = telemetry.NewCampaign(0)
	var progress int
	cfg.Progress = func(series string, done, total int) { progress++ }
	s, err := RunDSR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if progress != cfg.Runs {
		t.Errorf("progress fired %d times, want %d", progress, cfg.Runs)
	}
	reg := cfg.Telemetry.Registry
	if got := reg.Counter("dsr_runs_total", telemetry.Labels{"series": s.Name}).Value(); got != uint64(cfg.Runs) {
		t.Errorf("dsr_runs_total=%d, want %d", got, cfg.Runs)
	}
	var cycleSum uint64
	for _, r := range s.Results {
		cycleSum += uint64(r.Cycles)
	}
	if got := reg.Counter("dsr_run_cycles_total", telemetry.Labels{"series": s.Name}).Value(); got != cycleSum {
		t.Errorf("dsr_run_cycles_total=%d, want %d", got, cycleSum)
	}
	if got := cfg.Telemetry.Events.Len(); got == 0 {
		t.Fatal("no events recorded")
	}
	if got, want := uint64(cfg.Telemetry.Now()), cycleSum; got != want {
		t.Errorf("campaign clock %d, want %d", got, want)
	}
}

// TestAttributionRebootIsolated pins that boot-time traffic (eager
// relocation, metadata writes, cache flushes) never leaks into the
// measured run's attribution: ResetCounters clears the profiler.
func TestAttributionRebootIsolated(t *testing.T) {
	plat := platform.New(platform.ProximaLEON3())
	att := plat.EnableAttribution()
	if plat.Attribution() != att {
		t.Fatal("Attribution() getter mismatch")
	}
	if again := plat.EnableAttribution(); again != att {
		t.Fatal("EnableAttribution not idempotent")
	}
}
