package experiments

import (
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"dsr/internal/analysis/wcet"
)

// leakRuns is the campaign length for the leakage-soundness gate. The
// default keeps `go test ./...` quick; CI runs `make leak-check`, which
// sets LEAK_RUNS=200.
func leakRuns(t *testing.T) int {
	t.Helper()
	if s := os.Getenv("LEAK_RUNS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad LEAK_RUNS=%q: %v", s, err)
		}
		return n
	}
	if testing.Short() {
		return 12
	}
	return 60
}

// TestLeakSoundOverCampaigns is the leakage-soundness gate: for every
// configuration the attack observers must never collect more distinct
// observations than the static analyzer's channel-capacity bound
// admits, and the static bounds themselves must show the paper-shaped
// security result (det >= lazy >= eager, strictly at the ends).
func TestLeakSoundOverCampaigns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Runs = leakRuns(t)
	cfg.Workers = 4

	rep, err := RunE8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Rows {
		if r.MeasuredAccessBits > r.StaticAccessBits+leakEps {
			t.Errorf("%s: UNSOUND: measured access bits %.3f > static %.3f",
				r.Config, r.MeasuredAccessBits, r.StaticAccessBits)
		}
		if r.MeasuredTraceBits > r.StaticTraceBits+leakEps {
			t.Errorf("%s: UNSOUND: measured trace bits %.3f > static %.3f",
				r.Config, r.MeasuredTraceBits, r.StaticTraceBits)
		}
		if r.MeasuredTimingBits > r.StaticTraceBits+leakEps {
			t.Errorf("%s: UNSOUND: measured timing bits %.3f > static trace bound %.3f",
				r.Config, r.MeasuredTimingBits, r.StaticTraceBits)
		}
		t.Logf("%s: access %.2f/%.2f, trace %.2f/%.2f, timing %.2f bits (measured/static)",
			r.Config, r.MeasuredAccessBits, r.StaticAccessBits,
			r.MeasuredTraceBits, r.StaticTraceBits, r.MeasuredTimingBits)
	}

	det, eager, lazy := rep.Rows[0], rep.Rows[1], rep.Rows[2]
	if !(eager.StaticAccessBits <= lazy.StaticAccessBits+leakEps &&
		lazy.StaticAccessBits <= det.StaticAccessBits+leakEps) {
		t.Errorf("monotonicity chain violated: eager %.3f, lazy %.3f, det %.3f",
			eager.StaticAccessBits, lazy.StaticAccessBits, det.StaticAccessBits)
	}
	if det.StaticAccessBits <= eager.StaticAccessBits {
		t.Errorf("no security benefit: det %.3f <= eager %.3f",
			det.StaticAccessBits, eager.StaticAccessBits)
	}
	if !rep.SideChannelResistant {
		t.Errorf("side-channel verdict failed: %s", rep.LeakDetail)
	}
	if !rep.TimingAnalysable {
		t.Errorf("timing verdict failed: %s", rep.TimingDetail)
	}
	out := FormatE8(rep)
	for _, want := range []string{"E8:", "verdict timing analysability", "verdict side-channel resistance"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatE8 missing %q:\n%s", want, out)
		}
	}
}

// TestCampaignDeterminismLeak extends the campaign-determinism suite to
// the attack observers: the full observation series — occupancies,
// trace hashes, cycles, seeds — must be byte-identical at Workers=8 and
// Workers=1, for every analysis mode. Runs under -race in CI.
func TestCampaignDeterminismLeak(t *testing.T) {
	for _, mode := range []wcet.Mode{wcet.ModeDet, wcet.ModeDSREager, wcet.ModeDSRLazy} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			run := func(workers int) *LeakSeries {
				cfg := DefaultConfig()
				cfg.Runs = 16
				cfg.Workers = workers
				s, err := RunLeak(cfg, mode)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return s
			}
			seq, par := run(1), run(8)
			if !reflect.DeepEqual(seq.Obs, par.Obs) {
				t.Error("attack observations differ between worker counts")
			}
			if !reflect.DeepEqual(seq.Seeds, par.Seeds) {
				t.Error("seed series differ between worker counts")
			}
			if !reflect.DeepEqual(seq.Cycles, par.Cycles) {
				t.Error("cycle series differ between worker counts")
			}
		})
	}
}
