package experiments

import (
	"bytes"
	"sync/atomic"
	"testing"
	"time"

	"dsr/internal/telemetry"
)

// TestCampaignScrapeDuringRun pins the registry's concurrency
// contract: a scraper may Snapshot the registry and round-trip it
// through the Prometheus exposition format while campaign workers are
// mutating counters, gauges and histograms. The test runs under -race
// in CI (make race-campaign), which is the actual detector; the
// assertions here only check that every mid-flight scrape parses.
func TestCampaignScrapeDuringRun(t *testing.T) {
	camp := telemetry.NewCampaign(0)
	tracer := telemetry.NewTracer()
	cfg := DefaultConfig()
	cfg.Runs = 32
	cfg.Workers = 8
	cfg.Telemetry = camp
	cfg.Tracer = tracer

	stop := make(chan struct{})
	scrapeErr := make(chan error, 1)
	var scrapes atomic.Int64
	go func() {
		var firstErr error
		for {
			select {
			case <-stop:
				scrapeErr <- firstErr
				return
			default:
			}
			var buf bytes.Buffer
			d := &telemetry.Dump{Metrics: camp.Registry.Snapshot()}
			err := d.WritePrometheus(&buf)
			if err == nil {
				_, err = telemetry.ReadPrometheus(bytes.NewReader(buf.Bytes()))
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
			tracer.LiveWorkers() // live span state shares the contract
			scrapes.Add(1)
			time.Sleep(100 * time.Microsecond)
		}
	}()

	s, err := RunDSR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	close(stop)
	if err := <-scrapeErr; err != nil {
		t.Fatalf("mid-flight scrape failed: %v", err)
	}
	if scrapes.Load() == 0 {
		t.Fatal("no scrapes happened during the campaign")
	}
	if len(s.Cycles) != cfg.Runs {
		t.Fatalf("campaign produced %d runs, want %d", len(s.Cycles), cfg.Runs)
	}
}
