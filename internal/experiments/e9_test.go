package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// e9Config dimensions a short E9 campaign for the unit tests; the CI
// gate (TestSchedFeasSound via `make sched-check`) runs the full-length
// version.
func e9Config(frames, workers int) Config {
	cfg := DefaultConfig()
	cfg.Runs = frames
	cfg.Workers = workers
	return cfg
}

func TestE9Report(t *testing.T) {
	rep, err := RunE9(e9Config(12, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows=%d, want the 2x2 grid", len(rep.Rows))
	}
	if !rep.Sound {
		t.Errorf("soundness verdict failed: %s", rep.SoundDetail)
	}
	if !rep.TimingAnalysable {
		t.Errorf("timing verdict failed: %s", rep.TimingDetail)
	}
	if !rep.InferenceResistant {
		t.Errorf("inference verdict failed: %s", rep.InferenceDetail)
	}

	det, both := rep.Rows[0], rep.Rows[3]
	if det.MeasuredGE != 1 || det.MeasuredOffsets != 1 || det.ScheduleBits != 0 {
		t.Errorf("deterministic cell not fully predictable: %+v", det)
	}
	if both.MeasuredGE <= 1 || both.MeasuredOffsets < 2 {
		t.Errorf("randomized cell predictable: GE %.2f over %d offsets",
			both.MeasuredGE, both.MeasuredOffsets)
	}
	if both.ScheduleBits <= det.ScheduleBits {
		t.Errorf("schedule entropy %f bits not above deterministic 0", both.ScheduleBits)
	}
	out := FormatE9(rep)
	for _, want := range []string{"E9:", "verdict schedule soundness", "verdict timing analysability", "verdict inference resistance", "PASS"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatE9 output missing %q:\n%s", want, out)
		}
	}
}

// TestE9SchedAxisPreservesCycles pins the grid's control variable:
// schedule randomisation alone must not change the control task's
// execution times, only their arrival offsets. Frame f runs input f in
// both cells, so the per-frame cycle series must match exactly.
func TestE9SchedAxisPreservesCycles(t *testing.T) {
	cfg := e9Config(6, 2)
	det, err := RunE9Cell(cfg, E9Cell{})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := RunE9Cell(cfg, E9Cell{SchedRand: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(det.ControlCycles, sched.ControlCycles) {
		t.Errorf("schedule randomisation changed control cycles:\n det=%v\nrand=%v",
			det.ControlCycles, sched.ControlCycles)
	}
	if reflect.DeepEqual(det.ControlOffsets, sched.ControlOffsets) {
		t.Errorf("schedule randomisation did not move arrivals: %v", sched.ControlOffsets)
	}
}

// TestCampaignDeterminismE9 extends the campaign determinism invariant
// to the schedule-randomisation axis: every E9 cell must produce
// byte-identical output at Workers=8 and Workers=1 (the name keeps it
// inside the `make race-campaign` net).
func TestCampaignDeterminismE9(t *testing.T) {
	for _, cell := range E9Cells() {
		cell := cell
		t.Run(strings.ReplaceAll(cell.Name(), " ", ""), func(t *testing.T) {
			t.Parallel()
			var seqProg, parProg []int
			seqCfg := e9Config(5, 1)
			seqCfg.Progress = func(_ string, done, _ int) { seqProg = append(seqProg, done) }
			seq, err := RunE9Cell(seqCfg, cell)
			if err != nil {
				t.Fatal(err)
			}
			parCfg := e9Config(5, 8)
			parCfg.Progress = func(_ string, done, _ int) { parProg = append(parProg, done) }
			par, err := RunE9Cell(parCfg, cell)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("workers=8 differs from sequential:\nseq=%+v\npar=%+v", seq, par)
			}
			if !reflect.DeepEqual(seqProg, parProg) {
				t.Errorf("progress order differs: seq=%v par=%v", seqProg, parProg)
			}
		})
	}
}
