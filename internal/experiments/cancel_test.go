package experiments

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"dsr/internal/campaign"
	"dsr/internal/campaign/determtest"
	"dsr/internal/mbpta"
	"dsr/internal/telemetry"
)

// TestCampaignCancelMidFlight is the cancellation contract at the
// experiments level: cancelling a campaign mid-flight releases the
// workers promptly, leaves every merged surface (telemetry registry +
// events, MBPTA stream, progress) exactly as an uncancelled campaign
// would have them at that merged prefix, and a resubmission with the
// same seed is byte-identical to a campaign that was never cancelled.
func TestCampaignCancelMidFlight(t *testing.T) {
	// runs must be large enough that the workers still hold unclaimed
	// work when the cancel fires at the cancelAt-th merge — a campaign
	// this size is a couple of seconds of simulated work, far more than
	// the merge goroutine needs to reach run 7.
	const runs = 400
	const cancelAt = 7

	// Reference: the uncancelled campaign.
	ref := runCampaign(t, seriesRun{"DSR", runs, RunDSR}, 8)

	// Cancelled campaign: fire the interrupt after cancelAt merges.
	camp := telemetry.NewCampaign(0)
	stream := mbpta.NewStream(mbpta.Options{BlockSize: 4})
	interrupt := make(chan struct{})
	cfg := DefaultConfig()
	cfg.Runs = runs
	cfg.Workers = 8
	cfg.Attribution = true
	cfg.Telemetry = camp
	cfg.Stream = stream
	cfg.Interrupt = interrupt
	var progress []int
	cfg.Progress = func(series string, done, total int) {
		progress = append(progress, done)
		if done == cancelAt {
			close(interrupt)
		}
	}

	start := time.Now()
	s, err := RunDSR(cfg)
	released := time.Since(start)
	if !errors.Is(err, campaign.ErrInterrupted) {
		t.Fatalf("cancelled campaign returned %v, want campaign.ErrInterrupted", err)
	}
	if s != nil {
		t.Fatal("cancelled campaign returned a series")
	}
	// "Promptly": the engine must not run the campaign to completion
	// after the cancel. The merged prefix is at least the cancel point
	// (the canonical merge had reached it) and short of the total.
	merged := stream.N()
	if merged < cancelAt || merged >= runs {
		t.Fatalf("cancelled campaign merged %d runs (cancelled at %d of %d)", merged, cancelAt, runs)
	}
	if released > 30*time.Second {
		t.Fatalf("cancelled campaign took %v to release workers", released)
	}

	// Merge consistency: everything merged before the stop is exactly
	// the uncancelled campaign's canonical prefix.
	if !reflect.DeepEqual(stream.Times(), ref.stream[:merged]) {
		t.Errorf("cancelled stream is not a prefix of the uncancelled stream:\n  cancelled %v\n  reference %v",
			stream.Times(), ref.stream[:merged])
	}
	determtest.CheckCanonicalProgress(t, progress, merged)

	// Registry merge consistency: the run counter agrees with the
	// merged prefix — no partial or duplicated bookkeeping from the
	// drained workers ever reaches the registry.
	runsTotal := camp.Registry.Counter("dsr_runs_total", telemetry.Labels{"series": "Sw Rand"}).Value()
	if int(runsTotal) != merged {
		t.Errorf("registry dsr_runs_total = %d, merged = %d", runsTotal, merged)
	}

	// Resubmission with the same seed: byte-identical to the never-
	// cancelled reference on every surface.
	resub := runCampaign(t, seriesRun{"DSR", runs, RunDSR}, 8)
	determtest.Check(t, "resubmit after cancel vs uncancelled", ref.output(), resub.output())
}
