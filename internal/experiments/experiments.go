// Package experiments is the campaign harness behind every table and
// figure of the paper's evaluation (§VI), shared by cmd/dsrsim and the
// repository benchmarks:
//
//	E1 / Table I  — performance-counter ranges, original vs DSR
//	E2 / Fig. 2   — min/average/max execution time, original vs DSR
//	E3 / Fig. 3   — the pWCET curve of the DSR binary
//	E4            — the i.i.d. verification (Ljung-Box + KS p-values)
//	E5            — pWCET vs the MOET+20% industrial margin
//
// plus the A1–A5 ablation campaigns (eager/lazy, offset bound, PRNG,
// hardware randomisation, static randomisation).
package experiments

import (
	"fmt"
	"strings"

	"dsr/internal/bus"
	"dsr/internal/campaign"
	"dsr/internal/core"
	"dsr/internal/layout"
	"dsr/internal/loader"
	"dsr/internal/mbpta"
	"dsr/internal/platform"
	"dsr/internal/prng"
	"dsr/internal/prog"
	"dsr/internal/rvs"
	"dsr/internal/spaceapp"
	"dsr/internal/stats"
	"dsr/internal/telemetry"
)

// Config dimensions a measurement campaign.
type Config struct {
	// Runs is the number of measurement runs per configuration; the
	// paper's campaigns use on the order of 1000.
	Runs int
	// SeedBase is the campaign base seed: per-run layout seeds (DSR
	// reboots, static builds, hardware cache reseeds) are derived from
	// it by the campaign engine's splittable seed schedule
	// (campaign.NewSchedule), so every run's seed is a pure function of
	// (SeedBase, run index) regardless of execution order.
	SeedBase uint64
	// InputSeedBase seeds the per-run input vectors; baseline and
	// randomised campaigns share it so runs are pairwise comparable.
	InputSeedBase uint64
	// MBPTA is the analysis configuration (E3/E4/E5).
	MBPTA mbpta.Options
	// Margin is the industrial engineering margin (E5; paper: 20%).
	Margin float64

	// Workers shards the campaign's runs across this many workers, each
	// with its own platform instance: 0 (the default) selects
	// runtime.NumCPU(), 1 selects the legacy strictly sequential
	// in-process loop. Campaign output — cycles, counters, telemetry
	// attribution, event ordering — is byte-identical for every worker
	// count (the engine's determinism invariant).
	Workers int

	// Telemetry, when non-nil, receives one RunRecord per measured run
	// (metrics, events and the campaign timeline). A nil campaign
	// disables recording at zero cost. Recording happens during the
	// canonical-order merge, on the calling goroutine, so worker count
	// does not change what is recorded.
	Telemetry *telemetry.Campaign
	// Stream, when non-nil, receives every merged unit-of-analysis
	// duration in canonical run order as shards complete: streaming
	// MBPTA ingestion, ready for Stream.Report once the campaign ends.
	Stream *mbpta.Stream
	// Attribution enables the cycle-attribution profiler on every
	// campaign platform, so each RunResult carries a per-component
	// cycle split (and Series.Attribution the campaign aggregate).
	Attribution bool
	// Progress, when non-nil, is called after every merged run with
	// the series name, the runs finished so far, and the total; calls
	// arrive in canonical order from the calling goroutine.
	Progress func(series string, done, total int)

	// Interrupt, when non-nil, requests a cooperative campaign stop when
	// it fires (see campaign.Config.Interrupt): the engine drains
	// in-flight runs, merges the contiguous completed prefix, and the
	// series constructor returns campaign.ErrInterrupted. A cancelled
	// campaign leaves every already-merged surface (telemetry, stream,
	// progress) exactly as an uncancelled campaign would have at that
	// prefix.
	Interrupt <-chan struct{}

	// Tracer, when non-nil, records host wall-time spans of the campaign
	// execution itself (worker/run/boot/reloc/execute phases) for the
	// worker-utilization report and live observability. Spans never
	// enter the deterministic telemetry dump: enabling the tracer cannot
	// change campaign results.
	Tracer *telemetry.Tracer
	// Observer, when non-nil, is notified of series lifecycle and every
	// merged unit-of-analysis value, in canonical order from the calling
	// goroutine — the live-introspection feed behind internal/obs. Like
	// Progress, it observes the merge; it cannot influence it.
	Observer RunObserver
}

// RunObserver receives the campaign's live progress feed. All calls
// arrive from the merge goroutine in canonical run order; a run's
// index is its canonical campaign index, and uoa is its merged
// unit-of-analysis duration in cycles.
type RunObserver interface {
	BeginSeries(series string, total int)
	ObserveRun(series string, index int, uoa float64)
	EndSeries(series string)
}

// DefaultConfig returns the paper-scale campaign configuration.
func DefaultConfig() Config {
	return Config{
		Runs:          1000,
		SeedBase:      1,
		InputSeedBase: 9000,
		MBPTA:         mbpta.DefaultOptions(),
		Margin:        0.20,
	}
}

// Series is one campaign: every run's result under one configuration.
type Series struct {
	Name    string
	Cycles  []float64
	Results []platform.RunResult
	// Attribution is the campaign-aggregate cycle attribution (the sum
	// over runs); Valid only when Config.Attribution was set.
	Attribution telemetry.AttributionSnapshot
}

// MinMeanMax summarises the execution times (Fig. 2's three bars).
func (s *Series) MinMeanMax() (min, mean, max float64) {
	return stats.Min(s.Cycles), stats.Mean(s.Cycles), stats.Max(s.Cycles)
}

// verify checks a run against the golden model; layout randomisation
// must never change functional results.
func verify(res platform.RunResult, in *spaceapp.ControlInput) error {
	if want := spaceapp.ControlReference(in); res.ExitValue != want {
		return fmt.Errorf("experiments: functional mismatch: got %#x, golden %#x", res.ExitValue, want)
	}
	return nil
}

// instrument applies the campaign's observability configuration to a
// freshly built platform.
func (cfg *Config) instrument(plat *platform.Platform) {
	if cfg.Attribution {
		plat.EnableAttribution()
	}
}

// trace returns the span track of worker w; nil (the valid no-op
// track) when tracing is disabled.
func (cfg *Config) trace(w int) *telemetry.WorkerTracer {
	return cfg.Tracer.Worker(w)
}

// newCapture returns a per-worker capture log for runtime events, or
// nil (the valid no-op log) when telemetry is disabled.
func (cfg *Config) newCapture() *telemetry.EventLog {
	if cfg.Telemetry == nil {
		return nil
	}
	return telemetry.NewCaptureLog()
}

// schedule returns the campaign's layout-seed schedule.
func (cfg *Config) schedule() campaign.Schedule {
	return campaign.NewSchedule(cfg.SeedBase)
}

// busStream is the Split stream index of the bus-contention seed
// schedule (kept distinct from the layout stream).
const busStream = 1

// record books one merged run into the series, the telemetry campaign
// and the MBPTA stream, and fires the progress callback. It is called
// only from the engine's canonical-order merge, so writes land in run
// order on the calling goroutine.
func (cfg *Config) record(s *Series, i int, seed uint64, res platform.RunResult) {
	uoa := uoaCycles(res)
	// Pre-sized indexed writes, not append: the slices are allocated to
	// cfg.Runs up front so a merge can never grow a slice another
	// reader holds, and so indices are explicit rather than implied by
	// append order.
	s.Cycles[i] = uoa
	s.Results[i] = res
	s.Attribution.Add(res.Attribution)
	cfg.Stream.Observe(uoa)
	cfg.Telemetry.RecordRun(telemetry.RunRecord{
		Series: s.Name, Index: i, Seed: seed,
		Cycles: res.Cycles, UoA: uoa, Attribution: res.Attribution,
	})
	if cfg.Observer != nil {
		cfg.Observer.ObserveRun(s.Name, i, uoa)
	}
	if cfg.Progress != nil {
		cfg.Progress(s.Name, i+1, cfg.Runs)
	}
}

// shard is one run's outcome as produced by a campaign worker, before
// the canonical-order merge.
type shard struct {
	seed   uint64
	res    platform.RunResult
	events []telemetry.Event
}

// worker executes one run by canonical index on worker-private state.
type worker = campaign.RunFunc[shard]

// runSeries shards a series' runs across the campaign engine and
// merges the results back in canonical run order: replayed runtime
// events first (exactly where the sequential loop would have emitted
// them live, at the pre-run campaign-clock position), then the run
// record itself.
func (cfg Config) runSeries(name string, newWorker func(w int) (worker, error)) (*Series, error) {
	s := &Series{
		Name:    name,
		Cycles:  make([]float64, cfg.Runs),
		Results: make([]platform.RunResult, cfg.Runs),
	}
	if cfg.Observer != nil {
		cfg.Observer.BeginSeries(name, cfg.Runs)
	}
	ecfg := campaign.Config{Runs: cfg.Runs, Workers: cfg.Workers, Tracer: cfg.Tracer, Interrupt: cfg.Interrupt}
	err := campaign.Execute(ecfg, newWorker, func(i int, sh shard) error {
		if cfg.Telemetry != nil {
			cfg.Telemetry.Events.ReplayAt(cfg.Telemetry.Now(), sh.events)
		}
		cfg.record(s, i, sh.seed, sh.res)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if cfg.Observer != nil {
		cfg.Observer.EndSeries(name)
	}
	return s, nil
}

// uoaCycles extracts the unit-of-analysis duration from the run's
// instrumentation trace (ipoints 1→2, §V); it falls back to the whole
// run when the trace is absent.
func uoaCycles(res platform.RunResult) float64 {
	if ds := rvs.Durations(res.Trace, 1, 2); len(ds) > 0 {
		return float64(ds[0])
	}
	return float64(res.Cycles)
}

// RunBaseline measures the original (non-randomised) binary: one fixed
// sequential layout, fresh input per run, cache flush and memory reload
// between runs — the paper's COTS configuration.
func RunBaseline(cfg Config) (*Series, error) {
	return cfg.runSeries("No Rand", func(w int) (worker, error) {
		p, err := spaceapp.BuildControl()
		if err != nil {
			return nil, err
		}
		img, err := loader.Load(p, loader.DefaultSequentialConfig())
		if err != nil {
			return nil, err
		}
		plat := platform.New(platform.ProximaLEON3())
		cfg.instrument(plat)
		plat.LoadImage(img)
		// Boot once, then fork the booted platform before every run: the
		// copy-on-write restore touches only the pages the previous run
		// dirtied, where the old clear-and-reload path re-applied the whole
		// image (and, before dirty-page tracking, reallocated every page).
		snap := plat.Snapshot()
		wt := cfg.trace(w)
		return func(i int) (shard, error) {
			in := spaceapp.GenControlInput(cfg.InputSeedBase + uint64(i))
			boot := wt.Begin(telemetry.SpanBoot, -1)
			plat.Restore(snap)
			err := spaceapp.ApplyControlInput(plat.Mem, img, in)
			wt.End(boot)
			if err != nil {
				return shard{}, err
			}
			exec := wt.Begin(telemetry.SpanExecute, -1)
			res, err := plat.Run()
			wt.End(exec)
			if err != nil {
				return shard{}, err
			}
			if err := verify(res, in); err != nil {
				return shard{}, err
			}
			return shard{res: res}, nil
		}, nil
	})
}

// dsrSeries is the common DSR campaign: each worker owns a fresh
// platform and DSR runtime (newOpts builds worker-private options, in
// particular a private PRNG source), and every run reboots with its
// schedule-derived seed.
func dsrSeries(cfg Config, name string, newOpts func() core.Options) (*Series, error) {
	sched := cfg.schedule()
	return cfg.runSeries(name, func(w int) (worker, error) {
		p, err := spaceapp.BuildControl()
		if err != nil {
			return nil, err
		}
		plat := platform.New(platform.ProximaLEON3())
		cfg.instrument(plat)
		rt, err := core.NewRuntime(p, plat, newOpts())
		if err != nil {
			return nil, err
		}
		capture := cfg.newCapture()
		rt.SetEventLog(capture)
		wt := cfg.trace(w)
		rt.SetTracer(wt)
		return func(i int) (shard, error) {
			seed := sched.Seed(i)
			if _, err := rt.Reboot(seed); err != nil {
				return shard{}, err
			}
			in := spaceapp.GenControlInput(cfg.InputSeedBase + uint64(i))
			if err := spaceapp.ApplyControlInput(plat.Mem, rt.Image(), in); err != nil {
				return shard{}, err
			}
			exec := wt.Begin(telemetry.SpanExecute, -1)
			res, err := rt.Run()
			wt.End(exec)
			if err != nil {
				return shard{}, err
			}
			if err := verify(res, in); err != nil {
				return shard{}, err
			}
			return shard{seed: seed, res: res, events: capture.Take()}, nil
		}, nil
	})
}

// RunDSR measures the dynamically software-randomised binary: partition
// reboot with a fresh seed before every run (§IV).
func RunDSR(cfg Config) (*Series, error) {
	return dsrSeries(cfg, "Sw Rand", func() core.Options { return core.Options{} })
}

// RunDSRLazy is the A1 ablation: lazy relocation inside the measured
// window.
func RunDSRLazy(cfg Config) (*Series, error) {
	return dsrSeries(cfg, "Sw Rand (lazy)", func() core.Options { return core.Options{Mode: core.Lazy} })
}

// RunDSRWithOffsetBound is the A2 ablation: DSR with a caller-chosen
// placement offset bound (e.g. the L1 way size instead of the L2's).
func RunDSRWithOffsetBound(cfg Config, bound int, name string) (*Series, error) {
	return dsrSeries(cfg, name, func() core.Options { return core.Options{OffsetBound: bound} })
}

// RunDSRWithPRNG is the A3 ablation: DSR drawing from a caller-chosen
// generator (MWC vs LFSR). newSrc is a factory rather than an instance
// because each campaign worker needs its own private source: a Source
// is not safe for concurrent use, and Seed fully re-initialises state,
// so factory-fresh instances give identical results at any worker
// count.
func RunDSRWithPRNG(cfg Config, newSrc func() prng.Source, name string) (*Series, error) {
	return dsrSeries(cfg, name, func() core.Options { return core.Options{Source: newSrc()} })
}

// RunHWRand is the A4 ablation: the unmodified binary on hardware
// time-randomised caches (random placement and replacement), reseeded
// per run.
func RunHWRand(cfg Config) (*Series, error) {
	sched := cfg.schedule()
	return cfg.runSeries("Hw Rand", func(w int) (worker, error) {
		p, err := spaceapp.BuildControl()
		if err != nil {
			return nil, err
		}
		img, err := loader.Load(p, loader.DefaultSequentialConfig())
		if err != nil {
			return nil, err
		}
		plat := platform.New(platform.HWRandLEON3())
		cfg.instrument(plat)
		plat.LoadImage(img)
		// Fork the booted platform per run; the per-run cache reseed comes
		// after the restore so every run's placement hash and replacement
		// stream are the schedule's, exactly as on a fresh boot.
		snap := plat.Snapshot()
		wt := cfg.trace(w)
		return func(i int) (shard, error) {
			seed := sched.Seed(i)
			boot := wt.Begin(telemetry.SpanBoot, -1)
			plat.Restore(snap)
			plat.ReseedCaches(seed)
			in := spaceapp.GenControlInput(cfg.InputSeedBase + uint64(i))
			err := spaceapp.ApplyControlInput(plat.Mem, img, in)
			wt.End(boot)
			if err != nil {
				return shard{}, err
			}
			exec := wt.Begin(telemetry.SpanExecute, -1)
			res, err := plat.Run()
			wt.End(exec)
			if err != nil {
				return shard{}, err
			}
			if err := verify(res, in); err != nil {
				return shard{}, err
			}
			return shard{seed: seed, res: res}, nil
		}, nil
	})
}

// RunStatic is the A5 ablation: static software randomisation — one
// fresh randomised binary per run, zero runtime overhead (TASA-style).
func RunStatic(cfg Config) (*Series, error) {
	sched := cfg.schedule()
	return cfg.runSeries("Static Rand", func(w int) (worker, error) {
		p, err := spaceapp.BuildControl()
		if err != nil {
			return nil, err
		}
		plat := platform.New(platform.ProximaLEON3())
		cfg.instrument(plat)
		wt := cfg.trace(w)
		return func(i int) (shard, error) {
			seed := sched.Seed(i)
			// Static randomisation pays its cost at build time: the fresh
			// per-run image build is the relocation phase here.
			reloc := wt.Begin(telemetry.SpanReloc, -1)
			img, err := core.StaticBuild(p, loader.DefaultSequentialConfig(), plat.Cfg.L2.WaySize(), seed)
			wt.End(reloc)
			if err != nil {
				return shard{}, err
			}
			boot := wt.Begin(telemetry.SpanBoot, -1)
			plat.LoadImage(img)
			plat.Reload()
			in := spaceapp.GenControlInput(cfg.InputSeedBase + uint64(i))
			err = spaceapp.ApplyControlInput(plat.Mem, img, in)
			wt.End(boot)
			if err != nil {
				return shard{}, err
			}
			exec := wt.Begin(telemetry.SpanExecute, -1)
			res, err := plat.Run()
			wt.End(exec)
			if err != nil {
				return shard{}, err
			}
			if err := verify(res, in); err != nil {
				return shard{}, err
			}
			return shard{seed: seed, res: res}, nil
		}, nil
	})
}

// counterRange formats a min-max counter span the way Table I does
// ("126-127", or just "126" when constant).
func counterRange(vals []uint64) string {
	min, max := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min == max {
		return fmt.Sprintf("%d", min)
	}
	return fmt.Sprintf("%d-%d", min, max)
}

// Table1Row is one line of Table I.
type Table1Row struct {
	Config string
	ICMiss string
	DCMiss string
	L2Miss string
	FPU    string
	Instr  string
	// L2MissRatio is the §VI derived metric (min-max).
	L2MissRatio string
}

// Table1 builds the performance-counter comparison of Table I.
func Table1(series ...*Series) []Table1Row {
	rows := make([]Table1Row, 0, len(series))
	for _, s := range series {
		n := len(s.Results)
		ic := make([]uint64, n)
		dc := make([]uint64, n)
		l2 := make([]uint64, n)
		fpu := make([]uint64, n)
		instr := make([]uint64, n)
		ratios := make([]float64, n)
		for i, r := range s.Results {
			ic[i], dc[i], l2[i] = r.PMCs.ICMiss, r.PMCs.DCMiss, r.PMCs.L2Miss
			fpu[i], instr[i] = r.PMCs.FPU, r.PMCs.Instr
			ratios[i] = r.PMCs.L2MissRatio()
		}
		rows = append(rows, Table1Row{
			Config: s.Name,
			ICMiss: counterRange(ic),
			DCMiss: counterRange(dc),
			L2Miss: counterRange(l2),
			FPU:    counterRange(fpu),
			Instr:  counterRange(instr),
			L2MissRatio: fmt.Sprintf("%.1f%%-%.1f%%",
				stats.Min(ratios)*100, stats.Max(ratios)*100),
		})
	}
	return rows
}

// FormatTable1 renders Table I as text.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE I: PERFORMANCE COUNTER READINGS FOR THE CONTROL TASK\n")
	fmt.Fprintf(&b, "%-16s %-12s %-12s %-12s %-10s %-16s %s\n",
		"", "icmiss", "dcmiss", "L2miss", "FPU", "Instr", "L2 miss ratio")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-12s %-12s %-12s %-10s %-16s %s\n",
			r.Config, r.ICMiss, r.DCMiss, r.L2Miss, r.FPU, r.Instr, r.L2MissRatio)
	}
	return b.String()
}

// Fig2Bar is one configuration of Fig. 2.
type Fig2Bar struct {
	Config string
	Min    float64
	Mean   float64
	Max    float64
}

// Figure2 builds the min/average/max comparison of Fig. 2.
func Figure2(series ...*Series) []Fig2Bar {
	bars := make([]Fig2Bar, 0, len(series))
	for _, s := range series {
		min, mean, max := s.MinMeanMax()
		bars = append(bars, Fig2Bar{Config: s.Name, Min: min, Mean: mean, Max: max})
	}
	return bars
}

// FormatFigure2 renders Fig. 2 as text with proportional bars.
func FormatFigure2(bars []Fig2Bar) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIG. 2: AVERAGE PERFORMANCE COMPARISON (execution time, cycles)\n")
	var scale float64
	for _, bar := range bars {
		if bar.Max > scale {
			scale = bar.Max
		}
	}
	for _, bar := range bars {
		fmt.Fprintf(&b, "%-16s min=%-10.0f avg=%-10.0f max=%-10.0f |%s\n",
			bar.Config, bar.Min, bar.Mean, bar.Max,
			strings.Repeat("#", int(bar.Mean/scale*40))+
				strings.Repeat(".", int((bar.Max-bar.Mean)/scale*40)))
	}
	return b.String()
}

// Figure3 runs MBPTA on a series and returns the report that backs the
// pWCET curve of Fig. 3.
func Figure3(s *Series, opts mbpta.Options) (*mbpta.Report, error) {
	return mbpta.Analyse(s.Cycles, opts)
}

// RenderFigure3 renders the Fig. 3 plot for a series.
func RenderFigure3(s *Series, rep *mbpta.Report) string {
	return rvs.RenderCurve(rep, s.Cycles, 72, 18)
}

// FormatIID renders the E4 i.i.d. verification summary.
func FormatIID(rep mbpta.IIDReport) string {
	verdict := "REJECTED — EVT not applicable"
	if rep.Pass() {
		verdict = "PASSED — EVT applicable"
	}
	return fmt.Sprintf(
		"i.i.d. verification (alpha=%.2f):\n"+
			"  Ljung-Box (independence):        Q=%.2f  p=%.4f\n"+
			"  Kolmogorov-Smirnov (identical):  D=%.4f p=%.4f\n"+
			"  verdict: %s\n",
		rep.Alpha, rep.LjungBox.Statistic, rep.LjungBox.PValue,
		rep.KS.Statistic, rep.KS.PValue, verdict)
}

// FormatMargin renders the E5 comparison against industrial practice.
func FormatMargin(mc mbpta.MarginComparison, dsrMOET float64) string {
	return fmt.Sprintf(
		"pWCET vs industrial practice:\n"+
			"  non-randomised MOET:             %.0f cycles\n"+
			"  MOET + %.0f%% engineering margin:  %.0f cycles\n"+
			"  DSR MOET:                        %.0f cycles\n"+
			"  MBPTA pWCET @ 1e-15:             %.0f cycles (+%.2f%% over DSR MOET)\n"+
			"  pWCET is %.1f%% tighter than the margin budget\n",
		mc.MOETRef, mc.Margin*100, mc.Budget, dsrMOET,
		mc.PWCET, mc.OverMOET*100, mc.Gain*100)
}

// RunDSRWithContention is the future-work experiment of §VII (ii): DSR
// under multicore bus interference. With a random (time-randomisable)
// arbiter model the interference is one more i.i.d. jitter source, so
// MBPTA still applies and the pWCET absorbs the contention; with the
// worst-case model every transaction is padded, giving the conventional
// deterministic upper-bounding treatment for comparison.
func RunDSRWithContention(cfg Config, cont bus.Contention, name string) (*Series, error) {
	sched := cfg.schedule()
	busSched := sched.Split(busStream)
	return cfg.runSeries(name, func(w int) (worker, error) {
		p, err := spaceapp.BuildControl()
		if err != nil {
			return nil, err
		}
		plat := platform.New(platform.ProximaLEON3())
		cfg.instrument(plat)
		plat.Bus.SetContention(cont)
		rt, err := core.NewRuntime(p, plat, core.Options{})
		if err != nil {
			return nil, err
		}
		capture := cfg.newCapture()
		rt.SetEventLog(capture)
		wt := cfg.trace(w)
		rt.SetTracer(wt)
		return func(i int) (shard, error) {
			seed := sched.Seed(i)
			// Reseed before boot too: the relocation pass's bus traffic
			// must draw from run i's contention stream, not from state
			// left by whatever run this worker executed before — the
			// determinism invariant again. The second reseed restores
			// the measured window's canonical draw sequence.
			plat.Bus.ReseedContention(busSched.Seed(i))
			if _, err := rt.Reboot(seed); err != nil {
				return shard{}, err
			}
			plat.Bus.ReseedContention(busSched.Seed(i))
			in := spaceapp.GenControlInput(cfg.InputSeedBase + uint64(i))
			if err := spaceapp.ApplyControlInput(plat.Mem, rt.Image(), in); err != nil {
				return shard{}, err
			}
			exec := wt.Begin(telemetry.SpanExecute, -1)
			res, err := rt.Run()
			wt.End(exec)
			if err != nil {
				return shard{}, err
			}
			if err := verify(res, in); err != nil {
				return shard{}, err
			}
			return shard{seed: seed, res: res, events: capture.Take()}, nil
		}, nil
	})
}

// RunProcessing measures the image-processing task under DSR with scenes
// drawn at the given lit-lens fraction. It supports the future-work
// study of §VII (i): the task's execution path depends on how many
// lenses are lightened (the high-level jitter source), and MBPTA bounds
// only the paths exercised — measurements at the worst path (all lenses
// lit, litFrac=1) upper-bound the path dimension the way EPC
// (Ziccardi et al., RTSS'15) would.
func RunProcessing(cfg Config, litFrac float64, name string) (*Series, error) {
	sched := cfg.schedule()
	return cfg.runSeries(name, func(w int) (worker, error) {
		p, err := spaceapp.BuildProcessing()
		if err != nil {
			return nil, err
		}
		plat := platform.New(platform.ProximaLEON3())
		cfg.instrument(plat)
		rt, err := core.NewRuntime(p, plat, core.Options{})
		if err != nil {
			return nil, err
		}
		capture := cfg.newCapture()
		rt.SetEventLog(capture)
		wt := cfg.trace(w)
		rt.SetTracer(wt)
		return func(i int) (shard, error) {
			seed := sched.Seed(i)
			if _, err := rt.Reboot(seed); err != nil {
				return shard{}, err
			}
			scene := spaceapp.GenScene(cfg.InputSeedBase+uint64(i), litFrac)
			if err := spaceapp.ApplyScene(plat.Mem, rt.Image(), scene); err != nil {
				return shard{}, err
			}
			exec := wt.Begin(telemetry.SpanExecute, -1)
			res, err := rt.Run()
			wt.End(exec)
			if err != nil {
				return shard{}, err
			}
			if want := spaceapp.ProcessingReference(scene).RMSBits; res.ExitValue != want {
				return shard{}, fmt.Errorf("experiments: processing mismatch: %#x vs %#x", res.ExitValue, want)
			}
			return shard{seed: seed, res: res, events: capture.Take()}, nil
		}, nil
	})
}

// ControlLayoutWeights returns the interaction weights of the control
// task for cache-aware positioning: the static call graph plus the data
// pairs that are hot across the EDAC-scrub pass (the conflicts behind
// the baseline's bad layout).
func ControlLayoutWeights(p *prog.Program) layout.Weights {
	w := layout.StaticCallWeights(p)
	// The corrector pass re-reads the influence matrix and filter state
	// right after the scrub streams the whole window through the caches.
	w.Add(spaceapp.SymInfluence, spaceapp.SymScrub, 10)
	w.Add(spaceapp.SymFilterState, spaceapp.SymScrub, 5)
	w.Add(spaceapp.SymOutF, spaceapp.SymScrub, 3)
	// The CRC stages alternate between the frame, the ring and the table.
	w.Add(spaceapp.SymCRCTable, spaceapp.SymTelemetry, 3)
	w.Add(spaceapp.SymCRCTable, spaceapp.SymHistory, 3)
	w.Add(spaceapp.SymTelemetry, spaceapp.SymHistory, 2)
	return w
}

// RunPositioned is the A7 ablation: the cache-aware procedure/data
// positioning of Mezzetti & Vardanega (RTAS'13, the paper's reference
// [12]) — one deterministic layout engineered to avoid the weighted
// conflicts, instead of randomising over all layouts. It typically beats
// DSR's average (no overhead, no bad layouts) but, like any single
// layout, offers no representativeness argument and must be re-derived
// at every integration.
func RunPositioned(cfg Config) (*Series, error) {
	return cfg.runSeries("Positioned", func(w int) (worker, error) {
		p, err := spaceapp.BuildControl()
		if err != nil {
			return nil, err
		}
		plat := platform.New(platform.ProximaLEON3())
		pl, err := layout.Optimize(p, plat.Cfg.L2, ControlLayoutWeights(p), loader.DefaultSequentialConfig())
		if err != nil {
			return nil, err
		}
		img, err := loader.BuildImage(p, pl)
		if err != nil {
			return nil, err
		}
		cfg.instrument(plat)
		plat.LoadImage(img)
		snap := plat.Snapshot()
		wt := cfg.trace(w)
		return func(i int) (shard, error) {
			in := spaceapp.GenControlInput(cfg.InputSeedBase + uint64(i))
			boot := wt.Begin(telemetry.SpanBoot, -1)
			plat.Restore(snap)
			err := spaceapp.ApplyControlInput(plat.Mem, img, in)
			wt.End(boot)
			if err != nil {
				return shard{}, err
			}
			exec := wt.Begin(telemetry.SpanExecute, -1)
			res, err := plat.Run()
			wt.End(exec)
			if err != nil {
				return shard{}, err
			}
			if err := verify(res, in); err != nil {
				return shard{}, err
			}
			return shard{res: res}, nil
		}, nil
	})
}
