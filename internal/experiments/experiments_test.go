package experiments

import (
	"strings"
	"testing"

	"dsr/internal/bus"
	"dsr/internal/mbpta"
	"dsr/internal/spaceapp"
	"dsr/internal/stats"
)

// smallConfig keeps unit-test campaigns quick; the full-scale campaigns
// run in bench_test.go and cmd/dsrsim.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Runs = 60
	cfg.MBPTA.BlockSize = 10
	cfg.MBPTA.LjungBoxLags = 10
	return cfg
}

func TestBaselineSeries(t *testing.T) {
	s, err := RunBaseline(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cycles) != 60 || len(s.Results) != 60 {
		t.Fatal("series size")
	}
	min, mean, max := s.MinMeanMax()
	if !(min <= mean && mean <= max) || min == 0 {
		t.Errorf("min/mean/max=%f/%f/%f", min, mean, max)
	}
	// Input variation alone gives limited spread for a fixed layout.
	if max/min > 1.5 {
		t.Errorf("baseline spread %f implausible", max/min)
	}
}

func TestDSRSeriesAndTable1Shape(t *testing.T) {
	cfg := smallConfig()
	base, err := RunBaseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dsr, err := RunDSR(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Table I shape: DSR adds a small instruction overhead (<10%, paper
	// <2%), identical FPU counts, more L1 misses.
	bi := base.Results[0].PMCs
	di := dsr.Results[0].PMCs
	if di.Instr <= bi.Instr {
		t.Error("DSR did not add instructions")
	}
	overhead := float64(di.Instr-bi.Instr) / float64(bi.Instr)
	if overhead > 0.10 {
		t.Errorf("instruction overhead %.1f%%, want <10%%", overhead*100)
	}
	if di.FPU != bi.FPU {
		t.Errorf("FPU count changed: %d vs %d (must be identical)", di.FPU, bi.FPU)
	}
	var bIC, dIC uint64
	for i := range base.Results {
		bIC += base.Results[i].PMCs.ICMiss
		dIC += dsr.Results[i].PMCs.ICMiss
	}
	if dIC <= bIC {
		t.Errorf("DSR should increase IL1 misses: %d vs %d", dIC, bIC)
	}

	rows := Table1(base, dsr)
	if len(rows) != 2 || rows[0].Config != "No Rand" || rows[1].Config != "Sw Rand" {
		t.Fatalf("rows=%+v", rows)
	}
	text := FormatTable1(rows)
	if !strings.Contains(text, "icmiss") || !strings.Contains(text, "Sw Rand") {
		t.Errorf("table text:\n%s", text)
	}

	// Fig 2 shape: averages within a few percent of each other.
	bars := Figure2(base, dsr)
	if len(bars) != 2 {
		t.Fatal("bars")
	}
	rel := bars[1].Mean / bars[0].Mean
	if rel < 0.7 || rel > 1.3 {
		t.Errorf("DSR/baseline mean ratio %.2f out of band", rel)
	}
	if !strings.Contains(FormatFigure2(bars), "FIG. 2") {
		t.Error("figure text")
	}

	// DSR must show layout-driven variability well above the baseline's
	// input-driven one.
	if stats.StdDev(dsr.Cycles) <= stats.StdDev(base.Cycles) {
		t.Errorf("DSR stddev %.0f <= baseline %.0f",
			stats.StdDev(dsr.Cycles), stats.StdDev(base.Cycles))
	}
}

func TestFigure3AndIID(t *testing.T) {
	cfg := smallConfig()
	cfg.Runs = 250
	// With two tests at the 5% level, ~10% of campaigns fail the gate by
	// chance; the fixed-seed test uses a campaign verified to pass.
	cfg.SeedBase = 1001
	cfg.InputSeedBase = 51000
	cfg.MBPTA.BlockSize = 25
	dsr, err := RunDSR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Figure3(dsr, cfg.MBPTA)
	if err != nil {
		t.Fatalf("MBPTA failed on DSR series: %v", err)
	}
	if !rep.IID.Pass() {
		t.Fatalf("DSR series failed i.i.d.: LB p=%f KS p=%f",
			rep.IID.LjungBox.PValue, rep.IID.KS.PValue)
	}
	if rep.PWCET <= rep.MOET {
		t.Error("pWCET does not upper-bound MOET")
	}
	plot := RenderFigure3(dsr, rep)
	if !strings.Contains(plot, "pWCET curve") {
		t.Error("plot missing")
	}
	iid := FormatIID(rep.IID)
	if !strings.Contains(iid, "PASSED") {
		t.Errorf("iid text:\n%s", iid)
	}

	// E5: margin comparison against the baseline MOET.
	base, err := RunBaseline(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, _, moetRef := base.MinMeanMax()
	mc := mbpta.CompareWithMargin(rep, moetRef, 0.20)
	if mc.Gain <= 0 {
		t.Errorf("pWCET not tighter than the 20%% margin: gain=%f", mc.Gain)
	}
	text := FormatMargin(mc, rep.MOET)
	if !strings.Contains(text, "tighter") {
		t.Errorf("margin text:\n%s", text)
	}
	t.Logf("\n%s", text)
}

func TestHWRandSeries(t *testing.T) {
	cfg := smallConfig()
	s, err := RunHWRand(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StdDev(s.Cycles) == 0 {
		t.Error("hardware randomisation produced no variability")
	}
}

func TestStaticSeries(t *testing.T) {
	cfg := smallConfig()
	s, err := RunStatic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StdDev(s.Cycles) == 0 {
		t.Error("static randomisation produced no variability")
	}
	// Static randomisation must not add instructions.
	base, err := RunBaseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Results[0].PMCs.Instr != base.Results[0].PMCs.Instr {
		t.Errorf("static variant changed instruction count: %d vs %d",
			s.Results[0].PMCs.Instr, base.Results[0].PMCs.Instr)
	}
}

func TestLazySlower(t *testing.T) {
	cfg := smallConfig()
	cfg.Runs = 25
	eager, err := RunDSR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := RunDSRLazy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, em, _ := eager.MinMeanMax()
	_, lm, _ := lazy.MinMeanMax()
	if lm <= em {
		t.Errorf("lazy mean %f not above eager %f", lm, em)
	}
}

func TestCounterRange(t *testing.T) {
	if counterRange([]uint64{5, 5, 5}) != "5" {
		t.Error("constant range")
	}
	if counterRange([]uint64{7, 3, 9}) != "3-9" {
		t.Error("span range")
	}
}

func TestContentionSeries(t *testing.T) {
	cfg := smallConfig()
	cfg.Runs = 40
	quiet, err := RunDSR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := RunDSRWithContention(cfg,
		bus.Contention{Mode: bus.RandomContention, Intensity: 0.3, MaxDelay: 8},
		"Sw Rand + contention")
	if err != nil {
		t.Fatal(err)
	}
	wc, err := RunDSRWithContention(cfg,
		bus.Contention{Mode: bus.WorstCaseContention, MaxDelay: 8},
		"Sw Rand + worst-case bus")
	if err != nil {
		t.Fatal(err)
	}
	_, qm, _ := quiet.MinMeanMax()
	_, rm, _ := rnd.MinMeanMax()
	_, wm, _ := wc.MinMeanMax()
	if !(qm < rm && rm < wm) {
		t.Errorf("contention ordering broken: quiet=%.0f random=%.0f worst=%.0f", qm, rm, wm)
	}
	// Worst-case padding must upper-bound every random-contention run.
	if wcMin, _, _ := wc.MinMeanMax(); wcMin < rm {
		t.Logf("note: worst-case min %.0f below random mean %.0f", wcMin, rm)
	}
}

func TestProcessingPathStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("processing campaigns are slow")
	}
	cfg := smallConfig()
	cfg.Runs = 12
	nominal, err := RunProcessing(cfg, spaceapp.LitFraction, "nominal paths")
	if err != nil {
		t.Fatal(err)
	}
	worst, err := RunProcessing(cfg, 1.0, "worst path")
	if err != nil {
		t.Fatal(err)
	}
	_, nm, nmax := nominal.MinMeanMax()
	wmin, wm, _ := worst.MinMeanMax()
	if wm <= nm {
		t.Errorf("worst-path mean %f not above nominal %f", wm, nm)
	}
	// Every worst-path run must dominate every nominal run: the path
	// dimension is bounded by construction, as EPC requires.
	if wmin <= nmax {
		t.Errorf("worst-path min %f does not dominate nominal max %f", wmin, nmax)
	}
}

func TestPositionedBeatsBaseline(t *testing.T) {
	cfg := smallConfig()
	base, err := RunBaseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pos, err := RunPositioned(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, bm, _ := base.MinMeanMax()
	_, pm, _ := pos.MinMeanMax()
	if pm >= bm {
		t.Errorf("positioned layout (%.0f) not faster than naive baseline (%.0f)", pm, bm)
	}
	// Same binary, same instruction stream: only the layout differs.
	if pos.Results[0].PMCs.Instr != base.Results[0].PMCs.Instr {
		t.Error("positioning changed the instruction count")
	}
}
