package experiments

import (
	"os"
	"strconv"
	"testing"

	"dsr/internal/analysis/wcet"
	"dsr/internal/mem"
	"dsr/internal/prog"
	"dsr/internal/spaceapp"
)

// wcetRuns is the campaign length for the soundness gate. The default
// keeps `go test ./...` quick; CI runs `make wcet-check`, which sets
// WCET_RUNS=200 to satisfy the >=200-run acceptance bar.
func wcetRuns(t *testing.T) int {
	t.Helper()
	if s := os.Getenv("WCET_RUNS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad WCET_RUNS=%q: %v", s, err)
		}
		return n
	}
	if testing.Short() {
		return 12
	}
	return 60
}

// staticBound runs the analyzer in the given mode and fails the test on
// any refusal: every shipped spaceapp program must get a finite bound.
func staticBound(t *testing.T, p *prog.Program, mode wcet.Mode) mem.Cycles {
	t.Helper()
	rep, err := wcet.AnalyzeMode(p, mode, wcet.Config{})
	if err != nil {
		t.Fatalf("AnalyzeMode(%s): %v", mode, err)
	}
	if !rep.Bounded {
		t.Fatalf("AnalyzeMode(%s): not bounded:\n%v", mode, rep.Diags)
	}
	if rep.Saturated {
		t.Fatalf("AnalyzeMode(%s): bound saturated", mode)
	}
	return rep.BoundCycles
}

// assertSound checks the tentpole invariant over a whole campaign:
// every simulated run's cycle count is <= the static bound claimed for
// the binary that ran. It logs the over-estimation factor against the
// campaign MOET so EXPERIMENTS.md numbers stay reproducible.
func assertSound(t *testing.T, s *Series, bound mem.Cycles) {
	t.Helper()
	var moet mem.Cycles
	for i := range s.Results {
		c := s.Results[i].Cycles
		if c > moet {
			moet = c
		}
		if c > bound {
			t.Fatalf("%s run %d: UNSOUND: simulated %d cycles > static bound %d",
				s.Name, i, c, bound)
		}
	}
	t.Logf("%s: %d runs, MOET %d <= bound %d (x%.2f over-estimation)",
		s.Name, len(s.Results), moet, bound, float64(bound)/float64(moet))
}

// TestWCETSoundOverCampaigns is the soundness gate required by the
// analyzer's contract: for the control application under the
// deterministic layout and both DSR modes, and for the processing
// application under DSR, static bound >= observed cycles on every run
// of a randomised campaign. `make wcet-check` runs this with
// WCET_RUNS=200.
func TestWCETSoundOverCampaigns(t *testing.T) {
	runs := wcetRuns(t)
	cfg := DefaultConfig()
	cfg.Runs = runs
	cfg.Workers = 4

	control, err := spaceapp.BuildControl()
	if err != nil {
		t.Fatal(err)
	}
	det := staticBound(t, control, wcet.ModeDet)
	eager := staticBound(t, control, wcet.ModeDSREager)
	lazy := staticBound(t, control, wcet.ModeDSRLazy)

	// The modes form a refinement chain: the deterministic layout is
	// one of the placements the eager join covers, and lazy adds the
	// in-window relocation charge on top of the eager model.
	if det > eager {
		t.Fatalf("mode ordering violated: det %d > dsr-eager %d", det, eager)
	}
	if eager > lazy {
		t.Fatalf("mode ordering violated: dsr-eager %d > dsr-lazy %d", eager, lazy)
	}

	base, err := RunBaseline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSound(t, base, det)

	dsr, err := RunDSR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSound(t, dsr, eager)

	lz, err := RunDSRLazy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSound(t, lz, lazy)
}

// TestWCETSoundProcessing extends the gate to the second spaceapp
// program (input-dependent control flow: the bound must cover every
// generated scene, including the all-lit worst case).
func TestWCETSoundProcessing(t *testing.T) {
	runs := wcetRuns(t)
	cfg := DefaultConfig()
	cfg.Runs = runs
	cfg.Workers = 4

	processing, err := spaceapp.BuildProcessing()
	if err != nil {
		t.Fatal(err)
	}
	bound := staticBound(t, processing, wcet.ModeDSREager)

	for _, litFrac := range []float64{0.1, 0.9} {
		s, err := RunProcessing(cfg, litFrac, "proc")
		if err != nil {
			t.Fatal(err)
		}
		assertSound(t, s, bound)
	}
}
