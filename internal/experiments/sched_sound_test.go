package experiments

import (
	"os"
	"strconv"
	"testing"

	"dsr/internal/analysis/schedfeas"
	"dsr/internal/campaign"
	"dsr/internal/prng"
)

// schedFrames is the executed-frame count of the soundness gate. The
// default keeps `go test ./...` quick; CI runs `make sched-check`,
// which sets SCHED_FRAMES=200 to satisfy the >=200-frame acceptance
// bar (each frame is 11 real partition runs).
func schedFrames(t *testing.T) int {
	t.Helper()
	if s := os.Getenv("SCHED_FRAMES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad SCHED_FRAMES=%q: %v", s, err)
		}
		return n
	}
	if testing.Short() {
		return 4
	}
	return 10
}

// TestSchedFeasSound is the schedule-randomisation soundness gate, the
// schedfeas counterpart of TestWCETSoundOverCampaigns: every schedule
// the randomized executive can draw must be a member of the statically
// enumerated feasible set, and executing the certified frames must
// produce zero window overruns.
//
// The membership half is pure drawing, so it always sweeps at least
// 200 frames per policy regardless of SCHED_FRAMES; the execution half
// (real partition runs through the Layout+Sched E9 cell) is what the
// env var scales.
func TestSchedFeasSound(t *testing.T) {
	frames := schedFrames(t)
	spec := CaseStudySchedSpec()

	// Membership at scale, per policy: drawn schedule passes the spec's
	// own checker AND the certificate's support test on every frame.
	drawFrames := frames
	if drawFrames < 200 {
		drawFrames = 200
	}
	policies := []schedfeas.Policy{
		CaseStudySchedPolicy(false),
		{SegmentChoice: true},
		{PermuteOrder: true},
		{SlotJitterMillis: 40},
		CaseStudySchedPolicy(true),
	}
	for _, policy := range policies {
		rep := schedfeas.Analyze(spec, policy, schedfeas.Config{})
		if rep.Cert == nil {
			t.Fatalf("policy %s: case-study spec not certifiable: %v", policy, rep.Violations)
		}
		seeds := campaign.NewSchedule(42).Split(e9SchedStream)
		for f := 0; f < drawFrames; f++ {
			fs, err := schedfeas.Draw(spec, policy, prng.NewMWC(seeds.Seed(f)))
			if err != nil {
				t.Fatalf("policy %s frame %d: draw failed: %v", policy, f, err)
			}
			if vs := spec.Check(fs); len(vs) != 0 {
				t.Fatalf("policy %s frame %d: UNSOUND: drawn schedule infeasible: %v", policy, f, vs)
			}
			if err := rep.Cert.Contains(fs); err != nil {
				t.Fatalf("policy %s frame %d: UNSOUND: drawn schedule outside certified support: %v",
					policy, f, err)
			}
		}
		t.Logf("policy %-24s: %d drawn frames feasible and inside support (%.1f bits/frame)",
			policy, drawFrames, rep.EntropyBits)
	}

	// Execution at SCHED_FRAMES: the fully randomized E9 cell must run
	// its certified frames with zero temporal-isolation cutoffs, and
	// every observed control arrival must sit inside the certificate.
	cfg := DefaultConfig()
	cfg.Runs = frames
	cfg.Workers = 4
	s, err := RunE9Cell(cfg, E9Cell{LayoutRand: true, SchedRand: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Overruns != 0 {
		t.Fatalf("UNSOUND: %d overruns across %d certified frames", s.Overruns, frames)
	}
	if err := s.OffsetsWithinSupport(); err != nil {
		t.Fatalf("UNSOUND: %v", err)
	}
	t.Logf("executed %d certified frames (%d partition runs): zero overruns, arrivals within support",
		frames, frames*11)
}

// TestSchedFeasMatchesExecCheck pins the det-baseline agreement the
// analyzer promises: on the case-study spec, the deterministic
// analysis verdict must equal the spec checker's verdict on the
// schedule the deterministic executive actually runs.
func TestSchedFeasMatchesExecCheck(t *testing.T) {
	spec := CaseStudySchedSpec()
	rep := schedfeas.Analyze(spec, CaseStudySchedPolicy(false), schedfeas.Config{})
	if !rep.Feasible {
		t.Fatalf("det analysis infeasible: %v", rep.Violations)
	}
	fs, err := schedfeas.Draw(spec, CaseStudySchedPolicy(false), prng.NewMWC(1))
	if err != nil {
		t.Fatal(err)
	}
	if vs := spec.Check(fs); len(vs) != 0 {
		t.Fatalf("deterministic schedule fails the checker: %v", vs)
	}
}
