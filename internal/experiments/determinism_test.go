package experiments

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"testing"

	"dsr/internal/bus"
	"dsr/internal/campaign/determtest"
	"dsr/internal/mbpta"
	"dsr/internal/obs"
	"dsr/internal/platform"
	"dsr/internal/prng"
	"dsr/internal/spaceapp"
	"dsr/internal/telemetry"
)

// The campaign engine's hard invariant: campaign output is
// byte-identical at every worker count. These tests run every Run*
// series once on the legacy sequential path (Workers=1) and once
// sharded wide (Workers=8), and compare everything observable —
// cycles, run results, cycle attribution, the MBPTA stream, progress
// callback order, and the full telemetry export (metrics, events,
// sequence numbers, campaign-clock timestamps) byte for byte.
//
// The suite runs under -race in CI (make race-campaign), which also
// makes it the data-race detector for the worker pool.

// seriesRun is one campaign variant under test.
type seriesRun struct {
	name string
	runs int
	run  func(cfg Config) (*Series, error)
}

// determinismSeries lists every exported series constructor.
func determinismSeries() []seriesRun {
	dl1 := platform.ProximaLEON3().DL1
	l1way := dl1.WaySize()
	return []seriesRun{
		{"Baseline", 16, RunBaseline},
		{"DSR", 16, RunDSR},
		{"DSRLazy", 16, RunDSRLazy},
		{"DSROffsetBound", 16, func(cfg Config) (*Series, error) {
			return RunDSRWithOffsetBound(cfg, l1way, "L1-way bound")
		}},
		{"DSRWithPRNG", 16, func(cfg Config) (*Series, error) {
			return RunDSRWithPRNG(cfg, func() prng.Source { return prng.NewLFSR(1) }, "LFSR")
		}},
		{"HWRand", 16, RunHWRand},
		{"Static", 16, RunStatic},
		{"Contention", 16, func(cfg Config) (*Series, error) {
			return RunDSRWithContention(cfg,
				bus.Contention{Mode: bus.RandomContention, Intensity: 0.3, MaxDelay: 8},
				"contended")
		}},
		{"Processing", 4, func(cfg Config) (*Series, error) {
			return RunProcessing(cfg, spaceapp.LitFraction, "processing")
		}},
		{"Positioned", 16, RunPositioned},
	}
}

// campaignOutput is everything a campaign can emit, captured for
// comparison; output converts it to the shared determtest surface.
type campaignOutput struct {
	series    *Series
	stream    []float64
	progress  []int
	telemetry []byte // full Dump as JSONL
}

// output lifts a capture into the shared byte-identity checker's form.
func (c campaignOutput) output() determtest.Output {
	return determtest.Output{
		Cycles:      c.series.Cycles,
		Results:     c.series.Results,
		Attribution: c.series.Attribution,
		Stream:      c.stream,
		Progress:    c.progress,
		Telemetry:   c.telemetry,
	}
}

// runCampaign executes one series at the given worker count with every
// observability hook enabled.
func runCampaign(t *testing.T, sr seriesRun, workers int) campaignOutput {
	t.Helper()
	camp := telemetry.NewCampaign(0)
	stream := mbpta.NewStream(mbpta.Options{BlockSize: 4})
	cfg := DefaultConfig()
	cfg.Runs = sr.runs
	cfg.Workers = workers
	cfg.Attribution = true
	cfg.Telemetry = camp
	cfg.Stream = stream
	var progress []int
	cfg.Progress = func(series string, done, total int) {
		if total != sr.runs {
			t.Errorf("progress total = %d, want %d", total, sr.runs)
		}
		progress = append(progress, done)
	}
	s, err := sr.run(cfg)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var buf bytes.Buffer
	if err := camp.Dump().WriteJSONL(&buf); err != nil {
		t.Fatalf("workers=%d: dump: %v", workers, err)
	}
	return campaignOutput{
		series:    s,
		stream:    append([]float64(nil), stream.Times()...),
		progress:  progress,
		telemetry: buf.Bytes(),
	}
}

// TestCampaignDeterminism is the invariant test: Workers=8 output must
// be indistinguishable from Workers=1 for every series.
func TestCampaignDeterminism(t *testing.T) {
	for _, sr := range determinismSeries() {
		sr := sr
		t.Run(sr.name, func(t *testing.T) {
			t.Parallel()
			seq := runCampaign(t, sr, 1)
			par := runCampaign(t, sr, 8)
			determtest.Check(t, "workers=8 vs sequential", seq.output(), par.output())
			determtest.CheckCanonicalProgress(t, seq.progress, sr.runs)
		})
	}
}

// TestCampaignDeterminismWorkerSweep checks that every worker count in
// between agrees too (the invariant is "any worker count", not just the
// two endpoints), including counts that do not divide the run count.
func TestCampaignDeterminismWorkerSweep(t *testing.T) {
	sr := seriesRun{"DSR", 17, RunDSR} // prime run count: uneven shards
	ref := runCampaign(t, sr, 1)
	for _, w := range []int{2, 3, 5, 8} {
		got := runCampaign(t, sr, w)
		determtest.Check(t, fmt.Sprintf("workers=%d vs sequential", w), ref.output(), got.output())
	}
}

// TestCampaignDeterminismObserved extends the invariant to the live
// observability stack: a campaign with the span tracer, the obs
// campaign view, a live HTTP server and an attached SSE client must
// produce byte-identical results and telemetry to a plain campaign.
// Observation is strictly one-way.
func TestCampaignDeterminismObserved(t *testing.T) {
	sr := seriesRun{"DSR", 16, RunDSR}
	plain := runCampaign(t, sr, 8)

	camp := telemetry.NewCampaign(0)
	tracer := telemetry.NewTracer()
	view := obs.NewCampaign(camp.Registry, tracer, mbpta.Options{})
	srv, err := obs.Serve("127.0.0.1:0", view)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A live SSE client reads deltas for the whole campaign.
	resp, err := http.Get("http://" + srv.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // closed by Close
	}()

	stream := mbpta.NewStream(mbpta.Options{BlockSize: 4})
	cfg := DefaultConfig()
	cfg.Runs = sr.runs
	cfg.Workers = 8
	cfg.Attribution = true
	cfg.Telemetry = camp
	cfg.Stream = stream
	cfg.Tracer = tracer
	cfg.Observer = view
	var progress []int
	cfg.Progress = func(series string, done, total int) { progress = append(progress, done) }

	s, err := sr.run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	view.Done()
	var buf bytes.Buffer
	if err := camp.Dump().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}

	determtest.Check(t, "observed vs plain", plain.output(), determtest.Output{
		Cycles:      s.Cycles,
		Results:     s.Results,
		Attribution: s.Attribution,
		Stream:      stream.Times(),
		Progress:    progress,
		Telemetry:   buf.Bytes(),
	})

	// The observed campaign really was observed.
	if snap := view.Snapshot(); snap.Done != sr.runs || len(snap.Finished) != 1 {
		t.Fatalf("observer saw %d/%d runs, %d series", snap.Done, sr.runs, len(snap.Finished))
	}
	if spans := tracer.Spans(); len(spans) == 0 {
		t.Fatal("tracer recorded no spans")
	}
	srv.Close()
	<-drained
}

// TestCampaignDefaultWorkers checks Workers=0 (NumCPU) matches the
// sequential reference: the default configuration inherits the
// invariant.
func TestCampaignDefaultWorkers(t *testing.T) {
	sr := seriesRun{"DSR", 16, RunDSR}
	seq := runCampaign(t, sr, 1)
	def := runCampaign(t, sr, 0)
	determtest.Check(t, "workers=0 (NumCPU) vs sequential", seq.output(), def.output())
}
