package experiments

import (
	"bytes"
	"io"
	"net/http"
	"reflect"
	"testing"

	"dsr/internal/bus"
	"dsr/internal/mbpta"
	"dsr/internal/obs"
	"dsr/internal/platform"
	"dsr/internal/prng"
	"dsr/internal/spaceapp"
	"dsr/internal/telemetry"
)

// The campaign engine's hard invariant: campaign output is
// byte-identical at every worker count. These tests run every Run*
// series once on the legacy sequential path (Workers=1) and once
// sharded wide (Workers=8), and compare everything observable —
// cycles, run results, cycle attribution, the MBPTA stream, progress
// callback order, and the full telemetry export (metrics, events,
// sequence numbers, campaign-clock timestamps) byte for byte.
//
// The suite runs under -race in CI (make race-campaign), which also
// makes it the data-race detector for the worker pool.

// seriesRun is one campaign variant under test.
type seriesRun struct {
	name string
	runs int
	run  func(cfg Config) (*Series, error)
}

// determinismSeries lists every exported series constructor.
func determinismSeries() []seriesRun {
	dl1 := platform.ProximaLEON3().DL1
	l1way := dl1.WaySize()
	return []seriesRun{
		{"Baseline", 16, RunBaseline},
		{"DSR", 16, RunDSR},
		{"DSRLazy", 16, RunDSRLazy},
		{"DSROffsetBound", 16, func(cfg Config) (*Series, error) {
			return RunDSRWithOffsetBound(cfg, l1way, "L1-way bound")
		}},
		{"DSRWithPRNG", 16, func(cfg Config) (*Series, error) {
			return RunDSRWithPRNG(cfg, func() prng.Source { return prng.NewLFSR(1) }, "LFSR")
		}},
		{"HWRand", 16, RunHWRand},
		{"Static", 16, RunStatic},
		{"Contention", 16, func(cfg Config) (*Series, error) {
			return RunDSRWithContention(cfg,
				bus.Contention{Mode: bus.RandomContention, Intensity: 0.3, MaxDelay: 8},
				"contended")
		}},
		{"Processing", 4, func(cfg Config) (*Series, error) {
			return RunProcessing(cfg, spaceapp.LitFraction, "processing")
		}},
		{"Positioned", 16, RunPositioned},
	}
}

// campaignOutput is everything a campaign can emit, captured for
// comparison.
type campaignOutput struct {
	series    *Series
	stream    []float64
	progress  []int
	telemetry []byte // full Dump as JSONL
}

// runCampaign executes one series at the given worker count with every
// observability hook enabled.
func runCampaign(t *testing.T, sr seriesRun, workers int) campaignOutput {
	t.Helper()
	camp := telemetry.NewCampaign(0)
	stream := mbpta.NewStream(mbpta.Options{BlockSize: 4})
	cfg := DefaultConfig()
	cfg.Runs = sr.runs
	cfg.Workers = workers
	cfg.Attribution = true
	cfg.Telemetry = camp
	cfg.Stream = stream
	var progress []int
	cfg.Progress = func(series string, done, total int) {
		if total != sr.runs {
			t.Errorf("progress total = %d, want %d", total, sr.runs)
		}
		progress = append(progress, done)
	}
	s, err := sr.run(cfg)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	var buf bytes.Buffer
	if err := camp.Dump().WriteJSONL(&buf); err != nil {
		t.Fatalf("workers=%d: dump: %v", workers, err)
	}
	return campaignOutput{
		series:    s,
		stream:    append([]float64(nil), stream.Times()...),
		progress:  progress,
		telemetry: buf.Bytes(),
	}
}

// TestCampaignDeterminism is the invariant test: Workers=8 output must
// be indistinguishable from Workers=1 for every series.
func TestCampaignDeterminism(t *testing.T) {
	for _, sr := range determinismSeries() {
		sr := sr
		t.Run(sr.name, func(t *testing.T) {
			t.Parallel()
			seq := runCampaign(t, sr, 1)
			par := runCampaign(t, sr, 8)

			if !reflect.DeepEqual(seq.series.Cycles, par.series.Cycles) {
				t.Errorf("cycles differ:\n  seq %v\n  par %v", seq.series.Cycles, par.series.Cycles)
			}
			if !reflect.DeepEqual(seq.series.Results, par.series.Results) {
				t.Error("run results differ (PMCs/trace/attribution)")
			}
			if !reflect.DeepEqual(seq.series.Attribution, par.series.Attribution) {
				t.Errorf("campaign attribution differs:\n  seq %+v\n  par %+v",
					seq.series.Attribution, par.series.Attribution)
			}
			if !reflect.DeepEqual(seq.stream, par.stream) {
				t.Error("MBPTA stream ingestion order differs")
			}
			if !reflect.DeepEqual(seq.progress, par.progress) {
				t.Errorf("progress callbacks differ:\n  seq %v\n  par %v", seq.progress, par.progress)
			}
			for i, d := range seq.progress {
				if d != i+1 {
					t.Fatalf("progress not in canonical order: %v", seq.progress)
				}
			}
			if !bytes.Equal(seq.telemetry, par.telemetry) {
				t.Errorf("telemetry export differs (%d vs %d bytes)",
					len(seq.telemetry), len(par.telemetry))
			}
		})
	}
}

// TestCampaignDeterminismWorkerSweep checks that every worker count in
// between agrees too (the invariant is "any worker count", not just the
// two endpoints), including counts that do not divide the run count.
func TestCampaignDeterminismWorkerSweep(t *testing.T) {
	sr := seriesRun{"DSR", 17, RunDSR} // prime run count: uneven shards
	ref := runCampaign(t, sr, 1)
	for _, w := range []int{2, 3, 5, 8} {
		got := runCampaign(t, sr, w)
		if !reflect.DeepEqual(ref.series.Cycles, got.series.Cycles) {
			t.Errorf("workers=%d: cycles differ from sequential", w)
		}
		if !bytes.Equal(ref.telemetry, got.telemetry) {
			t.Errorf("workers=%d: telemetry differs from sequential", w)
		}
	}
}

// TestCampaignDeterminismObserved extends the invariant to the live
// observability stack: a campaign with the span tracer, the obs
// campaign view, a live HTTP server and an attached SSE client must
// produce byte-identical results and telemetry to a plain campaign.
// Observation is strictly one-way.
func TestCampaignDeterminismObserved(t *testing.T) {
	sr := seriesRun{"DSR", 16, RunDSR}
	plain := runCampaign(t, sr, 8)

	camp := telemetry.NewCampaign(0)
	tracer := telemetry.NewTracer()
	view := obs.NewCampaign(camp.Registry, tracer, mbpta.Options{})
	srv, err := obs.Serve("127.0.0.1:0", view)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A live SSE client reads deltas for the whole campaign.
	resp, err := http.Get("http://" + srv.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // closed by Close
	}()

	stream := mbpta.NewStream(mbpta.Options{BlockSize: 4})
	cfg := DefaultConfig()
	cfg.Runs = sr.runs
	cfg.Workers = 8
	cfg.Attribution = true
	cfg.Telemetry = camp
	cfg.Stream = stream
	cfg.Tracer = tracer
	cfg.Observer = view
	var progress []int
	cfg.Progress = func(series string, done, total int) { progress = append(progress, done) }

	s, err := sr.run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	view.Done()
	var buf bytes.Buffer
	if err := camp.Dump().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain.series.Cycles, s.Cycles) {
		t.Errorf("cycles differ under observation:\n  plain %v\n  obs   %v", plain.series.Cycles, s.Cycles)
	}
	if !reflect.DeepEqual(plain.series.Results, s.Results) {
		t.Error("run results differ under observation")
	}
	if !reflect.DeepEqual(plain.stream, stream.Times()) {
		t.Error("MBPTA stream differs under observation")
	}
	if !reflect.DeepEqual(plain.progress, progress) {
		t.Errorf("progress differs under observation:\n  plain %v\n  obs   %v", plain.progress, progress)
	}
	if !bytes.Equal(plain.telemetry, buf.Bytes()) {
		t.Errorf("telemetry export differs under observation (%d vs %d bytes)",
			len(plain.telemetry), buf.Len())
	}

	// The observed campaign really was observed.
	if snap := view.Snapshot(); snap.Done != sr.runs || len(snap.Finished) != 1 {
		t.Fatalf("observer saw %d/%d runs, %d series", snap.Done, sr.runs, len(snap.Finished))
	}
	if spans := tracer.Spans(); len(spans) == 0 {
		t.Fatal("tracer recorded no spans")
	}
	srv.Close()
	<-drained
}

// TestCampaignDefaultWorkers checks Workers=0 (NumCPU) matches the
// sequential reference: the default configuration inherits the
// invariant.
func TestCampaignDefaultWorkers(t *testing.T) {
	sr := seriesRun{"DSR", 16, RunDSR}
	seq := runCampaign(t, sr, 1)
	def := runCampaign(t, sr, 0)
	if !reflect.DeepEqual(seq.series.Cycles, def.series.Cycles) {
		t.Error("Workers=0 cycles differ from sequential")
	}
	if !bytes.Equal(seq.telemetry, def.telemetry) {
		t.Error("Workers=0 telemetry differs from sequential")
	}
}
