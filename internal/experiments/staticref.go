package experiments

import (
	"fmt"

	"dsr/internal/analysis/wcet"
	"dsr/internal/mem"
	"dsr/internal/spaceapp"
)

// StaticWCET analyses the control application in the given mode with
// exactly the wiring the runtime uses (wcet.AnalyzeMode) and returns
// the static bound. It is the reference line the measurement-based
// results are compared against: for a sound analysis, every campaign
// observation and every pWCET estimate at a believable exceedance
// probability must sit below it.
func StaticWCET(mode wcet.Mode) (mem.Cycles, error) {
	p, err := spaceapp.BuildControl()
	if err != nil {
		return 0, err
	}
	rep, err := wcet.AnalyzeMode(p, mode, wcet.Config{})
	if err != nil {
		return 0, err
	}
	if !rep.Bounded {
		return 0, fmt.Errorf("experiments: static analysis refused the control app in mode %s", mode)
	}
	return rep.BoundCycles, nil
}

// FormatStaticReference renders the static-bound reference block shown
// with the E5 margin comparison: the deterministic and DSR bounds next
// to the corresponding measured maxima and the EVT extrapolation.
func FormatStaticReference(det, dsrBound mem.Cycles, moetRef, dsrMOET, pwcetEst float64) string {
	s := "static WCET reference (internal/analysis/wcet):\n" +
		fmt.Sprintf("  det bound:       %10d cycles (x%.2f over non-randomised MOET)\n",
			det, float64(det)/moetRef) +
		fmt.Sprintf("  dsr-eager bound: %10d cycles (x%.2f over DSR MOET)\n",
			dsrBound, float64(dsrBound)/dsrMOET)
	if pwcetEst > 0 {
		rel := "below"
		if pwcetEst > float64(dsrBound) {
			rel = "above"
		}
		s += fmt.Sprintf("  pWCET @ target:  %10.0f cycles (%s the static DSR bound, x%.2f)\n",
			pwcetEst, rel, float64(dsrBound)/pwcetEst)
	}
	return s
}
