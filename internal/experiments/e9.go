package experiments

import (
	"fmt"
	"strings"

	"dsr/internal/analysis/schedfeas"
	"dsr/internal/campaign"
	"dsr/internal/core"
	"dsr/internal/loader"
	"dsr/internal/mbpta"
	"dsr/internal/mem"
	"dsr/internal/platform"
	"dsr/internal/rtos"
	"dsr/internal/spaceapp"
)

// E9 — schedule randomisation x layout randomisation. DSR randomises
// *where code and data live*; the randomized cyclic executive
// (internal/rtos.RandomizedExecutive, certified by
// internal/analysis/schedfeas) randomises *when partitions run*
// (TaskShuffler++-style schedule randomisation on a time-partitioned
// executive). E9 runs the 2x2 grid over the paper's two-partition
// frame and asks, per cell:
//
//   - feasibility soundness: every drawn major-frame schedule is a
//     member of the statically enumerated feasible set (the executive's
//     runtime membership guard never fires) and no partition overruns
//     its window — the CI gate TestSchedFeasSound scales this up;
//   - timing analysability: the control task's per-frame execution
//     times pass the MBPTA i.i.d. gate and yield a pWCET estimate on
//     the layout-randomised cells (schedule randomisation must not
//     break the probabilistic timing argument);
//   - inference resistance: how hard it is for an adversary observing
//     control-window arrivals to predict the next one — measured
//     guessing entropy of the arrival offset against the analyzer's
//     static guessing-entropy bound (the TaskShuffler++ metric).
//
// The layout axis applies DSR to the control partition (the unit of
// analysis); the processing partition keeps a fixed image in every
// cell so the only things moving across the grid are the two
// randomisation axes under study.

// e9SchedStream is the Split stream of the per-frame schedule-draw
// seeds (busStream = 1 is taken by the contention experiments). Layout
// seeds deliberately use the campaign's root stream: activation f of
// the control task reboots with the same layout seed run f of the
// RunDSR campaign uses, so the Layout Rand cell reproduces the E2/E3
// series and inherits its i.i.d. behaviour.
const e9SchedStream = 2

// CaseStudySchedSpec is the schedulability model of the paper's frame
// (§IV) as a schedfeas spec: a 1 s major frame on the 80 MHz LEON3,
// the high-criticality control task once per frame in a 30 ms window
// (nominal offset 60 ms, free to move anywhere in the frame) and the
// low-criticality image-processing task every 100 ms in a 60 ms
// window, allowed to jitter up to 40 ms past its nominal release. The
// control WCET budget is the E3 pWCET estimate at 10^-15. The same
// spec backs the E9 grid, the CI soundness gate and cmd/dsrsched's
// -builtin casestudy.
func CaseStudySchedSpec() *schedfeas.Spec {
	return &schedfeas.Spec{
		FrameMillis:    1000,
		CyclesPerMilli: 80_000,
		Tasks: []schedfeas.Task{
			{Name: "control", PeriodMillis: 1000, BudgetMillis: 30, PhaseMillis: 60,
				WCETCycles: 280_279, Criticality: 1, JitterMillis: -1},
			{Name: "processing", PeriodMillis: 100, BudgetMillis: 60, PhaseMillis: 0,
				WCETCycles: 1_900_000, Criticality: 0, JitterMillis: 40},
		},
	}
}

// CaseStudySchedPolicy returns the randomizer policy of one E9 grid
// column: the deterministic executive (nominal offsets, zero entropy)
// or the full randomizer (segment choice, order permutation, 40 ms
// slot jitter).
func CaseStudySchedPolicy(rand bool) schedfeas.Policy {
	if !rand {
		return schedfeas.Policy{}
	}
	return schedfeas.Policy{SegmentChoice: true, PermuteOrder: true, SlotJitterMillis: 40}
}

// E9Cell is one cell of the randomisation grid.
type E9Cell struct {
	LayoutRand bool // DSR reboot of the control partition per activation
	SchedRand  bool // randomized (vs nominal) major-frame schedules
}

// Name is the cell's row label.
func (c E9Cell) Name() string {
	switch {
	case c.LayoutRand && c.SchedRand:
		return "Layout+Sched"
	case c.LayoutRand:
		return "Layout Rand"
	case c.SchedRand:
		return "Sched Rand"
	}
	return "No Rand"
}

// index is the cell's stable position in the grid (seed derivation).
func (c E9Cell) index() int {
	i := 0
	if c.LayoutRand {
		i |= 1
	}
	if c.SchedRand {
		i |= 2
	}
	return i
}

// E9Cells is the grid in canonical (row) order.
func E9Cells() []E9Cell {
	return []E9Cell{
		{LayoutRand: false, SchedRand: false},
		{LayoutRand: true, SchedRand: false},
		{LayoutRand: false, SchedRand: true},
		{LayoutRand: true, SchedRand: true},
	}
}

// E9Series is one cell's campaign: Config.Runs major frames through a
// certified executive, with the control task's observables per frame.
type E9Series struct {
	Cell E9Cell
	// Static is the feasibility analysis the cell's executive was
	// certified against (Static.Cert is the certificate).
	Static *schedfeas.Report
	// ControlCycles[f] is frame f's control execution time (the MBPTA
	// unit of analysis); ControlOffsets[f] is the control window's
	// drawn start offset within the frame — the adversary-visible
	// arrival observable.
	ControlCycles  []float64
	ControlOffsets []int
	// Overruns counts window overruns across every partition and frame
	// (temporal-isolation cutoffs; a certified campaign must have none).
	Overruns int
}

// controlReport returns the analyzer's static per-task report for the
// control task.
func (s *E9Series) controlReport() schedfeas.TaskReport {
	for _, tr := range s.Static.Tasks {
		if tr.Task == "control" {
			return tr
		}
	}
	return schedfeas.TaskReport{}
}

// DistinctControlOffsets counts the distinct arrival offsets actually
// observed — soundness demands it never exceed the static count.
func (s *E9Series) DistinctControlOffsets() int {
	seen := map[int]bool{}
	for _, o := range s.ControlOffsets {
		seen[o] = true
	}
	return len(seen)
}

// MeasuredControlGE is the empirical guessing entropy of the control
// arrival offset: the expected number of guesses an adversary needs to
// hit the observed offset when guessing best-first from the campaign's
// own histogram. 1 means the arrival is fully predictable.
func (s *E9Series) MeasuredControlGE() float64 {
	if len(s.ControlOffsets) == 0 {
		return 0
	}
	counts := map[int]int{}
	for _, o := range s.ControlOffsets {
		counts[o]++
	}
	// Sort descending by count (insertion sort over the small histogram).
	var freq []int
	for _, c := range counts {
		freq = append(freq, c)
	}
	for i := 1; i < len(freq); i++ {
		for j := i; j > 0 && freq[j] > freq[j-1]; j-- {
			freq[j], freq[j-1] = freq[j-1], freq[j]
		}
	}
	n := float64(len(s.ControlOffsets))
	ge := 0.0
	for i, c := range freq {
		ge += float64(i+1) * float64(c) / n
	}
	return ge
}

// OffsetsWithinSupport checks every observed control arrival against
// the certificate's support intervals for the control task.
func (s *E9Series) OffsetsWithinSupport() error {
	cert := s.Static.Cert
	for f, off := range s.ControlOffsets {
		ok := false
		for _, iv := range cert.Support {
			if iv.Task == "control" && iv.Activation == 0 &&
				off >= iv.LoMillis && off <= iv.HiMillis {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("frame %d: control arrival %dms outside certified support", f, off)
		}
	}
	return nil
}

// e9Runner hosts one E9 partition: it applies the activation's input
// vector on Activate (after the layout reboot, when the cell
// randomises layouts) and verifies the functional result on Execute —
// randomisation on either axis must never change what the software
// computes.
type e9Runner struct {
	name string
	plat *platform.Platform
	// Fixed-layout hosting: image + booted snapshot, restored per run.
	img  *loader.Image
	snap *platform.Snapshot
	// DSR hosting: runtime rebooted per activation with a schedule seed.
	rt    *core.Runtime
	seeds campaign.Schedule
	// Input generation.
	inputBase uint64
	control   bool
	lastIn    *spaceapp.ControlInput
	lastScene *spaceapp.Scene
}

func (r *e9Runner) Name() string { return r.name }

func (r *e9Runner) image() *loader.Image {
	if r.rt != nil {
		return r.rt.Image()
	}
	return r.img
}

// Activate implements rtos.Runner: partition reboot (fresh layout draw
// under DSR, memory restore otherwise), then the activation's input.
func (r *e9Runner) Activate(act uint64) error {
	if r.rt != nil {
		if _, err := r.rt.Reboot(r.seeds.Seed(int(act))); err != nil {
			return err
		}
	} else {
		r.plat.Restore(r.snap)
	}
	if r.control {
		r.lastIn = spaceapp.GenControlInput(r.inputBase + act)
		return spaceapp.ApplyControlInput(r.plat.Mem, r.image(), r.lastIn)
	}
	r.lastScene = spaceapp.GenScene(r.inputBase+act, spaceapp.LitFraction)
	return spaceapp.ApplyScene(r.plat.Mem, r.image(), r.lastScene)
}

// Execute implements rtos.Runner and verifies the run against the
// golden model before reporting it.
func (r *e9Runner) Execute(budget mem.Cycles) (platform.RunResult, bool, error) {
	var (
		res  platform.RunResult
		done bool
		err  error
	)
	if r.rt != nil {
		res, done, err = r.rt.RunBudget(budget)
	} else {
		res, done, err = r.plat.RunBudget(budget)
	}
	if err != nil || !done {
		return res, done, err
	}
	if r.control {
		if err := verify(res, r.lastIn); err != nil {
			return res, done, err
		}
	} else if want := spaceapp.ProcessingReference(r.lastScene).RMSBits; res.ExitValue != want {
		return res, done, fmt.Errorf("experiments: processing mismatch: %#x vs %#x", res.ExitValue, want)
	}
	return res, done, nil
}

// newE9Control builds the cell's control-partition runner.
func newE9Control(cell E9Cell, layoutSeeds campaign.Schedule, inputBase uint64) (*e9Runner, error) {
	p, err := spaceapp.BuildControl()
	if err != nil {
		return nil, err
	}
	plat := platform.New(platform.ProximaLEON3())
	r := &e9Runner{name: "control", plat: plat, inputBase: inputBase, control: true}
	if cell.LayoutRand {
		rt, err := core.NewRuntime(p, plat, core.Options{})
		if err != nil {
			return nil, err
		}
		r.rt, r.seeds = rt, layoutSeeds
		return r, nil
	}
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		return nil, err
	}
	plat.LoadImage(img)
	r.img, r.snap = img, plat.Snapshot()
	return r, nil
}

// newE9Processing builds the fixed-image processing runner every cell
// shares.
func newE9Processing(inputBase uint64) (*e9Runner, error) {
	p, err := spaceapp.BuildProcessing()
	if err != nil {
		return nil, err
	}
	plat := platform.New(platform.ProximaLEON3())
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		return nil, err
	}
	plat.LoadImage(img)
	return &e9Runner{
		name: "processing", plat: plat, img: img, snap: plat.Snapshot(),
		inputBase: inputBase,
	}, nil
}

// e9Shard is one frame's outcome before the canonical merge.
type e9Shard struct {
	cycles   float64
	offset   int
	overruns int
}

// RunE9Cell runs one grid cell: Config.Runs certified major frames
// through the campaign engine, each frame a pure function of its index
// (schedule draw, layout seeds and inputs all schedule-derived), so
// the cell is byte-identical at every worker count.
func RunE9Cell(cfg Config, cell E9Cell) (*E9Series, error) {
	spec := CaseStudySchedSpec()
	policy := CaseStudySchedPolicy(cell.SchedRand)
	static := schedfeas.Analyze(spec, policy, schedfeas.Config{})
	if static.Cert == nil {
		return nil, fmt.Errorf("experiments: policy %s not certifiable: %v", policy, static.Violations)
	}
	s := &E9Series{
		Cell:           cell,
		Static:         static,
		ControlCycles:  make([]float64, cfg.Runs),
		ControlOffsets: make([]int, cfg.Runs),
	}

	sched := cfg.schedule()
	schedSeedBase := sched.Split(e9SchedStream).Seed(cell.index())
	layoutSeeds := sched

	newWorker := func(w int) (campaign.RunFunc[e9Shard], error) {
		ctrl, err := newE9Control(cell, layoutSeeds, cfg.InputSeedBase)
		if err != nil {
			return nil, err
		}
		proc, err := newE9Processing(cfg.InputSeedBase)
		if err != nil {
			return nil, err
		}
		parts := []*rtos.Partition{
			{Name: "control", Criticality: rtos.HighCriticality, Runner: ctrl, PeriodMillis: 1000},
			{Name: "processing", Criticality: rtos.LowCriticality, Runner: proc, PeriodMillis: 100},
		}
		ex, err := rtos.NewRandomizedExecutive(rtos.DefaultConfig(), parts, static.Cert, schedSeedBase)
		if err != nil {
			return nil, err
		}
		return func(i int) (e9Shard, error) {
			acts, err := ex.RunFrame(i)
			if err != nil {
				return e9Shard{}, err
			}
			sh := e9Shard{}
			for _, a := range acts {
				if a.Overrun() {
					sh.overruns++
				}
				if a.Partition == "control" {
					sh.cycles = uoaCycles(a.Result)
					sh.offset = a.OffsetMillis
				}
			}
			return sh, nil
		}, nil
	}

	ecfg := campaign.Config{Runs: cfg.Runs, Workers: cfg.Workers, Interrupt: cfg.Interrupt}
	err := campaign.Execute(ecfg, newWorker, func(i int, sh e9Shard) error {
		s.ControlCycles[i] = sh.cycles
		s.ControlOffsets[i] = sh.offset
		s.Overruns += sh.overruns
		if cfg.Progress != nil {
			cfg.Progress(cell.Name(), i+1, cfg.Runs)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// E9Row is one cell's line in the E9 table.
type E9Row struct {
	Cell   string
	Policy string
	Frames int
	// Static schedule entropy of the cell's randomizer (bits per frame).
	ScheduleBits float64
	// Arrival-inference resistance: observed vs statically enumerated
	// distinct control arrivals, and empirical vs static guessing
	// entropy.
	MeasuredOffsets, StaticOffsets int
	MeasuredGE, StaticGE           float64
	// Feasibility outcome.
	Overruns int
	// Timing side: control MOET, i.i.d. gate, pWCET when estimable.
	MOET     float64
	IID      *mbpta.IIDReport // nil when the campaign is too short to test
	PWCET    float64          // 0 when the campaign is too short for a tail fit
}

// E9Report is the experiment outcome: the grid and three verdicts.
type E9Report struct {
	Rows []E9Row
	// Sound: zero overruns everywhere and every observed control
	// arrival inside the certified support with no more distinct
	// arrivals than statically enumerated.
	Sound bool
	// TimingAnalysable: the layout-randomised cells pass the i.i.d.
	// gate (when the campaign is long enough to run it) and every
	// control observation sits below the spec's WCET budget.
	TimingAnalysable bool
	// InferenceResistant: deterministic schedules are fully predictable
	// (guessing entropy 1) while randomized schedules force the
	// adversary to guess (measured GE > 1 in the sched-rand cells).
	InferenceResistant bool
	// Verdict details for the report.
	SoundDetail, TimingDetail, InferenceDetail string
}

// RunE9 runs the four grid cells and renders the verdicts.
func RunE9(cfg Config) (*E9Report, error) {
	rep := &E9Report{Sound: true, TimingAnalysable: true, InferenceResistant: true}
	var sound, timing, inference []string
	spec := CaseStudySchedSpec()
	var wcetBudget float64
	for _, t := range spec.Tasks {
		if t.Name == "control" {
			wcetBudget = t.WCETCycles
		}
	}

	for _, cell := range E9Cells() {
		s, err := RunE9Cell(cfg, cell)
		if err != nil {
			return nil, err
		}
		ctrl := s.controlReport()
		row := E9Row{
			Cell:            cell.Name(),
			Policy:          s.Static.Policy.String(),
			Frames:          len(s.ControlCycles),
			ScheduleBits:    s.Static.EntropyBits,
			MeasuredOffsets: s.DistinctControlOffsets(),
			StaticOffsets:   ctrl.DistinctOffsets,
			MeasuredGE:      s.MeasuredControlGE(),
			StaticGE:        ctrl.GuessingEntropy,
			Overruns:        s.Overruns,
		}
		for _, c := range s.ControlCycles {
			if c > row.MOET {
				row.MOET = c
			}
		}

		// Feasibility soundness: the executive's membership guard plus
		// the campaign-level arrival checks.
		if s.Overruns != 0 {
			rep.Sound = false
			sound = append(sound, fmt.Sprintf("%s: %d overruns", row.Cell, s.Overruns))
		}
		if err := s.OffsetsWithinSupport(); err != nil {
			rep.Sound = false
			sound = append(sound, fmt.Sprintf("%s: %v", row.Cell, err))
		}
		if row.MeasuredOffsets > row.StaticOffsets {
			rep.Sound = false
			sound = append(sound, fmt.Sprintf("%s: %d observed arrivals > %d enumerated",
				row.Cell, row.MeasuredOffsets, row.StaticOffsets))
		}

		// Timing analysability on the layout-randomised cells.
		if row.MOET > wcetBudget {
			rep.TimingAnalysable = false
			timing = append(timing, fmt.Sprintf("%s: control MOET %.0f > WCET budget %.0f",
				row.Cell, row.MOET, wcetBudget))
		}
		if iid, err := mbpta.CheckIID(s.ControlCycles, cfg.MBPTA); err == nil {
			row.IID = &iid
			if cell.LayoutRand && !iid.Pass() {
				rep.TimingAnalysable = false
				timing = append(timing, fmt.Sprintf("%s: i.i.d. rejected (LB p=%.4f, KS p=%.4f)",
					row.Cell, iid.LjungBox.PValue, iid.KS.PValue))
			}
		}
		if cell.LayoutRand {
			if m, err := mbpta.Analyse(s.ControlCycles, cfg.MBPTA); err == nil {
				row.PWCET = m.PWCET
			}
		}

		// Inference resistance.
		if cell.SchedRand {
			if row.MeasuredGE <= 1 || row.MeasuredOffsets < 2 {
				rep.InferenceResistant = false
				inference = append(inference, fmt.Sprintf("%s: arrivals predictable (GE %.2f over %d offsets)",
					row.Cell, row.MeasuredGE, row.MeasuredOffsets))
			}
		} else if row.MeasuredOffsets != 1 {
			rep.InferenceResistant = false
			inference = append(inference, fmt.Sprintf("%s: deterministic schedule drew %d distinct arrivals",
				row.Cell, row.MeasuredOffsets))
		}
		rep.Rows = append(rep.Rows, row)
	}

	rep.SoundDetail = "every drawn schedule inside the certified feasible set, zero overruns"
	if !rep.Sound {
		rep.SoundDetail = strings.Join(sound, "; ")
	}
	rep.TimingDetail = "control observations below the WCET budget; layout-randomised cells pass the i.i.d. gate"
	if !rep.TimingAnalysable {
		rep.TimingDetail = strings.Join(timing, "; ")
	}
	det, both := rep.Rows[0], rep.Rows[3]
	rep.InferenceDetail = fmt.Sprintf("guessing entropy %.1f -> %.1f (static bound %.1f, %.1f bits of schedule entropy per frame)",
		det.MeasuredGE, both.MeasuredGE, both.StaticGE, both.ScheduleBits)
	if !rep.InferenceResistant {
		rep.InferenceDetail = strings.Join(inference, "; ")
	}
	return rep, nil
}

// FormatE9 renders the E9 grid and verdicts as text.
func FormatE9(r *E9Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E9: SCHEDULE RANDOMISATION x LAYOUT RANDOMISATION\n")
	fmt.Fprintf(&b, "%-14s %-24s %10s %18s %20s %9s %12s %6s %12s\n",
		"", "policy", "sched bits", "arrivals (obs/st)", "guess entr (obs/st)", "overruns", "ctrl MOET", "iid", "pWCET")
	for _, row := range r.Rows {
		iid := "n/a"
		if row.IID != nil {
			iid = "FAIL"
			if row.IID.Pass() {
				iid = "pass"
			}
		}
		pwcet := "-"
		if row.PWCET > 0 {
			pwcet = fmt.Sprintf("%.0f", row.PWCET)
		}
		fmt.Fprintf(&b, "%-14s %-24s %10.1f %11d / %-4d %13.1f / %-4.1f %9d %12.0f %6s %12s\n",
			row.Cell, row.Policy, row.ScheduleBits,
			row.MeasuredOffsets, row.StaticOffsets,
			row.MeasuredGE, row.StaticGE,
			row.Overruns, row.MOET, iid, pwcet)
	}
	verdict := func(ok bool) string {
		if ok {
			return "PASS"
		}
		return "FAIL"
	}
	fmt.Fprintf(&b, "verdict schedule soundness:    %s — %s\n", verdict(r.Sound), r.SoundDetail)
	fmt.Fprintf(&b, "verdict timing analysability:  %s — %s\n", verdict(r.TimingAnalysable), r.TimingDetail)
	fmt.Fprintf(&b, "verdict inference resistance:  %s — %s\n", verdict(r.InferenceResistant), r.InferenceDetail)
	return b.String()
}
