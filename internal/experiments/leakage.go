package experiments

import (
	"fmt"
	"strings"

	"dsr/internal/analysis/leak"
	"dsr/internal/analysis/wcet"
	"dsr/internal/attack"
	"dsr/internal/campaign"
	"dsr/internal/core"
	"dsr/internal/loader"
	"dsr/internal/mem"
	"dsr/internal/platform"
	"dsr/internal/spaceapp"
)

// E8 — side-channel leakage vs timing analysability. One campaign per
// configuration (det, dsr-eager, dsr-lazy) runs the control task under
// the attack observers (internal/attack), measures how many distinct
// observations each attacker actually collects, and compares against
// the static channel-capacity bounds from internal/analysis/leak. The
// experiment ends in two verdicts: timing analysability (the pWCET and
// every observed time sit below the static WCET bound) and side-channel
// resistance (every measured leakage sits below its static bound, the
// bounds form the det ≥ lazy ≥ eager chain, and DSR shows a strictly
// positive access-channel benefit).

// leakLayouts is the layout-reuse factor of a leakage campaign: run i
// reboots with layout seed i mod leakLayouts, so each layout is
// observed under Runs/leakLayouts different inputs. Reuse matters for
// the trace-channel gate — the static trace bound counts hit/miss
// outcome sequences, which under DSR are compared per layout (the
// recorded set indices are placement noise that changes across
// layouts, not secret information).
const leakLayouts = 8

// LeakSeries is one leakage campaign: per-run attack observations under
// one configuration, plus the static report they are gated against.
type LeakSeries struct {
	Name   string
	Mode   wcet.Mode
	Static *leak.Report
	// Seeds[i] is run i's layout seed (0 for the deterministic build).
	Seeds []uint64
	// Obs[i] is run i's attack observation.
	Obs []attack.Observation
	// Cycles[i] is run i's unit-of-analysis duration (pWCET input).
	Cycles []float64
}

// MeasuredAccessBits is the prime+probe attacker's measured leakage:
// log2 of the number of distinct occupancy observations over the whole
// campaign. Deterministic builds give the attacker set attribution
// (vector keys); randomised builds do not (multiset keys). The static
// AccessBits bound covers the joint (layout, input) variation, so the
// distinct count is taken globally.
func (s *LeakSeries) MeasuredAccessBits() float64 {
	keys := map[string]bool{}
	attributable := s.Mode == wcet.ModeDet
	for i := range s.Obs {
		keys[s.Obs[i].PrimeProbeKey(attributable)] = true
	}
	return attack.DistinctBits(len(keys))
}

// MeasuredTraceBits is the evict+time attacker's measured leakage about
// the input: the maximum over layouts of log2(#distinct event-sequence
// observations within that layout). Grouping by layout is what makes
// the comparison against the static trace bound meaningful: the bound
// counts path and hit/miss outcome alternatives, while the raw trace
// also varies with the placement itself across reboots.
func (s *LeakSeries) MeasuredTraceBits() float64 {
	groups := map[uint64]map[string]bool{}
	for i := range s.Obs {
		g := groups[s.Seeds[i]]
		if g == nil {
			g = map[string]bool{}
			groups[s.Seeds[i]] = g
		}
		g[s.Obs[i].TraceKey()] = true
	}
	var bits float64
	for _, g := range groups {
		if b := attack.DistinctBits(len(g)); b > bits {
			bits = b
		}
	}
	return bits
}

// MeasuredTimingBits is the whole-run timing attacker's measured
// leakage: log2(#distinct cycle counts) over the whole campaign. Cycles
// are a function of the path and the per-access outcomes, so the static
// trace bound covers this attacker in every mode, layout variation
// included.
func (s *LeakSeries) MeasuredTimingBits() float64 {
	keys := map[string]bool{}
	for i := range s.Obs {
		keys[s.Obs[i].CyclesKey()] = true
	}
	return attack.DistinctBits(len(keys))
}

// MOET is the campaign's maximum observed (unit-of-analysis) time.
func (s *LeakSeries) MOET() float64 {
	var m float64
	for _, c := range s.Cycles {
		if c > m {
			m = c
		}
	}
	return m
}

// leakShard is one leakage run's outcome before the canonical merge.
type leakShard struct {
	seed   uint64
	obs    attack.Observation
	cycles float64
}

// RunLeak executes one leakage campaign in the given analysis mode.
// Like every campaign, the output is byte-identical at any worker
// count: each worker owns a private platform with its own probe, and
// every run's observation is a pure function of (layout seed, input).
func RunLeak(cfg Config, mode wcet.Mode) (*LeakSeries, error) {
	p, err := spaceapp.BuildControl()
	if err != nil {
		return nil, err
	}
	static, err := leak.AnalyzeMode(p, mode, leak.Config{})
	if err != nil {
		return nil, err
	}
	if !static.Bounded {
		return nil, fmt.Errorf("experiments: leakage analysis refused the control app in mode %s", mode)
	}

	name := map[wcet.Mode]string{
		wcet.ModeDet:      "No Rand",
		wcet.ModeDSREager: "Sw Rand",
		wcet.ModeDSRLazy:  "Sw Rand (lazy)",
	}[mode]
	s := &LeakSeries{
		Name:   name,
		Mode:   mode,
		Static: static,
		Seeds:  make([]uint64, cfg.Runs),
		Obs:    make([]attack.Observation, cfg.Runs),
		Cycles: make([]float64, cfg.Runs),
	}
	sched := cfg.schedule()

	newWorker := func(w int) (campaign.RunFunc[leakShard], error) {
		p, err := spaceapp.BuildControl()
		if err != nil {
			return nil, err
		}
		plat := platform.New(platform.ProximaLEON3())
		if mode == wcet.ModeDet {
			img, err := loader.Load(p, loader.DefaultSequentialConfig())
			if err != nil {
				return nil, err
			}
			plat.LoadImage(img)
			probe := attack.Attach(plat)
			return func(i int) (leakShard, error) {
				plat.Reload()
				in := spaceapp.GenControlInput(cfg.InputSeedBase + uint64(i))
				if err := spaceapp.ApplyControlInput(plat.Mem, img, in); err != nil {
					return leakShard{}, err
				}
				probe.Reset()
				res, err := plat.Run()
				if err != nil {
					return leakShard{}, err
				}
				if err := verify(res, in); err != nil {
					return leakShard{}, err
				}
				return leakShard{obs: probe.Snapshot(res.Cycles), cycles: uoaCycles(res)}, nil
			}, nil
		}
		opts := core.Options{}
		if mode == wcet.ModeDSRLazy {
			opts.Mode = core.Lazy
		}
		rt, err := core.NewRuntime(p, plat, opts)
		if err != nil {
			return nil, err
		}
		probe := attack.Attach(plat)
		return func(i int) (leakShard, error) {
			seed := sched.Seed(i % leakLayouts)
			if _, err := rt.Reboot(seed); err != nil {
				return leakShard{}, err
			}
			in := spaceapp.GenControlInput(cfg.InputSeedBase + uint64(i))
			if err := spaceapp.ApplyControlInput(plat.Mem, rt.Image(), in); err != nil {
				return leakShard{}, err
			}
			// Eager relocation ran inside Reboot, before the observed
			// window; Reset drops its events. Lazy relocates inside Run
			// and is charged to the trace channel by the analyzer.
			probe.Reset()
			res, err := rt.Run()
			if err != nil {
				return leakShard{}, err
			}
			if err := verify(res, in); err != nil {
				return leakShard{}, err
			}
			return leakShard{seed: seed, obs: probe.Snapshot(res.Cycles), cycles: uoaCycles(res)}, nil
		}, nil
	}

	ecfg := campaign.Config{Runs: cfg.Runs, Workers: cfg.Workers}
	err = campaign.Execute(ecfg, newWorker, func(i int, sh leakShard) error {
		s.Seeds[i] = sh.seed
		s.Obs[i] = sh.obs
		s.Cycles[i] = sh.cycles
		if cfg.Progress != nil {
			cfg.Progress(s.Name, i+1, cfg.Runs)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// E8Row is one configuration's line in the E8 table.
type E8Row struct {
	Config string
	Mode   wcet.Mode
	// Access-based channel (prime+probe), measured vs static bound.
	MeasuredAccessBits float64
	StaticAccessBits   float64
	// Trace-based channel (evict+time), measured vs static bound, plus
	// the timing attacker (also bounded by the static trace bound).
	MeasuredTraceBits  float64
	MeasuredTimingBits float64
	StaticTraceBits    float64
	// LayoutEntropyBits is what the attacker must still learn (DSR only).
	LayoutEntropyBits float64
	// Timing side: campaign MOET vs the static WCET bound.
	MOET       float64
	StaticWCET mem.Cycles
}

// E8Report is the experiment outcome: the table and the two verdicts.
type E8Report struct {
	Rows []E8Row
	// PWCET is the MBPTA estimate on the dsr-eager campaign (0 when the
	// campaign is too short for a tail fit).
	PWCET float64
	// TimingAnalysable: every observation and the pWCET estimate sit
	// below the corresponding static WCET bound.
	TimingAnalysable bool
	// SideChannelResistant: every measured leakage sits below its static
	// bound, the access bounds form the eager <= lazy <= det chain, and
	// det strictly exceeds eager (the randomisation benefit).
	SideChannelResistant bool
	// Verdict details for the report.
	TimingDetail, LeakDetail string
}

const leakEps = 1e-9

// RunE8 runs the three leakage campaigns and renders the verdicts.
func RunE8(cfg Config) (*E8Report, error) {
	modes := []wcet.Mode{wcet.ModeDet, wcet.ModeDSREager, wcet.ModeDSRLazy}
	rep := &E8Report{}
	series := make([]*LeakSeries, 0, len(modes))
	for _, mode := range modes {
		s, err := RunLeak(cfg, mode)
		if err != nil {
			return nil, err
		}
		bound, err := StaticWCET(mode)
		if err != nil {
			return nil, err
		}
		series = append(series, s)
		rep.Rows = append(rep.Rows, E8Row{
			Config:             s.Name,
			Mode:               mode,
			MeasuredAccessBits: s.MeasuredAccessBits(),
			StaticAccessBits:   s.Static.AccessBits,
			MeasuredTraceBits:  s.MeasuredTraceBits(),
			MeasuredTimingBits: s.MeasuredTimingBits(),
			StaticTraceBits:    s.Static.TraceBits,
			LayoutEntropyBits:  s.Static.LayoutEntropyBits,
			MOET:               s.MOET(),
			StaticWCET:         bound,
		})
	}

	// Timing analysability: observed times below the static bounds, and
	// the EVT extrapolation (when the campaign is long enough to fit a
	// tail) below the dsr-eager bound.
	timingOK := true
	var timing []string
	for _, r := range rep.Rows {
		if r.MOET > float64(r.StaticWCET) {
			timingOK = false
			timing = append(timing, fmt.Sprintf("%s: MOET %.0f > static bound %d", r.Config, r.MOET, r.StaticWCET))
		}
	}
	if eager := series[1]; len(eager.Cycles) >= 100 {
		if m, err := Figure3(&Series{Name: eager.Name, Cycles: eager.Cycles}, cfg.MBPTA); err == nil {
			rep.PWCET = m.PWCET
			if m.PWCET > float64(rep.Rows[1].StaticWCET) {
				timingOK = false
				timing = append(timing, fmt.Sprintf("pWCET %.0f > static bound %d", m.PWCET, rep.Rows[1].StaticWCET))
			}
		}
	}
	rep.TimingAnalysable = timingOK
	rep.TimingDetail = "every observation and the pWCET estimate sit below the static WCET bounds"
	if !timingOK {
		rep.TimingDetail = strings.Join(timing, "; ")
	}

	// Side-channel resistance: soundness per configuration, then the
	// monotonicity chain and the strict det > eager benefit.
	leakOK := true
	var leaks []string
	for _, r := range rep.Rows {
		if r.MeasuredAccessBits > r.StaticAccessBits+leakEps {
			leakOK = false
			leaks = append(leaks, fmt.Sprintf("%s: measured access %.2f > static %.2f", r.Config, r.MeasuredAccessBits, r.StaticAccessBits))
		}
		if r.MeasuredTraceBits > r.StaticTraceBits+leakEps {
			leakOK = false
			leaks = append(leaks, fmt.Sprintf("%s: measured trace %.2f > static %.2f", r.Config, r.MeasuredTraceBits, r.StaticTraceBits))
		}
		if r.MeasuredTimingBits > r.StaticTraceBits+leakEps {
			leakOK = false
			leaks = append(leaks, fmt.Sprintf("%s: measured timing %.2f > static trace bound %.2f", r.Config, r.MeasuredTimingBits, r.StaticTraceBits))
		}
	}
	det, eager, lazy := rep.Rows[0], rep.Rows[1], rep.Rows[2]
	if !(eager.StaticAccessBits <= lazy.StaticAccessBits+leakEps && lazy.StaticAccessBits <= det.StaticAccessBits+leakEps) {
		leakOK = false
		leaks = append(leaks, fmt.Sprintf("chain violated: eager %.2f, lazy %.2f, det %.2f",
			eager.StaticAccessBits, lazy.StaticAccessBits, det.StaticAccessBits))
	}
	if det.StaticAccessBits <= eager.StaticAccessBits+leakEps {
		leakOK = false
		leaks = append(leaks, "no access-channel benefit from randomisation")
	}
	rep.SideChannelResistant = leakOK
	rep.LeakDetail = fmt.Sprintf("access-channel bound drops %.1f -> %.1f bits under DSR (%.1f bits of layout entropy to guess)",
		det.StaticAccessBits, eager.StaticAccessBits, eager.LayoutEntropyBits)
	if !leakOK {
		rep.LeakDetail = strings.Join(leaks, "; ")
	}
	return rep, nil
}

// FormatE8 renders the E8 table and verdicts as text.
func FormatE8(r *E8Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E8: CACHE SIDE-CHANNEL LEAKAGE VS TIMING ANALYSABILITY\n")
	fmt.Fprintf(&b, "%-16s %22s %22s %14s %12s %22s\n",
		"", "access bits (max/cap)", "trace bits (max/cap)", "timing bits", "layout bits", "MOET / static WCET")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s %11.2f / %-8.2f %11.2f / %-8.2f %14.2f %12.1f %10.0f / %-10d\n",
			row.Config,
			row.MeasuredAccessBits, row.StaticAccessBits,
			row.MeasuredTraceBits, row.StaticTraceBits,
			row.MeasuredTimingBits, row.LayoutEntropyBits,
			row.MOET, row.StaticWCET)
	}
	if r.PWCET > 0 {
		fmt.Fprintf(&b, "pWCET @ target (dsr-eager): %.0f cycles\n", r.PWCET)
	}
	verdict := func(ok bool) string {
		if ok {
			return "PASS"
		}
		return "FAIL"
	}
	fmt.Fprintf(&b, "verdict timing analysability:    %s — %s\n", verdict(r.TimingAnalysable), r.TimingDetail)
	fmt.Fprintf(&b, "verdict side-channel resistance: %s — %s\n", verdict(r.SideChannelResistant), r.LeakDetail)
	return b.String()
}
