package platform

import (
	"strings"
	"testing"

	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/prog"
)

// walkerProgram touches a data array larger than DL1 twice, so the second
// sweep exercises L2 behaviour; returns the sum in %o0.
func walkerProgram(t testing.TB, words int32) *prog.Program {
	t.Helper()
	p := &prog.Program{Name: "walker", Entry: "main"}
	if err := p.AddData(&prog.DataObject{Name: "arr", Size: 4 * 32 * 1024 / 4, Align: 8}); err != nil {
		t.Fatal(err)
	}
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.L2, 0). // sweep counter
		Label("sweep").
		Set(isa.L0, "arr").
		MovI(isa.L1, 0). // index
		MovI(isa.L3, 0). // sum
		Label("loop").
		Ld(isa.L4, isa.L0, 0).
		Add(isa.L3, isa.L3, isa.L4).
		St(isa.L3, isa.L0, 0).
		AddI(isa.L0, isa.L0, 4).
		AddI(isa.L1, isa.L1, 1).
		CmpI(isa.L1, words).
		Bl("loop").
		AddI(isa.L2, isa.L2, 1).
		CmpI(isa.L2, 2).
		Bl("sweep").
		Mov(isa.O0, isa.L3).
		Halt()
	if err := p.AddFunction(b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProximaConfigMatchesPaper(t *testing.T) {
	cfg := ProximaLEON3()
	if cfg.IL1.Size != 16*1024 || cfg.IL1.Ways != 4 {
		t.Error("IL1 geometry")
	}
	if cfg.DL1.Size != 16*1024 || cfg.DL1.Ways != 4 {
		t.Error("DL1 geometry")
	}
	if cfg.DL1.Write != 0 { // WriteThroughNoAllocate is the zero value
		t.Error("DL1 must be write-through no-write-allocate")
	}
	if cfg.L2.Size != 32*1024 || cfg.L2.Ways != 1 {
		t.Error("L2 must be 32KB direct-mapped")
	}
	if cfg.ITLB.Entries != 64 || cfg.DTLB.Entries != 64 {
		t.Error("TLBs must have 64 entries")
	}
	if cfg.CPU.NumWindows != 8 {
		t.Error("8 register windows")
	}
	if cfg.CPU.FPJitterMax != 3 {
		t.Error("FPU jitter bound must be 3 cycles")
	}
}

func TestRunProducesDeterministicCycles(t *testing.T) {
	p := walkerProgram(t, 512)
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	pl := New(ProximaLEON3())
	pl.LoadImage(img)
	r1, err := pl.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := pl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles {
		t.Errorf("same image, different cycles: %d vs %d (flush protocol broken?)", r1.Cycles, r2.Cycles)
	}
	if r1.PMCs != r2.PMCs {
		t.Errorf("same image, different counters:\n%+v\n%+v", r1.PMCs, r2.PMCs)
	}
	if r1.Cycles == 0 || r1.PMCs.Instr == 0 {
		t.Error("empty run")
	}
}

func TestCountersFlow(t *testing.T) {
	p := walkerProgram(t, 2048) // 8KB array: misses in DL1 on first sweep
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	pl := New(ProximaLEON3())
	pl.LoadImage(img)
	r, err := pl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.PMCs.ICMiss == 0 {
		t.Error("no instruction cache misses after flush")
	}
	if r.PMCs.DCMiss == 0 {
		t.Error("no data cache misses for an 8KB walk")
	}
	if r.PMCs.L2Miss == 0 {
		t.Error("no L2 misses")
	}
	if r.PMCs.L2Access == 0 || r.PMCs.L2MissRatio() <= 0 || r.PMCs.L2MissRatio() > 1 {
		t.Errorf("L2 miss ratio=%f", r.PMCs.L2MissRatio())
	}
	if r.PMCs.ITLBMiss == 0 || r.PMCs.DTLBMiss == 0 {
		t.Error("no TLB misses after flush")
	}
	if pl.DRAM.Counters().Reads == 0 {
		t.Error("no DRAM traffic")
	}
}

func TestCacheLatencyVisibleInCycles(t *testing.T) {
	// The same program must be slower on the real hierarchy than with
	// everything hitting: compare first and second identical run windows
	// indirectly via DL1 hits.
	p := walkerProgram(t, 1024)
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	pl := New(ProximaLEON3())
	pl.LoadImage(img)
	r, err := pl.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 2 sweeps over 4KB: second sweep hits in DL1 → hit count exceeds
	// miss count by a wide margin.
	dl1 := pl.DL1.Counters()
	if dl1.Hits <= dl1.Misses {
		t.Errorf("DL1 hits=%d misses=%d; locality lost", dl1.Hits, dl1.Misses)
	}
	if uint64(r.Cycles) <= r.PMCs.Instr {
		t.Errorf("cycles=%d implausibly low for %d instructions", r.Cycles, r.PMCs.Instr)
	}
}

func TestRunWithoutImageErrors(t *testing.T) {
	pl := New(ProximaLEON3())
	if _, err := pl.Run(); err == nil {
		t.Error("run without image succeeded")
	}
}

func TestHWRandVariant(t *testing.T) {
	cfg := HWRandLEON3()
	p := walkerProgram(t, 512)
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	pl := New(cfg)
	pl.LoadImage(img)

	// Different seeds must (usually) give different timing; same seed the same.
	pl.ReseedCaches(1)
	r1, err := pl.Run()
	if err != nil {
		t.Fatal(err)
	}
	pl.ReseedCaches(1)
	r1b, err := pl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r1b.Cycles {
		t.Error("same seed produced different cycles")
	}
	distinct := map[uint64]bool{}
	for seed := uint64(1); seed <= 8; seed++ {
		pl.ReseedCaches(seed)
		r, err := pl.Run()
		if err != nil {
			t.Fatal(err)
		}
		distinct[uint64(r.Cycles)] = true
		if r.ExitValue != r1.ExitValue {
			t.Fatal("functional result changed with cache seed")
		}
	}
	if len(distinct) < 2 {
		t.Error("hardware randomisation produced no timing variation across seeds")
	}
}

func TestExitValue(t *testing.T) {
	p := &prog.Program{Name: "t", Entry: "main"}
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.O0, 1234).
		Halt()
	if err := p.AddFunction(b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	pl := New(ProximaLEON3())
	pl.LoadImage(img)
	r, err := pl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r.ExitValue != 1234 {
		t.Errorf("exit value=%d, want 1234", r.ExitValue)
	}
}

func TestDescribe(t *testing.T) {
	pl := New(ProximaLEON3())
	d := pl.Describe()
	for _, want := range []string{"16KB", "32KB", "64-entry", "8 register windows"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe() missing %q:\n%s", want, d)
		}
	}
}
