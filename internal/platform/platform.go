// Package platform composes the full PROXIMA LEON3 target of Fig. 1:
// the core, split first-level caches, the AMBA bus, the unified
// direct-mapped L2, the SDRAM controller, and the I/D TLBs. It offers the
// measurement protocol primitives the paper's setup provides through
// PikeOS and GRMON: loading an image out-of-band, flushing caches and
// TLBs to a canonical state, and running a program while collecting the
// performance-monitoring counters of Table I.
package platform

import (
	"fmt"

	"dsr/internal/bus"
	"dsr/internal/cache"
	"dsr/internal/cpu"
	"dsr/internal/dram"
	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/mem"
	"dsr/internal/telemetry"
	"dsr/internal/tlb"
)

// Config assembles the per-component configurations.
type Config struct {
	CPU  cpu.Config
	IL1  cache.Config
	DL1  cache.Config
	L2   cache.Config
	ITLB tlb.Config
	DTLB tlb.Config
	Bus  bus.Config
	DRAM dram.Config

	// StackTop is the initial stack pointer (grows down).
	StackTop uint32
	// PageTableBase is where TLB walks read from.
	PageTableBase mem.Addr
}

// ProximaLEON3 returns the reproduction of the paper's platform
// (§III.A): 16KB 4-way L1s (write-through, no-write-allocate data
// cache), 32KB direct-mapped write-back unified L2, 64-entry TLBs,
// LRU/modulo COTS caches.
func ProximaLEON3() Config {
	return Config{
		CPU: cpu.NewDefaultConfig(),
		IL1: cache.Config{
			Name: "IL1", Size: 16 * 1024, LineSize: 32, Ways: 4,
			HitLatency: 0, Placement: cache.PlacementModulo,
			Replacement: cache.ReplacementLRU, Write: cache.WriteBackAllocate,
		},
		DL1: cache.Config{
			Name: "DL1", Size: 16 * 1024, LineSize: 16, Ways: 4,
			HitLatency: 0, Placement: cache.PlacementModulo,
			Replacement: cache.ReplacementLRU, Write: cache.WriteThroughNoAllocate,
		},
		L2: cache.Config{
			Name: "L2", Size: 32 * 1024, LineSize: 32, Ways: 1,
			HitLatency: 6, Placement: cache.PlacementModulo,
			Replacement: cache.ReplacementLRU, Write: cache.WriteBackAllocate,
		},
		ITLB: tlb.Config{Name: "ITLB", Entries: 64, WalkReads: 3, HitLatency: 0},
		DTLB: tlb.Config{Name: "DTLB", Entries: 64, WalkReads: 3, HitLatency: 0},
		Bus:  bus.Config{Name: "AHB", ReadLatency: 2, WriteLatency: 2},
		DRAM: dram.Config{Name: "SDRAM", AccessLatency: 20, PerWord: 2},

		StackTop:      0x6000_0000,
		PageTableBase: 0x7000_0000,
	}
}

// HWRandLEON3 returns the hardware time-randomised variant used by the
// A4 ablation: the same geometry with parametric-hash random placement
// and random replacement in every cache (the MBPTA-compliant hardware
// the software randomisation substitutes for).
func HWRandLEON3() Config {
	cfg := ProximaLEON3()
	for _, c := range []*cache.Config{&cfg.IL1, &cfg.DL1, &cfg.L2} {
		c.Placement = cache.PlacementHashRandom
		c.Replacement = cache.ReplacementRandom
	}
	return cfg
}

// Platform is an assembled machine.
type Platform struct {
	Cfg  Config
	CPU  *cpu.CPU
	IL1  *cache.Cache
	DL1  *cache.Cache
	L2   *cache.Cache
	ITLB *tlb.TLB
	DTLB *tlb.TLB
	Bus  *bus.Bus
	DRAM *dram.DRAM
	Mem  *cpu.Memory

	img *loader.Image

	// att is the cycle-attribution profiler; nil (the no-op profiler)
	// until EnableAttribution is called.
	att *telemetry.Attribution
	// ifront/dfront are the memory fronts the CPU is bound to: the raw
	// L1s by default, telemetry probe chains once attribution is enabled.
	ifront mem.Backend
	dfront mem.Backend
}

// New wires the hierarchy. The platform has no image loaded yet; call
// LoadImage before Run.
func New(cfg Config) *Platform {
	d := dram.New(cfg.DRAM)
	l2 := cache.New(cfg.L2, d)
	b := bus.New(cfg.Bus, l2)
	il1 := cache.New(cfg.IL1, b)
	dl1 := cache.New(cfg.DL1, b)
	itlb := tlb.New(cfg.ITLB, b, cfg.PageTableBase)
	dtlb := tlb.New(cfg.DTLB, b, cfg.PageTableBase)
	return &Platform{
		Cfg: cfg, IL1: il1, DL1: dl1, L2: l2,
		ITLB: itlb, DTLB: dtlb, Bus: b, DRAM: d,
		Mem:    cpu.NewMemory(),
		ifront: il1, dfront: dl1,
	}
}

// EnableAttribution interposes telemetry probes at every level of the
// memory hierarchy and installs a cycle-attribution profiler on the
// core, so that every cycle the platform charges is booked to exactly
// one telemetry.Component. It returns the profiler (also available via
// Attribution). Idempotent; call before or after LoadImage.
//
// The probe chain mirrors the hardware topology: DRAM self-latency,
// L2 self-latency, bus self-latency, and the L1 fronts book to their
// own components, while TLB walks route through the probed bus so walk
// traffic is redirected to the walk component by the CPU's override.
func (p *Platform) EnableAttribution() *telemetry.Attribution {
	if p.att != nil {
		return p.att
	}
	att := telemetry.NewAttribution()
	pDRAM := telemetry.NewProbe(p.DRAM, att, telemetry.CompDRAM)
	p.L2.SetNext(pDRAM)
	pL2 := telemetry.NewProbe(p.L2, att, telemetry.CompL2)
	p.Bus.SetNext(pL2)
	pBus := telemetry.NewProbe(p.Bus, att, telemetry.CompBus)
	p.IL1.SetNext(pBus)
	p.DL1.SetNext(pBus)
	p.ITLB.SetWalkMem(pBus)
	p.DTLB.SetWalkMem(pBus)
	p.ifront = telemetry.NewProbe(p.IL1, att, telemetry.CompIL1)
	p.dfront = telemetry.NewProbe(p.DL1, att, telemetry.CompDL1)
	p.att = att
	if p.CPU != nil {
		p.CPU.SetMemoryFronts(p.ifront, p.dfront)
		p.CPU.SetAttribution(att)
	}
	return att
}

// Attribution returns the installed profiler, or nil when attribution
// is disabled (a nil *Attribution is the valid no-op profiler).
func (p *Platform) Attribution() *telemetry.Attribution { return p.att }

// LoadImage binds img to the platform and applies its data initialisers
// directly to memory — the debug-link load of §V, which does not disturb
// the caches.
func (p *Platform) LoadImage(img *loader.Image) {
	p.img = img
	for _, iw := range img.Inits {
		p.Mem.StoreWord(iw.Addr, iw.Val)
	}
	if p.CPU == nil {
		p.CPU = cpu.New(p.Cfg.CPU, img, p.ifront, p.dfront, p.ITLB, p.DTLB, p.Mem)
		p.CPU.SetAttribution(p.att)
	} else {
		p.CPU.SetImage(img)
	}
}

// Image returns the currently loaded image, or nil.
func (p *Platform) Image() *loader.Image { return p.img }

// Reload clears memory and re-applies the current image's initialisers:
// the partition reboot of §IV, which guarantees that a run cannot see
// data left behind by the previous one.
func (p *Platform) Reload() {
	if p.img == nil {
		return
	}
	p.Mem.Clear()
	for _, iw := range p.img.Inits {
		p.Mem.StoreWord(iw.Addr, iw.Val)
	}
}

// FlushCaches writes back and invalidates every cache and TLB, returning
// the machine to the canonical initial hardware state PikeOS establishes
// at each partition start (§IV).
func (p *Platform) FlushCaches() {
	p.IL1.FlushAll()
	p.DL1.FlushAll()
	p.L2.FlushAll()
	p.ITLB.Flush()
	p.DTLB.Flush()
}

// ResetCounters zeroes every performance counter in the machine,
// including the core's PMCs and the attribution buckets.
func (p *Platform) ResetCounters() {
	p.IL1.ResetCounters()
	p.DL1.ResetCounters()
	p.L2.ResetCounters()
	p.ITLB.ResetCounters()
	p.DTLB.ResetCounters()
	p.Bus.ResetCounters()
	p.DRAM.ResetCounters()
	if p.CPU != nil {
		p.CPU.ResetCounters()
	}
	p.att.Reset()
}

// ReseedCaches reseeds the parametric placement hash of the caches; only
// meaningful on the hardware-randomised configuration.
func (p *Platform) ReseedCaches(seed uint64) {
	p.IL1.ReseedPlacement(seed ^ 0x11)
	p.DL1.ReseedPlacement(seed ^ 0x22)
	p.L2.ReseedPlacement(seed ^ 0x33)
}

// PMCs is the combined performance-counter snapshot; the first five
// fields are the columns of Table I.
type PMCs struct {
	ICMiss uint64 // IL1 misses
	DCMiss uint64 // DL1 load misses (no-write-allocate: store misses excluded)
	L2Miss uint64
	FPU    uint64
	Instr  uint64

	L2Access         uint64
	ITLBMiss         uint64
	DTLBMiss         uint64
	Loads            uint64
	Stores           uint64
	WindowOverflows  uint64
	WindowUnderflows uint64
}

// L2MissRatio is the paper's §VI metric: L2 misses over L2 accesses,
// where L2 accesses are the L1 misses that reach it.
func (m PMCs) L2MissRatio() float64 {
	if m.L2Access == 0 {
		return 0
	}
	return float64(m.L2Miss) / float64(m.L2Access)
}

// Counters assembles the current PMC snapshot.
func (p *Platform) Counters() PMCs {
	if p.CPU == nil {
		return PMCs{}
	}
	cc := p.CPU.Counters()
	il1 := p.IL1.Counters()
	dl1 := p.DL1.Counters()
	l2 := p.L2.Counters()
	return PMCs{
		ICMiss:           il1.Misses,
		DCMiss:           dl1.ReadMisses,
		L2Miss:           l2.Misses,
		FPU:              cc.FPUOps,
		Instr:            cc.Instrs,
		L2Access:         l2.Accesses,
		ITLBMiss:         p.ITLB.Counters().Misses,
		DTLBMiss:         p.DTLB.Counters().Misses,
		Loads:            cc.Loads,
		Stores:           cc.Stores,
		WindowOverflows:  cc.WindowOverflows,
		WindowUnderflows: cc.WindowUnderflows,
	}
}

// RunResult is the outcome of one measured run.
type RunResult struct {
	Cycles mem.Cycles
	PMCs   PMCs
	Trace  []cpu.TracePoint
	// ExitValue is %o0 at halt, the program's result word.
	ExitValue uint32
	// Attribution is the per-component cycle split of this run; its
	// Valid flag is false when EnableAttribution was not called. When
	// valid, Attribution.Total() == Cycles exactly (the conservation
	// invariant).
	Attribution telemetry.AttributionSnapshot
}

// Run performs one measurement run under the paper's protocol: flush
// caches and TLBs, zero the counters, reset the core (PC at entry, SP at
// the configured stack top), execute to Halt, snapshot everything.
func (p *Platform) Run() (RunResult, error) {
	if p.img == nil {
		return RunResult{}, fmt.Errorf("platform: no image loaded")
	}
	p.FlushCaches()
	p.ResetCounters()
	p.CPU.Reset(p.Cfg.StackTop)
	cycles, err := p.CPU.Run()
	if err != nil {
		return RunResult{}, fmt.Errorf("platform: run failed: %w", err)
	}
	res := RunResult{
		Cycles:      cycles,
		PMCs:        p.Counters(),
		ExitValue:   p.CPU.Reg(isa.O0),
		Attribution: p.att.Snapshot(),
	}
	res.Trace = append(res.Trace, p.CPU.Trace()...)
	return res, nil
}

// RunBudget is Run with a partition-window budget: execution stops when
// the budget is exhausted even if the program has not halted. The
// returned flag reports whether the program completed.
func (p *Platform) RunBudget(budget mem.Cycles) (RunResult, bool, error) {
	if p.img == nil {
		return RunResult{}, false, fmt.Errorf("platform: no image loaded")
	}
	p.FlushCaches()
	p.ResetCounters()
	p.CPU.Reset(p.Cfg.StackTop)
	cycles, err := p.CPU.RunBudget(budget)
	if err != nil {
		return RunResult{}, false, fmt.Errorf("platform: run failed: %w", err)
	}
	res := RunResult{
		Cycles:      cycles,
		PMCs:        p.Counters(),
		ExitValue:   p.CPU.Reg(isa.O0),
		Attribution: p.att.Snapshot(),
	}
	res.Trace = append(res.Trace, p.CPU.Trace()...)
	return res, p.CPU.Halted(), nil
}

// Describe returns a human-readable platform summary (the `-platform`
// output of cmd/dsrsim, standing in for Fig. 1).
func (p *Platform) Describe() string {
	c := p.Cfg
	return fmt.Sprintf(
		"PROXIMA LEON3 platform\n"+
			"  core: %d register windows, FPU jitter up to %d cycles (fdiv/fsqrt)\n"+
			"  IL1:  %dKB %d-way, %dB lines, %s placement, %s replacement\n"+
			"  DL1:  %dKB %d-way, %dB lines, %s, %s placement\n"+
			"  L2:   %dKB %d-way (direct-mapped if 1), %dB lines, %s, %s placement\n"+
			"  TLB:  %d-entry ITLB, %d-entry DTLB\n"+
			"  bus:  +%d read / +%d write cycles; SDRAM: %d + %d/word cycles\n",
		c.CPU.NumWindows, c.CPU.FPJitterMax,
		c.IL1.Size/1024, c.IL1.Ways, c.IL1.LineSize, c.IL1.Placement, c.IL1.Replacement,
		c.DL1.Size/1024, c.DL1.Ways, c.DL1.LineSize, c.DL1.Write, c.DL1.Placement,
		c.L2.Size/1024, c.L2.Ways, c.L2.LineSize, c.L2.Write, c.L2.Placement,
		c.ITLB.Entries, c.DTLB.Entries,
		c.Bus.ReadLatency, c.Bus.WriteLatency, c.DRAM.AccessLatency, c.DRAM.PerWord)
}
