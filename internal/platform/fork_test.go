package platform

import (
	"reflect"
	"testing"

	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/prog"
)

// Copy-on-write fork equivalence: a Restore of the post-boot snapshot
// followed by Run must be observably identical to booting a brand-new
// platform and running — for the plain protocol, for the
// hardware-randomised protocol (restore then reseed), with attribution
// on, and regardless of how many runs the forked platform has executed
// before. These are the invariants the campaign series rely on when
// they replace per-run Reload with per-run Restore.

// bootForkPair builds one image and returns a forked platform (booted
// once, snapshot taken) plus a constructor for pristine platforms over
// the same image.
func bootForkPair(t *testing.T) (forked *Platform, snap *Snapshot, fresh func() *Platform) {
	t.Helper()
	p := walkerProgram(t, 512)
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	forked = New(ProximaLEON3())
	forked.LoadImage(img)
	snap = forked.Snapshot()
	fresh = func() *Platform {
		pl := New(ProximaLEON3())
		pl.LoadImage(img)
		return pl
	}
	return forked, snap, fresh
}

func mustRun(t *testing.T, pl *Platform) RunResult {
	t.Helper()
	res, err := pl.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestForkEquivalentToFreshBoot: restore-then-run equals boot-then-run,
// run after run, with the full RunResult (cycles, PMCs, trace, exit
// value) compared structurally.
func TestForkEquivalentToFreshBoot(t *testing.T) {
	forked, snap, fresh := bootForkPair(t)
	for i := 0; i < 4; i++ {
		forked.Restore(snap)
		got := mustRun(t, forked)
		want := mustRun(t, fresh())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d: forked result %+v != fresh-boot result %+v", i, got, want)
		}
		if got.Cycles == 0 {
			t.Fatal("degenerate run")
		}
	}
}

// TestForkEquivalentUnderReseed pins the hardware-randomised protocol:
// Restore followed by ReseedCaches(seed) must equal a fresh boot with
// the same reseed, for every seed.
func TestForkEquivalentUnderReseed(t *testing.T) {
	forked, snap, fresh := bootForkPair(t)
	for seed := uint64(1); seed <= 5; seed++ {
		forked.Restore(snap)
		forked.ReseedCaches(seed)
		got := mustRun(t, forked)
		pl := fresh()
		pl.ReseedCaches(seed)
		want := mustRun(t, pl)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: forked+reseed diverged from fresh+reseed", seed)
		}
	}
}

// TestForkHistoryIndependence: the state after Restore must not depend
// on how many runs the platform executed since the snapshot. A platform
// that ran once and one that ran five times must produce identical
// results on their next restored run.
func TestForkHistoryIndependence(t *testing.T) {
	a, snapA, fresh := bootForkPair(t)
	b := fresh()
	snapB := b.Snapshot()
	a.Restore(snapA)
	mustRun(t, a)
	for i := 0; i < 5; i++ {
		b.Restore(snapB)
		mustRun(t, b)
	}
	a.Restore(snapA)
	b.Restore(snapB)
	ra, rb := mustRun(t, a), mustRun(t, b)
	if !reflect.DeepEqual(ra, rb) {
		t.Fatalf("restored run depends on run history: %+v vs %+v", ra, rb)
	}
}

// TestForkAttributionConservation: with attribution enabled on a forked
// platform, every restored run must keep the conservation invariant
// Attribution.Total() == Cycles, and match a fresh attributed boot.
func TestForkAttributionConservation(t *testing.T) {
	p := walkerProgram(t, 512)
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	forked := New(ProximaLEON3())
	forked.EnableAttribution()
	forked.LoadImage(img)
	snap := forked.Snapshot()
	for i := 0; i < 3; i++ {
		forked.Restore(snap)
		got := mustRun(t, forked)
		if !got.Attribution.Valid {
			t.Fatal("attribution not captured")
		}
		if got.Attribution.Total() != got.Cycles {
			t.Fatalf("run %d: attribution total %d != cycles %d",
				i, got.Attribution.Total(), got.Cycles)
		}
		pl := New(ProximaLEON3())
		pl.EnableAttribution()
		pl.LoadImage(img)
		want := mustRun(t, pl)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d: attributed forked run diverged from fresh boot", i)
		}
	}
}

// TestForkMemoryState: Restore reverts memory exactly — initialised
// words return to their boot values and pages written by the run revert
// — and the snapshot's page count reflects the boot working set.
func TestForkMemoryState(t *testing.T) {
	p := &prog.Program{Name: "dirty", Entry: "main"}
	if err := p.AddData(&prog.DataObject{Name: "arr", Size: 16,
		Init: []uint32{10, 20, 30, 40}}); err != nil {
		t.Fatal(err)
	}
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		Set(isa.L0, "arr").
		Ld(isa.L1, isa.L0, 0).
		AddI(isa.L1, isa.L1, 7).
		St(isa.L1, isa.L0, 0).
		Ld(isa.L2, isa.L0, 4).
		AddI(isa.L2, isa.L2, 9).
		St(isa.L2, isa.L0, 4).
		Mov(isa.O0, isa.L1).
		Halt()
	if err := p.AddFunction(b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	pl := New(ProximaLEON3())
	pl.LoadImage(img)
	snap := pl.Snapshot()
	if snap.MemPages() == 0 {
		t.Fatal("boot snapshot captured no memory pages")
	}
	arr := img.Symbols["arr"]
	mustRun(t, pl)
	if got := pl.Mem.LoadWord(arr); got != 17 {
		t.Fatalf("arr[0] after run = %d, want 17 — test is vacuous", got)
	}
	pl.Restore(snap)
	if got := pl.Mem.LoadWord(arr); got != 10 {
		t.Fatalf("arr[0] after Restore = %d, want boot value 10", got)
	}
	if got := pl.Mem.LoadWord(arr + 4); got != 20 {
		t.Fatalf("arr[1] after Restore = %d, want boot value 20", got)
	}
	// A second fork of the same snapshot reproduces the same run.
	r1, _ := pl.Run()
	pl.Restore(snap)
	r2, _ := pl.Run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("two forks of the same snapshot diverged")
	}
}
