package platform

import (
	"testing"

	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/mem"
	"dsr/internal/prog"
)

func spinProgram(t *testing.T, iters int32) *loader.Image {
	t.Helper()
	p := &prog.Program{Name: "spin", Entry: "main"}
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.L0, 0).
		Label("loop").
		AddI(isa.L0, isa.L0, 1).
		CmpI(isa.L0, iters).
		Bl("loop").
		Mov(isa.O0, isa.L0).
		Halt()
	if err := p.AddFunction(b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func TestRunBudgetCompletes(t *testing.T) {
	pl := New(ProximaLEON3())
	pl.LoadImage(spinProgram(t, 100))
	res, done, err := pl.RunBudget(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("program within budget reported incomplete")
	}
	if res.ExitValue != 100 {
		t.Errorf("exit=%d", res.ExitValue)
	}
}

func TestRunBudgetCutsOff(t *testing.T) {
	pl := New(ProximaLEON3())
	pl.LoadImage(spinProgram(t, 50_000_000))
	const budget = 10_000
	res, done, err := pl.RunBudget(budget)
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Error("endless program reported complete")
	}
	if res.Cycles < budget {
		t.Errorf("cut at %d, before the %d budget", res.Cycles, budget)
	}
	// The cut must be prompt: within one instruction's worst latency.
	if res.Cycles > budget+1000 {
		t.Errorf("cut at %d, far beyond budget %d", res.Cycles, budget)
	}
}

func TestRunBudgetWithoutImage(t *testing.T) {
	pl := New(ProximaLEON3())
	if _, _, err := pl.RunBudget(100); err == nil {
		t.Error("budget run without image succeeded")
	}
}

func TestReloadRestoresInits(t *testing.T) {
	p := &prog.Program{Name: "t", Entry: "main"}
	if err := p.AddData(&prog.DataObject{Name: "d", Size: 8, Init: []uint32{42}}); err != nil {
		t.Fatal(err)
	}
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		Set(isa.L0, "d").
		Ld(isa.O0, isa.L0, 0).
		MovI(isa.L1, 7).
		St(isa.L1, isa.L0, 0). // clobber the initialiser
		Halt()
	if err := p.AddFunction(b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	pl := New(ProximaLEON3())
	pl.LoadImage(img)
	r1, err := pl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.ExitValue != 42 {
		t.Fatalf("first run read %d", r1.ExitValue)
	}
	// Without reload the second run would read the clobbered 7.
	pl.Reload()
	r2, err := pl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r2.ExitValue != 42 {
		t.Errorf("post-reload run read %d, want 42", r2.ExitValue)
	}
	// Reload on an image-less platform is a no-op, not a panic.
	New(ProximaLEON3()).Reload()
}

func TestPMCSnapshotZeroWithoutCPU(t *testing.T) {
	pl := New(ProximaLEON3())
	if pl.Counters() != (PMCs{}) {
		t.Error("counters before any image should be zero")
	}
}

func TestL2MissRatioEdge(t *testing.T) {
	var m PMCs
	if m.L2MissRatio() != 0 {
		t.Error("zero-access miss ratio should be 0")
	}
	m.L2Access, m.L2Miss = 10, 5
	if m.L2MissRatio() != 0.5 {
		t.Error("ratio")
	}
}

func TestTraceIsolationBetweenRuns(t *testing.T) {
	pl := New(ProximaLEON3())
	p := &prog.Program{Name: "t", Entry: "main"}
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().IPoint(1).IPoint(2).Halt()
	if err := p.AddFunction(b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	pl.LoadImage(img)
	r1, err := pl.Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := pl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Trace) != 2 || len(r2.Trace) != 2 {
		t.Fatalf("trace lengths %d/%d, want 2/2", len(r1.Trace), len(r2.Trace))
	}
	// The returned traces must be snapshots: mutating one run's slice
	// must not affect the other's.
	r1.Trace[0].ID = 99
	if r2.Trace[0].ID == 99 {
		t.Error("traces alias each other")
	}
}

func TestBudgetRunCountsAgainstCaches(t *testing.T) {
	pl := New(ProximaLEON3())
	pl.LoadImage(spinProgram(t, 1000))
	if _, _, err := pl.RunBudget(mem.Cycles(1) << 40); err != nil {
		t.Fatal(err)
	}
	if pl.Counters().Instr == 0 {
		t.Error("budget run recorded no instructions")
	}
}
