// Copy-on-write platform forks. A campaign worker boots its platform
// once (image load, initialiser writes), captures a Snapshot, and then
// forks that boot state before every run with Restore instead of
// clearing and reloading memory. The memory side is dirty-page tracked
// (cpu.MemSnapshot), so a fork costs work proportional to what the
// previous run actually wrote — not to the resident set — and performs
// zero heap allocation in steady state. Fixed-layout campaign series
// (baseline, hardware-randomised, positioned) run through forks; the DSR
// series necessarily rebuilds its image per run (the layout is the
// randomised quantity) but shares the same journalled memory, so its
// reboots stopped churning the allocator too.
package platform

import (
	"dsr/internal/cache"
	"dsr/internal/cpu"
	"dsr/internal/loader"
	"dsr/internal/tlb"
)

// Snapshot is the booted-platform state a fork restores: memory
// contents, every cache and TLB (contents, LRU state, counters,
// placement/replacement generator state), and the image binding.
type Snapshot struct {
	img  *loader.Image
	mem  *cpu.MemSnapshot
	il1  *cache.Snapshot
	dl1  *cache.Snapshot
	l2   *cache.Snapshot
	itlb *tlb.Snapshot
	dtlb *tlb.Snapshot
}

// MemPages returns the number of memory pages the snapshot captured
// (observability and tests).
func (s *Snapshot) MemPages() int { return s.mem.Pages() }

// Snapshot captures the platform's current state for later forking.
// Typically called right after LoadImage, with the machine in the
// canonical booted state.
func (p *Platform) Snapshot() *Snapshot {
	return &Snapshot{
		img:  p.img,
		mem:  p.Mem.Snapshot(),
		il1:  p.IL1.Snapshot(),
		dl1:  p.DL1.Snapshot(),
		l2:   p.L2.Snapshot(),
		itlb: p.ITLB.Snapshot(),
		dtlb: p.DTLB.Snapshot(),
	}
}

// Restore forks the snapshotted state: memory reverts page-by-dirty-page,
// caches and TLBs revert in place, and the snapshot's image is rebound.
// A Run after Restore is bit-identical to a Run after the boot the
// snapshot captured — the fork-equivalence invariant the platform test
// suite pins.
func (p *Platform) Restore(s *Snapshot) {
	p.Mem.Restore(s.mem)
	p.IL1.Restore(s.il1)
	p.DL1.Restore(s.dl1)
	p.L2.Restore(s.l2)
	p.ITLB.Restore(s.itlb)
	p.DTLB.Restore(s.dtlb)
	if p.CPU != nil && s.img != nil {
		p.CPU.SetImage(s.img)
	}
	p.img = s.img
}
