package platform

import (
	"testing"

	"dsr/internal/loader"
)

// BenchmarkPlatformFork measures the per-run campaign protocol on a
// fixed layout: fork the booted snapshot (dirty-page restore, cache/TLB
// state copy, image rebind) and execute. This is the unit of work the
// baseline/HWRand/positioned series repeat thousands of times; the
// benchgate baseline pins both its latency and its steady-state
// allocation (which must stay near zero — the fork is the mechanism
// that removed the campaign's shared GC pressure).
func BenchmarkPlatformFork(b *testing.B) {
	p := walkerProgram(b, 512)
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		b.Fatal(err)
	}
	pl := New(ProximaLEON3())
	pl.LoadImage(img)
	snap := pl.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl.Restore(snap)
		if _, err := pl.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
