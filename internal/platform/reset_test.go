package platform

import (
	"fmt"
	"reflect"
	"testing"

	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/prog"
)

// dirtyProgram exercises every counter class in the machine: integer and
// FPU pipelines, taken and fall-through branches, a call chain deeper
// than the 8 register windows (overflow + underflow traps), and a data
// sweep larger than DL1 (read and write misses, L2 fills, DRAM traffic).
func dirtyProgram(t *testing.T) *loader.Image {
	t.Helper()
	p := &prog.Program{Name: "dirty", Entry: "main"}
	if err := p.AddData(&prog.DataObject{Name: "arr", Size: 24 * 1024, Align: 8}); err != nil {
		t.Fatal(err)
	}
	main := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		// Data sweep: load, accumulate, store back.
		Set(isa.L0, "arr").
		MovI(isa.L1, 0).
		MovI(isa.L3, 0).
		Label("loop").
		Ld(isa.L4, isa.L0, 0).
		Add(isa.L3, isa.L3, isa.L4).
		St(isa.L3, isa.L0, 0).
		AddI(isa.L0, isa.L0, 4).
		AddI(isa.L1, isa.L1, 1).
		CmpI(isa.L1, 2048).
		Bl("loop").
		// FPU: int->float, arithmetic, float->int.
		St(isa.L1, isa.FP, -4).
		FLd(isa.FReg(0), isa.FP, -4).
		Fitos(isa.FReg(1), isa.FReg(0)).
		Fadd(isa.FReg(2), isa.FReg(1), isa.FReg(1)).
		Fdiv(isa.FReg(3), isa.FReg(2), isa.FReg(1)).
		Fstoi(isa.FReg(4), isa.FReg(3)).
		// Call chain deeper than the window file.
		Call("f1").
		Mov(isa.O0, isa.L3).
		Halt()
	if err := p.AddFunction(main.MustBuild()); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		b := prog.NewFunc(fname(i), prog.MinFrame).Prologue()
		if i < 10 {
			b.Call(fname(i + 1))
		}
		b.Epilogue()
		if err := p.AddFunction(b.MustBuild()); err != nil {
			t.Fatal(err)
		}
	}
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func fname(i int) string { return fmt.Sprintf("f%d", i) }

// counterSources enumerates every component whose Counters() snapshot
// ResetCounters must zero. Adding a component to the platform without
// adding it here (and to ResetCounters) fails the reflection sweep below
// as soon as the component is exercised.
func counterSources(p *Platform) map[string]interface{} {
	return map[string]interface{}{
		"cpu":  p.CPU.Counters(),
		"il1":  p.IL1.Counters(),
		"dl1":  p.DL1.Counters(),
		"l2":   p.L2.Counters(),
		"itlb": p.ITLB.Counters(),
		"dtlb": p.DTLB.Counters(),
		"bus":  p.Bus.Counters(),
		"dram": p.DRAM.Counters(),
	}
}

// uintFields reflects over a counter struct and returns name->value for
// every unsigned integer field, recursing nowhere: counter structs are
// flat by design.
func uintFields(t *testing.T, v interface{}) map[string]uint64 {
	t.Helper()
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Struct {
		t.Fatalf("counter source %T is not a struct", v)
	}
	out := map[string]uint64{}
	for i := 0; i < rv.NumField(); i++ {
		f := rv.Field(i)
		switch f.Kind() {
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			out[rv.Type().Field(i).Name] = f.Uint()
		case reflect.Float64:
			// MissRatio-style derived fields would be methods, not fields;
			// a float field would be a design change worth flagging.
			t.Fatalf("%T has unexpected float field %s", v, rv.Type().Field(i).Name)
		}
	}
	return out
}

func TestResetCountersZeroesEveryField(t *testing.T) {
	pl := New(ProximaLEON3())
	pl.EnableAttribution()
	pl.LoadImage(dirtyProgram(t))
	if _, err := pl.Run(); err != nil {
		t.Fatal(err)
	}

	// The run must have dirtied the counters we rely on, otherwise the
	// zero-after-reset sweep proves nothing.
	mustBeDirty := map[string][]string{
		"cpu": {"Instrs", "FPUOps", "Loads", "Stores", "Branches",
			"TakenBranches", "Calls", "WindowOverflows", "WindowUnderflows"},
		"il1":  {"Accesses", "Reads", "Hits", "Misses", "Fills"},
		"dl1":  {"Accesses", "Reads", "Writes", "Hits", "Misses"},
		"l2":   {"Accesses", "Reads", "Writes", "Hits", "Misses", "Fills"},
		"itlb": {"Accesses", "Hits"},
		"dtlb": {"Accesses", "Hits", "Misses"},
		"bus":  {"Reads", "Writes"},
		"dram": {"Reads", "WordsRead"},
	}
	before := counterSources(pl)
	for comp, wantDirty := range mustBeDirty {
		fields := uintFields(t, before[comp])
		for _, name := range wantDirty {
			v, ok := fields[name]
			if !ok {
				t.Fatalf("%s: counter field %s disappeared", comp, name)
			}
			if v == 0 {
				t.Errorf("%s.%s: still zero after the dirtying run", comp, name)
			}
		}
	}
	if pl.Attribution().Total() == 0 {
		t.Error("attribution: no cycles booked by the dirtying run")
	}

	pl.ResetCounters()

	// The sweep: every unsigned field of every component must be zero.
	for comp, src := range counterSources(pl) {
		for name, v := range uintFields(t, src) {
			if v != 0 {
				t.Errorf("%s.%s = %d after ResetCounters, want 0", comp, name, v)
			}
		}
	}
	// The PMC snapshot is derived from the components and must agree.
	pmcs := pl.Counters()
	rv := reflect.ValueOf(pmcs)
	for i := 0; i < rv.NumField(); i++ {
		f := rv.Field(i)
		if f.CanUint() && f.Uint() != 0 {
			t.Errorf("PMCs.%s = %d after ResetCounters, want 0", rv.Type().Field(i).Name, f.Uint())
		}
	}
	// And the attribution ledger restarts from zero.
	if got := pl.Attribution().Total(); got != 0 {
		t.Errorf("attribution total = %d after ResetCounters, want 0", got)
	}
	if snap := pl.Attribution().Snapshot(); snap.Total() != 0 {
		t.Errorf("attribution snapshot total = %d after ResetCounters, want 0", snap.Total())
	}
}
