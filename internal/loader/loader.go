// Package loader turns a prog.Program plus a placement (symbol → base
// address) into an executable Image: patched instruction copies, a symbol
// table, and the list of initialising data writes. Two clients share it:
//
//   - the deterministic toolchain (LayoutSequential), which places
//     functions and data objects back to back the way a conventional
//     linker does — this is the paper's non-randomised "COTS" build; and
//   - the DSR runtime (internal/core), which computes a fresh random
//     placement each run from its memory pools and rebuilds the image,
//     modelling the eager relocation of §III.B.1.
package loader

import (
	"fmt"
	"sort"

	"dsr/internal/isa"
	"dsr/internal/mem"
	"dsr/internal/prog"
)

// Placement maps every symbol (function or data object) to its base.
type Placement map[string]mem.Addr

// PlacedFunc is a function with its load address and patched code.
type PlacedFunc struct {
	Fn   *prog.Function
	Base mem.Addr
	// Code is a patched copy of Fn.Code: Set/Call symbol references are
	// resolved to absolute addresses in Imm.
	Code []isa.Instr
}

// End returns the first address past the function's code.
func (pf *PlacedFunc) End() mem.Addr { return pf.Base + pf.Fn.SizeBytes() }

// InitWrite is one word written to memory at load time.
type InitWrite struct {
	Addr mem.Addr
	Val  uint32
}

// Image is an executable: placed functions (sorted by base address), a
// symbol table, and data initialisation writes. Images are rebuilt by the
// DSR runtime on every run, so construction must stay cheap: Rebuild
// re-places an existing image in place, reusing the symbol table, the
// placed-function objects and their patched code buffers, so a reboot's
// image work allocates nothing in steady state.
type Image struct {
	Name    string
	Entry   mem.Addr
	Funcs   []*PlacedFunc
	Symbols map[string]mem.Addr
	Inits   []InitWrite

	// cached lookup state: Funcs sorted by Base

	// src is the program the image was built from; Rebuild reuses the
	// buffers only while rebuilding for the same program.
	src *prog.Program
}

// BuildImage patches p against pl and assembles an Image. Every function
// and data object must be placed; function placements must be word-aligned
// and non-overlapping.
func BuildImage(p *prog.Program, pl Placement) (*Image, error) {
	img := &Image{Name: p.Name}
	if err := img.Rebuild(p, pl); err != nil {
		return nil, err
	}
	return img, nil
}

// Rebuild re-places and re-patches the image for pl, producing a result
// byte-identical to BuildImage(p, pl). When the image was previously
// built from the same program, every buffer is reused: only Set/Call
// immediates carry placement, so re-patching exactly those instructions
// over the previous run's code is equivalent to a fresh copy-and-patch.
// On error the image state is undefined; callers abort the run.
func (img *Image) Rebuild(p *prog.Program, pl Placement) error {
	if img.src != p {
		img.src = p
		img.Name = p.Name
		img.Symbols = make(map[string]mem.Addr, len(p.Functions)+len(p.Data))
		img.Funcs = make([]*PlacedFunc, 0, len(p.Functions))
		img.Inits = nil
		for _, f := range p.Functions {
			pf := &PlacedFunc{Fn: f}
			pf.Code = append([]isa.Instr(nil), f.Code...)
			img.Funcs = append(img.Funcs, pf)
		}
	}
	for _, f := range p.Functions {
		base, ok := pl[f.Name]
		if !ok {
			return fmt.Errorf("loader: function %q not placed", f.Name)
		}
		if !mem.IsAligned(base, isa.InstrBytes) {
			return fmt.Errorf("loader: function %q at %#x not word-aligned", f.Name, base)
		}
		img.Symbols[f.Name] = base
	}
	img.Inits = img.Inits[:0]
	for _, d := range p.Data {
		base, ok := pl[d.Name]
		if !ok {
			return fmt.Errorf("loader: data %q not placed", d.Name)
		}
		align := d.Align
		if align == 0 {
			align = mem.WordSize
		}
		if !mem.IsAligned(base, align) {
			return fmt.Errorf("loader: data %q at %#x not %d-aligned", d.Name, base, align)
		}
		img.Symbols[d.Name] = base
		for i, w := range d.Init {
			img.Inits = append(img.Inits, InitWrite{Addr: base + mem.Addr(i)*mem.WordSize, Val: w})
		}
	}

	for _, pf := range img.Funcs {
		f := pf.Fn
		pf.Base = img.Symbols[f.Name]
		for i := range f.Code {
			sym := f.Code[i].Sym
			if sym == "" {
				continue
			}
			addr, ok := img.Symbols[sym]
			if !ok {
				return fmt.Errorf("loader: %q references unplaced symbol %q", f.Name, sym)
			}
			switch f.Code[i].Op {
			case isa.Set, isa.Call:
				pf.Code[i].Imm = int32(addr)
			default:
				return fmt.Errorf("loader: %q: op %s cannot carry symbol %q", f.Name, f.Code[i].Op, sym)
			}
		}
	}
	sort.Slice(img.Funcs, func(i, j int) bool { return img.Funcs[i].Base < img.Funcs[j].Base })
	for i := 1; i < len(img.Funcs); i++ {
		if img.Funcs[i].Base < img.Funcs[i-1].End() {
			return fmt.Errorf("loader: functions %q and %q overlap",
				img.Funcs[i-1].Fn.Name, img.Funcs[i].Fn.Name)
		}
	}
	entry, ok := img.Symbols[p.Entry]
	if !ok {
		return fmt.Errorf("loader: entry %q not placed", p.Entry)
	}
	img.Entry = entry
	return nil
}

// FuncAt returns the placed function containing pc, or nil. Uses binary
// search over the sorted function list; the CPU additionally caches the
// current function so sequential fetch avoids the search.
func (img *Image) FuncAt(pc mem.Addr) *PlacedFunc {
	i := sort.Search(len(img.Funcs), func(i int) bool { return img.Funcs[i].End() > pc })
	if i < len(img.Funcs) && pc >= img.Funcs[i].Base {
		return img.Funcs[i]
	}
	return nil
}

// InstrAt returns the instruction at pc, or nil if pc is not inside any
// function or is misaligned.
func (img *Image) InstrAt(pc mem.Addr) *isa.Instr {
	pf := img.FuncAt(pc)
	if pf == nil || (pc-pf.Base)%isa.InstrBytes != 0 {
		return nil
	}
	return &pf.Code[(pc-pf.Base)/isa.InstrBytes]
}

// SequentialLayout is the output of the deterministic toolchain: a
// placement plus the objects recorded in their address spaces.
type SequentialLayout struct {
	Placement Placement
	CodeSpace *mem.Space
	DataSpace *mem.Space
}

// SequentialConfig configures the deterministic layout.
type SequentialConfig struct {
	CodeBase mem.Addr
	CodeSize mem.Addr
	DataBase mem.Addr
	DataSize mem.Addr
	// FuncAlign pads every function start (conventional linkers align to
	// 4 or 8; cache-line-aligning is the Mezzetti-Vardanega positioning
	// optimisation the paper cites as an alternative to randomisation).
	FuncAlign mem.Addr
}

// DefaultSequentialConfig places code at 0x4000_0000 and data at
// 0x5000_0000, matching the LEON3 RAM map, with 8-byte function padding.
func DefaultSequentialConfig() SequentialConfig {
	return SequentialConfig{
		CodeBase: 0x4000_0000, CodeSize: 4 << 20,
		DataBase: 0x5000_0000, DataSize: 4 << 20,
		FuncAlign: 8,
	}
}

// LayoutSequential places functions in definition order back to back,
// then data objects likewise: the fixed layout a conventional build
// produces, whose cache behaviour is frozen at link time (§II: the cache
// offset of software units changes only across integrations).
func LayoutSequential(p *prog.Program, cfg SequentialConfig) (*SequentialLayout, error) {
	if cfg.FuncAlign == 0 {
		cfg.FuncAlign = isa.InstrBytes
	}
	l := &SequentialLayout{
		Placement: Placement{},
		CodeSpace: mem.NewSpace(cfg.CodeBase, cfg.CodeSize),
		DataSpace: mem.NewSpace(cfg.DataBase, cfg.DataSize),
	}
	for _, f := range p.Functions {
		obj := &mem.Object{Name: f.Name, Kind: mem.KindCode, Size: f.SizeBytes(), Align: cfg.FuncAlign}
		if err := l.CodeSpace.Place(obj); err != nil {
			return nil, err
		}
		l.Placement[f.Name] = obj.Base
	}
	for _, d := range p.Data {
		align := d.Align
		if align == 0 {
			align = mem.DoubleWord
		}
		obj := &mem.Object{Name: d.Name, Kind: mem.KindData, Size: d.Size, Align: align}
		if err := l.DataSpace.Place(obj); err != nil {
			return nil, err
		}
		l.Placement[d.Name] = obj.Base
	}
	return l, nil
}

// Load is the convenience path used throughout the tests and examples:
// validate, lay out sequentially with cfg, and build the image.
func Load(p *prog.Program, cfg SequentialConfig) (*Image, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	l, err := LayoutSequential(p, cfg)
	if err != nil {
		return nil, err
	}
	return BuildImage(p, l.Placement)
}
