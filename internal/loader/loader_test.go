package loader

import (
	"strings"
	"testing"

	"dsr/internal/isa"
	"dsr/internal/mem"
	"dsr/internal/prog"
)

func testProgram(t *testing.T) *prog.Program {
	t.Helper()
	helper := prog.NewLeaf("helper").
		Set(isa.O1, "table").
		Ld(isa.O0, isa.O1, 0).
		RetLeaf().
		MustBuild()
	main := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		Call("helper").
		Halt().
		MustBuild()
	p := &prog.Program{Name: "t", Entry: "main"}
	for _, f := range []*prog.Function{main, helper} {
		if err := p.AddFunction(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.AddData(&prog.DataObject{Name: "table", Size: 16, Init: []uint32{7, 8}}); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSequentialLayoutOrder(t *testing.T) {
	p := testProgram(t)
	cfg := DefaultSequentialConfig()
	l, err := LayoutSequential(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if l.Placement["main"] != cfg.CodeBase {
		t.Errorf("main at %#x, want %#x", l.Placement["main"], cfg.CodeBase)
	}
	mainEnd := cfg.CodeBase + p.Function("main").SizeBytes()
	if l.Placement["helper"] != mem.Align(mainEnd, cfg.FuncAlign) {
		t.Errorf("helper at %#x, want %#x", l.Placement["helper"], mem.Align(mainEnd, cfg.FuncAlign))
	}
	if l.Placement["table"] != cfg.DataBase {
		t.Errorf("table at %#x, want %#x", l.Placement["table"], cfg.DataBase)
	}
}

func TestLoadPatchesSymbols(t *testing.T) {
	p := testProgram(t)
	img, err := Load(p, DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	if img.Entry != img.Symbols["main"] {
		t.Error("entry not resolved to main")
	}
	// helper's Set must carry table's address; main's Call helper's.
	var helper, main *PlacedFunc
	for _, pf := range img.Funcs {
		switch pf.Fn.Name {
		case "helper":
			helper = pf
		case "main":
			main = pf
		}
	}
	if got := mem.Addr(helper.Code[0].Imm); got != img.Symbols["table"] {
		t.Errorf("set patched to %#x, want %#x", got, img.Symbols["table"])
	}
	if got := mem.Addr(main.Code[1].Imm); got != img.Symbols["helper"] {
		t.Errorf("call patched to %#x, want %#x", got, img.Symbols["helper"])
	}
	// Patch must not leak into the original program.
	if p.Function("helper").Code[0].Imm != 0 {
		t.Error("BuildImage mutated the source program")
	}
}

func TestInitWrites(t *testing.T) {
	p := testProgram(t)
	img, err := Load(p, DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	base := img.Symbols["table"]
	want := []InitWrite{{base, 7}, {base + 4, 8}}
	if len(img.Inits) != 2 || img.Inits[0] != want[0] || img.Inits[1] != want[1] {
		t.Errorf("inits=%v, want %v", img.Inits, want)
	}
}

func TestInstrAndFuncLookup(t *testing.T) {
	p := testProgram(t)
	img, err := Load(p, DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	mainBase := img.Symbols["main"]
	if pf := img.FuncAt(mainBase); pf == nil || pf.Fn.Name != "main" {
		t.Fatal("FuncAt(main base) failed")
	}
	if pf := img.FuncAt(mainBase + 4); pf == nil || pf.Fn.Name != "main" {
		t.Fatal("FuncAt(main+4) failed")
	}
	if in := img.InstrAt(mainBase); in == nil || in.Op != isa.Save {
		t.Fatalf("InstrAt(main base)=%v", in)
	}
	if in := img.InstrAt(mainBase + 2); in != nil {
		t.Error("misaligned pc should return nil")
	}
	if in := img.InstrAt(0x1000); in != nil {
		t.Error("pc outside any function should return nil")
	}
	// Gap between functions (alignment padding) must not resolve.
	mainEnd := mainBase + p.Function("main").SizeBytes()
	helperBase := img.Symbols["helper"]
	if mainEnd != helperBase {
		if pf := img.FuncAt(mainEnd); pf != nil {
			t.Error("padding gap resolved to a function")
		}
	}
}

func TestBuildImageErrors(t *testing.T) {
	p := testProgram(t)
	l, err := LayoutSequential(p, DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}

	t.Run("missing function placement", func(t *testing.T) {
		pl := Placement{}
		for k, v := range l.Placement {
			pl[k] = v
		}
		delete(pl, "helper")
		if _, err := BuildImage(p, pl); err == nil || !strings.Contains(err.Error(), "helper") {
			t.Errorf("err=%v", err)
		}
	})
	t.Run("missing data placement", func(t *testing.T) {
		pl := Placement{}
		for k, v := range l.Placement {
			pl[k] = v
		}
		delete(pl, "table")
		if _, err := BuildImage(p, pl); err == nil {
			t.Error("missing data placement accepted")
		}
	})
	t.Run("misaligned function", func(t *testing.T) {
		pl := Placement{}
		for k, v := range l.Placement {
			pl[k] = v
		}
		pl["helper"] = pl["helper"] + 2
		if _, err := BuildImage(p, pl); err == nil {
			t.Error("misaligned function accepted")
		}
	})
	t.Run("overlapping functions", func(t *testing.T) {
		pl := Placement{}
		for k, v := range l.Placement {
			pl[k] = v
		}
		pl["helper"] = pl["main"] + 4
		if _, err := BuildImage(p, pl); err == nil {
			t.Error("overlapping functions accepted")
		}
	})
}

func TestLoadRejectsInvalidProgram(t *testing.T) {
	p := &prog.Program{Name: "bad", Entry: "ghost"}
	if _, err := Load(p, DefaultSequentialConfig()); err == nil {
		t.Error("invalid program loaded")
	}
}

func TestCodeSpaceExhaustion(t *testing.T) {
	p := testProgram(t)
	cfg := DefaultSequentialConfig()
	cfg.CodeSize = 4 // nothing fits
	if _, err := Load(p, cfg); err == nil {
		t.Error("exhausted code space accepted")
	}
}
