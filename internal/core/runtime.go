package core

import (
	"fmt"

	"dsr/internal/heap"
	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/mem"
	"dsr/internal/platform"
	"dsr/internal/prng"
	"dsr/internal/prog"
	"dsr/internal/telemetry"
)

// RelocationMode selects when functions are moved to their random
// locations (§III.B.1). The paper's port chose eager relocation because
// lazy relocation complicates worst-case memory and WCET bounds; lazy is
// retained for the A1 ablation.
type RelocationMode int

const (
	// Eager relocates every function at program start, before the
	// measured window opens.
	Eager RelocationMode = iota
	// Lazy relocates each function at its first call — inside the
	// measured window, which is exactly why the paper rejects it.
	Lazy
)

func (m RelocationMode) String() string {
	if m == Lazy {
		return "lazy"
	}
	return "eager"
}

// Options configures the DSR runtime.
type Options struct {
	// OffsetBound is the exclusive bound of random placement offsets.
	// 0 selects the platform's L2 way size (§III.B.4), which also
	// randomises the L1 layouts because the L1 way size divides it.
	OffsetBound int
	// StackOffsetBound bounds the per-function stack offsets; 0 selects
	// OffsetBound.
	StackOffsetBound int
	// Align is the offset granularity; 0 selects 8 (SPARC double-word,
	// §III.B.2).
	Align int
	// Mode selects eager (default) or lazy relocation.
	Mode RelocationMode
	// Source is the PRNG; nil selects the MWC generator (§III.B.3).
	Source prng.Source
	// Pool geometry; zero values select the defaults below.
	CodePoolBase mem.Addr
	CodePoolSize mem.Addr
	DataPoolBase mem.Addr
	DataPoolSize mem.Addr
}

func (o *Options) fillDefaults(plat *platform.Platform) {
	if o.OffsetBound == 0 {
		o.OffsetBound = plat.Cfg.L2.WaySize()
	}
	if o.StackOffsetBound == 0 {
		o.StackOffsetBound = o.OffsetBound
	}
	if o.Align == 0 {
		o.Align = mem.DoubleWord
	}
	if o.Source == nil {
		o.Source = prng.NewMWC(1)
	}
	if o.CodePoolSize == 0 {
		o.CodePoolBase, o.CodePoolSize = 0x4400_0000, 64<<20
	}
	if o.DataPoolSize == 0 {
		o.DataPoolBase, o.DataPoolSize = 0x5400_0000, 64<<20
	}
}

// BootStats reports what one reboot (re-randomisation) did.
type BootStats struct {
	Seed           uint64
	RelocatedFuncs int
	RelocatedBytes mem.Addr
	// BootCycles is the modelled cost of the eager relocation loop plus
	// the SPARC cache-consistency routine (writeback + invalidate); it is
	// spent before the measured window opens, so it does not appear in
	// the UoA execution time — the paper's motivation for eager mode.
	BootCycles mem.Cycles
	// CodePages/DataPages are the distinct pages backing the pools, the
	// TLB-randomisation surface (§III.B.5).
	CodePages int
	DataPages int
}

type relocInfo struct {
	name    string
	oldBase mem.Addr
	size    mem.Addr
}

// Runtime drives DSR on a platform: it owns the transformed program, the
// code and data pools, and the per-run randomisation protocol.
type Runtime struct {
	plat  *platform.Platform
	tp    *prog.Program
	meta  *Metadata
	stats PassStats
	opts  Options

	codePool *heap.Pool
	dataPool *heap.Pool
	src      prng.Source

	img       *loader.Image
	placement loader.Placement
	// linkBase is the pre-relocation (sequential) placement: the
	// addresses functions are copied *from* during relocation.
	linkBase loader.Placement

	// lazy state
	pending map[mem.Addr]relocInfo
	boot    *BootStats

	// Reboot scratch, reused across runs so a steady-state reboot
	// performs no heap allocation beyond what the pools require: the
	// shuffled relocation order, the relocation work list, and the
	// object record handed to the pool allocators (they read its fields
	// and write Base back but never retain the pointer).
	order []int
	reloc []relocInfo
	obj   mem.Object

	// events, when non-nil, receives structured runtime events (reboots,
	// relocations, pool choices); a nil log no-ops.
	events *telemetry.EventLog

	// tracer, when non-nil, receives host wall-time boot/reloc spans so
	// campaign traces attribute each run's time to a phase; a nil tracer
	// no-ops.
	tracer *telemetry.WorkerTracer
}

// SetEventLog installs (or clears, with nil) the structured event log
// the runtime emits reboot and relocation events into.
func (r *Runtime) SetEventLog(l *telemetry.EventLog) { r.events = l }

// SetTracer installs (or clears, with nil) the worker span track Reboot
// emits boot/reloc phase spans into. The spans inherit the enclosing
// run span's index when the campaign engine opened one on this track.
func (r *Runtime) SetTracer(t *telemetry.WorkerTracer) { r.tracer = t }

// dsrTrack is the event-log track of DSR runtime events.
const dsrTrack = "dsr"

// NewRuntime runs the compiler pass on p and prepares a runtime bound to
// plat. Call Reboot before every measured run.
func NewRuntime(p *prog.Program, plat *platform.Platform, opts Options) (*Runtime, error) {
	opts.fillDefaults(plat)
	tp, meta, stats, err := Transform(p)
	if err != nil {
		return nil, err
	}
	seq, err := loader.LayoutSequential(tp, loader.DefaultSequentialConfig())
	if err != nil {
		return nil, fmt.Errorf("core: link layout: %w", err)
	}
	r := &Runtime{
		plat: plat, tp: tp, meta: meta, stats: stats, opts: opts,
		src:      opts.Source,
		linkBase: seq.Placement,
	}
	r.codePool = heap.NewPool("dsr-code", opts.CodePoolBase, opts.CodePoolSize,
		opts.OffsetBound, opts.Align, prng.NewMWC(2))
	r.dataPool = heap.NewPool("dsr-data", opts.DataPoolBase, opts.DataPoolSize,
		opts.OffsetBound, opts.Align, prng.NewMWC(3))
	return r, nil
}

// Program returns the transformed program.
func (r *Runtime) Program() *prog.Program { return r.tp }

// Metadata returns the relocation metadata.
func (r *Runtime) Metadata() *Metadata { return r.meta }

// PassStats returns the compiler-pass statistics.
func (r *Runtime) PassStats() PassStats { return r.stats }

// Image returns the image of the current run (nil before first Reboot).
func (r *Runtime) Image() *loader.Image { return r.img }

// Placement returns the current run's symbol placement.
func (r *Runtime) Placement() loader.Placement { return r.placement }

// Reboot models the partition reboot of §IV: memory is cleared, a fresh
// random layout is drawn with the given seed, the image is rebuilt and
// loaded, the metadata tables are written, and (in eager mode) the
// relocation plus cache-consistency cost is charged to boot time.
func (r *Runtime) Reboot(seed uint64) (BootStats, error) {
	// A partition reboot re-establishes the canonical initial hardware
	// state (§IV), so the relocation cost charged below is computed from
	// cold caches — a pure function of (program, seed), independent of
	// whatever ran on this platform before. The parallel campaign
	// engine's determinism invariant relies on exactly this: a worker's
	// Reboot(seed) must behave identically no matter which runs it
	// executed previously.
	boot := r.tracer.Begin(telemetry.SpanBoot, -1)
	r.plat.FlushCaches()
	r.src.Seed(seed)
	r.codePool.Reset(prng.Uint64(r.src))
	r.dataPool.Reset(prng.Uint64(r.src))

	pl := r.placement
	if pl == nil {
		pl = make(loader.Placement, len(r.tp.Functions)+len(r.tp.Data))
	} else {
		clear(pl)
	}
	// Shuffle relocation order so pool layout does not correlate with
	// link order across runs.
	if len(r.order) != len(r.tp.Functions) {
		r.order = make([]int, len(r.tp.Functions))
	}
	prng.PermInto(r.src, r.order)
	order := r.order
	reloc := r.reloc[:0]
	var bytes mem.Addr
	for _, fi := range order {
		f := r.tp.Functions[fi]
		obj := &r.obj
		*obj = mem.Object{Name: f.Name, Kind: mem.KindCode, Size: f.SizeBytes(), Align: isa.InstrBytes}
		if _, err := r.codePool.Allocate(obj); err != nil {
			return BootStats{}, fmt.Errorf("core: reboot: %w", err)
		}
		pl[f.Name] = obj.Base
		reloc = append(reloc, relocInfo{name: f.Name, oldBase: r.linkBase[f.Name], size: obj.Size})
		bytes += obj.Size
	}
	for _, d := range r.tp.Data {
		align := d.Align
		if align == 0 {
			align = mem.DoubleWord
		}
		obj := &r.obj
		*obj = mem.Object{Name: d.Name, Kind: mem.KindData, Size: d.Size, Align: align}
		if _, err := r.dataPool.Allocate(obj); err != nil {
			return BootStats{}, fmt.Errorf("core: reboot: %w", err)
		}
		pl[d.Name] = obj.Base
	}

	r.tracer.End(boot)
	relocSpan := r.tracer.Begin(telemetry.SpanReloc, -1)

	img := r.img
	if img == nil {
		built, err := loader.BuildImage(r.tp, pl)
		if err != nil {
			return BootStats{}, fmt.Errorf("core: reboot: %w", err)
		}
		img = built
	} else if err := img.Rebuild(r.tp, pl); err != nil {
		// The image is rebuilt in place across reboots (same program, new
		// placement — byte-identical to a fresh build, without the copy).
		return BootStats{}, fmt.Errorf("core: reboot: %w", err)
	}
	r.img = img
	r.placement = pl
	r.reloc = reloc

	r.plat.Mem.Clear()
	r.plat.LoadImage(img)

	// Write the metadata tables (runtime startup writes, before the
	// partition's measured window).
	ftable := pl[FTableSym]
	offsets := pl[OffsetsSym]
	for i, name := range r.meta.Funcs {
		r.plat.Mem.StoreWord(ftable+mem.Addr(i)*4, uint32(pl[name]))
		var off uint32
		if f := r.tp.Function(name); f != nil && !f.Leaf {
			off = uint32(prng.AlignedOffset(r.src, r.opts.StackOffsetBound, r.opts.Align))
		}
		r.plat.Mem.StoreWord(offsets+mem.Addr(i)*4, off)
	}

	stats := BootStats{
		Seed:           seed,
		RelocatedFuncs: len(reloc),
		RelocatedBytes: bytes,
		CodePages:      r.codePool.PagesTouchedCount(),
		DataPages:      r.dataPool.PagesTouchedCount(),
	}

	switch r.opts.Mode {
	case Eager:
		for _, ri := range reloc {
			cost := r.relocationCost(ri, pl[ri.name])
			stats.BootCycles += cost
			if r.events.Enabled() {
				r.events.Emit(dsrTrack, "dsr.reloc", telemetry.PhaseInstant,
					telemetry.String("func", ri.name),
					telemetry.Hex("old", ri.oldBase),
					telemetry.Hex("new", pl[ri.name]),
					telemetry.Uint64("bytes", uint64(ri.size)),
					telemetry.Cycles("cost", cost),
					telemetry.String("when", "boot"))
			}
		}
		r.pending = nil
		r.plat.CPU.SetCallHook(nil)
	case Lazy:
		r.pending = make(map[mem.Addr]relocInfo, len(reloc))
		for _, ri := range reloc {
			r.pending[pl[ri.name]] = ri
		}
		// The entry function's first use is program start itself, so it
		// is relocated at boot even in lazy mode.
		if ri, ok := r.pending[pl[r.tp.Entry]]; ok {
			delete(r.pending, pl[r.tp.Entry])
			cost := r.relocationCost(ri, pl[r.tp.Entry])
			stats.BootCycles += cost
			if r.events.Enabled() {
				r.events.Emit(dsrTrack, "dsr.reloc", telemetry.PhaseInstant,
					telemetry.String("func", ri.name),
					telemetry.Hex("old", ri.oldBase),
					telemetry.Hex("new", pl[r.tp.Entry]),
					telemetry.Uint64("bytes", uint64(ri.size)),
					telemetry.Cycles("cost", cost),
					telemetry.String("when", "boot"))
			}
		}
		r.plat.CPU.SetCallHook(r.lazyHook)
	}
	r.tracer.End(relocSpan)
	if r.events.Enabled() {
		r.events.Emit(dsrTrack, "dsr.reboot", telemetry.PhaseInstant,
			telemetry.Uint64("seed", seed),
			telemetry.String("mode", r.opts.Mode.String()),
			telemetry.Int("funcs", len(reloc)),
			telemetry.Uint64("bytes", uint64(bytes)),
			telemetry.Int("code_pages", stats.CodePages),
			telemetry.Int("data_pages", stats.DataPages),
			telemetry.Cycles("boot_cycles", stats.BootCycles),
			telemetry.Hex("entry", pl[r.tp.Entry]))
	}
	r.boot = &stats
	return stats, nil
}

// relocationCost models moving one function: a word-copy loop through
// the data cache from the old to the new location, then the SPARC v8
// consistency routine — write back the new range (the L2 is write-back,
// so relocated code must reach memory before it can be fetched) and
// invalidate any stale IL1/L2 lines at the old location (§III.B.1).
func (r *Runtime) relocationCost(ri relocInfo, newBase mem.Addr) mem.Cycles {
	var cost mem.Cycles
	for off := mem.Addr(0); off < ri.size; off += mem.WordSize {
		cost += r.plat.DL1.Read(ri.oldBase+off, mem.WordSize)
		cost += r.plat.DL1.Write(newBase+off, mem.WordSize)
		cost += 2 // the copy loop's own instructions
	}
	cost += r.plat.L2.WritebackRange(newBase, int(ri.size))
	cost += r.plat.IL1.InvalidateRange(ri.oldBase, int(ri.size))
	cost += r.plat.L2.InvalidateRange(ri.oldBase, int(ri.size))
	return cost
}

// lazyHook performs first-call relocation inside the measured window.
func (r *Runtime) lazyHook(target mem.Addr) {
	ri, ok := r.pending[target]
	if !ok {
		return
	}
	delete(r.pending, target)
	cost := r.relocationCost(ri, target)
	r.plat.CPU.AddCycles(cost)
	if r.boot != nil {
		r.boot.RelocatedFuncs--
	}
	if r.events.Enabled() {
		r.events.Emit(dsrTrack, "dsr.reloc", telemetry.PhaseInstant,
			telemetry.String("func", ri.name),
			telemetry.Hex("old", ri.oldBase),
			telemetry.Hex("new", target),
			telemetry.Uint64("bytes", uint64(ri.size)),
			telemetry.Cycles("cost", cost),
			telemetry.String("when", "lazy"))
	}
}

// Run performs one measured run on the current layout. Reboot must have
// been called; the paper's protocol is one Reboot per Run so that every
// measurement sees a fresh random layout.
func (r *Runtime) Run() (platform.RunResult, error) {
	if r.img == nil {
		return platform.RunResult{}, fmt.Errorf("core: Run before Reboot")
	}
	return r.plat.Run()
}

// RunBudget is Run under a partition-window cycle budget; the flag
// reports whether the program completed within it.
func (r *Runtime) RunBudget(budget mem.Cycles) (platform.RunResult, bool, error) {
	if r.img == nil {
		return platform.RunResult{}, false, fmt.Errorf("core: RunBudget before Reboot")
	}
	return r.plat.RunBudget(budget)
}

// Collect is the measurement campaign helper: n runs, rebooting with
// seeds base, base+1, ... before each, returning the per-run results.
func (r *Runtime) Collect(base uint64, n int) ([]platform.RunResult, error) {
	out := make([]platform.RunResult, 0, n)
	for i := 0; i < n; i++ {
		if _, err := r.Reboot(base + uint64(i)); err != nil {
			return nil, err
		}
		res, err := r.Run()
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
