package core

// Differential verification of the DSR compiler pass: every Transform
// output in the test corpus must verify clean under
// analysis.VerifyTransform, and hand-mutated invariant violations must
// be rejected. This is the oracle the MBPTA argument rests on — a
// transformation bug that survives these checks would silently poison
// every measurement campaign built on it.

import (
	"strings"
	"testing"

	"dsr/internal/analysis"
	"dsr/internal/isa"
	"dsr/internal/prog"
	"dsr/internal/spaceapp"
)

func verifyInfo(meta *Metadata) analysis.TransformInfo {
	return analysis.TransformInfo{
		FTableSym:  FTableSym,
		OffsetsSym: OffsetsSym,
		Funcs:      meta.Funcs,
	}
}

// corpus returns every program the repository ships, by name.
func corpus(t testing.TB) map[string]*prog.Program {
	t.Helper()
	out := map[string]*prog.Program{"bench": benchProgram(t)}
	ctrl, err := spaceapp.BuildControl()
	if err != nil {
		t.Fatal(err)
	}
	out["control"] = ctrl
	proc, err := spaceapp.BuildProcessing()
	if err != nil {
		t.Fatal(err)
	}
	out["processing"] = proc
	return out
}

func TestVerifyTransformCorpusClean(t *testing.T) {
	for name, p := range corpus(t) {
		tp, meta, _, err := Transform(p)
		if err != nil {
			t.Fatalf("%s: Transform: %v", name, err)
		}
		diags := analysis.VerifyTransform(p, tp, verifyInfo(meta))
		for _, d := range diags {
			t.Errorf("%s: unexpected diagnostic: %s", name, d)
		}
	}
}

// TestVerifyTransformRejectsMutations hand-mutates the transformed
// program in ways that each break one §III.B invariant and checks the
// verifier catches every one with an Error-level diagnostic.
func TestVerifyTransformRejectsMutations(t *testing.T) {
	findInstr := func(tp *prog.Program, fn string, pred func(*isa.Instr) bool) (*prog.Function, int) {
		f := tp.Function(fn)
		if f == nil {
			t.Fatalf("function %q missing", fn)
		}
		for i := range f.Code {
			if pred(&f.Code[i]) {
				return f, i
			}
		}
		t.Fatalf("no matching instruction in %q", fn)
		return nil, 0
	}

	cases := []struct {
		name   string
		mutate func(tp *prog.Program)
		want   string // substring of at least one Error diagnostic
	}{
		{
			name: "un-indirected call",
			mutate: func(tp *prog.Program) {
				// Replace main's first dispatch triple with the direct
				// call the pass was supposed to eliminate.
				f, i := findInstr(tp, "main", func(in *isa.Instr) bool {
					return in.Op == isa.Set && in.Rd == isa.G6
				})
				code := append([]isa.Instr{}, f.Code[:i]...)
				code = append(code, isa.Instr{Op: isa.Call, Sym: "compute"})
				code = append(code, f.Code[i+3:]...)
				f.Code = code
			},
			want: "not rewritten to table-indirect dispatch",
		},
		{
			name: "missing savex offset",
			mutate: func(tp *prog.Program) {
				// Collapse compute's prologue triple back to a plain save:
				// the stack offset would never be applied.
				f := tp.Function("compute")
				code := []isa.Instr{{Op: isa.Save, Imm: f.FrameSize}}
				f.Code = append(code, f.Code[3:]...)
			},
			want: "does not load the stack-offset table",
		},
		{
			name: "truncated ftable",
			mutate: func(tp *prog.Program) {
				tp.DataObject(FTableSym).Size = 4
			},
			want: "truncated",
		},
		{
			name: "dispatch index mismatch",
			mutate: func(tp *prog.Program) {
				_, _ = findInstr(tp, "main", func(in *isa.Instr) bool {
					if in.Op == isa.Ld && in.Rs1 == isa.G6 {
						in.Imm += 4
						return true
					}
					return false
				})
			},
			want: "wrong function",
		},
		{
			name: "offset index mismatch",
			mutate: func(tp *prog.Program) {
				_, _ = findInstr(tp, "compute", func(in *isa.Instr) bool {
					if in.Op == isa.Ld && in.Rs1 == isa.G7 {
						in.Imm += 4
						return true
					}
					return false
				})
			},
			want: "table index",
		},
		{
			name: "savex frame immediate changed",
			mutate: func(tp *prog.Program) {
				_, _ = findInstr(tp, "compute", func(in *isa.Instr) bool {
					if in.Op == isa.SaveX {
						in.Imm += 8
						return true
					}
					return false
				})
			},
			want: "differs from the original save",
		},
		{
			name: "branch displacement not remapped",
			mutate: func(tp *prog.Program) {
				_, _ = findInstr(tp, "main", func(in *isa.Instr) bool {
					if in.Op == isa.Bl {
						in.Disp++
						return true
					}
					return false
				})
			},
			want: "branch displacement remapped",
		},
		{
			name: "function dropped",
			mutate: func(tp *prog.Program) {
				tp.Functions = tp.Functions[:len(tp.Functions)-1]
			},
			want: "dropped",
		},
		{
			name: "reserved register leaked into application code",
			mutate: func(tp *prog.Program) {
				_, _ = findInstr(tp, "main", func(in *isa.Instr) bool {
					if in.Op == isa.Mov && in.Rd == isa.L0 {
						in.Rd = isa.G6
						return true
					}
					return false
				})
			},
			want: "altered",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := benchProgram(t)
			tp, meta, _, err := Transform(p)
			if err != nil {
				t.Fatal(err)
			}
			tc.mutate(tp)
			diags := analysis.VerifyTransform(p, tp, verifyInfo(meta))
			if !analysis.HasErrors(diags) {
				t.Fatalf("mutation accepted; want at least one error")
			}
			found := false
			for _, d := range analysis.Errors(diags) {
				if strings.Contains(d.Msg, tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("no error mentions %q; got:", tc.want)
				for _, d := range diags {
					t.Logf("  %s", d)
				}
			}
		})
	}
}

// TestVerifyOverheadBudget checks invariant 6: the static instruction
// overhead budget. The call-heavy bench program exceeds the paper's 2%
// budget by construction; a realistically compute-heavy program stays
// inside it.
func TestVerifyOverheadBudget(t *testing.T) {
	p := benchProgram(t)
	tp, meta, _, err := Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	info := verifyInfo(meta)
	info.MaxOverheadFrac = 0.02
	diags := analysis.VerifyTransform(p, tp, info)
	found := false
	for _, d := range analysis.Errors(diags) {
		if strings.Contains(d.Msg, "overhead") {
			found = true
		}
	}
	if !found {
		t.Error("call-heavy program passed the 2% overhead budget")
	}
	// A generous budget accepts the same transformation.
	info.MaxOverheadFrac = 0.5
	if diags := analysis.VerifyTransform(p, tp, info); analysis.HasErrors(diags) {
		t.Errorf("50%% budget rejected: %v", analysis.Errors(diags))
	}

	// Compute-heavy program: 600 straight-line instructions, one call →
	// 4 extra instructions, well under 2%.
	big := &prog.Program{Name: "big", Entry: "main"}
	work := &prog.Function{Name: "work", Leaf: true}
	for i := 0; i < 600; i++ {
		work.Code = append(work.Code, isa.Instr{Op: isa.Add, Rd: isa.O0, Rs1: isa.O0, Rs2: isa.G0})
	}
	work.Code = append(work.Code, isa.Instr{Op: isa.RetL})
	main := &prog.Function{Name: "main", FrameSize: prog.MinFrame, Code: []isa.Instr{
		{Op: isa.Save, Imm: prog.MinFrame},
		{Op: isa.Call, Sym: "work"},
		{Op: isa.Halt},
	}}
	big.Functions = append(big.Functions, main, work)
	btp, bmeta, _, err := Transform(big)
	if err != nil {
		t.Fatal(err)
	}
	binfo := verifyInfo(bmeta)
	binfo.MaxOverheadFrac = 0.02
	if diags := analysis.VerifyTransform(big, btp, binfo); analysis.HasErrors(diags) {
		t.Errorf("compute-heavy program failed the 2%% budget: %v", analysis.Errors(diags))
	}
}

// TestVerifyTransformNilSafety: the verifier is documented never to
// panic on malformed input.
func TestVerifyTransformNilSafety(t *testing.T) {
	if diags := analysis.VerifyTransform(nil, nil, analysis.TransformInfo{}); !analysis.HasErrors(diags) {
		t.Error("nil programs not rejected")
	}
	p := benchProgram(t)
	// Empty info: every callee is "absent from the metadata index".
	tp, _, _, err := Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	if diags := analysis.VerifyTransform(p, tp, analysis.TransformInfo{}); !analysis.HasErrors(diags) {
		t.Error("empty metadata accepted")
	}
}
