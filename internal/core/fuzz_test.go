package core

import (
	"testing"

	"dsr/internal/analysis"
	"dsr/internal/isa"
)

// isDispatchInstr reports whether in belongs to one of the DSR dispatch
// sequences (touches %g6/%g7), where some fields are semantically dead
// (e.g. the Imm of a set that carries a Sym, or the Disp of a callr)
// and a verifier is entitled to ignore mutations to them.
func isDispatchInstr(in *isa.Instr) bool {
	g := func(r isa.Reg) bool { return r == isa.G6 || r == isa.G7 }
	return g(in.Rd) || g(in.Rs1) || g(in.Rs2)
}

// FuzzVerifyTransform mutates single fields of the transformed program
// and checks two properties of the verifier: it never panics, and every
// mutation of a semantically live field draws an Error-level
// diagnostic. Field liveness is conservative — for instructions inside
// the dispatch sequences only the fields the canonical shape pins down
// (opcodes, table-load immediates, savex frames) are asserted.
func FuzzVerifyTransform(f *testing.F) {
	f.Add(uint16(0), uint16(0), uint8(0), int32(1))
	f.Add(uint16(1), uint16(3), uint8(1), int32(4))
	f.Add(uint16(0), uint16(7), uint8(2), int32(-1))
	f.Add(uint16(2), uint16(0), uint8(3), int32(2))
	f.Add(uint16(0), uint16(5), uint8(4), int32(8))
	f.Add(uint16(1), uint16(1), uint8(5), int32(12))

	f.Fuzz(func(t *testing.T, fsel, isel uint16, field uint8, val int32) {
		p := benchProgram(t)
		tp, meta, _, err := Transform(p)
		if err != nil {
			t.Fatal(err)
		}
		info := analysis.TransformInfo{
			FTableSym: FTableSym, OffsetsSym: OffsetsSym, Funcs: meta.Funcs,
		}

		fn := tp.Functions[int(fsel)%len(tp.Functions)]
		if len(fn.Code) == 0 {
			return
		}
		in := &fn.Code[int(isel)%len(fn.Code)]
		before := *in

		mustReject := false
		switch field % 6 {
		case 0: // opcode: always shape-checked or compared verbatim
			in.Op = isa.Op(uint8(in.Op) + uint8(val))
			mustReject = true
		case 1: // immediate
			in.Imm += val
			// Live unless it is the Imm of a dispatch set/callr (dead:
			// the symbol/register carries the target).
			mustReject = !isDispatchInstr(&before) ||
				before.Op == isa.Ld || before.Op == isa.SaveX
		case 2: // branch displacement
			in.Disp += val
			mustReject = !isDispatchInstr(&before)
		case 3: // destination register
			in.Rd = isa.Reg(uint8(in.Rd)+uint8(val)) % 32
			mustReject = !isDispatchInstr(&before)
		case 4: // first source register
			in.Rs1 = isa.Reg(uint8(in.Rs1)+uint8(val)) % 32
			mustReject = !isDispatchInstr(&before)
		case 5: // symbol
			in.Sym += "x"
			mustReject = !isDispatchInstr(&before) || before.Op == isa.Set
		}
		if *in == before {
			return // mutation was the identity; nothing to assert
		}
		// A mutation that makes the instruction a valid dispatch-shape
		// member could legitimately pass some checks; the conservative
		// oracle only asserts when the original was ordinary code.
		if isDispatchInstr(in) && !isDispatchInstr(&before) {
			mustReject = false
		}

		diags := analysis.VerifyTransform(p, tp, info) // must not panic
		if mustReject && !analysis.HasErrors(diags) {
			t.Errorf("semantic mutation of %s+%d (%q → %q) accepted",
				fn.Name, int(isel)%len(fn.Code), before.String(), in.String())
		}
	})
}
