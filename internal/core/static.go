package core

import (
	"fmt"

	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/mem"
	"dsr/internal/prng"
	"dsr/internal/prog"
)

// StaticLayout implements the static software randomisation variant
// (TASA, Kosmidis et al. ICCAD'16; the DAC'14 automotive deployment) for
// the A5 ablation: the *link-time* layout of an unmodified program is
// randomised — functions are permuted and padded with random gaps — so
// each build is one fixed random layout with zero runtime overhead. The
// price is that every measurement run needs a different binary, whereas
// DSR re-randomises a single binary at boot.
func StaticLayout(p *prog.Program, cfg loader.SequentialConfig, offsetBound int, seed uint64) (loader.Placement, error) {
	if offsetBound <= 0 || offsetBound%mem.DoubleWord != 0 {
		return nil, fmt.Errorf("core: static offset bound %d must be a positive multiple of 8", offsetBound)
	}
	src := prng.NewMWC(seed)
	pl := loader.Placement{}

	code := mem.NewSpace(cfg.CodeBase, cfg.CodeSize)
	for _, fi := range prng.Perm(src, len(p.Functions)) {
		f := p.Functions[fi]
		gap := mem.Addr(prng.AlignedOffset(src, offsetBound, mem.DoubleWord))
		if gap > 0 {
			pad := &mem.Object{Name: f.Name + ".pad", Kind: mem.KindCode, Size: gap, Align: 1}
			if err := code.Place(pad); err != nil {
				return nil, fmt.Errorf("core: static layout: %w", err)
			}
		}
		obj := &mem.Object{Name: f.Name, Kind: mem.KindCode, Size: f.SizeBytes(), Align: isa.InstrBytes}
		if err := code.Place(obj); err != nil {
			return nil, fmt.Errorf("core: static layout: %w", err)
		}
		pl[f.Name] = obj.Base
	}

	data := mem.NewSpace(cfg.DataBase, cfg.DataSize)
	for _, di := range prng.Perm(src, len(p.Data)) {
		d := p.Data[di]
		gap := mem.Addr(prng.AlignedOffset(src, offsetBound, mem.DoubleWord))
		if gap > 0 {
			pad := &mem.Object{Name: d.Name + ".pad", Kind: mem.KindData, Size: gap, Align: 1}
			if err := data.Place(pad); err != nil {
				return nil, fmt.Errorf("core: static layout: %w", err)
			}
		}
		align := d.Align
		if align == 0 {
			align = mem.DoubleWord
		}
		obj := &mem.Object{Name: d.Name, Kind: mem.KindData, Size: d.Size, Align: align}
		if err := data.Place(obj); err != nil {
			return nil, fmt.Errorf("core: static layout: %w", err)
		}
		pl[d.Name] = obj.Base
	}
	return pl, nil
}

// StaticBuild lays p out with StaticLayout and builds the image — one
// randomised "binary". Successive seeds model successive builds.
func StaticBuild(p *prog.Program, cfg loader.SequentialConfig, offsetBound int, seed uint64) (*loader.Image, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	pl, err := StaticLayout(p, cfg, offsetBound, seed)
	if err != nil {
		return nil, err
	}
	return loader.BuildImage(p, pl)
}
