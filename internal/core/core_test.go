package core

import (
	"testing"

	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/mem"
	"dsr/internal/platform"
	"dsr/internal/prog"
)

// benchProgram is a small but non-trivial program: main calls compute in
// a loop; compute calls a leaf; a data table is summed. Returns the sum
// in %o0 so functional correctness is observable under randomisation.
func benchProgram(t testing.TB) *prog.Program {
	t.Helper()
	p := &prog.Program{Name: "bench", Entry: "main"}
	if err := p.AddData(&prog.DataObject{Name: "table", Size: 64 * 4,
		Init: func() []uint32 {
			w := make([]uint32, 64)
			for i := range w {
				w[i] = uint32(i)
			}
			return w
		}()}); err != nil {
		t.Fatal(err)
	}

	leaf := prog.NewLeaf("scale").
		MulI(isa.O0, isa.O0, 2).
		RetLeaf().
		MustBuild()

	// compute(i) = scale(table[i]) = 2*table[i]
	compute := prog.NewFunc("compute", prog.MinFrame).
		Prologue().
		Set(isa.L0, "table").
		SllI(isa.L1, isa.I0, 2).
		Add(isa.L0, isa.L0, isa.L1).
		Ld(isa.O0, isa.L0, 0).
		Call("scale").
		Mov(isa.I0, isa.O0).
		Epilogue().
		MustBuild()

	// main: sum over i of compute(i), i in [0,64) → 2*(0+..+63) = 4032
	main := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.L0, 0). // i
		MovI(isa.L1, 0). // sum
		Label("loop").
		Mov(isa.O0, isa.L0).
		Call("compute").
		Add(isa.L1, isa.L1, isa.O0).
		AddI(isa.L0, isa.L0, 1).
		CmpI(isa.L0, 64).
		Bl("loop").
		Mov(isa.O0, isa.L1).
		Halt().
		MustBuild()

	for _, f := range []*prog.Function{main, compute, leaf} {
		if err := p.AddFunction(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

const wantSum = 4032

func TestTransformPreservesSemantics(t *testing.T) {
	p := benchProgram(t)
	plat := platform.New(platform.ProximaLEON3())
	rt, err := NewRuntime(p, plat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Reboot(1); err != nil {
		t.Fatal(err)
	}
	res, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ExitValue != wantSum {
		t.Errorf("randomised result=%d, want %d", res.ExitValue, wantSum)
	}
}

func TestTransformStats(t *testing.T) {
	p := benchProgram(t)
	tp, meta, stats, err := Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	// 2 direct calls (main→compute, compute→scale) and 2 non-leaf
	// prologues (main, compute).
	if stats.CallsRewritten != 2 {
		t.Errorf("calls rewritten=%d, want 2", stats.CallsRewritten)
	}
	if stats.ProloguesRewritten != 2 {
		t.Errorf("prologues rewritten=%d, want 2", stats.ProloguesRewritten)
	}
	if stats.ExtraInstrs != 8 {
		t.Errorf("extra instrs=%d, want 8", stats.ExtraInstrs)
	}
	if len(meta.Funcs) != 3 {
		t.Errorf("metadata funcs=%d, want 3", len(meta.Funcs))
	}
	// The transformed program must contain the metadata tables and no
	// remaining direct calls or plain saves in non-leaf functions.
	if tp.DataObject(FTableSym) == nil || tp.DataObject(OffsetsSym) == nil {
		t.Error("metadata tables missing")
	}
	for _, f := range tp.Functions {
		for i := range f.Code {
			if f.Code[i].Op == isa.Call {
				t.Errorf("%s still has a direct call", f.Name)
			}
			if f.Code[i].Op == isa.Save && !f.Leaf {
				t.Errorf("%s still has a plain save", f.Name)
			}
		}
	}
	// Original untouched.
	if p.DataObject(FTableSym) != nil {
		t.Error("Transform mutated its input")
	}
}

func TestTransformBranchRemap(t *testing.T) {
	// A backward branch spanning a rewritten call must still reach the
	// same logical instruction.
	p := benchProgram(t)
	tp, _, _, err := Transform(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := tp.Validate(); err != nil {
		t.Fatalf("transformed program invalid: %v", err)
	}
	main := tp.Function("main")
	// Find the loop branch (Bl) and check it targets the Mov o0,l0 that
	// starts the loop body.
	for i := range main.Code {
		if main.Code[i].Op == isa.Bl {
			tgt := main.Code[i+int(main.Code[i].Disp)]
			if tgt.Op != isa.Mov || tgt.Rd != isa.O0 {
				t.Errorf("loop branch lands on %v", tgt.String())
			}
		}
	}
}

func TestTransformRejectsMidFunctionSave(t *testing.T) {
	p := &prog.Program{Name: "bad", Entry: "main"}
	f := &prog.Function{Name: "main", FrameSize: prog.MinFrame, Code: []isa.Instr{
		{Op: isa.Save, Imm: prog.MinFrame},
		{Op: isa.Save, Imm: prog.MinFrame},
		{Op: isa.Halt},
	}}
	p.Functions = append(p.Functions, f)
	if _, _, _, err := Transform(p); err == nil {
		t.Error("mid-function save accepted")
	}
}

func TestRebootChangesLayout(t *testing.T) {
	p := benchProgram(t)
	plat := platform.New(platform.ProximaLEON3())
	rt, err := NewRuntime(p, plat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Reboot(1); err != nil {
		t.Fatal(err)
	}
	pl1 := loader.Placement{}
	for k, v := range rt.Placement() {
		pl1[k] = v
	}
	if _, err := rt.Reboot(2); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for k, v := range rt.Placement() {
		if pl1[k] != v {
			moved++
		}
	}
	if moved < 3 {
		t.Errorf("only %d symbols moved across reboots", moved)
	}
	// Same seed → same layout (reproducibility of the protocol).
	if _, err := rt.Reboot(1); err != nil {
		t.Fatal(err)
	}
	for k, v := range rt.Placement() {
		if pl1[k] != v {
			t.Fatalf("seed 1 layout not reproducible for %s", k)
		}
	}
}

func TestOffsetBoundDefaultsToL2WaySize(t *testing.T) {
	p := benchProgram(t)
	plat := platform.New(platform.ProximaLEON3())
	rt, err := NewRuntime(p, plat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.opts.OffsetBound; got != 32*1024 {
		t.Errorf("offset bound=%d, want 32768 (L2 way size)", got)
	}
}

func TestStackOffsetsWrittenAndAligned(t *testing.T) {
	p := benchProgram(t)
	plat := platform.New(platform.ProximaLEON3())
	rt, err := NewRuntime(p, plat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seenNonZero := false
	for seed := uint64(1); seed <= 20; seed++ {
		if _, err := rt.Reboot(seed); err != nil {
			t.Fatal(err)
		}
		offBase := rt.Placement()[OffsetsSym]
		for i, name := range rt.Metadata().Funcs {
			off := plat.Mem.LoadWord(offBase + mem.Addr(i)*4)
			f := rt.Program().Function(name)
			if f.Leaf && off != 0 {
				t.Errorf("leaf %s has stack offset %d", name, off)
			}
			if off%8 != 0 {
				t.Errorf("offset %d for %s not double-word aligned", off, name)
			}
			if int(off) >= rt.opts.StackOffsetBound {
				t.Errorf("offset %d for %s exceeds bound", off, name)
			}
			if off != 0 {
				seenNonZero = true
			}
		}
	}
	if !seenNonZero {
		t.Error("no non-zero stack offsets in 20 reboots")
	}
}

func TestFTableMatchesPlacement(t *testing.T) {
	p := benchProgram(t)
	plat := platform.New(platform.ProximaLEON3())
	rt, err := NewRuntime(p, plat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Reboot(5); err != nil {
		t.Fatal(err)
	}
	ftBase := rt.Placement()[FTableSym]
	for i, name := range rt.Metadata().Funcs {
		got := mem.Addr(plat.Mem.LoadWord(ftBase + mem.Addr(i)*4))
		if got != rt.Placement()[name] {
			t.Errorf("ftable[%d]=%#x, placement[%s]=%#x", i, got, name, rt.Placement()[name])
		}
	}
}

func TestExecutionTimeVariesAcrossReboots(t *testing.T) {
	p := benchProgram(t)
	plat := platform.New(platform.ProximaLEON3())
	rt, err := NewRuntime(p, plat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	results, err := rt.Collect(1, 30)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[mem.Cycles]bool{}
	for _, r := range results {
		distinct[r.Cycles] = true
		if r.ExitValue != wantSum {
			t.Fatalf("functional result broke under randomisation: %d", r.ExitValue)
		}
	}
	if len(distinct) < 5 {
		t.Errorf("only %d distinct execution times in 30 randomised runs", len(distinct))
	}
}

func TestEagerBootCostOutsideMeasuredWindow(t *testing.T) {
	p := benchProgram(t)
	plat := platform.New(platform.ProximaLEON3())
	rt, err := NewRuntime(p, plat, Options{Mode: Eager})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := rt.Reboot(3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BootCycles == 0 {
		t.Error("eager relocation cost nothing")
	}
	if stats.RelocatedFuncs != 3 {
		t.Errorf("relocated funcs=%d, want 3", stats.RelocatedFuncs)
	}
}

func TestLazySlowerThanEagerInWindow(t *testing.T) {
	p := benchProgram(t)

	run := func(mode RelocationMode) mem.Cycles {
		plat := platform.New(platform.ProximaLEON3())
		rt, err := NewRuntime(p, plat, Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Reboot(7); err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.ExitValue != wantSum {
			t.Fatalf("mode %s broke semantics", mode)
		}
		return res.Cycles
	}
	eager, lazy := run(Eager), run(Lazy)
	if lazy <= eager {
		t.Errorf("lazy (%d) not slower than eager (%d) inside the measured window", lazy, eager)
	}
}

func TestPoolPageDiversity(t *testing.T) {
	p := benchProgram(t)
	plat := platform.New(platform.ProximaLEON3())
	rt, err := NewRuntime(p, plat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := rt.Reboot(1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CodePages < 3 || stats.DataPages < 3 {
		t.Errorf("pages code=%d data=%d, want >=3 each (one chunk per object)",
			stats.CodePages, stats.DataPages)
	}
}

func TestRunBeforeRebootErrors(t *testing.T) {
	p := benchProgram(t)
	plat := platform.New(platform.ProximaLEON3())
	rt, err := NewRuntime(p, plat, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(); err == nil {
		t.Error("Run before Reboot succeeded")
	}
}

func TestStaticLayoutRandomisesAcrossSeeds(t *testing.T) {
	p := benchProgram(t)
	cfg := loader.DefaultSequentialConfig()
	pl1, err := StaticLayout(p, cfg, 32*1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	pl2, err := StaticLayout(p, cfg, 32*1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for k := range pl1 {
		if pl1[k] != pl2[k] {
			moved++
		}
	}
	if moved < 2 {
		t.Errorf("static layouts share too much across seeds (moved=%d)", moved)
	}
}

func TestStaticBuildRunsCorrectly(t *testing.T) {
	p := benchProgram(t)
	for seed := uint64(1); seed <= 5; seed++ {
		img, err := StaticBuild(p, loader.DefaultSequentialConfig(), 32*1024, seed)
		if err != nil {
			t.Fatal(err)
		}
		plat := platform.New(platform.ProximaLEON3())
		plat.LoadImage(img)
		res, err := plat.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.ExitValue != wantSum {
			t.Errorf("seed %d: static build result=%d, want %d", seed, res.ExitValue, wantSum)
		}
		// Static randomisation has zero instruction overhead.
		base, err := loader.Load(p, loader.DefaultSequentialConfig())
		if err != nil {
			t.Fatal(err)
		}
		plat2 := platform.New(platform.ProximaLEON3())
		plat2.LoadImage(base)
		res2, err := plat2.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.PMCs.Instr != res2.PMCs.Instr {
			t.Errorf("static variant changed instruction count: %d vs %d",
				res.PMCs.Instr, res2.PMCs.Instr)
		}
	}
}

func TestStaticLayoutValidation(t *testing.T) {
	p := benchProgram(t)
	if _, err := StaticLayout(p, loader.DefaultSequentialConfig(), 0, 1); err == nil {
		t.Error("zero offset bound accepted")
	}
	if _, err := StaticLayout(p, loader.DefaultSequentialConfig(), 12, 1); err == nil {
		t.Error("non-8-multiple bound accepted")
	}
}

func TestDSRInstructionOverheadIsSmall(t *testing.T) {
	// The paper reports <2% dynamic instruction overhead. Our bench
	// program is call-heavy (64 iterations x 2 calls), so allow more, but
	// the overhead must still be bounded and positive.
	p := benchProgram(t)
	base, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	plat := platform.New(platform.ProximaLEON3())
	plat.LoadImage(base)
	r0, err := plat.Run()
	if err != nil {
		t.Fatal(err)
	}

	plat2 := platform.New(platform.ProximaLEON3())
	rt, err := NewRuntime(p, plat2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Reboot(1); err != nil {
		t.Fatal(err)
	}
	r1, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.PMCs.Instr <= r0.PMCs.Instr {
		t.Error("DSR did not add instructions")
	}
	overhead := float64(r1.PMCs.Instr-r0.PMCs.Instr) / float64(r0.PMCs.Instr)
	if overhead > 0.40 {
		t.Errorf("instruction overhead %.1f%% implausibly high", overhead*100)
	}
}
