package core

import (
	"testing"

	"dsr/internal/platform"
)

// BenchmarkReboot measures one DSR partition reboot — layout draw,
// in-place image rebuild, journalled memory clear, metadata writes and
// eager relocation cost accounting — without the run that follows. This
// is the per-run overhead the DSR series pays on top of execution; the
// benchgate baseline pins it so the reboot path cannot quietly regress
// back to per-run image construction or page-table churn.
func BenchmarkReboot(b *testing.B) {
	p := benchProgram(b)
	plat := platform.New(platform.ProximaLEON3())
	rt, err := NewRuntime(p, plat, Options{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := rt.Reboot(1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Reboot(uint64(i) + 2); err != nil {
			b.Fatal(err)
		}
	}
}
