// Package core is the paper's primary contribution: PROXIMA's Dynamic
// Software Randomisation (DSR), implemented — as in the paper (§III.B) —
// as a compiler pass plus a runtime system derived from Stabilizer.
//
// The compiler pass (Transform) rewrites a program so that its memory
// objects can be moved at run time:
//
//   - every direct call is replaced by an indirect dispatch that loads
//     the callee's current address from a pointer table (the relocation
//     metadata), so functions can live anywhere;
//   - every non-leaf prologue SAVE is replaced by a load of the
//     function's random stack offset from an offset table followed by a
//     SAVEX that applies it atomically inside the window save, keeping
//     the stack pointer valid and double-word aligned at all times
//     (§III.B.2, the register-window challenge); and
//   - the two metadata tables are added to the program as data objects,
//     so the runtime's table accesses flow through the data cache
//     exactly like the real system's do.
//
// The runtime (Runtime) performs the per-run work: drawing a fresh
// random placement for every function and data object from HeapLayers-
// style pools, rebuilding the image (eager relocation), writing the
// metadata tables, and modelling the SPARC cache-consistency routine the
// port required (write back the relocated code, invalidate stale
// instruction and L2 lines — §III.B.1).
package core

import (
	"fmt"

	"dsr/internal/isa"
	"dsr/internal/mem"
	"dsr/internal/prog"
)

// Symbol names of the DSR metadata tables injected by the pass.
const (
	// FTableSym is the function pointer table: word i holds the current
	// address of function i.
	FTableSym = "__dsr_ftable"
	// OffsetsSym is the stack offset table: word i holds the random
	// stack-frame offset of function i for this run.
	OffsetsSym = "__dsr_offsets"
)

// Scratch registers reserved for the DSR dispatch sequences. SPARC
// reserves %g6/%g7 for the system; application code must not use them.
const (
	dispatchReg = isa.G6
	offsetReg   = isa.G7
)

// Metadata is the relocation metadata the pass emits for the runtime.
type Metadata struct {
	// Funcs lists function names in table-index order.
	Funcs []string
	// Index maps a function name to its table index.
	Index map[string]int
}

// PassStats summarises the code-size cost of the transformation; the
// paper reports <2% total instruction overhead for the case study.
type PassStats struct {
	CallsRewritten     int
	ProloguesRewritten int
	// ExtraInstrs is the static code growth in instructions.
	ExtraInstrs int
}

// Transform applies the DSR compiler pass to p, returning the rewritten
// program (p itself is not modified), the relocation metadata, and the
// code-growth statistics.
//
// Requirements on p: it validates, and every non-leaf function starts
// with its prologue SAVE as the first instruction (the shape the
// builder's Prologue emits, and what a compiler guarantees).
func Transform(p *prog.Program) (*prog.Program, *Metadata, PassStats, error) {
	if err := p.Validate(); err != nil {
		return nil, nil, PassStats{}, fmt.Errorf("core: input program invalid: %w", err)
	}
	q := p.Clone()
	meta := &Metadata{Index: map[string]int{}}
	for i, f := range q.Functions {
		meta.Funcs = append(meta.Funcs, f.Name)
		meta.Index[f.Name] = i
	}
	var stats PassStats

	for _, f := range q.Functions {
		code, err := transformFunction(f, meta, &stats)
		if err != nil {
			return nil, nil, PassStats{}, err
		}
		f.Code = code
	}

	tableSize := mem.Addr(4 * len(meta.Funcs))
	if tableSize == 0 {
		tableSize = 4
	}
	if err := q.AddData(&prog.DataObject{Name: FTableSym, Size: tableSize, Align: 8}); err != nil {
		return nil, nil, PassStats{}, err
	}
	if err := q.AddData(&prog.DataObject{Name: OffsetsSym, Size: tableSize, Align: 8}); err != nil {
		return nil, nil, PassStats{}, err
	}
	if err := q.Validate(); err != nil {
		return nil, nil, PassStats{}, fmt.Errorf("core: transformed program invalid: %w", err)
	}
	return q, meta, stats, nil
}

// transformFunction rewrites one function: prologue SAVE → offset-table
// load + SAVEX, and every CALL → pointer-table load + CALLR. Branch
// displacements are remapped across the insertions.
func transformFunction(f *prog.Function, meta *Metadata, stats *PassStats) ([]isa.Instr, error) {
	selfIdx := int32(meta.Index[f.Name])
	var out []isa.Instr
	// newPos[i] is the index in out of the instruction that replaces
	// f.Code[i] (for branches: the branch itself).
	newPos := make([]int, len(f.Code)+1)

	for i := range f.Code {
		in := f.Code[i]
		switch {
		case i == 0 && in.Op == isa.Save && !f.Leaf:
			// Prologue: %g7 = offsets[self]; savex frame, %g7.
			newPos[i] = len(out)
			out = append(out,
				isa.Instr{Op: isa.Set, Rd: offsetReg, Sym: OffsetsSym},
				isa.Instr{Op: isa.Ld, Rd: offsetReg, Rs1: offsetReg, Imm: selfIdx * 4},
				isa.Instr{Op: isa.SaveX, Imm: in.Imm, Rs2: offsetReg},
			)
			stats.ProloguesRewritten++
			stats.ExtraInstrs += 2
		case in.Op == isa.Save && !f.Leaf:
			// A SAVE that is not the first instruction would need its own
			// offset load; the toolchain convention forbids it.
			return nil, fmt.Errorf("core: %q has a non-prologue save at %d", f.Name, i)
		case in.Op == isa.Call:
			idx, ok := meta.Index[in.Sym]
			if !ok {
				return nil, fmt.Errorf("core: %q calls unknown %q", f.Name, in.Sym)
			}
			newPos[i] = len(out)
			out = append(out,
				isa.Instr{Op: isa.Set, Rd: dispatchReg, Sym: FTableSym},
				isa.Instr{Op: isa.Ld, Rd: dispatchReg, Rs1: dispatchReg, Imm: int32(idx) * 4},
				isa.Instr{Op: isa.CallR, Rs1: dispatchReg},
			)
			stats.CallsRewritten++
			stats.ExtraInstrs += 2
		default:
			newPos[i] = len(out)
			out = append(out, in)
		}
	}
	newPos[len(f.Code)] = len(out)

	// Remap branch displacements. A branch at old i sits at newPos[i]
	// (branches are never expanded); its target old i+disp sits at
	// newPos[i+disp] (expanded sites map to the start of their sequence,
	// which is correct: a branch to a call lands on the dispatch load).
	for i := range f.Code {
		if !f.Code[i].Op.IsBranch() {
			continue
		}
		tgt := i + int(f.Code[i].Disp)
		out[newPos[i]].Disp = int32(newPos[tgt] - newPos[i])
	}

	// Loop-bound annotations ride along: an annotation on old index i
	// moves to newPos[i] (for expanded sites, the start of the expansion
	// — still inside the same loop, so the innermost-loop binding is
	// preserved).
	if f.LoopBounds != nil {
		remapped := make(map[int]int, len(f.LoopBounds))
		for i, n := range f.LoopBounds {
			remapped[newPos[i]] = n
		}
		f.LoopBounds = remapped
	}
	return out, nil
}
