// Package attack implements the dynamic side of the leakage-soundness
// argument: simulated cache attackers that observe a victim run on the
// LEON3 platform and reduce what they saw to a canonical observation
// key. The campaign engine runs many victim executions; the number of
// distinct keys lower-bounds the information the corresponding channel
// actually carries, and the leakage-soundness gate checks that
// log2(#distinct keys) never exceeds the static bound from
// internal/analysis/leak.
//
// Two observers are modeled, matching the analyzer's attacker models:
//
//   - Prime+probe: the attacker reads the final per-set occupancies of
//     IL1, DL1 and L2 after the victim ran from a flushed state
//     (platform.Run flushes first, so the occupancies are victim-only).
//     Deterministic builds give set attribution (the vector key);
//     randomised builds do not, so the observation is the per-cache
//     sorted occupancy multiset (the multiset key).
//
//   - Evict+time, at event granularity: a TraceRecorder attached via
//     cache.SetObserver hashes the victim's full per-access
//     (write, set, hit) event sequence per cache level.
//
// Both observations are pure functions of (layout seed, input), so
// campaign results are byte-identical at any worker count.
package attack

import (
	"math"
	"sort"
	"strconv"

	"dsr/internal/cache"
	"dsr/internal/mem"
	"dsr/internal/platform"
)

// FNV-1a 64-bit parameters (stable across runs and platforms).
const (
	fnvOffset uint64 = 0xcbf29ce484222325
	fnvPrime  uint64 = 0x100000001b3
)

// TraceRecorder is a cache.Observer that folds the access-event
// sequence into an order-sensitive FNV-1a hash. OnAccess allocates
// nothing and takes a handful of integer operations, so attaching a
// recorder perturbs only simulated-time-free bookkeeping (the
// simulator's reported cycles never depend on observers).
type TraceRecorder struct {
	hash   uint64
	events uint64
}

var _ cache.Observer = (*TraceRecorder)(nil)

// NewTraceRecorder returns a recorder in its reset state.
func NewTraceRecorder() *TraceRecorder {
	return &TraceRecorder{hash: fnvOffset}
}

// OnAccess implements cache.Observer.
func (r *TraceRecorder) OnAccess(write bool, set int, hit bool) {
	var tag uint64
	if write {
		tag |= 1
	}
	if hit {
		tag |= 2
	}
	h := r.hash
	h = (h ^ tag) * fnvPrime
	h = (h ^ uint64(uint32(set))) * fnvPrime
	r.hash = h
	r.events++
}

// Reset returns the recorder to its initial state (call between runs).
func (r *TraceRecorder) Reset() { r.hash, r.events = fnvOffset, 0 }

// Sum is the hash of the event sequence seen since the last Reset.
func (r *TraceRecorder) Sum() uint64 { return r.hash }

// Events is the number of events seen since the last Reset.
func (r *TraceRecorder) Events() uint64 { return r.events }

// TraceSample is one cache level's recorded trace digest.
type TraceSample struct {
	Hash   uint64 `json:"hash"`
	Events uint64 `json:"events"`
}

// Observation is everything both attackers saw in one victim run.
type Observation struct {
	// Final per-set occupancies (prime+probe).
	IL1, DL1, L2 []int
	// Per-cache access-event digests (evict+time).
	IL1Trace, DL1Trace, L2Trace TraceSample
	// Cycles is the run's cycle count (the timing side information both
	// attackers get for free).
	Cycles mem.Cycles
}

// Probe wires trace recorders into a platform's three cache levels and
// snapshots observations after victim runs.
type Probe struct {
	plat         *platform.Platform
	il1, dl1, l2 *TraceRecorder
}

// Attach installs fresh recorders on plat's IL1, DL1 and L2. The
// recorders see victim traffic only if the caller resets them after
// boot-time activity (Reset) — platform.Run's initial cache flush
// generates no events, so Reset right before the run is sufficient.
func Attach(plat *platform.Platform) *Probe {
	p := &Probe{
		plat: plat,
		il1:  NewTraceRecorder(),
		dl1:  NewTraceRecorder(),
		l2:   NewTraceRecorder(),
	}
	plat.IL1.SetObserver(p.il1)
	plat.DL1.SetObserver(p.dl1)
	plat.L2.SetObserver(p.l2)
	return p
}

// Detach removes the recorders (restores the zero-overhead path).
func (p *Probe) Detach() {
	p.plat.IL1.SetObserver(nil)
	p.plat.DL1.SetObserver(nil)
	p.plat.L2.SetObserver(nil)
}

// Reset clears all three recorders; call immediately before the
// observed victim run.
func (p *Probe) Reset() {
	p.il1.Reset()
	p.dl1.Reset()
	p.l2.Reset()
}

// Snapshot captures the observation after a victim run.
func (p *Probe) Snapshot(cycles mem.Cycles) Observation {
	return Observation{
		IL1:      p.plat.IL1.Occupancies(),
		DL1:      p.plat.DL1.Occupancies(),
		L2:       p.plat.L2.Occupancies(),
		IL1Trace: TraceSample{Hash: p.il1.Sum(), Events: p.il1.Events()},
		DL1Trace: TraceSample{Hash: p.dl1.Sum(), Events: p.dl1.Events()},
		L2Trace:  TraceSample{Hash: p.l2.Sum(), Events: p.l2.Events()},
		Cycles:   cycles,
	}
}

// PrimeProbeKey reduces the occupancy observation to its canonical
// key. attributable=true models the attacker against a deterministic
// build (set indices carry victim information: the vector key);
// attributable=false models the randomised builds, where a fresh
// secret-independent layout per run makes set indices placement noise
// (the per-cache sorted multiset key).
func (o *Observation) PrimeProbeKey(attributable bool) string {
	buf := make([]byte, 0, 4*(len(o.IL1)+len(o.DL1)+len(o.L2))+8)
	appendCache := func(tag byte, occ []int) {
		buf = append(buf, tag, ':')
		if !attributable {
			occ = append([]int(nil), occ...)
			sort.Sort(sort.Reverse(sort.IntSlice(occ)))
			// Trailing zeros carry no multiset information beyond the
			// (fixed) set count.
			for len(occ) > 0 && occ[len(occ)-1] == 0 {
				occ = occ[:len(occ)-1]
			}
		}
		for _, n := range occ {
			buf = strconv.AppendInt(buf, int64(n), 10)
			buf = append(buf, ',')
		}
		buf = append(buf, ';')
	}
	appendCache('i', o.IL1)
	appendCache('d', o.DL1)
	appendCache('l', o.L2)
	return string(buf)
}

// TraceKey reduces the event-sequence observation to its canonical key.
func (o *Observation) TraceKey() string {
	buf := make([]byte, 0, 3*20)
	for _, t := range []TraceSample{o.IL1Trace, o.DL1Trace, o.L2Trace} {
		buf = strconv.AppendUint(buf, t.Hash, 16)
		buf = append(buf, '/')
		buf = strconv.AppendUint(buf, t.Events, 10)
		buf = append(buf, ';')
	}
	return string(buf)
}

// CyclesKey is the pure timing observation (whole-run evict+time).
func (o *Observation) CyclesKey() string {
	return strconv.FormatUint(uint64(o.Cycles), 10)
}

// DistinctBits converts a distinct-observation count into measured
// bits of leakage (log2 of the class count).
func DistinctBits(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Log2(float64(n))
}
