package attack

import (
	"reflect"
	"testing"

	"dsr/internal/core"
	"dsr/internal/loader"
	"dsr/internal/platform"
	"dsr/internal/spaceapp"
)

func TestTraceRecorderOrderSensitive(t *testing.T) {
	a, b := NewTraceRecorder(), NewTraceRecorder()
	a.OnAccess(false, 3, true)
	a.OnAccess(true, 7, false)
	b.OnAccess(true, 7, false)
	b.OnAccess(false, 3, true)
	if a.Sum() == b.Sum() {
		t.Fatal("trace hash is order-insensitive")
	}
	if a.Events() != 2 || b.Events() != 2 {
		t.Fatalf("events = %d, %d; want 2, 2", a.Events(), b.Events())
	}
	a.Reset()
	c := NewTraceRecorder()
	if a.Sum() != c.Sum() || a.Events() != 0 {
		t.Fatal("Reset did not restore the initial state")
	}
}

func TestTraceRecorderDistinguishesFields(t *testing.T) {
	base := func() uint64 {
		r := NewTraceRecorder()
		r.OnAccess(false, 5, true)
		return r.Sum()
	}()
	for _, ev := range []struct {
		write bool
		set   int
		hit   bool
	}{{true, 5, true}, {false, 6, true}, {false, 5, false}} {
		r := NewTraceRecorder()
		r.OnAccess(ev.write, ev.set, ev.hit)
		if r.Sum() == base {
			t.Fatalf("event %+v hashes like (false,5,true)", ev)
		}
	}
}

func TestPrimeProbeKeyMultisetInvariance(t *testing.T) {
	a := Observation{IL1: []int{2, 0, 1}, DL1: []int{0, 0}, L2: []int{1}}
	b := Observation{IL1: []int{1, 2, 0}, DL1: []int{0, 0}, L2: []int{1}}
	if a.PrimeProbeKey(false) != b.PrimeProbeKey(false) {
		t.Fatal("multiset key depends on set order")
	}
	if a.PrimeProbeKey(true) == b.PrimeProbeKey(true) {
		t.Fatal("vector key ignores set order")
	}
	c := Observation{IL1: []int{2, 1, 0}, DL1: []int{0, 1}, L2: []int{1}}
	if a.PrimeProbeKey(false) == c.PrimeProbeKey(false) {
		t.Fatal("multiset key ignores a changed occupancy")
	}
}

// observeDet runs the deterministic control build once and snapshots.
func observeDet(t *testing.T, seed uint64) Observation {
	t.Helper()
	p, err := spaceapp.BuildControl()
	if err != nil {
		t.Fatal(err)
	}
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	plat := platform.New(platform.ProximaLEON3())
	plat.LoadImage(img)
	probe := Attach(plat)
	in := spaceapp.GenControlInput(seed)
	if err := spaceapp.ApplyControlInput(plat.Mem, img, in); err != nil {
		t.Fatal(err)
	}
	probe.Reset()
	res, err := plat.Run()
	if err != nil {
		t.Fatal(err)
	}
	return probe.Snapshot(res.Cycles)
}

func TestObservationDeterministic(t *testing.T) {
	a := observeDet(t, 42)
	b := observeDet(t, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same build + same input produced different observations")
	}
	if a.IL1Trace.Events == 0 || a.DL1Trace.Events == 0 || a.L2Trace.Events == 0 {
		t.Fatalf("observer missed a cache level: %+v", a)
	}
	nonzero := 0
	for _, n := range a.IL1 {
		nonzero += n
	}
	if nonzero == 0 {
		t.Fatal("victim left no IL1 occupancy")
	}
}

func TestObservationVariesWithInput(t *testing.T) {
	a := observeDet(t, 1)
	b := observeDet(t, 2)
	// The control app's path depends on its input: at least the cycle
	// observation must differ across the input space (if this ever
	// fails, pick different seeds — the gate tests use many).
	if a.CyclesKey() == b.CyclesKey() && a.TraceKey() == b.TraceKey() {
		t.Skip("inputs 1 and 2 happen to collide; gate tests cover variation")
	}
}

// TestDSRObservationPureFunctionOfSeed: under DSR, the observation is a
// pure function of (layout seed, input) — the determinism the campaign
// engine needs to merge observer traces byte-identically at any worker
// count.
func TestDSRObservationPureFunctionOfSeed(t *testing.T) {
	observe := func() (Observation, Observation) {
		p, err := spaceapp.BuildControl()
		if err != nil {
			t.Fatal(err)
		}
		plat := platform.New(platform.ProximaLEON3())
		rt, err := core.NewRuntime(p, plat, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		probe := Attach(plat)
		one := func(seed uint64) Observation {
			if _, err := rt.Reboot(seed); err != nil {
				t.Fatal(err)
			}
			in := spaceapp.GenControlInput(7)
			if err := spaceapp.ApplyControlInput(plat.Mem, rt.Image(), in); err != nil {
				t.Fatal(err)
			}
			probe.Reset()
			res, err := rt.Run()
			if err != nil {
				t.Fatal(err)
			}
			return probe.Snapshot(res.Cycles)
		}
		return one(99), one(100)
	}
	a1, a2 := observe()
	b1, b2 := observe()
	if !reflect.DeepEqual(a1, b1) || !reflect.DeepEqual(a2, b2) {
		t.Fatal("DSR observation is not a pure function of (seed, input)")
	}
	if reflect.DeepEqual(a1, a2) {
		t.Fatal("different layout seeds produced identical observations")
	}
	// Under a fresh layout the multiset key may or may not move, but
	// the vector key must: layouts shift lines across sets.
	if a1.PrimeProbeKey(true) == a2.PrimeProbeKey(true) {
		t.Fatal("layout reseed left the occupancy vector unchanged")
	}
}

func TestDistinctBits(t *testing.T) {
	for _, c := range []struct {
		n    int
		want float64
	}{{0, 0}, {1, 0}, {2, 1}, {8, 3}} {
		if got := DistinctBits(c.n); got != c.want {
			t.Errorf("DistinctBits(%d) = %f; want %f", c.n, got, c.want)
		}
	}
}
