// Package prng provides the pseudo-random number generators used by the
// DSR runtime. The paper (§III.B.3) selects the Multiply-With-Carry (MWC)
// generator of Marsaglia & Zaman because it is the simplest generator to
// implement in software whose period was shown adequate for probabilistic
// timing analysis (Agirre et al., DSD 2015); the same work proposes an
// LFSR for hardware implementations, which we provide for the A3 ablation.
//
// All generators implement Source, a minimal 32-bit interface; helper
// methods derive bounded values from it without modulo bias beyond what
// the real DSR runtime accepts (the runtime uses plain modulo, and so do
// we, to stay faithful: placement offsets are so much smaller than 2^32
// that the bias is negligible).
package prng

// Source is a deterministic stream of 32-bit values. Implementations are
// not safe for concurrent use; the DSR runtime owns one Source per run.
type Source interface {
	// Uint32 returns the next 32-bit value in the stream.
	Uint32() uint32
	// Seed re-initialises the stream. A zero seed is replaced by an
	// implementation-chosen non-degenerate constant.
	Seed(seed uint64)
}

// MWC is the lag-1 Multiply-With-Carry generator x' = a*lo(x) + carry,
// with a = 698769069 as recommended by Marsaglia. Its state is the pair
// (value, carry) packed into 64 bits; the period is close to 2^63.
type MWC struct {
	state uint64
}

// mwcA is Marsaglia's recommended multiplier for a 32-bit MWC: it is
// chosen so that a*2^32-1 and a*2^31-1 are prime, maximising the period.
const mwcA = 698769069

// NewMWC returns an MWC generator seeded with seed.
func NewMWC(seed uint64) *MWC {
	m := &MWC{}
	m.Seed(seed)
	return m
}

// Scramble applies the splitmix64 finaliser. MWC (like any multiplicative
// recurrence) maps *sequential* seeds to outputs that form an arithmetic
// progression, which would make successive DSR layouts — and therefore
// successive execution times — statistically dependent and fail the
// Ljung-Box gate. The measurement protocol draws seeds 1, 2, 3, ..., so
// seeds must be whitened non-linearly before they reach the generator
// state (the PRNG-quality requirement of Agirre et al., DSD 2015).
func Scramble(seed uint64) uint64 {
	z := seed + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Seed implements Source. Degenerate states (carry and value both zero,
// or the absorbing state) are remapped to a fixed good state.
func (m *MWC) Seed(seed uint64) {
	m.state = Scramble(seed)
	// Avoid the two absorbing states of MWC: x=c=0 and x=a-1,c=a-1.
	if m.state == 0 || m.state == (uint64(mwcA-1)<<32|uint64(mwcA-1)) {
		m.state = 1
	}
	// Warm up so that close seeds diverge before first use.
	for i := 0; i < 8; i++ {
		m.Uint32()
	}
}

// Uint32 implements Source.
func (m *MWC) Uint32() uint32 {
	x := m.state & 0xFFFFFFFF
	c := m.state >> 32
	m.state = mwcA*x + c
	return uint32(m.state)
}

// LFSR is a 32-bit Galois linear-feedback shift register with the
// maximal-length polynomial x^32+x^22+x^2+x^1+1 (taps 0xB4BCD35C is the
// common Galois mask for this polynomial family). Period 2^32-1; the
// zero state is unreachable and is remapped at seeding.
type LFSR struct {
	state uint32
}

// lfsrTaps is a maximal-period Galois tap mask for 32-bit LFSRs.
const lfsrTaps = 0xB4BCD35C

// NewLFSR returns an LFSR seeded with seed.
func NewLFSR(seed uint64) *LFSR {
	l := &LFSR{}
	l.Seed(seed)
	return l
}

// Seed implements Source. Seeds are whitened like MWC's: an LFSR is
// linear over GF(2), so sequential raw seeds would likewise correlate.
func (l *LFSR) Seed(seed uint64) {
	w := Scramble(seed)
	s := uint32(w) ^ uint32(w>>32)
	if s == 0 {
		s = 0xACE1ACE1
	}
	l.state = s
	for i := 0; i < 8; i++ {
		l.Uint32()
	}
}

// Uint32 implements Source. Each call clocks the register 32 times so
// that successive outputs are decorrelated words, matching how a
// hardware LFSR would be sampled once per randomisation event.
func (l *LFSR) Uint32() uint32 {
	var out uint32
	for i := 0; i < 32; i++ {
		lsb := l.state & 1
		l.state >>= 1
		if lsb != 0 {
			l.state ^= lfsrTaps
		}
		out = out<<1 | lsb
	}
	return out
}

// Intn returns a value in [0, n) drawn from src. n must be positive.
// Plain modulo reduction is used deliberately: the production DSR runtime
// does the same, and placement ranges (≤ a cache way) make the bias
// irrelevant next to 2^32.
func Intn(src Source, n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	return int(src.Uint32() % uint32(n))
}

// AlignedOffset returns a random offset in [0, bound) that is a multiple
// of align. The paper requires stack offsets to be multiples of 8 (SPARC
// double-word alignment) and bounded by the cache way size.
func AlignedOffset(src Source, bound, align int) int {
	if align <= 0 || bound <= 0 || bound%align != 0 {
		panic("prng: AlignedOffset requires positive bound divisible by align")
	}
	slots := bound / align
	return Intn(src, slots) * align
}

// Uint64 composes two 32-bit draws into a 64-bit value.
func Uint64(src Source) uint64 {
	return uint64(src.Uint32())<<32 | uint64(src.Uint32())
}

// Float64 returns a value in [0,1) with 53 random bits, used by the
// synthetic workload generators (not by the DSR runtime itself).
func Float64(src Source) float64 {
	return float64(Uint64(src)>>11) / (1 << 53)
}

// Perm returns a random permutation of [0,n), used by the eager relocator
// to shuffle function placement order so that pool fragmentation does not
// correlate with link order.
func Perm(src Source, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := Intn(src, i+1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Stateful is implemented by sources whose full generator state fits a
// 64-bit word and can be captured and reinstated — what a platform
// snapshot needs to fork a booted machine without disturbing the
// generator's stream. Both repository generators implement it.
type Stateful interface {
	// State returns the generator's complete current state.
	State() uint64
	// SetState reinstates a state previously returned by State.
	SetState(s uint64)
}

// State implements Stateful.
func (m *MWC) State() uint64 { return m.state }

// SetState implements Stateful.
func (m *MWC) SetState(s uint64) { m.state = s }

// State implements Stateful.
func (l *LFSR) State() uint64 { return uint64(l.state) }

// SetState implements Stateful.
func (l *LFSR) SetState(s uint64) { l.state = uint32(s) }

// PermInto fills p (reused across calls by the DSR reboot path to keep
// the per-run allocation count flat) with a random permutation of
// [0, len(p)), drawing exactly as Perm does.
func PermInto(src Source, p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := Intn(src, i+1)
		p[i], p[j] = p[j], p[i]
	}
}
