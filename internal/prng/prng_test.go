package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func sources(seed uint64) map[string]Source {
	return map[string]Source{
		"mwc":  NewMWC(seed),
		"lfsr": NewLFSR(seed),
	}
}

func TestDeterminism(t *testing.T) {
	for name := range sources(1) {
		a := sources(12345)[name]
		b := sources(12345)[name]
		for i := 0; i < 100; i++ {
			if a.Uint32() != b.Uint32() {
				t.Errorf("%s: same seed diverged at draw %d", name, i)
				break
			}
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	for name := range sources(1) {
		a := sources(1)[name]
		b := sources(2)[name]
		same := 0
		for i := 0; i < 100; i++ {
			if a.Uint32() == b.Uint32() {
				same++
			}
		}
		if same > 5 {
			t.Errorf("%s: seeds 1 and 2 agree on %d/100 draws", name, same)
		}
	}
}

func TestZeroSeedIsNonDegenerate(t *testing.T) {
	for name, src := range sources(0) {
		zero := 0
		for i := 0; i < 100; i++ {
			if src.Uint32() == 0 {
				zero++
			}
		}
		if zero > 3 {
			t.Errorf("%s: zero seed produced %d/100 zero outputs", name, zero)
		}
	}
}

// The MWC absorbing state must be escaped at seeding time.
func TestMWCAbsorbingStateRemapped(t *testing.T) {
	m := &MWC{}
	m.Seed(uint64(mwcA-1)<<32 | uint64(mwcA-1))
	seen := map[uint32]bool{}
	for i := 0; i < 16; i++ {
		seen[m.Uint32()] = true
	}
	if len(seen) < 8 {
		t.Errorf("MWC seeded at absorbing state produced only %d distinct values", len(seen))
	}
}

// Basic uniformity: mean of many draws scaled to [0,1) should be ~0.5 and
// each of 16 buckets should hold roughly 1/16 of the mass.
func TestUniformity(t *testing.T) {
	const n = 200000
	for name, src := range sources(42) {
		var sum float64
		buckets := make([]int, 16)
		for i := 0; i < n; i++ {
			v := src.Uint32()
			sum += float64(v) / float64(math.MaxUint32)
			buckets[v>>28]++
		}
		mean := sum / n
		if mean < 0.49 || mean > 0.51 {
			t.Errorf("%s: mean=%f, want ~0.5", name, mean)
		}
		for i, b := range buckets {
			frac := float64(b) / n
			if frac < 1.0/16-0.01 || frac > 1.0/16+0.01 {
				t.Errorf("%s: bucket %d holds %f of the mass, want ~%f", name, i, frac, 1.0/16)
			}
		}
	}
}

// Serial correlation of successive draws should be near zero.
func TestSerialCorrelation(t *testing.T) {
	const n = 100000
	for name, src := range sources(7) {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(src.Uint32()) / float64(math.MaxUint32)
		}
		var mean float64
		for _, x := range xs {
			mean += x
		}
		mean /= n
		var num, den float64
		for i := 0; i < n-1; i++ {
			num += (xs[i] - mean) * (xs[i+1] - mean)
		}
		for _, x := range xs {
			den += (x - mean) * (x - mean)
		}
		r := num / den
		if math.Abs(r) > 0.01 {
			t.Errorf("%s: lag-1 autocorrelation %f, want |r|<0.01", name, r)
		}
	}
}

func TestIntnRange(t *testing.T) {
	src := NewMWC(9)
	for i := 0; i < 1000; i++ {
		v := Intn(src, 7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(src, 0) did not panic")
		}
	}()
	Intn(NewMWC(1), 0)
}

// Property: AlignedOffset always returns a multiple of align in [0,bound).
func TestAlignedOffsetProperty(t *testing.T) {
	src := NewMWC(3)
	f := func(slots uint8) bool {
		n := int(slots%64) + 1
		bound := n * 8
		v := AlignedOffset(src, bound, 8)
		return v >= 0 && v < bound && v%8 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlignedOffsetCoversAllSlots(t *testing.T) {
	src := NewMWC(11)
	seen := map[int]bool{}
	for i := 0; i < 2000; i++ {
		seen[AlignedOffset(src, 64, 8)] = true
	}
	if len(seen) != 8 {
		t.Errorf("AlignedOffset(64,8) hit %d/8 slots", len(seen))
	}
}

func TestAlignedOffsetValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AlignedOffset with bound not divisible by align did not panic")
		}
	}()
	AlignedOffset(NewMWC(1), 20, 8)
}

func TestFloat64Range(t *testing.T) {
	src := NewLFSR(5)
	for i := 0; i < 1000; i++ {
		f := Float64(src)
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	src := NewMWC(77)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := Perm(src, n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermVaries(t *testing.T) {
	src := NewMWC(123)
	distinct := map[string]bool{}
	for i := 0; i < 50; i++ {
		p := Perm(src, 6)
		key := ""
		for _, v := range p {
			key += string(rune('a' + v))
		}
		distinct[key] = true
	}
	if len(distinct) < 20 {
		t.Errorf("50 draws of Perm(6) produced only %d distinct permutations", len(distinct))
	}
}

// LFSR must have full period behaviour at word granularity: no repeats in
// a short window, and state never reaches zero.
func TestLFSRNoShortCycle(t *testing.T) {
	l := NewLFSR(1)
	seen := map[uint32]int{}
	for i := 0; i < 10000; i++ {
		v := l.Uint32()
		if prev, ok := seen[v]; ok {
			t.Fatalf("LFSR output repeated at draws %d and %d", prev, i)
		}
		seen[v] = i
	}
}

func BenchmarkMWC(b *testing.B) {
	m := NewMWC(1)
	for i := 0; i < b.N; i++ {
		_ = m.Uint32()
	}
}

func BenchmarkLFSR(b *testing.B) {
	l := NewLFSR(1)
	for i := 0; i < b.N; i++ {
		_ = l.Uint32()
	}
}
