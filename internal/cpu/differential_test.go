package cpu

import (
	"testing"
	"testing/quick"

	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/mem"
	"dsr/internal/prng"
	"dsr/internal/prog"
)

// refALU is an independent reference evaluator for straight-line integer
// code: a plain register map with Go-native semantics. The CPU must
// produce identical final register state for any such program.
type refALU struct {
	regs map[isa.Reg]uint32
}

func (r *refALU) get(reg isa.Reg) uint32 {
	if reg == isa.G0 {
		return 0
	}
	return r.regs[reg]
}

func (r *refALU) set(reg isa.Reg, v uint32) {
	if reg != isa.G0 {
		r.regs[reg] = v
	}
}

func (r *refALU) exec(in isa.Instr) {
	src2 := func() uint32 {
		if in.UseImm {
			return uint32(in.Imm)
		}
		return r.get(in.Rs2)
	}
	a := r.get(in.Rs1)
	switch in.Op {
	case isa.Add:
		r.set(in.Rd, a+src2())
	case isa.Sub:
		r.set(in.Rd, a-src2())
	case isa.And:
		r.set(in.Rd, a&src2())
	case isa.Or:
		r.set(in.Rd, a|src2())
	case isa.Xor:
		r.set(in.Rd, a^src2())
	case isa.Sll:
		r.set(in.Rd, a<<(src2()&31))
	case isa.Srl:
		r.set(in.Rd, a>>(src2()&31))
	case isa.Sra:
		r.set(in.Rd, uint32(int32(a)>>(src2()&31)))
	case isa.Mul:
		r.set(in.Rd, uint32(int32(a)*int32(src2())))
	case isa.Mov:
		r.set(in.Rd, src2())
	case isa.Set:
		r.set(in.Rd, uint32(in.Imm))
	}
}

// aluRegs are the registers the generated programs use: locals only, so
// window mechanics cannot mask ALU bugs (they are tested separately).
var aluRegs = []isa.Reg{isa.L0, isa.L1, isa.L2, isa.L3, isa.L4, isa.L5, isa.L6, isa.L7}

func randomALUInstr(src prng.Source) isa.Instr {
	ops := []isa.Op{isa.Add, isa.Sub, isa.And, isa.Or, isa.Xor,
		isa.Sll, isa.Srl, isa.Sra, isa.Mul, isa.Mov, isa.Set}
	op := ops[prng.Intn(src, len(ops))]
	in := isa.Instr{
		Op:  op,
		Rd:  aluRegs[prng.Intn(src, len(aluRegs))],
		Rs1: aluRegs[prng.Intn(src, len(aluRegs))],
	}
	switch op {
	case isa.Set:
		in.Imm = int32(src.Uint32())
	case isa.Mov:
		if prng.Intn(src, 2) == 0 {
			in.Rs2 = aluRegs[prng.Intn(src, len(aluRegs))]
		} else {
			in.Imm, in.UseImm = int32(src.Uint32()>>16)-32768, true
		}
	default:
		if prng.Intn(src, 2) == 0 {
			in.Rs2 = aluRegs[prng.Intn(src, len(aluRegs))]
		} else {
			in.Imm, in.UseImm = int32(prng.Intn(src, 64)), true
		}
	}
	return in
}

// TestALUDifferential compares the CPU against the reference evaluator
// on random straight-line programs.
func TestALUDifferential(t *testing.T) {
	src := prng.NewMWC(777)
	run := func() bool {
		n := 20 + prng.Intn(src, 60)
		code := make([]isa.Instr, 0, n+2)
		code = append(code, isa.Instr{Op: isa.Save, Imm: prog.MinFrame})
		body := make([]isa.Instr, 0, n)
		for i := 0; i < n; i++ {
			in := randomALUInstr(src)
			body = append(body, in)
		}
		code = append(code, body...)
		code = append(code, isa.Instr{Op: isa.Halt})

		p := &prog.Program{Name: "diff", Entry: "main"}
		if err := p.AddFunction(&prog.Function{
			Name: "main", FrameSize: prog.MinFrame, Code: code,
		}); err != nil {
			t.Fatal(err)
		}
		img, err := loader.Load(p, loader.DefaultSequentialConfig())
		if err != nil {
			t.Fatal(err)
		}
		c := New(NewDefaultConfig(), img, nullMem{}, nullMem{}, nil, nil, NewMemory())
		c.Reset(stackTop)
		if _, err := c.Run(); err != nil {
			t.Logf("cpu error: %v", err)
			return false
		}

		ref := &refALU{regs: map[isa.Reg]uint32{}}
		for _, in := range body {
			ref.exec(in)
		}
		for _, r := range aluRegs {
			if c.Reg(r) != ref.get(r) {
				t.Logf("register %s: cpu=%#x ref=%#x", r, c.Reg(r), ref.get(r))
				return false
			}
		}
		return true
	}
	if err := quick.Check(func(uint8) bool { return run() }, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestMemoryRoundTripDifferential checks that arbitrary store/load
// sequences through the timed path agree with a plain map model.
func TestMemoryRoundTripDifferential(t *testing.T) {
	f := func(ops []uint32, seed uint64) bool {
		src := prng.NewMWC(seed)
		m := NewMemory()
		ref := map[uint64]uint32{}
		base := uint64(0x5000_0000)
		for _, op := range ops {
			addr := base + uint64(op%4096)*4
			if prng.Intn(src, 2) == 0 {
				v := src.Uint32()
				m.StoreWord(mem.Addr(addr), v)
				ref[addr] = v
			} else if m.LoadWord(mem.Addr(addr)) != ref[addr] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
