package cpu

import (
	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/prog"
)

// This file is the decode half of the threaded-code engine (see
// engine.go for the dispatch loop and DESIGN.md §13 for the full
// argument): each function is predecoded once per (function,
// layout-class) pair into a µop array with decode-time-specialised
// opcodes (register vs immediate forms split, operands resolved to
// flat-register-file bank/index pairs) plus, per instruction index, the
// length of the fusible straight-line run starting there.
//
// The decode is layout-invariant within a class: the only
// placement-dependent instruction fields are the Set/Call immediates the
// loader patches with symbol addresses, and those are read from the
// *current* PlacedFunc's code at execution time (uSetSym/uCall), so one
// decoded program serves every placement whose base has the same offset
// within an IL1 line. With 8-byte allocation alignment and 32-byte
// lines that is four classes per function, warm after a handful of
// reboots and reused across the thousands of runs of a campaign.

// µop tags. Order matters only for the fusible group: tags below
// fusedEnd cost exactly one base-issue cycle, cannot fault, touch no
// memory hierarchy and transfer no control, so the engine executes runs
// of them back-to-back with a single batched charge and no
// per-instruction window/budget/watchdog checks.
const (
	uNop uint8 = iota
	uAddR
	uAddI
	uSubR
	uSubI
	uAndR
	uAndI
	uOrR
	uOrI
	uXorR
	uXorI
	uSllR
	uSllI
	uSrlR
	uSrlI
	uSraR
	uSraI
	uCmpR
	uCmpI
	uMovR
	uMovI
	uSet
	uSetSym
	fusedEnd // sentinel: everything below is non-fusible

	uMulR
	uMulI
	uDivR
	uDivI
	uHalt
	uLd
	uLdub
	uSt
	uStb
	uFLd
	uFSt
	uFadd
	uFsub
	uFmul
	uFdiv
	uFsqrt
	uFcmp
	uFitos
	uFstoi
	uBa
	uBe
	uBne
	uBl
	uBle
	uBg
	uBge
	uFbe
	uFbne
	uFbl
	uFbg
	uCall
	uCallR
	uRet
	uRetL
	uSave
	uSaveX
	uRestore
	uIPoint
)

// uop is one predecoded instruction. Integer operands are (bank, index)
// pairs into the flat register file: bank selects rbase (globals, outs,
// locals, ins of the current window), index the word within the bank.
// %g0 reads resolve to (0,0) — rfile[0], permanently zero — and %g0
// writes to (0, scratch), so the execution loop needs no special cases.
// FP operands use the index fields directly. imm carries the immediate,
// the branch displacement (in instructions) or the ipoint ID.
type uop struct {
	tag    uint8
	db, di uint8 // rd (or store-source / FP rd)
	ab, ai uint8 // rs1 (or FP rs1)
	bb, bi uint8 // rs2 (or FP rs2)
	imm    int32
}

// uprog is one decoded function for one layout class. run[i] is the
// number of consecutive fusible µops starting at i that stay inside
// instruction i's fetch-window chunk (zero for non-fusible µops); the
// chunk boundaries are static per class because the IL1 line size
// divides the page size, so an aligned line never straddles a page.
// res[cwp] is the operand-resolved form of ops for one window pointer
// (see ruop), built lazily by resolve.
type uprog struct {
	ops []uop
	run []uint16
	res [][]ruop
}

// ruop is a uop with its operands pre-resolved to absolute register-file
// indices for one window pointer. The bank arithmetic the execution loop
// would otherwise do per operand (rbase[bank]+index) depends only on cwp
// — insIdx is derived from it — so it can be done once per (program,
// cwp) instead of per executed instruction. FP operands pass through
// unchanged: their bank fields are zero and rbase[0] is zero. run is
// uprog.run[i] copied alongside so the dispatch loop reads one record
// per instruction instead of two arrays.
type ruop struct {
	tag     uint8
	d, a, b uint8
	run     uint16
	imm     int32
}

// resolve returns ops with operands resolved for the CPU's current
// window pointer, building and caching the resolution on first use.
// Callers must re-resolve after any window rotation (save, restore,
// ret) — and engineOK guarantees every resolved index fits a uint8.
func (c *CPU) resolve(p *uprog) []ruop {
	if p.res == nil {
		p.res = make([][]ruop, c.cfg.NumWindows)
	}
	if r := p.res[c.cwp]; r != nil {
		return r
	}
	base := [4]int32{0, outBase(c.cwp), localBase(c.cwp), outBase(c.insIdx)}
	r := make([]ruop, len(p.ops))
	for i := range p.ops {
		u := &p.ops[i]
		r[i] = ruop{
			tag: u.tag,
			d:   uint8(base[u.db&3] + int32(u.di)),
			a:   uint8(base[u.ab&3] + int32(u.ai)),
			b:   uint8(base[u.bb&3] + int32(u.bi)),
			run: p.run[i],
			imm: u.imm,
		}
	}
	p.res[c.cwp] = r
	return r
}

// decodeKey identifies a decoded program: the immutable source function
// and the placement's offset within an IL1 line.
type decodeKey struct {
	fn    *prog.Function
	class uint32
}

// rsOp encodes a register read operand.
func rsOp(r isa.Reg) (uint8, uint8) { return uint8(r >> 3), uint8(r & 7) }

// rdOp encodes a register write operand; %g0 writes land in the scratch
// slot (bank 0 so rbase adds nothing).
func rdOp(r isa.Reg, scratch uint8) (uint8, uint8) {
	if r == isa.G0 {
		return 0, scratch
	}
	return uint8(r >> 3), uint8(r & 7)
}

// decoded returns the µop program for pf under the current line size,
// consulting the per-CPU cache. A nil return means the function contains
// an op the engine does not implement; the caller falls back to the
// interpreter. The one-entry (lastPf, lastClass) cache makes the common
// case — consecutive regions of the same function — a pointer compare.
func (c *CPU) decoded(pf *loader.PlacedFunc) *uprog {
	class := uint32(pf.Base & (c.fetchLine - 1))
	if pf == c.lastPf && class == c.lastClass {
		return c.lastP
	}
	key := decodeKey{fn: pf.Fn, class: class}
	p, ok := c.decCache[key]
	if !ok {
		p = c.decodeFunc(pf.Fn, class)
		if c.decCache == nil {
			c.decCache = make(map[decodeKey]*uprog)
		}
		c.decCache[key] = p
	}
	c.lastPf, c.lastClass, c.lastP = pf, class, p
	return p
}

// InvalidateDecode drops every decoded program. Correctness never
// requires calling it — decoded programs derive only from immutable
// prog.Function code and the layout class, and relocation/reboot simply
// resolves to a different cache entry — but it is the hard reset for
// configuration changes (bindFronts calls it when the line size may have
// changed) and for tests that force a cold decode.
func (c *CPU) InvalidateDecode() {
	c.decCache = nil
	c.lastPf, c.lastP = nil, nil
}

// decodeFunc lowers fn's code for one layout class. line is the IL1
// line size in bytes (a power of two dividing the page size; engineOK
// verifies this before any decode happens).
func (c *CPU) decodeFunc(fn *prog.Function, class uint32) *uprog {
	scratch32 := c.scratchIdx()
	if scratch32 > 255 {
		return nil
	}
	scratch := uint8(scratch32)
	line := uint32(c.fetchLine)
	code := fn.Code
	p := &uprog{ops: make([]uop, len(code)), run: make([]uint16, len(code))}
	for i := range code {
		in := &code[i]
		u := &p.ops[i]
		u.imm = in.Imm

		alu := func(rTag, iTag uint8) {
			u.db, u.di = rdOp(in.Rd, scratch)
			u.ab, u.ai = rsOp(in.Rs1)
			if in.UseImm {
				u.tag = iTag
			} else {
				u.tag = rTag
				u.bb, u.bi = rsOp(in.Rs2)
			}
		}
		fpu := func(tag uint8) {
			u.tag = tag
			u.di = uint8(in.FRd)
			u.ai = uint8(in.FRs1)
			u.bi = uint8(in.FRs2)
		}

		switch in.Op {
		case isa.Nop:
			u.tag = uNop
		case isa.Halt:
			u.tag = uHalt
		case isa.Add:
			alu(uAddR, uAddI)
		case isa.Sub:
			alu(uSubR, uSubI)
		case isa.And:
			alu(uAndR, uAndI)
		case isa.Or:
			alu(uOrR, uOrI)
		case isa.Xor:
			alu(uXorR, uXorI)
		case isa.Sll:
			alu(uSllR, uSllI)
			u.imm = int32(uint32(in.Imm) & 31) // pre-masked shift amount
		case isa.Srl:
			alu(uSrlR, uSrlI)
			u.imm = int32(uint32(in.Imm) & 31)
		case isa.Sra:
			alu(uSraR, uSraI)
			u.imm = int32(uint32(in.Imm) & 31)
		case isa.Mul:
			alu(uMulR, uMulI)
		case isa.Div:
			alu(uDivR, uDivI)
		case isa.Cmp:
			u.ab, u.ai = rsOp(in.Rs1)
			if in.UseImm {
				u.tag = uCmpI
			} else {
				u.tag = uCmpR
				u.bb, u.bi = rsOp(in.Rs2)
			}
		case isa.Set:
			u.db, u.di = rdOp(in.Rd, scratch)
			if in.Sym != "" {
				u.tag = uSetSym // address patched per placement; read at exec
			} else {
				u.tag = uSet
			}
		case isa.Mov:
			u.db, u.di = rdOp(in.Rd, scratch)
			if in.UseImm {
				u.tag = uMovI
			} else {
				u.tag = uMovR
				u.ab, u.ai = rsOp(in.Rs2)
			}
		case isa.Ld:
			u.tag = uLd
			u.db, u.di = rdOp(in.Rd, scratch)
			u.ab, u.ai = rsOp(in.Rs1)
		case isa.Ldub:
			u.tag = uLdub
			u.db, u.di = rdOp(in.Rd, scratch)
			u.ab, u.ai = rsOp(in.Rs1)
		case isa.St:
			u.tag = uSt
			u.db, u.di = rsOp(in.Rd) // store source: a read operand
			u.ab, u.ai = rsOp(in.Rs1)
		case isa.Stb:
			u.tag = uStb
			u.db, u.di = rsOp(in.Rd)
			u.ab, u.ai = rsOp(in.Rs1)
		case isa.FLd:
			u.tag = uFLd
			u.di = uint8(in.FRd)
			u.ab, u.ai = rsOp(in.Rs1)
		case isa.FSt:
			u.tag = uFSt
			u.bi = uint8(in.FRs2)
			u.ab, u.ai = rsOp(in.Rs1)
		case isa.Fadd:
			fpu(uFadd)
		case isa.Fsub:
			fpu(uFsub)
		case isa.Fmul:
			fpu(uFmul)
		case isa.Fdiv:
			fpu(uFdiv)
		case isa.Fsqrt:
			fpu(uFsqrt)
		case isa.Fcmp:
			fpu(uFcmp)
		case isa.Fitos:
			fpu(uFitos)
		case isa.Fstoi:
			fpu(uFstoi)
		case isa.Ba:
			u.tag, u.imm = uBa, in.Disp
		case isa.Be:
			u.tag, u.imm = uBe, in.Disp
		case isa.Bne:
			u.tag, u.imm = uBne, in.Disp
		case isa.Bl:
			u.tag, u.imm = uBl, in.Disp
		case isa.Ble:
			u.tag, u.imm = uBle, in.Disp
		case isa.Bg:
			u.tag, u.imm = uBg, in.Disp
		case isa.Bge:
			u.tag, u.imm = uBge, in.Disp
		case isa.Fbe:
			u.tag, u.imm = uFbe, in.Disp
		case isa.Fbne:
			u.tag, u.imm = uFbne, in.Disp
		case isa.Fbl:
			u.tag, u.imm = uFbl, in.Disp
		case isa.Fbg:
			u.tag, u.imm = uFbg, in.Disp
		case isa.Call:
			u.tag = uCall // target patched per placement; read at exec
		case isa.CallR:
			u.tag = uCallR
			u.ab, u.ai = rsOp(in.Rs1)
		case isa.Ret:
			u.tag = uRet
		case isa.RetL:
			u.tag = uRetL
		case isa.Save:
			u.tag = uSave
		case isa.SaveX:
			u.tag = uSaveX
			u.bb, u.bi = rsOp(in.Rs2)
		case isa.Restore:
			u.tag = uRestore
		case isa.IPoint:
			u.tag = uIPoint
		default:
			return nil // unknown op: whole function stays on the interpreter
		}
	}

	// Fusible-run lengths, scanned backwards. A run ends at the last
	// instruction of its chunk: the next sequential fetch crosses into a
	// new IL1 line, which the interpreter serves via the slow path, so
	// the engine must stop fusing there and re-check the window.
	var chain uint16
	for i := len(code) - 1; i >= 0; i-- {
		if i+1 == len(code) || (class+uint32(i+1)*uint32(isa.InstrBytes))&(line-1) == 0 {
			chain = 0
		}
		if p.ops[i].tag < fusedEnd {
			chain++
			p.run[i] = chain
		} else {
			chain = 0
		}
	}
	return p
}
