// Package cpu models the LEON3 integer pipeline at instruction
// granularity with cycle-approximate timing: one base cycle per
// instruction plus stalls from the memory hierarchy, multi-cycle
// integer/floating-point operations (with the value-dependent FPU jitter
// the paper notes in §III.A/§VI), taken-branch penalties, and SPARC
// register-window overflow/underflow traps whose 16-word spill/fill
// traffic flows through the data cache — which is how stack placement
// randomisation reaches the memory hierarchy.
//
// The CPU is functional: it computes real values, so the case-study
// application produces real wavefront errors and its input-dependent
// paths (the paper's high-level jitter source) arise naturally.
package cpu

import (
	"errors"
	"fmt"
	"math"

	"dsr/internal/cache"
	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/mem"
	"dsr/internal/telemetry"
	"dsr/internal/timing"
	"dsr/internal/tlb"
)

// Config is the core's configuration. The per-instruction timing
// constants live in the embedded timing.Model — the single table shared
// with the static WCET analyzer (internal/analysis/wcet), so simulator
// and analyzer cannot drift. NewDefaultConfig documents the values used
// for the PROXIMA LEON3 reproduction.
type Config struct {
	NumWindows int // SPARC register windows (LEON3: 8)

	// Model is the shared per-instruction timing table; its fields
	// (BranchTaken, LoadUse, ... IPointCost) are promoted, so existing
	// cfg.BranchTaken-style accesses keep working.
	timing.Model

	// MaxInstrs aborts runaway programs; 0 means no limit.
	MaxInstrs uint64
}

// NewDefaultConfig returns the timing constants of the reproduction
// platform (see DESIGN.md §5).
func NewDefaultConfig() Config {
	return Config{
		NumWindows: 8,
		Model:      timing.Default(),
		MaxInstrs:  50_000_000,
	}
}

// Counters are the core's performance-monitoring counters. Together with
// the cache counters they reproduce Table I.
type Counters struct {
	Instrs           uint64
	FPUOps           uint64
	Loads            uint64
	Stores           uint64
	Branches         uint64
	TakenBranches    uint64
	Calls            uint64
	WindowOverflows  uint64
	WindowUnderflows uint64
}

// TracePoint is one instrumentation-point record: which ipoint fired and
// at what cycle count (the RVS timestamp, §V).
type TracePoint struct {
	ID     int32
	Cycles mem.Cycles
}

// ErrMaxInstrs is returned when the instruction watchdog fires.
var ErrMaxInstrs = errors.New("cpu: instruction limit exceeded")

// CPU is one LEON3-like core bound to an image and a memory hierarchy.
type CPU struct {
	cfg Config
	img *loader.Image

	icache mem.Backend
	dcache mem.Backend
	itlb   *tlb.TLB // may be nil
	dtlb   *tlb.TLB // may be nil
	data   *Memory

	// icacheC/dcacheC are the L1 fronts devirtualised: when a front is a
	// concrete *cache.Cache (the no-attribution configuration) whose
	// line size is at least a word, the hot paths call its single-line
	// entry points (ReadLine/WriteLine) directly — the CPU's accesses
	// are aligned words and single bytes, which then never straddle a
	// line — so the hit fast path inlines instead of paying a
	// mem.Backend interface dispatch per access. They are nil whenever
	// the front is anything else — in particular a telemetry.Probe
	// chain, which must stay on the interface path so every access is
	// booked. Rebound by bindFronts.
	icacheC *cache.Cache
	dcacheC *cache.Cache

	// Integer register file, flattened: rfile[0:8] are the globals,
	// then NumWindows banks of 16 words each — bank w holds the outs of
	// window w at [8+16w, 8+16w+8) and the locals of window w at
	// [8+16w+8, 8+16w+16). The ins of window w alias the outs of window
	// (w+1)%NumWindows, exactly the SPARC overlap. The final word is a
	// scratch slot: the threaded-code engine redirects %g0 writes there
	// at decode time so the hot path needs no destination check, while
	// rfile[0] (%g0 reads) is never written and stays zero.
	//
	// rbase caches the current window's bank bases indexed by register
	// group (r>>3: globals, outs, locals, ins), so a register access is
	// rfile[rbase[r>>3]+r&7] — one indexed load instead of the previous
	// per-group branch chain. Updated on every window rotate.
	rfile   []uint32
	rbase   [4]int32
	cwp     int
	insIdx  int // (cwp+1)%NumWindows, maintained on every window rotate
	liveWin int // unspilled frames resident in the register file

	fregs [isa.NumFRegs]float32

	iccZ, iccN bool
	fcc        int // -1 less, 0 equal, 1 greater, 2 unordered (NaN)

	pc     mem.Addr
	cycles mem.Cycles
	halted bool
	ctr    Counters
	trace  []TracePoint

	curFn *loader.PlacedFunc // fetch cache

	// Fetch fast-path window: while fetchLo <= pc < fetchHi, the
	// instruction at pc is a guaranteed zero-cycle fetch — same IL1
	// line, same page and same function as a fetch that already ran the
	// full translate+read path — so fetch skips re-translation and
	// re-lookup entirely. The window is the intersection of the IL1
	// line, the page and curFn's code range, armed by fetchSlow and
	// torn down (fetchHi=0) whenever something could invalidate it:
	// Reset, SetImage, SetMemoryFronts, and after every call hook (the
	// DSR runtime invalidates IL1 ranges mid-run). fetchZero gates the
	// whole mechanism: it is set only when skipping is provably
	// cycle-exact (IL1 and ITLB hit latencies both zero, as on the
	// modelled LEON3).
	fetchLo   mem.Addr
	fetchHi   mem.Addr
	fetchLine mem.Addr // IL1 line size (bytes); 0 if fetchZero is false
	fetchZero bool

	// callHook, when set, fires on every Call/CallR with the resolved
	// target address before control transfers. The DSR runtime uses it
	// to model lazy relocation (§III.B.1): the hook may charge cycles
	// via AddCycles and issue cache traffic of its own.
	callHook func(target mem.Addr)

	// Threaded-code engine state (decode.go, engine.go): the per-CPU
	// decoded-program cache keyed on (function, layout class), a
	// one-entry lookup cache for the current placement, and the
	// forced-interpreter switch used by the equivalence suites.
	decCache    map[decodeKey]*uprog
	lastPf      *loader.PlacedFunc
	lastClass   uint32
	lastP       *uprog
	forceInterp bool

	// att, when set, receives a cycle-attribution booking for every
	// cycle this core charges, partitioning the cycle counter into the
	// components of telemetry.Component under a hard conservation
	// invariant. When attribution is enabled the icache/dcache fronts
	// must be telemetry.Probe chains (platform.EnableAttribution wires
	// both together) so that memory stall cycles are booked per level.
	att *telemetry.Attribution
}

// New builds a CPU. icache and dcache are the L1 fronts of the memory
// hierarchy; itlb/dtlb may be nil to disable address translation costs;
// data is the functional store.
func New(cfg Config, img *loader.Image, icache, dcache mem.Backend, itlb, dtlb *tlb.TLB, data *Memory) *CPU {
	if cfg.NumWindows < 2 {
		panic("cpu: need at least 2 register windows")
	}
	c := &CPU{
		cfg: cfg, img: img,
		icache: icache, dcache: dcache,
		itlb: itlb, dtlb: dtlb,
		data: data,
	}
	size := 8 + 16*cfg.NumWindows + 1
	if size < rfileSlots {
		// The engine addresses the register file through a fixed-size
		// array pointer with masked indices (engine.go); padding the
		// allocation to that size lets every access elide its bounds
		// check.
		size = rfileSlots
	}
	c.rfile = make([]uint32, size)
	c.bindFronts()
	c.Reset(0)
	return c
}

// bindFronts (re)derives everything the hot paths precompute from the
// memory fronts: the devirtualised concrete-cache pointers and the
// fetch fast-path gate. The gate requires proof that a skipped fetch
// would have charged zero cycles: the IL1 behind the front (possibly
// behind a probe chain, discovered via Unwrap) must have hit latency
// zero, and so must the ITLB if present. Anything unprovable — an
// unknown backend type, non-zero latencies — leaves the gate closed and
// every fetch on the exact slow path.
func (c *CPU) bindFronts() {
	c.InvalidateDecode() // the IL1 line size (and thus chunking) may change
	c.icacheC, c.dcacheC = nil, nil
	if cc, ok := c.icache.(*cache.Cache); ok && cc.Config().LineSize >= mem.WordSize {
		c.icacheC = cc
	}
	if cc, ok := c.dcache.(*cache.Cache); ok && cc.Config().LineSize >= mem.WordSize {
		c.dcacheC = cc
	}
	c.fetchLo, c.fetchHi = 0, 0
	c.fetchZero, c.fetchLine = false, 0
	il1 := unwrapCache(c.icache)
	if il1 == nil || il1.Config().HitLatency != 0 {
		return
	}
	if c.itlb != nil && c.itlb.Config().HitLatency != 0 {
		return
	}
	c.fetchZero = true
	c.fetchLine = mem.Addr(il1.Config().LineSize)
}

// unwrapCache walks a chain of Unwrap-able interposers (telemetry
// probes) down to a concrete *cache.Cache, or nil if the chain bottoms
// out in anything else. Used only to read timing configuration — the
// access paths never bypass the interposers.
func unwrapCache(b mem.Backend) *cache.Cache {
	for b != nil {
		if cc, ok := b.(*cache.Cache); ok {
			return cc
		}
		u, ok := b.(interface{ Unwrap() mem.Backend })
		if !ok {
			return nil
		}
		b = u.Unwrap()
	}
	return nil
}

// outBase/localBase locate window w's out and local banks in rfile.
func outBase(w int) int32   { return int32(8 + 16*w) }
func localBase(w int) int32 { return int32(8 + 16*w + 8) }

// scratchIdx is the %g0 write-sink slot (see the rfile field comment).
func (c *CPU) scratchIdx() int32 { return int32(8 + 16*c.cfg.NumWindows) }

// setWindowBases rederives rbase from cwp/insIdx after a rotate.
func (c *CPU) setWindowBases() {
	c.rbase[0] = 0
	c.rbase[1] = outBase(c.cwp)
	c.rbase[2] = localBase(c.cwp)
	c.rbase[3] = outBase(c.insIdx)
}

// Reset prepares the core for a run: registers cleared, window state
// reset, PC at the image entry, SP at stackTop. Counters, the cycle
// counter and the trace are cleared too.
func (c *CPU) Reset(stackTop uint32) {
	for i := range c.rfile {
		c.rfile[i] = 0
	}
	c.fregs = [isa.NumFRegs]float32{}
	c.cwp = c.cfg.NumWindows - 1
	c.insIdx = 0 // (cwp+1) % NumWindows
	c.liveWin = 1
	c.setWindowBases()
	c.iccZ, c.iccN = false, false
	c.fcc = 0
	c.pc = c.img.Entry
	c.cycles = 0
	c.halted = false
	c.ctr = Counters{}
	c.trace = c.trace[:0]
	c.curFn = nil
	c.fetchLo, c.fetchHi = 0, 0
	c.setReg(isa.SP, stackTop)
}

// SetImage rebinds the core to a (re-randomised) image without touching
// data memory; used by the DSR runtime after relocation.
func (c *CPU) SetImage(img *loader.Image) {
	c.img = img
	c.pc = img.Entry
	c.curFn = nil
	c.fetchLo, c.fetchHi = 0, 0
	// Drop the one-entry decode lookup: the old image's PlacedFuncs are
	// dead and their addresses could in principle be reused. The decode
	// cache itself survives — it is keyed on the immutable source
	// functions and layout classes, which is what lets a campaign's
	// thousands of reboots share a handful of decoded programs.
	c.lastPf, c.lastP = nil, nil
}

// Cycles returns the execution-time register (cycle counter).
func (c *CPU) Cycles() mem.Cycles { return c.cycles }

// AddCycles charges external latency (e.g. a modelled runtime routine).
// Cycles added from inside the call hook are attributed to the DSR
// runtime component automatically; external callers outside a hook must
// not use AddCycles while attribution is enabled, or the conservation
// invariant breaks.
func (c *CPU) AddCycles(n mem.Cycles) { c.cycles += n }

// Counters returns a snapshot of the performance counters.
func (c *CPU) Counters() Counters { return c.ctr }

// ResetCounters zeroes the performance counters without touching the
// architectural state, the cycle counter or the trace — the PMC-reset
// half of the measurement protocol.
func (c *CPU) ResetCounters() { c.ctr = Counters{} }

// SetAttribution installs (or clears, with nil) the cycle-attribution
// profiler. Use platform.EnableAttribution rather than calling this
// directly: attribution is only conservative when the memory fronts are
// probe chains booking into the same profiler.
func (c *CPU) SetAttribution(a *telemetry.Attribution) { c.att = a }

// SetMemoryFronts rebinds the L1 cache fronts (used when telemetry
// probes are interposed after construction).
func (c *CPU) SetMemoryFronts(icache, dcache mem.Backend) {
	c.icache, c.dcache = icache, dcache
	c.bindFronts()
}

// charge adds n cycles and books them to comp (or the active override).
func (c *CPU) charge(comp telemetry.Component, n mem.Cycles) {
	c.cycles += n
	if c.att != nil {
		c.att.Charge(comp, n)
	}
}

// translate charges a TLB translation, booking the entire cost — hit
// latency plus any page-table walk traffic — to comp.
func (c *CPU) translate(t *tlb.TLB, addr mem.Addr, comp telemetry.Component) {
	if t == nil {
		return
	}
	if c.att == nil {
		c.cycles += t.Translate(addr)
		return
	}
	prev, eff := c.att.SetOverride(comp)
	start := c.att.Total()
	lat := t.Translate(addr)
	// The walk traffic booked lat-(hit latency); book the remainder.
	c.att.Charge(eff, lat-(c.att.Total()-start))
	c.att.ClearOverride(prev)
	c.cycles += lat
}

// Trace returns the instrumentation points recorded so far.
func (c *CPU) Trace() []TracePoint { return c.trace }

// Halted reports whether the program executed Halt.
func (c *CPU) Halted() bool { return c.halted }

// PC returns the current program counter.
func (c *CPU) PC() mem.Addr { return c.pc }

// Data returns the functional memory.
func (c *CPU) Data() *Memory { return c.data }

// SetCallHook installs (or clears, with nil) the call interception hook.
func (c *CPU) SetCallHook(f func(target mem.Addr)) { c.callHook = f }

// reg reads an integer register in the current window; %g0 reads zero
// (rfile[0] is never written, so the flat access needs no special case).
func (c *CPU) reg(r isa.Reg) uint32 {
	return c.rfile[c.rbase[r>>3]+int32(r&7)]
}

// setReg writes an integer register; writes to %g0 are discarded.
func (c *CPU) setReg(r isa.Reg, v uint32) {
	if r == isa.G0 {
		return
	}
	c.rfile[c.rbase[r>>3]+int32(r&7)] = v
}

// Reg exposes register reads for tests and the RTOS (return values).
func (c *CPU) Reg(r isa.Reg) uint32 { return c.reg(r) }

// SetRegister exposes register writes for run setup (arguments).
func (c *CPU) SetRegister(r isa.Reg, v uint32) { c.setReg(r, v) }

// FReg exposes FP register reads for tests.
func (c *CPU) FReg(f isa.FReg) float32 { return c.fregs[f] }

func (c *CPU) src2(in *isa.Instr) uint32 {
	if in.UseImm {
		return uint32(in.Imm)
	}
	return c.reg(in.Rs2)
}

// fetchSlow is the exact fetch path: ITLB translation, IL1 read, curFn
// lookup and alignment check. On success it re-arms the fast-path
// window around pc when the fetchZero gate is open. The fast path
// itself lives inline in Step: while pc stays inside the armed window —
// same IL1 line, same page, same function as the last slow fetch — the
// fetch is a guaranteed zero-cycle IL1/ITLB hit and the instruction is
// served by one bounds compare and an index into curFn.Code. Skipping
// the hierarchy there is cycle- and attribution-exact: a hit would
// charge 0 cycles (so no booking), and the skipped LRU/age touches are
// contiguous repeats of the line/page the slow fetch just touched,
// which cannot change any future victim choice.
func (c *CPU) fetchSlow() (*isa.Instr, error) {
	c.translate(c.itlb, c.pc, telemetry.CompITLBWalk)
	if c.icacheC != nil {
		c.cycles += c.icacheC.ReadLine(c.pc)
	} else {
		c.cycles += c.icache.Read(c.pc, isa.InstrBytes)
	}
	if c.curFn == nil || c.pc < c.curFn.Base || c.pc >= c.curFn.End() {
		c.curFn = c.img.FuncAt(c.pc)
		if c.curFn == nil {
			return nil, fmt.Errorf("cpu: fetch from unmapped address %#x", c.pc)
		}
	}
	off := c.pc - c.curFn.Base
	if off%isa.InstrBytes != 0 {
		return nil, fmt.Errorf("cpu: misaligned pc %#x", c.pc)
	}
	if c.fetchZero {
		// Window = IL1 line ∩ page ∩ function. The line is resident
		// after the read above; lines are aligned and no larger than a
		// page, but clamp to the page anyway so the invariant never
		// depends on that configuration detail.
		lo := c.pc &^ (c.fetchLine - 1)
		hi := lo + c.fetchLine
		if pageEnd := (c.pc | (mem.PageSize - 1)) + 1; hi > pageEnd {
			hi = pageEnd
		}
		if lo < c.curFn.Base {
			lo = c.curFn.Base
		}
		if end := c.curFn.End(); hi > end {
			hi = end
		}
		c.fetchLo, c.fetchHi = lo, hi
	}
	return &c.curFn.Code[off/isa.InstrBytes], nil
}

// dataAddr computes and validates an effective address. The alignment
// reduction ea&(align-1) is exact for the power-of-two alignments the
// ISA uses (1 and WordSize); the error construction is outlined so the
// common case stays small.
func (c *CPU) dataAddr(in *isa.Instr, align mem.Addr) (mem.Addr, error) {
	ea := mem.Addr(c.reg(in.Rs1) + uint32(in.Imm))
	if align > 1 && ea&(align-1) != 0 {
		return 0, c.misalignedData(in, ea)
	}
	return ea, nil
}

//go:noinline
func (c *CPU) misalignedData(in *isa.Instr, ea mem.Addr) error {
	return fmt.Errorf("cpu: misaligned %s at %#x (pc %#x)", in.Op, ea, c.pc)
}

// loadWord performs a timed word load. The DL1 read goes through the
// devirtualised front when available so the hit fast path inlines.
func (c *CPU) loadWord(ea mem.Addr) uint32 {
	c.ctr.Loads++
	c.translate(c.dtlb, ea, telemetry.CompDTLBWalk)
	c.charge(telemetry.CompLoadStore, c.cfg.LoadUse)
	if c.dcacheC != nil {
		c.cycles += c.dcacheC.ReadLine(ea)
	} else {
		c.cycles += c.dcache.Read(ea, mem.WordSize)
	}
	return c.data.LoadWord(ea)
}

// storeAccess charges the store-buffer-adjusted write-through cost of a
// store of the given size at ea. With attribution enabled the hierarchy
// traffic is booked under the store-path override and the store-buffer-
// hidden portion is rebated, so the booked cycles match the charged
// cycles exactly.
func (c *CPU) storeAccess(ea mem.Addr, size int) {
	c.charge(telemetry.CompLoadStore, c.cfg.StoreBase)
	var lat mem.Cycles
	if c.att != nil {
		prev, eff := c.att.SetOverride(telemetry.CompStorePath)
		lat = c.dcache.Write(ea, size)
		hidden := lat
		if hidden > c.cfg.StoreHidden {
			hidden = c.cfg.StoreHidden
		}
		c.att.Rebate(eff, hidden)
		c.att.ClearOverride(prev)
	} else if c.dcacheC != nil {
		lat = c.dcacheC.WriteLine(ea, size)
	} else {
		lat = c.dcache.Write(ea, size)
	}
	if lat > c.cfg.StoreHidden {
		c.cycles += lat - c.cfg.StoreHidden
	}
}

// storeWord performs a timed word store.
func (c *CPU) storeWord(ea mem.Addr, v uint32) {
	c.ctr.Stores++
	c.translate(c.dtlb, ea, telemetry.CompDTLBWalk)
	c.storeAccess(ea, mem.WordSize)
	c.data.StoreWord(ea, v)
}

// spillWindow stores 16 registers (locals then ins) of window w at sp.
// With attribution enabled the whole trap — entry/exit overhead plus the
// 16-word store traffic through the data cache — is booked to the
// window-trap component, which is how stack placement randomisation
// shows up in the attribution profile.
func (c *CPU) spillWindow(w int, sp uint32) {
	c.ctr.WindowOverflows++
	prev, _ := c.att.SetOverride(telemetry.CompWindowTrap)
	c.charge(telemetry.CompWindowTrap, c.cfg.TrapOverhead)
	base := mem.Addr(sp)
	lb := localBase(w)
	for i := 0; i < 8; i++ {
		c.storeWord(base+mem.Addr(i)*4, c.rfile[lb+int32(i)])
	}
	ib := outBase((w + 1) % c.cfg.NumWindows)
	for i := 0; i < 8; i++ {
		c.storeWord(base+mem.Addr(32+i*4), c.rfile[ib+int32(i)])
	}
	c.att.ClearOverride(prev)
}

// fillWindow loads 16 registers of window w from sp.
func (c *CPU) fillWindow(w int, sp uint32) {
	c.ctr.WindowUnderflows++
	prev, _ := c.att.SetOverride(telemetry.CompWindowTrap)
	c.charge(telemetry.CompWindowTrap, c.cfg.TrapOverhead)
	base := mem.Addr(sp)
	lb := localBase(w)
	for i := 0; i < 8; i++ {
		c.rfile[lb+int32(i)] = c.loadWord(base + mem.Addr(i)*4)
	}
	ib := outBase((w + 1) % c.cfg.NumWindows)
	for i := 0; i < 8; i++ {
		c.rfile[ib+int32(i)] = c.loadWord(base + mem.Addr(32+i*4))
	}
	c.att.ClearOverride(prev)
}

// save rotates the window down, handling overflow, and sets the new SP.
func (c *CPU) save(frame, offset uint32) error {
	newSP := c.reg(isa.SP) - frame - offset
	if newSP%mem.DoubleWord != 0 {
		return fmt.Errorf("cpu: save would misalign sp to %#x (frame %d offset %d)", newSP, frame, offset)
	}
	n := c.cfg.NumWindows
	if c.liveWin == n-1 {
		// Overflow: spill the oldest resident frame. Its window is
		// cwp+liveWin-1; its SP lives in that window's %o6.
		wOld := (c.cwp + c.liveWin - 1) % n
		c.spillWindow(wOld, c.rfile[outBase(wOld)+6])
		c.liveWin--
	}
	c.cwp = (c.cwp - 1 + n) % n
	c.insIdx = (c.cwp + 1) % n
	c.liveWin++
	c.setWindowBases()
	c.setReg(isa.SP, newSP)
	return nil
}

// restore rotates the window up, handling underflow.
func (c *CPU) restore() {
	n := c.cfg.NumWindows
	if c.liveWin == 1 {
		// Underflow: the caller's frame was spilled. Its SP is the
		// current frame's %fp (= caller's %o6, physically intact).
		wTgt := (c.cwp + 1) % n
		c.fillWindow(wTgt, c.rfile[outBase(wTgt)+6])
		c.liveWin++
	}
	c.cwp = (c.cwp + 1) % n
	c.insIdx = (c.cwp + 1) % n
	c.liveWin--
	c.setWindowBases()
}

// runCallHook fires the DSR call hook. With attribution enabled, probe
// bookings are suspended for the duration (the hook's own cache traffic
// is part of the modelled runtime routine, not application stalls) and
// the hook's entire cycle delta — AddCycles charges plus direct cache
// traffic — is booked to the DSR runtime component.
func (c *CPU) runCallHook(target mem.Addr) {
	if c.callHook == nil {
		return
	}
	// The hook may invalidate IL1 ranges (lazy relocation), so the
	// fetch fast-path window cannot survive it.
	c.fetchLo, c.fetchHi = 0, 0
	if c.att == nil {
		c.callHook(target)
		return
	}
	c.att.Suspend()
	base := c.cycles
	c.callHook(target)
	c.att.Resume()
	c.att.Charge(telemetry.CompDSR, c.cycles-base)
}

// Step executes one instruction. It returns an error on architectural
// traps the simulator treats as fatal (unmapped fetch, misalignment,
// division by zero) — a correct program never triggers them.
func (c *CPU) Step() error {
	if c.halted {
		return errors.New("cpu: step after halt")
	}
	// Fetch: the fast-path window check is inlined here so the common
	// case (straight-line code within one IL1 line) costs no call.
	var in *isa.Instr
	if pc := c.pc; pc >= c.fetchLo && pc < c.fetchHi && pc&(isa.InstrBytes-1) == 0 {
		in = &c.curFn.Code[(pc-c.curFn.Base)/isa.InstrBytes]
	} else {
		var err error
		if in, err = c.fetchSlow(); err != nil {
			return err
		}
	}
	c.ctr.Instrs++
	c.charge(telemetry.CompBaseIssue, 1) // base cycle
	// FPUOps is counted inside the FPU opcode cases below (the set
	// matched by isa.Op.IsFPU) rather than testing every instruction
	// here — the dispatch switch already discriminates the opcode.
	next := c.pc + isa.InstrBytes

	switch in.Op {
	case isa.Nop:
	case isa.Halt:
		c.halted = true

	case isa.Add:
		c.setReg(in.Rd, c.reg(in.Rs1)+c.src2(in))
	case isa.Sub:
		c.setReg(in.Rd, c.reg(in.Rs1)-c.src2(in))
	case isa.And:
		c.setReg(in.Rd, c.reg(in.Rs1)&c.src2(in))
	case isa.Or:
		c.setReg(in.Rd, c.reg(in.Rs1)|c.src2(in))
	case isa.Xor:
		c.setReg(in.Rd, c.reg(in.Rs1)^c.src2(in))
	case isa.Sll:
		c.setReg(in.Rd, c.reg(in.Rs1)<<(c.src2(in)&31))
	case isa.Srl:
		c.setReg(in.Rd, c.reg(in.Rs1)>>(c.src2(in)&31))
	case isa.Sra:
		c.setReg(in.Rd, uint32(int32(c.reg(in.Rs1))>>(c.src2(in)&31)))
	case isa.Mul:
		c.charge(telemetry.CompIntOp, c.cfg.MulLatency)
		c.setReg(in.Rd, uint32(int32(c.reg(in.Rs1))*int32(c.src2(in))))
	case isa.Div:
		d := int32(c.src2(in))
		if d == 0 {
			return fmt.Errorf("cpu: division by zero at pc %#x", c.pc)
		}
		c.charge(telemetry.CompIntOp, c.cfg.DivLatency)
		c.setReg(in.Rd, uint32(int32(c.reg(in.Rs1))/d))

	case isa.Cmp:
		a, b := int32(c.reg(in.Rs1)), int32(c.src2(in))
		c.iccZ = a == b
		c.iccN = a < b

	case isa.Set:
		c.setReg(in.Rd, uint32(in.Imm))
	case isa.Mov:
		c.setReg(in.Rd, c.src2(in))

	case isa.Ld:
		ea, err := c.dataAddr(in, mem.WordSize)
		if err != nil {
			return err
		}
		c.setReg(in.Rd, c.loadWord(ea))
	case isa.Ldub:
		ea, _ := c.dataAddr(in, 1)
		c.ctr.Loads++
		c.translate(c.dtlb, ea, telemetry.CompDTLBWalk)
		c.charge(telemetry.CompLoadStore, c.cfg.LoadUse)
		if c.dcacheC != nil {
			c.cycles += c.dcacheC.ReadLine(ea)
		} else {
			c.cycles += c.dcache.Read(ea, 1)
		}
		c.setReg(in.Rd, c.data.LoadByte(ea))
	case isa.St:
		ea, err := c.dataAddr(in, mem.WordSize)
		if err != nil {
			return err
		}
		c.storeWord(ea, c.reg(in.Rd))
	case isa.Stb:
		ea, _ := c.dataAddr(in, 1)
		c.ctr.Stores++
		c.translate(c.dtlb, ea, telemetry.CompDTLBWalk)
		c.storeAccess(ea, 1)
		c.data.StoreByte(ea, c.reg(in.Rd))

	case isa.FLd:
		ea, err := c.dataAddr(in, mem.WordSize)
		if err != nil {
			return err
		}
		c.fregs[in.FRd] = math.Float32frombits(c.loadWord(ea))
	case isa.FSt:
		ea, err := c.dataAddr(in, mem.WordSize)
		if err != nil {
			return err
		}
		c.storeWord(ea, math.Float32bits(c.fregs[in.FRs2]))

	case isa.Fadd:
		c.ctr.FPUOps++
		c.charge(telemetry.CompFPUBase, c.cfg.FAddLatency)
		c.fregs[in.FRd] = c.fregs[in.FRs1] + c.fregs[in.FRs2]
	case isa.Fsub:
		c.ctr.FPUOps++
		c.charge(telemetry.CompFPUBase, c.cfg.FAddLatency)
		c.fregs[in.FRd] = c.fregs[in.FRs1] - c.fregs[in.FRs2]
	case isa.Fmul:
		c.ctr.FPUOps++
		c.charge(telemetry.CompFPUBase, c.cfg.FMulLatency)
		c.fregs[in.FRd] = c.fregs[in.FRs1] * c.fregs[in.FRs2]
	case isa.Fdiv:
		c.ctr.FPUOps++
		c.charge(telemetry.CompFPUBase, c.cfg.FDivLatency)
		c.charge(telemetry.CompFPUJitter, c.cfg.Jitter(c.fregs[in.FRs2]))
		c.fregs[in.FRd] = c.fregs[in.FRs1] / c.fregs[in.FRs2]
	case isa.Fsqrt:
		c.ctr.FPUOps++
		c.charge(telemetry.CompFPUBase, c.cfg.FSqrtLatency)
		c.charge(telemetry.CompFPUJitter, c.cfg.Jitter(c.fregs[in.FRs2]))
		c.fregs[in.FRd] = float32(math.Sqrt(float64(c.fregs[in.FRs2])))
	case isa.Fcmp:
		c.ctr.FPUOps++
		c.charge(telemetry.CompFPUBase, c.cfg.FAddLatency)
		a, b := c.fregs[in.FRs1], c.fregs[in.FRs2]
		switch {
		case a != a || b != b:
			// SPARC sets the "unordered" condition for NaN operands; the
			// ordered branches (fbl/fbg/fbe) are not taken on it.
			c.fcc = 2
		case a == b:
			c.fcc = 0
		case a < b:
			c.fcc = -1
		default:
			c.fcc = 1
		}
	case isa.Fitos:
		c.ctr.FPUOps++
		c.charge(telemetry.CompFPUBase, c.cfg.FAddLatency)
		c.fregs[in.FRd] = float32(int32(math.Float32bits(c.fregs[in.FRs2])))
	case isa.Fstoi:
		c.ctr.FPUOps++
		c.charge(telemetry.CompFPUBase, c.cfg.FAddLatency)
		c.fregs[in.FRd] = math.Float32frombits(uint32(int32(c.fregs[in.FRs2])))

	case isa.Ba, isa.Be, isa.Bne, isa.Bl, isa.Ble, isa.Bg, isa.Bge,
		isa.Fbe, isa.Fbne, isa.Fbl, isa.Fbg:
		c.ctr.Branches++
		if c.branchTaken(in.Op) {
			c.ctr.TakenBranches++
			c.charge(telemetry.CompBranch, c.cfg.BranchTaken)
			next = c.pc + mem.Addr(int64(in.Disp)*isa.InstrBytes)
		}

	case isa.Call:
		c.ctr.Calls++
		c.setReg(isa.O7, uint32(c.pc))
		next = mem.Addr(uint32(in.Imm))
		c.runCallHook(next)
	case isa.CallR:
		c.ctr.Calls++
		tgt := c.reg(in.Rs1)
		c.setReg(isa.O7, uint32(c.pc))
		next = mem.Addr(tgt)
		c.runCallHook(next)
	case isa.Ret:
		ret := c.reg(isa.I7)
		c.restore()
		next = mem.Addr(ret) + isa.InstrBytes
	case isa.RetL:
		next = mem.Addr(c.reg(isa.O7)) + isa.InstrBytes

	case isa.Save:
		if err := c.save(uint32(in.Imm), 0); err != nil {
			return err
		}
	case isa.SaveX:
		if err := c.save(uint32(in.Imm), c.reg(in.Rs2)); err != nil {
			return err
		}
	case isa.Restore:
		c.restore()

	case isa.IPoint:
		c.charge(telemetry.CompIPoint, c.cfg.IPointCost)
		c.trace = append(c.trace, TracePoint{ID: in.Imm, Cycles: c.cycles})

	default:
		return fmt.Errorf("cpu: unimplemented op %s at pc %#x", in.Op, c.pc)
	}

	c.pc = next
	return nil
}

func (c *CPU) branchTaken(op isa.Op) bool {
	switch op {
	case isa.Ba:
		return true
	case isa.Be:
		return c.iccZ
	case isa.Bne:
		return !c.iccZ
	case isa.Bl:
		return c.iccN
	case isa.Ble:
		return c.iccN || c.iccZ
	case isa.Bg:
		return !c.iccN && !c.iccZ
	case isa.Bge:
		return !c.iccN
	case isa.Fbe:
		return c.fcc == 0
	case isa.Fbne:
		// SPARC FBNE is "unordered or not equal": taken on NaN.
		return c.fcc != 0
	case isa.Fbl:
		return c.fcc == -1
	case isa.Fbg:
		return c.fcc == 1
	default:
		panic("cpu: not a branch")
	}
}

// Run executes until Halt, an error, or the instruction watchdog.
// It returns the cycle counter value at halt.
func (c *CPU) Run() (mem.Cycles, error) {
	if c.engineOK() {
		return c.cycles, c.runFast(noBudget)
	}
	for !c.halted {
		if c.cfg.MaxInstrs > 0 && c.ctr.Instrs >= c.cfg.MaxInstrs {
			return c.cycles, ErrMaxInstrs
		}
		if err := c.Step(); err != nil {
			return c.cycles, err
		}
	}
	return c.cycles, nil
}

// RunBudget executes until Halt or until the cycle counter reaches
// budget — the RTOS partition-window enforcement. Check Halted() to see
// whether the program completed within its budget.
func (c *CPU) RunBudget(budget mem.Cycles) (mem.Cycles, error) {
	if c.engineOK() {
		return c.cycles, c.runFast(budget)
	}
	for !c.halted && c.cycles < budget {
		if c.cfg.MaxInstrs > 0 && c.ctr.Instrs >= c.cfg.MaxInstrs {
			return c.cycles, ErrMaxInstrs
		}
		if err := c.Step(); err != nil {
			return c.cycles, err
		}
	}
	return c.cycles, nil
}
