package cpu

import (
	"testing"

	"dsr/internal/mem"
)

// Functional-memory microbenchmarks: every simulated load and store
// resolves its value through Memory, so the page lookup is on the
// per-instruction hot path. The load path must be allocation-free
// (asserted by TestMemoryLoadAllocFree) and make bench-check gates
// ns/op.

var memSink uint32

// BenchmarkMemoryLoadSamePage is the common case: consecutive loads
// within one 4KB page (the last-page cache hit).
func BenchmarkMemoryLoadSamePage(b *testing.B) {
	m := NewMemory()
	m.StoreWord(0x5000_0100, 0xDEADBEEF)
	b.ReportAllocs()
	b.ResetTimer()
	var v uint32
	for i := 0; i < b.N; i++ {
		v += m.LoadWord(0x5000_0100)
	}
	memSink = v
}

// BenchmarkMemoryLoadSweep strides over 64KB of touched memory: page
// changes every 1024 loads.
func BenchmarkMemoryLoadSweep(b *testing.B) {
	m := NewMemory()
	const region = 64 * 1024
	for a := mem.Addr(0x5000_0000); a < 0x5000_0000+region; a += mem.PageSize {
		m.StoreWord(a, uint32(a))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var v uint32
	a := mem.Addr(0x5000_0000)
	for i := 0; i < b.N; i++ {
		v += m.LoadWord(a)
		a += 4
		if a >= 0x5000_0000+region {
			a = 0x5000_0000
		}
	}
	memSink = v
}

// BenchmarkMemoryStoreSamePage is the store counterpart of the
// last-page fast path.
func BenchmarkMemoryStoreSamePage(b *testing.B) {
	m := NewMemory()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.StoreWord(0x5000_0200, uint32(i))
	}
}

// BenchmarkMemoryPingPong alternates two pages: the worst case for a
// single-entry last-page cache, bounded by the page-table walk.
func BenchmarkMemoryPingPong(b *testing.B) {
	m := NewMemory()
	m.StoreWord(0x5000_0000, 1)
	m.StoreWord(0x5001_0000, 2)
	b.ReportAllocs()
	b.ResetTimer()
	var v uint32
	for i := 0; i < b.N; i++ {
		v += m.LoadWord(0x5000_0000)
		v += m.LoadWord(0x5001_0000)
	}
	memSink = v
}

// TestMemoryLoadAllocFree is the allocation-free guarantee for the
// load path (both the last-page hit and the table walk).
func TestMemoryLoadAllocFree(t *testing.T) {
	m := NewMemory()
	m.StoreWord(0x5000_0000, 1)
	m.StoreWord(0x5001_0000, 2)
	if n := testing.AllocsPerRun(1000, func() { memSink = m.LoadWord(0x5000_0000) }); n != 0 {
		t.Errorf("same-page load allocates %v times", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		memSink = m.LoadWord(0x5000_0000)
		memSink = m.LoadWord(0x5001_0000)
	}); n != 0 {
		t.Errorf("cross-page load allocates %v times", n)
	}
	// Stores to resident pages must not allocate either.
	if n := testing.AllocsPerRun(1000, func() { m.StoreWord(0x5000_0000, 3) }); n != 0 {
		t.Errorf("resident-page store allocates %v times", n)
	}
}
