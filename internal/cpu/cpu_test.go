package cpu

import (
	"math"
	"testing"

	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/mem"
	"dsr/internal/prog"
)

// nullMem is a zero-latency timing backend for isolating CPU semantics.
type nullMem struct{}

func (nullMem) Read(mem.Addr, int) mem.Cycles  { return 0 }
func (nullMem) Write(mem.Addr, int) mem.Cycles { return 0 }

const stackTop = 0x6000_0000

// runProgram loads p and runs it to completion on a latency-free
// hierarchy, returning the CPU for inspection.
func runProgram(t *testing.T, p *prog.Program) *CPU {
	t.Helper()
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	data := NewMemory()
	for _, iw := range img.Inits {
		data.StoreWord(iw.Addr, iw.Val)
	}
	c := New(NewDefaultConfig(), img, nullMem{}, nullMem{}, nil, nil, data)
	c.Reset(stackTop)
	if _, err := c.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return c
}

func singleFunc(t *testing.T, b *prog.Builder) *prog.Program {
	t.Helper()
	p := &prog.Program{Name: "t", Entry: "main"}
	if err := p.AddFunction(b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestArithmetic(t *testing.T) {
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.L0, 6).
		MovI(isa.L1, 7).
		Mul(isa.L2, isa.L0, isa.L1).       // 42
		AddI(isa.L2, isa.L2, 100).         // 142
		SubI(isa.L2, isa.L2, 2).           // 140
		OpI(isa.Div, isa.L2, isa.L2, 20).  // 7
		SllI(isa.L3, isa.L2, 4).           // 112
		SrlI(isa.L4, isa.L3, 2).           // 28
		OpI(isa.Xor, isa.L5, isa.L4, 0xF). // 19
		OpI(isa.Or, isa.L5, isa.L5, 0x20). // 51
		AndI(isa.L5, isa.L5, 0x3F).        // 51
		Halt()
	c := runProgram(t, singleFunc(t, b))
	want := map[isa.Reg]uint32{isa.L2: 7, isa.L3: 112, isa.L4: 28, isa.L5: 51}
	for r, w := range want {
		if got := c.Reg(r); got != w {
			t.Errorf("%s=%d, want %d", r, got, w)
		}
	}
}

func TestSignedArithmetic(t *testing.T) {
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.L0, -20).
		OpI(isa.Sra, isa.L1, isa.L0, 2).  // -5
		OpI(isa.Div, isa.L2, isa.L0, -4). // 5
		MulI(isa.L3, isa.L0, -3).         // 60
		Halt()
	c := runProgram(t, singleFunc(t, b))
	if got := int32(c.Reg(isa.L1)); got != -5 {
		t.Errorf("sra=%d, want -5", got)
	}
	if got := int32(c.Reg(isa.L2)); got != 5 {
		t.Errorf("div=%d, want 5", got)
	}
	if got := int32(c.Reg(isa.L3)); got != 60 {
		t.Errorf("mul=%d, want 60", got)
	}
}

func TestG0IsHardwiredZero(t *testing.T) {
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.G0, 99).
		Add(isa.L0, isa.G0, isa.G0).
		Halt()
	c := runProgram(t, singleFunc(t, b))
	if c.Reg(isa.G0) != 0 || c.Reg(isa.L0) != 0 {
		t.Error("register g0 is writable")
	}
}

func TestBranchLoop(t *testing.T) {
	// sum 1..10 = 55
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.L0, 0). // sum
		MovI(isa.L1, 1). // i
		Label("loop").
		Add(isa.L0, isa.L0, isa.L1).
		AddI(isa.L1, isa.L1, 1).
		CmpI(isa.L1, 10).
		Ble("loop").
		Halt()
	c := runProgram(t, singleFunc(t, b))
	if got := c.Reg(isa.L0); got != 55 {
		t.Errorf("sum=%d, want 55", got)
	}
	if c.Counters().TakenBranches != 9 {
		t.Errorf("taken branches=%d, want 9", c.Counters().TakenBranches)
	}
}

func TestAllBranchConditions(t *testing.T) {
	// For (a,b) pairs, check each condition branch's takenness by setting
	// a marker register.
	type tc struct {
		op       isa.Op
		a, b     int32
		expected bool
	}
	cases := []tc{
		{isa.Be, 5, 5, true}, {isa.Be, 5, 6, false},
		{isa.Bne, 5, 6, true}, {isa.Bne, 5, 5, false},
		{isa.Bl, -1, 0, true}, {isa.Bl, 0, 0, false}, {isa.Bl, 1, 0, false},
		{isa.Ble, 0, 0, true}, {isa.Ble, -2, 0, true}, {isa.Ble, 1, 0, false},
		{isa.Bg, 1, 0, true}, {isa.Bg, 0, 0, false}, {isa.Bg, -1, 0, false},
		{isa.Bge, 0, 0, true}, {isa.Bge, 3, 0, true}, {isa.Bge, -3, 0, false},
		{isa.Ba, 0, 0, true},
	}
	for _, tcase := range cases {
		b := prog.NewFunc("main", prog.MinFrame).
			Prologue().
			MovI(isa.L0, tcase.a).
			MovI(isa.L1, tcase.b).
			MovI(isa.L2, 0).
			Cmp(isa.L0, isa.L1).
			Emit(isa.Instr{Op: tcase.op, Disp: 2}). // skip the marker
			MovI(isa.L2, 1).
			Halt()
		c := runProgram(t, singleFunc(t, b))
		skipped := c.Reg(isa.L2) == 0
		if skipped != tcase.expected {
			t.Errorf("%s with a=%d b=%d: taken=%v, want %v",
				tcase.op, tcase.a, tcase.b, skipped, tcase.expected)
		}
	}
}

func TestMemoryWordOps(t *testing.T) {
	p := &prog.Program{Name: "t", Entry: "main"}
	if err := p.AddData(&prog.DataObject{Name: "buf", Size: 64, Init: []uint32{11, 22}}); err != nil {
		t.Fatal(err)
	}
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		Set(isa.L0, "buf").
		Ld(isa.L1, isa.L0, 0). // 11
		Ld(isa.L2, isa.L0, 4). // 22
		Add(isa.L3, isa.L1, isa.L2).
		St(isa.L3, isa.L0, 8). // buf[2] = 33
		Ld(isa.L4, isa.L0, 8).
		Halt()
	if err := p.AddFunction(b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	c := runProgram(t, p)
	if got := c.Reg(isa.L4); got != 33 {
		t.Errorf("readback=%d, want 33", got)
	}
	if c.Counters().Loads != 3 || c.Counters().Stores != 1 {
		t.Errorf("loads/stores=%d/%d, want 3/1", c.Counters().Loads, c.Counters().Stores)
	}
}

func TestMemoryByteOps(t *testing.T) {
	p := &prog.Program{Name: "t", Entry: "main"}
	if err := p.AddData(&prog.DataObject{Name: "pix", Size: 8}); err != nil {
		t.Fatal(err)
	}
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		Set(isa.L0, "pix").
		MovI(isa.L1, 0xAB).
		Stb(isa.L1, isa.L0, 0).
		MovI(isa.L2, 0xCD).
		Stb(isa.L2, isa.L0, 3).
		Ldub(isa.L3, isa.L0, 0).
		Ldub(isa.L4, isa.L0, 3).
		Ldub(isa.L5, isa.L0, 1). // untouched → 0
		Ld(isa.L6, isa.L0, 0).   // big-endian word: AB 00 00 CD
		Halt()
	if err := p.AddFunction(b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	c := runProgram(t, p)
	if c.Reg(isa.L3) != 0xAB || c.Reg(isa.L4) != 0xCD || c.Reg(isa.L5) != 0 {
		t.Errorf("byte readbacks=%#x %#x %#x", c.Reg(isa.L3), c.Reg(isa.L4), c.Reg(isa.L5))
	}
	if got := c.Reg(isa.L6); got != 0xAB0000CD {
		t.Errorf("big-endian word=%#x, want 0xAB0000CD", got)
	}
}

func TestCallAndReturn(t *testing.T) {
	// callee(a, b) = a*2 + b, using the SPARC convention: caller's %o0/%o1
	// become callee's %i0/%i1; result back in callee's %i0 = caller's %o0.
	callee := prog.NewFunc("callee", prog.MinFrame).
		Prologue().
		Add(isa.I0, isa.I0, isa.I0).
		Add(isa.I0, isa.I0, isa.I1).
		Epilogue().
		MustBuild()
	main := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.O0, 20).
		MovI(isa.O1, 2).
		Call("callee").
		Mov(isa.L0, isa.O0). // 42
		Halt().
		MustBuild()
	p := &prog.Program{Name: "t", Entry: "main"}
	for _, f := range []*prog.Function{main, callee} {
		if err := p.AddFunction(f); err != nil {
			t.Fatal(err)
		}
	}
	c := runProgram(t, p)
	if got := c.Reg(isa.L0); got != 42 {
		t.Errorf("call result=%d, want 42", got)
	}
	if c.Counters().Calls != 1 {
		t.Errorf("calls=%d, want 1", c.Counters().Calls)
	}
}

func TestLeafCall(t *testing.T) {
	leaf := prog.NewLeaf("triple").
		MulI(isa.O0, isa.O0, 3).
		RetLeaf().
		MustBuild()
	main := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.O0, 14).
		Call("triple").
		Mov(isa.L0, isa.O0).
		Halt().
		MustBuild()
	p := &prog.Program{Name: "t", Entry: "main"}
	for _, f := range []*prog.Function{main, leaf} {
		if err := p.AddFunction(f); err != nil {
			t.Fatal(err)
		}
	}
	c := runProgram(t, p)
	if got := c.Reg(isa.L0); got != 42 {
		t.Errorf("leaf result=%d, want 42", got)
	}
}

// Recursive factorial deep enough to overflow the 8 register windows:
// exercises spill and fill and proves values survive the round trip.
func TestWindowOverflowUnderflow(t *testing.T) {
	// fact(n): if n <= 1 return 1 else return n * fact(n-1)
	fact := prog.NewFunc("fact", prog.MinFrame).
		Prologue().
		CmpI(isa.I0, 1).
		Bg("recurse").
		MovI(isa.I0, 1).
		Epilogue().
		Label("recurse").
		SubI(isa.O0, isa.I0, 1).
		Call("fact").
		Mul(isa.I0, isa.I0, isa.O0).
		Epilogue().
		MustBuild()
	main := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.O0, 12). // depth 12 > 7 usable windows
		Call("fact").
		Mov(isa.L0, isa.O0).
		Halt().
		MustBuild()
	p := &prog.Program{Name: "t", Entry: "main"}
	for _, f := range []*prog.Function{main, fact} {
		if err := p.AddFunction(f); err != nil {
			t.Fatal(err)
		}
	}
	c := runProgram(t, p)
	if got := c.Reg(isa.L0); got != 479001600 { // 12!
		t.Errorf("fact(12)=%d, want 479001600", got)
	}
	ctr := c.Counters()
	if ctr.WindowOverflows == 0 || ctr.WindowUnderflows == 0 {
		t.Errorf("overflows=%d underflows=%d, want both > 0",
			ctr.WindowOverflows, ctr.WindowUnderflows)
	}
	// One more spill than fills is expected: the bottom frame is spilled
	// on the way down but main halts without returning into it.
	if ctr.WindowOverflows != ctr.WindowUnderflows+1 {
		t.Errorf("overflow/underflow mismatch: %d vs %d (want spills = fills+1)",
			ctr.WindowOverflows, ctr.WindowUnderflows)
	}
}

func TestFloatingPoint(t *testing.T) {
	p := &prog.Program{Name: "t", Entry: "main"}
	fbits := func(f float32) uint32 { return math.Float32bits(f) }
	if err := p.AddData(&prog.DataObject{Name: "vals", Size: 16,
		Init: []uint32{fbits(3.0), fbits(4.0)}}); err != nil {
		t.Fatal(err)
	}
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		Set(isa.L0, "vals").
		FLd(0, isa.L0, 0). // f0 = 3
		FLd(1, isa.L0, 4). // f1 = 4
		Fmul(2, 0, 0).     // 9
		Fmul(3, 1, 1).     // 16
		Fadd(4, 2, 3).     // 25
		Fsqrt(5, 4).       // 5
		Fdiv(6, 4, 5).     // 5
		Fsub(7, 6, 5).     // 0
		FSt(5, isa.L0, 8).
		Ld(isa.L1, isa.L0, 8).
		Halt()
	if err := p.AddFunction(b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	c := runProgram(t, p)
	if got := c.FReg(5); got != 5.0 {
		t.Errorf("hypot=%f, want 5", got)
	}
	if got := c.FReg(7); got != 0.0 {
		t.Errorf("f7=%f, want 0", got)
	}
	if got := c.Reg(isa.L1); got != fbits(5.0) {
		t.Errorf("stored float bits=%#x, want %#x", got, fbits(5.0))
	}
	// fmul×2, fadd, fsqrt, fdiv, fsub = 6 FPU ops (loads/stores excluded).
	if got := c.Counters().FPUOps; got != 6 {
		t.Errorf("FPU ops=%d, want 6", got)
	}
}

func TestFPBranchesAndConversion(t *testing.T) {
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.L0, 7).
		St(isa.L0, isa.SP, prog.LocalBase).
		FLd(0, isa.SP, prog.LocalBase). // raw int bits 7
		Fitos(1, 0).                    // 7.0
		Fstoi(2, 1).                    // back to int bits
		FSt(2, isa.SP, prog.LocalBase+4).
		Ld(isa.L1, isa.SP, prog.LocalBase+4). // 7
		Fcmp(1, 1).
		MovI(isa.L2, 0).
		Fbne("skip").
		MovI(isa.L2, 1). // executed: 7.0 == 7.0
		Label("skip").
		Halt()
	c := runProgram(t, singleFunc(t, b))
	if got := c.Reg(isa.L1); got != 7 {
		t.Errorf("fstoi round trip=%d, want 7", got)
	}
	if got := c.Reg(isa.L2); got != 1 {
		t.Error("fbne taken on equal operands")
	}
}

func TestStackLocalsAndFramePointer(t *testing.T) {
	// Write a local in the callee frame, confirm the caller's SP is
	// restored after return.
	callee := prog.NewFunc("callee", prog.MinFrame+16).
		Prologue().
		MovI(isa.L0, 77).
		St(isa.L0, isa.SP, prog.LocalBase).
		Ld(isa.I0, isa.SP, prog.LocalBase).
		Epilogue().
		MustBuild()
	main := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		Mov(isa.L1, isa.SP).
		Call("callee").
		Mov(isa.L0, isa.O0).
		Sub(isa.L2, isa.L1, isa.SP). // 0 if SP restored
		Halt().
		MustBuild()
	p := &prog.Program{Name: "t", Entry: "main"}
	for _, f := range []*prog.Function{main, callee} {
		if err := p.AddFunction(f); err != nil {
			t.Fatal(err)
		}
	}
	c := runProgram(t, p)
	if got := c.Reg(isa.L0); got != 77 {
		t.Errorf("local readback=%d, want 77", got)
	}
	if got := c.Reg(isa.L2); got != 0 {
		t.Errorf("sp not restored, delta=%d", int32(got))
	}
}

func TestSaveXAppliesOffset(t *testing.T) {
	// SaveX with a 16-byte offset in %g7 must lower SP by frame+16.
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue() // establish a frame so we can compare
	b.Mov(isa.L1, isa.SP).
		MovI(isa.G7, 16).
		Emit(isa.Instr{Op: isa.SaveX, Imm: prog.MinFrame, Rs2: isa.G7}).
		Mov(isa.I0, isa.SP). // inner %i0 is the outer %o0
		Emit(isa.Instr{Op: isa.Restore}).
		Sub(isa.L2, isa.L1, isa.O0). // L1 - innerSP = frame+16
		Halt()
	c := runProgram(t, singleFunc(t, b))
	if got := c.Reg(isa.L2); got != prog.MinFrame+16 {
		t.Errorf("savex delta=%d, want %d", got, prog.MinFrame+16)
	}
}

func TestSaveMisalignedOffsetFails(t *testing.T) {
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.G7, 4). // not a multiple of 8
		Emit(isa.Instr{Op: isa.SaveX, Imm: prog.MinFrame, Rs2: isa.G7}).
		Halt()
	p := singleFunc(t, b)
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := New(NewDefaultConfig(), img, nullMem{}, nullMem{}, nil, nil, NewMemory())
	c.Reset(stackTop)
	if _, err := c.Run(); err == nil {
		t.Error("misaligned stack offset accepted")
	}
}

func TestIPointTrace(t *testing.T) {
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		IPoint(1).
		MovI(isa.L0, 5).
		IPoint(2).
		Halt()
	c := runProgram(t, singleFunc(t, b))
	tr := c.Trace()
	if len(tr) != 2 || tr[0].ID != 1 || tr[1].ID != 2 {
		t.Fatalf("trace=%v", tr)
	}
	if tr[1].Cycles <= tr[0].Cycles {
		t.Error("trace timestamps not increasing")
	}
}

func TestDivisionByZeroTraps(t *testing.T) {
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.L0, 1).
		Op3(isa.Div, isa.L1, isa.L0, isa.G0).
		Halt()
	p := singleFunc(t, b)
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := New(NewDefaultConfig(), img, nullMem{}, nullMem{}, nil, nil, NewMemory())
	c.Reset(stackTop)
	if _, err := c.Run(); err == nil {
		t.Error("division by zero did not trap")
	}
}

func TestMisalignedLoadTraps(t *testing.T) {
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.L0, 2).
		Ld(isa.L1, isa.L0, 0).
		Halt()
	p := singleFunc(t, b)
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := New(NewDefaultConfig(), img, nullMem{}, nullMem{}, nil, nil, NewMemory())
	c.Reset(stackTop)
	if _, err := c.Run(); err == nil {
		t.Error("misaligned load did not trap")
	}
}

func TestWatchdog(t *testing.T) {
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		Label("spin").
		Ba("spin").
		Halt()
	p := singleFunc(t, b)
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := NewDefaultConfig()
	cfg.MaxInstrs = 1000
	c := New(cfg, img, nullMem{}, nullMem{}, nil, nil, NewMemory())
	c.Reset(stackTop)
	if _, err := c.Run(); err != ErrMaxInstrs {
		t.Errorf("err=%v, want ErrMaxInstrs", err)
	}
}

func TestCycleAccounting(t *testing.T) {
	// With a zero-latency hierarchy the cycle count is fully determined:
	// save(1) + mov(1) + mul(1+4) + taken ba(1+1) + halt(1).
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.L0, 3).
		MulI(isa.L1, isa.L0, 3).
		Ba("end").
		Nop().
		Label("end").
		Halt()
	c := runProgram(t, singleFunc(t, b))
	want := mem.Cycles(1 + 1 + 5 + 2 + 1)
	if c.Cycles() != want {
		t.Errorf("cycles=%d, want %d", c.Cycles(), want)
	}
}

func TestFPJitterIsValueDependent(t *testing.T) {
	// Two fdivs with different divisor bit patterns should usually cost
	// differently; same divisor must cost the same.
	run := func(d float32) mem.Cycles {
		p := &prog.Program{Name: "t", Entry: "main"}
		if err := p.AddData(&prog.DataObject{Name: "v", Size: 8,
			Init: []uint32{math.Float32bits(10), math.Float32bits(d)}}); err != nil {
			t.Fatal(err)
		}
		b := prog.NewFunc("main", prog.MinFrame).
			Prologue().
			Set(isa.L0, "v").
			FLd(0, isa.L0, 0).
			FLd(1, isa.L0, 4).
			Fdiv(2, 0, 1).
			Halt()
		if err := p.AddFunction(b.MustBuild()); err != nil {
			t.Fatal(err)
		}
		return runProgram(t, p).Cycles()
	}
	a1, a2 := run(3.1415926), run(3.1415926)
	if a1 != a2 {
		t.Error("same operands produced different latency")
	}
	// 2.0 has an all-zero mantissa → jitter 0; pi has many set bits.
	b1 := run(2.0)
	if a1 == b1 {
		t.Log("note: jitter equal for these operands (allowed but unexpected)")
	}
	if diff := int64(a1) - int64(b1); diff < 0 || diff > 3 {
		t.Errorf("jitter out of range: %d", diff)
	}
}

func TestResetClearsState(t *testing.T) {
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.L0, 9).
		IPoint(1).
		Halt()
	p := singleFunc(t, b)
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := New(NewDefaultConfig(), img, nullMem{}, nullMem{}, nil, nil, NewMemory())
	c.Reset(stackTop)
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	cyc1 := c.Cycles()
	c.Reset(stackTop)
	if c.Cycles() != 0 || c.Halted() || len(c.Trace()) != 0 || c.Reg(isa.L0) != 0 {
		t.Error("Reset left state behind")
	}
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Cycles() != cyc1 {
		t.Errorf("second run cycles=%d, want %d (deterministic)", c.Cycles(), cyc1)
	}
}

func TestStepAfterHaltErrors(t *testing.T) {
	b := prog.NewFunc("main", prog.MinFrame).Prologue().Halt()
	p := singleFunc(t, b)
	img, _ := loader.Load(p, loader.DefaultSequentialConfig())
	c := New(NewDefaultConfig(), img, nullMem{}, nullMem{}, nil, nil, NewMemory())
	c.Reset(stackTop)
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if err := c.Step(); err == nil {
		t.Error("step after halt succeeded")
	}
}

func TestMemoryPrimitives(t *testing.T) {
	m := NewMemory()
	m.StoreWord(0x1000, 0xDEADBEEF)
	if m.LoadWord(0x1000) != 0xDEADBEEF {
		t.Error("word round trip")
	}
	if m.LoadWord(0x2000) != 0 {
		t.Error("unbacked memory should read zero")
	}
	// Big-endian bytes of 0xDEADBEEF: DE AD BE EF.
	for i, want := range []uint32{0xDE, 0xAD, 0xBE, 0xEF} {
		if got := m.LoadByte(0x1000 + mem.Addr(i)); got != want {
			t.Errorf("byte %d=%#x, want %#x", i, got, want)
		}
	}
	m.StoreByte(0x1001, 0x11)
	if m.LoadWord(0x1000) != 0xDE11BEEF {
		t.Errorf("byte store merged wrong: %#x", m.LoadWord(0x1000))
	}
	if m.PagesAllocated() != 1 {
		t.Errorf("pages=%d, want 1", m.PagesAllocated())
	}
	m.Clear()
	if m.LoadWord(0x1000) != 0 || m.PagesAllocated() != 0 {
		t.Error("Clear failed")
	}
}

func TestMisalignedMemoryPanics(t *testing.T) {
	m := NewMemory()
	defer func() {
		if recover() == nil {
			t.Fatal("misaligned LoadWord did not panic")
		}
	}()
	m.LoadWord(0x1002)
}

func TestFcmpUnorderedNaNSemantics(t *testing.T) {
	// With a NaN operand, SPARC sets the unordered condition: the ordered
	// branches (fbe/fbl/fbg) are not taken, fbne is.
	p := &prog.Program{Name: "t", Entry: "main"}
	if err := p.AddData(&prog.DataObject{Name: "v", Size: 8,
		Init: []uint32{0x7FC00000, math.Float32bits(1.0)}}); err != nil { // quiet NaN, 1.0
		t.Fatal(err)
	}
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		Set(isa.L0, "v").
		FLd(0, isa.L0, 0). // NaN
		FLd(1, isa.L0, 4). // 1.0
		MovI(isa.L1, 0).
		Fcmp(0, 1).
		Fbg("skipg").
		AddI(isa.L1, isa.L1, 1). // executed: fbg NOT taken on unordered
		Label("skipg").
		Fcmp(0, 1).
		Fbl("skipl").
		AddI(isa.L1, isa.L1, 2). // executed: fbl NOT taken
		Label("skipl").
		Fcmp(0, 1).
		Fbe("skipe").
		AddI(isa.L1, isa.L1, 4). // executed: fbe NOT taken
		Label("skipe").
		Fcmp(0, 1).
		Fbne("skipn").
		AddI(isa.L1, isa.L1, 8). // skipped: fbne IS taken on unordered
		Label("skipn").
		Halt()
	if err := p.AddFunction(b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	c := runProgram(t, p)
	if got := c.Reg(isa.L1); got != 7 {
		t.Errorf("NaN branch mask=%d, want 7 (fbg/fbl/fbe fall through, fbne taken)", got)
	}
}
