package cpu

import (
	"fmt"
	"math"

	"dsr/internal/isa"
	"dsr/internal/mem"
	"dsr/internal/telemetry"
)

// This file is the dispatch half of the threaded-code engine: Run and
// RunBudget hand the whole execution to runFast when the configuration
// provably allows it, and runFast executes predecoded µops (decode.go)
// with the giant-switch interpreter (Step) kept as the authoritative
// slow path — every observable of a run (cycle counter, PMCs, registers,
// memory, cache/TLB state, trace points, error values and the PC at
// every stop) is byte-identical between the two, which the equivalence
// suite in engine_test.go pins.
//
// Where the speed comes from: within one fetch-window chunk (IL1 line ∩
// function), straight-line runs of single-cycle ALU µops execute
// back-to-back with one batched cycle/instruction-counter charge and no
// per-instruction fetch, window, budget or watchdog checks — the
// decode-time run[] lengths plus a headroom clamp make that exact rather
// than approximate. Operands are pre-resolved to absolute register-file
// indices per window pointer (decode.go: resolve), so the hot dispatch
// does no bank arithmetic. Window re-arms for sequential line crossings
// and intra-function branches pay exactly the interpreter's slow-fetch
// accesses (ITLB translate + IL1 line read) without leaving the
// dispatch loop. The cycle and retired-instruction counters are carried
// in locals (cyc, ins) and written back to the CPU only around calls
// into helpers that read or charge them, and at every exit. Everything
// with side effects beyond the register file (memory traffic, FPU
// latency charges, cross-function control, window rotations, traps)
// takes the general single-µop path, which mirrors Step case by case.

// noBudget makes RunBudget's cycle gate unreachable for plain Run.
const noBudget = ^mem.Cycles(0)

// rfileSlots is the padded register-file size the engine addresses: one
// more than the largest index a resolved uint8 operand can carry, so
// rf[u.d] needs no bounds check against a *[rfileSlots]uint32.
const rfileSlots = 256

// engineOK reports whether the threaded-code engine may execute: the
// zero-cost fetch window must be armable (fetchZero — IL1 and ITLB hits
// cost zero), attribution must be off (per-component bookings need the
// interpreter's charge points), the IL1 line size must divide the page
// size (so fetch-window boundaries depend only on the placement's line
// offset — the layout class), and every register-file index including
// the %g0 scratch slot must fit the µop encoding. Anything unprovable
// falls back to the interpreter.
func (c *CPU) engineOK() bool {
	return c.fetchZero && c.att == nil && !c.forceInterp &&
		c.fetchLine > 0 && mem.PageSize%c.fetchLine == 0 &&
		c.scratchIdx() < rfileSlots && len(c.rfile) >= rfileSlots
}

// SetForceInterpreter pins execution to the giant-switch interpreter
// even where the engine could run — the forced-slow half of the
// equivalence suites and the escape hatch for debugging.
func (c *CPU) SetForceInterpreter(v bool) { c.forceInterp = v }

// runFast executes until Halt, an error, the instruction watchdog or
// the cycle budget, byte-identical to the Step loop. The outer loop
// performs the per-instruction gates and the exact fetch (fast window
// hit or fetchSlow with its cache/TLB side effects); the inner loop
// stays within one decoded function and re-enters the outer loop only
// when control leaves the function or the window cannot be re-armed
// inline.
func (c *CPU) runFast(budget mem.Cycles) error {
	rf := (*[rfileSlots]uint32)(c.rfile[:rfileSlots])
	rb := &c.rbase
	line := c.fetchLine
	itlb, icC := c.itlb, c.icacheC
	// maxI as an effective bound: MaxInstrs==0 means no watchdog, which
	// the sentinel makes a plain always-false compare instead of a
	// two-legged test on every gate.
	maxI := ^uint64(0)
	if c.cfg.MaxInstrs > 0 {
		maxI = c.cfg.MaxInstrs
	}

outer:
	for {
		if c.halted {
			return nil
		}
		// Per-instruction gates, before any fetch side effects — budget
		// before watchdog, the same order as RunBudget's loop condition
		// (plain Run passes noBudget, so the budget gate is inert there).
		if c.cycles >= budget {
			return nil
		}
		if c.ctr.Instrs >= maxI {
			return ErrMaxInstrs
		}
		if pc := c.pc; !(pc >= c.fetchLo && pc < c.fetchHi && pc&(isa.InstrBytes-1) == 0) {
			if _, err := c.fetchSlow(); err != nil {
				return err
			}
		}
		pf := c.curFn
		p := c.decoded(pf)
		if p == nil {
			// Undecodable function: one authoritative interpreter step.
			// Its fetch resolves through the window just armed, so no
			// hierarchy access happens twice.
			if err := c.Step(); err != nil {
				return err
			}
			continue
		}
		ro := c.resolve(p)
		base := pf.Base
		fnEnd := base + mem.Addr(len(p.ops))*isa.InstrBytes
		i := int((c.pc - base) >> 2)
		wLo := int((c.fetchLo - base) >> 2)
		wHi := int((c.fetchHi - base) >> 2)
		// Counter locals: written back to the CPU around every helper
		// call that can read or charge them (memory traffic, traps,
		// call hooks), and at every exit from the loop.
		cyc := c.cycles
		ins := c.ctr.Instrs

		for {
			if k := int(ro[i].run); k > 0 {
				// Fused straight-line run: k single-cycle ALU µops, all
				// inside the armed window. Clamp to the watchdog and
				// budget headroom (both ≥ 1: the gates just passed), so
				// the batched charge stops exactly where the
				// interpreter's per-instruction checks would.
				if h := maxI - ins; uint64(k) > h {
					k = int(h)
				}
				if h := budget - cyc; uint64(k) > uint64(h) {
					k = int(h)
				}
				ins += uint64(k)
				cyc += mem.Cycles(k)
				end := i + k
				if end > len(ro) {
					end = len(ro) // never taken (runs stay in-function); proves i < len(ro) below
				}
				for ; i < end; i++ {
					u := &ro[i]
					switch u.tag {
					case uAddR:
						rf[u.d] = rf[u.a] + rf[u.b]
					case uAddI:
						rf[u.d] = rf[u.a] + uint32(u.imm)
					case uSubR:
						rf[u.d] = rf[u.a] - rf[u.b]
					case uSubI:
						rf[u.d] = rf[u.a] - uint32(u.imm)
					case uAndR:
						rf[u.d] = rf[u.a] & rf[u.b]
					case uAndI:
						rf[u.d] = rf[u.a] & uint32(u.imm)
					case uOrR:
						rf[u.d] = rf[u.a] | rf[u.b]
					case uOrI:
						rf[u.d] = rf[u.a] | uint32(u.imm)
					case uXorR:
						rf[u.d] = rf[u.a] ^ rf[u.b]
					case uXorI:
						rf[u.d] = rf[u.a] ^ uint32(u.imm)
					case uSllR:
						rf[u.d] = rf[u.a] << (rf[u.b] & 31)
					case uSllI:
						rf[u.d] = rf[u.a] << uint32(u.imm)
					case uSrlR:
						rf[u.d] = rf[u.a] >> (rf[u.b] & 31)
					case uSrlI:
						rf[u.d] = rf[u.a] >> uint32(u.imm)
					case uSraR:
						rf[u.d] = uint32(int32(rf[u.a]) >> (rf[u.b] & 31))
					case uSraI:
						rf[u.d] = uint32(int32(rf[u.a]) >> uint32(u.imm))
					case uCmpR:
						a, b := int32(rf[u.a]), int32(rf[u.b])
						c.iccZ, c.iccN = a == b, a < b
					case uCmpI:
						a := int32(rf[u.a])
						c.iccZ, c.iccN = a == u.imm, a < u.imm
					case uMovR:
						rf[u.d] = rf[u.a]
					case uMovI, uSet:
						rf[u.d] = uint32(u.imm)
					case uSetSym:
						rf[u.d] = uint32(pf.Code[i].Imm)
					case uNop:
					}
				}
			} else {
				// General single µop, mirroring the matching Step case.
				// c.pc is not kept hot here: only halt, faults, calls and
				// the exit paths observe it, and each of those syncs it
				// from i before any observable use.
				u := &ro[i]
				ins++
				cyc++ // base issue (attribution is off in the engine)
				switch u.tag {
				case uHalt:
					c.halted = true
					c.pc = base + mem.Addr(i)*isa.InstrBytes + isa.InstrBytes
					c.cycles, c.ctr.Instrs = cyc, ins
					return nil

				case uMulR:
					cyc += c.cfg.MulLatency
					rf[u.d] = uint32(int32(rf[u.a]) * int32(rf[u.b]))
					i++
				case uMulI:
					cyc += c.cfg.MulLatency
					rf[u.d] = uint32(int32(rf[u.a]) * u.imm)
					i++
				case uDivR, uDivI:
					d := u.imm
					if u.tag == uDivR {
						d = int32(rf[u.b])
					}
					if d == 0 {
						c.pc = base + mem.Addr(i)*isa.InstrBytes
						c.cycles, c.ctr.Instrs = cyc, ins
						return fmt.Errorf("cpu: division by zero at pc %#x", c.pc)
					}
					cyc += c.cfg.DivLatency
					rf[u.d] = uint32(int32(rf[u.a]) / d)
					i++

				case uLd:
					ea := mem.Addr(rf[u.a] + uint32(u.imm))
					if ea&(mem.WordSize-1) != 0 {
						c.pc = base + mem.Addr(i)*isa.InstrBytes
						c.cycles, c.ctr.Instrs = cyc, ins
						return c.misalignedData(&pf.Code[i], ea)
					}
					c.cycles, c.ctr.Instrs = cyc, ins
					rf[u.d] = c.loadWord(ea)
					cyc = c.cycles
					i++
				case uLdub:
					ea := mem.Addr(rf[u.a] + uint32(u.imm))
					c.ctr.Loads++
					c.cycles, c.ctr.Instrs = cyc, ins
					c.translate(c.dtlb, ea, telemetry.CompDTLBWalk)
					c.cycles += c.cfg.LoadUse
					if c.dcacheC != nil {
						c.cycles += c.dcacheC.ReadLine(ea)
					} else {
						c.cycles += c.dcache.Read(ea, 1)
					}
					rf[u.d] = c.data.LoadByte(ea)
					cyc = c.cycles
					i++
				case uSt:
					ea := mem.Addr(rf[u.a] + uint32(u.imm))
					if ea&(mem.WordSize-1) != 0 {
						c.pc = base + mem.Addr(i)*isa.InstrBytes
						c.cycles, c.ctr.Instrs = cyc, ins
						return c.misalignedData(&pf.Code[i], ea)
					}
					c.cycles, c.ctr.Instrs = cyc, ins
					c.storeWord(ea, rf[u.d])
					cyc = c.cycles
					i++
				case uStb:
					ea := mem.Addr(rf[u.a] + uint32(u.imm))
					c.ctr.Stores++
					c.cycles, c.ctr.Instrs = cyc, ins
					c.translate(c.dtlb, ea, telemetry.CompDTLBWalk)
					c.storeAccess(ea, 1)
					c.data.StoreByte(ea, rf[u.d])
					cyc = c.cycles
					i++
				case uFLd:
					ea := mem.Addr(rf[u.a] + uint32(u.imm))
					if ea&(mem.WordSize-1) != 0 {
						c.pc = base + mem.Addr(i)*isa.InstrBytes
						c.cycles, c.ctr.Instrs = cyc, ins
						return c.misalignedData(&pf.Code[i], ea)
					}
					c.cycles, c.ctr.Instrs = cyc, ins
					c.fregs[u.d] = math.Float32frombits(c.loadWord(ea))
					cyc = c.cycles
					i++
				case uFSt:
					ea := mem.Addr(rf[u.a] + uint32(u.imm))
					if ea&(mem.WordSize-1) != 0 {
						c.pc = base + mem.Addr(i)*isa.InstrBytes
						c.cycles, c.ctr.Instrs = cyc, ins
						return c.misalignedData(&pf.Code[i], ea)
					}
					c.cycles, c.ctr.Instrs = cyc, ins
					c.storeWord(ea, math.Float32bits(c.fregs[u.b]))
					cyc = c.cycles
					i++

				case uFadd:
					c.ctr.FPUOps++
					cyc += c.cfg.FAddLatency
					c.fregs[u.d] = c.fregs[u.a] + c.fregs[u.b]
					i++
				case uFsub:
					c.ctr.FPUOps++
					cyc += c.cfg.FAddLatency
					c.fregs[u.d] = c.fregs[u.a] - c.fregs[u.b]
					i++
				case uFmul:
					c.ctr.FPUOps++
					cyc += c.cfg.FMulLatency
					c.fregs[u.d] = c.fregs[u.a] * c.fregs[u.b]
					i++
				case uFdiv:
					c.ctr.FPUOps++
					cyc += c.cfg.FDivLatency
					cyc += c.cfg.Jitter(c.fregs[u.b])
					c.fregs[u.d] = c.fregs[u.a] / c.fregs[u.b]
					i++
				case uFsqrt:
					c.ctr.FPUOps++
					cyc += c.cfg.FSqrtLatency
					cyc += c.cfg.Jitter(c.fregs[u.b])
					c.fregs[u.d] = float32(math.Sqrt(float64(c.fregs[u.b])))
					i++
				case uFcmp:
					c.ctr.FPUOps++
					cyc += c.cfg.FAddLatency
					a, b := c.fregs[u.a], c.fregs[u.b]
					switch {
					case a != a || b != b:
						c.fcc = 2
					case a == b:
						c.fcc = 0
					case a < b:
						c.fcc = -1
					default:
						c.fcc = 1
					}
					i++
				case uFitos:
					c.ctr.FPUOps++
					cyc += c.cfg.FAddLatency
					c.fregs[u.d] = float32(int32(math.Float32bits(c.fregs[u.b])))
					i++
				case uFstoi:
					c.ctr.FPUOps++
					cyc += c.cfg.FAddLatency
					c.fregs[u.d] = math.Float32frombits(uint32(int32(c.fregs[u.b])))
					i++

				case uBa:
					c.ctr.Branches++
					c.ctr.TakenBranches++
					cyc += c.cfg.BranchTaken
					i += int(u.imm)
				case uBe:
					c.ctr.Branches++
					if c.iccZ {
						c.ctr.TakenBranches++
						cyc += c.cfg.BranchTaken
						i += int(u.imm)
					} else {
						i++
					}
				case uBne:
					c.ctr.Branches++
					if !c.iccZ {
						c.ctr.TakenBranches++
						cyc += c.cfg.BranchTaken
						i += int(u.imm)
					} else {
						i++
					}
				case uBl:
					c.ctr.Branches++
					if c.iccN {
						c.ctr.TakenBranches++
						cyc += c.cfg.BranchTaken
						i += int(u.imm)
					} else {
						i++
					}
				case uBle:
					c.ctr.Branches++
					if c.iccN || c.iccZ {
						c.ctr.TakenBranches++
						cyc += c.cfg.BranchTaken
						i += int(u.imm)
					} else {
						i++
					}
				case uBg:
					c.ctr.Branches++
					if !c.iccN && !c.iccZ {
						c.ctr.TakenBranches++
						cyc += c.cfg.BranchTaken
						i += int(u.imm)
					} else {
						i++
					}
				case uBge:
					c.ctr.Branches++
					if !c.iccN {
						c.ctr.TakenBranches++
						cyc += c.cfg.BranchTaken
						i += int(u.imm)
					} else {
						i++
					}
				case uFbe:
					c.ctr.Branches++
					if c.fcc == 0 {
						c.ctr.TakenBranches++
						cyc += c.cfg.BranchTaken
						i += int(u.imm)
					} else {
						i++
					}
				case uFbne:
					c.ctr.Branches++
					if c.fcc != 0 {
						c.ctr.TakenBranches++
						cyc += c.cfg.BranchTaken
						i += int(u.imm)
					} else {
						i++
					}
				case uFbl:
					c.ctr.Branches++
					if c.fcc == -1 {
						c.ctr.TakenBranches++
						cyc += c.cfg.BranchTaken
						i += int(u.imm)
					} else {
						i++
					}
				case uFbg:
					c.ctr.Branches++
					if c.fcc == 1 {
						c.ctr.TakenBranches++
						cyc += c.cfg.BranchTaken
						i += int(u.imm)
					} else {
						i++
					}

				case uCall:
					c.ctr.Calls++
					rf[uint8(rb[1]+7)] = uint32(base + mem.Addr(i)*isa.InstrBytes) // %o7 = call site
					tgt := mem.Addr(uint32(pf.Code[i].Imm))
					c.cycles, c.ctr.Instrs = cyc, ins
					c.runCallHook(tgt)
					c.pc = tgt
					continue outer
				case uCallR:
					c.ctr.Calls++
					tgt := mem.Addr(rf[u.a]) // target read before the %o7 write
					rf[uint8(rb[1]+7)] = uint32(base + mem.Addr(i)*isa.InstrBytes)
					c.cycles, c.ctr.Instrs = cyc, ins
					c.runCallHook(tgt)
					c.pc = tgt
					continue outer
				case uRet:
					ret := rf[uint8(rb[3]+7)] // %i7
					c.cycles, c.ctr.Instrs = cyc, ins
					c.restore()
					c.pc = mem.Addr(ret) + isa.InstrBytes
					continue outer
				case uRetL:
					c.pc = mem.Addr(rf[uint8(rb[1]+7)]) + isa.InstrBytes // %o7
					c.cycles, c.ctr.Instrs = cyc, ins
					continue outer

				case uSave:
					c.cycles, c.ctr.Instrs = cyc, ins
					if err := c.save(uint32(u.imm), 0); err != nil {
						c.pc = base + mem.Addr(i)*isa.InstrBytes
						return err
					}
					ro = c.resolve(p)
					cyc = c.cycles
					i++
				case uSaveX:
					c.cycles, c.ctr.Instrs = cyc, ins
					if err := c.save(uint32(u.imm), rf[u.b]); err != nil {
						c.pc = base + mem.Addr(i)*isa.InstrBytes
						return err
					}
					ro = c.resolve(p)
					cyc = c.cycles
					i++
				case uRestore:
					c.cycles, c.ctr.Instrs = cyc, ins
					c.restore()
					ro = c.resolve(p)
					cyc = c.cycles
					i++

				case uIPoint:
					cyc += c.cfg.IPointCost
					c.trace = append(c.trace, TracePoint{ID: u.imm, Cycles: cyc})
					i++

				default:
					// Unreachable: decodeFunc rejects unknown ops.
					c.pc = base + mem.Addr(i)*isa.InstrBytes
					c.cycles, c.ctr.Instrs = cyc, ins
					return fmt.Errorf("cpu: engine: unknown µop %d at pc %#x", u.tag, c.pc)
				}
			}

			// Between-instruction gates and the fetch-window check for
			// the next instruction, in the interpreter's order: gates
			// first (they fire before any fetch side effects), then the
			// window.
			if cyc >= budget {
				c.pc = base + mem.Addr(i)*isa.InstrBytes
				c.cycles, c.ctr.Instrs = cyc, ins
				return nil
			}
			if ins >= maxI {
				c.pc = base + mem.Addr(i)*isa.InstrBytes
				c.cycles, c.ctr.Instrs = cyc, ins
				return ErrMaxInstrs
			}
			if i < wLo || i >= wHi {
				if uint(i) < uint(len(ro)) && icC != nil {
					// The next pc (sequential spill into the adjacent
					// IL1 line or an intra-function branch target) left
					// the window but stays inside the decoded function:
					// re-arm inline with exactly the interpreter's
					// slow-fetch accesses and window arithmetic — ITLB
					// translation, IL1 line read, window = line ∩ page
					// ∩ function. The page clamp is vacuous here: the
					// line size divides the page size (engineOK), so an
					// aligned line never straddles a page.
					pc := base + mem.Addr(i)*isa.InstrBytes
					if itlb != nil {
						cyc += itlb.Translate(pc)
					}
					cyc += icC.ReadLine(pc)
					lo := pc &^ (line - 1)
					hi := lo + line
					if lo < base {
						lo = base
					}
					if hi > fnEnd {
						hi = fnEnd
					}
					wLo = int((lo - base) >> 2)
					wHi = int((hi - base) >> 2)
					c.fetchLo, c.fetchHi = lo, hi
					continue
				}
				c.pc = base + mem.Addr(i)*isa.InstrBytes
				c.cycles, c.ctr.Instrs = cyc, ins
				continue outer
			}
		}
	}
}
