package cpu

import (
	"fmt"
	"reflect"
	"testing"

	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/mem"
	"dsr/internal/prog"
)

// Engine equivalence suite: the threaded-code engine must be
// observationally indistinguishable from the giant-switch interpreter —
// same cycles, same counters, same architectural state, same trace —
// for every layout class a placement can select, and across image
// rebinding (the DSR runtime relocates functions between runs and the
// decode cache persists by design).

// equivProgram touches every µop family the engine handles: fusible ALU
// runs (reg and imm forms), Set with and without symbols, mul/div,
// word and byte loads/stores, FP arithmetic, compares and FP branches,
// int branches, calls through register windows, a leaf call, and
// instrumentation points.
func equivProgram(t testing.TB) *prog.Program {
	t.Helper()
	p := &prog.Program{Name: "equiv", Entry: "main"}
	if err := p.AddData(&prog.DataObject{Name: "vals", Size: 4 * 4,
		// 3.0f and 1.5f as raw bit patterns, plus integer fodder.
		Init: []uint32{0x4040_0000, 0x3FC0_0000, 41, 7}}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddData(&prog.DataObject{Name: "out", Size: 4 * 4}); err != nil {
		t.Fatal(err)
	}

	scale := prog.NewLeaf("scale").
		MulI(isa.O0, isa.O0, 3).
		RetLeaf().
		MustBuild()

	f0, f1, f2, f3, f4 := isa.FReg(0), isa.FReg(1), isa.FReg(2), isa.FReg(3), isa.FReg(4)
	fpwork := prog.NewFunc("fpwork", prog.MinFrame).
		Prologue().
		Set(isa.L0, "vals").
		FLd(f0, isa.L0, 0).
		FLd(f1, isa.L0, 4).
		Fadd(f2, f0, f1).
		Fmul(f3, f2, f1).
		Fcmp(f3, f0).
		Fbl("small").
		Fstoi(f4, f3).
		Ba("store").
		Label("small").
		Fstoi(f4, f0).
		Label("store").
		Set(isa.L1, "out").
		FSt(f4, isa.L1, 0).
		Ld(isa.L2, isa.L1, 0).
		Mov(isa.I0, isa.L2).
		Epilogue().
		MustBuild()

	main := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		IPoint(1).
		MovI(isa.L0, 0). // i
		MovI(isa.L1, 0). // sum
		Label("loop").
		LoopBound(8).
		Mov(isa.O0, isa.L0).
		Call("scale").
		Add(isa.L1, isa.L1, isa.O0).
		// A fusible straight-line stretch mixing reg and imm forms.
		OpI(isa.Xor, isa.L2, isa.L1, 0x5A).
		OpI(isa.And, isa.L3, isa.L2, 0xFF).
		Op3(isa.Or, isa.L4, isa.L3, isa.L0).
		OpI(isa.Sll, isa.L4, isa.L4, 3).
		OpI(isa.Sra, isa.L4, isa.L4, 1).
		Sub(isa.L2, isa.L4, isa.L3).
		AddI(isa.L0, isa.L0, 1).
		CmpI(isa.L0, 8).
		Bl("loop").
		Call("fpwork").
		Add(isa.L1, isa.L1, isa.O0).
		// Byte memory traffic and div (operands kept nonzero).
		Set(isa.L5, "vals").
		Ldub(isa.L6, isa.L5, 8).
		Stb(isa.L6, isa.L5, 12).
		AddI(isa.L7, isa.L1, 13).
		OpI(isa.Div, isa.L7, isa.L7, 5).
		Add(isa.L1, isa.L1, isa.L7).
		Set(isa.L5, "out").
		St(isa.L1, isa.L5, 4).
		IPoint(2).
		Mov(isa.O0, isa.L1).
		Halt().
		MustBuild()

	for _, f := range []*prog.Function{main, scale, fpwork} {
		if err := p.AddFunction(f); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// layoutClasses are the IL1-line offsets an 8-byte-aligned placement
// can give a function with 32-byte lines — the decode cache's class key.
var layoutClasses = []mem.Addr{0, 8, 16, 24}

// equivImage places equivProgram sequentially, then shifts every symbol
// by delta so the entry (and everything behind it) lands in a chosen
// layout class.
func equivImage(t testing.TB, delta mem.Addr) *loader.Image {
	t.Helper()
	p := equivProgram(t)
	l, err := loader.LayoutSequential(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	pl := loader.Placement{}
	for sym, base := range l.Placement {
		pl[sym] = base + delta
	}
	img, err := loader.BuildImage(p, pl)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

// newEquivCPU builds a CPU over real L1s/TLBs with the image's data
// initialised, optionally pinned to the interpreter.
func newEquivCPU(img *loader.Image, forceInterp bool) *CPU {
	il1, dl1, it, dt := proximaFronts()
	m := NewMemory()
	for _, iw := range img.Inits {
		m.StoreWord(iw.Addr, iw.Val)
	}
	c := New(NewDefaultConfig(), img, il1, dl1, it, dt, m)
	c.SetForceInterpreter(forceInterp)
	return c
}

// machineState is everything observable about a finished run. The %g0
// scratch slot is excluded: the engine parks discarded writes there
// while the interpreter drops them, and the slot is architecturally
// invisible (reads of %g0 resolve to rfile[0]).
type machineState struct {
	cycles  mem.Cycles
	ctr     Counters
	pc      mem.Addr
	halted  bool
	rfile   []uint32
	fregs   [isa.NumFRegs]float32
	iccZ    bool
	iccN    bool
	fcc     int
	trace   []TracePoint
	memHash map[mem.Addr]uint32
}

func captureState(c *CPU, img *loader.Image) machineState {
	st := machineState{
		cycles: c.cycles,
		ctr:    c.ctr,
		pc:     c.pc,
		halted: c.halted,
		rfile:  append([]uint32(nil), c.rfile[:c.scratchIdx()]...),
		fregs:  c.fregs,
		iccZ:   c.iccZ,
		iccN:   c.iccN,
		fcc:    c.fcc,
		trace:  append([]TracePoint(nil), c.trace...),
	}
	// Observable data memory: every initialised word plus the output
	// object's words.
	st.memHash = map[mem.Addr]uint32{}
	for _, iw := range img.Inits {
		st.memHash[iw.Addr] = c.data.LoadWord(iw.Addr)
	}
	if base, ok := img.Symbols["out"]; ok {
		for off := mem.Addr(0); off < 16; off += 4 {
			st.memHash[base+off] = c.data.LoadWord(base + off)
		}
	}
	return st
}

func runToHalt(t *testing.T, c *CPU) {
	t.Helper()
	c.Reset(stackTop)
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if !c.Halted() {
		t.Fatal("CPU did not halt")
	}
}

// TestEngineEngaged guards the equivalence suite against vacuity: under
// the default configuration the engine's preconditions must hold, so
// the fast side of every comparison really is threaded-code dispatch.
func TestEngineEngaged(t *testing.T) {
	c := newEquivCPU(equivImage(t, 0), false)
	if !c.engineOK() {
		t.Fatal("engineOK() = false under the default configuration; the equivalence suite would compare the interpreter with itself")
	}
	cf := newEquivCPU(equivImage(t, 0), true)
	if cf.engineOK() {
		t.Fatal("engineOK() = true despite SetForceInterpreter(true)")
	}
}

// TestEngineInterpreterEquivalence pins byte-identity between the
// threaded-code engine and the forced interpreter for every layout
// class: cycles, performance counters, the full register file, FP
// state, condition codes, the instrumentation trace and data memory.
func TestEngineInterpreterEquivalence(t *testing.T) {
	for _, delta := range layoutClasses {
		delta := delta
		t.Run(fmt.Sprintf("class%d", delta), func(t *testing.T) {
			fast := newEquivCPU(equivImage(t, delta), false)
			slow := newEquivCPU(equivImage(t, delta), true)
			runToHalt(t, fast)
			runToHalt(t, slow)
			fs, ss := captureState(fast, fast.img), captureState(slow, slow.img)
			if !reflect.DeepEqual(fs, ss) {
				t.Errorf("engine and interpreter state diverged:\n fast: %+v\n slow: %+v", fs, ss)
			}
			if fs.cycles == 0 || fs.ctr.Instrs == 0 {
				t.Errorf("degenerate run: cycles=%d instrs=%d", fs.cycles, fs.ctr.Instrs)
			}
		})
	}
}

// TestEngineEquivalenceAcrossRebinding models a DSR campaign's reboots:
// one CPU is repeatedly rebound to images in rotating layout classes
// (the decode cache persisting throughout, as in production), and every
// run must match a fresh forced-interpreter CPU executing the same
// image. A stale decode entry surviving relocation would diverge here.
func TestEngineEquivalenceAcrossRebinding(t *testing.T) {
	imgs := make([]*loader.Image, len(layoutClasses))
	for i, delta := range layoutClasses {
		imgs[i] = equivImage(t, delta)
	}
	fast := newEquivCPU(imgs[0], false)
	for round := 0; round < 3; round++ {
		for i, img := range imgs {
			// Rebind (relocation between runs) — decode cache kept,
			// memory reloaded the way a platform reboot does it.
			fast.SetImage(img)
			fast.data.Clear()
			for _, iw := range img.Inits {
				fast.data.StoreWord(iw.Addr, iw.Val)
			}
			runToHalt(t, fast)
			slow := newEquivCPU(img, true)
			runToHalt(t, slow)
			fs, ss := captureState(fast, img), captureState(slow, img)
			if !reflect.DeepEqual(fs, ss) {
				t.Fatalf("round %d class %d: rebound engine diverged from fresh interpreter", round, i*8)
			}
		}
	}
}

// TestInvalidateDecodeNeutral pins InvalidateDecode's contract: a hard
// decode-cache reset between runs must not change any observable (the
// re-decode reproduces the dropped entries exactly).
func TestInvalidateDecodeNeutral(t *testing.T) {
	img := equivImage(t, 8)
	warm := newEquivCPU(img, false)
	cold := newEquivCPU(img, false)
	for i := 0; i < 3; i++ {
		runToHalt(t, warm)
		cold.InvalidateDecode()
		runToHalt(t, cold)
		ws, cs := captureState(warm, img), captureState(cold, img)
		if !reflect.DeepEqual(ws, cs) {
			t.Fatalf("run %d: InvalidateDecode changed observable state", i)
		}
	}
}
