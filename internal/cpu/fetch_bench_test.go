package cpu

import (
	"testing"

	"dsr/internal/cache"
	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/mem"
	"dsr/internal/prog"
	"dsr/internal/tlb"
)

// Fetch/dispatch microbenchmarks: the end-to-end per-instruction cost
// of the core. benchLoopProgram executes a counted arithmetic loop —
// the straight-line fetch fast path (same function, line, page) broken
// only by the backward branch every iteration.

const benchLoopIters = 10_000

func benchLoopProgram(b *testing.B) *loader.Image {
	b.Helper()
	fb := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.L0, 0).
		MovI(isa.L1, benchLoopIters).
		Label("loop").
		AddI(isa.L0, isa.L0, 1).
		OpI(isa.Xor, isa.L2, isa.L0, 0x55).
		OpI(isa.And, isa.L3, isa.L2, 0xFF).
		Op3(isa.Add, isa.L4, isa.L3, isa.L0).
		Cmp(isa.L0, isa.L1).
		Bl("loop").
		Halt()
	p := &prog.Program{Name: "fetchbench", Entry: "main"}
	if err := p.AddFunction(fb.MustBuild()); err != nil {
		b.Fatal(err)
	}
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		b.Fatal(err)
	}
	return img
}

// proximaFronts builds real IL1/DL1/TLBs over a flat backend, so the
// benchmark exercises the devirtualised concrete-cache fetch path.
func proximaFronts() (icache, dcache *cache.Cache, itlb, dtlb *tlb.TLB) {
	flat := nullMem{}
	il1 := cache.New(cache.Config{
		Name: "IL1", Size: 16 * 1024, LineSize: 32, Ways: 4,
		HitLatency: 0, Placement: cache.PlacementModulo,
		Replacement: cache.ReplacementLRU, Write: cache.WriteBackAllocate,
	}, flat)
	dl1 := cache.New(cache.Config{
		Name: "DL1", Size: 16 * 1024, LineSize: 16, Ways: 4,
		HitLatency: 0, Placement: cache.PlacementModulo,
		Replacement: cache.ReplacementLRU, Write: cache.WriteThroughNoAllocate,
	}, flat)
	it := tlb.New(tlb.Config{Name: "ITLB", Entries: 64, WalkReads: 3}, flat, 0x7000_0000)
	dt := tlb.New(tlb.Config{Name: "DTLB", Entries: 64, WalkReads: 3}, flat, 0x7000_0000)
	return il1, dl1, it, dt
}

// BenchmarkFetchLoop is the headline per-instruction cost: a tight
// counted loop through real L1s and TLBs. instrs/s is the simulator's
// effective instruction rate.
func BenchmarkFetchLoop(b *testing.B) {
	img := benchLoopProgram(b)
	il1, dl1, it, dt := proximaFronts()
	c := New(NewDefaultConfig(), img, il1, dl1, it, dt, NewMemory())
	b.ReportAllocs()
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		c.Reset(stackTop)
		if _, err := c.Run(); err != nil {
			b.Fatal(err)
		}
		instrs += c.Counters().Instrs
	}
	b.StopTimer()
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkFetchLoopNullHierarchy isolates the core's dispatch cost:
// same loop, zero-latency backends, no TLBs.
func BenchmarkFetchLoopNullHierarchy(b *testing.B) {
	img := benchLoopProgram(b)
	c := New(NewDefaultConfig(), img, nullMem{}, nullMem{}, nil, nil, NewMemory())
	b.ReportAllocs()
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		c.Reset(stackTop)
		if _, err := c.Run(); err != nil {
			b.Fatal(err)
		}
		instrs += c.Counters().Instrs
	}
	b.StopTimer()
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkChargeDisabledTelemetry pins the zero-overhead guarantee of
// the disabled-telemetry charge path: with a nil Attribution, charge
// must be one addition plus one nil check.
func BenchmarkChargeDisabledTelemetry(b *testing.B) {
	img := benchLoopProgram(b)
	c := New(NewDefaultConfig(), img, nullMem{}, nullMem{}, nil, nil, NewMemory())
	c.Reset(stackTop)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.charge(0, 1)
	}
	b.StopTimer()
	if c.Cycles() < mem.Cycles(b.N) {
		b.Fatal("charge lost cycles")
	}
}

// TestChargeDisabledAllocFree: the disabled-telemetry charge path and
// the whole fetch loop must be allocation-free (the trace append is the
// only allocating step in steady state, and this program has no
// ipoints).
func TestChargeDisabledAllocFree(t *testing.T) {
	fb := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.L0, 0).
		MovI(isa.L1, 64).
		Label("loop").
		AddI(isa.L0, isa.L0, 1).
		Cmp(isa.L0, isa.L1).
		Bl("loop").
		Halt()
	p := &prog.Program{Name: "allocfree", Entry: "main"}
	if err := p.AddFunction(fb.MustBuild()); err != nil {
		t.Fatal(err)
	}
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	il1, dl1, it, dt := proximaFronts()
	c := New(NewDefaultConfig(), img, il1, dl1, it, dt, NewMemory())
	c.Reset(stackTop)
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		c.Reset(stackTop)
		if _, err := c.Run(); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("steady-state run allocates %v times", n)
	}
}
