package cpu

import (
	"fmt"

	"dsr/internal/mem"
)

// pageWords is the number of 32-bit words per functional-memory page.
const pageWords = mem.PageSize / mem.WordSize

// Address decomposition of the 32-bit simulated physical space:
// 10 root bits, 10 leaf bits, 12 offset bits (4KB pages).
const (
	pageShift = 12
	leafBits  = 10
	rootBits  = 10
	leafSize  = 1 << leafBits
	rootSize  = 1 << rootBits
	leafMask  = leafSize - 1
	rootMask  = rootSize - 1
)

// Compile-time guards: the shift decomposition must cover exactly the
// configured page size and the 32-bit space.
var (
	_ [0]struct{} = [mem.PageSize - 1<<pageShift]struct{}{}
	_ [0]struct{} = [(1 << 32 >> pageShift) - rootSize*leafSize]struct{}{}
)

type memPage [pageWords]uint32

// Memory is the functional (value-holding) data store of the simulated
// machine, separate from the timing model: caches decide how long an
// access takes, Memory decides what it returns. SPARC is big-endian;
// byte accesses honour that.
//
// Storage is a flat two-level page table over the 32-bit physical space
// (10+10+12 bit split) fronted by a last-page cache, because the page
// lookup sits on the per-instruction hot path (every load and store
// resolves here). The previous map-backed implementation cost a hash +
// probe per access; the table walk is two indexed loads and the
// last-page hit is one compare. Addresses above 4GB cannot occur on the
// modelled LEON3 (the address space is 32-bit), but mem.Addr is 64-bit
// to keep intermediate arithmetic from wrapping, so out-of-range
// addresses fall back to a spill map rather than corrupting the table.
type Memory struct {
	// lastPN/lastPage cache the most recently touched resident page;
	// lastPN is the sentinel ^0 when empty.
	lastPN   mem.Addr
	lastPage *memPage

	root [rootSize]*[leafSize]*memPage

	// spill holds pages above the 32-bit space (defensive; unreachable
	// under the LEON3 memory map). Allocated lazily.
	spill map[mem.Addr]*memPage

	npages int
}

// NewMemory returns an empty memory; all bytes read as zero.
func NewMemory() *Memory {
	return &Memory{lastPN: ^mem.Addr(0)}
}

// lookupPage returns the page with number pn, or nil. It does not
// update the last-page cache.
func (m *Memory) lookupPage(pn mem.Addr) *memPage {
	if pn < rootSize*leafSize {
		leaf := m.root[(pn>>leafBits)&rootMask]
		if leaf == nil {
			return nil
		}
		return leaf[pn&leafMask]
	}
	return m.spill[pn]
}

// createPage returns the page with number pn, allocating it (and its
// leaf) on first touch.
func (m *Memory) createPage(pn mem.Addr) *memPage {
	if pn < rootSize*leafSize {
		ri := (pn >> leafBits) & rootMask
		leaf := m.root[ri]
		if leaf == nil {
			leaf = new([leafSize]*memPage)
			m.root[ri] = leaf
		}
		p := leaf[pn&leafMask]
		if p == nil {
			p = new(memPage)
			leaf[pn&leafMask] = p
			m.npages++
		}
		return p
	}
	p := m.spill[pn]
	if p == nil {
		p = new(memPage)
		if m.spill == nil {
			m.spill = make(map[mem.Addr]*memPage)
		}
		m.spill[pn] = p
		m.npages++
	}
	return p
}

// misaligned is the outlined alignment trap, hoisted off the hit path
// so LoadWord/StoreWord stay inlinable.
//
//go:noinline
func misaligned(op string, a mem.Addr) {
	panic(fmt.Sprintf("cpu: misaligned word %s at %#x", op, a))
}

// LoadWord returns the word at a. a must be word-aligned; the SPARC
// alignment trap is modelled as an error by the CPU before calling here.
// The in-range walk is inlined — two indexed loads — so even a
// page-alternating access pattern pays no cache-thrash penalty.
func (m *Memory) LoadWord(a mem.Addr) uint32 {
	if a&(mem.WordSize-1) != 0 {
		misaligned("load", a)
	}
	if a>>pageShift < rootSize*leafSize {
		leaf := m.root[a>>(pageShift+leafBits)]
		if leaf == nil {
			return 0
		}
		p := leaf[(a>>pageShift)&leafMask]
		if p == nil {
			return 0
		}
		return p[(a&(mem.PageSize-1))>>2]
	}
	return m.loadSpill(a)
}

// loadSpill serves the (unreachable on LEON3) above-4GB addresses.
//
//go:noinline
func (m *Memory) loadSpill(a mem.Addr) uint32 {
	p := m.spill[a>>pageShift]
	if p == nil {
		return 0
	}
	return p[(a&(mem.PageSize-1))>>2]
}

// StoreWord writes the word at a (word-aligned).
func (m *Memory) StoreWord(a mem.Addr, v uint32) {
	if a&(mem.WordSize-1) != 0 {
		misaligned("store", a)
	}
	if pn := a >> pageShift; pn == m.lastPN {
		m.lastPage[(a&(mem.PageSize-1))>>2] = v
		return
	}
	m.storeSlow(a, v)
}

//go:noinline
func (m *Memory) storeSlow(a mem.Addr, v uint32) {
	pn := a >> pageShift
	p := m.createPage(pn)
	m.lastPN, m.lastPage = pn, p
	p[(a&(mem.PageSize-1))>>2] = v
}

// LoadByte returns the byte at a, zero-extended, big-endian within words.
func (m *Memory) LoadByte(a mem.Addr) uint32 {
	w := m.LoadWord(a &^ 3)
	shift := (3 - (a & 3)) * 8
	return (w >> shift) & 0xFF
}

// StoreByte writes the low byte of v at a, big-endian within words.
func (m *Memory) StoreByte(a mem.Addr, v uint32) {
	wa := a &^ 3
	w := m.LoadWord(wa)
	shift := (3 - (a & 3)) * 8
	w = w&^(0xFF<<shift) | (v&0xFF)<<shift
	m.StoreWord(wa, w)
}

// Clear drops all contents (partition reboot).
func (m *Memory) Clear() {
	m.root = [rootSize]*[leafSize]*memPage{}
	m.spill = nil
	m.lastPN = ^mem.Addr(0)
	m.lastPage = nil
	m.npages = 0
}

// PagesAllocated returns how many distinct pages hold data (tests).
func (m *Memory) PagesAllocated() int { return m.npages }
