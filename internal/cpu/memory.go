package cpu

import (
	"fmt"

	"dsr/internal/mem"
)

// pageWords is the number of 32-bit words per functional-memory page.
const pageWords = mem.PageSize / mem.WordSize

// Memory is the functional (value-holding) data store of the simulated
// machine, separate from the timing model: caches decide how long an
// access takes, Memory decides what it returns. Sparse paged storage
// keeps the 32-bit address space cheap. SPARC is big-endian; byte
// accesses honour that.
type Memory struct {
	pages map[mem.Addr]*[pageWords]uint32
}

// NewMemory returns an empty memory; all bytes read as zero.
func NewMemory() *Memory {
	return &Memory{pages: make(map[mem.Addr]*[pageWords]uint32)}
}

func (m *Memory) page(a mem.Addr, create bool) *[pageWords]uint32 {
	pn := mem.Page(a)
	p := m.pages[pn]
	if p == nil && create {
		p = new([pageWords]uint32)
		m.pages[pn] = p
	}
	return p
}

// LoadWord returns the word at a. a must be word-aligned; the SPARC
// alignment trap is modelled as an error by the CPU before calling here.
func (m *Memory) LoadWord(a mem.Addr) uint32 {
	if a%mem.WordSize != 0 {
		panic(fmt.Sprintf("cpu: misaligned word load at %#x", a))
	}
	p := m.page(a, false)
	if p == nil {
		return 0
	}
	return p[(a%mem.PageSize)/mem.WordSize]
}

// StoreWord writes the word at a (word-aligned).
func (m *Memory) StoreWord(a mem.Addr, v uint32) {
	if a%mem.WordSize != 0 {
		panic(fmt.Sprintf("cpu: misaligned word store at %#x", a))
	}
	m.page(a, true)[(a%mem.PageSize)/mem.WordSize] = v
}

// LoadByte returns the byte at a, zero-extended, big-endian within words.
func (m *Memory) LoadByte(a mem.Addr) uint32 {
	w := m.LoadWord(a &^ 3)
	shift := (3 - (a & 3)) * 8
	return (w >> shift) & 0xFF
}

// StoreByte writes the low byte of v at a, big-endian within words.
func (m *Memory) StoreByte(a mem.Addr, v uint32) {
	wa := a &^ 3
	w := m.LoadWord(wa)
	shift := (3 - (a & 3)) * 8
	w = w&^(0xFF<<shift) | (v&0xFF)<<shift
	m.StoreWord(wa, w)
}

// Clear drops all contents (partition reboot).
func (m *Memory) Clear() {
	m.pages = make(map[mem.Addr]*[pageWords]uint32)
}

// PagesAllocated returns how many distinct pages hold data (tests).
func (m *Memory) PagesAllocated() int { return len(m.pages) }
