package cpu

import (
	"fmt"

	"dsr/internal/mem"
)

// pageWords is the number of 32-bit words per functional-memory page.
const pageWords = mem.PageSize / mem.WordSize

// Address decomposition of the 32-bit simulated physical space:
// 10 root bits, 10 leaf bits, 12 offset bits (4KB pages).
const (
	pageShift = 12
	leafBits  = 10
	rootBits  = 10
	leafSize  = 1 << leafBits
	rootSize  = 1 << rootBits
	leafMask  = leafSize - 1
	rootMask  = rootSize - 1
)

// Compile-time guards: the shift decomposition must cover exactly the
// configured page size and the 32-bit space.
var (
	_ [0]struct{} = [mem.PageSize - 1<<pageShift]struct{}{}
	_ [0]struct{} = [(1 << 32 >> pageShift) - rootSize*leafSize]struct{}{}
)

// memPage is one 4KB backing page plus its dirty-journal stamp: the era
// (see Memory.era) in which the page was last recorded as written. The
// stamp lets the journal stay duplicate-free with a single compare on
// the store slow path.
type memPage struct {
	w     [pageWords]uint32
	stamp uint64
}

// dirtyRec is one journal entry: a page written during the current era.
type dirtyRec struct {
	pn mem.Addr
	p  *memPage
}

// Memory is the functional (value-holding) data store of the simulated
// machine, separate from the timing model: caches decide how long an
// access takes, Memory decides what it returns. SPARC is big-endian;
// byte accesses honour that.
//
// Storage is a flat two-level page table over the 32-bit physical space
// (10+10+12 bit split) fronted by a last-page cache, because the page
// lookup sits on the per-instruction hot path (every load and store
// resolves here). The previous map-backed implementation cost a hash +
// probe per access; the table walk is two indexed loads and the
// last-page hit is one compare. Addresses above 4GB cannot occur on the
// modelled LEON3 (the address space is 32-bit), but mem.Addr is 64-bit
// to keep intermediate arithmetic from wrapping, so out-of-range
// addresses fall back to a spill map rather than corrupting the table.
//
// Writes are journalled: the first store to a page per era appends the
// page to a dirty list, so Clear zeroes exactly the written pages in
// place instead of dropping the page table. Campaigns reboot thousands
// of times per analysis; dropping the table made every reboot reallocate
// (and the collector reclaim) the whole resident set, which is the
// allocation pressure that serialised parallel campaign workers on the
// shared GC. The journal also powers Snapshot/Restore — the
// copy-on-write platform fork used by the fixed-layout campaign series.
type Memory struct {
	// lastPN/lastPage cache the most recently touched resident page;
	// lastPN is the sentinel ^0 when empty.
	lastPN   mem.Addr
	lastPage *memPage

	root [rootSize]*[leafSize]*memPage

	// spill holds pages above the 32-bit space (defensive; unreachable
	// under the LEON3 memory map). Allocated lazily.
	spill map[mem.Addr]*memPage

	npages int

	// era is the current dirty-journal generation; pages whose stamp
	// differs have not been written since the last Clear/Restore. It
	// starts at 1 so the zero stamp of a fresh page always reads as
	// "not yet journalled".
	era   uint64
	dirty []dirtyRec
}

// NewMemory returns an empty memory; all bytes read as zero.
func NewMemory() *Memory {
	return &Memory{lastPN: ^mem.Addr(0), era: 1}
}

// lookupPage returns the page with number pn, or nil. It does not
// update the last-page cache.
func (m *Memory) lookupPage(pn mem.Addr) *memPage {
	if pn < rootSize*leafSize {
		leaf := m.root[(pn>>leafBits)&rootMask]
		if leaf == nil {
			return nil
		}
		return leaf[pn&leafMask]
	}
	return m.spill[pn]
}

// createPage returns the page with number pn, allocating it (and its
// leaf) on first touch.
func (m *Memory) createPage(pn mem.Addr) *memPage {
	if pn < rootSize*leafSize {
		ri := (pn >> leafBits) & rootMask
		leaf := m.root[ri]
		if leaf == nil {
			leaf = new([leafSize]*memPage)
			m.root[ri] = leaf
		}
		p := leaf[pn&leafMask]
		if p == nil {
			p = new(memPage)
			leaf[pn&leafMask] = p
			m.npages++
		}
		return p
	}
	p := m.spill[pn]
	if p == nil {
		p = new(memPage)
		if m.spill == nil {
			m.spill = make(map[mem.Addr]*memPage)
		}
		m.spill[pn] = p
	}
	return p
}

// misaligned is the outlined alignment trap, hoisted off the hit path
// so LoadWord/StoreWord stay inlinable.
//
//go:noinline
func misaligned(op string, a mem.Addr) {
	panic(fmt.Sprintf("cpu: misaligned word %s at %#x", op, a))
}

// LoadWord returns the word at a. a must be word-aligned; the SPARC
// alignment trap is modelled as an error by the CPU before calling here.
// The in-range walk is inlined — two indexed loads — so even a
// page-alternating access pattern pays no cache-thrash penalty.
func (m *Memory) LoadWord(a mem.Addr) uint32 {
	if a&(mem.WordSize-1) != 0 {
		misaligned("load", a)
	}
	if a>>pageShift < rootSize*leafSize {
		leaf := m.root[a>>(pageShift+leafBits)]
		if leaf == nil {
			return 0
		}
		p := leaf[(a>>pageShift)&leafMask]
		if p == nil {
			return 0
		}
		return p.w[(a&(mem.PageSize-1))>>2]
	}
	return m.loadSpill(a)
}

// loadSpill serves the (unreachable on LEON3) above-4GB addresses.
//
//go:noinline
func (m *Memory) loadSpill(a mem.Addr) uint32 {
	p := m.spill[a>>pageShift]
	if p == nil {
		return 0
	}
	return p.w[(a&(mem.PageSize-1))>>2]
}

// StoreWord writes the word at a (word-aligned).
func (m *Memory) StoreWord(a mem.Addr, v uint32) {
	if a&(mem.WordSize-1) != 0 {
		misaligned("store", a)
	}
	if pn := a >> pageShift; pn == m.lastPN {
		m.lastPage.w[(a&(mem.PageSize-1))>>2] = v
		return
	}
	m.storeSlow(a, v)
}

//go:noinline
func (m *Memory) storeSlow(a mem.Addr, v uint32) {
	pn := a >> pageShift
	p := m.createPage(pn)
	// Journal the first write per era. A page can only become the
	// last-page fast path via this function, so every written page is
	// journalled before any store bypasses the check. Spill pages stay
	// out of the journal — Clear drops the whole spill map instead.
	if p.stamp != m.era && pn < rootSize*leafSize {
		p.stamp = m.era
		m.dirty = append(m.dirty, dirtyRec{pn: pn, p: p})
	}
	m.lastPN, m.lastPage = pn, p
	p.w[(a&(mem.PageSize-1))>>2] = v
}

// LoadByte returns the byte at a, zero-extended, big-endian within words.
func (m *Memory) LoadByte(a mem.Addr) uint32 {
	w := m.LoadWord(a &^ 3)
	shift := (3 - (a & 3)) * 8
	return (w >> shift) & 0xFF
}

// StoreByte writes the low byte of v at a, big-endian within words.
func (m *Memory) StoreByte(a mem.Addr, v uint32) {
	wa := a &^ 3
	w := m.LoadWord(wa)
	shift := (3 - (a & 3)) * 8
	w = w&^(0xFF<<shift) | (v&0xFF)<<shift
	m.StoreWord(wa, w)
}

// Clear drops all contents (partition reboot). Written pages are zeroed
// in place and stay resident, so a campaign's thousands of reboots reuse
// one stable page working set instead of churning the allocator.
func (m *Memory) Clear() {
	for _, d := range m.dirty {
		d.p.w = [pageWords]uint32{}
	}
	m.dirty = m.dirty[:0]
	m.era++
	m.spill = nil
	m.lastPN = ^mem.Addr(0)
	m.lastPage = nil
}

// MemSnapshot is a copy of the memory's written contents at one point in
// time — the boot state a copy-on-write platform fork restores before
// every run. Pages that were all-zero at snapshot time are not stored;
// restoring relies on the journal to know which pages were written since.
type MemSnapshot struct {
	pns   []mem.Addr
	words [][pageWords]uint32
}

// Pages returns the number of pages captured by the snapshot.
func (s *MemSnapshot) Pages() int { return len(s.pns) }

// Snapshot captures the current contents. The cost is one 4KB copy per
// written page, paid once per boot; Restore then reverts any number of
// runs' worth of writes against it.
func (m *Memory) Snapshot() *MemSnapshot {
	s := &MemSnapshot{
		pns:   make([]mem.Addr, len(m.dirty)),
		words: make([][pageWords]uint32, len(m.dirty)),
	}
	for i, d := range m.dirty {
		s.pns[i] = d.pn
		s.words[i] = d.p.w
	}
	return s
}

// Restore reverts memory to exactly the state captured by s: every page
// written since the last Clear/Restore is zeroed, then the snapshot
// contents are copied back in. The cost is proportional to the pages
// actually written since the snapshot baseline, not to the resident set
// — the copy-on-write fork discipline.
func (m *Memory) Restore(s *MemSnapshot) {
	m.Clear()
	for i, pn := range s.pns {
		p := m.createPage(pn)
		p.w = s.words[i]
		p.stamp = m.era
		m.dirty = append(m.dirty, dirtyRec{pn: pn, p: p})
	}
}

// PagesAllocated returns how many distinct pages hold data (tests).
func (m *Memory) PagesAllocated() int { return len(m.dirty) + len(m.spill) }

// PagesResident returns how many backing pages are resident, written or
// not; it is monotone within one Memory and exposed for tests asserting
// that Clear recycles pages instead of dropping them.
func (m *Memory) PagesResident() int { return m.npages }
