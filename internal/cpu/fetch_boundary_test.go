package cpu

import (
	"testing"

	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/prog"
)

// Fetch fast-path boundary tests: the straight-line window must produce
// exactly the cycles, PMC-visible miss counts and architectural state of
// the always-slow fetch path when execution crosses every kind of window
// edge — IL1 line boundaries, page boundaries, function boundaries
// (calls, returns, branches) — and when it stays inside one window for
// long streaks.

// fetchDisabled returns a CPU identical to New's but with the fetch
// fast-path gate forced shut, so every instruction takes fetchSlow. The
// observable surface (cycles, miss counters, registers) must not depend
// on which path ran.
func fetchDisabled(cfg Config, img *loader.Image) *CPU {
	il1, dl1, it, dt := proximaFronts()
	c := New(cfg, img, il1, dl1, it, dt, NewMemory())
	c.fetchZero = false
	c.fetchLo, c.fetchHi = 0, 0
	return c
}

// compareFetchPaths runs p on a fast-path CPU and a forced-slow CPU and
// compares everything observable.
func compareFetchPaths(t *testing.T, p *prog.Program) {
	t.Helper()
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	il1, dl1, it, dt := proximaFronts()
	fast := New(NewDefaultConfig(), img, il1, dl1, it, dt, NewMemory())
	slow := fetchDisabled(NewDefaultConfig(), img)
	for run := 0; run < 2; run++ { // second run exercises warmed caches
		fast.Reset(stackTop)
		slow.Reset(stackTop)
		if _, err := fast.Run(); err != nil {
			t.Fatalf("fast path run: %v", err)
		}
		if _, err := slow.Run(); err != nil {
			t.Fatalf("slow path run: %v", err)
		}
		if fast.Cycles() != slow.Cycles() {
			t.Fatalf("run %d: cycles %d (fast) != %d (slow)", run, fast.Cycles(), slow.Cycles())
		}
		if fast.Counters() != slow.Counters() {
			t.Fatalf("run %d: counters diverged:\n fast: %+v\n slow: %+v",
				run, fast.Counters(), slow.Counters())
		}
		// PMC-visible hierarchy events: miss counts must be identical.
		// (Raw Accesses/Hits on the IL1/ITLB legitimately differ — the
		// window's whole point is to skip redundant same-line touches —
		// and are not architecturally observable.)
		fi, si := fast.icacheC.Counters(), slow.icacheC.Counters()
		if fi.Misses != si.Misses || fi.ReadMisses != si.ReadMisses || fi.Fills != si.Fills {
			t.Fatalf("run %d: IL1 misses %d/%d/%d (fast) != %d/%d/%d (slow)",
				run, fi.Misses, fi.ReadMisses, fi.Fills, si.Misses, si.ReadMisses, si.Fills)
		}
		if fast.dcacheC.Counters() != slow.dcacheC.Counters() {
			t.Fatalf("run %d: DL1 counters diverged", run)
		}
		if fm, sm := fast.itlb.Counters().Misses, slow.itlb.Counters().Misses; fm != sm {
			t.Fatalf("run %d: ITLB misses %d (fast) != %d (slow)", run, fm, sm)
		}
		if fast.dtlb.Counters() != slow.dtlb.Counters() {
			t.Fatalf("run %d: DTLB counters diverged", run)
		}
		for r := isa.Reg(0); r < isa.NumRegs; r++ {
			if fast.Reg(r) != slow.Reg(r) {
				t.Fatalf("run %d: register %v diverged", run, r)
			}
		}
	}
}

// TestFetchFastPathLineBoundaries: a loop whose body spans several IL1
// lines, so every iteration crosses line boundaries (window re-arm) and
// takes a backward branch (window exit through a taken branch).
func TestFetchFastPathLineBoundaries(t *testing.T) {
	fb := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.L0, 0).
		MovI(isa.L1, 300).
		Label("loop")
	// 20 instructions per iteration: 2.5 IL1 lines (32B lines, 8
	// instructions each) — the loop body starts and ends mid-line.
	for i := 0; i < 17; i++ {
		fb = fb.AddI(isa.L2, isa.L0, int32(i))
	}
	fb = fb.AddI(isa.L0, isa.L0, 1).
		Cmp(isa.L0, isa.L1).
		Bl("loop").
		Halt()
	p := &prog.Program{Name: "lines", Entry: "main"}
	if err := p.AddFunction(fb.MustBuild()); err != nil {
		t.Fatal(err)
	}
	compareFetchPaths(t, p)
}

// TestFetchFastPathPageBoundary: a straight-line function longer than a
// 4KB page (1024 instructions), so sequential execution crosses a page
// boundary and the window must stop at the page edge to keep the ITLB
// stream exact.
func TestFetchFastPathPageBoundary(t *testing.T) {
	fb := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.L0, 0)
	for i := 0; i < 1100; i++ {
		fb = fb.AddI(isa.L0, isa.L0, 1)
	}
	fb = fb.Halt()
	p := &prog.Program{Name: "page", Entry: "main"}
	if err := p.AddFunction(fb.MustBuild()); err != nil {
		t.Fatal(err)
	}
	compareFetchPaths(t, p)
}

// TestFetchFastPathFunctionBoundaries: calls and returns (regular and
// leaf) plus a recursion deep enough to spill register windows — every
// transfer of control leaves the current function's window and must
// re-arm in the callee/caller.
func TestFetchFastPathFunctionBoundaries(t *testing.T) {
	leaf := prog.NewLeaf("leaf").
		AddI(isa.O0, isa.O0, 3).
		RetLeaf().
		MustBuild()
	callee := prog.NewFunc("callee", prog.MinFrame).
		Prologue().
		Add(isa.I0, isa.I0, isa.I0).
		Call("leaf").
		Epilogue().
		MustBuild()
	rec := prog.NewFunc("rec", prog.MinFrame).
		Prologue().
		CmpI(isa.I0, 0).
		Be("base").
		SubI(isa.O0, isa.I0, 1).
		Call("rec").
		Add(isa.I0, isa.O0, isa.I0).
		Ba("done").
		Label("base").
		MovI(isa.I0, 0).
		Label("done").
		Epilogue().
		MustBuild()
	main := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.L3, 0).
		MovI(isa.L4, 40).
		Label("loop").
		Mov(isa.O0, isa.L3).
		Call("callee").
		Mov(isa.O0, isa.L3).
		Call("rec").
		AddI(isa.L3, isa.L3, 1).
		Cmp(isa.L3, isa.L4).
		Bl("loop").
		Halt().
		MustBuild()
	p := &prog.Program{Name: "funcs", Entry: "main"}
	for _, f := range []*prog.Function{main, callee, leaf, rec} {
		if err := p.AddFunction(f); err != nil {
			t.Fatal(err)
		}
	}
	compareFetchPaths(t, p)
}

// TestFetchFastPathMemoryTraffic: loads and stores interleaved with
// fetches — DL1/DTLB traffic must be identical regardless of the fetch
// path, including conflict evictions between code and data in the L2.
func TestFetchFastPathMemoryTraffic(t *testing.T) {
	fb := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.L0, 0).
		MovI(isa.L1, 200).
		Label("loop").
		St(isa.L0, isa.FP, -4).
		Ld(isa.L2, isa.FP, -4).
		SllI(isa.L3, isa.L0, 4).
		St(isa.L2, isa.FP, -8).
		Ld(isa.L4, isa.FP, -8).
		Stb(isa.L0, isa.FP, -9).
		Ldub(isa.L5, isa.FP, -9).
		AddI(isa.L0, isa.L0, 1).
		Cmp(isa.L0, isa.L1).
		Bl("loop").
		Halt()
	p := &prog.Program{Name: "memtraffic", Entry: "main"}
	if err := p.AddFunction(fb.MustBuild()); err != nil {
		t.Fatal(err)
	}
	compareFetchPaths(t, p)
}
