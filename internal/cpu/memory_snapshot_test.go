package cpu

import (
	"testing"

	"dsr/internal/mem"
)

// Dirty-page journal and snapshot/restore semantics of the functional
// memory: Clear zeroes exactly what was written without releasing
// pages, Snapshot captures the dirty set, Restore reproduces it, and
// the journal never double-records a page within one era.

func TestMemoryClearZeroesInPlace(t *testing.T) {
	m := NewMemory()
	addrs := []mem.Addr{0x4000_0000, 0x4000_1000, 0x5000_0000, 0x6000_2000}
	for i, a := range addrs {
		m.StoreWord(a, uint32(i)+1)
	}
	if got := m.PagesAllocated(); got != 4 {
		t.Fatalf("PagesAllocated = %d, want 4", got)
	}
	resident := m.PagesResident()
	m.Clear()
	if got := m.PagesAllocated(); got != 0 {
		t.Fatalf("PagesAllocated after Clear = %d, want 0", got)
	}
	if got := m.PagesResident(); got != resident {
		t.Fatalf("Clear released pages: resident %d -> %d", resident, got)
	}
	for _, a := range addrs {
		if v := m.LoadWord(a); v != 0 {
			t.Fatalf("LoadWord(%#x) after Clear = %d, want 0", a, v)
		}
	}
}

func TestMemoryJournalOncePerEra(t *testing.T) {
	m := NewMemory()
	// Many writes to the same page must journal it once.
	for i := 0; i < 100; i++ {
		m.StoreWord(0x4000_0000+mem.Addr(i)*4, uint32(i))
	}
	if got := m.PagesAllocated(); got != 1 {
		t.Fatalf("PagesAllocated = %d, want 1 after same-page writes", got)
	}
	m.Clear()
	// After Clear (new era) the resident page must be journalled again.
	m.StoreWord(0x4000_0000, 7)
	if got := m.PagesAllocated(); got != 1 {
		t.Fatalf("PagesAllocated = %d, want 1 after post-Clear write", got)
	}
	if v := m.LoadWord(0x4000_0000); v != 7 {
		t.Fatalf("LoadWord = %d, want 7", v)
	}
	if v := m.LoadWord(0x4000_0004); v != 0 {
		t.Fatalf("stale word survived Clear: %d", v)
	}
}

func TestMemorySnapshotRestore(t *testing.T) {
	m := NewMemory()
	m.StoreWord(0x4000_0000, 11)
	m.StoreWord(0x5000_0000, 22)
	snap := m.Snapshot()
	if snap.Pages() != 2 {
		t.Fatalf("snapshot pages = %d, want 2", snap.Pages())
	}
	// Mutate: overwrite a captured word, dirty a third page.
	m.StoreWord(0x4000_0000, 99)
	m.StoreWord(0x6000_0000, 33)
	m.Restore(snap)
	if v := m.LoadWord(0x4000_0000); v != 11 {
		t.Fatalf("restored word = %d, want 11", v)
	}
	if v := m.LoadWord(0x5000_0000); v != 22 {
		t.Fatalf("restored word = %d, want 22", v)
	}
	if v := m.LoadWord(0x6000_0000); v != 0 {
		t.Fatalf("word outside snapshot survived Restore: %d", v)
	}
	if got := m.PagesAllocated(); got != 2 {
		t.Fatalf("PagesAllocated after Restore = %d, want 2 (the snapshot set)", got)
	}
	// Restored pages are journalled: a Clear must drop them again.
	m.Clear()
	if v := m.LoadWord(0x4000_0000); v != 0 {
		t.Fatalf("restored page survived Clear: %d", v)
	}
}

func TestMemorySnapshotIsolation(t *testing.T) {
	// A snapshot must be an independent copy: writes after Snapshot do
	// not leak into it, and Restore can be applied repeatedly.
	m := NewMemory()
	m.StoreWord(0x4000_0000, 5)
	snap := m.Snapshot()
	m.StoreWord(0x4000_0000, 6)
	for i := 0; i < 3; i++ {
		m.Restore(snap)
		if v := m.LoadWord(0x4000_0000); v != 5 {
			t.Fatalf("restore %d: word = %d, want 5", i, v)
		}
		m.StoreWord(0x4000_0000, 100+uint32(i))
	}
}
