// Package layout provides static cache-layout analysis and the
// cache-aware positioning optimisation the paper cites as the
// deterministic alternative to randomisation (Mezzetti & Vardanega,
// "A rapid cache-aware procedure positioning optimization to favor
// incremental development", RTAS 2013 — reference [12], discussed in
// §II for incremental integration).
//
// Two facilities:
//
//   - Conflicts computes, for a concrete placement, which pairs of
//     memory objects alias in a given cache's sets — the diagnostic that
//     explains a "bad and rare cache layout" like the one the paper's
//     COTS binary suffered; and
//
//   - Optimize produces a placement that greedily pads objects apart so
//     that high-weight pairs (callers/callees, producer/consumer data)
//     do not alias — one fixed good layout, the opposite philosophy to
//     DSR's "make all layouts equally likely".
package layout

import (
	"fmt"
	"sort"

	"dsr/internal/cache"
	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/mem"
	"dsr/internal/prog"
)

// setSpan returns the half-open interval(s) of set indices covered by
// [base, base+size) in cfg, as a bitset over the cache's sets.
func setBits(base, size mem.Addr, cfg cache.Config) []uint64 {
	sets := cfg.Sets()
	bits := make([]uint64, (sets+63)/64)
	if size == 0 {
		return bits
	}
	first := base / mem.Addr(cfg.LineSize)
	last := (base + size - 1) / mem.Addr(cfg.LineSize)
	if last-first >= mem.Addr(sets) {
		for i := range bits {
			bits[i] = ^uint64(0)
		}
		trimBits(bits, sets)
		return bits
	}
	for la := first; la <= last; la++ {
		s := int(la % mem.Addr(sets))
		bits[s/64] |= 1 << (s % 64)
	}
	return bits
}

func trimBits(bits []uint64, sets int) {
	if rem := sets % 64; rem != 0 {
		bits[len(bits)-1] &= (1 << rem) - 1
	}
}

func popcount(bits []uint64) int {
	n := 0
	for _, w := range bits {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

func overlap(a, b []uint64) int {
	n := 0
	for i := range a {
		w := a[i] & b[i]
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Object is one placed memory object for analysis.
type Object struct {
	Name string
	Base mem.Addr
	Size mem.Addr
}

// Conflict reports the set aliasing between two objects.
type Conflict struct {
	A, B string
	// SharedSets is the number of cache sets both objects map to.
	SharedSets int
	// FracA / FracB are the fraction of each object's sets that alias.
	FracA, FracB float64
}

// Conflicts computes all pairwise set conflicts of at least minShared
// sets under cfg, sorted by shared sets descending. For a direct-mapped
// cache these are exactly the pairs that can evict each other.
func Conflicts(objs []Object, cfg cache.Config, minShared int) []Conflict {
	type withBits struct {
		Object
		bits []uint64
		sets int
	}
	items := make([]withBits, 0, len(objs))
	for _, o := range objs {
		b := setBits(o.Base, o.Size, cfg)
		items = append(items, withBits{Object: o, bits: b, sets: popcount(b)})
	}
	var out []Conflict
	for i := 0; i < len(items); i++ {
		for j := i + 1; j < len(items); j++ {
			s := overlap(items[i].bits, items[j].bits)
			if s < minShared || s == 0 {
				continue
			}
			c := Conflict{A: items[i].Name, B: items[j].Name, SharedSets: s}
			if items[i].sets > 0 {
				c.FracA = float64(s) / float64(items[i].sets)
			}
			if items[j].sets > 0 {
				c.FracB = float64(s) / float64(items[j].sets)
			}
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].SharedSets != out[j].SharedSets {
			return out[i].SharedSets > out[j].SharedSets
		}
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// FromPlacement assembles analysis objects from a placement and the
// program that defines the sizes.
func FromPlacement(p *prog.Program, pl loader.Placement) []Object {
	var out []Object
	for _, f := range p.Functions {
		if base, ok := pl[f.Name]; ok {
			out = append(out, Object{Name: f.Name, Base: base, Size: f.SizeBytes()})
		}
	}
	for _, d := range p.Data {
		if base, ok := pl[d.Name]; ok {
			out = append(out, Object{Name: d.Name, Base: base, Size: d.Size})
		}
	}
	return out
}

// Weights assigns an interaction weight to unordered object pairs: how
// costly it is for the pair to alias. StaticCallWeights derives code
// weights from the call graph; callers add data-pair weights from
// domain knowledge or profiling.
type Weights map[[2]string]float64

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// Add accumulates weight onto a pair.
func (w Weights) Add(a, b string, v float64) { w[pairKey(a, b)] += v }

// Get returns a pair's weight.
func (w Weights) Get(a, b string) float64 { return w[pairKey(a, b)] }

// StaticCallWeights weights each caller/callee pair by its number of
// static call sites: functions that call each other alternate in the
// instruction stream, so aliasing them is expensive.
func StaticCallWeights(p *prog.Program) Weights {
	w := Weights{}
	for _, f := range p.Functions {
		for i := range f.Code {
			if f.Code[i].Op == isa.Call {
				w.Add(f.Name, f.Code[i].Sym, 1)
			}
		}
	}
	return w
}

// Optimize produces a cache-aware sequential placement: objects are laid
// out in definition order, but before each placement the offset is
// advanced (up to one way size, in line-size steps) to the position that
// minimises the weighted set overlap with everything already placed.
// The result is one deterministic layout engineered to avoid the
// conflicts randomisation would merely make improbable.
func Optimize(p *prog.Program, ccfg cache.Config, w Weights, cfg loader.SequentialConfig) (loader.Placement, error) {
	if err := ccfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.FuncAlign == 0 {
		cfg.FuncAlign = isa.InstrBytes
	}
	pl := loader.Placement{}
	type placed struct {
		name string
		bits []uint64
	}
	var done []placed

	cost := func(name string, base, size mem.Addr) float64 {
		bits := setBits(base, size, ccfg)
		var c float64
		for _, q := range done {
			if weight := w.Get(name, q.name); weight > 0 {
				c += weight * float64(overlap(bits, q.bits))
			}
		}
		return c
	}

	place := func(space *mem.Space, name string, size, align mem.Addr) error {
		if align == 0 {
			align = mem.DoubleWord
		}
		base := mem.Align(space.Base()+space.Used(), align)
		bestBase, bestCost := base, cost(name, base, size)
		step := mem.Addr(ccfg.LineSize)
		if step < align {
			step = align
		}
		for off := step; off < mem.Addr(ccfg.WaySize()) && bestCost > 0; off += step {
			cand := mem.Align(base+off, align)
			if c := cost(name, cand, size); c < bestCost {
				bestBase, bestCost = cand, c
			}
		}
		obj := &mem.Object{Name: name, Size: size, Align: align}
		if err := space.PlaceAt(obj, bestBase); err != nil {
			return err
		}
		pl[name] = bestBase
		done = append(done, placed{name: name, bits: setBits(bestBase, size, ccfg)})
		return nil
	}

	code := mem.NewSpace(cfg.CodeBase, cfg.CodeSize)
	for _, f := range p.Functions {
		if err := place(code, f.Name, f.SizeBytes(), cfg.FuncAlign); err != nil {
			return nil, fmt.Errorf("layout: %w", err)
		}
	}
	data := mem.NewSpace(cfg.DataBase, cfg.DataSize)
	for _, d := range p.Data {
		if err := place(data, d.Name, d.Size, d.Align); err != nil {
			return nil, fmt.Errorf("layout: %w", err)
		}
	}
	return pl, nil
}

// TotalWeightedOverlap scores a placement under the weights: the
// objective Optimize minimises, exposed so layouts can be compared.
func TotalWeightedOverlap(objs []Object, ccfg cache.Config, w Weights) float64 {
	bits := make(map[string][]uint64, len(objs))
	for _, o := range objs {
		bits[o.Name] = setBits(o.Base, o.Size, ccfg)
	}
	var total float64
	for i := 0; i < len(objs); i++ {
		for j := i + 1; j < len(objs); j++ {
			if weight := w.Get(objs[i].Name, objs[j].Name); weight > 0 {
				total += weight * float64(overlap(bits[objs[i].Name], bits[objs[j].Name]))
			}
		}
	}
	return total
}
