package layout

import (
	"testing"
	"testing/quick"

	"dsr/internal/cache"
	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/mem"
	"dsr/internal/prog"
)

func l2cfg() cache.Config {
	return cache.Config{
		Name: "L2", Size: 32 * 1024, LineSize: 32, Ways: 1,
		Write: cache.WriteBackAllocate,
	}
}

func TestConflictsDetectsAliasing(t *testing.T) {
	cfg := l2cfg()
	objs := []Object{
		{Name: "a", Base: 0x0000, Size: 1024},
		{Name: "b", Base: 0x8000, Size: 1024}, // 32KB apart: full alias with a
		{Name: "c", Base: 0x1000, Size: 1024}, // disjoint sets
		{Name: "d", Base: 0x8200, Size: 512},  // aliases the middle of a
	}
	cs := Conflicts(objs, cfg, 1)
	if len(cs) == 0 {
		t.Fatal("no conflicts found")
	}
	top := cs[0]
	if top.A != "a" || top.B != "b" || top.SharedSets != 32 {
		t.Errorf("top conflict=%+v, want a/b with 32 sets", top)
	}
	if top.FracA != 1 || top.FracB != 1 {
		t.Errorf("full alias fractions=%f/%f", top.FracA, top.FracB)
	}
	// a/d partial alias: d covers 16 sets inside a.
	found := false
	for _, c := range cs {
		if c.A == "a" && c.B == "d" {
			found = true
			if c.SharedSets != 16 {
				t.Errorf("a/d shared=%d, want 16", c.SharedSets)
			}
		}
		if (c.A == "a" && c.B == "c") || (c.A == "c" && c.B == "b") {
			t.Errorf("spurious conflict %+v", c)
		}
	}
	if !found {
		t.Error("a/d conflict missed")
	}
}

func TestConflictsHugeObjectCoversAllSets(t *testing.T) {
	cfg := l2cfg()
	objs := []Object{
		{Name: "scrub", Base: 0x10000, Size: 64 * 1024}, // 2x the cache
		{Name: "x", Base: 0x0000, Size: 64},
	}
	cs := Conflicts(objs, cfg, 1)
	if len(cs) != 1 || cs[0].FracB != 1 {
		t.Fatalf("cache-sized object must alias everything: %+v", cs)
	}
}

func TestWeights(t *testing.T) {
	w := Weights{}
	w.Add("b", "a", 2)
	w.Add("a", "b", 3)
	if w.Get("a", "b") != 5 || w.Get("b", "a") != 5 {
		t.Error("weights not symmetric/accumulating")
	}
	if w.Get("a", "c") != 0 {
		t.Error("phantom weight")
	}
}

func testProgram(t *testing.T) *prog.Program {
	t.Helper()
	p := &prog.Program{Name: "t", Entry: "main"}
	callee := prog.NewFunc("callee", prog.MinFrame).Prologue().Epilogue().MustBuild()
	main := prog.NewFunc("main", prog.MinFrame).
		Prologue().Call("callee").Call("callee").Halt().MustBuild()
	for _, f := range []*prog.Function{main, callee} {
		if err := p.AddFunction(f); err != nil {
			t.Fatal(err)
		}
	}
	// Two data objects that would alias under naive placement: a big one
	// covering many sets and a small hot one.
	if err := p.AddData(&prog.DataObject{Name: "big", Size: 32 * 1024, Align: 8}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddData(&prog.DataObject{Name: "hot", Size: 1024, Align: 8}); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStaticCallWeights(t *testing.T) {
	w := StaticCallWeights(testProgram(t))
	if w.Get("main", "callee") != 2 {
		t.Errorf("call weight=%f, want 2", w.Get("main", "callee"))
	}
}

func TestOptimizeReducesWeightedOverlap(t *testing.T) {
	p := testProgram(t)
	ccfg := l2cfg()
	w := StaticCallWeights(p)
	w.Add("big", "hot", 10)

	seqCfg := loader.DefaultSequentialConfig()
	seq, err := loader.LayoutSequential(p, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	naive := TotalWeightedOverlap(FromPlacement(p, seq.Placement), ccfg, w)

	opt, err := Optimize(p, ccfg, w, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	optimised := TotalWeightedOverlap(FromPlacement(p, opt), ccfg, w)
	// "big" covers the whole cache, so "hot" must alias somewhere; the
	// optimiser cannot do better than hot's own set count, but must not
	// do worse than naive.
	if optimised > naive {
		t.Errorf("optimiser made it worse: %f > %f", optimised, naive)
	}

	// The optimised placement must still load and run.
	img, err := loader.BuildImage(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if img.Entry == 0 {
		t.Error("no entry")
	}
}

func TestOptimizeSeparatesAliasingPair(t *testing.T) {
	// Two same-size objects exactly one cache apart under naive layout.
	p := &prog.Program{Name: "t", Entry: "main"}
	main := prog.NewFunc("main", prog.MinFrame).Prologue().Halt().MustBuild()
	if err := p.AddFunction(main); err != nil {
		t.Fatal(err)
	}
	if err := p.AddData(&prog.DataObject{Name: "a", Size: 1024, Align: 8}); err != nil {
		t.Fatal(err)
	}
	// Pad object pushes "b" exactly one cache size past "a".
	if err := p.AddData(&prog.DataObject{Name: "pad", Size: 31 * 1024, Align: 8}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddData(&prog.DataObject{Name: "b", Size: 1024, Align: 8}); err != nil {
		t.Fatal(err)
	}
	ccfg := l2cfg()
	w := Weights{}
	w.Add("a", "b", 1)

	seqCfg := loader.DefaultSequentialConfig()
	seq, err := loader.LayoutSequential(p, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	naive := TotalWeightedOverlap(FromPlacement(p, seq.Placement), ccfg, w)
	if naive == 0 {
		t.Fatal("test setup: naive layout should alias a and b")
	}
	opt, err := Optimize(p, ccfg, w, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := TotalWeightedOverlap(FromPlacement(p, opt), ccfg, w); got != 0 {
		t.Errorf("optimiser left %f weighted overlap, want 0", got)
	}
}

// Property: Optimize never overlaps objects in memory and preserves
// word alignment of functions.
func TestOptimizePlacementValidProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		p := &prog.Program{Name: "t", Entry: "main"}
		main := prog.NewFunc("main", prog.MinFrame).Prologue().Halt().MustBuild()
		if err := p.AddFunction(main); err != nil {
			return false
		}
		for i, sz := range sizes {
			if i >= 12 {
				break
			}
			d := &prog.DataObject{
				Name: string(rune('a'+i)) + "obj", Size: mem.Addr(sz%4096) + 8, Align: 8,
			}
			if err := p.AddData(d); err != nil {
				return false
			}
		}
		w := Weights{}
		for i := 0; i+1 < len(p.Data); i++ {
			w.Add(p.Data[i].Name, p.Data[i+1].Name, float64(i+1))
		}
		pl, err := Optimize(p, l2cfg(), w, loader.DefaultSequentialConfig())
		if err != nil {
			return false
		}
		objs := FromPlacement(p, pl)
		for i := 0; i < len(objs); i++ {
			if !mem.IsAligned(objs[i].Base, isa.InstrBytes) {
				return false
			}
			for j := i + 1; j < len(objs); j++ {
				a, b := objs[i], objs[j]
				if a.Base < b.Base+b.Size && b.Base < a.Base+a.Size {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
