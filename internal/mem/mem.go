// Package mem provides the basic address arithmetic and memory-object
// bookkeeping shared by the whole simulator: physical addresses, alignment
// helpers, object descriptors (a named, sized, aligned region such as a
// function body or a data table) and a simple address-space allocator used
// by the deterministic loader and by the randomising runtime alike.
package mem

import (
	"fmt"
	"sort"
)

// Addr is a physical byte address in the simulated machine.
// The simulated LEON3 platform has a 32-bit physical address space, but we
// carry addresses in 64 bits so that intermediate arithmetic cannot wrap.
type Addr uint64

// WordSize is the architectural word size in bytes (SPARC v8 is 32-bit).
const WordSize = 4

// DoubleWord is the stack alignment required by the SPARC v8 ABI; the
// paper (§III.B.2) stresses that random stack offsets must be multiples
// of 8 to keep the stack pointer double-word aligned.
const DoubleWord = 8

// PageSize is the MMU page size used by the TLB model.
const PageSize = 4096

// Align rounds a up to the next multiple of align. align must be a power
// of two; Align panics otherwise because a misaligned allocator is a
// programming error, not a runtime condition.
func Align(a Addr, align Addr) Addr {
	if align == 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d is not a power of two", align))
	}
	return (a + align - 1) &^ (align - 1)
}

// IsAligned reports whether a is a multiple of align (power of two).
func IsAligned(a Addr, align Addr) bool {
	if align == 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: alignment %d is not a power of two", align))
	}
	return a&(align-1) == 0
}

// Page returns the page number containing a.
func Page(a Addr) Addr { return a / PageSize }

// PageOffset returns the offset of a within its page.
func PageOffset(a Addr) Addr { return a % PageSize }

// ObjectKind distinguishes the classes of memory object the randomiser
// can move. The paper randomises functions (code) and stack frames; data
// objects are placed through the randomised pool allocator as well.
type ObjectKind int

const (
	// KindCode is a function body.
	KindCode ObjectKind = iota
	// KindData is a global data object (tables, buffers, constants).
	KindData
	// KindStack is a stack region.
	KindStack
	// KindMetadata is DSR runtime metadata (pointer tables, offset tables).
	KindMetadata
)

func (k ObjectKind) String() string {
	switch k {
	case KindCode:
		return "code"
	case KindData:
		return "data"
	case KindStack:
		return "stack"
	case KindMetadata:
		return "metadata"
	default:
		return fmt.Sprintf("ObjectKind(%d)", int(k))
	}
}

// Object describes a placed memory object. Base is assigned by a loader
// or by the DSR runtime; Size and Align are fixed at build time.
type Object struct {
	Name  string
	Kind  ObjectKind
	Size  Addr
	Align Addr
	Base  Addr
}

// End returns the first address past the object.
func (o *Object) End() Addr { return o.Base + o.Size }

// Contains reports whether a falls inside the object's placed range.
func (o *Object) Contains(a Addr) bool { return a >= o.Base && a < o.End() }

// Overlaps reports whether two placed objects share any byte.
func (o *Object) Overlaps(p *Object) bool {
	return o.Base < p.End() && p.Base < o.End()
}

func (o *Object) String() string {
	return fmt.Sprintf("%s %q [%#x,%#x) size=%d", o.Kind, o.Name, o.Base, o.End(), o.Size)
}

// Space is a simple bump allocator over a contiguous address range,
// used by the deterministic loader to lay out images sequentially and by
// the pool allocator to carve page-diverse chunks.
type Space struct {
	base Addr
	end  Addr
	next Addr
	objs []*Object

	// scratch is the page-range buffer PagesTouchedCount reuses across
	// calls so per-reboot statistics stay allocation-free.
	scratch []pageRange
}

// pageRange is an inclusive page-number interval covered by one object.
type pageRange struct{ lo, hi Addr }

// NewSpace returns an allocator over [base, base+size).
func NewSpace(base, size Addr) *Space {
	return &Space{base: base, end: base + size, next: base}
}

// Base returns the first address of the space.
func (s *Space) Base() Addr { return s.base }

// End returns the first address past the space.
func (s *Space) End() Addr { return s.end }

// Used returns the number of bytes consumed so far, including padding.
func (s *Space) Used() Addr { return s.next - s.base }

// Remaining returns the bytes still available.
func (s *Space) Remaining() Addr { return s.end - s.next }

// Objects returns the objects placed so far, in placement order.
func (s *Space) Objects() []*Object { return s.objs }

// Place assigns the next suitably aligned address to obj and records it.
// It returns an error if the space is exhausted.
func (s *Space) Place(obj *Object) error {
	align := obj.Align
	if align == 0 {
		align = WordSize
	}
	base := Align(s.next, align)
	if base+obj.Size > s.end {
		return fmt.Errorf("mem: space exhausted placing %q: need %d bytes at %#x, space ends at %#x",
			obj.Name, obj.Size, base, s.end)
	}
	obj.Base = base
	s.next = base + obj.Size
	s.objs = append(s.objs, obj)
	return nil
}

// PlaceAt assigns a caller-chosen base address to obj and records it.
// The address must be suitably aligned, inside the space, and must not
// overlap any previously placed object.
func (s *Space) PlaceAt(obj *Object, base Addr) error {
	align := obj.Align
	if align == 0 {
		align = WordSize
	}
	if !IsAligned(base, align) {
		return fmt.Errorf("mem: %q requires %d-byte alignment, got %#x", obj.Name, align, base)
	}
	if base < s.base || base+obj.Size > s.end {
		return fmt.Errorf("mem: %q at [%#x,%#x) outside space [%#x,%#x)",
			obj.Name, base, base+obj.Size, s.base, s.end)
	}
	placed := *obj
	placed.Base = base
	for _, o := range s.objs {
		if o.Overlaps(&placed) {
			return fmt.Errorf("mem: %q at [%#x,%#x) overlaps %s", obj.Name, base, base+obj.Size, o)
		}
	}
	obj.Base = base
	s.objs = append(s.objs, obj)
	if base+obj.Size > s.next {
		s.next = base + obj.Size
	}
	return nil
}

// Reset forgets all placements, allowing the space to be reused for a
// fresh layout (a new DSR run).
func (s *Space) Reset() {
	s.next = s.base
	s.objs = s.objs[:0]
}

// FindByAddr returns the object containing a, or nil.
func (s *Space) FindByAddr(a Addr) *Object {
	for _, o := range s.objs {
		if o.Contains(a) {
			return o
		}
	}
	return nil
}

// PagesTouched returns the sorted set of distinct page numbers covered by
// the placed objects. The DSR pool allocator uses page diversity to
// randomise TLB contents (§III.B.5).
//
// Each object covers one contiguous page range, so instead of hashing
// every page into a set and sorting the keys (the previous
// implementation: O(pages) map inserts plus an O(p log p) sort), the
// object ranges are sorted — O(n log n) in the object count, which is
// much smaller than the page count — and the pages emitted in one
// ascending merge that skips overlaps.
func (s *Space) PagesTouched() []Addr {
	if len(s.objs) == 0 {
		return nil
	}
	ranges := make([]pageRange, len(s.objs))
	total := 0
	for i, o := range s.objs {
		r := pageRange{Page(o.Base), Page(o.End() - 1)}
		ranges[i] = r
		total += int(r.hi - r.lo + 1)
	}
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].lo < ranges[j].lo })
	pages := make([]Addr, 0, total) // upper bound; overlaps emit once
	next := ranges[0].lo            // first page not yet emitted
	for _, r := range ranges {
		lo := r.lo
		if lo < next {
			lo = next // skip the part an earlier range already emitted
		}
		for p := lo; p <= r.hi; p++ {
			pages = append(pages, p)
		}
		if r.hi >= next {
			next = r.hi + 1
		}
	}
	return pages
}

// PagesTouchedCount returns len(PagesTouched()) without materialising
// the page list: the ranges are merged with the same sorted sweep but
// only counted. Hot callers that need the cardinality for statistics
// (BootStats is computed on every DSR reboot) use this to avoid
// allocating a page slice per run.
func (s *Space) PagesTouchedCount() int {
	if len(s.objs) == 0 {
		return 0
	}
	ranges := s.scratch[:0]
	for _, o := range s.objs {
		ranges = append(ranges, pageRange{Page(o.Base), Page(o.End() - 1)})
	}
	s.scratch = ranges
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].lo < ranges[j].lo })
	n := 0
	next := ranges[0].lo
	for _, r := range ranges {
		lo := r.lo
		if lo < next {
			lo = next
		}
		if r.hi >= lo {
			n += int(r.hi - lo + 1)
		}
		if r.hi >= next {
			next = r.hi + 1
		}
	}
	return n
}

// Cycles counts processor clock cycles. All latency accounting in the
// simulator is expressed in Cycles.
type Cycles uint64

// Backend is any component that can service a memory transaction and
// report its latency: a cache level, the bus, or the DRAM controller.
// Transactions never fail; the simulated machine has no faulting memory.
type Backend interface {
	// Read fetches size bytes at addr and returns the latency.
	Read(addr Addr, size int) Cycles
	// Write stores size bytes at addr and returns the latency.
	Write(addr Addr, size int) Cycles
}
