package mem

import (
	"testing"
	"testing/quick"
)

func TestAlign(t *testing.T) {
	cases := []struct {
		a, align, want Addr
	}{
		{0, 4, 0},
		{1, 4, 4},
		{3, 4, 4},
		{4, 4, 4},
		{5, 8, 8},
		{8, 8, 8},
		{9, 8, 16},
		{4095, 4096, 4096},
		{4096, 4096, 4096},
		{4097, 4096, 8192},
	}
	for _, c := range cases {
		if got := Align(c.a, c.align); got != c.want {
			t.Errorf("Align(%d,%d)=%d, want %d", c.a, c.align, got, c.want)
		}
	}
}

func TestAlignPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Align(1, 3) did not panic")
		}
	}()
	Align(1, 3)
}

func TestIsAligned(t *testing.T) {
	if !IsAligned(16, 8) {
		t.Error("16 should be 8-aligned")
	}
	if IsAligned(12, 8) {
		t.Error("12 should not be 8-aligned")
	}
	if !IsAligned(0, 4096) {
		t.Error("0 should be page-aligned")
	}
}

// Property: Align result is always aligned, never smaller than the input,
// and within one alignment unit of the input.
func TestAlignProperties(t *testing.T) {
	f := func(a uint32, shift uint8) bool {
		align := Addr(1) << (shift % 13)
		got := Align(Addr(a), align)
		return IsAligned(got, align) && got >= Addr(a) && got < Addr(a)+align
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageHelpers(t *testing.T) {
	if Page(0) != 0 || Page(4095) != 0 || Page(4096) != 1 {
		t.Error("Page boundaries wrong")
	}
	if PageOffset(4097) != 1 {
		t.Errorf("PageOffset(4097)=%d, want 1", PageOffset(4097))
	}
}

func TestObjectContainsOverlaps(t *testing.T) {
	a := &Object{Name: "a", Size: 100, Base: 1000}
	b := &Object{Name: "b", Size: 50, Base: 1050}
	c := &Object{Name: "c", Size: 50, Base: 1100}
	if !a.Contains(1000) || !a.Contains(1099) || a.Contains(1100) {
		t.Error("Contains boundary wrong")
	}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b should overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("a and c should not overlap")
	}
}

func TestSpacePlaceSequential(t *testing.T) {
	s := NewSpace(0x1000, 0x1000)
	o1 := &Object{Name: "f1", Kind: KindCode, Size: 100, Align: 4}
	o2 := &Object{Name: "f2", Kind: KindCode, Size: 60, Align: 8}
	if err := s.Place(o1); err != nil {
		t.Fatal(err)
	}
	if err := s.Place(o2); err != nil {
		t.Fatal(err)
	}
	if o1.Base != 0x1000 {
		t.Errorf("o1.Base=%#x, want 0x1000", o1.Base)
	}
	if o2.Base != Align(0x1000+100, 8) {
		t.Errorf("o2.Base=%#x, want %#x", o2.Base, Align(0x1000+100, 8))
	}
	if o1.Overlaps(o2) {
		t.Error("sequential placements overlap")
	}
}

func TestSpaceExhaustion(t *testing.T) {
	s := NewSpace(0, 64)
	if err := s.Place(&Object{Name: "big", Size: 65, Align: 4}); err == nil {
		t.Error("expected exhaustion error")
	}
	if err := s.Place(&Object{Name: "fits", Size: 64, Align: 4}); err != nil {
		t.Errorf("64-byte object should fit: %v", err)
	}
	if err := s.Place(&Object{Name: "more", Size: 1, Align: 4}); err == nil {
		t.Error("expected exhaustion after space is full")
	}
}

func TestSpacePlaceAt(t *testing.T) {
	s := NewSpace(0x2000, 0x2000)
	a := &Object{Name: "a", Size: 256, Align: 8}
	if err := s.PlaceAt(a, 0x2100); err != nil {
		t.Fatal(err)
	}
	// Overlap rejected.
	b := &Object{Name: "b", Size: 16, Align: 8}
	if err := s.PlaceAt(b, 0x21f8); err == nil {
		t.Error("expected overlap error")
	}
	// Misalignment rejected.
	if err := s.PlaceAt(b, 0x2204); err == nil {
		t.Error("expected alignment error")
	}
	// Out of range rejected.
	if err := s.PlaceAt(b, 0x3ff8); err == nil {
		t.Error("expected out-of-range error")
	}
	if err := s.PlaceAt(b, 0x2200); err != nil {
		t.Errorf("valid placement rejected: %v", err)
	}
}

func TestSpaceReset(t *testing.T) {
	s := NewSpace(0, 1024)
	if err := s.Place(&Object{Name: "x", Size: 512, Align: 4}); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if s.Used() != 0 || len(s.Objects()) != 0 {
		t.Error("Reset did not clear the space")
	}
	if err := s.Place(&Object{Name: "y", Size: 1024, Align: 4}); err != nil {
		t.Errorf("full-size placement after Reset failed: %v", err)
	}
}

func TestSpaceFindByAddr(t *testing.T) {
	s := NewSpace(0, 4096)
	a := &Object{Name: "a", Size: 100, Align: 4}
	if err := s.Place(a); err != nil {
		t.Fatal(err)
	}
	if got := s.FindByAddr(50); got != a {
		t.Errorf("FindByAddr(50)=%v, want a", got)
	}
	if got := s.FindByAddr(200); got != nil {
		t.Errorf("FindByAddr(200)=%v, want nil", got)
	}
}

func TestPagesTouched(t *testing.T) {
	s := NewSpace(0, 4*PageSize)
	// One object spanning two pages, one inside a later page.
	if err := s.PlaceAt(&Object{Name: "span", Size: PageSize, Align: 8}, PageSize/2); err != nil {
		t.Fatal(err)
	}
	if err := s.PlaceAt(&Object{Name: "tail", Size: 64, Align: 8}, 3*PageSize); err != nil {
		t.Fatal(err)
	}
	pages := s.PagesTouched()
	want := []Addr{0, 1, 3}
	if len(pages) != len(want) {
		t.Fatalf("pages=%v, want %v", pages, want)
	}
	for i := range want {
		if pages[i] != want[i] {
			t.Fatalf("pages=%v, want %v", pages, want)
		}
	}
}

// Property: objects placed by Place never overlap pairwise.
func TestPlaceNoOverlapProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := NewSpace(0x10000, 1<<20)
		var placed []*Object
		for i, sz := range sizes {
			if sz == 0 {
				continue
			}
			o := &Object{Name: "o", Size: Addr(sz), Align: 8}
			if err := s.Place(o); err != nil {
				return true // exhaustion is fine
			}
			_ = i
			placed = append(placed, o)
		}
		for i := 0; i < len(placed); i++ {
			for j := i + 1; j < len(placed); j++ {
				if placed[i].Overlaps(placed[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	if KindCode.String() != "code" || KindData.String() != "data" ||
		KindStack.String() != "stack" || KindMetadata.String() != "metadata" {
		t.Error("ObjectKind.String mismatch")
	}
	if ObjectKind(99).String() == "" {
		t.Error("unknown kind should still stringify")
	}
}
