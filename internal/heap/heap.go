// Package heap implements the DSR runtime's randomising memory
// allocator, modelled on the HeapLayers/DieHard design the paper builds
// on (§III.B.3, §III.B.5): memory objects are placed in fresh chunks
// carved from a large pool, at a random offset between zero and the
// maximum cache way size, so that the object can land on any cache line
// of a way. Chunks are page-aligned and the pool spans a diverse set of
// pages, which is what randomises the TLBs. Separate pools are used for
// code and for data, as in DieHard.
package heap

import (
	"fmt"

	"dsr/internal/mem"
	"dsr/internal/prng"
)

// Pool carves page-aligned chunks from a fixed region and places one
// object per chunk at a random aligned offset.
type Pool struct {
	name        string
	space       *mem.Space
	offsetBound int
	align       int
	src         prng.Source

	allocs int

	// chunks recycles the chunk records handed to the space: the pool
	// allocates with the same object sequence every run (placement order
	// is drawn before allocation), so after a Reset each record — name
	// string included — is reused in place and a steady-state reboot
	// performs no heap allocation here.
	chunks []*mem.Object
	live   int
}

// NewPool builds a pool over [base, base+size). offsetBound is the
// exclusive upper bound of the random starting offset (the paper sets it
// to the L2 way size so all cache levels are randomised, §III.B.4);
// align is the offset granularity (8 keeps SPARC double-word alignment).
func NewPool(name string, base, size mem.Addr, offsetBound, align int, src prng.Source) *Pool {
	if offsetBound <= 0 || align <= 0 || offsetBound%align != 0 {
		panic(fmt.Sprintf("heap %q: offsetBound %d must be positive and divisible by align %d",
			name, offsetBound, align))
	}
	if !mem.IsAligned(base, mem.PageSize) {
		panic(fmt.Sprintf("heap %q: base %#x not page-aligned", name, base))
	}
	if src == nil {
		panic(fmt.Sprintf("heap %q: nil random source", name))
	}
	return &Pool{
		name:        name,
		space:       mem.NewSpace(base, size),
		offsetBound: offsetBound,
		align:       align,
		src:         src,
	}
}

// OffsetBound returns the pool's random-offset bound.
func (p *Pool) OffsetBound() int { return p.offsetBound }

// Allocs returns the number of objects placed since the last Reset.
func (p *Pool) Allocs() int { return p.allocs }

// Reset forgets all placements and reseeds the random source: the start
// of a new DSR run (partition reboot, §IV).
func (p *Pool) Reset(seed uint64) {
	p.space.Reset()
	p.src.Seed(seed)
	p.allocs = 0
	p.live = 0
}

// Allocate places obj in a fresh page-aligned chunk at a random offset
// and returns the assigned base address.
func (p *Pool) Allocate(obj *mem.Object) (mem.Addr, error) {
	offset := mem.Addr(prng.AlignedOffset(p.src, p.offsetBound, p.align))
	// Honour the object's own alignment on top of the pool granularity.
	if obj.Align > mem.Addr(p.align) {
		offset = mem.Align(offset, obj.Align)
		if offset >= mem.Addr(p.offsetBound) {
			offset = 0
		}
	}
	chunkSize := mem.Align(offset+obj.Size, mem.PageSize)
	var chunk *mem.Object
	if p.live < len(p.chunks) {
		chunk = p.chunks[p.live]
	} else {
		chunk = &mem.Object{}
		p.chunks = append(p.chunks, chunk)
	}
	p.live++
	const suffix = ".chunk"
	name := chunk.Name
	if len(name) != len(obj.Name)+len(suffix) || name[:len(obj.Name)] != obj.Name {
		name = obj.Name + suffix
	}
	*chunk = mem.Object{
		Name:  name,
		Kind:  obj.Kind,
		Size:  chunkSize,
		Align: mem.PageSize,
	}
	if err := p.space.Place(chunk); err != nil {
		return 0, fmt.Errorf("heap %q: %w", p.name, err)
	}
	obj.Base = chunk.Base + offset
	p.allocs++
	return obj.Base, nil
}

// PagesTouched returns the distinct pages backing current allocations;
// the TLB-randomisation property (§III.B.5) is that this set is large
// and varies across runs.
func (p *Pool) PagesTouched() []mem.Addr { return p.space.PagesTouched() }

// PagesTouchedCount returns len(PagesTouched()) without allocating the
// page list; reboot statistics use it on the per-run path.
func (p *Pool) PagesTouchedCount() int { return p.space.PagesTouchedCount() }

// Used returns the bytes of pool address space consumed.
func (p *Pool) Used() mem.Addr { return p.space.Used() }
