package heap

import (
	"testing"
	"testing/quick"

	"dsr/internal/mem"
	"dsr/internal/prng"
)

func newTestPool(bound int) *Pool {
	return NewPool("code", 0x4400_0000, 64<<20, bound, 8, prng.NewMWC(1))
}

func TestAllocateWithinBoundAndAligned(t *testing.T) {
	p := newTestPool(32 * 1024)
	for i := 0; i < 200; i++ {
		obj := &mem.Object{Name: "f", Kind: mem.KindCode, Size: 512, Align: 8}
		base, err := p.Allocate(obj)
		if err != nil {
			t.Fatal(err)
		}
		off := base % mem.PageSize
		_ = off
		chunkStart := base &^ (mem.PageSize - 1)
		// Offset within the chunk must be below the bound and 8-aligned.
		offset := base - chunkStart
		// base may be in a later page of the chunk if offset > 4096.
		if offset%8 != 0 {
			t.Fatalf("offset %d not 8-aligned", offset)
		}
		if !mem.IsAligned(base, 8) {
			t.Fatalf("base %#x not aligned", base)
		}
	}
	if p.Allocs() != 200 {
		t.Errorf("allocs=%d, want 200", p.Allocs())
	}
}

func TestOffsetsCoverTheWay(t *testing.T) {
	// With bound 1024 and alignment 8 there are 128 slots; over many
	// allocations most slots must be hit.
	p := NewPool("d", 0x5400_0000, 64<<20, 1024, 8, prng.NewMWC(7))
	seen := map[mem.Addr]bool{}
	for i := 0; i < 3000; i++ {
		obj := &mem.Object{Name: "o", Size: 64, Align: 8}
		if _, err := p.Allocate(obj); err != nil {
			t.Fatal(err)
		}
		// offset = base mod 1024 only if chunk start is 1024-aligned;
		// chunks are page-aligned, and 1024 divides 4096, so this holds.
		seen[obj.Base%1024] = true
	}
	if len(seen) < 120 {
		t.Errorf("offsets hit %d/128 slots", len(seen))
	}
}

func TestDifferentSeedsDifferentLayouts(t *testing.T) {
	layout := func(seed uint64) []mem.Addr {
		p := newTestPool(32 * 1024)
		p.Reset(seed)
		var bases []mem.Addr
		for i := 0; i < 20; i++ {
			obj := &mem.Object{Name: "f", Size: 256, Align: 8}
			if _, err := p.Allocate(obj); err != nil {
				t.Fatal(err)
			}
			bases = append(bases, obj.Base)
		}
		return bases
	}
	a, b := layout(1), layout(2)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 5 {
		t.Errorf("layouts share %d/20 placements across seeds", same)
	}
	// Same seed must reproduce exactly (measurement protocol relies on it).
	c := layout(1)
	for i := range a {
		if a[i] != c[i] {
			t.Fatal("same seed produced different layout")
		}
	}
}

func TestNoOverlapProperty(t *testing.T) {
	f := func(sizes []uint16, seed uint64) bool {
		p := newTestPool(4096)
		p.Reset(seed)
		var objs []*mem.Object
		for _, sz := range sizes {
			if sz == 0 {
				continue
			}
			o := &mem.Object{Name: "o", Size: mem.Addr(sz), Align: 8}
			if _, err := p.Allocate(o); err != nil {
				return true // pool exhaustion acceptable
			}
			objs = append(objs, o)
		}
		for i := 0; i < len(objs); i++ {
			for j := i + 1; j < len(objs); j++ {
				if objs[i].Overlaps(objs[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPageDiversity(t *testing.T) {
	p := newTestPool(32 * 1024)
	for i := 0; i < 30; i++ {
		if _, err := p.Allocate(&mem.Object{Name: "f", Size: 1024, Align: 8}); err != nil {
			t.Fatal(err)
		}
	}
	// Every object sits in its own chunk ≥ 1 page: at least 30 pages.
	if got := len(p.PagesTouched()); got < 30 {
		t.Errorf("pages touched=%d, want >=30 (TLB diversity)", got)
	}
}

func TestResetReclaimsSpace(t *testing.T) {
	p := newTestPool(32 * 1024)
	for i := 0; i < 10; i++ {
		if _, err := p.Allocate(&mem.Object{Name: "f", Size: 128, Align: 8}); err != nil {
			t.Fatal(err)
		}
	}
	used := p.Used()
	if used == 0 {
		t.Fatal("nothing used")
	}
	p.Reset(9)
	if p.Used() != 0 || p.Allocs() != 0 {
		t.Error("Reset did not reclaim")
	}
}

func TestRespectsObjectAlignment(t *testing.T) {
	p := newTestPool(32 * 1024)
	for i := 0; i < 100; i++ {
		o := &mem.Object{Name: "a", Size: 100, Align: 64}
		if _, err := p.Allocate(o); err != nil {
			t.Fatal(err)
		}
		if !mem.IsAligned(o.Base, 64) {
			t.Fatalf("alloc %d violated 64-byte alignment: %#x", i, o.Base)
		}
	}
}

func TestExhaustion(t *testing.T) {
	p := NewPool("tiny", 0x4400_0000, 3*mem.PageSize, 1024, 8, prng.NewMWC(1))
	var err error
	for i := 0; i < 10 && err == nil; i++ {
		_, err = p.Allocate(&mem.Object{Name: "f", Size: mem.PageSize, Align: 8})
	}
	if err == nil {
		t.Error("pool never exhausted")
	}
}

func TestConstructorValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"bad bound":   func() { NewPool("x", 0x1000, 1<<20, 0, 8, prng.NewMWC(1)) },
		"indivisible": func() { NewPool("x", 0x1000, 1<<20, 100, 8, prng.NewMWC(1)) },
		"unaligned":   func() { NewPool("x", 0x1001, 1<<20, 1024, 8, prng.NewMWC(1)) },
		"nil source":  func() { NewPool("x", 0x1000, 1<<20, 1024, 8, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
