package rtos

import (
	"reflect"
	"testing"

	"dsr/internal/analysis/schedfeas"
)

func TestSchedulerRejectsDuplicateNames(t *testing.T) {
	a, _ := imagePartition(t, "control", 10, HighCriticality)
	b, _ := imagePartition(t, "control", 10, LowCriticality)
	if _, err := NewScheduler(DefaultConfig(), []Window{
		{Partition: a, OffsetMillis: 0, BudgetMillis: 10},
		{Partition: b, OffsetMillis: 20, BudgetMillis: 10},
	}); err == nil {
		t.Fatal("two distinct partitions sharing a name accepted")
	}
	// The same partition owning several windows is legitimate — that is
	// how a short-period task gets multiple activations per frame — and
	// its activation counter must advance per window.
	sched, err := NewScheduler(DefaultConfig(), []Window{
		{Partition: a, OffsetMillis: 0, BudgetMillis: 10},
		{Partition: a, OffsetMillis: 20, BudgetMillis: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	acts, err := sched.RunMajorFrames(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 2 || acts[0].Activation != 0 || acts[1].Activation != 1 {
		t.Fatalf("multi-window activations %+v, want 0 then 1", acts)
	}
}

// caseStudyCert certifies the paper's two-task frame under the given
// policy (the same spec the schedfeas tests use).
func caseStudyCert(t *testing.T, policy schedfeas.Policy) *schedfeas.Certificate {
	t.Helper()
	spec := &schedfeas.Spec{
		FrameMillis:    1000,
		CyclesPerMilli: 80_000,
		Tasks: []schedfeas.Task{
			{Name: "control", PeriodMillis: 1000, BudgetMillis: 30, PhaseMillis: 60,
				Criticality: 1, JitterMillis: -1},
			{Name: "processing", PeriodMillis: 100, BudgetMillis: 60, PhaseMillis: 0,
				Criticality: 0, JitterMillis: 40},
		},
	}
	rep := schedfeas.Analyze(spec, policy, schedfeas.Config{})
	if rep.Cert == nil {
		t.Fatalf("policy %v not certifiable: %v", policy, rep.Violations)
	}
	return rep.Cert
}

func fullPolicy() schedfeas.Policy {
	return schedfeas.Policy{SegmentChoice: true, PermuteOrder: true, SlotJitterMillis: 40}
}

func randomizedPair(t *testing.T) []*Partition {
	t.Helper()
	ctrl, _ := imagePartition(t, "control", 100, HighCriticality)
	ctrl.PeriodMillis = 1000
	proc, _ := imagePartition(t, "processing", 50, LowCriticality)
	proc.PeriodMillis = 100
	return []*Partition{ctrl, proc}
}

func TestRandomizedExecutiveRunsCertifiedFrames(t *testing.T) {
	ex, err := NewRandomizedExecutive(DefaultConfig(), randomizedPair(t), caseStudyCert(t, fullPolicy()), 7)
	if err != nil {
		t.Fatal(err)
	}
	acts, err := ex.RunMajorFrames(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 5*11 {
		t.Fatalf("activations=%d, want 55 (10 processing + 1 control per frame)", len(acts))
	}
	for i, a := range acts {
		if a.Overrun() {
			t.Fatalf("activation %d overran a certified window", i)
		}
	}
	// The control window must actually move between frames — that is the
	// whole point of the randomisation.
	offsets := map[int]bool{}
	for _, a := range ByPartition(acts, "control") {
		offsets[a.OffsetMillis] = true
	}
	if len(offsets) < 2 {
		t.Errorf("control offsets %v constant across 5 frames", offsets)
	}
	// Stateless activation numbering: processing activations are
	// frame*10+k and appear in within-frame order.
	for i, a := range ByPartition(acts, "processing") {
		if a.Activation != uint64(i) {
			t.Errorf("processing activation %d numbered %d", i, a.Activation)
		}
	}
}

func TestRandomizedExecutiveFramePurity(t *testing.T) {
	ex, err := NewRandomizedExecutive(DefaultConfig(), randomizedPair(t), caseStudyCert(t, fullPolicy()), 99)
	if err != nil {
		t.Fatal(err)
	}
	once, err := ex.RunFrame(3)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ex.RunFrame(3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(once, again) {
		t.Fatal("RunFrame(3) is not a pure function of the frame index")
	}
	all, err := ex.RunMajorFrames(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(all[3*11:], once) {
		t.Fatal("RunMajorFrames frame 3 differs from RunFrame(3)")
	}
}

func TestRandomizedExecutiveMembership(t *testing.T) {
	ex, err := NewRandomizedExecutive(DefaultConfig(), randomizedPair(t), caseStudyCert(t, fullPolicy()), 1234)
	if err != nil {
		t.Fatal(err)
	}
	cert := ex.Certificate()
	for frame := 0; frame < 100; frame++ {
		fs, err := ex.DrawFrame(frame)
		if err != nil {
			t.Fatalf("frame %d: %v", frame, err)
		}
		if err := cert.Contains(fs); err != nil {
			t.Fatalf("frame %d outside certified support: %v", frame, err)
		}
	}
}

func TestRandomizedExecutiveValidation(t *testing.T) {
	parts := randomizedPair(t)
	cert := caseStudyCert(t, fullPolicy())
	if _, err := NewRandomizedExecutive(DefaultConfig(), parts, nil, 1); err == nil {
		t.Error("nil certificate accepted")
	}
	if _, err := NewRandomizedExecutive(Config{MajorFrameMillis: 500, CyclesPerMilli: 80_000}, parts, cert, 1); err == nil {
		t.Error("frame mismatch accepted")
	}
	if _, err := NewRandomizedExecutive(Config{MajorFrameMillis: 1000, CyclesPerMilli: 1}, parts, cert, 1); err == nil {
		t.Error("clock mismatch accepted")
	}
	if _, err := NewRandomizedExecutive(DefaultConfig(), parts[:1], cert, 1); err == nil {
		t.Error("missing partition accepted")
	}
	if _, err := NewRandomizedExecutive(DefaultConfig(), []*Partition{parts[0], parts[0]}, cert, 1); err == nil {
		t.Error("duplicate partition accepted")
	}
	ghost, _ := imagePartition(t, "ghost", 10, LowCriticality)
	if _, err := NewRandomizedExecutive(DefaultConfig(), []*Partition{parts[0], ghost}, cert, 1); err == nil {
		t.Error("unknown partition standing in for a certified task accepted")
	}
	wrongPeriod := randomizedPair(t)
	wrongPeriod[1].PeriodMillis = 500
	if _, err := NewRandomizedExecutive(DefaultConfig(), wrongPeriod, cert, 1); err == nil {
		t.Error("period mismatch accepted")
	}
	if _, err := NewRandomizedExecutive(DefaultConfig(), []*Partition{parts[0], {Name: "processing"}}, cert, 1); err == nil {
		t.Error("runnerless partition accepted")
	}
}
