package rtos

import (
	"testing"

	"dsr/internal/core"
	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/platform"
	"dsr/internal/prog"
)

// loopProgram spins for roughly `iters` loop iterations then halts,
// returning iters in %o0.
func loopProgram(t *testing.T, name string, iters int32) *prog.Program {
	t.Helper()
	p := &prog.Program{Name: name, Entry: "main"}
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.L0, 0).
		Label("loop").
		AddI(isa.L0, isa.L0, 1).
		CmpI(isa.L0, iters).
		Bl("loop").
		Mov(isa.O0, isa.L0).
		Halt()
	if err := p.AddFunction(b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	return p
}

func imagePartition(t *testing.T, name string, iters int32, crit Criticality) (*Partition, *platform.Platform) {
	t.Helper()
	img, err := loader.Load(loopProgram(t, name, iters), loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	plat := platform.New(platform.ProximaLEON3())
	plat.LoadImage(img)
	return &Partition{
		Name:        name,
		Criticality: crit,
		Runner:      NewImageRunner(plat),
	}, plat
}

func TestSchedulerRunsWindowsInOrder(t *testing.T) {
	ctrl, _ := imagePartition(t, "control", 100, HighCriticality)
	proc, _ := imagePartition(t, "processing", 50, LowCriticality)
	cfg := DefaultConfig()
	sched, err := NewScheduler(cfg, []Window{
		{Partition: proc, OffsetMillis: 0, BudgetMillis: 80},
		{Partition: ctrl, OffsetMillis: 100, BudgetMillis: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	acts, err := sched.RunMajorFrames(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 6 {
		t.Fatalf("activations=%d, want 6", len(acts))
	}
	for i, a := range acts {
		wantPart := "processing"
		if i%2 == 1 {
			wantPart = "control"
		}
		if a.Partition != wantPart {
			t.Errorf("activation %d partition=%s, want %s", i, a.Partition, wantPart)
		}
		if !a.Completed {
			t.Errorf("activation %d overran unexpectedly", i)
		}
		if a.MajorFrame != i/2 {
			t.Errorf("activation %d frame=%d", i, a.MajorFrame)
		}
	}
	// Activation counters advance per partition.
	ctrlActs := ByPartition(acts, "control")
	for i, a := range ctrlActs {
		if a.Activation != uint64(i) {
			t.Errorf("control activation %d numbered %d", i, a.Activation)
		}
	}
}

func TestTemporalIsolationCutsOverrun(t *testing.T) {
	// A "malfunctioning" processing task that spins far beyond its window
	// must be cut off, and the control task must still run.
	ctrl, _ := imagePartition(t, "control", 100, HighCriticality)
	rogue, _ := imagePartition(t, "processing", 100_000_000, LowCriticality)
	cfg := DefaultConfig()
	sched, err := NewScheduler(cfg, []Window{
		{Partition: rogue, OffsetMillis: 0, BudgetMillis: 10},
		{Partition: ctrl, OffsetMillis: 100, BudgetMillis: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	acts, err := sched.RunMajorFrames(1)
	if err != nil {
		t.Fatal(err)
	}
	if !acts[0].Overrun() {
		t.Error("rogue partition not flagged as overrun")
	}
	if acts[0].Cycles < acts[0].Budget {
		t.Error("overrun cut before the budget")
	}
	if acts[1].Overrun() {
		t.Error("control task affected by rogue partition")
	}
	if acts[1].Result.ExitValue != 100 {
		t.Errorf("control result=%d, want 100", acts[1].Result.ExitValue)
	}
}

// walkProgram sums a table in a loop; its timing depends on where the
// table and code land in the caches, so DSR activations show jitter.
func walkProgram(t *testing.T, name string, iters int32) *prog.Program {
	t.Helper()
	p := &prog.Program{Name: name, Entry: "main"}
	if err := p.AddData(&prog.DataObject{Name: "tbl", Size: 4096, Align: 8}); err != nil {
		t.Fatal(err)
	}
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		MovI(isa.L0, 0). // i
		MovI(isa.L1, 0). // sum
		Set(isa.L2, "tbl").
		Label("loop").
		AndI(isa.L3, isa.L0, 1023).
		SllI(isa.L3, isa.L3, 2).
		Add(isa.L4, isa.L2, isa.L3).
		Ld(isa.L5, isa.L4, 0).
		Add(isa.L1, isa.L1, isa.L5).
		AddI(isa.L0, isa.L0, 1).
		CmpI(isa.L0, iters).
		Bl("loop").
		Mov(isa.O0, isa.L0).
		Halt()
	if err := p.AddFunction(b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDSRRunnerRerandomisesPerActivation(t *testing.T) {
	p := walkProgram(t, "control", 200)
	plat := platform.New(platform.ProximaLEON3())
	rt, err := core.NewRuntime(p, plat, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	part := &Partition{
		Name:        "control",
		Criticality: HighCriticality,
		Runner:      NewDSRRunner(rt, 1000),
	}
	sched, err := NewScheduler(DefaultConfig(), []Window{
		{Partition: part, OffsetMillis: 0, BudgetMillis: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	acts, err := sched.RunMajorFrames(12)
	if err != nil {
		t.Fatal(err)
	}
	distinct := map[uint64]bool{}
	for _, a := range acts {
		if a.Result.ExitValue != 200 {
			t.Fatalf("functional result=%d under DSR", a.Result.ExitValue)
		}
		distinct[uint64(a.Cycles)] = true
	}
	if len(distinct) < 3 {
		t.Errorf("only %d distinct execution times across 12 DSR activations", len(distinct))
	}
}

func TestSchedulerValidation(t *testing.T) {
	ctrl, _ := imagePartition(t, "control", 10, HighCriticality)
	cases := map[string][]Window{
		"overlap": {
			{Partition: ctrl, OffsetMillis: 0, BudgetMillis: 200},
			{Partition: ctrl, OffsetMillis: 100, BudgetMillis: 100},
		},
		"beyond frame": {
			{Partition: ctrl, OffsetMillis: 900, BudgetMillis: 200},
		},
		"zero budget": {
			{Partition: ctrl, OffsetMillis: 0, BudgetMillis: 0},
		},
		"nil partition": {
			{Partition: nil, OffsetMillis: 0, BudgetMillis: 10},
		},
	}
	for name, ws := range cases {
		if _, err := NewScheduler(DefaultConfig(), ws); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := NewScheduler(Config{}, nil); err == nil {
		t.Error("zero config accepted")
	}
}

func TestImageRunnerReloadIsolatesRuns(t *testing.T) {
	// A program that increments a global counter would drift without the
	// reload-per-activation reboot semantics.
	p := &prog.Program{Name: "counter", Entry: "main"}
	if err := p.AddData(&prog.DataObject{Name: "count", Size: 4}); err != nil {
		t.Fatal(err)
	}
	b := prog.NewFunc("main", prog.MinFrame).
		Prologue().
		Set(isa.L0, "count").
		Ld(isa.L1, isa.L0, 0).
		AddI(isa.L1, isa.L1, 1).
		St(isa.L1, isa.L0, 0).
		Mov(isa.O0, isa.L1).
		Halt()
	if err := p.AddFunction(b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	plat := platform.New(platform.ProximaLEON3())
	plat.LoadImage(img)
	part := &Partition{Name: "counter", Runner: NewImageRunner(plat)}
	sched, err := NewScheduler(DefaultConfig(), []Window{
		{Partition: part, OffsetMillis: 0, BudgetMillis: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	acts, err := sched.RunMajorFrames(3)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range acts {
		if a.Result.ExitValue != 1 {
			t.Errorf("activation %d saw stale memory: count=%d", i, a.Result.ExitValue)
		}
	}
}

func TestCriticalityString(t *testing.T) {
	if HighCriticality.String() != "high" || LowCriticality.String() != "low" {
		t.Error("criticality strings")
	}
}
