package rtos

import (
	"bytes"
	"testing"

	"dsr/internal/mem"
	"dsr/internal/telemetry"
)

// Satellite coverage for the executive's telemetry contract: rtos.window
// spans pair begin/end per track, rtos.overrun instants land exactly at
// the clamped window end, and the Chrome-trace export of a frame trace
// passes the same span validation dsrstat's validate command applies.

func TestSchedulerTelemetryChromeTrace(t *testing.T) {
	ctrl, _ := imagePartition(t, "control", 100, HighCriticality)
	rogue, _ := imagePartition(t, "processing", 100_000_000, LowCriticality)
	cfg := DefaultConfig()
	sched, err := NewScheduler(cfg, []Window{
		{Partition: rogue, OffsetMillis: 0, BudgetMillis: 10},
		{Partition: ctrl, OffsetMillis: 100, BudgetMillis: 300},
	})
	if err != nil {
		t.Fatal(err)
	}
	log := telemetry.NewEventLog(0)
	sched.SetEventLog(log)
	acts, err := sched.RunMajorFrames(2)
	if err != nil {
		t.Fatal(err)
	}
	if !acts[0].Overrun() || acts[1].Overrun() {
		t.Fatalf("expected rogue overrun + clean control, got %+v", acts)
	}

	// Raw event contract: one begin/end pair per window, overrun
	// instants only for the rogue partition, at the clamped window end.
	events := log.Events()
	var begins, ends, overruns int
	for _, e := range events {
		switch {
		case e.Kind == "rtos.window" && e.Phase == telemetry.PhaseBegin:
			begins++
		case e.Kind == "rtos.window" && e.Phase == telemetry.PhaseEnd:
			ends++
		case e.Kind == "rtos.overrun":
			if e.Phase != telemetry.PhaseInstant {
				t.Errorf("overrun emitted as phase %v, want instant", e.Phase)
			}
			if e.Track != "processing" {
				t.Errorf("overrun on track %s", e.Track)
			}
			// Temporal isolation clamps the span at offset+budget: frame
			// f's rogue window [0,10)ms ends at (f*1000+10)*80k cycles.
			frame := mem.Cycles(overruns)
			want := (frame*mem.Cycles(cfg.MajorFrameMillis) + 10) * cfg.CyclesPerMilli
			if e.TS != want {
				t.Errorf("overrun %d at ts=%d, want %d (clamped window end)", overruns, e.TS, want)
			}
			overruns++
		}
	}
	if begins != 4 || ends != 4 {
		t.Errorf("window begin/end counts %d/%d, want 4/4", begins, ends)
	}
	if overruns != 2 {
		t.Errorf("overrun instants=%d, want 2 (one per frame)", overruns)
	}

	// Export contract: the Chrome trace passes dsrstat-style span
	// validation (B/E pairing, nesting, monotonic timestamps per track).
	var buf bytes.Buffer
	if err := telemetry.NewDump(telemetry.NewRegistry(), log).WriteChromeTrace(&buf, 0); err != nil {
		t.Fatal(err)
	}
	spans, err := telemetry.ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("frame trace fails validation: %v", err)
	}
	if spans != 4 {
		t.Errorf("validated %d span pairs, want 4 (2 windows x 2 frames)", spans)
	}
}

func TestSchedulerTelemetryCompletedEndsEarly(t *testing.T) {
	// A completing partition's span must end at start+used, strictly
	// before the window budget expires — the span length is the
	// partition's measured execution time, not the reservation.
	ctrl, _ := imagePartition(t, "control", 100, HighCriticality)
	cfg := DefaultConfig()
	sched, err := NewScheduler(cfg, []Window{
		{Partition: ctrl, OffsetMillis: 0, BudgetMillis: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	log := telemetry.NewEventLog(0)
	sched.SetEventLog(log)
	acts, err := sched.RunMajorFrames(1)
	if err != nil {
		t.Fatal(err)
	}
	var begin, end mem.Cycles
	for _, e := range log.Events() {
		if e.Kind != "rtos.window" {
			continue
		}
		if e.Phase == telemetry.PhaseBegin {
			begin = e.TS
		}
		if e.Phase == telemetry.PhaseEnd {
			end = e.TS
		}
		if e.Kind == "rtos.overrun" {
			t.Error("completed run emitted an overrun instant")
		}
	}
	if got := end - begin; got != acts[0].Cycles {
		t.Errorf("span length %d cycles, want measured %d", got, acts[0].Cycles)
	}
	if end >= begin+acts[0].Budget {
		t.Error("completed span consumed the whole budget")
	}
}

func TestRandomizedExecutiveTelemetryChromeTrace(t *testing.T) {
	ex, err := NewRandomizedExecutive(DefaultConfig(), randomizedPair(t), caseStudyCert(t, fullPolicy()), 5)
	if err != nil {
		t.Fatal(err)
	}
	log := telemetry.NewEventLog(0)
	ex.SetEventLog(log)
	if _, err := ex.RunMajorFrames(3); err != nil {
		t.Fatal(err)
	}
	// Begin timestamps must equal the drawn schedule's start offsets —
	// the trace is the adversary-visible arrival sequence.
	cfg := DefaultConfig()
	var begins []mem.Cycles
	for _, e := range log.Events() {
		if e.Kind == "rtos.window" && e.Phase == telemetry.PhaseBegin {
			begins = append(begins, e.TS)
		}
		if e.Kind == "rtos.overrun" {
			t.Error("certified schedule produced an overrun")
		}
	}
	idx := 0
	for frame := 0; frame < 3; frame++ {
		fs, err := ex.DrawFrame(frame)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range fs.Windows {
			want := (mem.Cycles(frame)*mem.Cycles(cfg.MajorFrameMillis) +
				mem.Cycles(w.StartMillis)) * cfg.CyclesPerMilli
			if begins[idx] != want {
				t.Fatalf("begin %d at ts=%d, want %d (%s start %dms)",
					idx, begins[idx], want, w.Task, w.StartMillis)
			}
			idx++
		}
	}
	var buf bytes.Buffer
	if err := telemetry.NewDump(telemetry.NewRegistry(), log).WriteChromeTrace(&buf, 0); err != nil {
		t.Fatal(err)
	}
	spans, err := telemetry.ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("randomized frame trace fails validation: %v", err)
	}
	if spans != 3*11 {
		t.Errorf("validated %d span pairs, want 33", spans)
	}
}
