// Package rtos models the hypervisor configuration of the paper's setup
// (§IV): PikeOS Native hosting two partitions — the high-criticality
// control task invoked every second and the low-criticality image
// processing task invoked every 100 ms — with spatial and temporal
// isolation, caches flushed automatically at each partition start,
// preemption disabled during partition execution, and partition reboot
// between measurement runs so that every execution starts from a fresh
// (and, under DSR, freshly randomised) memory layout.
//
// The scheduler is a cyclic time-partitioned executive: a major frame is
// divided into windows, each window owns one partition activation, and a
// partition that overruns its window is cut off (temporal isolation) and
// flagged — the mixed-criticality concern that motivates the case study.
package rtos

import (
	"fmt"

	"dsr/internal/core"
	"dsr/internal/mem"
	"dsr/internal/platform"
	"dsr/internal/telemetry"
)

// Criticality is the design-assurance level of a partition.
type Criticality int

const (
	// LowCriticality marks the image-processing partition.
	LowCriticality Criticality = iota
	// HighCriticality marks the control partition.
	HighCriticality
)

func (c Criticality) String() string {
	if c == HighCriticality {
		return "high"
	}
	return "low"
}

// Runner abstracts the software hosted in a partition: a plain image or
// a DSR runtime. Activate prepares a fresh run (the partition reboot);
// Execute performs one run under a cycle budget, reporting whether the
// program completed within it.
type Runner interface {
	Name() string
	Activate(activation uint64) error
	Execute(budget mem.Cycles) (platform.RunResult, bool, error)
}

// ImageRunner hosts a fixed (non-randomised) image: every activation
// reloads it so runs are independent of each other's memory state.
type ImageRunner struct {
	Plat *platform.Platform
}

// NewImageRunner binds an already-loaded platform image.
func NewImageRunner(plat *platform.Platform) *ImageRunner {
	return &ImageRunner{Plat: plat}
}

// Name implements Runner.
func (r *ImageRunner) Name() string {
	if img := r.Plat.Image(); img != nil {
		return img.Name
	}
	return "image"
}

// Activate implements Runner: partition reboot = memory reload.
func (r *ImageRunner) Activate(uint64) error {
	if r.Plat.Image() == nil {
		return fmt.Errorf("rtos: image runner has no image")
	}
	r.Plat.Reload()
	return nil
}

// Execute implements Runner.
func (r *ImageRunner) Execute(budget mem.Cycles) (platform.RunResult, bool, error) {
	return r.Plat.RunBudget(budget)
}

// DSRRunner hosts a DSR runtime: every activation reboots it with a new
// seed, drawing a fresh random layout (§IV: "the partition is rebooted
// through software means to guarantee that each execution starts with a
// different memory layout").
type DSRRunner struct {
	RT       *core.Runtime
	SeedBase uint64
}

// NewDSRRunner wraps rt; seeds are SeedBase+activation.
func NewDSRRunner(rt *core.Runtime, seedBase uint64) *DSRRunner {
	return &DSRRunner{RT: rt, SeedBase: seedBase}
}

// Name implements Runner.
func (r *DSRRunner) Name() string { return r.RT.Program().Name + "+dsr" }

// Activate implements Runner.
func (r *DSRRunner) Activate(activation uint64) error {
	_, err := r.RT.Reboot(r.SeedBase + activation)
	return err
}

// Execute implements Runner.
func (r *DSRRunner) Execute(budget mem.Cycles) (platform.RunResult, bool, error) {
	if r.RT.Image() == nil {
		return platform.RunResult{}, false, fmt.Errorf("rtos: DSR runner not activated")
	}
	return r.RT.RunBudget(budget)
}

// Partition is one hosted application.
type Partition struct {
	Name        string
	Criticality Criticality
	Runner      Runner
	// PeriodMillis is the activation period (control: 1000, processing: 100).
	PeriodMillis int
}

// Window is one slot of the major frame.
type Window struct {
	Partition    *Partition
	OffsetMillis int
	BudgetMillis int
}

// Config describes the executive.
type Config struct {
	MajorFrameMillis int
	// CyclesPerMilli converts wall-clock windows to core cycles
	// (an 80 MHz LEON3 gives 80_000 cycles per millisecond).
	CyclesPerMilli mem.Cycles
}

// DefaultConfig is the case study's frame: 1 s major frame on an 80 MHz
// core.
func DefaultConfig() Config {
	return Config{MajorFrameMillis: 1000, CyclesPerMilli: 80_000}
}

// Scheduler is the cyclic executive.
type Scheduler struct {
	cfg     Config
	windows []Window
	acts    map[string]uint64 // per-partition activation counters

	// events, when non-nil, receives one span per partition window
	// (timestamped in frame time, so the Chrome trace shows the cyclic
	// schedule) plus overrun instants; a nil log no-ops.
	events *telemetry.EventLog
}

// SetEventLog installs (or clears, with nil) the structured event log
// the executive emits partition-window events into.
func (s *Scheduler) SetEventLog(l *telemetry.EventLog) { s.events = l }

// NewScheduler builds a scheduler; windows must fit the major frame and
// not overlap, and no two distinct partitions may share a name (the
// activation counters are keyed by name, so a shared name would silently
// interleave two partitions' counters). One partition owning several
// windows of the frame is fine — that is how a short-period task gets
// multiple activations per major frame.
func NewScheduler(cfg Config, windows []Window) (*Scheduler, error) {
	if cfg.MajorFrameMillis <= 0 || cfg.CyclesPerMilli == 0 {
		return nil, fmt.Errorf("rtos: bad config %+v", cfg)
	}
	end := 0
	byName := map[string]*Partition{}
	for i, w := range windows {
		if w.Partition == nil || w.Partition.Runner == nil {
			return nil, fmt.Errorf("rtos: window %d has no partition/runner", i)
		}
		if prev, ok := byName[w.Partition.Name]; ok && prev != w.Partition {
			return nil, fmt.Errorf("rtos: two partitions share the name %q", w.Partition.Name)
		}
		byName[w.Partition.Name] = w.Partition
		if w.OffsetMillis < end {
			return nil, fmt.Errorf("rtos: window %d (%s) overlaps previous window",
				i, w.Partition.Name)
		}
		if w.BudgetMillis <= 0 {
			return nil, fmt.Errorf("rtos: window %d has non-positive budget", i)
		}
		end = w.OffsetMillis + w.BudgetMillis
		if end > cfg.MajorFrameMillis {
			return nil, fmt.Errorf("rtos: window %d (%s) exceeds the major frame",
				i, w.Partition.Name)
		}
	}
	return &Scheduler{cfg: cfg, windows: windows, acts: map[string]uint64{}}, nil
}

// Activation records one partition execution.
type Activation struct {
	Partition   string
	Criticality Criticality
	MajorFrame  int
	Window      int
	Activation  uint64
	// OffsetMillis is the window's start offset within its major frame —
	// fixed by the window table under the cyclic Scheduler, drawn per
	// frame by the RandomizedExecutive (the arrival observable a timing-
	// inference adversary sees).
	OffsetMillis int
	Cycles       mem.Cycles
	Budget       mem.Cycles
	// Completed is false when the window expired first (temporal
	// isolation cut the partition off).
	Completed bool
	Result    platform.RunResult
}

// Overrun reports whether the partition consumed its entire window
// without completing.
func (a Activation) Overrun() bool { return !a.Completed }

// RunMajorFrames executes n major frames and returns every activation
// record in schedule order.
func (s *Scheduler) RunMajorFrames(n int) ([]Activation, error) {
	var out []Activation
	for frame := 0; frame < n; frame++ {
		for wi, w := range s.windows {
			p := w.Partition
			act := s.acts[p.Name]
			s.acts[p.Name]++
			if err := p.Runner.Activate(act); err != nil {
				return out, fmt.Errorf("rtos: activate %s: %w", p.Name, err)
			}
			budget := mem.Cycles(w.BudgetMillis) * s.cfg.CyclesPerMilli
			res, done, err := p.Runner.Execute(budget)
			if err != nil {
				return out, fmt.Errorf("rtos: execute %s: %w", p.Name, err)
			}
			// Frame-time span: the window opens at its schedule offset
			// and the partition occupies it for the cycles it consumed
			// (clamped to the budget — temporal isolation).
			start := (mem.Cycles(frame)*mem.Cycles(s.cfg.MajorFrameMillis) +
				mem.Cycles(w.OffsetMillis)) * s.cfg.CyclesPerMilli
			used := res.Cycles
			if used > budget {
				used = budget
			}
			s.events.EmitAt(start, p.Name, "rtos.window", telemetry.PhaseBegin,
				telemetry.Int("frame", frame),
				telemetry.Int("window", wi),
				telemetry.Uint64("activation", act),
				telemetry.Cycles("budget", budget),
				telemetry.Cycles("cycles", res.Cycles),
				telemetry.String("criticality", p.Criticality.String()))
			if !done {
				s.events.EmitAt(start+used, p.Name, "rtos.overrun", telemetry.PhaseInstant,
					telemetry.Int("frame", frame),
					telemetry.Uint64("activation", act))
			}
			s.events.EmitAt(start+used, p.Name, "rtos.window", telemetry.PhaseEnd)
			out = append(out, Activation{
				Partition:    p.Name,
				Criticality:  p.Criticality,
				MajorFrame:   frame,
				Window:       wi,
				Activation:   act,
				OffsetMillis: w.OffsetMillis,
				Cycles:       res.Cycles,
				Budget:       budget,
				Completed:    done,
				Result:       res,
			})
		}
	}
	return out, nil
}

// ByPartition filters activation records.
func ByPartition(acts []Activation, name string) []Activation {
	var out []Activation
	for _, a := range acts {
		if a.Partition == name {
			out = append(out, a)
		}
	}
	return out
}
