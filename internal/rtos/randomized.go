package rtos

import (
	"fmt"

	"dsr/internal/analysis/schedfeas"
	"dsr/internal/campaign"
	"dsr/internal/mem"
	"dsr/internal/prng"
	"dsr/internal/telemetry"
)

// RandomizedExecutive is the schedule-randomising counterpart of the
// cyclic Scheduler: instead of replaying a fixed window table, it draws
// a fresh major-frame schedule every frame from the certified
// (spec, policy) pair — the second randomisation axis next to DSR's
// memory-layout randomisation (TaskShuffler++-style schedule
// randomisation on top of a time-partitioned executive).
//
// Construction is gated on a schedfeas.Certificate: the executive will
// not exist unless the static analyzer has proven every schedule the
// policy can draw feasible. At runtime it still re-checks each drawn
// frame against the certificate's support before executing it — the
// belt-and-braces membership guard the CI soundness gate exercises at
// scale.
//
// Determinism contract: the schedule of frame f is a pure function of
// (seedBase, f) — the per-frame draw stream is campaign.NewSchedule
// (seedBase).Seed(f) fed to the MWC generator, and activation numbers
// are computed from the frame index rather than a running counter. Any
// worker can therefore execute any frame in any order and produce
// byte-identical records, which is what lets the campaign engine shard
// E9 runs across workers.
type RandomizedExecutive struct {
	cfg    Config
	cert   *schedfeas.Certificate
	parts  map[string]*Partition
	seeds  campaign.Schedule
	events *telemetry.EventLog
}

// NewRandomizedExecutive builds a randomized executive over the given
// partitions. cert must be a certificate issued by schedfeas.Analyze
// (non-nil only on feasible reports); the partitions must match the
// certified task set one to one by name, with matching periods where
// the partition declares one, and the config must match the certified
// frame and clock.
func NewRandomizedExecutive(cfg Config, parts []*Partition, cert *schedfeas.Certificate, seedBase uint64) (*RandomizedExecutive, error) {
	if cfg.MajorFrameMillis <= 0 || cfg.CyclesPerMilli == 0 {
		return nil, fmt.Errorf("rtos: bad config %+v", cfg)
	}
	if cert == nil {
		return nil, fmt.Errorf("rtos: randomized executive requires a schedfeas certificate")
	}
	if cert.Spec.FrameMillis != cfg.MajorFrameMillis {
		return nil, fmt.Errorf("rtos: certificate frame %dms != config frame %dms",
			cert.Spec.FrameMillis, cfg.MajorFrameMillis)
	}
	if cert.Spec.CyclesPerMilli != cfg.CyclesPerMilli {
		return nil, fmt.Errorf("rtos: certificate clock %d != config clock %d",
			cert.Spec.CyclesPerMilli, cfg.CyclesPerMilli)
	}
	byName := map[string]*Partition{}
	for _, p := range parts {
		if p == nil || p.Runner == nil {
			return nil, fmt.Errorf("rtos: partition without runner")
		}
		if _, ok := byName[p.Name]; ok {
			return nil, fmt.Errorf("rtos: two partitions share the name %q", p.Name)
		}
		byName[p.Name] = p
	}
	if len(byName) != len(cert.Spec.Tasks) {
		return nil, fmt.Errorf("rtos: %d partitions for %d certified tasks",
			len(byName), len(cert.Spec.Tasks))
	}
	for _, t := range cert.Spec.Tasks {
		p, ok := byName[t.Name]
		if !ok {
			return nil, fmt.Errorf("rtos: certified task %q has no partition", t.Name)
		}
		if p.PeriodMillis != 0 && p.PeriodMillis != t.PeriodMillis {
			return nil, fmt.Errorf("rtos: partition %q period %dms != certified period %dms",
				p.Name, p.PeriodMillis, t.PeriodMillis)
		}
	}
	return &RandomizedExecutive{
		cfg:   cfg,
		cert:  cert,
		parts: byName,
		seeds: campaign.NewSchedule(seedBase),
	}, nil
}

// SetEventLog installs (or clears, with nil) the structured event log
// the executive emits partition-window events into.
func (e *RandomizedExecutive) SetEventLog(l *telemetry.EventLog) { e.events = l }

// Certificate returns the certificate the executive was constructed
// with.
func (e *RandomizedExecutive) Certificate() *schedfeas.Certificate { return e.cert }

// DrawFrame returns frame f's schedule without executing it — the same
// schedule RunFrame would execute, exposed for membership audits.
func (e *RandomizedExecutive) DrawFrame(frame int) (*schedfeas.FrameSchedule, error) {
	src := prng.NewMWC(e.seeds.Seed(frame))
	return schedfeas.Draw(&e.cert.Spec, e.cert.Policy, src)
}

// RunFrame draws and executes major frame f, returning its activation
// records in schedule order. It is a pure function of the frame index
// (given the runners' own determinism): activation numbers are
// frame*activationsPerFrame + withinFrameIndex, not a running counter.
func (e *RandomizedExecutive) RunFrame(frame int) ([]Activation, error) {
	fs, err := e.DrawFrame(frame)
	if err != nil {
		return nil, fmt.Errorf("rtos: frame %d: %w", frame, err)
	}
	if err := e.cert.Contains(fs); err != nil {
		return nil, fmt.Errorf("rtos: frame %d drew an uncertified schedule: %w", frame, err)
	}
	var out []Activation
	for wi, w := range fs.Windows {
		p := e.parts[w.Task]
		var period int
		for _, t := range e.cert.Spec.Tasks {
			if t.Name == w.Task {
				period = t.PeriodMillis
			}
		}
		actsPerFrame := e.cfg.MajorFrameMillis / period
		act := uint64(frame)*uint64(actsPerFrame) + uint64(w.Activation)
		if err := p.Runner.Activate(act); err != nil {
			return out, fmt.Errorf("rtos: activate %s: %w", p.Name, err)
		}
		budget := mem.Cycles(w.BudgetMillis) * e.cfg.CyclesPerMilli
		res, done, err := p.Runner.Execute(budget)
		if err != nil {
			return out, fmt.Errorf("rtos: execute %s: %w", p.Name, err)
		}
		start := (mem.Cycles(frame)*mem.Cycles(e.cfg.MajorFrameMillis) +
			mem.Cycles(w.StartMillis)) * e.cfg.CyclesPerMilli
		used := res.Cycles
		if used > budget {
			used = budget
		}
		e.events.EmitAt(start, p.Name, "rtos.window", telemetry.PhaseBegin,
			telemetry.Int("frame", frame),
			telemetry.Int("window", wi),
			telemetry.Uint64("activation", act),
			telemetry.Cycles("budget", budget),
			telemetry.Cycles("cycles", res.Cycles),
			telemetry.String("criticality", p.Criticality.String()))
		if !done {
			e.events.EmitAt(start+used, p.Name, "rtos.overrun", telemetry.PhaseInstant,
				telemetry.Int("frame", frame),
				telemetry.Uint64("activation", act))
		}
		e.events.EmitAt(start+used, p.Name, "rtos.window", telemetry.PhaseEnd)
		out = append(out, Activation{
			Partition:    p.Name,
			Criticality:  p.Criticality,
			MajorFrame:   frame,
			Window:       wi,
			Activation:   act,
			OffsetMillis: w.StartMillis,
			Cycles:       res.Cycles,
			Budget:       budget,
			Completed:    done,
			Result:       res,
		})
	}
	return out, nil
}

// RunMajorFrames executes frames 0..n-1 and returns every activation
// record in schedule order.
func (e *RandomizedExecutive) RunMajorFrames(n int) ([]Activation, error) {
	var out []Activation
	for frame := 0; frame < n; frame++ {
		acts, err := e.RunFrame(frame)
		out = append(out, acts...)
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
