package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// SpanReport is the per-worker utilization analysis behind
// `dsrstat workers`: how each worker's wall time splits across phases,
// how long claims took, how busy the merge track was — sharp enough to
// name the dominant parallel-scaling bottleneck.

// WorkerStats is one worker's share of the campaign wall time.
type WorkerStats struct {
	Worker  int     `json:"worker"`
	Runs    int     `json:"runs"`
	SpanNs  int64   `json:"span_ns"`    // worker-span duration (goroutine lifetime)
	SetupNs int64   `json:"setup_ns"`   // platform/runtime construction
	BusyNs  int64   `json:"busy_ns"`    // total run-span time
	BootNs  int64   `json:"boot_ns"`    // within runs: platform boot + layout draw
	RelocNs int64   `json:"reloc_ns"`   // within runs: image rebuild + load
	ExecNs  int64   `json:"execute_ns"` // within runs: simulated execution
	ClaimNs int64   `json:"claim_ns"`   // waiting to claim the next run
	IdleNs  int64   `json:"idle_ns"`    // span - setup - busy - claim (tail, scheduling)
	Busy    float64 `json:"busy_frac"`  // BusyNs / SpanNs
	RunsPS  float64 `json:"runs_per_s"` // Runs / SpanNs
}

// SpanReport aggregates a span timeline into per-worker and campaign
// totals.
type SpanReport struct {
	CampaignNs  int64         `json:"campaign_ns"`
	Workers     []WorkerStats `json:"workers"`
	TotalRuns   int           `json:"total_runs"`
	MergeNs     int64         `json:"merge_ns"`      // merge-span time on the campaign track
	MergeWaitNs int64         `json:"merge_wait_ns"` // waiting for the next canonical result
	// Claim latency distribution across all workers, nanoseconds.
	ClaimP50 int64 `json:"claim_p50_ns"`
	ClaimP99 int64 `json:"claim_p99_ns"`
	ClaimMax int64 `json:"claim_max_ns"`
	// Phase totals across all workers.
	BootNs  int64 `json:"boot_total_ns"`
	RelocNs int64 `json:"reloc_total_ns"`
	ExecNs  int64 `json:"execute_total_ns"`
	SetupNs int64 `json:"setup_total_ns"`
}

// AnalyzeSpans builds the utilization report from a merged span
// timeline (Tracer.Spans or a spans.jsonl load).
func AnalyzeSpans(spans []Span) (*SpanReport, error) {
	if len(spans) == 0 {
		return nil, fmt.Errorf("telemetry: no spans to analyze")
	}
	if _, err := ValidateSpans(spans); err != nil {
		return nil, err
	}
	rep := &SpanReport{}
	byWorker := map[int]*WorkerStats{}
	var claims []int64
	for i := range spans {
		s := &spans[i]
		kind, _ := ParseSpanKind(s.Kind)
		switch kind {
		case SpanCampaign:
			if s.Dur > rep.CampaignNs {
				rep.CampaignNs = s.Dur
			}
			continue
		case SpanMerge:
			rep.MergeNs += s.Dur
			continue
		case SpanMergeWait:
			rep.MergeWaitNs += s.Dur
			continue
		}
		if s.Worker < 0 {
			continue
		}
		ws := byWorker[s.Worker]
		if ws == nil {
			ws = &WorkerStats{Worker: s.Worker}
			byWorker[s.Worker] = ws
		}
		switch kind {
		case SpanWorker:
			ws.SpanNs += s.Dur
		case SpanSetup:
			ws.SetupNs += s.Dur
		case SpanRun:
			ws.Runs++
			ws.BusyNs += s.Dur
		case SpanBoot:
			ws.BootNs += s.Dur
		case SpanReloc:
			ws.RelocNs += s.Dur
		case SpanExecute:
			ws.ExecNs += s.Dur
		case SpanClaim:
			ws.ClaimNs += s.Dur
			claims = append(claims, s.Dur)
		}
	}
	if len(byWorker) == 0 {
		return nil, fmt.Errorf("telemetry: no worker spans in timeline")
	}
	ids := make([]int, 0, len(byWorker))
	for id := range byWorker {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ws := byWorker[id]
		if ws.SpanNs == 0 {
			// Sequential path records no explicit worker span; fall back
			// to the campaign duration as the worker's window.
			ws.SpanNs = rep.CampaignNs
		}
		ws.IdleNs = ws.SpanNs - ws.SetupNs - ws.BusyNs - ws.ClaimNs
		if ws.IdleNs < 0 {
			ws.IdleNs = 0
		}
		if ws.SpanNs > 0 {
			ws.Busy = float64(ws.BusyNs) / float64(ws.SpanNs)
			ws.RunsPS = float64(ws.Runs) / (float64(ws.SpanNs) / 1e9)
		}
		rep.TotalRuns += ws.Runs
		rep.BootNs += ws.BootNs
		rep.RelocNs += ws.RelocNs
		rep.ExecNs += ws.ExecNs
		rep.SetupNs += ws.SetupNs
		rep.Workers = append(rep.Workers, *ws)
	}
	if len(claims) > 0 {
		sort.Slice(claims, func(i, j int) bool { return claims[i] < claims[j] })
		rep.ClaimP50 = claims[len(claims)/2]
		rep.ClaimP99 = claims[(len(claims)*99)/100]
		rep.ClaimMax = claims[len(claims)-1]
	}
	return rep, nil
}

// Bottleneck classes: the stable machine-readable tokens
// BottleneckClass returns, which CI gates match against
// (`dsrstat workers -assert-not CLASS,...`).
const (
	BottleneckInsufficientData = "insufficient-data"
	BottleneckMerge            = "merge-serialisation"
	BottleneckConstruction     = "platform-construction"
	BottleneckClaim            = "claim-contention"
	BottleneckMemoryPressure   = "memory-pressure"
	BottleneckImbalance        = "load-imbalance"
)

// BottleneckClass returns the dominant limiter as a stable token from
// the Bottleneck* constants; Bottleneck() wraps the same classification
// in a quantified prose justification.
func (r *SpanReport) BottleneckClass() string {
	class, _ := r.bottleneck()
	return class
}

// Bottleneck names the dominant parallel-scaling limiter with a
// quantified justification. The checks run in causal priority order:
// a serialised merge starves everyone downstream, expensive setup
// dominates short campaigns, claim contention points at the shared
// counter, and high busy fractions with poor scaling indicate the
// bottleneck is below the engine (shared allocation, memory
// bandwidth).
func (r *SpanReport) Bottleneck() string {
	_, prose := r.bottleneck()
	return prose
}

func (r *SpanReport) bottleneck() (class, prose string) {
	if r.CampaignNs == 0 || len(r.Workers) == 0 {
		return BottleneckInsufficientData, "insufficient data"
	}
	camp := float64(r.CampaignNs)
	mergeBusy := float64(r.MergeNs) / camp
	var setup, claim, busy, idle float64
	for i := range r.Workers {
		w := &r.Workers[i]
		span := float64(w.SpanNs)
		if span == 0 {
			continue
		}
		setup += float64(w.SetupNs) / span
		claim += float64(w.ClaimNs) / span
		busy += w.Busy
		idle += float64(w.IdleNs) / span
	}
	n := float64(len(r.Workers))
	setup, claim, busy, idle = setup/n, claim/n, busy/n, idle/n

	switch {
	case mergeBusy > 0.5:
		return BottleneckMerge, fmt.Sprintf("merge serialisation: the canonical-order merge is busy %.0f%% of the campaign "+
			"(%.1fms of %.1fms); workers outpace the single merge goroutine", mergeBusy*100,
			float64(r.MergeNs)/1e6, camp/1e6)
	case setup > 0.25:
		return BottleneckConstruction, fmt.Sprintf("platform construction: workers spend %.0f%% of their time in setup "+
			"(%.1fms total across %d workers); amortise boots or pool platforms", setup*100,
			float64(r.SetupNs)/1e6, len(r.Workers))
	case claim > 0.20:
		return BottleneckClaim, fmt.Sprintf("claim contention: workers spend %.0f%% of their time claiming runs "+
			"(p99 claim latency %.2fms); the shared run counter serialises the pool", claim*100,
			float64(r.ClaimP99)/1e6)
	case busy > 0.75:
		return BottleneckMemoryPressure, fmt.Sprintf("shared allocation / memory bandwidth: workers are %.0f%% busy yet scaling is poor; "+
			"the bottleneck is below the engine — per-run allocation pressure (GC) or cache/memory contention "+
			"between simulator instances", busy*100)
	default:
		return BottleneckImbalance, fmt.Sprintf("load imbalance / campaign tail: workers are only %.0f%% busy with %.0f%% unattributed idle; "+
			"runs are too few or too uneven to keep the pool fed", busy*100, idle*100)
	}
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

// Render formats the report as the `dsrstat workers` text output.
func (r *SpanReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: %d runs over %d workers in %.1fms (%.1f runs/s)\n",
		r.TotalRuns, len(r.Workers), ms(r.CampaignNs),
		float64(r.TotalRuns)/(float64(r.CampaignNs)/1e9))
	fmt.Fprintf(&b, "merge track: busy %.1fms (%.0f%%), waiting %.1fms\n",
		ms(r.MergeNs), 100*float64(r.MergeNs)/float64(r.CampaignNs), ms(r.MergeWaitNs))
	fmt.Fprintf(&b, "claim latency: p50 %.3fms  p99 %.3fms  max %.3fms\n",
		ms(r.ClaimP50), ms(r.ClaimP99), ms(r.ClaimMax))
	fmt.Fprintf(&b, "phase totals: boot %.1fms  reloc %.1fms  execute %.1fms  setup %.1fms\n\n",
		ms(r.BootNs), ms(r.RelocNs), ms(r.ExecNs), ms(r.SetupNs))

	fmt.Fprintf(&b, "%-7s %5s %9s %6s %9s %9s %9s %9s %9s %9s %8s\n",
		"worker", "runs", "span_ms", "busy", "boot_ms", "reloc_ms", "exec_ms",
		"setup_ms", "claim_ms", "idle_ms", "runs/s")
	for i := range r.Workers {
		w := &r.Workers[i]
		fmt.Fprintf(&b, "%-7d %5d %9.1f %5.0f%% %9.1f %9.1f %9.1f %9.1f %9.1f %9.1f %8.1f\n",
			w.Worker, w.Runs, ms(w.SpanNs), w.Busy*100, ms(w.BootNs), ms(w.RelocNs),
			ms(w.ExecNs), ms(w.SetupNs), ms(w.ClaimNs), ms(w.IdleNs), w.RunsPS)
	}
	class, prose := r.bottleneck()
	fmt.Fprintf(&b, "\nbottleneck: [%s] %s\n", class, prose)
	return b.String()
}
