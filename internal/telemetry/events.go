package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"dsr/internal/mem"
)

// Phase classifies an event for timeline rendering, following the Chrome
// trace_event phases: 'B' opens a span, 'E' closes the innermost open
// span of the same track, 'i' is an instant event.
type Phase byte

// Event phases.
const (
	PhaseBegin   Phase = 'B'
	PhaseEnd     Phase = 'E'
	PhaseInstant Phase = 'i'
)

// Attr is one key/value attribute of an event. Values are stored as
// strings to keep the log allocation-bounded and the codec trivial;
// helpers format the common types.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Uint64 builds an integer attribute.
func Uint64(k string, v uint64) Attr { return Attr{Key: k, Value: fmt.Sprintf("%d", v)} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: fmt.Sprintf("%d", v)} }

// Hex builds a hexadecimal address attribute.
func Hex(k string, v mem.Addr) Attr { return Attr{Key: k, Value: fmt.Sprintf("%#x", uint64(v))} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: fmt.Sprintf("%g", v)} }

// Cycles builds a cycle-count attribute.
func Cycles(k string, v mem.Cycles) Attr { return Attr{Key: k, Value: fmt.Sprintf("%d", uint64(v))} }

// Event is one structured runtime event.
type Event struct {
	// Seq is the global emission order (assigned by the log).
	Seq uint64 `json:"seq"`
	// TS is the event's position on the campaign clock, in simulated
	// cycles (see EventLog.SetClock); 0 when no clock is installed.
	TS mem.Cycles `json:"ts"`
	// Track groups events into timeline rows (partition name, campaign
	// series, analysis stage).
	Track string `json:"track,omitempty"`
	// Kind is the dotted event type, e.g. "dsr.reboot", "rtos.window",
	// "mbpta.iid".
	Kind  string `json:"kind"`
	Phase Phase  `json:"phase"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// Attr returns the value of the named attribute and whether it exists.
func (e *Event) Attr(key string) (string, bool) {
	for _, a := range e.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// String renders the event for humans.
func (e *Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d @%d [%s] %c %s", e.Seq, uint64(e.TS), e.Track, byte(e.Phase), e.Kind)
	for _, a := range e.Attrs {
		fmt.Fprintf(&b, " %s=%s", a.Key, a.Value)
	}
	return b.String()
}

// EventLog is a bounded ring buffer of structured events. A nil
// *EventLog is the disabled log: Emit and friends no-op without
// allocating, so emitters need no guards.
type EventLog struct {
	ring    []Event
	start   int // index of oldest
	n       int // live count
	seq     uint64
	dropped uint64
	clock   func() mem.Cycles
	// unbounded turns the ring into an append-only buffer (capture
	// mode): nothing is ever dropped, so a shard's events replay into
	// the campaign log exactly as the sequential path would have emitted
	// them.
	unbounded bool
}

// NewEventLog returns a log retaining at most capacity events (oldest
// dropped first).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = 4096
	}
	return &EventLog{ring: make([]Event, capacity)}
}

// NewCaptureLog returns an unbounded append-only log. The campaign
// engine hands one to each worker so runtime events (reboots,
// relocations) emitted during a shard's runs are captured losslessly;
// Take drains the capture between runs and ReplayAt re-emits it into
// the campaign log during the canonical-order merge.
func NewCaptureLog() *EventLog {
	return &EventLog{unbounded: true}
}

// SetClock installs the campaign clock: a function returning the current
// position in simulated cycles, read at each emission. Nil-safe.
func (l *EventLog) SetClock(f func() mem.Cycles) {
	if l != nil {
		l.clock = f
	}
}

// Enabled reports whether emissions on this log are recorded; nil-safe.
// Hot emitters should guard their Emit calls with it: the Attr helpers
// format their values eagerly, so building an Emit's arguments costs
// allocations even when the log is nil and the event would be dropped.
func (l *EventLog) Enabled() bool { return l != nil }

// Emit appends an event stamped with the campaign clock; nil-safe.
func (l *EventLog) Emit(track, kind string, phase Phase, attrs ...Attr) {
	if l == nil {
		return
	}
	var ts mem.Cycles
	if l.clock != nil {
		ts = l.clock()
	}
	l.EmitAt(ts, track, kind, phase, attrs...)
}

// EmitAt appends an event with an explicit timestamp; nil-safe.
func (l *EventLog) EmitAt(ts mem.Cycles, track, kind string, phase Phase, attrs ...Attr) {
	if l == nil {
		return
	}
	e := Event{Seq: l.seq, TS: ts, Track: track, Kind: kind, Phase: phase, Attrs: attrs}
	l.seq++
	if l.unbounded {
		l.ring = append(l.ring, e)
		l.n++
		return
	}
	if l.n == len(l.ring) {
		l.ring[l.start] = e
		l.start = (l.start + 1) % len(l.ring)
		l.dropped++
		return
	}
	l.ring[(l.start+l.n)%len(l.ring)] = e
	l.n++
}

// Len returns the number of retained events; nil-safe (0).
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	return l.n
}

// Dropped returns how many events the ring discarded; nil-safe (0).
func (l *EventLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	return l.dropped
}

// Events returns the retained events oldest-first; nil-safe (nil).
func (l *EventLog) Events() []Event {
	if l == nil || l.n == 0 {
		return nil
	}
	out := make([]Event, l.n)
	for i := 0; i < l.n; i++ {
		out[i] = l.ring[(l.start+i)%len(l.ring)]
	}
	return out
}

// Take returns the retained events oldest-first and resets the log for
// the next capture window (sequence numbering restarts at zero). It is
// the per-run drain of a capture log; nil-safe (nil).
func (l *EventLog) Take() []Event {
	if l == nil || l.n == 0 {
		return nil
	}
	out := l.Events()
	if l.unbounded {
		l.ring = nil
	}
	l.start, l.n, l.seq, l.dropped = 0, 0, 0, 0
	return out
}

// ReplayAt re-emits captured events into l, offset to the timestamp ts
// and re-sequenced by l's own counter; tracks, kinds, phases and
// attributes are preserved. This is the campaign engine's merge
// primitive: events captured on a worker's shard replay into the
// campaign log exactly as if they had been emitted live at ts (shard
// captures carry relative timestamps, normally zero, which ReplayAt
// shifts onto the campaign clock). Nil-safe.
func (l *EventLog) ReplayAt(ts mem.Cycles, events []Event) {
	if l == nil {
		return
	}
	for i := range events {
		e := &events[i]
		l.EmitAt(ts+e.TS, e.Track, e.Kind, e.Phase, e.Attrs...)
	}
}

// Tracks returns the distinct track names in the log, sorted.
func (l *EventLog) Tracks() []string {
	seen := map[string]bool{}
	for _, e := range l.Events() {
		seen[e.Track] = true
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
