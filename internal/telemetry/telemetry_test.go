package telemetry

import (
	"strings"
	"testing"

	"dsr/internal/mem"
)

func TestCounterGaugeIdentity(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs", Labels{"series": "a"}).Add(2)
	r.Counter("runs", Labels{"series": "a"}).Inc()
	r.Counter("runs", Labels{"series": "b"}).Inc()
	if got := r.Counter("runs", Labels{"series": "a"}).Value(); got != 3 {
		t.Errorf("counter a = %d, want 3", got)
	}
	if got := r.Counter("runs", Labels{"series": "b"}).Value(); got != 1 {
		t.Errorf("counter b = %d, want 1", got)
	}
	r.Gauge("temp", nil).Set(1.5)
	r.Gauge("temp", nil).Set(2.5)
	if got := r.Gauge("temp", nil).Value(); got != 2.5 {
		t.Errorf("gauge = %g, want last value 2.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", nil, []float64{10, 100, 1000})
	for _, v := range []float64{5, 10, 11, 99, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 5125 {
		t.Errorf("count=%d sum=%g", h.Count(), h.Sum())
	}
	cum := h.Cumulative()
	want := []uint64{2, 4, 4} // <=10: {5,10}; <=100: +{11,99}; <=1000: same
	for i := range want {
		if cum[i] != want[i] {
			t.Errorf("cum[%d]=%d want %d", i, cum[i], want[i])
		}
	}
	// Bounds are fixed by the first registration of the name.
	h2 := r.Histogram("lat", Labels{"k": "v"}, []float64{1, 2})
	if got := len(h2.Bounds()); got != 3 {
		t.Errorf("second registration got %d bounds, want the fixed 3", got)
	}
}

func TestRegistrySnapshotDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("z", nil).Inc()
	r.Counter("a", Labels{"x": "2"}).Inc()
	r.Counter("a", Labels{"x": "1"}).Inc()
	r.Gauge("g", nil).Set(1)
	r.Histogram("h", nil, []float64{1}).Observe(0.5)
	s1, s2 := r.Snapshot(), r.Snapshot()
	if len(s1) != 5 {
		t.Fatalf("snapshot has %d metrics, want 5", len(s1))
	}
	for i := range s1 {
		if s1[i].Name != s2[i].Name || s1[i].Labels.canonical() != s2[i].Labels.canonical() {
			t.Fatalf("snapshot order not deterministic at %d", i)
		}
	}
	if s1[0].Name != "a" || s1[0].Labels["x"] != "1" {
		t.Errorf("first metric = %s{%s}, want a{x=1}", s1[0].Name, s1[0].Labels.canonical())
	}
}

func TestNilRegistryNoops(t *testing.T) {
	var r *Registry
	r.Counter("c", nil).Inc()
	r.Gauge("g", nil).Set(1)
	r.Histogram("h", nil, nil).Observe(1)
	if got := r.Snapshot(); got != nil {
		t.Errorf("nil registry snapshot = %v, want nil", got)
	}
	if n := testing.AllocsPerRun(100, func() {
		r.Counter("c", nil).Inc()
		r.Histogram("h", nil, nil).Observe(1)
	}); n != 0 {
		t.Errorf("nil registry allocates %g per op, want 0", n)
	}
}

func TestAttributionZeroValueUsable(t *testing.T) {
	// Regression: Component's zero value is CompBaseIssue, so the zero
	// Attribution must not treat it as an active override.
	var a Attribution
	a.Charge(CompDRAM, 7)
	a.Charge(CompL2, 3)
	if got := a.Component(CompDRAM); got != 7 {
		t.Errorf("zero-value attribution booked DRAM charge to %d cycles, want 7", got)
	}
	if got := a.Component(CompBaseIssue); got != 0 {
		t.Errorf("zero-value attribution redirected %d cycles to base_issue", got)
	}
}

func TestAttributionOverrideOuterWins(t *testing.T) {
	a := NewAttribution()
	prevTrap, effTrap := a.SetOverride(CompWindowTrap)
	if prevTrap != CompNone || effTrap != CompWindowTrap {
		t.Fatalf("outer SetOverride = (%v, %v)", prevTrap, effTrap)
	}
	// Inner override (a TLB walk inside the trap) must not displace it.
	prevWalk, effWalk := a.SetOverride(CompDTLBWalk)
	if effWalk != CompWindowTrap {
		t.Errorf("inner override effective = %v, want the outer %v", effWalk, CompWindowTrap)
	}
	a.Charge(CompDRAM, 10)
	a.ClearOverride(prevWalk)
	a.Charge(CompDL1, 5)
	a.ClearOverride(prevTrap)
	a.Charge(CompDL1, 2)
	if got := a.Component(CompWindowTrap); got != 15 {
		t.Errorf("trap bucket = %d, want 15 (all charges inside the span)", got)
	}
	if got := a.Component(CompDL1); got != 2 {
		t.Errorf("dl1 bucket = %d, want 2 (only the post-span charge)", got)
	}
	if a.Total() != 17 {
		t.Errorf("total = %d, want 17", a.Total())
	}
}

func TestAttributionRebateAndSuspend(t *testing.T) {
	a := NewAttribution()
	a.Charge(CompStorePath, 10)
	a.Rebate(CompStorePath, 4)
	if a.Component(CompStorePath) != 6 || a.Total() != 6 {
		t.Errorf("after rebate: bucket=%d total=%d, want 6/6", a.Component(CompStorePath), a.Total())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("over-rebate did not panic")
			}
		}()
		a.Rebate(CompStorePath, 100)
	}()
	a.Suspend()
	a.Charge(CompDRAM, 50)
	a.Resume()
	if a.Component(CompDRAM) != 0 {
		t.Error("suspended attribution still booked cycles")
	}
}

func TestAttributionSnapshotAggregation(t *testing.T) {
	a := NewAttribution()
	a.Charge(CompBaseIssue, 100)
	a.Charge(CompDRAM, 50)
	s := a.Snapshot()
	if !s.Valid || s.Total() != 150 {
		t.Fatalf("snapshot valid=%v total=%d", s.Valid, s.Total())
	}
	var agg AttributionSnapshot
	agg.Add(s)
	agg.Add(s)
	if agg.Total() != 300 || !agg.Valid {
		t.Errorf("aggregate total=%d valid=%v, want 300/true", agg.Total(), agg.Valid)
	}
	out := agg.Render()
	if !strings.Contains(out, "base_issue") || !strings.Contains(out, "66.7%") {
		t.Errorf("render missing rows:\n%s", out)
	}
	var nilAtt *Attribution
	if nilAtt.Snapshot().Valid {
		t.Error("nil attribution snapshot claims validity")
	}
}

// level is a fake memory level: a fixed self-latency plus whatever its
// (probed) next level reports.
type level struct {
	self mem.Cycles
	next mem.Backend
}

func (l *level) Read(a mem.Addr, s int) mem.Cycles  { return l.access(a, s, true) }
func (l *level) Write(a mem.Addr, s int) mem.Cycles { return l.access(a, s, false) }

func (l *level) access(a mem.Addr, s int, read bool) mem.Cycles {
	lat := l.self
	if l.next != nil {
		if read {
			lat += l.next.Read(a, s)
		} else {
			lat += l.next.Write(a, s)
		}
	}
	return lat
}

func TestProbeChainBooksSelfLatency(t *testing.T) {
	att := NewAttribution()
	dram := NewProbe(&level{self: 10}, att, CompDRAM)
	l2 := NewProbe(&level{self: 5, next: dram}, att, CompL2)
	bus := NewProbe(&level{self: 2, next: l2}, att, CompBus)

	lat := bus.Read(0x100, 4)
	if lat != 17 {
		t.Fatalf("chain latency = %d, want 17", lat)
	}
	// Conservation: the probes book exactly the top-level latency,
	// partitioned into each level's self-latency.
	if att.Total() != lat {
		t.Errorf("booked %d cycles for a %d-cycle access", att.Total(), lat)
	}
	for _, tc := range []struct {
		comp Component
		want mem.Cycles
	}{{CompDRAM, 10}, {CompL2, 5}, {CompBus, 2}} {
		if got := att.Component(tc.comp); got != tc.want {
			t.Errorf("%s booked %d, want %d", tc.comp, got, tc.want)
		}
	}
	// Writes follow the same protocol.
	att.Reset()
	if lat := bus.Write(0x200, 4); att.Total() != lat {
		t.Errorf("write booked %d for a %d-cycle access", att.Total(), lat)
	}
}

func TestEventLogRing(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 6; i++ {
		l.EmitAt(mem.Cycles(i), "t", "k", PhaseInstant, Int("i", i))
	}
	if l.Len() != 4 || l.Dropped() != 2 {
		t.Fatalf("len=%d dropped=%d, want 4/2", l.Len(), l.Dropped())
	}
	evs := l.Events()
	if evs[0].Seq != 2 || evs[3].Seq != 5 {
		t.Errorf("ring kept seqs %d..%d, want oldest-first 2..5", evs[0].Seq, evs[3].Seq)
	}
	if v, ok := evs[0].Attr("i"); !ok || v != "2" {
		t.Errorf("attr i = %q (%v)", v, ok)
	}
	if got := l.Tracks(); len(got) != 1 || got[0] != "t" {
		t.Errorf("tracks = %v", got)
	}
}

func TestEventLogClockAndNil(t *testing.T) {
	l := NewEventLog(8)
	var now mem.Cycles = 42
	l.SetClock(func() mem.Cycles { return now })
	l.Emit("t", "k", PhaseInstant)
	now = 99
	l.Emit("t", "k", PhaseInstant)
	evs := l.Events()
	if evs[0].TS != 42 || evs[1].TS != 99 {
		t.Errorf("clock stamps = %d, %d", evs[0].TS, evs[1].TS)
	}

	var nilLog *EventLog
	nilLog.Emit("t", "k", PhaseInstant)
	nilLog.SetClock(func() mem.Cycles { return 0 })
	if nilLog.Len() != 0 || nilLog.Dropped() != 0 || nilLog.Events() != nil {
		t.Error("nil log is not inert")
	}
	if n := testing.AllocsPerRun(100, func() {
		nilLog.Emit("t", "k", PhaseInstant)
	}); n != 0 {
		t.Errorf("nil log allocates %g per emit, want 0", n)
	}
}
