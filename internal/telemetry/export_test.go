package telemetry

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// sampleDump builds a dump covering every metric kind (with and without
// labels) and an event stream with spans, instants and attributes.
func sampleDump() *Dump {
	r := NewRegistry()
	r.Counter("dsr_runs_total", Labels{"series": "Sw Rand"}).Add(500)
	r.Counter("plain_total", nil).Add(7)
	r.Gauge("last_seed", Labels{"series": "Sw Rand"}).Set(41.5)
	h := r.Histogram("run_cycles", Labels{"series": "Sw Rand"}, []float64{100, 1000, 10000})
	for _, v := range []float64{90, 110, 900, 2500, 50000} {
		h.Observe(v)
	}

	l := NewEventLog(64)
	l.EmitAt(0, "run", "run", PhaseBegin, Uint64("seed", 1), String("series", "Sw Rand"))
	l.EmitAt(10, "run", "uoa", PhaseBegin)
	l.EmitAt(90, "run", "dsr.reloc", PhaseInstant, Hex("new", 0x4000), Cycles("cost", 12))
	l.EmitAt(200, "run", "uoa", PhaseEnd)
	l.EmitAt(250, "run", "run", PhaseEnd)
	l.EmitAt(300, "mbpta", "mbpta.iid", PhaseInstant, Float("ks_p", 0.42))
	return NewDump(r, l)
}

func TestJSONLRoundTrip(t *testing.T) {
	d := sampleDump()
	var buf bytes.Buffer
	if err := d.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !MetricsEqual(d.Metrics, back.Metrics) {
		t.Error("jsonl round-trip changed the metrics")
	}
	// JSONL is the only format that carries events: require exact
	// structural equality, not just counts.
	if !reflect.DeepEqual(d.Events, back.Events) {
		t.Errorf("jsonl round-trip changed the events:\n got %+v\nwant %+v", back.Events, d.Events)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := sampleDump()
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "kind,name,labels,") {
		t.Errorf("csv header missing: %q", buf.String()[:40])
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !MetricsEqual(d.Metrics, back.Metrics) {
		t.Error("csv round-trip changed the metrics")
	}
}

func TestPrometheusRoundTrip(t *testing.T) {
	d := sampleDump()
	var buf bytes.Buffer
	if err := d.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, w := range []string{
		"# TYPE dsr_runs_total counter",
		"# TYPE run_cycles histogram",
		`run_cycles_bucket{le="+Inf",series="Sw Rand"} 5`,
		`run_cycles_count{series="Sw Rand"} 5`,
		"plain_total 7",
	} {
		if !strings.Contains(text, w) {
			t.Errorf("exposition missing %q:\n%s", w, text)
		}
	}
	back, err := ReadPrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if !MetricsEqual(d.Metrics, back.Metrics) {
		t.Errorf("prometheus round-trip changed the metrics:\n got %+v\nwant %+v", back.Metrics, d.Metrics)
	}
}

func TestMetricsEqualDetectsDrift(t *testing.T) {
	a := sampleDump().Metrics
	b := sampleDump().Metrics
	if !MetricsEqual(a, b) {
		t.Fatal("identical dumps compare unequal")
	}
	// Order-insensitive.
	rev := append([]Metric(nil), a...)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if !MetricsEqual(a, rev) {
		t.Error("reordered metrics compare unequal")
	}
	b[0].Value++
	if MetricsEqual(a, b) {
		t.Error("value drift not detected")
	}
}

func TestChromeTraceValid(t *testing.T) {
	d := sampleDump()
	var buf bytes.Buffer
	if err := d.WriteChromeTrace(&buf, 0); err != nil {
		t.Fatal(err)
	}
	// Schema check: it must parse and satisfy the span invariants.
	spans, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if spans != 2 { // run and uoa
		t.Errorf("validated %d span pairs, want 2", spans)
	}
	// Structure check: thread-name metadata + cycle->us conversion.
	var tf struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	names := 0
	for _, e := range tf.TraceEvents {
		if e.Ph == "M" {
			names++
			continue
		}
		if e.Name == "mbpta.iid" && e.Ts != 300/DefaultCyclesPerMicro {
			t.Errorf("ts = %g us, want %g", e.Ts, 300/DefaultCyclesPerMicro)
		}
		if e.Ph == "i" && e.S != "t" {
			t.Errorf("instant %s missing scope", e.Name)
		}
	}
	if names != 2 { // "run" and "mbpta" tracks
		t.Errorf("%d thread_name rows, want 2", names)
	}
}

func TestValidateChromeTraceRejectsBadTraces(t *testing.T) {
	// The writer sanitizes its own output (ring truncation, see
	// TestWriteChromeTraceRingTruncation), so bad traces are built as
	// raw trace JSON: the validator guards foreign files too.
	mk := func(events ...TraceEvent) []byte {
		b, err := json.Marshal(traceFile{TraceEvents: events})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	cases := []struct {
		name   string
		events []TraceEvent
		want   string
	}{
		{"unmatched end", []TraceEvent{
			{Name: "a", Ph: "E", Ts: 0, Pid: 1, Tid: 1},
		}, "without open B"},
		{"left open", []TraceEvent{
			{Name: "a", Ph: "B", Ts: 0, Pid: 1, Tid: 1},
		}, "left open"},
		{"bad nesting", []TraceEvent{
			{Name: "a", Ph: "B", Ts: 0, Pid: 1, Tid: 1},
			{Name: "b", Ph: "B", Ts: 1, Pid: 1, Tid: 1},
			{Name: "a", Ph: "E", Ts: 2, Pid: 1, Tid: 1},
		}, "bad nesting"},
		{"non-monotonic", []TraceEvent{
			{Name: "a", Ph: "i", S: "t", Ts: 100, Pid: 1, Tid: 1},
			{Name: "b", Ph: "i", S: "t", Ts: 50, Pid: 1, Tid: 1},
		}, "not monotonic"},
	}
	for _, tc := range cases {
		if _, err := ValidateChromeTrace(bytes.NewReader(mk(tc.events...))); err == nil {
			t.Errorf("%s: accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if _, err := ValidateChromeTrace(strings.NewReader("not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

// TestWriteChromeTraceRingTruncation: the event log is a bounded ring,
// so a dump can start with an end whose begin was evicted, or stop with
// a begin whose end never arrived. The writer must still produce a
// schema-valid trace: orphan ends dropped, dangling begins closed.
func TestWriteChromeTraceRingTruncation(t *testing.T) {
	d := &Dump{Events: []Event{
		{TS: 10, Track: "t", Kind: "run", Phase: PhaseEnd}, // begin evicted
		{TS: 20, Track: "t", Kind: "run", Phase: PhaseBegin},
		{TS: 25, Track: "t", Kind: "uoa", Phase: PhaseInstant},
		{TS: 30, Track: "t", Kind: "run", Phase: PhaseEnd},
		{TS: 40, Track: "t", Kind: "run", Phase: PhaseBegin}, // end never recorded
	}}
	var buf bytes.Buffer
	if err := d.WriteChromeTrace(&buf, 0); err != nil {
		t.Fatal(err)
	}
	spans, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("truncated ring produced an invalid trace: %v", err)
	}
	if spans != 2 { // the complete pair + the defensively closed begin
		t.Errorf("trace has %d span pairs, want 2", spans)
	}
}

func TestCampaignRecordRun(t *testing.T) {
	c := NewCampaign(128)
	var att Attribution
	att.Charge(CompBaseIssue, 600)
	att.Charge(CompDRAM, 400)
	c.RecordRun(RunRecord{
		Series: "s", Index: 0, Seed: 9,
		Cycles: 1000, UoA: 900, Attribution: att.Snapshot(),
	})
	c.RecordRun(RunRecord{Series: "s", Index: 1, Seed: 10, Cycles: 500, UoA: 450})
	if got := c.Registry.Counter("dsr_runs_total", Labels{"series": "s"}).Value(); got != 2 {
		t.Errorf("dsr_runs_total = %d, want 2", got)
	}
	if got := c.Registry.Counter("dsr_run_cycles_total", Labels{"series": "s"}).Value(); got != 1500 {
		t.Errorf("dsr_run_cycles_total = %d, want 1500", got)
	}
	if got := c.Registry.Counter("dsr_attributed_cycles_total",
		Labels{"series": "s", "component": "dram_stall"}).Value(); got != 400 {
		t.Errorf("attributed dram cycles = %d, want 400", got)
	}
	if c.Now() != 1500 {
		t.Errorf("campaign clock = %d, want 1500", c.Now())
	}
	// The event stream must render to a schema-valid trace.
	var buf bytes.Buffer
	if err := NewDump(c.Registry, c.Events).WriteChromeTrace(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateChromeTrace(&buf); err != nil {
		t.Errorf("campaign trace invalid: %v", err)
	}
}
