package telemetry

import (
	"fmt"
	"sort"
	"strings"

	"dsr/internal/mem"
)

// Component names one architectural destination of execution cycles.
// The attribution profiler partitions a run's total cycle count over
// these components under a hard conservation invariant: the sum of all
// component buckets equals the platform's cycle counter exactly.
type Component int

// Attribution components. CompBaseIssue..CompDSR partition the cycle
// counter; CompNone marks "no override active".
const (
	// CompNone is the sentinel "no component" (no override active).
	CompNone Component = iota - 1

	// CompBaseIssue is the one base cycle charged per instruction.
	CompBaseIssue Component = iota - 1
	// CompLoadStore is the pipeline's own load-use and store-issue
	// cycles (independent of the hierarchy latency).
	CompLoadStore
	// CompBranch is the taken-branch penalty.
	CompBranch
	// CompIntOp is multi-cycle integer execution (mul/div).
	CompIntOp
	// CompFPUBase is the fixed FPU operation latency.
	CompFPUBase
	// CompFPUJitter is the value-dependent extra latency of fdiv/fsqrt —
	// the paper's "maximum jitter of 3 cycles" source (§VI).
	CompFPUJitter
	// CompIL1 is the IL1 self-latency of instruction fetches.
	CompIL1
	// CompDL1 is the DL1 self-latency of data reads.
	CompDL1
	// CompBus is the AMBA AHB bus self-latency (arbitration, transfer,
	// and any modelled co-runner interference).
	CompBus
	// CompL2 is the unified L2 self-latency.
	CompL2
	// CompDRAM is the SDRAM controller latency.
	CompDRAM
	// CompStorePath is the visible (not store-buffer-hidden) portion of
	// the write-through store path, hierarchy latency included.
	CompStorePath
	// CompITLBWalk is instruction-side translation: ITLB hit latency plus
	// the full cost of page-table walks it triggers.
	CompITLBWalk
	// CompDTLBWalk is the data-side counterpart.
	CompDTLBWalk
	// CompWindowTrap is register-window overflow/underflow handling: trap
	// overhead plus the complete cost of the 16-word spills and fills.
	CompWindowTrap
	// CompIPoint is RVS instrumentation-point (timestamp store) cost.
	CompIPoint
	// CompDSR is cycle cost charged by the DSR runtime inside the
	// measured window (lazy relocation, §III.B.1).
	CompDSR

	// NumComponents is the bucket count.
	NumComponents
)

var componentNames = [NumComponents]string{
	"base_issue", "load_store_issue", "branch", "int_op", "fpu_base",
	"fpu_jitter", "il1_stall", "dl1_stall", "bus", "l2_stall", "dram_stall",
	"store_path", "itlb_walk", "dtlb_walk", "window_trap", "ipoint", "dsr_runtime",
}

func (c Component) String() string {
	if c >= 0 && c < NumComponents {
		return componentNames[c]
	}
	return fmt.Sprintf("Component(%d)", int(c))
}

// ComponentByName returns the component with the given name, or
// CompNone if unknown.
func ComponentByName(name string) Component {
	for i, n := range componentNames {
		if n == name {
			return Component(i)
		}
	}
	return CompNone
}

// Attribution accumulates cycles per component for one run. A nil
// *Attribution is the disabled profiler: every method no-ops (or returns
// zero) and nothing allocates — the zero-overhead-when-disabled path.
//
// The attribution protocol is built for a synchronous, single-threaded
// hierarchy: components book their *self* latency (total minus whatever
// deeper levels booked during the same transaction), so the sum of all
// bookings during a memory transaction equals exactly the latency the
// CPU is charged. Overrides redirect all bookings inside a span (a TLB
// walk, a window trap, the store path) to a single component, keeping
// the partition exact while matching the architectural cause.
type Attribution struct {
	buckets [NumComponents]mem.Cycles
	total   mem.Cycles
	// override/overridden: the active booking redirect. A separate bool
	// keeps the zero value of Attribution usable (Component's zero value
	// is CompBaseIssue, not CompNone).
	override   Component
	overridden bool
	// suspended disables booking entirely; used while the DSR runtime
	// issues its own cache traffic whose cost is charged separately.
	suspended bool
}

// NewAttribution returns an enabled, zeroed profiler. The zero value of
// Attribution is equally usable; the constructor exists for symmetry
// with the rest of the package.
func NewAttribution() *Attribution {
	return &Attribution{}
}

// Reset zeroes every bucket (one attribution per measured run); nil-safe.
func (a *Attribution) Reset() {
	if a == nil {
		return
	}
	a.buckets = [NumComponents]mem.Cycles{}
	a.total = 0
	a.override = CompNone
	a.overridden = false
	a.suspended = false
}

// Charge books n cycles to comp, or to the active override; nil-safe.
func (a *Attribution) Charge(comp Component, n mem.Cycles) {
	if a == nil || a.suspended || n == 0 {
		return
	}
	if a.overridden {
		comp = a.override
	}
	a.buckets[comp] += n
	a.total += n
}

// Rebate removes n cycles from comp (or the active override): the
// store-buffer-hidden portion of a store's hierarchy latency is booked
// by the probes but never charged to the cycle counter, so it must be
// taken back out to preserve conservation. Nil-safe.
func (a *Attribution) Rebate(comp Component, n mem.Cycles) {
	if a == nil || a.suspended || n == 0 {
		return
	}
	if a.overridden {
		comp = a.override
	}
	if a.buckets[comp] < n || a.total < n {
		panic(fmt.Sprintf("telemetry: rebate of %d from %s underflows (bucket=%d)",
			n, comp, a.buckets[comp]))
	}
	a.buckets[comp] -= n
	a.total -= n
}

// SetOverride activates comp as the booking destination unless an outer
// override is already active (outer wins: a TLB walk inside a window
// trap is trap cost). It returns the previous override, to be passed to
// ClearOverride, and the effective destination. Nil-safe.
func (a *Attribution) SetOverride(comp Component) (prev, eff Component) {
	if a == nil {
		return CompNone, comp
	}
	if !a.overridden {
		a.override = comp
		a.overridden = true
		return CompNone, comp
	}
	return a.override, a.override
}

// ClearOverride restores the override returned by SetOverride; nil-safe.
func (a *Attribution) ClearOverride(prev Component) {
	if a == nil {
		return
	}
	if prev == CompNone {
		a.overridden = false
		a.override = CompNone
		return
	}
	a.override = prev
	a.overridden = true
}

// Suspend stops all booking until Resume; nil-safe. The CPU suspends
// attribution while the DSR call hook runs, then books the hook's whole
// cycle delta to CompDSR — the hook's direct cache traffic must not be
// double-booked.
func (a *Attribution) Suspend() {
	if a != nil {
		a.suspended = true
	}
}

// Resume re-enables booking; nil-safe.
func (a *Attribution) Resume() {
	if a != nil {
		a.suspended = false
	}
}

// Total returns the cycles booked so far across all components;
// nil-safe (0).
func (a *Attribution) Total() mem.Cycles {
	if a == nil {
		return 0
	}
	return a.total
}

// Component returns one bucket; nil-safe (0).
func (a *Attribution) Component(c Component) mem.Cycles {
	if a == nil || c < 0 || c >= NumComponents {
		return 0
	}
	return a.buckets[c]
}

// Snapshot returns a value copy of the per-component buckets; nil-safe
// (zero value).
func (a *Attribution) Snapshot() AttributionSnapshot {
	if a == nil {
		return AttributionSnapshot{}
	}
	return AttributionSnapshot{Buckets: a.buckets, Valid: true}
}

// AttributionSnapshot is an immutable per-run attribution record.
type AttributionSnapshot struct {
	Buckets [NumComponents]mem.Cycles
	// Valid distinguishes a real snapshot from the zero value of a
	// disabled profiler.
	Valid bool
}

// Total returns the sum of all buckets.
func (s AttributionSnapshot) Total() mem.Cycles {
	var t mem.Cycles
	for _, v := range s.Buckets {
		t += v
	}
	return t
}

// Component returns one bucket.
func (s AttributionSnapshot) Component(c Component) mem.Cycles {
	if c < 0 || c >= NumComponents {
		return 0
	}
	return s.Buckets[c]
}

// Add accumulates another snapshot (campaign aggregation).
func (s *AttributionSnapshot) Add(o AttributionSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Valid = s.Valid || o.Valid
}

// Render formats the snapshot as an aligned table of non-zero components
// with percentages, largest first.
func (s AttributionSnapshot) Render() string {
	total := s.Total()
	type row struct {
		c Component
		v mem.Cycles
	}
	rows := make([]row, 0, NumComponents)
	for c := Component(0); c < NumComponents; c++ {
		if s.Buckets[c] > 0 {
			rows = append(rows, row{c, s.Buckets[c]})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].v != rows[j].v {
			return rows[i].v > rows[j].v
		}
		return rows[i].c < rows[j].c
	})
	var b strings.Builder
	fmt.Fprintf(&b, "cycle attribution (total %d):\n", total)
	for _, r := range rows {
		pct := 0.0
		if total > 0 {
			pct = float64(r.v) / float64(total) * 100
		}
		fmt.Fprintf(&b, "  %-18s %12d  %5.1f%%\n", r.c, r.v, pct)
	}
	return b.String()
}

// Probe is a mem.Backend interposer that books the wrapped level's
// self-latency: the latency the level returns minus whatever deeper
// probes booked during the same (synchronous, nested) transaction. A
// chain of probes therefore books exactly the top-level latency, which
// is what the CPU charges — the conservation invariant's hierarchy half.
type Probe struct {
	next mem.Backend
	att  *Attribution
	comp Component
}

// NewProbe wraps next, booking its self-latency to comp in att.
func NewProbe(next mem.Backend, att *Attribution, comp Component) *Probe {
	if next == nil || att == nil {
		panic("telemetry: NewProbe needs a backend and an attribution")
	}
	return &Probe{next: next, att: att, comp: comp}
}

// Unwrap returns the backend the probe interposes on. It exists so the
// CPU can discover the concrete timing parameters of the level behind a
// probe chain (e.g. "is the IL1 hit latency zero?") when deciding
// whether its fetch fast path is cycle-exact. It must never be used to
// bypass the probe on an access path — that would break the
// attribution conservation invariant.
func (p *Probe) Unwrap() mem.Backend { return p.next }

// Read implements mem.Backend.
func (p *Probe) Read(addr mem.Addr, size int) mem.Cycles {
	start := p.att.total
	lat := p.next.Read(addr, size)
	p.att.Charge(p.comp, lat-(p.att.total-start))
	return lat
}

// Write implements mem.Backend.
func (p *Probe) Write(addr mem.Addr, size int) mem.Cycles {
	start := p.att.total
	lat := p.next.Write(addr, size)
	p.att.Charge(p.comp, lat-(p.att.total-start))
	return lat
}
