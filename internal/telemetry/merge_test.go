package telemetry

import (
	"reflect"
	"testing"

	"dsr/internal/mem"
)

func TestRegistryMergeCounters(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("runs", Labels{"series": "dsr"}).Add(3)
	b.Counter("runs", Labels{"series": "dsr"}).Add(4)
	b.Counter("runs", Labels{"series": "base"}).Add(2)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Counter("runs", Labels{"series": "dsr"}).Value(); got != 7 {
		t.Errorf("merged dsr counter = %d, want 7", got)
	}
	if got := a.Counter("runs", Labels{"series": "base"}).Value(); got != 2 {
		t.Errorf("merged base counter = %d, want 2", got)
	}
	// Source is unchanged.
	if got := b.Counter("runs", Labels{"series": "dsr"}).Value(); got != 4 {
		t.Errorf("source counter mutated: %d", got)
	}
}

func TestRegistryMergeGaugesLastWriterWins(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Gauge("depth", nil).Set(10)
	b.Gauge("depth", nil).Set(3)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Gauge("depth", nil).Value(); got != 3 {
		t.Errorf("merged gauge = %g, want src value 3", got)
	}
}

func TestRegistryMergeHistograms(t *testing.T) {
	bounds := []float64{1, 10, 100}
	a, b := NewRegistry(), NewRegistry()
	for _, v := range []float64{0.5, 5, 50} {
		a.Histogram("lat", nil, bounds).Observe(v)
	}
	for _, v := range []float64{5, 500} {
		b.Histogram("lat", nil, bounds).Observe(v)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	h := a.Histogram("lat", nil, bounds)
	if h.Count() != 5 {
		t.Errorf("merged count = %d, want 5", h.Count())
	}
	if h.Sum() != 0.5+5+50+5+500 {
		t.Errorf("merged sum = %g", h.Sum())
	}
	wantCum := []uint64{1, 3, 4} // cumulative at bounds 1, 10, 100; Count() holds the +Inf total
	if !reflect.DeepEqual(h.Cumulative(), wantCum) {
		t.Errorf("merged cumulative counts = %v, want %v", h.Cumulative(), wantCum)
	}
}

func TestRegistryMergeBoundsMismatch(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Histogram("lat", nil, []float64{1, 2}).Observe(1)
	b.Histogram("lat", nil, []float64{1, 3}).Observe(1)
	before := a.Snapshot()
	if err := a.Merge(b); err == nil {
		t.Fatal("bounds mismatch did not error")
	}
	if !MetricsEqual(before, a.Snapshot()) {
		t.Error("failed merge partially applied")
	}
}

func TestRegistryMergeNilSafe(t *testing.T) {
	var nilReg *Registry
	r := NewRegistry()
	r.Counter("c", nil).Inc()
	if err := nilReg.Merge(r); err != nil {
		t.Fatal(err)
	}
	if err := r.Merge(nilReg); err != nil {
		t.Fatal(err)
	}
	if got := r.Counter("c", nil).Value(); got != 1 {
		t.Errorf("merge with nil changed counter: %d", got)
	}
}

// TestRegistryMergeOrderDeterministic checks the campaign reduction
// property: merging per-worker registries in canonical order always
// produces the same snapshot.
func TestRegistryMergeOrderDeterministic(t *testing.T) {
	build := func() []*Registry {
		regs := make([]*Registry, 3)
		for w := range regs {
			regs[w] = NewRegistry()
			regs[w].Counter("runs", nil).Add(uint64(w + 1))
			regs[w].Histogram("lat", nil, []float64{10, 100}).Observe(float64(w) * 42)
			regs[w].Gauge("last", nil).Set(float64(w))
		}
		return regs
	}
	merged := func() []Metric {
		root := NewRegistry()
		for _, r := range build() {
			if err := root.Merge(r); err != nil {
				t.Fatal(err)
			}
		}
		return root.Snapshot()
	}
	first := merged()
	for i := 0; i < 5; i++ {
		if !MetricsEqual(first, merged()) {
			t.Fatal("repeated canonical-order merges disagree")
		}
	}
}

// TestCaptureTakeReplay is the engine's event-merge primitive: events
// captured on a clockless worker log and replayed at the campaign
// clock must be indistinguishable from events emitted live into the
// campaign log.
func TestCaptureTakeReplay(t *testing.T) {
	emit := func(l *EventLog) {
		l.Emit("dsr", "dsr.reboot", PhaseInstant, Uint64("seed", 7))
		l.Emit("dsr", "dsr.reloc", PhaseInstant, String("func", "f1"))
		l.Emit("dsr", "dsr.reloc", PhaseInstant, String("func", "f2"))
	}

	// Live reference: a campaign log with a clock, events emitted
	// directly.
	var clock mem.Cycles = 12345
	live := NewEventLog(0)
	live.SetClock(func() mem.Cycles { return clock })
	emit(live)

	// Capture + replay: same events into a worker capture log, then
	// replayed at the same campaign clock position.
	replayed := NewEventLog(0)
	replayed.SetClock(func() mem.Cycles { return clock })
	capture := NewCaptureLog()
	emit(capture)
	replayed.ReplayAt(clock, capture.Take())

	if !reflect.DeepEqual(live.Events(), replayed.Events()) {
		t.Errorf("replayed events differ from live:\n live   %v\n replay %v",
			live.Events(), replayed.Events())
	}
}

// TestCaptureTakeResets checks Take drains the capture completely so
// consecutive runs on one worker produce independent captures with
// per-run sequence numbering.
func TestCaptureTakeResets(t *testing.T) {
	c := NewCaptureLog()
	c.Emit("t", "a", PhaseInstant)
	c.Emit("t", "b", PhaseInstant)
	first := c.Take()
	if len(first) != 2 {
		t.Fatalf("first take: %d events", len(first))
	}
	if c.Len() != 0 {
		t.Errorf("capture not drained: %d left", c.Len())
	}
	c.Emit("t", "c", PhaseInstant)
	second := c.Take()
	if len(second) != 1 {
		t.Fatalf("second take: %d events", len(second))
	}
	if second[0].Seq != 0 {
		t.Errorf("sequence did not restart: %d", second[0].Seq)
	}
	if got := c.Take(); got != nil {
		t.Errorf("empty take returned %v", got)
	}
}

// TestCaptureUnbounded checks capture logs never drop, unlike the ring.
func TestCaptureUnbounded(t *testing.T) {
	c := NewCaptureLog()
	const n = 10_000 // far beyond the default ring capacity
	for i := 0; i < n; i++ {
		c.Emit("t", "e", PhaseInstant)
	}
	if c.Len() != n || c.Dropped() != 0 {
		t.Errorf("capture len=%d dropped=%d, want %d/0", c.Len(), c.Dropped(), n)
	}
}

// TestReplayPreservesRingSemantics checks a replay into a small
// bounded ring drops the same way live emission would.
func TestReplayPreservesRingSemantics(t *testing.T) {
	mk := func() *EventLog { return NewEventLog(4) }
	live := mk()
	for i := 0; i < 6; i++ {
		live.EmitAt(mem.Cycles(i), "t", "e", PhaseInstant, Int("i", i))
	}
	replay := mk()
	c := NewCaptureLog()
	for i := 0; i < 6; i++ {
		c.EmitAt(mem.Cycles(i), "t", "e", PhaseInstant, Int("i", i))
	}
	replay.ReplayAt(0, c.Take())
	if !reflect.DeepEqual(live.Events(), replay.Events()) {
		t.Error("replayed ring contents differ from live emission")
	}
	if live.Dropped() != replay.Dropped() {
		t.Errorf("dropped counts differ: live %d replay %d", live.Dropped(), replay.Dropped())
	}
}

// TestReplayNilSafe checks the disabled-log path.
func TestReplayNilSafe(t *testing.T) {
	var l *EventLog
	l.ReplayAt(0, []Event{{Kind: "x"}})
	if l.Take() != nil {
		t.Error("nil Take")
	}
}
