package telemetry

import "fmt"

// Merge folds src's metrics into r, the deterministic reduction of
// per-worker registries after a sharded campaign:
//
//   - counters add,
//   - histograms add bucket-wise (sum and count included),
//   - gauges take src's value (last-writer-wins, with the caller's
//     merge order defining "last" — the campaign engine merges shards
//     in canonical order, so the result is deterministic).
//
// Histogram bucket bounds are fixed per metric name; merging two
// registries that disagree on a name's bounds is a programming error
// and returns a non-nil error without partially applying that metric.
// Nil-safe: merging from or into a nil (disabled) registry is a no-op.
//
// Merge locks both registries (r before src); do not call two merges
// with swapped arguments concurrently.
func (r *Registry) Merge(src *Registry) error {
	if r == nil || src == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	src.mu.Lock()
	defer src.mu.Unlock()

	// Validate histogram bounds first so a mismatch leaves r untouched.
	for name, sb := range src.histBounds {
		rb, ok := r.histBounds[name]
		if !ok {
			continue
		}
		if !equalBounds(rb, sb) {
			return fmt.Errorf("telemetry: Merge: histogram %q bucket bounds differ (%v vs %v)", name, rb, sb)
		}
	}

	for k, c := range src.counters {
		rc, ok := r.counters[k]
		if !ok {
			rc = &Counter{}
			r.counters[k] = rc
		}
		rc.Add(c.Value())
	}
	for k, g := range src.gauges {
		rg, ok := r.gauges[k]
		if !ok {
			rg = &Gauge{}
			r.gauges[k] = rg
		}
		rg.Set(g.Value())
	}
	for name, sb := range src.histBounds {
		if _, ok := r.histBounds[name]; !ok {
			r.histBounds[name] = append([]float64(nil), sb...)
		}
	}
	for k, h := range src.histograms {
		rh, ok := r.histograms[k]
		if !ok {
			bb := r.histBounds[k.name]
			rh = &Histogram{bounds: bb, counts: make([]uint64, len(bb)+1)}
			r.histograms[k] = rh
		}
		// Snapshot src's histogram first, then apply under rh's lock —
		// one histogram lock at a time, so there is no lock-order hazard
		// with concurrent Observe calls on either side.
		counts, sum, n := h.rawSnapshot()
		rh.mu.Lock()
		for i := range counts {
			rh.counts[i] += counts[i]
		}
		rh.sum += sum
		rh.n += n
		rh.mu.Unlock()
	}
	return nil
}

// equalBounds reports whether two bucket-bound slices are identical.
func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
