package telemetry

import "fmt"

// Merge folds src's metrics into r, the deterministic reduction of
// per-worker registries after a sharded campaign:
//
//   - counters add,
//   - histograms add bucket-wise (sum and count included),
//   - gauges take src's value (last-writer-wins, with the caller's
//     merge order defining "last" — the campaign engine merges shards
//     in canonical order, so the result is deterministic).
//
// Histogram bucket bounds are fixed per metric name; merging two
// registries that disagree on a name's bounds is a programming error
// and returns a non-nil error without partially applying that metric.
// Nil-safe: merging from or into a nil (disabled) registry is a no-op.
//
// Merge locks both registries (r before src); do not call two merges
// with swapped arguments concurrently.
func (r *Registry) Merge(src *Registry) error {
	if r == nil || src == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	src.mu.Lock()
	defer src.mu.Unlock()

	// Validate histogram bounds first so a mismatch leaves r untouched.
	for name, sb := range src.histBounds {
		rb, ok := r.histBounds[name]
		if !ok {
			continue
		}
		if !equalBounds(rb, sb) {
			return fmt.Errorf("telemetry: Merge: histogram %q bucket bounds differ (%v vs %v)", name, rb, sb)
		}
	}

	for k, c := range src.counters {
		rc, ok := r.counters[k]
		if !ok {
			rc = &Counter{}
			r.counters[k] = rc
		}
		rc.v += c.v
	}
	for k, g := range src.gauges {
		rg, ok := r.gauges[k]
		if !ok {
			rg = &Gauge{}
			r.gauges[k] = rg
		}
		rg.v = g.v
	}
	for name, sb := range src.histBounds {
		if _, ok := r.histBounds[name]; !ok {
			r.histBounds[name] = append([]float64(nil), sb...)
		}
	}
	for k, h := range src.histograms {
		rh, ok := r.histograms[k]
		if !ok {
			bb := r.histBounds[k.name]
			rh = &Histogram{bounds: bb, counts: make([]uint64, len(bb)+1)}
			r.histograms[k] = rh
		}
		for i := range h.counts {
			rh.counts[i] += h.counts[i]
		}
		rh.sum += h.sum
		rh.n += h.n
	}
	return nil
}

// equalBounds reports whether two bucket-bound slices are identical.
func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
