package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// TraceEvent is one Chrome trace_event record (the JSON Array / Object
// format consumed by chrome://tracing and Perfetto).
type TraceEvent struct {
	Name string `json:"name"`
	// Cat is the event category (we use the dotted kind prefix).
	Cat string `json:"cat"`
	// Ph is the phase: "B"/"E" span brackets or "i" instants.
	Ph string `json:"ph"`
	// Ts is the timestamp in microseconds.
	Ts float64 `json:"ts"`
	// Pid/Tid place the event on a timeline row; we map the campaign to
	// one process and each track to one thread.
	Pid int `json:"pid"`
	Tid int `json:"tid"`
	// S is the instant-event scope ("t" thread), required by the schema
	// for ph=="i".
	S string `json:"s,omitempty"`
	// Args carries the event attributes.
	Args map[string]string `json:"args,omitempty"`
}

// traceFile is the Object Format wrapper, which Perfetto and
// chrome://tracing both accept and which allows metadata.
type traceFile struct {
	TraceEvents     []TraceEvent      `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// DefaultCyclesPerMicro converts simulated cycles to trace microseconds:
// the case study's 80 MHz LEON3 runs 80 cycles per microsecond.
const DefaultCyclesPerMicro = 80.0

// WriteChromeTrace renders the event log as a Chrome trace_event JSON
// file: every track becomes a thread row, B/E events become nested
// spans, instants become 'i' marks, and timestamps are converted from
// simulated cycles at cyclesPerMicro (0 selects the 80 MHz default).
// Load the output in chrome://tracing or https://ui.perfetto.dev.
//
// The event log is a bounded ring, so its oldest record can sit in the
// middle of a B/E pair; to keep the output schema-valid the writer
// drops end events whose begin was evicted and closes any begin left
// open at the tail.
func (d *Dump) WriteChromeTrace(w io.Writer, cyclesPerMicro float64) error {
	if cyclesPerMicro <= 0 {
		cyclesPerMicro = DefaultCyclesPerMicro
	}
	tids := map[string]int{}
	var order []string
	for _, e := range d.Events {
		if _, ok := tids[e.Track]; !ok {
			tids[e.Track] = len(tids) + 1
			order = append(order, e.Track)
		}
	}
	tf := traceFile{
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"generator": "dsr internal/telemetry"},
		TraceEvents:     make([]TraceEvent, 0, len(d.Events)+len(order)),
	}
	// Thread-name metadata rows so the UI shows track names.
	for _, track := range order {
		name := track
		if name == "" {
			name = "events"
		}
		tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
			Name: "thread_name", Cat: "__metadata", Ph: "M", Pid: 1, Tid: tids[track],
			Args: map[string]string{"name": name},
		})
	}
	openByTid := map[int][]string{}
	lastTsByTid := map[int]float64{}
	for _, e := range d.Events {
		te := TraceEvent{
			Name: e.Kind,
			Cat:  kindCategory(e.Kind),
			Ph:   string(rune(e.Phase)),
			Ts:   float64(e.TS) / cyclesPerMicro,
			Pid:  1,
			Tid:  tids[e.Track],
		}
		if e.Phase == PhaseInstant {
			te.S = "t"
		}
		switch e.Phase {
		case PhaseBegin:
			openByTid[te.Tid] = append(openByTid[te.Tid], e.Kind)
		case PhaseEnd:
			stack := openByTid[te.Tid]
			if len(stack) == 0 || stack[len(stack)-1] != e.Kind {
				continue // begin evicted from the ring
			}
			openByTid[te.Tid] = stack[:len(stack)-1]
		}
		lastTsByTid[te.Tid] = te.Ts
		if len(e.Attrs) > 0 {
			te.Args = make(map[string]string, len(e.Attrs))
			for _, a := range e.Attrs {
				te.Args[a.Key] = a.Value
			}
		}
		tf.TraceEvents = append(tf.TraceEvents, te)
	}
	// Close anything still open (an interrupted recording) at its
	// track's last timestamp, innermost first.
	for _, track := range order {
		tid := tids[track]
		stack := openByTid[tid]
		for i := len(stack) - 1; i >= 0; i-- {
			tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
				Name: stack[i], Cat: kindCategory(stack[i]), Ph: "E",
				Ts: lastTsByTid[tid], Pid: 1, Tid: tid,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(tf); err != nil {
		return fmt.Errorf("telemetry: chrome trace: %w", err)
	}
	return nil
}

// WriteSpanTrace renders a host wall-time span timeline (Tracer.Spans)
// as a Chrome trace_event JSON file: one thread row per worker (the
// campaign/merge track is "campaign"), spans as nested B/E pairs, and
// timestamps in microseconds since the tracer epoch. The output passes
// ValidateChromeTrace and loads in chrome://tracing / Perfetto — this
// is the worker-timeline artifact `make obs-smoke` uploads.
func WriteSpanTrace(w io.Writer, spans []Span) error {
	byWorker := map[int][]Span{}
	var ids []int
	for _, s := range spans {
		if _, ok := byWorker[s.Worker]; !ok {
			ids = append(ids, s.Worker)
		}
		byWorker[s.Worker] = append(byWorker[s.Worker], s)
	}
	sort.Ints(ids)
	tf := traceFile{
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"generator": "dsr internal/telemetry (spans)"},
	}
	for ti, id := range ids {
		tid := ti + 1
		name := fmt.Sprintf("worker %d", id)
		if id < 0 {
			name = "campaign"
		}
		tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
			Name: "thread_name", Cat: "__metadata", Ph: "M", Pid: 1, Tid: tid,
			Args: map[string]string{"name": name},
		})
		track := byWorker[id]
		SortSpans(track)
		// Emit properly nested B/E pairs: close every open span that
		// ends at or before the next span's start, defensively clamping
		// children to their parent's end so the E stack always matches.
		type openSpan struct {
			name string
			end  float64
		}
		var open []openSpan
		emit := func(ph, name string, ts float64, args map[string]string) {
			tf.TraceEvents = append(tf.TraceEvents, TraceEvent{
				Name: name, Cat: "campaign", Ph: ph, Ts: ts, Pid: 1, Tid: tid, Args: args,
			})
		}
		for i := range track {
			s := &track[i]
			start := float64(s.Start) / 1e3
			end := float64(s.End()) / 1e3
			for len(open) > 0 && open[len(open)-1].end <= start {
				top := open[len(open)-1]
				open = open[:len(open)-1]
				emit("E", top.name, top.end, nil)
			}
			if len(open) > 0 && end > open[len(open)-1].end {
				end = open[len(open)-1].end
			}
			if end < start {
				end = start
			}
			var args map[string]string
			if s.Run >= 0 {
				args = map[string]string{"run": fmt.Sprint(s.Run)}
			}
			emit("B", s.Kind, start, args)
			open = append(open, openSpan{name: s.Kind, end: end})
		}
		for len(open) > 0 {
			top := open[len(open)-1]
			open = open[:len(open)-1]
			emit("E", top.name, top.end, nil)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(tf); err != nil {
		return fmt.Errorf("telemetry: span trace: %w", err)
	}
	return nil
}

// kindCategory returns the dotted prefix of an event kind ("dsr.reboot"
// → "dsr"), used as the trace category.
func kindCategory(kind string) string {
	for i := 0; i < len(kind); i++ {
		if kind[i] == '.' {
			return kind[:i]
		}
	}
	return kind
}

// ValidateChromeTrace parses a Chrome trace JSON document and checks the
// trace_event schema invariants the viewers rely on:
//
//   - every event has a known phase (B, E, i, M) and non-negative ts;
//   - per (pid, tid), timestamps are monotonically non-decreasing;
//   - per (pid, tid), B and E events are properly nested and matched
//     (every E closes the innermost open B of the same name; no E
//     without an open B; no B left open at the end).
//
// It returns the number of span pairs checked.
func ValidateChromeTrace(r io.Reader) (spans int, err error) {
	var tf traceFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&tf); err != nil {
		return 0, fmt.Errorf("telemetry: trace validate: %w", err)
	}
	type tidKey struct{ pid, tid int }
	lastTs := map[tidKey]float64{}
	open := map[tidKey][]string{}
	// Events in the file are ordered per track by construction; viewers
	// sort by ts anyway, so validate in ts order per track.
	byTrack := map[tidKey][]TraceEvent{}
	var tracks []tidKey
	for _, e := range tf.TraceEvents {
		k := tidKey{e.Pid, e.Tid}
		if _, ok := byTrack[k]; !ok {
			tracks = append(tracks, k)
		}
		byTrack[k] = append(byTrack[k], e)
	}
	sort.Slice(tracks, func(i, j int) bool {
		if tracks[i].pid != tracks[j].pid {
			return tracks[i].pid < tracks[j].pid
		}
		return tracks[i].tid < tracks[j].tid
	})
	for _, k := range tracks {
		for i, e := range byTrack[k] {
			switch e.Ph {
			case "M":
				continue
			case "B", "E", "i":
			default:
				return spans, fmt.Errorf("telemetry: trace validate: pid=%d tid=%d event %d: unknown phase %q",
					k.pid, k.tid, i, e.Ph)
			}
			if e.Ts < 0 {
				return spans, fmt.Errorf("telemetry: trace validate: pid=%d tid=%d event %d (%s): negative ts %g",
					k.pid, k.tid, i, e.Name, e.Ts)
			}
			if e.Ts < lastTs[k] {
				return spans, fmt.Errorf("telemetry: trace validate: pid=%d tid=%d event %d (%s): ts %g < previous %g (not monotonic)",
					k.pid, k.tid, i, e.Name, e.Ts, lastTs[k])
			}
			lastTs[k] = e.Ts
			switch e.Ph {
			case "B":
				open[k] = append(open[k], e.Name)
			case "E":
				stack := open[k]
				if len(stack) == 0 {
					return spans, fmt.Errorf("telemetry: trace validate: pid=%d tid=%d event %d: E %q without open B",
						k.pid, k.tid, i, e.Name)
				}
				top := stack[len(stack)-1]
				if top != e.Name {
					return spans, fmt.Errorf("telemetry: trace validate: pid=%d tid=%d event %d: E %q closes open B %q (bad nesting)",
						k.pid, k.tid, i, e.Name, top)
				}
				open[k] = stack[:len(stack)-1]
				spans++
			}
		}
		if n := len(open[k]); n > 0 {
			return spans, fmt.Errorf("telemetry: trace validate: pid=%d tid=%d: %d B event(s) left open (first: %q)",
				k.pid, k.tid, n, open[k][0])
		}
	}
	return spans, nil
}
