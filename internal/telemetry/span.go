package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the host-side counterpart of the simulated-cycle event
// log: hierarchical wall-time span tracing of the campaign engine
// itself. Where the event log answers "what did the simulated platform
// do, in cycles", spans answer "where did the host spend its wall
// time running the campaign" — per worker, per run, per phase — which
// is what the parallel-scaling analysis (`dsrstat workers`) and the
// live observability server (internal/obs) are built on.
//
// The clock is the host monotonic clock (time.Since of the tracer
// epoch), so spans are comparable across workers and immune to wall
// clock adjustments. Everything is nil-safe: every method on a nil
// *Tracer or *WorkerTracer is a no-op that allocates nothing, so the
// campaign hot path costs nothing when tracing is disabled.

// SpanKind classifies a span. The hierarchy is
//
//	campaign            (worker -1: the whole Execute call)
//	├── merge.wait      (worker -1: waiting for the next canonical result)
//	├── merge           (worker -1: one run's canonical-order merge)
//	└── worker          (worker w: the worker goroutine's lifetime)
//	    ├── setup       (newWorker: platform + runtime construction)
//	    ├── claim       (claiming the next run index, incl. lock wait)
//	    └── run         (one run end to end)
//	        ├── boot    (platform reset, seed, layout draw)
//	        ├── reloc   (image rebuild, load, metadata writes)
//	        └── execute (simulated execution of the measured run)
type SpanKind uint8

// Span kinds.
const (
	SpanCampaign SpanKind = iota
	SpanWorker
	SpanSetup
	SpanClaim
	SpanRun
	SpanBoot
	SpanReloc
	SpanExecute
	SpanMerge
	SpanMergeWait
	numSpanKinds
)

var spanKindNames = [numSpanKinds]string{
	"campaign", "worker", "setup", "claim", "run",
	"boot", "reloc", "execute", "merge", "merge.wait",
}

// String returns the canonical kind name.
func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return fmt.Sprintf("spankind(%d)", uint8(k))
}

// ParseSpanKind inverts SpanKind.String.
func ParseSpanKind(s string) (SpanKind, error) {
	for k, name := range spanKindNames {
		if name == s {
			return SpanKind(k), nil
		}
	}
	return 0, fmt.Errorf("telemetry: unknown span kind %q", s)
}

// Span is one completed interval on the tracer's monotonic clock.
type Span struct {
	// Worker is the worker id the span belongs to; -1 is the campaign
	// track (the Execute caller's goroutine: campaign + merge spans).
	Worker int `json:"worker"`
	// Run is the canonical run index, or -1 when the span is not scoped
	// to one run (worker, setup, campaign).
	Run int `json:"run"`
	// Kind is the canonical kind name (see SpanKind).
	Kind string `json:"kind"`
	// Start is the span start in nanoseconds since the tracer epoch.
	Start int64 `json:"start_ns"`
	// Dur is the span duration in nanoseconds.
	Dur int64 `json:"dur_ns"`
}

// End returns the span end in nanoseconds since the tracer epoch.
func (s *Span) End() int64 { return s.Start + s.Dur }

// SpanMark is an open span handle returned by WorkerTracer.Begin and
// closed by WorkerTracer.End. It is a plain value (no allocation).
type SpanMark struct {
	start int64
	kind  SpanKind
	run   int32
	depth int32 // stack depth at Begin; 0 marks the disabled tracer
	live  bool
}

// Tracer owns the campaign's span timeline: a monotonic epoch plus one
// WorkerTracer per worker id (the campaign/merge track is worker -1).
// A nil *Tracer is the disabled tracer; Worker returns nil and every
// span operation no-ops without allocating.
type Tracer struct {
	epoch time.Time

	mu      sync.Mutex
	workers map[int]*WorkerTracer
}

// NewTracer returns an enabled tracer with its epoch at now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now(), workers: map[int]*WorkerTracer{}}
}

// Now returns nanoseconds since the tracer epoch on the host monotonic
// clock; nil-safe (0).
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch).Nanoseconds()
}

// Worker returns the tracer track for the given worker id, creating it
// on first use. The call is idempotent — the campaign engine and the
// run functions resolve the same id to the same track — and nil-safe
// (a nil tracer returns a nil *WorkerTracer whose methods no-op).
func (t *Tracer) Worker(id int) *WorkerTracer {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	w, ok := t.workers[id]
	if !ok {
		w = &WorkerTracer{t: t, id: id}
		t.workers[id] = w
	}
	return w
}

// Spans merges every worker track into one timeline, sorted by
// (Start, longer-first, Worker) so parents precede their children —
// the cross-worker merge that makes the trace exportable as a single
// artefact, mirroring Registry.Merge for metrics. Nil-safe (nil).
// It is safe to call while workers are still recording; each track is
// snapshot under its own lock.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	ids := make([]int, 0, len(t.workers))
	for id := range t.workers {
		ids = append(ids, id)
	}
	tracks := make([]*WorkerTracer, 0, len(ids))
	sort.Ints(ids)
	for _, id := range ids {
		tracks = append(tracks, t.workers[id])
	}
	t.mu.Unlock()

	var out []Span
	for _, w := range tracks {
		out = append(out, w.Spans()...)
	}
	SortSpans(out)
	return out
}

// SortSpans sorts spans into the canonical export order: by Start,
// then longer spans first (parents before children at equal start),
// then by worker and kind for full determinism at exact ties.
func SortSpans(spans []Span) {
	sort.SliceStable(spans, func(i, j int) bool {
		a, b := &spans[i], &spans[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Dur != b.Dur {
			return a.Dur > b.Dur
		}
		if a.Worker != b.Worker {
			return a.Worker < b.Worker
		}
		return a.Kind < b.Kind
	})
}

// WorkerLive is one worker's live state, read lock-free for the
// observability server's /campaign snapshot.
type WorkerLive struct {
	Worker int    `json:"worker"`
	State  string `json:"state"`   // current innermost span kind, or "idle"
	Run    int    `json:"run"`     // current run index, -1 when none
	Runs   uint64 `json:"runs"`    // completed run spans
	BusyNs int64  `json:"busy_ns"` // accumulated run-span time
}

// LiveWorkers returns the live state of every worker track (campaign
// track -1 included), sorted by worker id; nil-safe (nil).
func (t *Tracer) LiveWorkers() []WorkerLive {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	ids := make([]int, 0, len(t.workers))
	for id := range t.workers {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	tracks := make([]*WorkerTracer, 0, len(ids))
	for _, id := range ids {
		tracks = append(tracks, t.workers[id])
	}
	t.mu.Unlock()

	out := make([]WorkerLive, 0, len(tracks))
	for _, w := range tracks {
		kind, run := w.liveState()
		state := "idle"
		if kind != 0 {
			state = SpanKind(kind - 1).String()
		}
		out = append(out, WorkerLive{
			Worker: w.id, State: state, Run: run,
			Runs: w.runs.Load(), BusyNs: w.busy.Load(),
		})
	}
	return out
}

// WorkerTracer records the spans of one worker. Begin/End maintain a
// stack of open spans so nested phases (boot inside run) inherit the
// enclosing run index, and so the live state always names the
// innermost open span. All methods are nil-safe no-ops on a nil
// receiver, which is what a disabled tracer hands out.
type WorkerTracer struct {
	t  *Tracer
	id int

	mu    sync.Mutex
	spans []Span
	stack []SpanMark

	// state packs the innermost open span for lock-free live reads:
	// (run+2)<<8 | (kind+1); 0 means idle.
	state atomic.Uint64
	runs  atomic.Uint64 // completed SpanRun count
	busy  atomic.Int64  // accumulated SpanRun nanoseconds
}

// Begin opens a span of the given kind. run is the canonical run index
// the span belongs to, or -1 to inherit it from the enclosing open
// span (how boot/reloc spans inside Runtime.Reboot learn their run).
// Nil-safe: returns a dead mark that End ignores.
func (w *WorkerTracer) Begin(kind SpanKind, run int) SpanMark {
	if w == nil {
		return SpanMark{}
	}
	w.mu.Lock()
	if run < 0 {
		if n := len(w.stack); n > 0 {
			run = int(w.stack[n-1].run)
		}
	}
	m := SpanMark{start: w.t.Now(), kind: kind, run: int32(run), depth: int32(len(w.stack)), live: true}
	w.stack = append(w.stack, m)
	w.state.Store(packLive(kind, run))
	w.mu.Unlock()
	return m
}

// End closes a span opened by Begin, recording it. Any spans opened
// after m and not yet ended are closed implicitly at the same instant
// (defensive; balanced callers never hit this). Nil-safe, and a no-op
// for the dead mark a nil tracer hands out.
func (w *WorkerTracer) End(m SpanMark) {
	if w == nil || !m.live {
		return
	}
	now := w.t.Now()
	w.mu.Lock()
	// Pop the stack back to the mark's depth, recording any unbalanced
	// inner spans as ending now.
	for len(w.stack) > int(m.depth) {
		top := w.stack[len(w.stack)-1]
		w.stack = w.stack[:len(w.stack)-1]
		w.record(top, now)
	}
	if n := len(w.stack); n > 0 {
		top := w.stack[n-1]
		w.state.Store(packLive(top.kind, int(top.run)))
	} else {
		w.state.Store(0)
	}
	w.mu.Unlock()
}

// record books one closed span; called with w.mu held.
func (w *WorkerTracer) record(m SpanMark, end int64) {
	dur := end - m.start
	if dur < 0 {
		dur = 0
	}
	w.spans = append(w.spans, Span{
		Worker: w.id, Run: int(m.run), Kind: m.kind.String(),
		Start: m.start, Dur: dur,
	})
	if m.kind == SpanRun {
		w.runs.Add(1)
		w.busy.Add(dur)
	}
}

// Spans returns a snapshot of the track's completed spans; nil-safe.
func (w *WorkerTracer) Spans() []Span {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Span(nil), w.spans...)
}

// liveState reads the packed live state.
func (w *WorkerTracer) liveState() (kindPlus1 uint64, run int) {
	s := w.state.Load()
	if s == 0 {
		return 0, -1
	}
	return s & 0xff, int(s>>8) - 2
}

func packLive(kind SpanKind, run int) uint64 {
	return uint64(run+2)<<8 | uint64(kind) + 1
}

// ValidateSpans checks the span schema invariants the exporters and
// the worker report rely on:
//
//   - every kind parses, Start and Dur are non-negative, Worker and
//     Run are >= -1;
//   - per worker track, spans are properly nested: two spans either
//     do not overlap or one contains the other (no partial overlap).
//
// It returns the number of spans checked.
func ValidateSpans(spans []Span) (int, error) {
	byWorker := map[int][]Span{}
	var workers []int
	for i := range spans {
		s := &spans[i]
		if _, err := ParseSpanKind(s.Kind); err != nil {
			return 0, fmt.Errorf("telemetry: span validate: span %d: %w", i, err)
		}
		if s.Start < 0 || s.Dur < 0 {
			return 0, fmt.Errorf("telemetry: span validate: span %d (%s): negative start/dur (%d, %d)",
				i, s.Kind, s.Start, s.Dur)
		}
		if s.Worker < -1 || s.Run < -1 {
			return 0, fmt.Errorf("telemetry: span validate: span %d (%s): bad worker/run (%d, %d)",
				i, s.Kind, s.Worker, s.Run)
		}
		if _, ok := byWorker[s.Worker]; !ok {
			workers = append(workers, s.Worker)
		}
		byWorker[s.Worker] = append(byWorker[s.Worker], *s)
	}
	sort.Ints(workers)
	for _, w := range workers {
		track := byWorker[w]
		SortSpans(track)
		var open []Span // stack of enclosing spans
		for i := range track {
			s := &track[i]
			for len(open) > 0 && open[len(open)-1].End() <= s.Start {
				open = open[:len(open)-1]
			}
			if len(open) > 0 && s.End() > open[len(open)-1].End() {
				p := &open[len(open)-1]
				return 0, fmt.Errorf("telemetry: span validate: worker %d: %s [%d,%d) partially overlaps %s [%d,%d)",
					w, s.Kind, s.Start, s.End(), p.Kind, p.Start, p.End())
			}
			open = append(open, *s)
		}
	}
	return len(spans), nil
}
