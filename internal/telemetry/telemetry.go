// Package telemetry is the observability layer of the simulator stack:
// a zero-dependency metrics registry (counters, gauges, fixed-bucket
// histograms), a cycle-attribution profiler for the platform (splitting
// every run's execution time into named architectural components under a
// hard conservation invariant), a bounded structured event log, and
// exporters to JSONL, CSV, Prometheus text exposition and Chrome
// trace_event JSON.
//
// The paper's measurement argument rests on seeing inside the platform:
// Rapita RVS instrumentation points plus the LEON3 performance counters
// are what let the authors attribute execution-time jitter to cache
// placement (Table I) and certify the i.i.d. gate (§V–VI). This package
// gives the reproduction the same visibility — and makes it machine
// readable, so campaign artefacts carry their own provenance.
//
// Everything is nil-safe: every method on a nil *Registry, *Counter,
// *Gauge, *Histogram, *EventLog or *Attribution is a no-op that
// allocates nothing, so disabled telemetry costs (almost) nothing on the
// hot path and call sites need no guards.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Concurrency contract: individual metrics (Counter, Gauge, Histogram)
// are safe for concurrent mutation and read — counters and gauges are
// atomics, histograms take a small internal lock — and Snapshot may run
// while writers are active. A snapshot is consistent per metric (a
// histogram's sum/count/buckets always agree) but makes no cross-metric
// promise: two metrics updated together may be captured one-before,
// one-after. That is exactly the guarantee a mid-campaign Prometheus
// scrape needs, and it is what keeps the ReadPrometheus→WritePrometheus
// round-trip parseable under concurrent registry mutation.

// Counter is a monotonically increasing uint64 metric, safe for
// concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter; nil-safe.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc adds one; nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; nil-safe (0).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float64 metric, safe for concurrent use (the
// value is stored as atomic bits).
type Gauge struct {
	bits atomic.Uint64
}

// Set records the value; nil-safe.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last recorded value; nil-safe (0).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram. Bounds are the
// inclusive upper bounds of each bucket; observations above the last
// bound land in the implicit +Inf bucket. Observe and the read methods
// are safe for concurrent use.
type Histogram struct {
	bounds []float64 // immutable after construction

	mu     sync.Mutex
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	n      uint64
}

// Observe records one observation; nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.sum += v
	h.n++
	idx := len(h.bounds)
	for i, b := range h.bounds {
		if v <= b {
			idx = i
			break
		}
	}
	h.counts[idx]++
	h.mu.Unlock()
}

// Count returns the number of observations; nil-safe (0).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of observations; nil-safe (0).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Bounds returns the bucket upper bounds; nil-safe.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// Cumulative returns the cumulative counts per bound (Prometheus
// convention: counts[i] = observations <= bounds[i]), excluding +Inf.
func (h *Histogram) Cumulative() []uint64 {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cumulativeLocked()
}

// cumulativeLocked computes the cumulative counts; h.mu must be held.
func (h *Histogram) cumulativeLocked() []uint64 {
	out := make([]uint64, len(h.bounds))
	var cum uint64
	for i := range h.bounds {
		cum += h.counts[i]
		out[i] = cum
	}
	return out
}

// snapshot captures a consistent (counts, sum, n) triple.
func (h *Histogram) snapshot() (cum []uint64, sum float64, n uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cumulativeLocked(), h.sum, h.n
}

// rawSnapshot captures the per-bucket (non-cumulative) counts.
func (h *Histogram) rawSnapshot() (counts []uint64, sum float64, n uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.counts...), h.sum, h.n
}

// ExpBounds returns n exponentially spaced bounds starting at start with
// the given factor — the standard latency-histogram shape.
func ExpBounds(start, factor float64, n int) []float64 {
	if n <= 0 || start <= 0 || factor <= 1 {
		panic("telemetry: ExpBounds needs n>0, start>0, factor>1")
	}
	out := make([]float64, n)
	v := start
	for i := 0; i < n; i++ {
		out[i] = v
		v *= factor
	}
	return out
}

// metricKey identifies a metric instance: name plus canonical label text.
type metricKey struct {
	name   string
	labels string
}

// Labels is an unordered label set. Exporters render it sorted by key.
type Labels map[string]string

// String renders the sorted k=v form ("a=1;b=2"), the same canonical
// text the exporters use for identity.
func (l Labels) String() string { return l.canonical() }

// canonical renders the sorted k=v form used for identity and CSV.
func (l Labels) canonical() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%s=%s", k, l[k])
	}
	return b.String()
}

// Registry holds named metrics. The zero value of *Registry (nil) is the
// disabled registry: all lookups return nil metrics whose methods no-op.
type Registry struct {
	mu         sync.Mutex
	counters   map[metricKey]*Counter
	gauges     map[metricKey]*Gauge
	histograms map[metricKey]*Histogram
	histBounds map[string][]float64 // bounds fixed per metric name
}

// NewRegistry returns an enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[metricKey]*Counter{},
		gauges:     map[metricKey]*Gauge{},
		histograms: map[metricKey]*Histogram{},
		histBounds: map[string][]float64{},
	}
}

// Counter returns (creating if needed) the counter name{labels};
// nil-safe (returns nil, whose methods no-op).
func (r *Registry) Counter(name string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	k := metricKey{name, labels.canonical()}
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge name{labels}; nil-safe.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	k := metricKey{name, labels.canonical()}
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram name{labels} with
// the given bucket bounds; bounds are fixed by the first registration of
// the name and later calls may pass nil. Nil-safe.
func (r *Registry) Histogram(name string, labels Labels, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	k := metricKey{name, labels.canonical()}
	h, ok := r.histograms[k]
	if !ok {
		bb, fixed := r.histBounds[name]
		if !fixed {
			if len(bounds) == 0 {
				bounds = ExpBounds(1000, 2, 20)
			}
			bb = append([]float64(nil), bounds...)
			sort.Float64s(bb)
			r.histBounds[name] = bb
		}
		h = &Histogram{bounds: bb, counts: make([]uint64, len(bb)+1)}
		r.histograms[k] = h
	}
	return h
}

// MetricKind distinguishes metric families in snapshots and exports.
type MetricKind string

// Metric kinds.
const (
	KindCounter   MetricKind = "counter"
	KindGauge     MetricKind = "gauge"
	KindHistogram MetricKind = "histogram"
)

// Metric is one exported metric point: a counter or gauge value, or a
// whole histogram (bounds + cumulative counts + sum + count).
type Metric struct {
	Kind   MetricKind `json:"kind"`
	Name   string     `json:"name"`
	Labels Labels     `json:"labels,omitempty"`

	// Value is the counter (as float64, exact below 2^53) or gauge value.
	Value float64 `json:"value,omitempty"`

	// Histogram fields.
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"counts,omitempty"` // cumulative, excluding +Inf
	Sum    float64   `json:"sum,omitempty"`
	Count  uint64    `json:"count,omitempty"`
}

// key returns the sort/identity key of the metric.
func (m *Metric) key() string {
	return string(m.Kind) + "\x00" + m.Name + "\x00" + m.Labels.canonical()
}

// Snapshot returns every metric in deterministic (kind, name, labels)
// order; nil-safe (empty). Safe to call while writers are active:
// each metric is captured atomically (a histogram's buckets, sum and
// count agree), though metrics updated concurrently may be captured at
// slightly different instants relative to each other.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for k, c := range r.counters {
		out = append(out, Metric{Kind: KindCounter, Name: k.name,
			Labels: parseCanonicalLabels(k.labels), Value: float64(c.Value())})
	}
	for k, g := range r.gauges {
		out = append(out, Metric{Kind: KindGauge, Name: k.name,
			Labels: parseCanonicalLabels(k.labels), Value: g.Value()})
	}
	for k, h := range r.histograms {
		cum, sum, n := h.snapshot()
		out = append(out, Metric{Kind: KindHistogram, Name: k.name,
			Labels: parseCanonicalLabels(k.labels),
			Bounds: append([]float64(nil), h.bounds...),
			Counts: cum, Sum: sum, Count: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key() < out[j].key() })
	return out
}

// parseCanonicalLabels inverts Labels.canonical.
func parseCanonicalLabels(s string) Labels {
	if s == "" {
		return nil
	}
	out := Labels{}
	for _, kv := range strings.Split(s, ";") {
		if i := strings.IndexByte(kv, '='); i >= 0 {
			out[kv[:i]] = kv[i+1:]
		}
	}
	return out
}
