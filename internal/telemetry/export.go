package telemetry

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Dump is the native on-disk telemetry form: a complete registry
// snapshot plus the retained event stream. cmd/dsrstat summarises and
// converts dumps; every other format is derivable from one.
type Dump struct {
	Metrics []Metric `json:"-"`
	Events  []Event  `json:"-"`
	// Spans is the host wall-time span timeline (Tracer.Spans). It is
	// kept separate from Metrics/Events because span timings are
	// inherently nondeterministic: the determinism suite compares
	// Metrics+Events byte-for-byte, while spans are exported to their
	// own spans.jsonl.
	Spans []Span `json:"-"`
}

// NewDump snapshots a registry and an event log (either may be nil).
func NewDump(r *Registry, l *EventLog) *Dump {
	return &Dump{Metrics: r.Snapshot(), Events: l.Events()}
}

// jsonlRecord is one line of the JSONL encoding: exactly one of Metric
// or Event is set, discriminated by Record.
type jsonlRecord struct {
	Record string  `json:"record"`
	Metric *Metric `json:"metric,omitempty"`
	Event  *Event  `json:"event,omitempty"`
	Span   *Span   `json:"span,omitempty"`
}

// WriteJSONL encodes the dump as JSON Lines: one self-describing record
// per line ({"record":"metric",...} / {"record":"event",...}).
func (d *Dump) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range d.Metrics {
		if err := enc.Encode(jsonlRecord{Record: "metric", Metric: &d.Metrics[i]}); err != nil {
			return fmt.Errorf("telemetry: jsonl: %w", err)
		}
	}
	for i := range d.Events {
		if err := enc.Encode(jsonlRecord{Record: "event", Event: &d.Events[i]}); err != nil {
			return fmt.Errorf("telemetry: jsonl: %w", err)
		}
	}
	for i := range d.Spans {
		if err := enc.Encode(jsonlRecord{Record: "span", Span: &d.Spans[i]}); err != nil {
			return fmt.Errorf("telemetry: jsonl: %w", err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSONL dump back; the round-trip
// ReadJSONL(WriteJSONL(d)) preserves every metric and event.
func ReadJSONL(r io.Reader) (*Dump, error) {
	d := &Dump{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec jsonlRecord
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("telemetry: jsonl line %d: %w", line, err)
		}
		switch rec.Record {
		case "metric":
			if rec.Metric == nil {
				return nil, fmt.Errorf("telemetry: jsonl line %d: metric record without metric", line)
			}
			d.Metrics = append(d.Metrics, *rec.Metric)
		case "event":
			if rec.Event == nil {
				return nil, fmt.Errorf("telemetry: jsonl line %d: event record without event", line)
			}
			d.Events = append(d.Events, *rec.Event)
		case "span":
			if rec.Span == nil {
				return nil, fmt.Errorf("telemetry: jsonl line %d: span record without span", line)
			}
			d.Spans = append(d.Spans, *rec.Span)
		default:
			return nil, fmt.Errorf("telemetry: jsonl line %d: unknown record %q", line, rec.Record)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: jsonl: %w", err)
	}
	return d, nil
}

// csvHeader is the fixed column set of the CSV metric encoding.
var csvHeader = []string{"kind", "name", "labels", "value", "sum", "count", "bounds", "counts"}

// WriteCSV encodes the metrics (events are not part of the CSV form) as
// one row per metric. Histograms pack bounds and cumulative counts as
// '|'-separated lists.
func (d *Dump) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("telemetry: csv: %w", err)
	}
	for i := range d.Metrics {
		m := &d.Metrics[i]
		row := []string{string(m.Kind), m.Name, m.Labels.canonical(), "", "", "", "", ""}
		switch m.Kind {
		case KindHistogram:
			row[4] = formatFloat(m.Sum)
			row[5] = strconv.FormatUint(m.Count, 10)
			row[6] = joinFloats(m.Bounds)
			row[7] = joinUints(m.Counts)
		default:
			row[3] = formatFloat(m.Value)
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("telemetry: csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("telemetry: csv: %w", err)
	}
	return nil
}

// ReadCSV parses the CSV metric encoding back into a dump (metrics
// only); the round-trip preserves every metric.
func ReadCSV(r io.Reader) (*Dump, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("telemetry: csv: %w", err)
	}
	if len(rows) == 0 {
		return &Dump{}, nil
	}
	if strings.Join(rows[0], ",") != strings.Join(csvHeader, ",") {
		return nil, fmt.Errorf("telemetry: csv: unexpected header %v", rows[0])
	}
	d := &Dump{}
	for i, row := range rows[1:] {
		if len(row) != len(csvHeader) {
			return nil, fmt.Errorf("telemetry: csv row %d: %d columns, want %d", i+2, len(row), len(csvHeader))
		}
		m := Metric{Kind: MetricKind(row[0]), Name: row[1], Labels: parseCanonicalLabels(row[2])}
		switch m.Kind {
		case KindHistogram:
			if m.Sum, err = parseFloat(row[4]); err == nil {
				m.Count, err = strconv.ParseUint(row[5], 10, 64)
			}
			if err == nil {
				m.Bounds, err = splitFloats(row[6])
			}
			if err == nil {
				m.Counts, err = splitUints(row[7])
			}
		case KindCounter, KindGauge:
			m.Value, err = parseFloat(row[3])
		default:
			err = fmt.Errorf("unknown kind %q", row[0])
		}
		if err != nil {
			return nil, fmt.Errorf("telemetry: csv row %d: %w", i+2, err)
		}
		d.Metrics = append(d.Metrics, m)
	}
	return d, nil
}

// WritePrometheus renders the metrics in the Prometheus text exposition
// format (version 0.0.4): # TYPE headers, histograms as _bucket/_sum/
// _count series with cumulative le labels and a +Inf bucket.
func (d *Dump) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	typed := map[string]bool{}
	for i := range d.Metrics {
		m := &d.Metrics[i]
		if !typed[m.Name] {
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.Name, m.Kind)
			typed[m.Name] = true
		}
		switch m.Kind {
		case KindHistogram:
			var cum uint64
			for j, b := range m.Bounds {
				cum = m.Counts[j]
				fmt.Fprintf(bw, "%s_bucket{%s} %d\n", m.Name,
					promLabels(m.Labels, "le", formatFloat(b)), cum)
			}
			fmt.Fprintf(bw, "%s_bucket{%s} %d\n", m.Name, promLabels(m.Labels, "le", "+Inf"), m.Count)
			fmt.Fprintf(bw, "%s_sum%s %s\n", m.Name, promLabelBlock(m.Labels), formatFloat(m.Sum))
			fmt.Fprintf(bw, "%s_count%s %d\n", m.Name, promLabelBlock(m.Labels), m.Count)
		default:
			fmt.Fprintf(bw, "%s%s %s\n", m.Name, promLabelBlock(m.Labels), formatFloat(m.Value))
		}
	}
	return bw.Flush()
}

// promLabels renders a label set plus one extra pair, sorted, without
// braces.
func promLabels(l Labels, extraK, extraV string) string {
	pairs := make([]string, 0, len(l)+1)
	for k, v := range l {
		pairs = append(pairs, fmt.Sprintf("%s=%q", k, v))
	}
	pairs = append(pairs, fmt.Sprintf("%s=%q", extraK, extraV))
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

// promLabelBlock renders {k="v",...} or the empty string.
func promLabelBlock(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	pairs := make([]string, 0, len(l))
	for k, v := range l {
		pairs = append(pairs, fmt.Sprintf("%s=%q", k, v))
	}
	sort.Strings(pairs)
	return "{" + strings.Join(pairs, ",") + "}"
}

// ReadPrometheus parses the text exposition format back into metrics.
// Histogram series (_bucket/_sum/_count) are reassembled into Metric
// records; the round-trip WritePrometheus→ReadPrometheus preserves every
// metric exactly (bounds, cumulative counts, sums as formatted).
func ReadPrometheus(r io.Reader) (*Dump, error) {
	types := map[string]MetricKind{}
	type histKey struct{ name, labels string }
	type histAcc struct {
		bounds []float64
		counts []uint64
		sum    float64
		count  uint64
		labels Labels
	}
	hists := map[histKey]*histAcc{}
	var histOrder []histKey
	d := &Dump{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) == 4 && fields[1] == "TYPE" {
				types[fields[2]] = MetricKind(fields[3])
			}
			continue
		}
		name, labels, value, err := parsePromLine(line)
		if err != nil {
			return nil, fmt.Errorf("telemetry: prom line %d: %w", lineNo, err)
		}
		base, series := histSeries(name, types)
		if series != "" {
			le, rest := splitLabel(labels, "le")
			k := histKey{base, rest.canonical()}
			h, ok := hists[k]
			if !ok {
				h = &histAcc{labels: rest}
				hists[k] = h
				histOrder = append(histOrder, k)
			}
			switch series {
			case "bucket":
				if le == "+Inf" {
					// The +Inf bucket equals _count; nothing to store.
					break
				}
				b, err := parseFloat(le)
				if err != nil {
					return nil, fmt.Errorf("telemetry: prom line %d: bad le %q", lineNo, le)
				}
				h.bounds = append(h.bounds, b)
				h.counts = append(h.counts, uint64(value))
			case "sum":
				h.sum = value
			case "count":
				h.count = uint64(value)
			}
			continue
		}
		kind, ok := types[name]
		if !ok {
			kind = KindGauge
		}
		d.Metrics = append(d.Metrics, Metric{Kind: kind, Name: name, Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: prom: %w", err)
	}
	for _, k := range histOrder {
		h := hists[k]
		// Buckets arrive in exposition order (sorted ascending by le).
		d.Metrics = append(d.Metrics, Metric{
			Kind: KindHistogram, Name: k.name, Labels: h.labels,
			Bounds: h.bounds, Counts: h.counts, Sum: h.sum, Count: h.count,
		})
	}
	sort.Slice(d.Metrics, func(i, j int) bool { return d.Metrics[i].key() < d.Metrics[j].key() })
	return d, nil
}

// histSeries reports whether name is a histogram series (_bucket/_sum/
// _count of a TYPEd histogram) and which one.
func histSeries(name string, types map[string]MetricKind) (base, series string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			b := strings.TrimSuffix(name, suf)
			if types[b] == KindHistogram {
				return b, suf[1:]
			}
		}
	}
	return "", ""
}

// parsePromLine splits `name{k="v",...} value`.
func parsePromLine(line string) (string, Labels, float64, error) {
	var name, labelPart, valPart string
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", nil, 0, fmt.Errorf("unbalanced braces in %q", line)
		}
		name, labelPart, valPart = line[:i], line[i+1:j], strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return "", nil, 0, fmt.Errorf("malformed sample %q", line)
		}
		name, valPart = fields[0], fields[1]
	}
	labels := Labels{}
	for labelPart != "" {
		eq := strings.IndexByte(labelPart, '=')
		if eq < 0 || eq+1 >= len(labelPart) || labelPart[eq+1] != '"' {
			return "", nil, 0, fmt.Errorf("malformed labels in %q", line)
		}
		rest := labelPart[eq+2:]
		end := strings.IndexByte(rest, '"')
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label value in %q", line)
		}
		labels[labelPart[:eq]] = rest[:end]
		labelPart = strings.TrimPrefix(rest[end+1:], ",")
	}
	if len(labels) == 0 {
		labels = nil
	}
	v, err := parseFloat(valPart)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q", valPart)
	}
	return name, labels, v, nil
}

// splitLabel removes key from l, returning its value and the rest.
func splitLabel(l Labels, key string) (string, Labels) {
	if l == nil {
		return "", nil
	}
	v := l[key]
	rest := Labels{}
	for k, vv := range l {
		if k != key {
			rest[k] = vv
		}
	}
	if len(rest) == 0 {
		rest = nil
	}
	return v, rest
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

func parseFloat(s string) (float64, error) { return strconv.ParseFloat(s, 64) }

func joinFloats(fs []float64) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = formatFloat(f)
	}
	return strings.Join(parts, "|")
}

func splitFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, "|")
	out := make([]float64, len(parts))
	for i, p := range parts {
		f, err := parseFloat(p)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}

func joinUints(us []uint64) string {
	parts := make([]string, len(us))
	for i, u := range us {
		parts[i] = strconv.FormatUint(u, 10)
	}
	return strings.Join(parts, "|")
}

func splitUints(s string) ([]uint64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, "|")
	out := make([]uint64, len(parts))
	for i, p := range parts {
		u, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return nil, err
		}
		out[i] = u
	}
	return out, nil
}

// MetricsEqual reports whether two metric slices are identical up to
// ordering — the exporter round-trip check used by tests and by
// `dsrstat -validate`.
func MetricsEqual(a, b []Metric) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]Metric(nil), a...)
	bs := append([]Metric(nil), b...)
	sort.Slice(as, func(i, j int) bool { return as[i].key() < as[j].key() })
	sort.Slice(bs, func(i, j int) bool { return bs[i].key() < bs[j].key() })
	for i := range as {
		if !metricEqual(&as[i], &bs[i]) {
			return false
		}
	}
	return true
}

func metricEqual(a, b *Metric) bool {
	if a.Kind != b.Kind || a.Name != b.Name || a.Labels.canonical() != b.Labels.canonical() {
		return false
	}
	if a.Value != b.Value || a.Sum != b.Sum || a.Count != b.Count {
		return false
	}
	if len(a.Bounds) != len(b.Bounds) || len(a.Counts) != len(b.Counts) {
		return false
	}
	for i := range a.Bounds {
		if a.Bounds[i] != b.Bounds[i] {
			return false
		}
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			return false
		}
	}
	return true
}
