package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

func TestSpanKindRoundTrip(t *testing.T) {
	for k := SpanKind(0); k < numSpanKinds; k++ {
		got, err := ParseSpanKind(k.String())
		if err != nil {
			t.Fatalf("ParseSpanKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("ParseSpanKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseSpanKind("nonsense"); err == nil {
		t.Fatal("ParseSpanKind accepted unknown kind")
	}
}

func TestTracerNilSafeZeroAlloc(t *testing.T) {
	var tr *Tracer
	w := tr.Worker(3)
	if w != nil {
		t.Fatal("nil tracer returned non-nil worker")
	}
	allocs := testing.AllocsPerRun(100, func() {
		m := w.Begin(SpanRun, 7)
		w.End(m)
		_ = tr.Now()
		_ = tr.Spans()
		_ = tr.LiveWorkers()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocated %.1f per op, want 0", allocs)
	}
}

func TestTracerSpansAndRunInheritance(t *testing.T) {
	tr := NewTracer()
	w := tr.Worker(0)

	run := w.Begin(SpanRun, 42)
	boot := w.Begin(SpanBoot, -1) // inherits run 42
	w.End(boot)
	exec := w.Begin(SpanExecute, -1)
	w.End(exec)
	w.End(run)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3: %+v", len(spans), spans)
	}
	byKind := map[string]Span{}
	for _, s := range spans {
		byKind[s.Kind] = s
	}
	for _, kind := range []string{"run", "boot", "execute"} {
		s, ok := byKind[kind]
		if !ok {
			t.Fatalf("missing %s span", kind)
		}
		if s.Run != 42 {
			t.Errorf("%s span run = %d, want 42 (inherited)", kind, s.Run)
		}
		if s.Worker != 0 {
			t.Errorf("%s span worker = %d, want 0", kind, s.Worker)
		}
	}
	// Parent sorts before children at the same start; nesting holds.
	if n, err := ValidateSpans(spans); err != nil || n != 3 {
		t.Fatalf("ValidateSpans = %d, %v", n, err)
	}
	// Run bookkeeping for live reads.
	live := tr.LiveWorkers()
	if len(live) != 1 || live[0].Runs != 1 || live[0].State != "idle" {
		t.Fatalf("LiveWorkers = %+v", live)
	}
}

func TestTracerUnbalancedEndCloses(t *testing.T) {
	tr := NewTracer()
	w := tr.Worker(1)
	run := w.Begin(SpanRun, 5)
	w.Begin(SpanBoot, -1) // never explicitly ended
	w.End(run)            // must close boot implicitly
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if _, err := ValidateSpans(spans); err != nil {
		t.Fatalf("ValidateSpans: %v", err)
	}
	if kind, _ := w.liveState(); kind != 0 {
		t.Fatal("worker not idle after closing all spans")
	}
}

func TestTracerLiveState(t *testing.T) {
	tr := NewTracer()
	w := tr.Worker(2)
	run := w.Begin(SpanRun, 9)
	boot := w.Begin(SpanBoot, -1)
	live := tr.LiveWorkers()
	if len(live) != 1 || live[0].State != "boot" || live[0].Run != 9 {
		t.Fatalf("live during boot = %+v", live)
	}
	w.End(boot)
	live = tr.LiveWorkers()
	if live[0].State != "run" || live[0].Run != 9 {
		t.Fatalf("live after boot end = %+v", live)
	}
	w.End(run)
	if live = tr.LiveWorkers(); live[0].State != "idle" || live[0].Run != -1 {
		t.Fatalf("live after run end = %+v", live)
	}
}

func TestValidateSpansRejectsPartialOverlap(t *testing.T) {
	bad := []Span{
		{Worker: 0, Run: 0, Kind: "run", Start: 0, Dur: 100},
		{Worker: 0, Run: 1, Kind: "boot", Start: 50, Dur: 100}, // crosses run end
	}
	if _, err := ValidateSpans(bad); err == nil {
		t.Fatal("ValidateSpans accepted partially overlapping spans")
	}
	if _, err := ValidateSpans([]Span{{Kind: "bogus"}}); err == nil {
		t.Fatal("ValidateSpans accepted unknown kind")
	}
	if _, err := ValidateSpans([]Span{{Kind: "run", Start: -1}}); err == nil {
		t.Fatal("ValidateSpans accepted negative start")
	}
}

// synthSpans builds a plausible 2-worker campaign timeline.
func synthSpans() []Span {
	var spans []Span
	spans = append(spans, Span{Worker: -1, Run: -1, Kind: "campaign", Start: 0, Dur: 1000})
	for w := 0; w < 2; w++ {
		base := int64(10)
		spans = append(spans, Span{Worker: w, Run: -1, Kind: "worker", Start: base, Dur: 900})
		spans = append(spans, Span{Worker: w, Run: -1, Kind: "setup", Start: base, Dur: 50})
		cur := base + 50
		for r := 0; r < 3; r++ {
			run := w*3 + r
			spans = append(spans, Span{Worker: w, Run: run, Kind: "claim", Start: cur, Dur: 5})
			cur += 5
			spans = append(spans, Span{Worker: w, Run: run, Kind: "run", Start: cur, Dur: 200})
			spans = append(spans, Span{Worker: w, Run: run, Kind: "boot", Start: cur, Dur: 40})
			spans = append(spans, Span{Worker: w, Run: run, Kind: "reloc", Start: cur + 40, Dur: 30})
			spans = append(spans, Span{Worker: w, Run: run, Kind: "execute", Start: cur + 70, Dur: 120})
			cur += 200
		}
	}
	for r := 0; r < 6; r++ {
		spans = append(spans, Span{Worker: -1, Run: r, Kind: "merge.wait", Start: int64(100 + r*120), Dur: 100})
		spans = append(spans, Span{Worker: -1, Run: r, Kind: "merge", Start: int64(200 + r*120), Dur: 20})
	}
	return spans
}

func TestAnalyzeSpansReport(t *testing.T) {
	rep, err := AnalyzeSpans(synthSpans())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalRuns != 6 {
		t.Fatalf("TotalRuns = %d, want 6", rep.TotalRuns)
	}
	if len(rep.Workers) != 2 {
		t.Fatalf("workers = %d, want 2", len(rep.Workers))
	}
	w0 := rep.Workers[0]
	if w0.Runs != 3 || w0.BusyNs != 600 || w0.BootNs != 120 || w0.RelocNs != 90 || w0.ExecNs != 360 {
		t.Fatalf("worker 0 stats wrong: %+v", w0)
	}
	if w0.ClaimNs != 15 || w0.SetupNs != 50 {
		t.Fatalf("worker 0 claim/setup wrong: %+v", w0)
	}
	if rep.MergeNs != 120 || rep.MergeWaitNs != 600 {
		t.Fatalf("merge stats wrong: %+v", rep)
	}
	if rep.ClaimMax != 5 {
		t.Fatalf("claim max = %d, want 5", rep.ClaimMax)
	}
	out := rep.Render()
	for _, want := range []string{"bottleneck:", "worker", "claim latency", "phase totals"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestBottleneckHeuristics(t *testing.T) {
	cases := []struct {
		name string
		rep  SpanReport
		want string
	}{
		{"merge", SpanReport{CampaignNs: 1000, MergeNs: 600,
			Workers: []WorkerStats{{SpanNs: 1000, BusyNs: 300, Busy: 0.3}}}, "merge serialisation"},
		{"setup", SpanReport{CampaignNs: 1000, SetupNs: 400,
			Workers: []WorkerStats{{SpanNs: 1000, SetupNs: 400, BusyNs: 300, Busy: 0.3}}}, "platform construction"},
		{"claim", SpanReport{CampaignNs: 1000,
			Workers: []WorkerStats{{SpanNs: 1000, ClaimNs: 300, BusyNs: 300, Busy: 0.3}}}, "claim contention"},
		{"alloc", SpanReport{CampaignNs: 1000,
			Workers: []WorkerStats{{SpanNs: 1000, BusyNs: 900, Busy: 0.9}}}, "shared allocation"},
		{"tail", SpanReport{CampaignNs: 1000,
			Workers: []WorkerStats{{SpanNs: 1000, BusyNs: 300, Busy: 0.3, IdleNs: 700}}}, "load imbalance"},
	}
	for _, c := range cases {
		if got := c.rep.Bottleneck(); !strings.Contains(got, c.want) {
			t.Errorf("%s: Bottleneck() = %q, want substring %q", c.name, got, c.want)
		}
	}
}

func TestSpanJSONLRoundTrip(t *testing.T) {
	d := &Dump{Spans: synthSpans()}
	var buf bytes.Buffer
	if err := d.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != len(d.Spans) {
		t.Fatalf("round-trip %d spans, want %d", len(back.Spans), len(d.Spans))
	}
	for i := range d.Spans {
		if back.Spans[i] != d.Spans[i] {
			t.Fatalf("span %d: %+v != %+v", i, back.Spans[i], d.Spans[i])
		}
	}
}

func TestWriteSpanTraceValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpanTrace(&buf, synthSpans()); err != nil {
		t.Fatal(err)
	}
	pairs, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("span trace fails chrome validation: %v", err)
	}
	if pairs == 0 {
		t.Fatal("no span pairs in chrome trace")
	}
	if !strings.Contains(buf.String(), "worker 1") || !strings.Contains(buf.String(), "campaign") {
		t.Fatal("missing thread names in span trace")
	}
}

func TestTracerSpansFromLiveTracerValidate(t *testing.T) {
	tr := NewTracer()
	camp := tr.Worker(-1).Begin(SpanCampaign, -1)
	for w := 0; w < 3; w++ {
		wt := tr.Worker(w)
		ws := wt.Begin(SpanWorker, -1)
		setup := wt.Begin(SpanSetup, -1)
		wt.End(setup)
		for r := 0; r < 4; r++ {
			cl := wt.Begin(SpanClaim, w*4+r)
			wt.End(cl)
			run := wt.Begin(SpanRun, w*4+r)
			b := wt.Begin(SpanBoot, -1)
			wt.End(b)
			e := wt.Begin(SpanExecute, -1)
			wt.End(e)
			wt.End(run)
		}
		wt.End(ws)
	}
	tr.Worker(-1).End(camp)

	spans := tr.Spans()
	if _, err := ValidateSpans(spans); err != nil {
		t.Fatalf("live tracer spans invalid: %v", err)
	}
	rep, err := AnalyzeSpans(spans)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalRuns != 12 || len(rep.Workers) != 3 {
		t.Fatalf("report = %d runs / %d workers, want 12/3", rep.TotalRuns, len(rep.Workers))
	}
	var buf bytes.Buffer
	if err := WriteSpanTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateChromeTrace(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("live span trace fails chrome validation: %v", err)
	}
}
