package telemetry

import (
	"dsr/internal/mem"
)

// Campaign bundles the three telemetry surfaces of a measurement
// campaign — the metrics registry, the structured event log, and a
// campaign clock that lays consecutive simulated runs end to end on one
// timeline (which is what makes the Chrome trace a coherent campaign
// view). A nil *Campaign disables everything.
type Campaign struct {
	Registry *Registry
	Events   *EventLog

	clock mem.Cycles
}

// NewCampaign builds an enabled campaign with an event ring of the given
// capacity (<=0 selects the default).
func NewCampaign(eventCapacity int) *Campaign {
	c := &Campaign{Registry: NewRegistry(), Events: NewEventLog(eventCapacity)}
	c.Events.SetClock(c.Now)
	return c
}

// Now returns the campaign clock position in simulated cycles; nil-safe.
func (c *Campaign) Now() mem.Cycles {
	if c == nil {
		return 0
	}
	return c.clock
}

// Advance moves the campaign clock forward; nil-safe.
func (c *Campaign) Advance(n mem.Cycles) {
	if c != nil {
		c.clock += n
	}
}

// RunRecord is everything a campaign wants to know about one measured
// run; the caller fills what it has.
type RunRecord struct {
	// Series is the campaign configuration name ("No Rand", "Sw Rand"...).
	Series string
	// Index is the run number within the series.
	Index int
	// Seed is the layout randomisation seed (0 for deterministic runs).
	Seed uint64
	// Cycles is the run's total execution time.
	Cycles mem.Cycles
	// UoA is the measured unit-of-analysis duration (ipoints 1→2).
	UoA float64
	// Attribution is the per-run cycle attribution (zero Valid when the
	// profiler is disabled).
	Attribution AttributionSnapshot
}

// RunCycleBounds are the histogram bounds used for per-run cycle
// durations (exponential, covering 1k..~500M cycles).
var RunCycleBounds = ExpBounds(1024, 2, 20)

// RecordRun books one measured run: counters and histograms in the
// registry, a B/E span pair plus attribution attributes in the event
// log, and a campaign-clock advance by the run's duration. Nil-safe.
func (c *Campaign) RecordRun(rec RunRecord) {
	if c == nil {
		return
	}
	labels := Labels{"series": rec.Series}
	c.Registry.Counter("dsr_runs_total", labels).Inc()
	c.Registry.Counter("dsr_run_cycles_total", labels).Add(uint64(rec.Cycles))
	c.Registry.Histogram("dsr_run_cycles", labels, RunCycleBounds).Observe(float64(rec.Cycles))
	if rec.UoA > 0 {
		c.Registry.Histogram("dsr_uoa_cycles", labels, RunCycleBounds).Observe(rec.UoA)
	}
	if rec.Attribution.Valid {
		for comp := Component(0); comp < NumComponents; comp++ {
			if v := rec.Attribution.Component(comp); v > 0 {
				c.Registry.Counter("dsr_attributed_cycles_total",
					Labels{"series": rec.Series, "component": comp.String()}).Add(uint64(v))
			}
		}
	}

	start := c.Now()
	attrs := []Attr{
		Int("run", rec.Index),
		Uint64("seed", rec.Seed),
		Cycles("cycles", rec.Cycles),
	}
	if rec.UoA > 0 {
		attrs = append(attrs, Float("uoa_cycles", rec.UoA))
	}
	c.Events.EmitAt(start, rec.Series, "run", PhaseBegin, attrs...)
	if rec.UoA > 0 {
		// Place the measured UoA span inside the run span; the exact
		// enter offset is not retained, so centre it.
		u := mem.Cycles(rec.UoA)
		if u > rec.Cycles {
			u = rec.Cycles
		}
		off := (rec.Cycles - u) / 2
		c.Events.EmitAt(start+off, rec.Series, "uoa", PhaseBegin, Int("run", rec.Index))
		c.Events.EmitAt(start+off+u, rec.Series, "uoa", PhaseEnd)
	}
	if rec.Attribution.Valid {
		var aattrs []Attr
		for comp := Component(0); comp < NumComponents; comp++ {
			if v := rec.Attribution.Component(comp); v > 0 {
				aattrs = append(aattrs, Cycles(comp.String(), v))
			}
		}
		c.Events.EmitAt(start+rec.Cycles, rec.Series, "run.attribution", PhaseInstant, aattrs...)
	}
	c.Events.EmitAt(start+rec.Cycles, rec.Series, "run", PhaseEnd)
	c.Advance(rec.Cycles)
}

// Dump snapshots the campaign into the exportable form; nil-safe (empty
// dump).
func (c *Campaign) Dump() *Dump {
	if c == nil {
		return &Dump{}
	}
	return NewDump(c.Registry, c.Events)
}
