// Package dram models the LEON3 platform's SDRAM memory controller
// (Fig. 1): the terminal level of the hierarchy. The paper treats DRAM as
// a constant-latency device at analysis time (low-level jitter sources
// other than caches are "forced to work in their worst latency", §II), so
// the model charges a fixed worst-case access latency plus a per-word
// burst transfer cost. Counters record the traffic reaching main memory.
package dram

import (
	"dsr/internal/mem"
)

// Config describes the memory-controller latency model.
type Config struct {
	Name string
	// AccessLatency is the fixed row-access cost charged per transaction.
	AccessLatency mem.Cycles
	// PerWord is the burst transfer cost per 32-bit word moved.
	PerWord mem.Cycles
}

// Counters are the DRAM traffic counters.
type Counters struct {
	Reads      uint64
	Writes     uint64
	WordsRead  uint64
	WordsWrite uint64
}

// DRAM is the terminal memory device.
type DRAM struct {
	cfg Config
	ctr Counters
}

// New builds a DRAM controller.
func New(cfg Config) *DRAM { return &DRAM{cfg: cfg} }

// Config returns the controller configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Counters returns a snapshot of the traffic counters.
func (d *DRAM) Counters() Counters { return d.ctr }

// ResetCounters zeroes the traffic counters.
func (d *DRAM) ResetCounters() { d.ctr = Counters{} }

func words(size int) uint64 {
	if size <= 0 {
		return 1
	}
	return uint64((size + mem.WordSize - 1) / mem.WordSize)
}

// Read implements mem.Backend.
func (d *DRAM) Read(addr mem.Addr, size int) mem.Cycles {
	d.ctr.Reads++
	w := words(size)
	d.ctr.WordsRead += w
	return d.cfg.AccessLatency + mem.Cycles(w)*d.cfg.PerWord
}

// Write implements mem.Backend.
func (d *DRAM) Write(addr mem.Addr, size int) mem.Cycles {
	d.ctr.Writes++
	w := words(size)
	d.ctr.WordsWrite += w
	return d.cfg.AccessLatency + mem.Cycles(w)*d.cfg.PerWord
}
