package dram

import (
	"testing"
	"testing/quick"
)

func TestLatencyModel(t *testing.T) {
	d := New(Config{Name: "sdram", AccessLatency: 20, PerWord: 2})
	if got := d.Read(0, 4); got != 22 {
		t.Errorf("1-word read=%d, want 22", got)
	}
	if got := d.Read(0, 32); got != 20+8*2 {
		t.Errorf("8-word read=%d, want 36", got)
	}
	if got := d.Write(0, 16); got != 20+4*2 {
		t.Errorf("4-word write=%d, want 28", got)
	}
	ctr := d.Counters()
	if ctr.Reads != 2 || ctr.Writes != 1 || ctr.WordsRead != 9 || ctr.WordsWrite != 4 {
		t.Errorf("counters=%+v", ctr)
	}
}

func TestZeroSizeChargedAsOneWord(t *testing.T) {
	d := New(Config{AccessLatency: 20, PerWord: 2})
	if got := d.Read(0, 0); got != 22 {
		t.Errorf("0-size read=%d, want 22", got)
	}
}

// Property: latency is monotonic in transfer size.
func TestMonotonicLatency(t *testing.T) {
	d := New(Config{AccessLatency: 20, PerWord: 2})
	f := func(a, b uint8) bool {
		s1, s2 := int(a)+1, int(a)+1+int(b)
		return d.Read(0, s1) <= d.Read(0, s2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
