package rvs

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"dsr/internal/cpu"
	"dsr/internal/mbpta"
	"dsr/internal/prng"
)

func sampleTrace() []cpu.TracePoint {
	return []cpu.TracePoint{
		{ID: UoAEnter, Cycles: 100},
		{ID: UoAExit, Cycles: 350},
		{ID: UoAEnter, Cycles: 1000},
		{ID: UoAExit, Cycles: 1300},
		{ID: 9, Cycles: 1400}, // unrelated ipoint
	}
}

func TestDurations(t *testing.T) {
	ds := Durations(sampleTrace(), UoAEnter, UoAExit)
	if len(ds) != 2 || ds[0] != 250 || ds[1] != 300 {
		t.Errorf("durations=%v", ds)
	}
}

func TestDurationsNested(t *testing.T) {
	tr := []cpu.TracePoint{
		{ID: 1, Cycles: 0},
		{ID: 1, Cycles: 10}, // nested enter
		{ID: 2, Cycles: 15}, // closes the inner
		{ID: 2, Cycles: 40}, // closes the outer
	}
	ds := Durations(tr, 1, 2)
	if len(ds) != 2 || ds[0] != 5 || ds[1] != 40 {
		t.Errorf("nested durations=%v", ds)
	}
}

func TestDurationsUnmatched(t *testing.T) {
	tr := []cpu.TracePoint{
		{ID: 2, Cycles: 5}, // exit with no enter: ignored
		{ID: 1, Cycles: 10},
		{ID: 2, Cycles: 30},
		{ID: 1, Cycles: 50}, // dangling enter: ignored
	}
	ds := Durations(tr, 1, 2)
	if len(ds) != 1 || ds[0] != 20 {
		t.Errorf("durations=%v", ds)
	}
}

func TestToFloats(t *testing.T) {
	fs := ToFloats(Durations(sampleTrace(), UoAEnter, UoAExit))
	if len(fs) != 2 || fs[0] != 250 || fs[1] != 300 {
		t.Errorf("floats=%v", fs)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := sampleTrace()
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr) {
		t.Fatalf("decoded %d records, want %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Errorf("record %d: %v != %v", i, got[i], tr[i])
		}
	}
}

func TestCodecEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Encode(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("decoded %d records from empty trace", len(got))
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE\x00\x01\x00\x00\x00\x00"),
		"truncated": func() []byte {
			var buf bytes.Buffer
			if err := Encode(&buf, sampleTrace()); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()[:buf.Len()-4]
		}(),
	}
	for name, data := range cases {
		if _, err := Decode(bytes.NewReader(data)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("%s: err=%v, want ErrBadTrace", name, err)
		}
	}
	// Wrong version.
	var buf bytes.Buffer
	if err := Encode(&buf, nil); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[5] = 99
	if _, err := Decode(bytes.NewReader(b)); !errors.Is(err, ErrBadTrace) {
		t.Error("wrong version accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "ipoint,cycles" || len(lines) != 6 {
		t.Errorf("csv=%q", buf.String())
	}
	if lines[1] != "1,100" {
		t.Errorf("first record=%q", lines[1])
	}
}

func TestRenderCurve(t *testing.T) {
	src := prng.NewMWC(9)
	times := make([]float64, 1000)
	for i := range times {
		var s float64
		for k := 0; k < 6; k++ {
			s += prng.Float64(src)
		}
		times[i] = 200000 + 1500*s
	}
	rep, err := mbpta.Analyse(times, mbpta.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := RenderCurve(rep, times, 70, 18)
	if !strings.Contains(out, "pWCET curve") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "+") || !strings.Contains(out, "*") {
		t.Error("plot marks missing")
	}
	if !strings.Contains(out, "MOET") {
		t.Error("missing MOET annotation")
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 20 {
		t.Errorf("unexpected plot height:\n%s", out)
	}
}

func TestRenderCurveDegenerate(t *testing.T) {
	out := RenderCurve(&mbpta.Report{}, nil, 70, 18)
	if !strings.Contains(out, "nothing to render") {
		t.Error("degenerate render")
	}
}

func TestWriteReport(t *testing.T) {
	src := prng.NewMWC(19)
	times := make([]float64, 600)
	for i := range times {
		var s float64
		for k := 0; k < 6; k++ {
			s += prng.Float64(src)
		}
		times[i] = 100000 + 900*s
	}
	rep, err := mbpta.Analyse(times, mbpta.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, "uoa", rep, times); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"MBPTA ANALYSIS REPORT", "[measurements]", "[i.i.d. verification",
		"[EVT fit]", "[pWCET]", "Gumbel", "estimate at target", "pWCET curve",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestWriteReportRejected(t *testing.T) {
	// An autocorrelated series: Analyse returns the rejected report.
	src := prng.NewMWC(23)
	times := make([]float64, 600)
	x := 0.0
	for i := range times {
		x = 0.95*x + prng.Float64(src)
		times[i] = 100000 + 500*x
	}
	rep, err := mbpta.Analyse(times, mbpta.DefaultOptions())
	if err == nil {
		t.Fatal("expected rejection")
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, "uoa", rep, times); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "REJECTED") ||
		!strings.Contains(buf.String(), "EVT was not applied") {
		t.Errorf("rejection report wrong:\n%s", buf.String())
	}
}

func TestWriteReportEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteReport(&buf, "x", nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty report")
	}
}
