package rvs

import (
	"fmt"
	"io"

	"dsr/internal/mbpta"
	"dsr/internal/platform"
	"dsr/internal/stats"
	"dsr/internal/telemetry"
)

// WriteReport emits the full analysis report for one unit of analysis —
// the textual counterpart of the RVS analysis view: descriptive
// statistics, the i.i.d. verification, the EVT fit with its
// cross-checks, the pWCET table at decreasing exceedance probabilities,
// and the plot. rep may be a rejected analysis (Fit == nil), in which
// case the report documents the rejection.
func WriteReport(w io.Writer, name string, rep *mbpta.Report, times []float64) error {
	p := func(format string, args ...interface{}) (err error) {
		_, err = fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("MBPTA ANALYSIS REPORT — %s\n", name); err != nil {
		return err
	}
	if rep == nil || len(times) == 0 {
		return p("no data\n")
	}
	if err := p(
		"\n[measurements]\n"+
			"  runs:    %d\n"+
			"  min:     %.0f cycles\n"+
			"  mean:    %.0f cycles\n"+
			"  stddev:  %.0f cycles\n"+
			"  MOET:    %.0f cycles\n",
		rep.N, rep.Min, rep.Mean, stats.StdDev(times), rep.MOET); err != nil {
		return err
	}

	verdict := "REJECTED"
	if rep.IID.Pass() {
		verdict = "passed"
	}
	if err := p(
		"\n[i.i.d. verification, alpha=%.2f]\n"+
			"  Ljung-Box (independence):       Q=%.3f  p=%.4f\n"+
			"  Kolmogorov-Smirnov (identical): D=%.4f  p=%.4f\n"+
			"  verdict: %s\n",
		rep.IID.Alpha,
		rep.IID.LjungBox.Statistic, rep.IID.LjungBox.PValue,
		rep.IID.KS.Statistic, rep.IID.KS.PValue, verdict); err != nil {
		return err
	}
	if rep.Fit == nil {
		return p("\nEVT was not applied: the execution times are not i.i.d.;\n" +
			"the platform needs a randomisation source (§III of the paper).\n")
	}

	if err := p(
		"\n[EVT fit]\n"+
			"  model:      Gumbel(mu=%.1f, beta=%.3f)\n"+
			"  block size: %d (%d maxima)\n"+
			"  CV check:   cv=%.3f (band ±%.3f) pass=%v\n"+
			"  converged:  %v\n",
		rep.Fit.Model.Mu, rep.Fit.Model.Beta,
		rep.Fit.Block, rep.N/rep.Fit.Block,
		rep.CV, rep.CVBand, rep.CVPass, rep.Converged); err != nil {
		return err
	}

	if err := p("\n[pWCET]\n  %-14s %-14s %s\n", "exceedance", "cycles", "over MOET"); err != nil {
		return err
	}
	for _, cp := range rep.Curve {
		if err := p("  %-14.0e %-14.0f %+.2f%%\n",
			cp.Exceedance, cp.Time, (cp.Time/rep.MOET-1)*100); err != nil {
			return err
		}
	}
	if err := p("  estimate at target %.0e: %.0f cycles\n", rep.TargetExceedance, rep.PWCET); err != nil {
		return err
	}
	if rep.PWCETAlt > 0 {
		if err := p("  PWM cross-estimate:        %.0f cycles (%+.2f%% vs moments)\n",
			rep.PWCETAlt, (rep.PWCETAlt/rep.PWCET-1)*100); err != nil {
			return err
		}
	}
	return p("\n%s", RenderCurve(rep, times, 72, 18))
}

// WriteCounterSummary emits the per-run hardware view that accompanies a
// timing report: the PMC snapshot (the paper's Table I counters) and,
// when attribution was enabled, the per-component cycle split. The
// attribution rows are the RVS "where did the cycles go" breakdown; an
// invalid (disabled) snapshot prints the counters only.
func WriteCounterSummary(w io.Writer, name string, pmcs platform.PMCs, att telemetry.AttributionSnapshot) error {
	p := func(format string, args ...interface{}) (err error) {
		_, err = fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p(
		"[performance counters — %s]\n"+
			"  instructions:   %d (loads %d, stores %d, FPU %d)\n"+
			"  IL1 misses:     %d\n"+
			"  DL1 misses:     %d\n"+
			"  L2 misses:      %d / %d accesses (ratio %.4f)\n"+
			"  TLB misses:     I=%d D=%d\n"+
			"  window traps:   overflow=%d underflow=%d\n",
		name,
		pmcs.Instr, pmcs.Loads, pmcs.Stores, pmcs.FPU,
		pmcs.ICMiss, pmcs.DCMiss,
		pmcs.L2Miss, pmcs.L2Access, pmcs.L2MissRatio(),
		pmcs.ITLBMiss, pmcs.DTLBMiss,
		pmcs.WindowOverflows, pmcs.WindowUnderflows); err != nil {
		return err
	}
	if !att.Valid {
		return nil
	}
	return p("%s", att.Render())
}
