// Package rvs reproduces the measurement tooling role of the Rapita
// Verification Suite and GRMON in the paper's setup (§V): programs are
// instrumented at unit-of-analysis (UoA) boundaries with instrumentation
// points; timestamps land in an out-of-band buffer; the binary trace is
// dumped, converted, and analysed. This package provides the trace
// representation, the binary codec (the "dump through the debug link"),
// duration extraction between ipoint pairs, and the text rendering of
// the pWCET plot (the RVS Viewer screenshot of Fig. 3).
package rvs

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dsr/internal/cpu"
	"dsr/internal/mem"
)

// Conventional instrumentation point identifiers for the UoA boundaries.
const (
	UoAEnter int32 = 1
	UoAExit  int32 = 2
)

// Durations extracts the enter→exit durations of a UoA from a trace.
// Nested or unmatched points are tolerated: each exit closes the most
// recent open enter; unmatched enters are discarded.
func Durations(trace []cpu.TracePoint, enter, exit int32) []mem.Cycles {
	var out []mem.Cycles
	var open []mem.Cycles
	for _, tp := range trace {
		switch tp.ID {
		case enter:
			open = append(open, tp.Cycles)
		case exit:
			if n := len(open); n > 0 {
				out = append(out, tp.Cycles-open[n-1])
				open = open[:n-1]
			}
		}
	}
	return out
}

// ToFloats converts cycle durations for the statistics layer.
func ToFloats(ds []mem.Cycles) []float64 {
	out := make([]float64, len(ds))
	for i, d := range ds {
		out[i] = float64(d)
	}
	return out
}

// Binary trace format: the on-the-wire layout GRMON dumps (big-endian,
// as the SPARC target writes it).
//
//	magic   [4]byte  "RVST"
//	version uint16   1
//	count   uint32
//	records count × { id int32, cycles uint64 }
var (
	traceMagic = [4]byte{'R', 'V', 'S', 'T'}
	// ErrBadTrace is returned for malformed trace streams.
	ErrBadTrace = errors.New("rvs: malformed trace")
)

const traceVersion = 1

// Encode writes a binary trace.
func Encode(w io.Writer, trace []cpu.TracePoint) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(traceMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.BigEndian, uint16(traceVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.BigEndian, uint32(len(trace))); err != nil {
		return err
	}
	for _, tp := range trace {
		if err := binary.Write(bw, binary.BigEndian, tp.ID); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.BigEndian, uint64(tp.Cycles)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a binary trace.
func Decode(r io.Reader) ([]cpu.TracePoint, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if magic != traceMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrBadTrace, magic)
	}
	var version uint16
	if err := binary.Read(br, binary.BigEndian, &version); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if version != traceVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, version)
	}
	var count uint32
	if err := binary.Read(br, binary.BigEndian, &count); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	// Do not trust the declared count for allocation: a corrupt header
	// could otherwise demand gigabytes before the first record is read.
	// Truncated streams fail at the record loop instead.
	prealloc := count
	if prealloc > 4096 {
		prealloc = 4096
	}
	trace := make([]cpu.TracePoint, 0, prealloc)
	for i := uint32(0); i < count; i++ {
		var id int32
		var cyc uint64
		if err := binary.Read(br, binary.BigEndian, &id); err != nil {
			return nil, fmt.Errorf("%w: truncated at record %d", ErrBadTrace, i)
		}
		if err := binary.Read(br, binary.BigEndian, &cyc); err != nil {
			return nil, fmt.Errorf("%w: truncated at record %d", ErrBadTrace, i)
		}
		trace = append(trace, cpu.TracePoint{ID: id, Cycles: mem.Cycles(cyc)})
	}
	return trace, nil
}

// WriteCSV converts a trace to the host-side CSV format (cmd/traceconv).
func WriteCSV(w io.Writer, trace []cpu.TracePoint) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "ipoint,cycles"); err != nil {
		return err
	}
	for _, tp := range trace {
		if _, err := fmt.Fprintf(bw, "%d,%d\n", tp.ID, tp.Cycles); err != nil {
			return err
		}
	}
	return bw.Flush()
}
