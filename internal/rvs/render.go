package rvs

import (
	"fmt"
	"math"
	"strings"

	"dsr/internal/mbpta"
	"dsr/internal/stats"
)

// RenderCurve draws the pWCET plot of Fig. 3 as text, in the style of
// the RVS Viewer: X axis execution time, Y axis exceedance probability
// in log scale; '+' marks the measured execution times (their empirical
// exceedance), '*' the fitted pWCET curve, and the vertical bar the
// estimate at the target probability.
func RenderCurve(rep *mbpta.Report, times []float64, width, height int) string {
	if rep.Fit == nil || len(times) == 0 || width < 20 || height < 5 {
		return "rvs: nothing to render\n"
	}
	ecdf := stats.NewECDF(times)
	maxDecade := float64(len(rep.Curve))
	xMin := stats.Min(times)
	xMax := rep.Curve[len(rep.Curve)-1].Time
	if xMax <= xMin {
		xMax = xMin + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	// Row for probability p: row 0 is 10^0, last row is 10^-maxDecade.
	row := func(p float64) int {
		if p <= 0 {
			return height - 1
		}
		d := -math.Log10(p)
		r := int(d / maxDecade * float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}
	col := func(x float64) int {
		c := int((x - xMin) / (xMax - xMin) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}

	// Measured execution times (MET): plot empirical exceedance.
	for _, x := range ecdf.Sorted() {
		p := ecdf.Exceedance(x)
		if p <= 0 {
			p = 1 / float64(2*ecdf.Len())
		}
		grid[row(p)][col(x)] = '+'
	}
	// pWCET curve.
	for _, cp := range rep.Curve {
		grid[row(cp.Exceedance)][col(cp.Time)] = '*'
	}
	// Target estimate marker.
	tc := col(rep.PWCET)
	for r := 0; r < height; r++ {
		if grid[r][tc] == ' ' {
			grid[r][tc] = '|'
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "pWCET curve (N=%d runs)   '+' measured   '*' pWCET fit   '|' estimate at %.0e\n",
		rep.N, rep.TargetExceedance)
	for r := 0; r < height; r++ {
		d := float64(r) / float64(height-1) * maxDecade
		fmt.Fprintf(&b, "1e-%04.1f %s\n", d, string(grid[r]))
	}
	fmt.Fprintf(&b, "        time: %.0f .. %.0f cycles; MOET=%.0f; pWCET@%.0e=%.0f (+%.2f%%)\n",
		xMin, xMax, rep.MOET, rep.TargetExceedance, rep.PWCET, (rep.PWCET/rep.MOET-1)*100)
	return b.String()
}
