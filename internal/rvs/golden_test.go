package rvs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"dsr/internal/mbpta"
	"dsr/internal/platform"
	"dsr/internal/prng"
	"dsr/internal/telemetry"
)

// -update rewrites the golden files from the current render output:
//
//	go test ./internal/rvs -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// goldenTimes is a fixed pseudo-Gaussian sample (sum of uniforms), so
// the analysis — and therefore the rendered output — is byte-stable.
func goldenTimes() []float64 {
	src := prng.NewMWC(9)
	times := make([]float64, 1000)
	for i := range times {
		var s float64
		for k := 0; k < 6; k++ {
			s += prng.Float64(src)
		}
		times[i] = 200000 + 1500*s
	}
	return times
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s\nre-run with -update if the change is intended", name, got, want)
	}
}

func TestRenderCurveGolden(t *testing.T) {
	times := goldenTimes()
	rep, err := mbpta.Analyse(times, mbpta.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "curve.golden", []byte(RenderCurve(rep, times, 72, 18)))
}

func TestWriteReportGolden(t *testing.T) {
	times := goldenTimes()
	rep, err := mbpta.Analyse(times, mbpta.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, "golden-uoa", rep, times); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.golden", buf.Bytes())
}

func TestWriteCounterSummaryGolden(t *testing.T) {
	pmcs := platform.PMCs{
		Instr: 120000, Loads: 20000, Stores: 8000, FPU: 3000,
		ICMiss: 150, DCMiss: 900, L2Miss: 400, L2Access: 1050,
		ITLBMiss: 12, DTLBMiss: 31,
		WindowOverflows: 7, WindowUnderflows: 7,
	}
	var att telemetry.Attribution
	att.Charge(telemetry.CompBaseIssue, 120000)
	att.Charge(telemetry.CompDRAM, 48000)
	att.Charge(telemetry.CompL2, 9500)
	att.Charge(telemetry.CompFPUBase, 6000)
	att.Charge(telemetry.CompDSR, 1234)
	var buf bytes.Buffer
	if err := WriteCounterSummary(&buf, "golden-uoa", pmcs, att.Snapshot()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "counters.golden", buf.Bytes())

	// An invalid snapshot must stop after the PMC block.
	var off bytes.Buffer
	if err := WriteCounterSummary(&off, "golden-uoa", pmcs, telemetry.AttributionSnapshot{}); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(off.Bytes(), []byte("attribution")) {
		t.Error("disabled attribution still rendered a breakdown")
	}
}
