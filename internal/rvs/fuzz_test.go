package rvs

import (
	"bytes"
	"testing"

	"dsr/internal/cpu"
	"dsr/internal/mem"
)

// FuzzDecode checks that arbitrary byte streams never panic the trace
// decoder, and that every valid encoding round-trips.
func FuzzDecode(f *testing.F) {
	var good bytes.Buffer
	if err := Encode(&good, sampleTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(good.Bytes())
	f.Add([]byte{})
	f.Add([]byte("RVST"))
	f.Add([]byte("RVST\x00\x01\xFF\xFF\xFF\xFF"))
	f.Fuzz(func(t *testing.T, data []byte) {
		trace, err := Decode(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decodes must re-encode and decode to the same trace.
		var buf bytes.Buffer
		if err := Encode(&buf, trace); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := Decode(&buf)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again) != len(trace) {
			t.Fatalf("round trip changed length: %d vs %d", len(again), len(trace))
		}
		for i := range trace {
			if trace[i] != again[i] {
				t.Fatalf("round trip changed record %d", i)
			}
		}
		_ = Durations(trace, UoAEnter, UoAExit)
	})
}

// FuzzDurations checks the pairing logic tolerates arbitrary ID streams.
func FuzzDurations(f *testing.F) {
	f.Add([]byte{1, 2, 1, 2}, int32(1), int32(2))
	f.Add([]byte{2, 2, 1, 1}, int32(1), int32(2))
	f.Fuzz(func(t *testing.T, ids []byte, enter, exit int32) {
		trace := make([]cpu.TracePoint, len(ids))
		for i, id := range ids {
			trace[i] = cpu.TracePoint{ID: int32(id), Cycles: mem.Cycles(i) * 10}
		}
		ds := Durations(trace, enter, exit)
		for _, d := range ds {
			if int64(d) < 0 {
				t.Fatal("negative duration")
			}
		}
	})
}
