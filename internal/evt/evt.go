// Package evt implements the Extreme Value Theory machinery of MBPTA
// (Cucu-Grosjean et al., ECRTS 2012; Kotz & Nadarajah): grouping the
// measured execution times into block maxima, fitting a Gumbel model (the
// light-tailed EVT family MBPTA targets), and projecting the fit to the
// very low exceedance probabilities (e.g. 10^-15) at which pWCET
// estimates are quoted. A peaks-over-threshold exponential-tail fit is
// provided as the cross-check used by MBPTA implementations, along with
// the coefficient-of-variation exponentiality test.
package evt

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dsr/internal/stats"
)

// EulerGamma is the Euler-Mascheroni constant, used by the
// method-of-moments Gumbel fit.
const EulerGamma = 0.5772156649015329

// ErrDegenerate is returned when the sample has no variability to fit.
var ErrDegenerate = errors.New("evt: degenerate sample (zero variance)")

// Gumbel is a Gumbel (EV type I) distribution for maxima.
type Gumbel struct {
	Mu   float64 // location
	Beta float64 // scale (>0)
}

// CDF returns P(X <= x).
func (g Gumbel) CDF(x float64) float64 {
	return math.Exp(-math.Exp(-(x - g.Mu) / g.Beta))
}

// Exceedance returns P(X > x), computed as -expm1(-exp(-(x-mu)/beta)) so
// that the deep tail (10^-15 and beyond) keeps full precision — plain
// 1-CDF(x) loses the tail to cancellation.
func (g Gumbel) Exceedance(x float64) float64 {
	return -math.Expm1(-math.Exp(-(x - g.Mu) / g.Beta))
}

// Quantile returns the x with P(X > x) = p.
func (g Gumbel) Quantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("evt: Gumbel quantile needs 0<p<1, got %g", p))
	}
	// log1p keeps precision for the deep tail (p ~ 1e-15).
	return g.Mu - g.Beta*math.Log(-math.Log1p(-p))
}

// BlockMaxima partitions xs into consecutive blocks of the given size and
// returns each block's maximum. A trailing partial block is dropped, as
// is standard.
func BlockMaxima(xs []float64, block int) []float64 {
	if block <= 0 {
		panic("evt: non-positive block size")
	}
	n := len(xs) / block
	out := make([]float64, 0, n)
	for b := 0; b < n; b++ {
		out = append(out, stats.Max(xs[b*block:(b+1)*block]))
	}
	return out
}

// FitGumbel fits a Gumbel distribution to maxima by the method of
// moments: beta = s*sqrt(6)/pi, mu = mean - gamma*beta. Simple, robust,
// and the standard choice in MBPTA tooling.
func FitGumbel(maxima []float64) (Gumbel, error) {
	if len(maxima) < 10 {
		return Gumbel{}, fmt.Errorf("evt: need >=10 block maxima, got %d", len(maxima))
	}
	s := stats.StdDev(maxima)
	if s == 0 {
		return Gumbel{}, ErrDegenerate
	}
	beta := s * math.Sqrt(6) / math.Pi
	mu := stats.Mean(maxima) - EulerGamma*beta
	return Gumbel{Mu: mu, Beta: beta}, nil
}

// FitGumbelPWM fits a Gumbel by probability-weighted moments
// (Greenwood/Hosking), the estimator most MBPTA implementations prefer:
// beta = (2*b1 - b0)/ln 2, mu = b0 - gamma*beta, where b0 is the sample
// mean and b1 = Σ (i/(n-1)) x_(i) / n over the ascending order
// statistics. PWM is less sensitive to the largest observation than the
// moment fit; the two estimators agreeing is a useful robustness check.
func FitGumbelPWM(maxima []float64) (Gumbel, error) {
	n := len(maxima)
	if n < 10 {
		return Gumbel{}, fmt.Errorf("evt: need >=10 block maxima, got %d", n)
	}
	sorted := append([]float64(nil), maxima...)
	sort.Float64s(sorted)
	var b0, b1 float64
	for i, x := range sorted {
		b0 += x
		b1 += float64(i) / float64(n-1) * x
	}
	b0 /= float64(n)
	b1 /= float64(n)
	beta := (2*b1 - b0) / math.Ln2
	if beta <= 0 {
		return Gumbel{}, ErrDegenerate
	}
	return Gumbel{Mu: b0 - EulerGamma*beta, Beta: beta}, nil
}

// PWCET is a fitted pWCET model: a Gumbel over block maxima, projected
// back to per-run exceedance probabilities.
type PWCET struct {
	Model Gumbel
	Block int // block size the model was fitted over
	N     int // number of execution times used
	MOET  float64
}

// Fit builds a PWCET model from raw execution times.
func Fit(times []float64, block int) (*PWCET, error) {
	return FitFromMaxima(BlockMaxima(times, block), block, len(times), stats.Max(times))
}

// FitFromMaxima builds a PWCET model from precomputed block maxima —
// the streaming-ingestion path, where a campaign merge maintains the
// maxima incrementally instead of re-deriving them from the full
// series. n is the number of raw execution times the maxima summarise
// and moet their maximum; the result is identical to Fit on the raw
// series.
func FitFromMaxima(maxima []float64, block, n int, moet float64) (*PWCET, error) {
	g, err := FitGumbel(maxima)
	if err != nil {
		return nil, err
	}
	return &PWCET{Model: g, Block: block, N: n, MOET: moet}, nil
}

// Exceedance returns the per-run probability of exceeding x: the fitted
// model describes the max of Block runs, so
// p_run(x) = 1 - CDF_max(x)^(1/Block) = -expm1(log(CDF_max(x))/Block),
// with log(CDF_max(x)) = -exp(-(x-mu)/beta) evaluated directly to keep
// the deep tail precise.
func (p *PWCET) Exceedance(x float64) float64 {
	logCDF := -math.Exp(-(x - p.Model.Mu) / p.Model.Beta)
	return -math.Expm1(logCDF / float64(p.Block))
}

// Quantile returns the execution time whose per-run exceedance
// probability is pr: the pWCET estimate at pr (e.g. pr = 1e-15).
func (p *PWCET) Quantile(pr float64) float64 {
	if pr <= 0 || pr >= 1 {
		panic(fmt.Sprintf("evt: pWCET quantile needs 0<pr<1, got %g", pr))
	}
	// Per-run exceedance pr ⇔ log CDF_max = Block*log1p(-pr); solved for
	// x without forming 1-pr (which would wipe out the deep tail).
	logCDFMax := float64(p.Block) * math.Log1p(-pr)
	return p.Model.Mu - p.Model.Beta*math.Log(-logCDFMax)
}

// CurvePoint is one point of the pWCET curve of Fig. 3.
type CurvePoint struct {
	Time       float64
	Exceedance float64
}

// Curve samples the pWCET curve at the given exceedance probabilities
// (conventionally 10^-1 ... 10^-18), ready for plotting against the
// measured-execution-time ECDF.
func (p *PWCET) Curve(probs []float64) []CurvePoint {
	out := make([]CurvePoint, 0, len(probs))
	for _, pr := range probs {
		out = append(out, CurvePoint{Time: p.Quantile(pr), Exceedance: pr})
	}
	return out
}

// DecadeProbs returns {10^-1, ..., 10^-n}.
func DecadeProbs(n int) []float64 {
	out := make([]float64, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, math.Pow(10, -float64(i)))
	}
	return out
}

// ExpTail is a peaks-over-threshold model with exponential excesses: the
// GPD with shape 0, the tail MBPTA expects from a time-randomised
// platform.
type ExpTail struct {
	U        float64 // threshold
	Rate     float64 // 1/mean excess
	TailFrac float64 // fraction of the sample above U
}

// FitExpTail fits an exponential tail above the q-quantile of times
// (q is typically 0.8-0.95).
func FitExpTail(times []float64, q float64) (ExpTail, error) {
	if q <= 0 || q >= 1 {
		return ExpTail{}, fmt.Errorf("evt: threshold quantile %g out of (0,1)", q)
	}
	if len(times) < 20 {
		return ExpTail{}, fmt.Errorf("evt: need >=20 samples for a tail fit, got %d", len(times))
	}
	u := stats.Quantile(times, q)
	var excesses []float64
	for _, t := range times {
		if t > u {
			excesses = append(excesses, t-u)
		}
	}
	if len(excesses) < 5 {
		return ExpTail{}, fmt.Errorf("evt: only %d excesses above threshold", len(excesses))
	}
	m := stats.Mean(excesses)
	if m == 0 {
		return ExpTail{}, ErrDegenerate
	}
	return ExpTail{U: u, Rate: 1 / m, TailFrac: float64(len(excesses)) / float64(len(times))}, nil
}

// Exceedance returns P(X > x) under the tail model (1 for x below the
// threshold region's floor).
func (e ExpTail) Exceedance(x float64) float64 {
	if x <= e.U {
		return 1
	}
	return e.TailFrac * math.Exp(-e.Rate*(x-e.U))
}

// Quantile returns the x with P(X > x) = p, for p below TailFrac.
func (e ExpTail) Quantile(p float64) float64 {
	if p <= 0 || p >= e.TailFrac {
		panic(fmt.Sprintf("evt: ExpTail quantile needs 0<p<%g, got %g", e.TailFrac, p))
	}
	return e.U + math.Log(e.TailFrac/p)/e.Rate
}

// CVTest checks the exponentiality of the excesses over the q-quantile
// threshold via the coefficient of variation: for an exponential tail
// CV ≈ 1, with an asymptotic 95% band 1 ± 1.96/sqrt(n). Returns the CV,
// the band half-width, and whether the test passes.
func CVTest(times []float64, q float64) (cv, band float64, ok bool, err error) {
	u := stats.Quantile(times, q)
	var excesses []float64
	for _, t := range times {
		if t > u {
			excesses = append(excesses, t-u)
		}
	}
	if len(excesses) < 10 {
		return 0, 0, false, fmt.Errorf("evt: CV test needs >=10 excesses, got %d", len(excesses))
	}
	m := stats.Mean(excesses)
	if m == 0 {
		return 0, 0, false, ErrDegenerate
	}
	cv = stats.StdDev(excesses) / m
	band = 1.96 / math.Sqrt(float64(len(excesses)))
	return cv, band, math.Abs(cv-1) <= band, nil
}

// Converged implements the MBPTA convergence criterion: the pWCET
// quantile at probe must move by less than tol (relative) when going
// from the first half of the sample to the full sample. It reports
// whether more runs are needed.
func Converged(times []float64, block int, probe, tol float64) (bool, error) {
	if len(times) < 4*block {
		return false, fmt.Errorf("evt: need at least %d samples to assess convergence", 4*block)
	}
	half, err := Fit(times[:len(times)/2], block)
	if err != nil {
		return false, err
	}
	full, err := Fit(times, block)
	if err != nil {
		return false, err
	}
	a, b := half.Quantile(probe), full.Quantile(probe)
	if b == 0 {
		return false, ErrDegenerate
	}
	return math.Abs(a-b)/math.Abs(b) < tol, nil
}
