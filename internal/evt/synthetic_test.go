package evt

import (
	"fmt"
	"math"
	"testing"

	"dsr/internal/prng"
)

// Synthetic-distribution property tests: drive the EVT estimators with
// samples drawn from known GEV/GPD family members and check the fitted
// parameters land within tolerance. These harden the statistical layer
// the pWCET projection rests on — an estimator that silently drifts a
// few percent moves a 1e-15 quantile by whole MOET margins.

// gevSample draws n values from GEV(mu, beta, xi) by inversion:
// xi = 0 is the Gumbel member, xi > 0 Fréchet-like (heavy tail),
// xi < 0 Weibull-like (bounded tail).
func gevSample(src prng.Source, mu, beta, xi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		u := prng.Float64(src)
		for u == 0 || u == 1 {
			u = prng.Float64(src)
		}
		w := -math.Log(u)
		if xi == 0 {
			out[i] = mu - beta*math.Log(w)
		} else {
			out[i] = mu + beta*(math.Pow(w, -xi)-1)/xi
		}
	}
	return out
}

// gpdSample draws n excesses from GPD(beta, xi) over threshold u by
// inversion; xi = 0 is the exponential member with rate 1/beta.
func gpdSample(src prng.Source, u, beta, xi float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		p := prng.Float64(src)
		for p == 0 || p == 1 {
			p = prng.Float64(src)
		}
		if xi == 0 {
			out[i] = u - beta*math.Log(1-p)
		} else {
			out[i] = u + beta*(math.Pow(1-p, -xi)-1)/xi
		}
	}
	return out
}

// TestGumbelEstimatorSweep fits both Gumbel estimators over a grid of
// true parameters and checks recovery within 5% of scale. Table-driven
// across locations, scales and both estimators.
func TestGumbelEstimatorSweep(t *testing.T) {
	const n = 4000
	fits := []struct {
		name string
		fit  func([]float64) (Gumbel, error)
	}{
		{"moments", FitGumbel},
		{"pwm", FitGumbelPWM},
	}
	var seed uint64 = 1
	for _, mu := range []float64{0, 300, 250000} {
		for _, beta := range []float64{1, 40, 900} {
			seed++
			sample := gevSample(prng.NewMWC(seed), mu, beta, 0, n)
			for _, f := range fits {
				t.Run(fmt.Sprintf("%s/mu=%g/beta=%g", f.name, mu, beta), func(t *testing.T) {
					g, err := f.fit(sample)
					if err != nil {
						t.Fatal(err)
					}
					if math.Abs(g.Mu-mu) > 0.05*beta {
						t.Errorf("mu = %g, want %g ± %g", g.Mu, mu, 0.05*beta)
					}
					if math.Abs(g.Beta-beta)/beta > 0.05 {
						t.Errorf("beta = %g, want %g ± 5%%", g.Beta, beta)
					}
				})
			}
		}
	}
}

// TestBlockMaximaLocationShift checks max-stability, the property the
// per-run→block projection in PWCET relies on: the max of k Gumbel
// variables is Gumbel again with mu' = mu + beta*ln k and the same
// beta. Fitting block maxima of a Gumbel sample must recover exactly
// that shifted location.
func TestBlockMaximaLocationShift(t *testing.T) {
	const (
		mu, beta = 1000.0, 25.0
		block    = 50
		n        = block * 2000
	)
	sample := gevSample(prng.NewMWC(7), mu, beta, 0, n)
	g, err := FitGumbel(BlockMaxima(sample, block))
	if err != nil {
		t.Fatal(err)
	}
	wantMu := mu + beta*math.Log(block)
	if math.Abs(g.Mu-wantMu) > 0.1*beta {
		t.Errorf("block-maxima mu = %g, want %g (mu + beta ln k)", g.Mu, wantMu)
	}
	if math.Abs(g.Beta-beta)/beta > 0.1 {
		t.Errorf("block-maxima beta = %g, want %g", g.Beta, beta)
	}
}

// TestExpTailRateRecoverySweep checks the peaks-over-threshold fit
// recovers the exponential (GPD xi=0) tail rate across a sweep of true
// rates and threshold quantiles.
func TestExpTailRateRecoverySweep(t *testing.T) {
	const n = 20000
	var seed uint64 = 100
	for _, rate := range []float64{0.01, 0.5, 3} {
		for _, q := range []float64{0.8, 0.9} {
			seed++
			// Body below the threshold is uniform; the tail beyond it is
			// exponential with the target rate.
			src := prng.NewMWC(seed)
			sample := make([]float64, 0, n)
			bodyN := int(float64(n) * q)
			for i := 0; i < bodyN; i++ {
				sample = append(sample, 100*prng.Float64(src))
			}
			sample = append(sample, gpdSample(src, 100, 1/rate, 0, n-bodyN)...)
			t.Run(fmt.Sprintf("rate=%g/q=%g", rate, q), func(t *testing.T) {
				tail, err := FitExpTail(sample, q)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(tail.Rate-rate)/rate > 0.10 {
					t.Errorf("rate = %g, want %g ± 10%%", tail.Rate, rate)
				}
			})
		}
	}
}

// TestCVTestShapeDiscrimination checks the CV exponentiality test
// sorts the GPD family by shape: the xi=0 member passes, heavy tails
// (xi > 0, CV > 1) and bounded tails (xi < 0, CV < 1) fail once xi is
// far enough from zero.
func TestCVTestShapeDiscrimination(t *testing.T) {
	const n = 8000
	cases := []struct {
		xi   float64
		pass bool
	}{
		{-0.5, false}, // bounded tail, CV < 1
		{0, true},     // exponential
		{0.4, false},  // heavy tail, CV > 1
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("xi=%g", c.xi), func(t *testing.T) {
			src := prng.NewMWC(uint64(900 + int(c.xi*10)))
			sample := make([]float64, 0, n)
			for i := 0; i < n*9/10; i++ {
				sample = append(sample, 50*prng.Float64(src))
			}
			sample = append(sample, gpdSample(src, 50, 10, c.xi, n/10)...)
			cv, band, ok, err := CVTest(sample, 0.9)
			if err != nil {
				t.Fatal(err)
			}
			if ok != c.pass {
				t.Errorf("xi=%g: CV=%.3f band=%.3f pass=%v, want %v", c.xi, cv, band, ok, c.pass)
			}
			if c.xi > 0 && cv <= 1 {
				t.Errorf("heavy tail gave CV %.3f <= 1", cv)
			}
			if c.xi < 0 && cv >= 1 {
				t.Errorf("bounded tail gave CV %.3f >= 1", cv)
			}
		})
	}
}

// TestGumbelFitOnHeavyTailUnderestimates documents why the i.i.d. gate
// and CV cross-check matter: a Gumbel fit forced onto Fréchet-like
// (xi > 0) maxima systematically underestimates deep-tail quantiles,
// i.e. the fitted model's 1e-9 quantile sits below the true one.
func TestGumbelFitOnHeavyTailUnderestimates(t *testing.T) {
	const (
		xi = 0.3
		n  = 5000
	)
	sample := gevSample(prng.NewMWC(11), 1000, 25, xi, n)
	g, err := FitGumbel(sample)
	if err != nil {
		t.Fatal(err)
	}
	// True GEV quantile at exceedance p.
	trueQ := func(p float64) float64 {
		w := -math.Log1p(-p)
		return 1000 + 25*(math.Pow(w, -xi)-1)/xi
	}
	p := 1e-9
	if got, want := g.Quantile(p), trueQ(p); got >= want {
		t.Errorf("Gumbel fit on heavy tail gave %g >= true %g; expected underestimate", got, want)
	}
}

// TestFitFromMaximaMatchesFit checks the streaming-ingestion entry
// point is exactly the batch fit.
func TestFitFromMaximaMatchesFit(t *testing.T) {
	sample := gevSample(prng.NewMWC(21), 500, 12, 0, 2000)
	const block = 40
	batch, err := Fit(sample, block)
	if err != nil {
		t.Fatal(err)
	}
	var moet float64
	for _, x := range sample {
		if x > moet {
			moet = x
		}
	}
	stream, err := FitFromMaxima(BlockMaxima(sample, block), block, len(sample), moet)
	if err != nil {
		t.Fatal(err)
	}
	if *batch != *stream {
		t.Errorf("FitFromMaxima %+v != Fit %+v", *stream, *batch)
	}
}
