package evt

import (
	"math"
	"testing"
	"testing/quick"

	"dsr/internal/prng"
	"dsr/internal/stats"
)

// gumbelSample draws n values from Gumbel(mu, beta) by inversion.
func gumbelSample(src prng.Source, mu, beta float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		u := prng.Float64(src)
		for u == 0 {
			u = prng.Float64(src)
		}
		out[i] = mu - beta*math.Log(-math.Log(u))
	}
	return out
}

// expSample draws n values from Exp(rate) shifted by base.
func expSample(src prng.Source, base, rate float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		u := prng.Float64(src)
		for u == 0 {
			u = prng.Float64(src)
		}
		out[i] = base - math.Log(u)/rate
	}
	return out
}

func TestGumbelCDFQuantileRoundTrip(t *testing.T) {
	g := Gumbel{Mu: 100, Beta: 5}
	for _, p := range []float64{0.5, 0.1, 1e-3, 1e-9, 1e-15} {
		x := g.Quantile(p)
		if got := g.Exceedance(x); math.Abs(got-p)/p > 1e-6 {
			t.Errorf("exceedance(quantile(%g))=%g", p, got)
		}
	}
	// Quantiles decrease with increasing exceedance probability.
	if g.Quantile(1e-15) <= g.Quantile(1e-3) {
		t.Error("quantile not monotone in probability")
	}
}

func TestBlockMaxima(t *testing.T) {
	xs := []float64{1, 5, 2, 9, 3, 4, 7, 8, 6}
	bm := BlockMaxima(xs, 3)
	want := []float64{5, 9, 8}
	if len(bm) != 3 {
		t.Fatalf("bm=%v", bm)
	}
	for i := range want {
		if bm[i] != want[i] {
			t.Errorf("bm=%v, want %v", bm, want)
		}
	}
	// Partial trailing block dropped.
	if got := BlockMaxima(xs, 4); len(got) != 2 {
		t.Errorf("partial block not dropped: %v", got)
	}
}

func TestFitGumbelRecoversParameters(t *testing.T) {
	src := prng.NewMWC(11)
	sample := gumbelSample(src, 1000, 25, 5000)
	g, err := FitGumbel(sample)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Mu-1000) > 5 {
		t.Errorf("mu=%f, want ≈1000", g.Mu)
	}
	if math.Abs(g.Beta-25) > 2 {
		t.Errorf("beta=%f, want ≈25", g.Beta)
	}
}

func TestFitGumbelErrors(t *testing.T) {
	if _, err := FitGumbel([]float64{1, 2, 3}); err == nil {
		t.Error("tiny sample accepted")
	}
	flat := make([]float64, 50)
	for i := range flat {
		flat[i] = 9
	}
	if _, err := FitGumbel(flat); err != ErrDegenerate {
		t.Errorf("degenerate sample: err=%v", err)
	}
}

func TestPWCETUpperBoundsSample(t *testing.T) {
	// The pWCET estimate at 1e-15 must upper-bound the MOET for a
	// light-tailed sample — the tight-upper-bound property of Fig. 3.
	src := prng.NewMWC(21)
	times := gumbelSample(src, 300000, 800, 2000)
	p, err := Fit(times, 50)
	if err != nil {
		t.Fatal(err)
	}
	q := p.Quantile(1e-15)
	if q <= p.MOET {
		t.Errorf("pWCET@1e-15 (%f) does not exceed MOET (%f)", q, p.MOET)
	}
	// And the bound should be tight-ish for a genuine Gumbel sample: the
	// paper reports ~0.2% over MOET; allow a broad sanity margin here.
	if q > p.MOET*1.5 {
		t.Errorf("pWCET %f vs MOET %f: implausibly loose", q, p.MOET)
	}
}

func TestPWCETExceedanceQuantileConsistency(t *testing.T) {
	src := prng.NewMWC(31)
	times := gumbelSample(src, 100000, 300, 3000)
	p, err := Fit(times, 50)
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range []float64{1e-3, 1e-6, 1e-12, 1e-15} {
		x := p.Quantile(pr)
		got := p.Exceedance(x)
		if math.Abs(got-pr)/pr > 1e-3 {
			t.Errorf("exceedance(quantile(%g))=%g", pr, got)
		}
	}
}

func TestPWCETCurveMonotone(t *testing.T) {
	src := prng.NewMWC(41)
	times := gumbelSample(src, 100000, 300, 2000)
	p, err := Fit(times, 50)
	if err != nil {
		t.Fatal(err)
	}
	curve := p.Curve(DecadeProbs(16))
	if len(curve) != 16 {
		t.Fatalf("curve has %d points", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Time <= curve[i-1].Time {
			t.Fatal("pWCET curve not strictly increasing in time")
		}
		if curve[i].Exceedance >= curve[i-1].Exceedance {
			t.Fatal("curve probabilities not decreasing")
		}
	}
}

func TestDecadeProbs(t *testing.T) {
	ps := DecadeProbs(3)
	want := []float64{0.1, 0.01, 0.001}
	for i := range want {
		if math.Abs(ps[i]-want[i]) > 1e-15 {
			t.Errorf("ps=%v", ps)
		}
	}
}

func TestExpTailFitAndQuantile(t *testing.T) {
	src := prng.NewMWC(51)
	times := expSample(src, 1000, 0.01, 5000) // mean excess 100 over 1000
	e, err := FitExpTail(times, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// Above the threshold the fitted rate should be close to 0.01 (the
	// exponential is memoryless, so the excess distribution is unchanged).
	if math.Abs(e.Rate-0.01)/0.01 > 0.15 {
		t.Errorf("rate=%f, want ≈0.01", e.Rate)
	}
	// Round trip.
	for _, p := range []float64{1e-3, 1e-9, 1e-15} {
		x := e.Quantile(p)
		if got := e.Exceedance(x); math.Abs(got-p)/p > 1e-9 {
			t.Errorf("exp tail round trip at %g: %g", p, got)
		}
	}
	// Exceedance at/below threshold is 1.
	if e.Exceedance(e.U) != 1 {
		t.Error("exceedance at threshold should be 1")
	}
}

func TestExpTailErrors(t *testing.T) {
	if _, err := FitExpTail([]float64{1, 2}, 0.9); err == nil {
		t.Error("tiny sample accepted")
	}
	src := prng.NewMWC(5)
	times := expSample(src, 0, 1, 100)
	if _, err := FitExpTail(times, 1.5); err == nil {
		t.Error("bad quantile accepted")
	}
}

func TestCVTestOnExponentialTail(t *testing.T) {
	src := prng.NewMWC(61)
	times := expSample(src, 500, 0.05, 4000)
	cv, band, ok, err := CVTest(times, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("exponential tail failed CV test: cv=%f band=%f", cv, band)
	}
}

func TestCVTestRejectsHeavyTail(t *testing.T) {
	// Pareto-ish tail (heavy): CV of excesses well above 1.
	src := prng.NewMWC(71)
	times := make([]float64, 4000)
	for i := range times {
		u := prng.Float64(src)
		for u == 0 {
			u = prng.Float64(src)
		}
		times[i] = 100 * math.Pow(u, -0.9) // very heavy tail
	}
	_, _, ok, err := CVTest(times, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("heavy tail passed the CV exponentiality test")
	}
}

func TestConverged(t *testing.T) {
	src := prng.NewMWC(81)
	times := gumbelSample(src, 100000, 200, 4000)
	ok, err := Converged(times, 50, 1e-12, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("large stationary sample reported unconverged")
	}
	if _, err := Converged(times[:100], 50, 1e-12, 0.05); err == nil {
		t.Error("tiny sample accepted for convergence check")
	}
}

// Property: for any fitted model, Quantile is the inverse of Exceedance
// wherever both are defined.
func TestQuantileInverseProperty(t *testing.T) {
	f := func(seed uint64) bool {
		src := prng.NewMWC(seed)
		times := gumbelSample(src, 1000, 10+prng.Float64(src)*100, 1000)
		p, err := Fit(times, 25)
		if err != nil {
			return true
		}
		for _, pr := range []float64{1e-2, 1e-7, 1e-13} {
			x := p.Quantile(pr)
			if e := p.Exceedance(x); math.Abs(e-pr)/pr > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// The Gumbel fit must upper-bound the empirical tail of its own sample
// at probabilities observable in the sample (a coarse goodness check).
func TestFitMatchesEmpiricalTail(t *testing.T) {
	src := prng.NewMWC(91)
	times := gumbelSample(src, 50000, 500, 5000)
	p, err := Fit(times, 50)
	if err != nil {
		t.Fatal(err)
	}
	e := stats.NewECDF(times)
	// At the empirical 99th percentile, model exceedance should be within
	// a factor of ~3 of the empirical 1%.
	x99 := stats.Quantile(times, 0.99)
	me := p.Exceedance(x99)
	ee := e.Exceedance(x99)
	if me < ee/3 || me > ee*3 {
		t.Errorf("model exceedance %g vs empirical %g at p99", me, ee)
	}
}

func TestFitGumbelPWMRecoversParameters(t *testing.T) {
	src := prng.NewMWC(111)
	sample := gumbelSample(src, 2000, 40, 5000)
	g, err := FitGumbelPWM(sample)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Mu-2000) > 8 {
		t.Errorf("PWM mu=%f, want ≈2000", g.Mu)
	}
	if math.Abs(g.Beta-40) > 3 {
		t.Errorf("PWM beta=%f, want ≈40", g.Beta)
	}
}

func TestPWMAndMomentsAgree(t *testing.T) {
	// On genuine Gumbel data the two estimators must agree closely — the
	// robustness cross-check MBPTA tooling applies.
	src := prng.NewMWC(121)
	sample := gumbelSample(src, 500, 12, 3000)
	m, err := FitGumbel(sample)
	if err != nil {
		t.Fatal(err)
	}
	p, err := FitGumbelPWM(sample)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Mu-p.Mu) > 2 {
		t.Errorf("mu disagreement: moments %f vs PWM %f", m.Mu, p.Mu)
	}
	if math.Abs(m.Beta-p.Beta)/m.Beta > 0.15 {
		t.Errorf("beta disagreement: moments %f vs PWM %f", m.Beta, p.Beta)
	}
}

func TestPWMLessSensitiveToOutlier(t *testing.T) {
	src := prng.NewMWC(131)
	sample := gumbelSample(src, 1000, 10, 500)
	m0, _ := FitGumbel(sample)
	p0, _ := FitGumbelPWM(sample)
	// Inject one extreme observation.
	polluted := append(append([]float64(nil), sample...), 1000+40*10)
	m1, _ := FitGumbel(polluted)
	p1, _ := FitGumbelPWM(polluted)
	if math.Abs(p1.Beta-p0.Beta) >= math.Abs(m1.Beta-m0.Beta) {
		t.Errorf("PWM (%f->%f) not more robust than moments (%f->%f)",
			p0.Beta, p1.Beta, m0.Beta, m1.Beta)
	}
}

func TestPWMErrors(t *testing.T) {
	if _, err := FitGumbelPWM([]float64{1, 2}); err == nil {
		t.Error("tiny sample accepted")
	}
	desc := make([]float64, 50)
	for i := range desc {
		desc[i] = 5
	}
	if _, err := FitGumbelPWM(desc); err != ErrDegenerate {
		t.Errorf("flat sample: %v", err)
	}
}
