package asm

import (
	"strings"
	"testing"
)

// TestLoopBoundAnnotation checks the two attachment forms: on the same
// line as an instruction, and on a standalone comment line (binding to
// the next instruction).
func TestLoopBoundAnnotation(t *testing.T) {
	src := `
.func main frame=96
 save 96
 mov 0, %l0
loop:
 add %l0, 1, %l0   ! dsr:loop-bound 16
 cmp %l0, 16
 bl loop
 ; dsr:loop-bound 3
 nop
 halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	f := p.Function("main")
	if f == nil {
		t.Fatal("main missing")
	}
	// Instruction indices: 0 save, 1 mov, 2 add, 3 cmp, 4 bl, 5 nop, 6 halt.
	if got := f.LoopBounds[2]; got != 16 {
		t.Errorf("same-line annotation: LoopBounds[2]=%d, want 16", got)
	}
	if got := f.LoopBounds[5]; got != 3 {
		t.Errorf("standalone annotation: LoopBounds[5]=%d, want 3", got)
	}
	if len(f.LoopBounds) != 2 {
		t.Errorf("LoopBounds=%v, want exactly 2 entries", f.LoopBounds)
	}
}

// TestLoopBoundAnnotationSurvivesOtherCommentText ensures the tag is
// found inside ordinary prose comments.
func TestLoopBoundAnnotationSurvivesOtherCommentText(t *testing.T) {
	src := ".func main frame=96\n save 96\n nop ! rows loop, dsr:loop-bound 24 by construction\n halt\n"
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if got := p.Function("main").LoopBounds[1]; got != 24 {
		t.Errorf("LoopBounds[1]=%d, want 24", got)
	}
}

// TestLoopBoundErrors exercises every malformed-annotation path with
// line-number-accurate messages.
func TestLoopBoundErrors(t *testing.T) {
	cases := []struct {
		name, src, wantLine string
	}{
		{
			name:     "missing value",
			src:      ".func f\n save 96\n nop ! dsr:loop-bound\n halt\n",
			wantLine: "line 3",
		},
		{
			name:     "malformed value",
			src:      ".func f\n save 96\n nop ! dsr:loop-bound sixteen\n halt\n",
			wantLine: "line 3",
		},
		{
			name:     "zero value",
			src:      ".func f\n save 96\n nop ! dsr:loop-bound 0\n halt\n",
			wantLine: "line 3",
		},
		{
			name:     "negative value",
			src:      ".func f\n save 96\n nop ! dsr:loop-bound -4\n halt\n",
			wantLine: "line 3",
		},
		{
			name:     "glued form",
			src:      ".func f\n save 96\n nop ! dsr:loop-bound=16\n halt\n",
			wantLine: "line 3",
		},
		{
			name:     "dangling at end of function",
			src:      ".func f\n save 96\n halt\n ! dsr:loop-bound 8\n",
			wantLine: "line 4",
		},
		{
			name:     "dangling before next function",
			src:      ".func f\n save 96\n halt\n ! dsr:loop-bound 8\n.func g\n save 96\n halt\n",
			wantLine: "line 4",
		},
		{
			name:     "duplicate pending annotation",
			src:      ".func f\n save 96\n ! dsr:loop-bound 8\n ! dsr:loop-bound 9\n nop\n halt\n",
			wantLine: "line 4",
		},
	}
	for _, tc := range cases {
		_, err := Assemble(tc.src)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantLine) {
			t.Errorf("%s: error %q does not carry %q", tc.name, err, tc.wantLine)
		}
		if !strings.Contains(err.Error(), "loop-bound") {
			t.Errorf("%s: error %q does not mention loop-bound", tc.name, err)
		}
	}
}
