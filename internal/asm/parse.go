package asm

import (
	"fmt"
	"strconv"
	"strings"

	"dsr/internal/isa"
)

// regNames maps register spellings (including the %sp/%fp aliases the
// disassembler emits) to register numbers.
var regNames = func() map[string]isa.Reg {
	m := map[string]isa.Reg{"%sp": isa.SP, "%fp": isa.FP}
	groups := []struct {
		prefix string
		base   isa.Reg
	}{{"%g", isa.G0}, {"%o", isa.O0}, {"%l", isa.L0}, {"%i", isa.I0}}
	for _, g := range groups {
		for i := 0; i < 8; i++ {
			m[fmt.Sprintf("%s%d", g.prefix, i)] = g.base + isa.Reg(i)
		}
	}
	return m
}()

func parseReg(tok string) (isa.Reg, error) {
	if r, ok := regNames[tok]; ok {
		return r, nil
	}
	return 0, fmt.Errorf("bad register %q", tok)
}

func parseFReg(tok string) (isa.FReg, error) {
	if strings.HasPrefix(tok, "%f") {
		if n, err := strconv.Atoi(tok[2:]); err == nil && n >= 0 && n < isa.NumFRegs {
			return isa.FReg(n), nil
		}
	}
	return 0, fmt.Errorf("bad fp register %q", tok)
}

// parseImm accepts decimal (optionally signed) and 0x hex immediates.
func parseImm(tok string) (int32, error) {
	v, err := strconv.ParseInt(tok, 0, 64)
	if err != nil {
		// Accept unsigned 32-bit hex like 0xFFFFFFFF.
		if u, uerr := strconv.ParseUint(tok, 0, 32); uerr == nil {
			return int32(uint32(u)), nil
		}
		return 0, err
	}
	if v < -(1<<31) || v > (1<<32)-1 {
		return 0, fmt.Errorf("immediate %q out of 32-bit range", tok)
	}
	return int32(v), nil
}

// parseMem parses "[%reg+imm]", "[%reg-imm]" or "[%reg]".
func parseMem(tok string) (isa.Reg, int32, error) {
	if !strings.HasPrefix(tok, "[") || !strings.HasSuffix(tok, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", tok)
	}
	inner := tok[1 : len(tok)-1]
	sep := strings.IndexAny(inner[1:], "+-")
	if sep < 0 {
		r, err := parseReg(inner)
		return r, 0, err
	}
	sep++ // account for the skipped first byte
	r, err := parseReg(inner[:sep])
	if err != nil {
		return 0, 0, err
	}
	imm, err := parseImm(inner[sep:])
	if err != nil {
		return 0, 0, fmt.Errorf("bad offset in %q: %v", tok, err)
	}
	return r, imm, nil
}

// src2 parses the flexible second ALU operand: register or immediate.
func parseSrc2(tok string, in *isa.Instr) error {
	if r, err := parseReg(tok); err == nil {
		in.Rs2 = r
		return nil
	}
	imm, err := parseImm(tok)
	if err != nil {
		return fmt.Errorf("operand %q is neither register nor immediate", tok)
	}
	in.Imm = imm
	in.UseImm = true
	return nil
}

// operands splits the operand list on commas, trimming blanks.
func operands(rest string) []string {
	if strings.TrimSpace(rest) == "" {
		return nil
	}
	parts := strings.Split(rest, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

var aluOps = map[string]isa.Op{
	"add": isa.Add, "sub": isa.Sub, "and": isa.And, "or": isa.Or,
	"xor": isa.Xor, "sll": isa.Sll, "srl": isa.Srl, "sra": isa.Sra,
	"mul": isa.Mul, "div": isa.Div,
}

var fpu3Ops = map[string]isa.Op{
	"fadd": isa.Fadd, "fsub": isa.Fsub, "fmul": isa.Fmul, "fdiv": isa.Fdiv,
}

var fpu2Ops = map[string]isa.Op{
	"fsqrt": isa.Fsqrt, "fitos": isa.Fitos, "fstoi": isa.Fstoi,
}

var branchOps = map[string]isa.Op{
	"ba": isa.Ba, "be": isa.Be, "bne": isa.Bne, "bl": isa.Bl,
	"ble": isa.Ble, "bg": isa.Bg, "bge": isa.Bge,
	"fbe": isa.Fbe, "fbne": isa.Fbne, "fbl": isa.Fbl, "fbg": isa.Fbg,
}

var bareOps = map[string]isa.Op{
	"nop": isa.Nop, "halt": isa.Halt, "ret": isa.Ret, "retl": isa.RetL,
	"restore": isa.Restore,
}

// parseInstr assembles one instruction line (mnemonic already split off
// the label prefix).
func parseInstr(n int, text string, a *assembler) (isa.Instr, error) {
	mnemonic, rest, _ := strings.Cut(strings.TrimSpace(text), " ")
	mnemonic = strings.ToLower(mnemonic)
	ops := operands(rest)
	var in isa.Instr

	want := func(k int) error {
		if len(ops) != k {
			return errf(n, "%s wants %d operands, got %d", mnemonic, k, len(ops))
		}
		return nil
	}

	switch {
	case bareOps[mnemonic] != 0 || mnemonic == "nop":
		if err := want(0); err != nil {
			return in, err
		}
		in.Op = bareOps[mnemonic]

	case aluOps[mnemonic] != 0:
		if err := want(3); err != nil {
			return in, err
		}
		in.Op = aluOps[mnemonic]
		r1, err := parseReg(ops[0])
		if err != nil {
			return in, errf(n, "%v", err)
		}
		in.Rs1 = r1
		if err := parseSrc2(ops[1], &in); err != nil {
			return in, errf(n, "%v", err)
		}
		rd, err := parseReg(ops[2])
		if err != nil {
			return in, errf(n, "%v", err)
		}
		in.Rd = rd

	case mnemonic == "cmp":
		if err := want(2); err != nil {
			return in, err
		}
		in.Op = isa.Cmp
		r1, err := parseReg(ops[0])
		if err != nil {
			return in, errf(n, "%v", err)
		}
		in.Rs1 = r1
		if err := parseSrc2(ops[1], &in); err != nil {
			return in, errf(n, "%v", err)
		}

	case mnemonic == "set":
		if err := want(2); err != nil {
			return in, err
		}
		in.Op = isa.Set
		if imm, err := parseImm(ops[0]); err == nil {
			in.Imm = imm
		} else if isIdent(ops[0]) {
			in.Sym = ops[0]
		} else {
			return in, errf(n, "set wants an immediate or symbol, got %q", ops[0])
		}
		rd, err := parseReg(ops[1])
		if err != nil {
			return in, errf(n, "%v", err)
		}
		in.Rd = rd

	case mnemonic == "mov":
		if err := want(2); err != nil {
			return in, err
		}
		in.Op = isa.Mov
		if err := parseSrc2(ops[0], &in); err != nil {
			return in, errf(n, "%v", err)
		}
		rd, err := parseReg(ops[1])
		if err != nil {
			return in, errf(n, "%v", err)
		}
		in.Rd = rd

	case mnemonic == "ld" || mnemonic == "ldub":
		if err := want(2); err != nil {
			return in, err
		}
		if mnemonic == "ld" {
			in.Op = isa.Ld
		} else {
			in.Op = isa.Ldub
		}
		r1, imm, err := parseMem(ops[0])
		if err != nil {
			return in, errf(n, "%v", err)
		}
		rd, err := parseReg(ops[1])
		if err != nil {
			return in, errf(n, "%v", err)
		}
		in.Rs1, in.Imm, in.Rd = r1, imm, rd

	case mnemonic == "st" || mnemonic == "stb":
		if err := want(2); err != nil {
			return in, err
		}
		if mnemonic == "st" {
			in.Op = isa.St
		} else {
			in.Op = isa.Stb
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return in, errf(n, "%v", err)
		}
		r1, imm, err := parseMem(ops[1])
		if err != nil {
			return in, errf(n, "%v", err)
		}
		in.Rd, in.Rs1, in.Imm = rd, r1, imm

	case mnemonic == "fld":
		if err := want(2); err != nil {
			return in, err
		}
		in.Op = isa.FLd
		r1, imm, err := parseMem(ops[0])
		if err != nil {
			return in, errf(n, "%v", err)
		}
		fd, err := parseFReg(ops[1])
		if err != nil {
			return in, errf(n, "%v", err)
		}
		in.Rs1, in.Imm, in.FRd = r1, imm, fd

	case mnemonic == "fst":
		if err := want(2); err != nil {
			return in, err
		}
		in.Op = isa.FSt
		fs, err := parseFReg(ops[0])
		if err != nil {
			return in, errf(n, "%v", err)
		}
		r1, imm, err := parseMem(ops[1])
		if err != nil {
			return in, errf(n, "%v", err)
		}
		in.FRs2, in.Rs1, in.Imm = fs, r1, imm

	case fpu3Ops[mnemonic] != 0:
		if err := want(3); err != nil {
			return in, err
		}
		in.Op = fpu3Ops[mnemonic]
		f1, err := parseFReg(ops[0])
		if err != nil {
			return in, errf(n, "%v", err)
		}
		f2, err := parseFReg(ops[1])
		if err != nil {
			return in, errf(n, "%v", err)
		}
		fd, err := parseFReg(ops[2])
		if err != nil {
			return in, errf(n, "%v", err)
		}
		in.FRs1, in.FRs2, in.FRd = f1, f2, fd

	case fpu2Ops[mnemonic] != 0:
		if err := want(2); err != nil {
			return in, err
		}
		in.Op = fpu2Ops[mnemonic]
		f2, err := parseFReg(ops[0])
		if err != nil {
			return in, errf(n, "%v", err)
		}
		fd, err := parseFReg(ops[1])
		if err != nil {
			return in, errf(n, "%v", err)
		}
		in.FRs2, in.FRd = f2, fd

	case mnemonic == "fcmp":
		if err := want(2); err != nil {
			return in, err
		}
		in.Op = isa.Fcmp
		f1, err := parseFReg(ops[0])
		if err != nil {
			return in, errf(n, "%v", err)
		}
		f2, err := parseFReg(ops[1])
		if err != nil {
			return in, errf(n, "%v", err)
		}
		in.FRs1, in.FRs2 = f1, f2

	case branchOps[mnemonic] != 0:
		if err := want(1); err != nil {
			return in, err
		}
		in.Op = branchOps[mnemonic]
		if disp, err := parseImm(ops[0]); err == nil {
			in.Disp = disp
		} else if isIdent(ops[0]) {
			a.fixups = append(a.fixups, fixup{index: len(a.fn.Code), label: ops[0], line: n})
		} else {
			return in, errf(n, "branch target %q is neither label nor displacement", ops[0])
		}

	case mnemonic == "call":
		if err := want(1); err != nil {
			return in, err
		}
		if !isIdent(ops[0]) {
			return in, errf(n, "call wants a symbol, got %q", ops[0])
		}
		in.Op = isa.Call
		in.Sym = ops[0]

	case mnemonic == "callr":
		if err := want(1); err != nil {
			return in, err
		}
		in.Op = isa.CallR
		r, err := parseReg(ops[0])
		if err != nil {
			return in, errf(n, "%v", err)
		}
		in.Rs1 = r

	case mnemonic == "save":
		if err := want(1); err != nil {
			return in, err
		}
		in.Op = isa.Save
		imm, err := parseImm(ops[0])
		if err != nil {
			return in, errf(n, "%v", err)
		}
		in.Imm = imm

	case mnemonic == "savex":
		if err := want(2); err != nil {
			return in, err
		}
		in.Op = isa.SaveX
		imm, err := parseImm(ops[0])
		if err != nil {
			return in, errf(n, "%v", err)
		}
		r, err := parseReg(ops[1])
		if err != nil {
			return in, errf(n, "%v", err)
		}
		in.Imm, in.Rs2 = imm, r

	case mnemonic == "ipoint":
		if err := want(1); err != nil {
			return in, err
		}
		in.Op = isa.IPoint
		imm, err := parseImm(ops[0])
		if err != nil {
			return in, errf(n, "%v", err)
		}
		in.Imm = imm

	default:
		return in, errf(n, "unknown mnemonic %q", mnemonic)
	}
	return in, nil
}
