package asm

import (
	"strings"
	"testing"
)

// FuzzAssemble checks that arbitrary source never panics the assembler:
// it must either produce a valid program or a positioned error.
func FuzzAssemble(f *testing.F) {
	f.Add(sampleSource)
	f.Add(".func main\n save 96\n halt\n")
	f.Add(".data d size=8\n.word 1 2\n")
	f.Add(".leaf l\n retl\n")
	f.Add(".func f frame=96\nx: ba x\n halt\n")
	f.Add("garbage\n")
	f.Add(".func f\n ld [%sp+" + strings.Repeat("9", 30) + "], %l0\n")
	f.Add(".func f\n set 0x, %l0\n")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err == nil && p == nil {
			t.Fatal("nil program without error")
		}
		if err == nil {
			// Anything the assembler accepts must re-validate.
			if verr := p.Validate(); verr != nil {
				t.Fatalf("accepted program fails validation: %v", verr)
			}
		}
	})
}
