// Package asm is a small text assembler for the simulator's SPARC-
// flavoured ISA, completing the toolchain: programs can be written as
// assembly source instead of through the prog builder API. The
// instruction syntax is exactly the disassembler's output format
// (isa.Instr.String), so assembly and disassembly round-trip.
//
// Source structure:
//
//	; comments start with ';', '!' or '#'
//	.program control            ; optional module name
//	.entry main                 ; entry function
//
//	.data table size=64 align=8 ; a data object
//	.word 1 2 3                 ; optional initialiser words (repeatable)
//
//	.func main frame=96         ; a non-leaf function (frame in bytes)
//	    save 96
//	    set table, %l0
//	loop:                       ; labels end with ':'
//	    ld [%l0+0], %l1
//	    cmp %l1, 0
//	    bne loop                ; branches take labels or numeric disps
//	    ipoint 1
//	    halt
//
//	.leaf twice                 ; a leaf function
//	    add %o0, %o0, %o0
//	    retl
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"dsr/internal/mem"
	"dsr/internal/prog"
)

// Error is a source-position-carrying assembly error.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...interface{}) *Error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// SourceInfo maps assembled code back to source positions, so static-
// analysis diagnostics (internal/analysis, cmd/dsrlint) can point at
// the offending source line rather than an instruction index.
type SourceInfo struct {
	// FuncLines[f][i] is the 1-based source line of instruction i of
	// function f.
	FuncLines map[string][]int
	// FuncDef[f] is the line of f's .func/.leaf directive.
	FuncDef map[string]int
	// DataDef[d] is the line of d's .data directive.
	DataDef map[string]int
}

// InstrLine returns the source line of instruction index i of function
// fn. It satisfies analysis.LineResolver.
func (si *SourceInfo) InstrLine(fn string, i int) (int, bool) {
	lines, ok := si.FuncLines[fn]
	if !ok || i < 0 || i >= len(lines) {
		return 0, false
	}
	return lines[i], true
}

// Assemble parses source into a validated program.
func Assemble(src string) (*prog.Program, error) {
	p, _, err := AssembleWithInfo(src)
	return p, err
}

// AssembleWithInfo is Assemble plus the source-position mapping.
func AssembleWithInfo(src string) (*prog.Program, *SourceInfo, error) {
	a := &assembler{
		p: &prog.Program{Name: "a.out"},
		info: &SourceInfo{
			FuncLines: map[string][]int{},
			FuncDef:   map[string]int{},
			DataDef:   map[string]int{},
		},
	}
	for i, raw := range strings.Split(src, "\n") {
		if err := a.line(i+1, raw); err != nil {
			return nil, nil, err
		}
	}
	if err := a.endFunc(); err != nil {
		return nil, nil, err
	}
	if a.p.Entry == "" && len(a.p.Functions) > 0 {
		a.p.Entry = a.p.Functions[0].Name
	}
	if err := a.p.Validate(); err != nil {
		return nil, nil, fmt.Errorf("asm: %w", err)
	}
	return a.p, a.info, nil
}

type fixup struct {
	index int
	label string
	line  int
}

type assembler struct {
	p    *prog.Program
	info *SourceInfo

	// current function state
	fn      *prog.Function
	fnLines []int // source line of each emitted instruction
	labels  map[string]int
	fixups  []fixup
	fnLine  int

	// current data object (for .word accumulation)
	data *prog.DataObject

	// pendingBound carries a `dsr:loop-bound N` annotation until the
	// next instruction is emitted; pendingBoundLine is where it was
	// written, for accurate dangling-annotation errors.
	pendingBound     int
	pendingBoundLine int
}

// line processes one source line.
func (a *assembler) line(n int, raw string) error {
	text, comment := splitComment(raw)
	if err := a.scanAnnotations(n, comment); err != nil {
		return err
	}
	// Peel leading labels ("name:") off the line; several may stack.
	for {
		trimmed := strings.TrimSpace(text)
		if trimmed == "" {
			return nil
		}
		colon := strings.Index(trimmed, ":")
		if colon < 0 || !isIdent(trimmed[:colon]) {
			text = trimmed
			break
		}
		if a.fn == nil {
			return errf(n, "label %q outside a function", trimmed[:colon])
		}
		name := trimmed[:colon]
		if _, dup := a.labels[name]; dup {
			return errf(n, "duplicate label %q", name)
		}
		a.labels[name] = len(a.fn.Code)
		text = trimmed[colon+1:]
	}

	if strings.HasPrefix(text, ".") {
		return a.directive(n, text)
	}
	if a.fn == nil {
		return errf(n, "instruction outside a function: %q", text)
	}
	in, err := parseInstr(n, text, a)
	if err != nil {
		return err
	}
	a.fn.Code = append(a.fn.Code, in)
	a.fnLines = append(a.fnLines, n)
	if a.pendingBound > 0 {
		if a.fn.LoopBounds == nil {
			a.fn.LoopBounds = map[int]int{}
		}
		a.fn.LoopBounds[len(a.fn.Code)-1] = a.pendingBound
		a.pendingBound = 0
	}
	return nil
}

// splitComment cuts s at the first comment character, returning the code
// part and the comment text (without its introducing character).
func splitComment(s string) (code, comment string) {
	cut := len(s)
	for _, c := range []string{";", "!", "#"} {
		if i := strings.Index(s, c); i >= 0 && i < cut {
			cut = i
		}
	}
	if cut == len(s) {
		return s, ""
	}
	return s[:cut], s[cut+1:]
}

// boundTag introduces a loop-bound annotation inside a comment:
//
//	add %l0, %l0, 1    ! dsr:loop-bound 16
//
// binds the innermost natural loop containing the annotated instruction
// (the one on the same line, or the next instruction when the comment
// stands alone) to at most 16 iterations per entry. The static WCET
// analyzer relies on these when a loop's trip count cannot be inferred.
const boundTag = "dsr:loop-bound"

// scanAnnotations parses machine-readable annotations out of a comment.
// Malformed values are hard errors with the annotation's line number —
// a silently dropped bound would let an unbounded loop masquerade as
// bounded analysis input.
func (a *assembler) scanAnnotations(n int, comment string) error {
	if !strings.Contains(comment, boundTag) {
		return nil
	}
	fields := strings.Fields(comment)
	for i := 0; i < len(fields); i++ {
		if fields[i] != boundTag {
			// Catch near-misses like "dsr:loop-bound=16" so typos fail
			// loudly instead of being ignored as prose.
			if strings.HasPrefix(fields[i], boundTag) {
				return errf(n, "malformed %s annotation %q: want %q followed by a count", boundTag, fields[i], boundTag+" N")
			}
			continue
		}
		if a.pendingBound > 0 {
			return errf(n, "duplicate %s annotation: previous one on line %d is not attached to an instruction yet", boundTag, a.pendingBoundLine)
		}
		if i+1 >= len(fields) {
			return errf(n, "%s: missing iteration count", boundTag)
		}
		v, err := strconv.Atoi(fields[i+1])
		if err != nil {
			return errf(n, "%s: malformed iteration count %q", boundTag, fields[i+1])
		}
		if v < 1 {
			return errf(n, "%s: iteration count %d must be >= 1", boundTag, v)
		}
		a.pendingBound, a.pendingBoundLine = v, n
		i++
	}
	return nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// directive handles .program/.entry/.data/.word/.func/.leaf.
func (a *assembler) directive(n int, text string) error {
	fields := strings.Fields(text)
	switch fields[0] {
	case ".program":
		if len(fields) != 2 {
			return errf(n, ".program wants a name")
		}
		a.p.Name = fields[1]
	case ".entry":
		if len(fields) != 2 {
			return errf(n, ".entry wants a function name")
		}
		a.p.Entry = fields[1]
	case ".data":
		if err := a.endFunc(); err != nil {
			return err
		}
		return a.dataDirective(n, fields[1:])
	case ".word":
		if a.data == nil {
			return errf(n, ".word outside a .data object")
		}
		for _, f := range fields[1:] {
			v, err := parseImm(f)
			if err != nil {
				return errf(n, "bad word %q: %v", f, err)
			}
			a.data.Init = append(a.data.Init, uint32(v))
		}
		if mem.Addr(len(a.data.Init))*mem.WordSize > a.data.Size {
			return errf(n, "initialiser overflows %q (%d bytes)", a.data.Name, a.data.Size)
		}
	case ".func", ".leaf":
		if err := a.endFunc(); err != nil {
			return err
		}
		a.data = nil
		if len(fields) < 2 {
			return errf(n, "%s wants a name", fields[0])
		}
		fn := &prog.Function{Name: fields[1], Leaf: fields[0] == ".leaf"}
		for _, f := range fields[2:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok || k != "frame" {
				return errf(n, "unknown function attribute %q", f)
			}
			fv, err := parseImm(v)
			if err != nil {
				return errf(n, "bad frame %q", v)
			}
			fn.FrameSize = fv
		}
		if !fn.Leaf && fn.FrameSize == 0 {
			fn.FrameSize = prog.MinFrame
		}
		a.fn = fn
		a.fnLines = nil
		a.labels = map[string]int{}
		a.fixups = nil
		a.fnLine = n
	default:
		return errf(n, "unknown directive %q", fields[0])
	}
	return nil
}

func (a *assembler) dataDirective(n int, fields []string) error {
	if len(fields) < 1 {
		return errf(n, ".data wants a name")
	}
	d := &prog.DataObject{Name: fields[0], Align: mem.DoubleWord}
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return errf(n, "bad data attribute %q", f)
		}
		iv, err := parseImm(v)
		if err != nil {
			return errf(n, "bad %s value %q", k, v)
		}
		switch k {
		case "size":
			d.Size = mem.Addr(iv)
		case "align":
			d.Align = mem.Addr(iv)
		default:
			return errf(n, "unknown data attribute %q", k)
		}
	}
	if d.Size == 0 {
		return errf(n, "data %q needs size=", d.Name)
	}
	if err := a.p.AddData(d); err != nil {
		return errf(n, "%v", err)
	}
	a.info.DataDef[d.Name] = n
	a.data = d
	return nil
}

// endFunc resolves the current function's label fixups and commits it.
func (a *assembler) endFunc() error {
	if a.pendingBound > 0 {
		return errf(a.pendingBoundLine, "%s annotation is not attached to any instruction", boundTag)
	}
	if a.fn == nil {
		return nil
	}
	for _, fx := range a.fixups {
		tgt, ok := a.labels[fx.label]
		if !ok {
			return errf(fx.line, "undefined label %q", fx.label)
		}
		a.fn.Code[fx.index].Disp = int32(tgt - fx.index)
	}
	if err := a.p.AddFunction(a.fn); err != nil {
		return errf(a.fnLine, "%v", err)
	}
	a.info.FuncLines[a.fn.Name] = a.fnLines
	a.info.FuncDef[a.fn.Name] = a.fnLine
	a.fn = nil
	a.fnLines = nil
	a.labels = nil
	a.fixups = nil
	return nil
}
