package asm

import (
	"os"
	"strings"
	"testing"
	"testing/quick"

	"dsr/internal/cpu"
	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/mem"
	"dsr/internal/prng"
)

const sampleSource = `
; a complete program exercising most syntax
.program sample
.entry main

.data table size=32 align=8
.word 1 2 3 4
.word 5 6

.func main frame=96
    save 96
    ipoint 1
    set table, %l0
    mov 0, %l1          ; i
    mov 0, %l2          ; sum
loop:
    sll %l1, 2, %l3
    add %l0, %l3, %l4
    ld [%l4+0], %l5
    add %l2, %l5, %l2
    add %l1, 1, %l1
    cmp %l1, 6
    bl loop
    mov %l2, %o0
    call twice
    ipoint 2
    halt

.leaf twice
    add %o0, %o0, %o0
    retl
`

func assembleAndRun(t *testing.T, src string) *cpu.CPU {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	data := cpu.NewMemory()
	for _, iw := range img.Inits {
		data.StoreWord(iw.Addr, iw.Val)
	}
	c := cpu.New(cpu.NewDefaultConfig(), img, nullMem{}, nullMem{}, nil, nil, data)
	c.Reset(0x6000_0000)
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	return c
}

type nullMem struct{}

func (nullMem) Read(mem.Addr, int) mem.Cycles  { return 0 }
func (nullMem) Write(mem.Addr, int) mem.Cycles { return 0 }

func TestAssembleAndExecute(t *testing.T) {
	c := assembleAndRun(t, sampleSource)
	// sum(1..6) = 21, doubled by the leaf = 42.
	if got := c.Reg(isa.O0); got != 42 {
		t.Errorf("result=%d, want 42", got)
	}
	if len(c.Trace()) != 2 {
		t.Errorf("trace=%v", c.Trace())
	}
}

func TestProgramMetadata(t *testing.T) {
	p, err := Assemble(sampleSource)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "sample" || p.Entry != "main" {
		t.Errorf("name=%q entry=%q", p.Name, p.Entry)
	}
	d := p.DataObject("table")
	if d == nil || d.Size != 32 || d.Align != 8 || len(d.Init) != 6 {
		t.Errorf("data=%+v", d)
	}
	if p.Function("twice") == nil || !p.Function("twice").Leaf {
		t.Error("leaf function lost")
	}
}

func TestDefaultEntryIsFirstFunction(t *testing.T) {
	p, err := Assemble(".func start\n save 96\n halt\n")
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != "start" {
		t.Errorf("entry=%q", p.Entry)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := `
.func main   ; trailing comment
  save 96    ! sparc comment
             # empty-ish line

  halt
`
	if _, err := Assemble(src); err != nil {
		t.Fatal(err)
	}
}

func TestStackedLabels(t *testing.T) {
	p, err := Assemble(".func main\n save 96\na: b: halt\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Function("main").Code) != 2 {
		t.Error("stacked labels emitted instructions")
	}
}

func TestSymbolAndHexImmediates(t *testing.T) {
	src := `
.data buf size=8
.func main
 save 96
 set 0xFFFFFFFF, %l0
 set -1, %l1
 set buf, %l2
 halt
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	code := p.Function("main").Code
	if code[1].Imm != -1 || code[2].Imm != -1 {
		t.Errorf("immediates: %v %v", code[1].Imm, code[2].Imm)
	}
	if code[3].Sym != "buf" {
		t.Errorf("symbol lost: %v", code[3])
	}
}

func TestNegativeMemOffset(t *testing.T) {
	p, err := Assemble(".func main\n save 96\n st %l1, [%sp-4]\n halt\n")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Function("main").Code[1]
	if in.Op != isa.St || in.Rs1 != isa.SP || in.Imm != -4 {
		t.Errorf("parsed %v", in)
	}
}

func TestErrors(t *testing.T) {
	cases := map[string]string{
		"instruction outside function": "add %o0, %o1, %o2\n",
		"unknown mnemonic":             ".func f\n save 96\n frob %o0\n halt\n",
		"bad register":                 ".func f\n save 96\n add %q0, %o1, %o2\n halt\n",
		"wrong operand count":          ".func f\n save 96\n add %o0, %o1\n halt\n",
		"undefined label":              ".func f\n save 96\n ba nowhere\n halt\n",
		"duplicate label":              ".func f\n save 96\nx:\n nop\nx:\n halt\n",
		"label outside function":       "x: .func f\n save 96\n halt\n",
		"word outside data":            ".word 1 2\n.func f\n save 96\n halt\n",
		"data without size":            ".data d\n.func f\n save 96\n halt\n",
		"init overflow":                ".data d size=4\n.word 1 2\n.func f\n save 96\n halt\n",
		"unknown directive":            ".wat\n",
		"duplicate function":           ".func f\n save 96\n halt\n.func f\n save 96\n halt\n",
		"bad mem operand":              ".func f\n save 96\n ld %o0, %o1\n halt\n",
		"call immediate":               ".func f\n save 96\n call 42\n halt\n",
		"undefined call target":        ".func f\n save 96\n call ghost\n halt\n",
		"leaf with ret":                ".leaf f\n ret\n",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestErrorCarriesLine(t *testing.T) {
	_, err := Assemble(".func f\n save 96\n frob\n halt\n")
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Errorf("err=%v, want line 3", err)
	}
}

// randomInstr draws a random well-formed instruction for the round-trip
// property test.
func randomInstr(src prng.Source) isa.Instr {
	regs := []isa.Reg{isa.G1, isa.O0, isa.O3, isa.L2, isa.L7, isa.I1, isa.SP, isa.FP}
	r := func() isa.Reg { return regs[prng.Intn(src, len(regs))] }
	fr := func() isa.FReg { return isa.FReg(prng.Intn(src, isa.NumFRegs)) }
	imm := func() int32 { return int32(prng.Intn(src, 4096) - 2048) }
	switch prng.Intn(src, 12) {
	case 0:
		in := isa.Instr{Op: isa.Add, Rd: r(), Rs1: r()}
		if prng.Intn(src, 2) == 0 {
			in.Rs2 = r()
		} else {
			in.Imm, in.UseImm = imm(), true
		}
		return in
	case 1:
		return isa.Instr{Op: isa.Cmp, Rs1: r(), Imm: imm(), UseImm: true}
	case 2:
		return isa.Instr{Op: isa.Set, Rd: r(), Imm: imm()}
	case 3:
		return isa.Instr{Op: isa.Mov, Rd: r(), Rs2: r()}
	case 4:
		return isa.Instr{Op: isa.Ld, Rd: r(), Rs1: r(), Imm: imm() &^ 3}
	case 5:
		return isa.Instr{Op: isa.St, Rd: r(), Rs1: r(), Imm: imm() &^ 3}
	case 6:
		return isa.Instr{Op: isa.FLd, FRd: fr(), Rs1: r(), Imm: imm() &^ 3}
	case 7:
		return isa.Instr{Op: isa.Fadd, FRd: fr(), FRs1: fr(), FRs2: fr()}
	case 8:
		return isa.Instr{Op: isa.Fsqrt, FRd: fr(), FRs2: fr()}
	case 9:
		return isa.Instr{Op: isa.Fcmp, FRs1: fr(), FRs2: fr()}
	case 10:
		return isa.Instr{Op: isa.SaveX, Imm: 96 + imm()%8*8, Rs2: r()}
	default:
		return isa.Instr{Op: isa.IPoint, Imm: imm()}
	}
}

// Property: assembling the disassembler's output reproduces the
// instruction exactly.
func TestAssembleDisassembleRoundTrip(t *testing.T) {
	src := prng.NewMWC(2024)
	f := func() bool {
		want := randomInstr(src)
		text := ".func f frame=96\n save 96\n " + want.String() + "\n halt\n"
		p, err := Assemble(text)
		if err != nil {
			t.Logf("assemble %q: %v", want.String(), err)
			return false
		}
		got := p.Function("f").Code[1]
		if got != want {
			t.Logf("round trip %q: got %+v want %+v", want.String(), got, want)
			return false
		}
		return true
	}
	if err := quick.Check(func(uint8) bool { return f() }, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: whole-function round trip through disassembly.
func TestFunctionRoundTrip(t *testing.T) {
	p, err := Assemble(sampleSource)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	b.WriteString(".program sample\n.entry main\n.data table size=32 align=8\n.word 1 2 3 4 5 6\n")
	for _, f := range p.Functions {
		if f.Leaf {
			b.WriteString(".leaf " + f.Name + "\n")
		} else {
			b.WriteString(".func " + f.Name + " frame=96\n")
		}
		for i := range f.Code {
			b.WriteString(" " + f.Code[i].String() + "\n")
		}
	}
	q, err := Assemble(b.String())
	if err != nil {
		t.Fatalf("reassembly failed: %v\nsource:\n%s", err, b.String())
	}
	for fi, f := range p.Functions {
		g := q.Functions[fi]
		if len(f.Code) != len(g.Code) {
			t.Fatalf("function %s length changed", f.Name)
		}
		for i := range f.Code {
			if f.Code[i] != g.Code[i] {
				t.Errorf("%s[%d]: %+v != %+v", f.Name, i, f.Code[i], g.Code[i])
			}
		}
	}
}

// TestTestdataProgramEndToEnd assembles the shipped example source and
// runs it, checking the observable result against a Go re-computation.
func TestTestdataProgramEndToEnd(t *testing.T) {
	src, err := os.ReadFile("testdata/uoa.s")
	if err != nil {
		t.Fatal(err)
	}
	c := assembleAndRun(t, string(src))

	// Reference: sensors 10..80 then zeros, limit 100, 64 entries.
	sensors := []uint32{10, 20, 30, 40, 50, 60, 70, 80}
	var sum uint32
	for i := 0; i < 64; i++ {
		var v uint32
		if i < len(sensors) {
			v = sensors[i]
		}
		if v > 100 {
			v = 100
		}
		sum += v
	}
	sum ^= sum << 5
	sum ^= sum >> 7
	if got := c.Reg(isa.O0); got != sum {
		t.Errorf("uoa result=%d, want %d", got, sum)
	}
	if len(c.Trace()) != 2 {
		t.Error("ipoints lost")
	}
}

func TestMoreErrorPaths(t *testing.T) {
	cases := map[string]string{
		"program arity":     ".program a b\n",
		"entry arity":       ".entry\n",
		"bad func attr":     ".func f color=red\n save 96\n halt\n",
		"bad frame value":   ".func f frame=abc\n save 96\n halt\n",
		"func without name": ".func\n",
		"bad data attr":     ".data d size=8 shape=round\n",
		"bad data value":    ".data d size=huge\n",
		"dup data":          ".data d size=8\n.data d size=8\n.func f\n save 96\n halt\n",
		"bad word":          ".data d size=8\n.word zz\n.func f\n save 96\n halt\n",
		"bad set operand":   ".func f\n save 96\n set [%o0+0], %l0\n halt\n",
		"bad fp register":   ".func f\n save 96\n fadd %f99, %f0, %f1\n halt\n",
		"bad branch target": ".func f\n save 96\n ba [%o0+0]\n halt\n",
		"bad savex reg":     ".func f\n save 96\n savex 96, 42\n halt\n",
		"bad ipoint":        ".func f\n save 96\n ipoint x\n halt\n",
		"bad callr":         ".func f\n save 96\n callr 7\n halt\n",
		"bad mem offset":    ".func f\n save 96\n ld [%o0*4], %l0\n halt\n",
		"bare mem reg bad":  ".func f\n save 96\n ld [nope], %l0\n halt\n",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Memory operand without offset is legal.
	if _, err := Assemble(".func f\n save 96\n ld [%o0], %l0\n halt\n"); err != nil {
		t.Errorf("offset-less memory operand rejected: %v", err)
	}
}
