; A miniature unit of analysis written in assembly: validates a sensor
; vector against limits, accumulates a checksum, and CRC-folds it.
; Used by the end-to-end assembler test and runnable with cmd/dsrrun.
.program uoa
.entry main

.data sensors size=256 align=8
.word 10 20 30 40 50 60 70 80

.data limits size=8 align=8
.word 100

.func main frame=96
    save 96
    ipoint 1
    set sensors, %l0
    set limits, %l1
    ld [%l1+0], %l2      ; limit
    mov 0, %l3           ; i
    mov 0, %l4           ; sum
    mov 0, %l5           ; violations
loop:
    sll %l3, 2, %l6
    add %l0, %l6, %l7
    ld [%l7+0], %o0
    cmp %o0, %l2
    ble ok
    add %l5, 1, %l5      ; count violation
    mov %l2, %o0         ; clamp
ok:
    add %l4, %o0, %l4
    add %l3, 1, %l3
    cmp %l3, 64
    bl loop
    mov %l4, %o0
    call fold
    ipoint 2
    halt

.leaf fold
    sll %o0, 5, %g1
    xor %o0, %g1, %o0
    srl %o0, 7, %g1
    xor %o0, %g1, %o0
    retl
