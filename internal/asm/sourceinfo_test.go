package asm

// Source-position mapping: AssembleWithInfo must attribute every
// emitted instruction to its source line, so the lint layer
// (internal/analysis, cmd/dsrlint) reports findings against the file
// the author edits rather than an instruction index.

import (
	"strings"
	"testing"

	"dsr/internal/analysis"
)

// lineSource has deliberately irregular spacing (comments, blank lines,
// labels) so instruction indices and line numbers diverge.
const lineSource = `.program lines
.entry main

.data buf size=8 align=8

; a comment line

.func main frame=96
    save 96
    mov 0, %l0

loop:
    add %l0, 1, %l0      ; line 13
    cmp %l0, 3
    bl loop

    mov %g6, %o0         ; line 17: reserved-register violation
    halt
`

func TestSourceInfoInstrLines(t *testing.T) {
	p, info, err := AssembleWithInfo(lineSource)
	if err != nil {
		t.Fatal(err)
	}
	if p.Function("main") == nil {
		t.Fatal("main lost")
	}
	wantLines := []int{9, 10, 13, 14, 15, 17, 18} // save, mov, add, cmp, bl, mov, halt
	got := info.FuncLines["main"]
	if len(got) != len(wantLines) {
		t.Fatalf("FuncLines=%v, want %d entries", got, len(wantLines))
	}
	for i, want := range wantLines {
		if line, ok := info.InstrLine("main", i); !ok || line != want {
			t.Errorf("InstrLine(main, %d)=%d,%v, want %d", i, line, ok, want)
		}
	}
	if info.FuncDef["main"] != 8 {
		t.Errorf("FuncDef=%d, want 8", info.FuncDef["main"])
	}
	if info.DataDef["buf"] != 4 {
		t.Errorf("DataDef=%d, want 4", info.DataDef["buf"])
	}
	// Out-of-range queries fail cleanly.
	if _, ok := info.InstrLine("main", 99); ok {
		t.Error("out-of-range index resolved")
	}
	if _, ok := info.InstrLine("nosuch", 0); ok {
		t.Error("unknown function resolved")
	}
}

func TestLintDiagnosticsCarrySourceLines(t *testing.T) {
	// End-to-end: the reserved-register violation on line 17 of the
	// source must surface with that line attached, the dsrlint pipeline.
	p, info, err := AssembleWithInfo(lineSource)
	if err != nil {
		t.Fatal(err)
	}
	diags := analysis.Run(p, analysis.DefaultPasses(), info.InstrLine)
	found := false
	for _, d := range diags {
		if d.Pass == analysis.PassReservedReg {
			found = true
			if d.Line != 17 {
				t.Errorf("reserved-reg diagnostic at line %d, want 17: %s", d.Line, d)
			}
			if !strings.Contains(d.String(), "line 17") {
				t.Errorf("rendered diagnostic lacks the line: %s", d)
			}
		}
	}
	if !found {
		t.Fatal("reserved-register violation not reported")
	}
}

func TestAssembleWithInfoMatchesAssemble(t *testing.T) {
	// The info-carrying entry point must produce the identical program.
	p1, err := Assemble(sampleSource)
	if err != nil {
		t.Fatal(err)
	}
	p2, info, err := AssembleWithInfo(sampleSource)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Name != p2.Name || len(p1.Functions) != len(p2.Functions) || len(p1.Data) != len(p2.Data) {
		t.Fatal("programs diverge between Assemble and AssembleWithInfo")
	}
	for i, f := range p1.Functions {
		g := p2.Functions[i]
		if f.Name != g.Name || len(f.Code) != len(g.Code) {
			t.Fatalf("function %q diverges", f.Name)
		}
		for j := range f.Code {
			if f.Code[j] != g.Code[j] {
				t.Fatalf("%s+%d: %q vs %q", f.Name, j, f.Code[j].String(), g.Code[j].String())
			}
		}
		if len(info.FuncLines[f.Name]) != len(f.Code) {
			t.Errorf("%s: %d line entries for %d instructions",
				f.Name, len(info.FuncLines[f.Name]), len(f.Code))
		}
	}
}

func TestSourceInfoErrorPathsKeepLineNumbers(t *testing.T) {
	cases := []struct {
		name string
		src  string
		line int
	}{
		{"instruction outside function", ".program p\n\nadd %o0, %o1, %o2\n", 3},
		{"undefined label", ".program p\n.func f frame=96\nsave 96\nba nowhere\nret\n", 4},
		{"bad operand", ".program p\n.func f frame=96\nsave 96\nadd %o0, %qz, %o1\nret\n", 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, info, err := AssembleWithInfo(tc.src)
			if err == nil {
				t.Fatal("no error")
			}
			if info != nil {
				t.Error("info returned alongside an error")
			}
			ae, ok := err.(*Error)
			if !ok {
				t.Fatalf("error %T does not carry a position: %v", err, err)
			}
			if ae.Line != tc.line {
				t.Errorf("error at line %d, want %d: %v", ae.Line, tc.line, err)
			}
		})
	}
}
