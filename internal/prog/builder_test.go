package prog

import (
	"testing"

	"dsr/internal/isa"
)

// TestBuilderEmittersProduceExpectedOpcodes drives every convenience
// emitter once and checks the emitted opcode stream.
func TestBuilderEmittersProduceExpectedOpcodes(t *testing.T) {
	f := NewFunc("all", MinFrame).
		Prologue().
		Nop().
		Add(isa.L0, isa.L1, isa.L2).
		AddI(isa.L0, isa.L1, 1).
		Sub(isa.L0, isa.L1, isa.L2).
		SubI(isa.L0, isa.L1, 1).
		Mul(isa.L0, isa.L1, isa.L2).
		MulI(isa.L0, isa.L1, 3).
		AndI(isa.L0, isa.L1, 0xF).
		SllI(isa.L0, isa.L1, 2).
		SrlI(isa.L0, isa.L1, 2).
		MovI(isa.L0, 5).
		Mov(isa.L0, isa.L1).
		SetI(isa.L0, 100).
		Cmp(isa.L0, isa.L1).
		CmpI(isa.L0, 7).
		Ld(isa.L0, isa.SP, 0).
		St(isa.L0, isa.SP, 0).
		Ldub(isa.L0, isa.SP, 0).
		Stb(isa.L0, isa.SP, 0).
		FLd(0, isa.SP, 0).
		FSt(0, isa.SP, 0).
		Fadd(0, 1, 2).
		Fsub(0, 1, 2).
		Fmul(0, 1, 2).
		Fdiv(0, 1, 2).
		Fsqrt(0, 1).
		Fcmp(0, 1).
		Fitos(0, 1).
		Fstoi(0, 1).
		IPoint(9).
		Label("x").
		Ba("x").
		Be("x").
		Bne("x").
		Bl("x").
		Ble("x").
		Bg("x").
		Bge("x").
		Fbe("x").
		Fbne("x").
		Fbl("x").
		Fbg("x").
		Halt().
		MustBuild()

	want := []isa.Op{
		isa.Save, isa.Nop,
		isa.Add, isa.Add, isa.Sub, isa.Sub, isa.Mul, isa.Mul,
		isa.And, isa.Sll, isa.Srl,
		isa.Mov, isa.Mov, isa.Set, isa.Cmp, isa.Cmp,
		isa.Ld, isa.St, isa.Ldub, isa.Stb, isa.FLd, isa.FSt,
		isa.Fadd, isa.Fsub, isa.Fmul, isa.Fdiv, isa.Fsqrt, isa.Fcmp,
		isa.Fitos, isa.Fstoi, isa.IPoint,
		isa.Ba, isa.Be, isa.Bne, isa.Bl, isa.Ble, isa.Bg, isa.Bge,
		isa.Fbe, isa.Fbne, isa.Fbl, isa.Fbg,
		isa.Halt,
	}
	if len(f.Code) != len(want) {
		t.Fatalf("emitted %d instructions, want %d", len(f.Code), len(want))
	}
	for i, op := range want {
		if f.Code[i].Op != op {
			t.Errorf("instr %d is %s, want %s", i, f.Code[i].Op, op)
		}
	}
	// All branch displacements point back at the label.
	for i := range f.Code {
		if f.Code[i].Op.IsBranch() {
			if tgt := i + int(f.Code[i].Disp); tgt != 31 {
				t.Errorf("branch at %d targets %d, want 31", i, tgt)
			}
		}
	}
}

func TestBuilderCallAndSet(t *testing.T) {
	f := NewFunc("c", MinFrame).
		Prologue().
		Set(isa.O0, "obj").
		Call("callee").
		Epilogue().
		MustBuild()
	if f.Code[1].Op != isa.Set || f.Code[1].Sym != "obj" {
		t.Error("Set emitter")
	}
	if f.Code[2].Op != isa.Call || f.Code[2].Sym != "callee" {
		t.Error("Call emitter")
	}
	if f.Code[3].Op != isa.Ret {
		t.Error("Epilogue emitter")
	}
}

func TestBuilderErrorSticks(t *testing.T) {
	b := NewLeaf("bad").Label("dup").Nop().Label("dup")
	// Further emissions after an error must not panic, and Build must
	// still report the first error.
	b.Nop().RetLeaf()
	if _, err := b.Build(); err == nil {
		t.Error("sticky error lost")
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic on bad function")
		}
	}()
	NewLeaf("bad").Ba("nowhere").MustBuild()
}
