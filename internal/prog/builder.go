package prog

import (
	"fmt"

	"dsr/internal/isa"
)

// Builder assembles one function with symbolic labels. Emitters append
// instructions; Label defines a branch target; unresolved references are
// fixed up by Build. The convenience emitters keep the hand-written
// case-study code close to the assembly a compiler would emit.
type Builder struct {
	fn       *Function
	labels   map[string]int
	fixups   []fixup
	buildErr error

	// pendingBound, when >0, is a loop-bound annotation waiting for the
	// next emitted instruction (see LoopBound).
	pendingBound int
}

type fixup struct {
	instr int
	label string
}

// NewFunc starts a non-leaf function with the given frame size. The
// prologue (save) and epilogue (ret+restore) are NOT implicit; emit them
// with Prologue/Epilogue or by hand, so that transformation passes can
// observe them.
func NewFunc(name string, frameSize int32) *Builder {
	return &Builder{
		fn:     &Function{Name: name, FrameSize: frameSize},
		labels: map[string]int{},
	}
}

// NewLeaf starts a leaf function (no window, no frame, returns via RetL).
func NewLeaf(name string) *Builder {
	return &Builder{
		fn:     &Function{Name: name, Leaf: true},
		labels: map[string]int{},
	}
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in isa.Instr) *Builder {
	if b.pendingBound > 0 {
		if b.fn.LoopBounds == nil {
			b.fn.LoopBounds = map[int]int{}
		}
		b.fn.LoopBounds[len(b.fn.Code)] = b.pendingBound
		b.pendingBound = 0
	}
	b.fn.Code = append(b.fn.Code, in)
	return b
}

// LoopBound attaches a `dsr:loop-bound n` annotation to the NEXT emitted
// instruction: the innermost natural loop containing that instruction
// iterates at most n times per entry. The static WCET analyzer uses it
// when the loop's trip count cannot be inferred from its induction
// pattern. n must be >= 1.
func (b *Builder) LoopBound(n int) *Builder {
	if n < 1 {
		b.fail("loop bound %d must be >= 1", n)
		return b
	}
	if b.pendingBound > 0 {
		b.fail("loop bound %d not attached to any instruction before the next LoopBound", b.pendingBound)
		return b
	}
	b.pendingBound = n
	return b
}

// Label defines a branch target at the next instruction.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.fail("duplicate label %q", name)
		return b
	}
	b.labels[name] = len(b.fn.Code)
	return b
}

func (b *Builder) fail(format string, args ...interface{}) {
	if b.buildErr == nil {
		b.buildErr = fmt.Errorf("builder %s: "+format, append([]interface{}{b.fn.Name}, args...)...)
	}
}

// branch emits a branch to a label, recording a fixup.
func (b *Builder) branch(op isa.Op, label string) *Builder {
	b.fixups = append(b.fixups, fixup{instr: len(b.fn.Code), label: label})
	return b.Emit(isa.Instr{Op: op})
}

// Build resolves label fixups and returns the finished function.
func (b *Builder) Build() (*Function, error) {
	if b.buildErr != nil {
		return nil, b.buildErr
	}
	if b.pendingBound > 0 {
		return nil, fmt.Errorf("builder %s: dangling loop bound %d (no instruction follows it)",
			b.fn.Name, b.pendingBound)
	}
	for _, fx := range b.fixups {
		tgt, ok := b.labels[fx.label]
		if !ok {
			return nil, fmt.Errorf("builder %s: undefined label %q", b.fn.Name, fx.label)
		}
		b.fn.Code[fx.instr].Disp = int32(tgt - fx.instr)
	}
	return b.fn, nil
}

// MustBuild is Build that panics on error, for statically written code.
func (b *Builder) MustBuild() *Function {
	f, err := b.Build()
	if err != nil {
		panic(err)
	}
	return f
}

// --- Convenience emitters -------------------------------------------------

// Prologue emits the standard window save for the function's frame size.
func (b *Builder) Prologue() *Builder {
	return b.Emit(isa.Instr{Op: isa.Save, Imm: b.fn.FrameSize})
}

// Epilogue emits the function return. The simulator has no delay slots,
// so Ret performs both halves of SPARC's `ret; restore` pair — the jump
// to %i7+4 and the window restore — as one architectural step.
func (b *Builder) Epilogue() *Builder {
	return b.Emit(isa.Instr{Op: isa.Ret})
}

// RetLeaf emits a leaf return.
func (b *Builder) RetLeaf() *Builder { return b.Emit(isa.Instr{Op: isa.RetL}) }

// Nop emits a nop.
func (b *Builder) Nop() *Builder { return b.Emit(isa.Instr{Op: isa.Nop}) }

// Halt emits a halt.
func (b *Builder) Halt() *Builder { return b.Emit(isa.Instr{Op: isa.Halt}) }

// Op3 emits a three-register ALU operation rd = rs1 op rs2.
func (b *Builder) Op3(op isa.Op, rd, rs1, rs2 isa.Reg) *Builder {
	return b.Emit(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// OpI emits an ALU operation with immediate rd = rs1 op imm.
func (b *Builder) OpI(op isa.Op, rd, rs1 isa.Reg, imm int32) *Builder {
	return b.Emit(isa.Instr{Op: op, Rd: rd, Rs1: rs1, Imm: imm, UseImm: true})
}

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 isa.Reg) *Builder { return b.Op3(isa.Add, rd, rs1, rs2) }

// AddI emits rd = rs1 + imm.
func (b *Builder) AddI(rd, rs1 isa.Reg, imm int32) *Builder { return b.OpI(isa.Add, rd, rs1, imm) }

// Sub emits rd = rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 isa.Reg) *Builder { return b.Op3(isa.Sub, rd, rs1, rs2) }

// SubI emits rd = rs1 - imm.
func (b *Builder) SubI(rd, rs1 isa.Reg, imm int32) *Builder { return b.OpI(isa.Sub, rd, rs1, imm) }

// Mul emits rd = rs1 * rs2.
func (b *Builder) Mul(rd, rs1, rs2 isa.Reg) *Builder { return b.Op3(isa.Mul, rd, rs1, rs2) }

// MulI emits rd = rs1 * imm.
func (b *Builder) MulI(rd, rs1 isa.Reg, imm int32) *Builder { return b.OpI(isa.Mul, rd, rs1, imm) }

// AndI emits rd = rs1 & imm.
func (b *Builder) AndI(rd, rs1 isa.Reg, imm int32) *Builder { return b.OpI(isa.And, rd, rs1, imm) }

// SllI emits rd = rs1 << imm.
func (b *Builder) SllI(rd, rs1 isa.Reg, imm int32) *Builder { return b.OpI(isa.Sll, rd, rs1, imm) }

// SrlI emits rd = rs1 >> imm (logical).
func (b *Builder) SrlI(rd, rs1 isa.Reg, imm int32) *Builder { return b.OpI(isa.Srl, rd, rs1, imm) }

// MovI emits rd = imm.
func (b *Builder) MovI(rd isa.Reg, imm int32) *Builder {
	return b.Emit(isa.Instr{Op: isa.Mov, Rd: rd, Imm: imm, UseImm: true})
}

// Mov emits rd = rs.
func (b *Builder) Mov(rd, rs isa.Reg) *Builder {
	return b.Emit(isa.Instr{Op: isa.Mov, Rd: rd, Rs2: rs})
}

// Set emits rd = address-of(sym), resolved at load time.
func (b *Builder) Set(rd isa.Reg, sym string) *Builder {
	return b.Emit(isa.Instr{Op: isa.Set, Rd: rd, Sym: sym})
}

// SetI emits rd = 32-bit immediate.
func (b *Builder) SetI(rd isa.Reg, imm int32) *Builder {
	return b.Emit(isa.Instr{Op: isa.Set, Rd: rd, Imm: imm})
}

// Cmp emits a register comparison.
func (b *Builder) Cmp(rs1, rs2 isa.Reg) *Builder {
	return b.Emit(isa.Instr{Op: isa.Cmp, Rs1: rs1, Rs2: rs2})
}

// CmpI emits a register-immediate comparison.
func (b *Builder) CmpI(rs1 isa.Reg, imm int32) *Builder {
	return b.Emit(isa.Instr{Op: isa.Cmp, Rs1: rs1, Imm: imm, UseImm: true})
}

// Ld emits rd = word at [rs1+imm].
func (b *Builder) Ld(rd, rs1 isa.Reg, imm int32) *Builder {
	return b.Emit(isa.Instr{Op: isa.Ld, Rd: rd, Rs1: rs1, Imm: imm})
}

// St emits word store of rd to [rs1+imm].
func (b *Builder) St(rd, rs1 isa.Reg, imm int32) *Builder {
	return b.Emit(isa.Instr{Op: isa.St, Rd: rd, Rs1: rs1, Imm: imm})
}

// Ldub emits rd = zero-extended byte at [rs1+imm].
func (b *Builder) Ldub(rd, rs1 isa.Reg, imm int32) *Builder {
	return b.Emit(isa.Instr{Op: isa.Ldub, Rd: rd, Rs1: rs1, Imm: imm})
}

// Stb emits byte store of rd's low byte to [rs1+imm].
func (b *Builder) Stb(rd, rs1 isa.Reg, imm int32) *Builder {
	return b.Emit(isa.Instr{Op: isa.Stb, Rd: rd, Rs1: rs1, Imm: imm})
}

// FLd emits frd = float word at [rs1+imm].
func (b *Builder) FLd(frd isa.FReg, rs1 isa.Reg, imm int32) *Builder {
	return b.Emit(isa.Instr{Op: isa.FLd, FRd: frd, Rs1: rs1, Imm: imm})
}

// FSt emits float store of frs2 to [rs1+imm].
func (b *Builder) FSt(frs2 isa.FReg, rs1 isa.Reg, imm int32) *Builder {
	return b.Emit(isa.Instr{Op: isa.FSt, FRs2: frs2, Rs1: rs1, Imm: imm})
}

// FOp3 emits frd = frs1 op frs2.
func (b *Builder) FOp3(op isa.Op, frd, frs1, frs2 isa.FReg) *Builder {
	return b.Emit(isa.Instr{Op: op, FRd: frd, FRs1: frs1, FRs2: frs2})
}

// Fadd emits frd = frs1 + frs2.
func (b *Builder) Fadd(frd, frs1, frs2 isa.FReg) *Builder { return b.FOp3(isa.Fadd, frd, frs1, frs2) }

// Fsub emits frd = frs1 - frs2.
func (b *Builder) Fsub(frd, frs1, frs2 isa.FReg) *Builder { return b.FOp3(isa.Fsub, frd, frs1, frs2) }

// Fmul emits frd = frs1 * frs2.
func (b *Builder) Fmul(frd, frs1, frs2 isa.FReg) *Builder { return b.FOp3(isa.Fmul, frd, frs1, frs2) }

// Fdiv emits frd = frs1 / frs2.
func (b *Builder) Fdiv(frd, frs1, frs2 isa.FReg) *Builder { return b.FOp3(isa.Fdiv, frd, frs1, frs2) }

// Fsqrt emits frd = sqrt(frs2).
func (b *Builder) Fsqrt(frd, frs2 isa.FReg) *Builder {
	return b.Emit(isa.Instr{Op: isa.Fsqrt, FRd: frd, FRs2: frs2})
}

// Fcmp emits an FP comparison.
func (b *Builder) Fcmp(frs1, frs2 isa.FReg) *Builder {
	return b.Emit(isa.Instr{Op: isa.Fcmp, FRs1: frs1, FRs2: frs2})
}

// Fitos emits frd = float(int in frs2).
func (b *Builder) Fitos(frd, frs2 isa.FReg) *Builder {
	return b.Emit(isa.Instr{Op: isa.Fitos, FRd: frd, FRs2: frs2})
}

// Fstoi emits frd = int(float in frs2).
func (b *Builder) Fstoi(frd, frs2 isa.FReg) *Builder {
	return b.Emit(isa.Instr{Op: isa.Fstoi, FRd: frd, FRs2: frs2})
}

// Ba emits an unconditional branch to label.
func (b *Builder) Ba(label string) *Builder { return b.branch(isa.Ba, label) }

// Be branches to label if equal.
func (b *Builder) Be(label string) *Builder { return b.branch(isa.Be, label) }

// Bne branches to label if not equal.
func (b *Builder) Bne(label string) *Builder { return b.branch(isa.Bne, label) }

// Bl branches to label if signed less.
func (b *Builder) Bl(label string) *Builder { return b.branch(isa.Bl, label) }

// Ble branches to label if signed less-or-equal.
func (b *Builder) Ble(label string) *Builder { return b.branch(isa.Ble, label) }

// Bg branches to label if signed greater.
func (b *Builder) Bg(label string) *Builder { return b.branch(isa.Bg, label) }

// Bge branches to label if signed greater-or-equal.
func (b *Builder) Bge(label string) *Builder { return b.branch(isa.Bge, label) }

// Fbe branches to label if FP equal.
func (b *Builder) Fbe(label string) *Builder { return b.branch(isa.Fbe, label) }

// Fbne branches to label if FP not equal.
func (b *Builder) Fbne(label string) *Builder { return b.branch(isa.Fbne, label) }

// Fbl branches to label if FP less.
func (b *Builder) Fbl(label string) *Builder { return b.branch(isa.Fbl, label) }

// Fbg branches to label if FP greater.
func (b *Builder) Fbg(label string) *Builder { return b.branch(isa.Fbg, label) }

// Call emits a direct call.
func (b *Builder) Call(sym string) *Builder {
	return b.Emit(isa.Instr{Op: isa.Call, Sym: sym})
}

// IPoint emits an instrumentation point with the given identifier.
func (b *Builder) IPoint(id int32) *Builder {
	return b.Emit(isa.Instr{Op: isa.IPoint, Imm: id})
}
