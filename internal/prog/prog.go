// Package prog is the intermediate representation consumed by the
// toolchain: a program is a set of functions (isa instruction sequences),
// global data objects, and an entry point. The deterministic loader lays
// a Program out sequentially; the DSR compiler pass (internal/core)
// transforms a Program by inserting indirection and stack-offset code,
// and the DSR runtime re-places its objects randomly each run.
//
// The stack frame convention mirrors SPARC v8: the first 64 bytes above
// %sp are the register-window save area (16 words spilled there on window
// overflow); function locals live at [%sp+64] and up. MinFrame is the
// smallest legal frame.
package prog

import (
	"fmt"

	"dsr/internal/isa"
	"dsr/internal/mem"
)

// MinFrame is the smallest legal stack frame: the 64-byte window save
// area plus the 32-byte argument/spare area of the SPARC v8 ABI.
const MinFrame = 96

// SaveAreaBytes is the size of the register-window spill area at %sp.
const SaveAreaBytes = 64

// LocalBase is the %sp offset of the first function-local slot.
const LocalBase = SaveAreaBytes + 32

// Function is one routine. Leaf functions have no Save/Restore and may
// not call; they return with RetL.
type Function struct {
	Name string
	// FrameSize is the stack frame in bytes; must be a multiple of 8 and
	// at least MinFrame for non-leaf functions, 0 for leaf functions.
	FrameSize int32
	Leaf      bool
	Code      []isa.Instr

	// LoopBounds carries `dsr:loop-bound N` annotations: instruction
	// index -> maximum iteration count of the innermost natural loop
	// containing that instruction. The static WCET analyzer
	// (internal/analysis/wcet) consumes these when it cannot infer a
	// bound from the loop's induction pattern. nil when unannotated.
	LoopBounds map[int]int
}

// SizeBytes returns the function's code size.
func (f *Function) SizeBytes() mem.Addr {
	return mem.Addr(len(f.Code)) * isa.InstrBytes
}

// DataObject is one global data region with optional word initialisers.
type DataObject struct {
	Name  string
	Size  mem.Addr
	Align mem.Addr
	// Init holds initial words written at load time, at most Size/4.
	Init []uint32
}

// Program is a complete linkable unit.
type Program struct {
	Name      string
	Functions []*Function
	Data      []*DataObject
	Entry     string
}

// Function returns the named function, or nil.
func (p *Program) Function(name string) *Function {
	for _, f := range p.Functions {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// DataObject returns the named data object, or nil.
func (p *Program) DataObject(name string) *DataObject {
	for _, d := range p.Data {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// AddFunction appends f, rejecting duplicate names.
func (p *Program) AddFunction(f *Function) error {
	if p.Function(f.Name) != nil {
		return fmt.Errorf("prog: duplicate function %q", f.Name)
	}
	p.Functions = append(p.Functions, f)
	return nil
}

// AddData appends d, rejecting duplicate names.
func (p *Program) AddData(d *DataObject) error {
	if p.DataObject(d.Name) != nil || p.Function(d.Name) != nil {
		return fmt.Errorf("prog: duplicate symbol %q", d.Name)
	}
	p.Data = append(p.Data, d)
	return nil
}

// CodeBytes returns the total code size.
func (p *Program) CodeBytes() mem.Addr {
	var n mem.Addr
	for _, f := range p.Functions {
		n += f.SizeBytes()
	}
	return n
}

// DataBytes returns the total data size, ignoring alignment padding.
func (p *Program) DataBytes() mem.Addr {
	var n mem.Addr
	for _, d := range p.Data {
		n += d.Size
	}
	return n
}

// Validate checks structural invariants: the entry point exists and is
// not a leaf, every Call/Set symbol resolves, branch displacements stay
// inside their function, frames are legal, and leaf functions neither
// save nor call.
func (p *Program) Validate() error {
	syms := map[string]bool{}
	for _, f := range p.Functions {
		if syms[f.Name] {
			return fmt.Errorf("prog %s: duplicate symbol %q", p.Name, f.Name)
		}
		syms[f.Name] = true
	}
	for _, d := range p.Data {
		if syms[d.Name] {
			return fmt.Errorf("prog %s: duplicate symbol %q", p.Name, d.Name)
		}
		syms[d.Name] = true
		if d.Size == 0 {
			return fmt.Errorf("prog %s: data %q has zero size", p.Name, d.Name)
		}
		if d.Align != 0 && (d.Align&(d.Align-1)) != 0 {
			return fmt.Errorf("prog %s: data %q alignment %d not a power of two", p.Name, d.Name, d.Align)
		}
		if mem.Addr(len(d.Init))*mem.WordSize > d.Size {
			return fmt.Errorf("prog %s: data %q initialiser exceeds size", p.Name, d.Name)
		}
	}
	if p.Entry == "" {
		return fmt.Errorf("prog %s: no entry point", p.Name)
	}
	entry := p.Function(p.Entry)
	if entry == nil {
		return fmt.Errorf("prog %s: entry %q not defined", p.Name, p.Entry)
	}
	for _, f := range p.Functions {
		if err := p.validateFunction(f); err != nil {
			return err
		}
	}
	return nil
}

func (p *Program) validateFunction(f *Function) error {
	if len(f.Code) == 0 {
		return fmt.Errorf("prog %s: function %q is empty", p.Name, f.Name)
	}
	if f.Leaf {
		if f.FrameSize != 0 {
			return fmt.Errorf("prog %s: leaf %q has a frame", p.Name, f.Name)
		}
	} else {
		if f.FrameSize < MinFrame {
			return fmt.Errorf("prog %s: function %q frame %d below minimum %d",
				p.Name, f.Name, f.FrameSize, MinFrame)
		}
		if f.FrameSize%mem.DoubleWord != 0 {
			return fmt.Errorf("prog %s: function %q frame %d not double-word aligned",
				p.Name, f.Name, f.FrameSize)
		}
	}
	for i := range f.Code {
		in := &f.Code[i]
		switch in.Op {
		case isa.Call:
			if f.Leaf {
				return fmt.Errorf("prog %s: leaf %q calls %q", p.Name, f.Name, in.Sym)
			}
			if p.Function(in.Sym) == nil {
				return fmt.Errorf("prog %s: %q calls undefined %q", p.Name, f.Name, in.Sym)
			}
		case isa.CallR:
			if f.Leaf {
				return fmt.Errorf("prog %s: leaf %q makes an indirect call", p.Name, f.Name)
			}
		case isa.Set:
			if in.Sym != "" && !p.symbolDefined(in.Sym) {
				return fmt.Errorf("prog %s: %q references undefined symbol %q", p.Name, f.Name, in.Sym)
			}
		case isa.Save, isa.SaveX:
			if f.Leaf {
				return fmt.Errorf("prog %s: leaf %q executes save", p.Name, f.Name)
			}
		case isa.Ret:
			if f.Leaf {
				return fmt.Errorf("prog %s: leaf %q uses ret (want retl)", p.Name, f.Name)
			}
		case isa.RetL:
			if !f.Leaf {
				return fmt.Errorf("prog %s: non-leaf %q uses retl", p.Name, f.Name)
			}
		}
		if in.Op.IsBranch() {
			tgt := i + int(in.Disp)
			if tgt < 0 || tgt >= len(f.Code) {
				return fmt.Errorf("prog %s: %q branch at %d jumps to %d, outside [0,%d)",
					p.Name, f.Name, i, tgt, len(f.Code))
			}
		}
	}
	for i, n := range f.LoopBounds {
		if i < 0 || i >= len(f.Code) {
			return fmt.Errorf("prog %s: %q loop-bound annotation at instruction %d, outside [0,%d)",
				p.Name, f.Name, i, len(f.Code))
		}
		if n < 1 {
			return fmt.Errorf("prog %s: %q loop bound %d at instruction %d must be >= 1",
				p.Name, f.Name, n, i)
		}
	}
	return nil
}

func (p *Program) symbolDefined(name string) bool {
	return p.Function(name) != nil || p.DataObject(name) != nil
}

// SymbolDefined reports whether name is a defined function or data
// object — the resolution check the lint layer (internal/analysis)
// reuses to report *all* unresolved references with positions, where
// Validate stops at the first.
func (p *Program) SymbolDefined(name string) bool { return p.symbolDefined(name) }

// Clone deep-copies the program so a transformation pass (the DSR
// compiler) can rewrite it without mutating the original.
func (p *Program) Clone() *Program {
	q := &Program{Name: p.Name, Entry: p.Entry}
	for _, f := range p.Functions {
		nf := &Function{Name: f.Name, FrameSize: f.FrameSize, Leaf: f.Leaf}
		nf.Code = append([]isa.Instr(nil), f.Code...)
		if f.LoopBounds != nil {
			nf.LoopBounds = make(map[int]int, len(f.LoopBounds))
			for i, n := range f.LoopBounds {
				nf.LoopBounds[i] = n
			}
		}
		q.Functions = append(q.Functions, nf)
	}
	for _, d := range p.Data {
		nd := &DataObject{Name: d.Name, Size: d.Size, Align: d.Align}
		nd.Init = append([]uint32(nil), d.Init...)
		q.Data = append(q.Data, nd)
	}
	return q
}

// CallGraphEdges returns (caller, callee) pairs for all direct calls,
// used by analyses and by the incremental-integration example.
func (p *Program) CallGraphEdges() [][2]string {
	var edges [][2]string
	for _, f := range p.Functions {
		for i := range f.Code {
			if f.Code[i].Op == isa.Call {
				edges = append(edges, [2]string{f.Name, f.Code[i].Sym})
			}
		}
	}
	return edges
}
