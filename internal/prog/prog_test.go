package prog

import (
	"strings"
	"testing"

	"dsr/internal/isa"
)

// minimalProgram builds a valid two-function program for reuse in tests.
func minimalProgram(t *testing.T) *Program {
	t.Helper()
	leaf := NewLeaf("double").
		Add(isa.O0, isa.O0, isa.O0).
		RetLeaf().
		MustBuild()
	main := NewFunc("main", MinFrame).
		Prologue().
		MovI(isa.O0, 21).
		Call("double").
		Halt().
		MustBuild()
	p := &Program{Name: "t", Entry: "main"}
	if err := p.AddFunction(main); err != nil {
		t.Fatal(err)
	}
	if err := p.AddFunction(leaf); err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMinimalProgramValid(t *testing.T) {
	p := minimalProgram(t)
	if p.CodeBytes() != 6*isa.InstrBytes {
		t.Errorf("CodeBytes=%d, want %d", p.CodeBytes(), 6*isa.InstrBytes)
	}
}

func TestBuilderLabelResolution(t *testing.T) {
	f := NewLeaf("count").
		MovI(isa.O1, 0).
		Label("loop").
		AddI(isa.O1, isa.O1, 1).
		CmpI(isa.O1, 10).
		Bl("loop").
		RetLeaf().
		MustBuild()
	// The Bl is instruction 3, the label is instruction 1 → disp -2.
	if f.Code[3].Disp != -2 {
		t.Errorf("backward branch disp=%d, want -2", f.Code[3].Disp)
	}
}

func TestBuilderForwardLabel(t *testing.T) {
	f := NewLeaf("skip").
		CmpI(isa.O0, 0).
		Be("out").
		AddI(isa.O0, isa.O0, 1).
		Label("out").
		RetLeaf().
		MustBuild()
	if f.Code[1].Disp != 2 {
		t.Errorf("forward branch disp=%d, want 2", f.Code[1].Disp)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	_, err := NewLeaf("bad").Ba("nowhere").RetLeaf().Build()
	if err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("undefined label error=%v", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	_, err := NewLeaf("bad").Label("x").Nop().Label("x").RetLeaf().Build()
	if err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Errorf("duplicate label error=%v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	mkProg := func(fns ...*Function) *Program {
		p := &Program{Name: "t", Entry: fns[0].Name}
		for _, f := range fns {
			p.Functions = append(p.Functions, f)
		}
		return p
	}
	valid := func() *Function {
		return NewFunc("main", MinFrame).Prologue().Halt().MustBuild()
	}

	t.Run("missing entry", func(t *testing.T) {
		p := &Program{Name: "t", Functions: []*Function{valid()}}
		if p.Validate() == nil {
			t.Error("empty entry accepted")
		}
	})
	t.Run("undefined entry", func(t *testing.T) {
		p := &Program{Name: "t", Entry: "ghost", Functions: []*Function{valid()}}
		if p.Validate() == nil {
			t.Error("undefined entry accepted")
		}
	})
	t.Run("undefined call target", func(t *testing.T) {
		f := NewFunc("main", MinFrame).Prologue().Call("ghost").Halt().MustBuild()
		if mkProg(f).Validate() == nil {
			t.Error("undefined call target accepted")
		}
	})
	t.Run("undefined set symbol", func(t *testing.T) {
		f := NewFunc("main", MinFrame).Prologue().Set(isa.O0, "ghost").Halt().MustBuild()
		if mkProg(f).Validate() == nil {
			t.Error("undefined set symbol accepted")
		}
	})
	t.Run("small frame", func(t *testing.T) {
		f := NewFunc("main", 64).Prologue().Halt().MustBuild()
		if mkProg(f).Validate() == nil {
			t.Error("frame below MinFrame accepted")
		}
	})
	t.Run("misaligned frame", func(t *testing.T) {
		f := NewFunc("main", MinFrame+4).Prologue().Halt().MustBuild()
		if mkProg(f).Validate() == nil {
			t.Error("non-8-aligned frame accepted")
		}
	})
	t.Run("leaf with frame", func(t *testing.T) {
		f := &Function{Name: "main", Leaf: true, FrameSize: 96,
			Code: []isa.Instr{{Op: isa.RetL}}}
		if mkProg(f).Validate() == nil {
			t.Error("leaf with frame accepted")
		}
	})
	t.Run("leaf that calls", func(t *testing.T) {
		callee := valid()
		f := &Function{Name: "leafy", Leaf: true,
			Code: []isa.Instr{{Op: isa.Call, Sym: "main"}, {Op: isa.RetL}}}
		p := &Program{Name: "t", Entry: "main", Functions: []*Function{callee, f}}
		if p.Validate() == nil {
			t.Error("calling leaf accepted")
		}
	})
	t.Run("leaf that saves", func(t *testing.T) {
		f := &Function{Name: "main", Leaf: true,
			Code: []isa.Instr{{Op: isa.Save, Imm: 96}, {Op: isa.RetL}}}
		if mkProg(f).Validate() == nil {
			t.Error("saving leaf accepted")
		}
	})
	t.Run("non-leaf retl", func(t *testing.T) {
		f := &Function{Name: "main", FrameSize: MinFrame,
			Code: []isa.Instr{{Op: isa.Save, Imm: MinFrame}, {Op: isa.RetL}}}
		if mkProg(f).Validate() == nil {
			t.Error("retl in non-leaf accepted")
		}
	})
	t.Run("branch out of range", func(t *testing.T) {
		f := &Function{Name: "main", FrameSize: MinFrame,
			Code: []isa.Instr{{Op: isa.Ba, Disp: 10}, {Op: isa.Halt}}}
		if mkProg(f).Validate() == nil {
			t.Error("out-of-range branch accepted")
		}
	})
	t.Run("empty function", func(t *testing.T) {
		f := &Function{Name: "main", FrameSize: MinFrame}
		if mkProg(f).Validate() == nil {
			t.Error("empty function accepted")
		}
	})
	t.Run("zero-size data", func(t *testing.T) {
		p := mkProg(valid())
		p.Data = append(p.Data, &DataObject{Name: "d", Size: 0})
		if p.Validate() == nil {
			t.Error("zero-size data accepted")
		}
	})
	t.Run("oversized initialiser", func(t *testing.T) {
		p := mkProg(valid())
		p.Data = append(p.Data, &DataObject{Name: "d", Size: 4, Init: []uint32{1, 2}})
		if p.Validate() == nil {
			t.Error("oversized initialiser accepted")
		}
	})
	t.Run("duplicate symbol across kinds", func(t *testing.T) {
		p := mkProg(valid())
		p.Data = append(p.Data, &DataObject{Name: "main", Size: 4})
		if p.Validate() == nil {
			t.Error("function/data name collision accepted")
		}
	})
}

func TestAddDuplicates(t *testing.T) {
	p := &Program{Name: "t"}
	f := NewLeaf("f").RetLeaf().MustBuild()
	if err := p.AddFunction(f); err != nil {
		t.Fatal(err)
	}
	if err := p.AddFunction(NewLeaf("f").RetLeaf().MustBuild()); err == nil {
		t.Error("duplicate function accepted")
	}
	if err := p.AddData(&DataObject{Name: "d", Size: 8}); err != nil {
		t.Fatal(err)
	}
	if err := p.AddData(&DataObject{Name: "d", Size: 8}); err == nil {
		t.Error("duplicate data accepted")
	}
	if err := p.AddData(&DataObject{Name: "f", Size: 8}); err == nil {
		t.Error("data shadowing function accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := minimalProgram(t)
	p.Data = append(p.Data, &DataObject{Name: "tbl", Size: 16, Init: []uint32{1, 2}})
	q := p.Clone()
	q.Functions[0].Code[0].Op = isa.Nop
	q.Data[0].Init[0] = 99
	if p.Functions[0].Code[0].Op == isa.Nop {
		t.Error("Clone shares code slices")
	}
	if p.Data[0].Init[0] == 99 {
		t.Error("Clone shares init slices")
	}
}

func TestCallGraphEdges(t *testing.T) {
	p := minimalProgram(t)
	edges := p.CallGraphEdges()
	if len(edges) != 1 || edges[0] != [2]string{"main", "double"} {
		t.Errorf("edges=%v", edges)
	}
}

func TestLookups(t *testing.T) {
	p := minimalProgram(t)
	if p.Function("main") == nil || p.Function("ghost") != nil {
		t.Error("Function lookup wrong")
	}
	p.Data = append(p.Data, &DataObject{Name: "tbl", Size: 8})
	if p.DataObject("tbl") == nil || p.DataObject("ghost") != nil {
		t.Error("DataObject lookup wrong")
	}
	if p.DataBytes() != 8 {
		t.Errorf("DataBytes=%d, want 8", p.DataBytes())
	}
}
