package cache

import "dsr/internal/prng"

// Snapshot is a full copy of a cache's architectural and counter state —
// lines, LRU clock, counters, placement-hash seed and (when the policy
// is random) the replacement generator state. A booted platform captures
// one per cache level; restoring it forks the boot state for the next
// run without replaying the boot traffic.
type Snapshot struct {
	lines   []line
	clock   uint64
	ctr     Counters
	mru     []int32
	mruIdx  int32
	mruIdx2 int32

	hashSeed  uint64
	replState uint64
	hasRepl   bool
}

// Snapshot captures the cache's complete state.
func (c *Cache) Snapshot() *Snapshot {
	s := &Snapshot{
		lines:    append([]line(nil), c.lines...),
		clock:    c.clock,
		ctr:      c.ctr,
		mru:      append([]int32(nil), c.mru...),
		mruIdx:   c.mruIdx,
		mruIdx2:  c.mruIdx2,
		hashSeed: c.hashSeed,
	}
	if st, ok := c.repl.(prng.Stateful); ok {
		s.replState, s.hasRepl = st.State(), true
	}
	return s
}

// Restore reinstates a state captured by Snapshot on this cache. The
// snapshot must come from a cache of identical geometry (in practice:
// from this cache); contents, LRU ages, counters and generator state all
// revert, so a run after Restore is bit-identical to a run after the
// original boot.
func (c *Cache) Restore(s *Snapshot) {
	if len(s.lines) != len(c.lines) || len(s.mru) != len(c.mru) {
		panic("cache: Restore with mismatched snapshot geometry")
	}
	copy(c.lines, s.lines)
	c.clock = s.clock
	c.ctr = s.ctr
	copy(c.mru, s.mru)
	c.mruIdx = s.mruIdx
	c.mruIdx2 = s.mruIdx2
	c.hashSeed = s.hashSeed
	if st, ok := c.repl.(prng.Stateful); ok && s.hasRepl {
		st.SetState(s.replState)
	}
}
