// Package cache models the set-associative caches of the PROXIMA LEON3
// platform (Fig. 1 of the paper): split 16KB 4-way L1 instruction and data
// caches (the data cache is write-through, no-write-allocate) and a 32KB
// direct-mapped unified write-back L2. The model is geometry- and
// policy-parametric so that the same code also implements the
// hardware-randomised caches used in the A4 ablation (random placement via
// a seeded parametric hash, random replacement).
//
// A cache services transactions through the mem.Backend interface and
// forwards misses to the next Backend level, accumulating latency along
// the way. Per-cache event counters implement the platform's performance
// monitoring counters (Table I of the paper).
package cache

import (
	"fmt"
	"math/bits"

	"dsr/internal/mem"
	"dsr/internal/prng"
)

// Placement selects how a line address is mapped to a set.
type Placement int

const (
	// PlacementModulo is the conventional COTS placement: set = line mod sets.
	PlacementModulo Placement = iota
	// PlacementHashRandom is a seeded parametric hash of the line address,
	// modelling a hardware time-randomised cache. Reseeding between runs
	// re-randomises the layout without moving software.
	PlacementHashRandom
)

func (p Placement) String() string {
	switch p {
	case PlacementModulo:
		return "modulo"
	case PlacementHashRandom:
		return "hash-random"
	default:
		return fmt.Sprintf("Placement(%d)", int(p))
	}
}

// Replacement selects the victim policy within a set.
type Replacement int

const (
	// ReplacementLRU evicts the least recently used way.
	ReplacementLRU Replacement = iota
	// ReplacementRandom evicts a uniformly random way (hardware
	// time-randomised caches).
	ReplacementRandom
)

func (r Replacement) String() string {
	switch r {
	case ReplacementLRU:
		return "LRU"
	case ReplacementRandom:
		return "random"
	default:
		return fmt.Sprintf("Replacement(%d)", int(r))
	}
}

// WritePolicy selects how stores are handled.
type WritePolicy int

const (
	// WriteThroughNoAllocate propagates every store to the next level and
	// does not allocate a line on a store miss (the LEON3 DL1 policy).
	WriteThroughNoAllocate WritePolicy = iota
	// WriteBackAllocate marks lines dirty and writes them back on
	// eviction, allocating on store misses (the LEON3 L2 policy).
	WriteBackAllocate
)

func (w WritePolicy) String() string {
	switch w {
	case WriteThroughNoAllocate:
		return "write-through/no-allocate"
	case WriteBackAllocate:
		return "write-back/allocate"
	default:
		return fmt.Sprintf("WritePolicy(%d)", int(w))
	}
}

// Config fully describes a cache instance.
type Config struct {
	Name        string
	Size        int // total bytes; must be LineSize*Ways*sets
	LineSize    int // bytes per line, power of two
	Ways        int // associativity; 1 = direct-mapped
	HitLatency  mem.Cycles
	Placement   Placement
	Replacement Replacement
	Write       WritePolicy
}

// Validate reports configuration errors.
func (c *Config) Validate() error {
	switch {
	case c.Size <= 0 || c.LineSize <= 0 || c.Ways <= 0:
		return fmt.Errorf("cache %q: non-positive geometry", c.Name)
	case c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("cache %q: line size %d not a power of two", c.Name, c.LineSize)
	case c.Size%(c.LineSize*c.Ways) != 0:
		return fmt.Errorf("cache %q: size %d not divisible by line*ways=%d",
			c.Name, c.Size, c.LineSize*c.Ways)
	}
	sets := c.Size / (c.LineSize * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %q: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// Sets returns the number of sets implied by the geometry.
func (c *Config) Sets() int { return c.Size / (c.LineSize * c.Ways) }

// WaySize returns the bytes covered by one way. The paper's DSR runtime
// bounds its random placement offsets by the *L2* way size so that every
// cache level's layout is randomised (§III.B.4).
func (c *Config) WaySize() int { return c.Size / c.Ways }

// Counters are the cache's performance-monitoring events.
type Counters struct {
	Accesses      uint64
	Reads         uint64
	Writes        uint64
	Hits          uint64
	Misses        uint64
	ReadMisses    uint64
	WriteMisses   uint64
	Evictions     uint64
	Writebacks    uint64 // dirty lines written to the next level
	Invalidations uint64 // lines discarded by invalidate operations
	Fills         uint64 // lines allocated
}

// MissRatio returns misses/accesses, or 0 for an untouched cache.
func (c Counters) MissRatio() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

type line struct {
	valid bool
	dirty bool
	tag   mem.Addr // full line address (addr / lineSize); simplest tag form
	age   uint64   // LRU timestamp
}

// Cache is a single cache level. It is not safe for concurrent use: the
// simulated platform is single-core, as in the paper.
//
// The access path is the simulator's per-instruction hot path (every
// fetch goes through the IL1, every load/store through the DL1), so the
// geometry is strength-reduced at construction: LineSize and the set
// count are powers of two (enforced by Config.Validate), which turns
// the per-access divisions into shifts and masks, and a per-set MRU way
// hint serves the dominant repeated-line pattern without scanning the
// ways. Both are pure lookup transformations: hits, misses, victims and
// latencies are bit-identical to the div/mod implementation (proven by
// TestSetIndexEquivalence / TestLineAddrEquivalence and the golden
// cycle files).
type Cache struct {
	cfg   Config
	next  mem.Backend
	sets  int
	lines []line // sets × ways, row-major
	clock uint64 // LRU timestamp source
	ctr   Counters

	// Strength-reduced geometry: addr>>lineShift == addr/LineSize and
	// line&setMask == line%sets, because both are powers of two.
	lineShift uint
	setMask   mem.Addr
	ways      int
	hitLat    mem.Cycles

	// mru[set] is the way of the most recent hit or fill in the set — a
	// pure lookup hint (validated against tag+valid before use), so it
	// cannot alter replacement decisions.
	mru []int32

	// mruIdx indexes (into lines) the line of the most recent hit or
	// fill across the whole cache — the repeated-same-line accelerator,
	// serving the per-instruction pattern (stack slot reloads,
	// sequential data) without recomputing the set index (which is a
	// multiply-xorshift hash under PlacementHashRandom) or scanning
	// ways. Like mru it is validated (tag + valid bit) before use: a
	// slot reused by a later fill fails the tag compare and the access
	// falls back to the full lookup, so the hint can never change hits,
	// misses or replacement. An index rather than a *line on purpose:
	// updating a pointer field fires a GC write barrier on every update,
	// which profiles at ~10% of campaign time; an int32 store is free.
	// Sentinel -1 when empty.
	mruIdx int32

	// mruIdx2 is the second-most-recent line — the two-line working-set
	// accelerator. A counted loop whose body straddles an IL1 line
	// boundary alternates between two lines every iteration, defeating
	// a single hint; the pair catches it. Validated exactly like
	// mruIdx, so it too can never change hits, misses or replacement.
	mruIdx2 int32

	// wt caches cfg.Write == WriteThroughNoAllocate for the store path.
	wt bool

	// obs, when non-nil, receives one event per line access (the attack
	// observer hook). The default is nil and every call site is guarded
	// by a nil check, so the hot paths pay one predictable branch and
	// zero allocations when observation is off (proven by
	// TestObserverDisabledZeroAlloc and BenchmarkReadHitObserverOff).
	obs Observer

	hashSeed uint64
	repl     prng.Source // used only for ReplacementRandom
}

// Observer receives one event per line access serviced by the cache: the
// side channel an attacker measures. set is the index under the current
// placement; hit is the lookup outcome. Accesses that straddle a line
// boundary report one event per touched line, matching the latency
// model. Flush/invalidate/writeback maintenance sweeps are not reported
// (they probe by address without a lookup outcome); their traffic to the
// next level is observed there.
type Observer interface {
	OnAccess(write bool, set int, hit bool)
}

// SetObserver installs (or, with nil, removes) the access observer.
func (c *Cache) SetObserver(o Observer) { c.obs = o }

// SetOccupancy returns the number of valid lines in set idx — what an
// ideal prime+probe attacker learns about the set after the victim ran.
func (c *Cache) SetOccupancy(idx int) int {
	n := 0
	set := c.set(idx)
	for w := range set {
		if set[w].valid {
			n++
		}
	}
	return n
}

// Occupancies returns the per-set valid-line counts (see SetOccupancy).
func (c *Cache) Occupancies() []int {
	out := make([]int, c.sets)
	for idx := range out {
		out[idx] = c.SetOccupancy(idx)
	}
	return out
}

// New builds a cache in front of next. It panics on invalid configuration,
// because configurations are compiled into the platform description and a
// bad one is a programming error.
func New(cfg Config, next mem.Backend) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if next == nil {
		panic(fmt.Sprintf("cache %q: nil next level", cfg.Name))
	}
	c := &Cache{
		cfg:       cfg,
		next:      next,
		sets:      cfg.Sets(),
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineSize))),
		ways:      cfg.Ways,
		hitLat:    cfg.HitLatency,
	}
	c.setMask = mem.Addr(c.sets - 1)
	c.lines = make([]line, c.sets*cfg.Ways)
	c.mru = make([]int32, c.sets)
	c.wt = cfg.Write == WriteThroughNoAllocate
	c.mruIdx = -1
	c.mruIdx2 = -1
	if cfg.Replacement == ReplacementRandom {
		c.repl = prng.NewMWC(0xC0FFEE)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// SetNext rebinds the downstream level; used to interpose telemetry
// probes after construction. Panics on nil.
func (c *Cache) SetNext(next mem.Backend) {
	if next == nil {
		panic(fmt.Sprintf("cache %q: nil next level", c.cfg.Name))
	}
	c.next = next
}

// Counters returns a snapshot of the event counters.
func (c *Cache) Counters() Counters { return c.ctr }

// ResetCounters zeroes the event counters without touching contents.
func (c *Cache) ResetCounters() { c.ctr = Counters{} }

// ReseedPlacement reseeds the parametric placement hash and the random
// replacement source. Hardware-randomised platforms reseed between runs.
// Seeds are whitened first: the measurement protocol reseeds with
// sequential values, and feeding those raw into the placement hash
// leaves detectable correlation between consecutive runs' layouts.
func (c *Cache) ReseedPlacement(seed uint64) {
	c.hashSeed = prng.Scramble(seed)
	if c.repl != nil {
		c.repl.Seed(seed ^ 0xD1CE)
	}
}

// lineAddr is addr/LineSize, strength-reduced to a shift (LineSize is a
// power of two by Config.Validate).
func (c *Cache) lineAddr(a mem.Addr) mem.Addr { return a >> c.lineShift }

// setIndex maps a line address to its set. The reductions are
// bit-identical to the div/mod form: x&(sets-1) == x%sets for the
// power-of-two set counts Validate enforces, including the final
// reduction of the parametric hash.
func (c *Cache) setIndex(lineAddr mem.Addr) int {
	if c.cfg.Placement == PlacementHashRandom {
		// Multiply-xorshift parametric hash (Kosmidis et al. style random
		// placement): uniform over sets, stable within a run, reseedable.
		x := uint64(lineAddr) ^ c.hashSeed
		x *= 0x9E3779B97F4A7C15
		x ^= x >> 29
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 32
		return int(x & uint64(c.setMask))
	}
	return int(lineAddr & c.setMask)
}

func (c *Cache) set(idx int) []line {
	return c.lines[idx*c.ways : (idx+1)*c.ways]
}

// lookup returns the way holding lineAddr in the set, or -1.
func (c *Cache) lookup(set []line, lineAddr mem.Addr) int {
	for w := range set {
		if set[w].valid && set[w].tag == lineAddr {
			return w
		}
	}
	return -1
}

// hitWay is lookup plus the MRU short-circuit: the per-set hint is
// checked before scanning the ways. Returns the hit way, or -1.
func (c *Cache) hitWay(idx int, set []line, lineAddr mem.Addr) int {
	if m := int(c.mru[idx]); m < len(set) {
		if l := &set[m]; l.valid && l.tag == lineAddr {
			return m
		}
	}
	if w := c.lookup(set, lineAddr); w >= 0 {
		c.mru[idx] = int32(w)
		return w
	}
	return -1
}

// victim picks the way to evict from a full or partial set.
func (c *Cache) victim(set []line) int {
	// Prefer an invalid way.
	for w := range set {
		if !set[w].valid {
			return w
		}
	}
	if c.cfg.Replacement == ReplacementRandom {
		return prng.Intn(c.repl, len(set))
	}
	// LRU: smallest age.
	best := 0
	for w := 1; w < len(set); w++ {
		if set[w].age < set[best].age {
			best = w
		}
	}
	return best
}

func (c *Cache) touch(set []line, w int) {
	c.clock++
	set[w].age = c.clock
}

// fill allocates lineAddr, evicting if necessary, and returns the latency
// of the fill traffic (next-level read plus any dirty writeback).
func (c *Cache) fill(lineAddr mem.Addr, dirty bool) mem.Cycles {
	idx := c.setIndex(lineAddr)
	set := c.set(idx)
	w := c.victim(set)
	var lat mem.Cycles
	if set[w].valid {
		c.ctr.Evictions++
		if set[w].dirty {
			c.ctr.Writebacks++
			lat += c.next.Write(set[w].tag<<c.lineShift, c.cfg.LineSize)
		}
	}
	lat += c.next.Read(lineAddr<<c.lineShift, c.cfg.LineSize)
	set[w] = line{valid: true, dirty: dirty, tag: lineAddr}
	c.mru[idx] = int32(w)
	c.mruIdx2 = c.mruIdx
	c.mruIdx = int32(idx*c.ways + w)
	c.touch(set, w)
	c.ctr.Fills++
	return lat
}

// Read implements mem.Backend. A read that straddles a line boundary is
// charged as two sequential line accesses, as the real hardware would.
// The single-line hit — the per-instruction common case — is served by
// a straight-line fast path; the fill/writeback slow path is outlined
// in readMiss so this function stays small.
func (c *Cache) Read(addr mem.Addr, size int) mem.Cycles {
	if size <= 0 {
		size = 1
	}
	first := addr >> c.lineShift
	last := (addr + mem.Addr(size) - 1) >> c.lineShift
	if first == last {
		return c.readLine(first)
	}
	var lat mem.Cycles
	for la := first; la <= last; la++ {
		lat += c.readLine(la)
	}
	return lat
}

// ReadLine charges a read fully contained in one cache line (the
// caller guarantees no line straddle — e.g. an aligned word when
// LineSize >= WordSize). It is behaviourally identical to Read for
// such accesses but small enough to inline into the CPU's hot paths,
// skipping one call level per access.
func (c *Cache) ReadLine(addr mem.Addr) mem.Cycles {
	return c.readLine(addr >> c.lineShift)
}

// WriteLine is ReadLine's store twin: a write of size bytes fully
// contained in one line.
func (c *Cache) WriteLine(addr mem.Addr, size int) mem.Cycles {
	return c.writeLine(addr>>c.lineShift, size)
}

func (c *Cache) readLine(la mem.Addr) mem.Cycles {
	c.ctr.Accesses++
	c.ctr.Reads++
	if i := c.mruIdx; i >= 0 {
		if l := &c.lines[i]; l.tag == la && l.valid {
			c.ctr.Hits++
			c.clock++
			l.age = c.clock
			if c.obs != nil {
				c.obs.OnAccess(false, int(i)/c.ways, true)
			}
			return c.hitLat
		}
	}
	if i := c.mruIdx2; i >= 0 {
		if l := &c.lines[i]; l.tag == la && l.valid {
			c.ctr.Hits++
			c.clock++
			l.age = c.clock
			c.mruIdx2 = c.mruIdx
			c.mruIdx = i
			if c.obs != nil {
				c.obs.OnAccess(false, int(i)/c.ways, true)
			}
			return c.hitLat
		}
	}
	idx := c.setIndex(la)
	set := c.set(idx)
	if w := c.hitWay(idx, set, la); w >= 0 {
		c.ctr.Hits++
		c.clock++
		set[w].age = c.clock
		c.mruIdx2 = c.mruIdx
		c.mruIdx = int32(idx*c.ways + w)
		if c.obs != nil {
			c.obs.OnAccess(false, idx, true)
		}
		return c.hitLat
	}
	return c.readMiss(la)
}

// readMiss is the outlined read slow path: miss bookkeeping plus fill.
//
//go:noinline
func (c *Cache) readMiss(la mem.Addr) mem.Cycles {
	c.ctr.Misses++
	c.ctr.ReadMisses++
	if c.obs != nil {
		c.obs.OnAccess(false, c.setIndex(la), false)
	}
	return c.hitLat + c.fill(la, false)
}

// Write implements mem.Backend.
func (c *Cache) Write(addr mem.Addr, size int) mem.Cycles {
	if size <= 0 {
		size = 1
	}
	first := addr >> c.lineShift
	last := (addr + mem.Addr(size) - 1) >> c.lineShift
	if first == last {
		return c.writeLine(first, size)
	}
	var lat mem.Cycles
	for la := first; la <= last; la++ {
		// Charge each touched line; partial sizes matter only for the
		// write-through traffic, which we approximate per line.
		lat += c.writeLine(la, c.cfg.LineSize)
	}
	return lat
}

func (c *Cache) writeLine(la mem.Addr, size int) mem.Cycles {
	c.ctr.Accesses++
	c.ctr.Writes++
	if c.wt {
		// Write-through fast path: an MRU-line hit needs no set lookup.
		// The store still always propagates (store-buffer-visible cost).
		if i := c.mruIdx; i >= 0 {
			if l := &c.lines[i]; l.tag == la && l.valid {
				c.ctr.Hits++
				c.clock++
				l.age = c.clock
				if c.obs != nil {
					c.obs.OnAccess(true, int(i)/c.ways, true)
				}
				return c.hitLat + c.next.Write(la<<c.lineShift, size)
			}
		}
	}
	idx := c.setIndex(la)
	set := c.set(idx)
	w := c.hitWay(idx, set, la)
	if c.wt {
		if w >= 0 {
			c.ctr.Hits++
			c.clock++
			set[w].age = c.clock
			c.mruIdx2 = c.mruIdx
			c.mruIdx = int32(idx*c.ways + w)
		} else {
			c.ctr.Misses++
			c.ctr.WriteMisses++
		}
		if c.obs != nil {
			c.obs.OnAccess(true, idx, w >= 0)
		}
		// The store always propagates. LEON3 has a store buffer that hides
		// part of this latency; the next level's write cost models the
		// visible portion.
		return c.hitLat + c.next.Write(la<<c.lineShift, size)
	}
	return c.writeBack(la, idx, set, w)
}

// writeBack is the write-back/allocate path, outlined from writeLine so
// the write-through DL1 hot path stays small.
func (c *Cache) writeBack(la mem.Addr, idx int, set []line, w int) mem.Cycles {
	switch c.cfg.Write {
	case WriteBackAllocate:
		if w >= 0 {
			c.ctr.Hits++
			set[w].dirty = true
			c.clock++
			set[w].age = c.clock
			c.mruIdx2 = c.mruIdx
			c.mruIdx = int32(idx*c.ways + w)
			if c.obs != nil {
				c.obs.OnAccess(true, idx, true)
			}
			return c.hitLat
		}
		c.ctr.Misses++
		c.ctr.WriteMisses++
		if c.obs != nil {
			c.obs.OnAccess(true, idx, false)
		}
		return c.hitLat + c.fill(la, true)
	default:
		panic("cache: unknown write policy")
	}
}

// FlushAll writes back every dirty line and invalidates the whole cache,
// returning the cost. PikeOS is configured to flush caches at partition
// start (§IV), which is what guarantees a canonical initial state.
func (c *Cache) FlushAll() mem.Cycles {
	c.mruIdx, c.mruIdx2 = -1, -1 // defensive; validation makes stale hints harmless
	var lat mem.Cycles
	for i := range c.lines {
		l := &c.lines[i]
		if !l.valid {
			continue
		}
		if l.dirty {
			c.ctr.Writebacks++
			lat += c.next.Write(l.tag*mem.Addr(c.cfg.LineSize), c.cfg.LineSize)
		}
		c.ctr.Invalidations++
		l.valid = false
		l.dirty = false
	}
	return lat
}

// InvalidateRange discards (without writeback) all lines overlapping
// [base, base+size). The DSR relocation routine uses it to drop stale
// instruction lines at a function's old location (§III.B.1: "any updated
// IL1 or L2 entry corresponding to the old location need to be
// invalidated").
func (c *Cache) InvalidateRange(base mem.Addr, size int) mem.Cycles {
	var lat mem.Cycles
	first := c.lineAddr(base)
	last := c.lineAddr(base + mem.Addr(size) - 1)
	for la := first; la <= last; la++ {
		idx := c.setIndex(la)
		set := c.set(idx)
		if w := c.lookup(set, la); w >= 0 {
			set[w].valid = false
			set[w].dirty = false
			c.ctr.Invalidations++
		}
		lat++ // one cycle per probed line, matching a software loop of ASI stores
	}
	return lat
}

// WritebackRange writes back (keeping valid) all dirty lines overlapping
// [base, base+size). The DSR relocation routine uses it to push relocated
// code from the data path to memory before it can be fetched — SPARC has
// no hardware I/D coherence (§III.B.1).
func (c *Cache) WritebackRange(base mem.Addr, size int) mem.Cycles {
	var lat mem.Cycles
	first := c.lineAddr(base)
	last := c.lineAddr(base + mem.Addr(size) - 1)
	for la := first; la <= last; la++ {
		idx := c.setIndex(la)
		set := c.set(idx)
		if w := c.lookup(set, la); w >= 0 && set[w].dirty {
			set[w].dirty = false
			c.ctr.Writebacks++
			lat += c.next.Write(la*mem.Addr(c.cfg.LineSize), c.cfg.LineSize)
		}
		lat++
	}
	return lat
}

// Contains reports whether addr is currently cached (any way, valid).
// Used by tests and by layout-risk analyses.
func (c *Cache) Contains(addr mem.Addr) bool {
	la := c.lineAddr(addr)
	set := c.set(c.setIndex(la))
	return c.lookup(set, la) >= 0
}

// ValidLines returns the number of valid lines, a convenience for tests.
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

// SetOf returns the set index addr maps to under the current placement,
// exposed for layout-conflict analyses (e.g. the incremental-integration
// example computes which functions collide in the direct-mapped L2).
func (c *Cache) SetOf(addr mem.Addr) int { return c.setIndex(c.lineAddr(addr)) }
