package cache

import (
	"testing"
	"testing/quick"

	"dsr/internal/mem"
	"dsr/internal/prng"
)

// refCache is an independent, deliberately naive reference model of a
// modulo-placed LRU cache: each set is an ordered slice (most recent
// first), with validity and dirtiness tracked per line. The production
// model must agree with it event for event on arbitrary traces.
type refCache struct {
	lineSize, sets, ways int
	write                WritePolicy
	set                  [][]refLine
}

type refLine struct {
	tag   mem.Addr
	dirty bool
}

func newRefCache(cfg Config) *refCache {
	r := &refCache{
		lineSize: cfg.LineSize, sets: cfg.Sets(), ways: cfg.Ways,
		write: cfg.Write,
	}
	r.set = make([][]refLine, r.sets)
	return r
}

type refEvent struct {
	hit       bool
	writeback bool
}

func (r *refCache) index(addr mem.Addr) (int, mem.Addr) {
	line := addr / mem.Addr(r.lineSize)
	return int(line % mem.Addr(r.sets)), line
}

func (r *refCache) find(si int, tag mem.Addr) int {
	for i, l := range r.set[si] {
		if l.tag == tag {
			return i
		}
	}
	return -1
}

// touch moves way i to the MRU position.
func (r *refCache) touch(si, i int) {
	l := r.set[si][i]
	r.set[si] = append(r.set[si][:i], r.set[si][i+1:]...)
	r.set[si] = append([]refLine{l}, r.set[si]...)
}

func (r *refCache) insert(si int, l refLine) (evictedDirty bool) {
	if len(r.set[si]) == r.ways {
		victim := r.set[si][len(r.set[si])-1]
		evictedDirty = victim.dirty
		r.set[si] = r.set[si][:len(r.set[si])-1]
	}
	r.set[si] = append([]refLine{l}, r.set[si]...)
	return evictedDirty
}

func (r *refCache) read(addr mem.Addr) refEvent {
	si, tag := r.index(addr)
	if i := r.find(si, tag); i >= 0 {
		r.touch(si, i)
		return refEvent{hit: true}
	}
	wb := r.insert(si, refLine{tag: tag})
	return refEvent{writeback: wb}
}

func (r *refCache) writeAccess(addr mem.Addr) refEvent {
	si, tag := r.index(addr)
	i := r.find(si, tag)
	switch r.write {
	case WriteThroughNoAllocate:
		if i >= 0 {
			r.touch(si, i)
			return refEvent{hit: true}
		}
		return refEvent{}
	default: // WriteBackAllocate
		if i >= 0 {
			r.set[si][i].dirty = true
			r.touch(si, i)
			return refEvent{hit: true}
		}
		wb := r.insert(si, refLine{tag: tag, dirty: true})
		return refEvent{writeback: wb}
	}
}

// countingBackend counts writebacks reaching the next level.
type countingBackend struct{ writes int }

func (c *countingBackend) Read(mem.Addr, int) mem.Cycles  { return 0 }
func (c *countingBackend) Write(mem.Addr, int) mem.Cycles { c.writes++; return 0 }

// TestDifferentialAgainstReference drives the production cache and the
// reference model with identical random traces and checks that every
// access agrees on hit/miss and that writeback counts match.
func TestDifferentialAgainstReference(t *testing.T) {
	cfgs := []Config{
		{Name: "dm", Size: 512, LineSize: 16, Ways: 1, Write: WriteBackAllocate},
		{Name: "2w", Size: 1024, LineSize: 16, Ways: 2, Write: WriteBackAllocate},
		{Name: "4w-wt", Size: 2048, LineSize: 32, Ways: 4, Write: WriteThroughNoAllocate},
		{Name: "fa", Size: 256, LineSize: 16, Ways: 16, Write: WriteBackAllocate},
	}
	for _, cfg := range cfgs {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			f := func(seed uint64, opsRaw []uint16) bool {
				back := &countingBackend{}
				c := New(cfg, back)
				r := newRefCache(cfg)
				src := prng.NewMWC(seed)
				for _, op := range opsRaw {
					// Confine addresses to a few way-spans so conflicts
					// are frequent.
					addr := mem.Addr(op%2048) * 4
					var hit bool
					var ev refEvent
					before := c.Counters().Hits
					if prng.Intn(src, 3) == 0 {
						c.Write(addr, 4)
						ev = r.writeAccess(addr)
					} else {
						c.Read(addr, 4)
						ev = r.read(addr)
					}
					hit = c.Counters().Hits > before
					if hit != ev.hit {
						t.Logf("%s: divergence at addr %#x: model hit=%v ref hit=%v",
							cfg.Name, addr, hit, ev.hit)
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestDifferentialWritebackCount checks the dirty-eviction behaviour in
// bulk: after a long write-heavy trace plus a full flush, the number of
// writebacks reaching the next level must equal the reference's count
// plus its remaining dirty lines.
func TestDifferentialWritebackCount(t *testing.T) {
	cfg := Config{Name: "wb", Size: 1024, LineSize: 16, Ways: 2, Write: WriteBackAllocate}
	f := func(seed uint64) bool {
		back := &countingBackend{}
		c := New(cfg, back)
		r := newRefCache(cfg)
		refWb := 0
		src := prng.NewMWC(seed)
		for i := 0; i < 3000; i++ {
			addr := mem.Addr(prng.Intn(src, 4096)) * 4
			if prng.Intn(src, 2) == 0 {
				c.Write(addr, 4)
				if r.writeAccess(addr).writeback {
					refWb++
				}
			} else {
				c.Read(addr, 4)
				if r.read(addr).writeback {
					refWb++
				}
			}
		}
		c.FlushAll()
		for si := range r.set {
			for _, l := range r.set[si] {
				if l.dirty {
					refWb++
				}
			}
		}
		return back.writes == refWb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
