package cache

import (
	"testing"
	"testing/quick"

	"dsr/internal/mem"
)

// flatMemory is a constant-latency backend recording traffic.
type flatMemory struct {
	readLat, writeLat mem.Cycles
	reads, writes     int
	lastRead          mem.Addr
	lastWrite         mem.Addr
}

func (f *flatMemory) Read(a mem.Addr, size int) mem.Cycles {
	f.reads++
	f.lastRead = a
	return f.readLat
}

func (f *flatMemory) Write(a mem.Addr, size int) mem.Cycles {
	f.writes++
	f.lastWrite = a
	return f.writeLat
}

func smallCfg(name string) Config {
	return Config{
		Name: name, Size: 1024, LineSize: 16, Ways: 2,
		HitLatency: 1, Placement: PlacementModulo,
		Replacement: ReplacementLRU, Write: WriteBackAllocate,
	}
}

func TestConfigValidate(t *testing.T) {
	good := smallCfg("ok")
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Name: "zero", Size: 0, LineSize: 16, Ways: 1},
		{Name: "line3", Size: 1024, LineSize: 24, Ways: 1},
		{Name: "indivisible", Size: 1000, LineSize: 16, Ways: 2},
		{Name: "sets3", Size: 3 * 16 * 2, LineSize: 16, Ways: 2},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q accepted, want error", c.Name)
		}
	}
}

func TestGeometry(t *testing.T) {
	c := Config{Size: 16 * 1024, LineSize: 32, Ways: 4}
	if c.Sets() != 128 {
		t.Errorf("Sets=%d, want 128", c.Sets())
	}
	if c.WaySize() != 4096 {
		t.Errorf("WaySize=%d, want 4096", c.WaySize())
	}
	l2 := Config{Size: 32 * 1024, LineSize: 32, Ways: 1}
	if l2.WaySize() != 32*1024 {
		t.Errorf("direct-mapped WaySize=%d, want 32768", l2.WaySize())
	}
}

func TestReadHitMiss(t *testing.T) {
	m := &flatMemory{readLat: 10}
	c := New(smallCfg("t"), m)
	if lat := c.Read(0x100, 4); lat != 1+10 {
		t.Errorf("cold read latency=%d, want 11", lat)
	}
	if lat := c.Read(0x104, 4); lat != 1 {
		t.Errorf("same-line read latency=%d, want 1 (hit)", lat)
	}
	ctr := c.Counters()
	if ctr.Accesses != 2 || ctr.Hits != 1 || ctr.Misses != 1 {
		t.Errorf("counters=%+v", ctr)
	}
}

func TestStraddlingReadTouchesTwoLines(t *testing.T) {
	m := &flatMemory{readLat: 10}
	c := New(smallCfg("t"), m)
	lat := c.Read(0x10E, 4) // crosses the 16-byte boundary at 0x110
	if lat != 2*(1+10) {
		t.Errorf("straddling read latency=%d, want 22", lat)
	}
	if c.Counters().Misses != 2 {
		t.Errorf("misses=%d, want 2", c.Counters().Misses)
	}
}

func TestLRUReplacement(t *testing.T) {
	m := &flatMemory{readLat: 10}
	c := New(smallCfg("t"), m) // 2-way, 32 sets, line 16 → same set every 512 bytes
	// Fill both ways of set 0, then access the first again, then a third
	// line mapping to set 0: the second line must be evicted.
	c.Read(0x0000, 4)
	c.Read(0x0200, 4)
	c.Read(0x0000, 4) // refresh line 0
	c.Read(0x0400, 4) // evicts 0x0200
	if !c.Contains(0x0000) {
		t.Error("LRU evicted the recently used line")
	}
	if c.Contains(0x0200) {
		t.Error("LRU kept the least recently used line")
	}
	if !c.Contains(0x0400) {
		t.Error("newly filled line missing")
	}
}

func TestWriteBackDirtyEviction(t *testing.T) {
	m := &flatMemory{readLat: 10, writeLat: 12}
	c := New(smallCfg("t"), m)
	c.Write(0x0000, 4) // allocate dirty
	c.Read(0x0200, 4)  // second way
	c.Read(0x0400, 4)  // evicts 0x0000 (LRU), must write it back
	if m.writes != 1 {
		t.Errorf("writebacks to memory=%d, want 1", m.writes)
	}
	if c.Counters().Writebacks != 1 {
		t.Errorf("writeback counter=%d, want 1", c.Counters().Writebacks)
	}
	if m.lastWrite != 0x0000 {
		t.Errorf("writeback address=%#x, want 0", m.lastWrite)
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	cfg := smallCfg("dl1")
	cfg.Write = WriteThroughNoAllocate
	m := &flatMemory{readLat: 10, writeLat: 5}
	c := New(cfg, m)
	// Store miss: no allocation, one write through.
	c.Write(0x0300, 4)
	if c.Contains(0x0300) {
		t.Error("no-write-allocate cache allocated on store miss")
	}
	if m.writes != 1 {
		t.Errorf("writes through=%d, want 1", m.writes)
	}
	// Load the line, then store to it: hit, line stays valid, still writes through.
	c.Read(0x0300, 4)
	c.Write(0x0300, 4)
	if !c.Contains(0x0300) {
		t.Error("store hit invalidated the line")
	}
	if m.writes != 2 {
		t.Errorf("writes through=%d, want 2", m.writes)
	}
	ctr := c.Counters()
	if ctr.WriteMisses != 1 {
		t.Errorf("write misses=%d, want 1", ctr.WriteMisses)
	}
}

func TestFlushAllWritesBackDirty(t *testing.T) {
	m := &flatMemory{readLat: 10, writeLat: 5}
	c := New(smallCfg("t"), m)
	c.Write(0x0000, 4)
	c.Read(0x0100, 4)
	lat := c.FlushAll()
	if lat == 0 {
		t.Error("flush of dirty cache cost nothing")
	}
	if m.writes != 1 {
		t.Errorf("flush wrote back %d lines, want 1", m.writes)
	}
	if c.ValidLines() != 0 {
		t.Errorf("valid lines after flush=%d, want 0", c.ValidLines())
	}
	// After flush, everything misses again.
	if got := c.Read(0x0000, 4); got != 11 {
		t.Errorf("post-flush read latency=%d, want 11", got)
	}
}

func TestInvalidateRange(t *testing.T) {
	m := &flatMemory{readLat: 10, writeLat: 5}
	c := New(smallCfg("t"), m)
	c.Write(0x0000, 4) // dirty
	c.Read(0x0040, 4)
	c.InvalidateRange(0x0000, 0x50)
	if c.Contains(0x0000) || c.Contains(0x0040) {
		t.Error("invalidate left lines valid")
	}
	// Invalidation discards without writeback.
	if m.writes != 0 {
		t.Errorf("invalidate wrote back %d lines, want 0", m.writes)
	}
	if c.Counters().Invalidations != 2 {
		t.Errorf("invalidations=%d, want 2", c.Counters().Invalidations)
	}
}

func TestWritebackRange(t *testing.T) {
	m := &flatMemory{readLat: 10, writeLat: 5}
	c := New(smallCfg("t"), m)
	c.Write(0x0000, 4)
	c.Write(0x0010, 4)
	c.Read(0x0100, 4) // clean, outside range semantics check
	c.WritebackRange(0x0000, 0x20)
	if m.writes != 2 {
		t.Errorf("writeback range wrote %d lines, want 2", m.writes)
	}
	if !c.Contains(0x0000) || !c.Contains(0x0010) {
		t.Error("writeback range invalidated lines; they must stay valid")
	}
	// Lines are now clean: evicting them must not write back again.
	c.WritebackRange(0x0000, 0x20)
	if m.writes != 2 {
		t.Errorf("second writeback of clean lines wrote %d extra", m.writes-2)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	// Two addresses one way-size apart conflict in a direct-mapped cache:
	// this is precisely the L2 risk pattern the paper discusses.
	cfg := Config{
		Name: "l2", Size: 1024, LineSize: 16, Ways: 1,
		HitLatency: 8, Placement: PlacementModulo,
		Replacement: ReplacementLRU, Write: WriteBackAllocate,
	}
	m := &flatMemory{readLat: 30}
	c := New(cfg, m)
	a, b := mem.Addr(0x0000), mem.Addr(0x0400) // 1024 apart → same set
	if c.SetOf(a) != c.SetOf(b) {
		t.Fatal("test addresses do not conflict; geometry changed?")
	}
	for i := 0; i < 10; i++ {
		c.Read(a, 4)
		c.Read(b, 4)
	}
	ctr := c.Counters()
	if ctr.Hits != 0 {
		t.Errorf("ping-pong conflict produced %d hits, want 0", ctr.Hits)
	}
}

func TestHashRandomPlacementBreaksConflicts(t *testing.T) {
	cfg := Config{
		Name: "l2r", Size: 1024, LineSize: 16, Ways: 1,
		HitLatency: 8, Placement: PlacementHashRandom,
		Replacement: ReplacementLRU, Write: WriteBackAllocate,
	}
	m := &flatMemory{readLat: 30}
	// Across many seeds, the two ping-pong addresses should usually land
	// in different sets (63/64 of the time for 64 sets).
	conflicts := 0
	const seeds = 200
	for s := 0; s < seeds; s++ {
		c := New(cfg, m)
		c.ReseedPlacement(uint64(s) + 1)
		if c.SetOf(0x0000) == c.SetOf(0x0400) {
			conflicts++
		}
	}
	if conflicts > seeds/8 {
		t.Errorf("hash placement left %d/%d seeds conflicting", conflicts, seeds)
	}
}

func TestHashPlacementStableWithinSeed(t *testing.T) {
	cfg := smallCfg("h")
	cfg.Placement = PlacementHashRandom
	c := New(cfg, &flatMemory{readLat: 10})
	c.ReseedPlacement(99)
	s1 := c.SetOf(0x1234)
	for i := 0; i < 100; i++ {
		if c.SetOf(0x1234) != s1 {
			t.Fatal("placement hash unstable within a seed")
		}
	}
	c.ReseedPlacement(100)
	// Not guaranteed to differ, but across many addresses most must move.
	moved := 0
	for a := mem.Addr(0); a < 100*16; a += 16 {
		cBefore := New(cfg, &flatMemory{readLat: 10})
		cBefore.ReseedPlacement(99)
		cAfter := New(cfg, &flatMemory{readLat: 10})
		cAfter.ReseedPlacement(100)
		if cBefore.SetOf(a) != cAfter.SetOf(a) {
			moved++
		}
	}
	if moved < 50 {
		t.Errorf("reseed moved only %d/100 lines", moved)
	}
}

func TestRandomReplacementVaries(t *testing.T) {
	cfg := smallCfg("rr")
	cfg.Replacement = ReplacementRandom
	evictedBoth := map[mem.Addr]bool{}
	for seed := uint64(1); seed <= 40; seed++ {
		c := New(cfg, &flatMemory{readLat: 10})
		c.ReseedPlacement(seed)
		c.Read(0x0000, 4)
		c.Read(0x0200, 4)
		c.Read(0x0400, 4) // evicts one of the two at random
		if !c.Contains(0x0000) {
			evictedBoth[0x0000] = true
		}
		if !c.Contains(0x0200) {
			evictedBoth[0x0200] = true
		}
	}
	if len(evictedBoth) != 2 {
		t.Errorf("random replacement always evicted the same way across 40 seeds")
	}
}

// Property: hit+miss == accesses, and reads+writes == accesses.
func TestCounterInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(smallCfg("p"), &flatMemory{readLat: 10, writeLat: 5})
		for _, op := range ops {
			addr := mem.Addr(op&0x3FF) * 4
			if op&0x8000 != 0 {
				c.Write(addr, 4)
			} else {
				c.Read(addr, 4)
			}
		}
		ctr := c.Counters()
		return ctr.Hits+ctr.Misses == ctr.Accesses &&
			ctr.Reads+ctr.Writes == ctr.Accesses &&
			ctr.ReadMisses+ctr.WriteMisses == ctr.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: a second read of any address after a first read is a hit when
// the working set fits in the cache.
func TestTemporalLocalityProperty(t *testing.T) {
	f := func(addrs []uint8) bool {
		c := New(smallCfg("p"), &flatMemory{readLat: 10})
		// Constrain the working set to lines 0..63: with modulo placement
		// over 32 sets that is exactly 2 lines per set = the associativity,
		// so the whole set fits and a second pass must fully hit.
		for _, a := range addrs {
			c.Read(mem.Addr(a%64)*16, 4)
		}
		c.ResetCounters()
		seen := map[uint8]bool{}
		for _, a := range addrs {
			seen[a%64] = true
		}
		for a := range seen {
			c.Read(mem.Addr(a)*16, 4)
		}
		return c.Counters().Misses == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPolicyStrings(t *testing.T) {
	if PlacementModulo.String() != "modulo" || PlacementHashRandom.String() != "hash-random" {
		t.Error("Placement strings")
	}
	if ReplacementLRU.String() != "LRU" || ReplacementRandom.String() != "random" {
		t.Error("Replacement strings")
	}
	if WriteThroughNoAllocate.String() != "write-through/no-allocate" ||
		WriteBackAllocate.String() != "write-back/allocate" {
		t.Error("WritePolicy strings")
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with bad config did not panic")
		}
	}()
	New(Config{Name: "bad", Size: 100, LineSize: 16, Ways: 2}, &flatMemory{})
}

func BenchmarkReadHit(b *testing.B) {
	c := New(smallCfg("b"), &flatMemory{readLat: 10})
	c.Read(0, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(0, 4)
	}
}

func BenchmarkReadMissStream(b *testing.B) {
	c := New(smallCfg("b"), &flatMemory{readLat: 10})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(mem.Addr(i)*1024, 4) // always conflicting
	}
}
