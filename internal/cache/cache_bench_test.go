package cache

import (
	"testing"

	"dsr/internal/mem"
)

// The microbenchmarks below pin the per-access cost of the cache model,
// which sits on the simulator's per-instruction hot path (every fetch
// goes through the IL1, every load/store through the DL1). The L1 hit
// path must stay allocation-free: the 0 allocs/op column is asserted by
// TestHitPathAllocFree below, and make bench-check gates ns/op.

func proximaIL1() Config {
	return Config{
		Name: "IL1", Size: 16 * 1024, LineSize: 32, Ways: 4,
		HitLatency: 0, Placement: PlacementModulo,
		Replacement: ReplacementLRU, Write: WriteBackAllocate,
	}
}

func proximaDL1() Config {
	return Config{
		Name: "DL1", Size: 16 * 1024, LineSize: 16, Ways: 4,
		HitLatency: 0, Placement: PlacementModulo,
		Replacement: ReplacementLRU, Write: WriteThroughNoAllocate,
	}
}

// warmSequential touches n bytes so subsequent accesses hit.
func warmSequential(c *Cache, n int) {
	for a := mem.Addr(0); a < mem.Addr(n); a += mem.Addr(c.cfg.LineSize) {
		c.Read(a, 1)
	}
}

// BenchmarkReadHitSameLine is the straight-line fetch pattern: repeated
// word reads within one resident line (the MRU fast path).
func BenchmarkReadHitSameLine(b *testing.B) {
	c := New(proximaIL1(), &flatMemory{readLat: 30})
	c.Read(0x100, 4)
	b.ReportAllocs()
	b.ResetTimer()
	var lat mem.Cycles
	for i := 0; i < b.N; i++ {
		lat += c.Read(0x100, 4)
	}
	sinkCycles = lat
}

// BenchmarkReadHitSweep walks a resident 8KB region word by word: hits
// in rotating sets/ways, the data-array sweep pattern of the case-study
// application.
func BenchmarkReadHitSweep(b *testing.B) {
	c := New(proximaDL1(), &flatMemory{readLat: 30})
	const region = 8 * 1024
	warmSequential(c, region)
	b.ReportAllocs()
	b.ResetTimer()
	var lat mem.Cycles
	a := mem.Addr(0)
	for i := 0; i < b.N; i++ {
		lat += c.Read(a, 4)
		a += 4
		if a >= region {
			a = 0
		}
	}
	sinkCycles = lat
}

// BenchmarkReadMissFill is the slow path: every access misses and fills.
func BenchmarkReadMissFill(b *testing.B) {
	c := New(proximaDL1(), &flatMemory{readLat: 30})
	b.ReportAllocs()
	b.ResetTimer()
	var lat mem.Cycles
	a := mem.Addr(0)
	for i := 0; i < b.N; i++ {
		lat += c.Read(a, 4)
		a += 64 * 1024 // always a fresh line, conflicting sets
	}
	sinkCycles = lat
}

// BenchmarkWriteThroughHit is the DL1 store pattern: write-through hits
// that always pay the next-level interface call.
func BenchmarkWriteThroughHit(b *testing.B) {
	c := New(proximaDL1(), &flatMemory{readLat: 30, writeLat: 10})
	c.Read(0x200, 4)
	b.ReportAllocs()
	b.ResetTimer()
	var lat mem.Cycles
	for i := 0; i < b.N; i++ {
		lat += c.Write(0x200, 4)
	}
	sinkCycles = lat
}

// BenchmarkReadHitHashPlacement is the hardware-randomised variant: the
// parametric-hash set index on the hit path.
func BenchmarkReadHitHashPlacement(b *testing.B) {
	cfg := proximaIL1()
	cfg.Placement = PlacementHashRandom
	cfg.Replacement = ReplacementRandom
	c := New(cfg, &flatMemory{readLat: 30})
	c.ReseedPlacement(42)
	c.Read(0x100, 4)
	b.ReportAllocs()
	b.ResetTimer()
	var lat mem.Cycles
	for i := 0; i < b.N; i++ {
		lat += c.Read(0x100, 4)
	}
	sinkCycles = lat
}

var sinkCycles mem.Cycles

// TestHitPathAllocFree is the allocation-free guarantee for the L1 hit
// path (read hit, write-through hit, and the hash-random variant).
func TestHitPathAllocFree(t *testing.T) {
	c := New(proximaDL1(), &flatMemory{readLat: 30, writeLat: 10})
	c.Read(0x300, 4)
	if n := testing.AllocsPerRun(1000, func() { sinkCycles = c.Read(0x300, 4) }); n != 0 {
		t.Errorf("read hit allocates %v times", n)
	}
	if n := testing.AllocsPerRun(1000, func() { sinkCycles = c.Write(0x300, 4) }); n != 0 {
		t.Errorf("write-through hit allocates %v times", n)
	}
	hw := proximaIL1()
	hw.Placement = PlacementHashRandom
	h := New(hw, &flatMemory{readLat: 30})
	h.ReseedPlacement(7)
	h.Read(0x300, 4)
	if n := testing.AllocsPerRun(1000, func() { sinkCycles = h.Read(0x300, 4) }); n != 0 {
		t.Errorf("hash-random read hit allocates %v times", n)
	}
}
