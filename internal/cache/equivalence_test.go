package cache

import (
	"testing"

	"dsr/internal/mem"
	"dsr/internal/prng"
)

// Equivalence tests for the strength-reduced hot path: every lookup
// shortcut (shift/mask geometry, MRU way hint, whole-cache MRU line,
// single-line entry points) must be bit-identical to the plain
// div/mod/scan formulation across the configuration matrix, including
// geometries the platform never uses.

// equivConfigs is the geometry/policy matrix: direct-mapped through
// fully associative, small and large lines, both placements, both write
// policies, and a non-default "odd" geometry (one set, many ways).
func equivConfigs() []Config {
	return []Config{
		{Name: "dm-16", Size: 512, LineSize: 16, Ways: 1, Write: WriteBackAllocate},
		{Name: "dm-64", Size: 4096, LineSize: 64, Ways: 1, Write: WriteThroughNoAllocate},
		{Name: "2w-32", Size: 2048, LineSize: 32, Ways: 2, Write: WriteBackAllocate},
		{Name: "4w-wt", Size: 16 * 1024, LineSize: 16, Ways: 4, Write: WriteThroughNoAllocate},
		{Name: "4w-hash", Size: 8 * 1024, LineSize: 32, Ways: 4, Write: WriteBackAllocate,
			Placement: PlacementHashRandom},
		{Name: "fa", Size: 1024, LineSize: 16, Ways: 64, Write: WriteBackAllocate},
		{Name: "1set-hash-wt", Size: 256, LineSize: 32, Ways: 8, Write: WriteThroughNoAllocate,
			Placement: PlacementHashRandom},
	}
}

// refSetIndex is the textbook div/mod placement the production setIndex
// strength-reduces: line % sets for modulo placement, hash % sets for
// parametric-hash placement.
func refSetIndex(c *Cache, lineAddr mem.Addr) int {
	if c.cfg.Placement == PlacementHashRandom {
		x := uint64(lineAddr) ^ c.hashSeed
		x *= 0x9E3779B97F4A7C15
		x ^= x >> 29
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 32
		return int(x % uint64(c.sets))
	}
	return int(lineAddr % mem.Addr(c.sets))
}

// TestLineAddrEquivalence: addr>>lineShift must equal addr/LineSize for
// every configured geometry, over structured and random addresses.
func TestLineAddrEquivalence(t *testing.T) {
	for _, cfg := range equivConfigs() {
		c := New(cfg, nullBackend{})
		src := prng.NewMWC(0xA11CE)
		for i := 0; i < 20000; i++ {
			var a mem.Addr
			switch i % 3 {
			case 0: // dense low addresses, all byte offsets
				a = mem.Addr(i)
			case 1: // line-boundary straddles
				a = mem.Addr(i/3)*mem.Addr(cfg.LineSize) - 1
			default: // random 32-bit
				a = mem.Addr(prng.Uint64(src) & 0xFFFF_FFFF)
			}
			if got, want := c.lineAddr(a), a/mem.Addr(cfg.LineSize); got != want {
				t.Fatalf("%s: lineAddr(%#x) = %#x, want %#x", cfg.Name, a, got, want)
			}
		}
	}
}

// TestSetIndexEquivalence: the masked reduction must equal the modulo
// reduction for both placements, across seeds.
func TestSetIndexEquivalence(t *testing.T) {
	for _, cfg := range equivConfigs() {
		c := New(cfg, nullBackend{})
		for _, seed := range []uint64{0, 1, 2, 0xDEAD_BEEF, ^uint64(0)} {
			c.ReseedPlacement(seed)
			src := prng.NewMWC(seed ^ 0x5EED)
			for i := 0; i < 20000; i++ {
				la := mem.Addr(prng.Uint64(src) & 0x0FFF_FFFF)
				if i%2 == 0 {
					la = mem.Addr(i) // dense sequential lines
				}
				if got, want := c.setIndex(la), refSetIndex(c, la); got != want {
					t.Fatalf("%s seed %#x: setIndex(%#x) = %d, want %d",
						cfg.Name, seed, la, got, want)
				}
			}
		}
	}
}

type nullBackend struct{}

func (nullBackend) Read(mem.Addr, int) mem.Cycles  { return 7 }
func (nullBackend) Write(mem.Addr, int) mem.Cycles { return 5 }

// TestReadLineWriteLineEquivalence drives two identical caches with the
// same trace of single-line accesses — one through the general
// Read/Write interface, one through the inlinable ReadLine/WriteLine
// entry points — and demands identical latencies on every access and
// identical counters at the end. This is the contract the CPU relies on
// when it devirtualises its L1 fronts.
func TestReadLineWriteLineEquivalence(t *testing.T) {
	for _, cfg := range equivConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			a := New(cfg, nullBackend{})
			b := New(cfg, nullBackend{})
			a.ReseedPlacement(42)
			b.ReseedPlacement(42)
			src := prng.NewMWC(0xFACADE)
			for i := 0; i < 50000; i++ {
				// Word accesses that never straddle a line (the CPU's
				// guarantee for the single-line entry points).
				addr := mem.Addr(prng.Intn(src, 1<<16)) * 4
				size := 4
				if prng.Intn(src, 4) == 0 {
					size = 1 // byte store, as Stb issues
					addr += mem.Addr(prng.Intn(src, 4))
				}
				var la, lb mem.Cycles
				if prng.Intn(src, 3) == 0 {
					la = a.Write(addr, size)
					lb = b.WriteLine(addr, size)
				} else {
					la = a.Read(addr, size)
					lb = b.ReadLine(addr)
				}
				if la != lb {
					t.Fatalf("access %d addr %#x: Read/Write latency %d != line entry latency %d",
						i, addr, la, lb)
				}
			}
			if a.Counters() != b.Counters() {
				t.Fatalf("counters diverged:\n interface: %+v\n line:      %+v",
					a.Counters(), b.Counters())
			}
		})
	}
}

// TestMRUHintsDoNotChangeReplacement pits the production cache against
// a second instance whose accelerators are disabled before every access
// (hints cleared, forcing the scan path), over conflict-heavy random
// traces: hits, misses, evictions and latencies must be identical, for
// LRU and (same-seeded) random replacement.
func TestMRUHintsDoNotChangeReplacement(t *testing.T) {
	cfgs := equivConfigs()
	cfgs = append(cfgs, Config{
		Name: "4w-rand", Size: 1024, LineSize: 16, Ways: 4,
		Write: WriteBackAllocate, Replacement: ReplacementRandom,
	})
	for _, cfg := range cfgs {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			fast := New(cfg, nullBackend{})
			slow := New(cfg, nullBackend{})
			fast.ReseedPlacement(7)
			slow.ReseedPlacement(7)
			src := prng.NewMWC(0xBEEF)
			for i := 0; i < 40000; i++ {
				// Confine to a few way-spans so conflicts are frequent.
				addr := mem.Addr(prng.Intn(src, 4*cfg.Sets()*cfg.Ways)) * mem.Addr(cfg.LineSize)
				// Neuter slow's accelerators so it always takes the
				// scan path the hints shortcut.
				slow.mruIdx = -1
				for s := range slow.mru {
					slow.mru[s] = int32(cfg.Ways) // out of range → ignored
				}
				var lf, ls mem.Cycles
				if prng.Intn(src, 3) == 0 {
					lf = fast.Write(addr, 4)
					ls = slow.Write(addr, 4)
				} else {
					lf = fast.Read(addr, 4)
					ls = slow.Read(addr, 4)
				}
				if lf != ls {
					t.Fatalf("access %d addr %#x: latency %d (hints) != %d (scan)", i, addr, lf, ls)
				}
			}
			if fast.Counters() != slow.Counters() {
				t.Fatalf("counters diverged:\n hints: %+v\n scan:  %+v",
					fast.Counters(), slow.Counters())
			}
			for i := range fast.lines {
				if fast.lines[i].valid != slow.lines[i].valid ||
					(fast.lines[i].valid && fast.lines[i].tag != slow.lines[i].tag) {
					t.Fatalf("line %d diverged: hints {v:%v tag:%#x} scan {v:%v tag:%#x}",
						i, fast.lines[i].valid, fast.lines[i].tag,
						slow.lines[i].valid, slow.lines[i].tag)
				}
			}
		})
	}
}
