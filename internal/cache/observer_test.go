package cache

import (
	"reflect"
	"testing"
)

// event mirrors one Observer callback.
type event struct {
	write bool
	set   int
	hit   bool
}

type eventLog struct{ evs []event }

func (l *eventLog) OnAccess(write bool, set int, hit bool) {
	l.evs = append(l.evs, event{write, set, hit})
}

// smallCfg: 1024 B, 16 B lines, 2 ways -> 32 sets, set every 512 bytes.

func TestObserverReadEvents(t *testing.T) {
	c := New(smallCfg("t"), &flatMemory{readLat: 10})
	log := &eventLog{}
	c.SetObserver(log)
	c.Read(0x100, 4) // miss, set 16
	c.Read(0x104, 4) // hit, same line (MRU fast path)
	c.Read(0x10E, 4) // straddles into set 17: hit (0x100 line) + miss (0x110)
	want := []event{
		{false, 16, false},
		{false, 16, true},
		{false, 16, true},
		{false, 17, false},
	}
	if !reflect.DeepEqual(log.evs, want) {
		t.Fatalf("events = %+v; want %+v", log.evs, want)
	}
}

func TestObserverWriteThroughEvents(t *testing.T) {
	cfg := smallCfg("dl1")
	cfg.Write = WriteThroughNoAllocate
	c := New(cfg, &flatMemory{readLat: 10, writeLat: 12})
	log := &eventLog{}
	c.SetObserver(log)
	c.Write(0x100, 4) // WT store miss: no allocate
	c.Read(0x100, 4)  // miss (store did not install)
	c.Write(0x100, 4) // WT store hit
	c.Write(0x104, 4) // WT store hit via MRU fast path
	want := []event{
		{true, 16, false},
		{false, 16, false},
		{true, 16, true},
		{true, 16, true},
	}
	if !reflect.DeepEqual(log.evs, want) {
		t.Fatalf("events = %+v; want %+v", log.evs, want)
	}
}

func TestObserverWriteBackEvents(t *testing.T) {
	c := New(smallCfg("l2"), &flatMemory{readLat: 10, writeLat: 12})
	log := &eventLog{}
	c.SetObserver(log)
	c.Write(0x100, 4) // WB store miss: allocates
	c.Write(0x104, 4) // WB store hit
	want := []event{
		{true, 16, false},
		{true, 16, true},
	}
	if !reflect.DeepEqual(log.evs, want) {
		t.Fatalf("events = %+v; want %+v", log.evs, want)
	}
}

// Maintenance operations (flush, invalidate, writeback-range) are not
// victim accesses and must stay invisible to the observer.
func TestObserverSilentOnMaintenance(t *testing.T) {
	c := New(smallCfg("t"), &flatMemory{readLat: 10, writeLat: 12})
	c.Write(0x100, 4)
	c.Read(0x200, 4)
	log := &eventLog{}
	c.SetObserver(log)
	c.WritebackRange(0x100, 0x10)
	c.InvalidateRange(0x200, 0x10)
	c.FlushAll()
	if len(log.evs) != 0 {
		t.Fatalf("maintenance generated %d observer events: %+v", len(log.evs), log.evs)
	}
}

func TestObserverOccupancies(t *testing.T) {
	c := New(smallCfg("t"), &flatMemory{readLat: 10})
	c.Read(0x000, 4)
	c.Read(0x200, 4) // second way of set 0
	c.Read(0x010, 4) // set 1
	occ := c.Occupancies()
	if occ[0] != 2 || occ[1] != 1 {
		t.Fatalf("occupancies = %v; want set0=2 set1=1", occ[:4])
	}
	if c.SetOccupancy(0) != 2 {
		t.Fatalf("SetOccupancy(0) = %d; want 2", c.SetOccupancy(0))
	}
	total := 0
	for _, n := range occ {
		total += n
	}
	if total != 3 {
		t.Fatalf("total occupancy = %d; want 3", total)
	}
	c.FlushAll()
	if c.SetOccupancy(0) != 0 {
		t.Fatal("flush left occupancy behind")
	}
}

// TestObserverDisabledZeroAlloc pins the telemetry-style contract the
// hook comment in cache.go promises: with no observer attached, the
// access paths allocate nothing.
func TestObserverDisabledZeroAlloc(t *testing.T) {
	c := New(smallCfg("t"), &flatMemory{readLat: 10, writeLat: 12})
	c.Read(0, 4)
	if n := testing.AllocsPerRun(1000, func() {
		c.Read(0, 4)
		c.Write(4, 4)
	}); n != 0 {
		t.Fatalf("observer-off access path allocates %.1f per op; want 0", n)
	}
	// And with an observer attached, the recorder-side contract is the
	// observer's business — but the cache itself still must not allocate.
	c.SetObserver(noopObserver{})
	if n := testing.AllocsPerRun(1000, func() {
		c.Read(0, 4)
		c.Write(4, 4)
	}); n != 0 {
		t.Fatalf("observer-on access path allocates %.1f per op; want 0", n)
	}
}

type noopObserver struct{}

func (noopObserver) OnAccess(bool, int, bool) {}

// BenchmarkReadHitObserverOff proves the disabled hook is one
// predictable branch: compare against BenchmarkReadHit (no hook epoch)
// and BenchmarkReadHitObserverOn.
func BenchmarkReadHitObserverOff(b *testing.B) {
	c := New(smallCfg("b"), &flatMemory{readLat: 10})
	c.Read(0, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(0, 4)
	}
}

func BenchmarkReadHitObserverOn(b *testing.B) {
	c := New(smallCfg("b"), &flatMemory{readLat: 10})
	c.SetObserver(noopObserver{})
	c.Read(0, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(0, 4)
	}
}
