// Package stats provides the statistical machinery MBPTA needs: the
// descriptive statistics, the Ljung-Box independence test and the
// two-sample Kolmogorov-Smirnov identical-distribution test the paper
// applies at a 5% significance level (§VI, "Fulfilling the i.i.d.
// properties"), plus the special functions (regularised incomplete
// gamma, Kolmogorov distribution) their p-values require.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrTooFewSamples is returned by tests that need a minimum sample size.
var ErrTooFewSamples = errors.New("stats: too few samples")

// Mean returns the arithmetic mean. It panics on an empty slice: every
// caller in this module guarantees non-empty inputs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Mean of empty slice")
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (n-1 denominator).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0≤q≤1) of xs by linear interpolation
// on the sorted sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %f out of [0,1]", q))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Autocorrelation returns the lag-k sample autocorrelation coefficient.
func Autocorrelation(xs []float64, k int) float64 {
	n := len(xs)
	if k <= 0 || k >= n {
		panic(fmt.Sprintf("stats: autocorrelation lag %d out of range for n=%d", k, n))
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n-k; i++ {
		num += (xs[i] - m) * (xs[i+k] - m)
	}
	for _, x := range xs {
		den += (x - m) * (x - m)
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// TestResult is the outcome of a statistical hypothesis test.
type TestResult struct {
	Statistic float64
	PValue    float64
}

// Passed reports whether the test fails to reject at significance alpha
// (the paper's criterion: i.i.d. is rejected only if p < 0.05).
func (t TestResult) Passed(alpha float64) bool { return t.PValue >= alpha }

// LjungBox runs the Ljung-Box portmanteau test for independence using
// autocorrelations up to lag h. The null hypothesis is that the data are
// independently distributed; small p-values reject independence.
func LjungBox(xs []float64, h int) (TestResult, error) {
	n := len(xs)
	if h <= 0 {
		return TestResult{}, fmt.Errorf("stats: Ljung-Box needs h > 0, got %d", h)
	}
	if n <= h+1 {
		return TestResult{}, fmt.Errorf("%w: Ljung-Box with h=%d needs n > %d, got %d",
			ErrTooFewSamples, h, h+1, n)
	}
	if Variance(xs) == 0 {
		// A constant series carries no evidence against independence: the
		// sample autocorrelations are undefined (0/0); treat as pass.
		return TestResult{Statistic: 0, PValue: 1}, nil
	}
	var q float64
	for k := 1; k <= h; k++ {
		r := Autocorrelation(xs, k)
		q += r * r / float64(n-k)
	}
	q *= float64(n) * float64(n+2)
	p := ChiSquareSurvival(q, float64(h))
	return TestResult{Statistic: q, PValue: p}, nil
}

// KolmogorovSmirnov2 runs the two-sample KS test: the null hypothesis is
// that xs and ys are drawn from the same distribution. The paper splits
// the measurement series in two halves and applies this test for the
// "identically distributed" half of i.i.d.
func KolmogorovSmirnov2(xs, ys []float64) (TestResult, error) {
	n1, n2 := len(xs), len(ys)
	if n1 < 4 || n2 < 4 {
		return TestResult{}, fmt.Errorf("%w: KS needs >=4 samples per side, got %d and %d",
			ErrTooFewSamples, n1, n2)
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	var d float64
	i, j := 0, 0
	for i < n1 && j < n2 {
		// Advance through all samples equal to the current smallest value
		// in BOTH arrays before measuring: evaluating the CDF difference
		// mid-tie would inflate D for discrete (heavily tied) data such
		// as cycle counts.
		v1, v2 := a[i], b[j]
		if v1 <= v2 {
			for i < n1 && a[i] == v1 {
				i++
			}
		}
		if v2 <= v1 {
			for j < n2 && b[j] == v2 {
				j++
			}
		}
		diff := math.Abs(float64(i)/float64(n1) - float64(j)/float64(n2))
		if diff > d {
			d = diff
		}
	}
	ne := float64(n1) * float64(n2) / float64(n1+n2)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return TestResult{Statistic: d, PValue: KolmogorovSurvival(lambda)}, nil
}

// SplitHalves splits xs into its first and second halves, the paper's
// arrangement for the two-sample KS test.
func SplitHalves(xs []float64) ([]float64, []float64) {
	mid := len(xs) / 2
	return xs[:mid], xs[mid:]
}

// ECDF is an empirical cumulative distribution function.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF over xs.
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// CDF returns P(X <= x) under the empirical distribution.
func (e *ECDF) CDF(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.MaxFloat64))
	return float64(i) / float64(len(e.sorted))
}

// Exceedance returns P(X > x); the Y axis of the paper's Fig. 3.
func (e *ECDF) Exceedance(x float64) float64 { return 1 - e.CDF(x) }

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// Sorted returns the underlying sorted sample (not a copy).
func (e *ECDF) Sorted() []float64 { return e.sorted }
