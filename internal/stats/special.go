package stats

import "math"

// ChiSquareSurvival returns P(X > x) for a chi-square distribution with
// k degrees of freedom: the p-value source for the Ljung-Box statistic.
func ChiSquareSurvival(x, k float64) float64 {
	if x <= 0 {
		return 1
	}
	return 1 - RegularizedGammaP(k/2, x/2)
}

// RegularizedGammaP computes P(a,x), the regularised lower incomplete
// gamma function, via the series expansion for x < a+1 and the continued
// fraction for x >= a+1 (the classic Numerical-Recipes split, which
// converges quickly on both sides).
func RegularizedGammaP(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 0
	case x < a+1:
		return gammaPSeries(a, x)
	default:
		return 1 - gammaQContinued(a, x)
	}
}

const (
	gammaEps     = 1e-14
	gammaMaxIter = 500
)

// gammaPSeries evaluates P(a,x) by its power series.
func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < gammaMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaQContinued evaluates Q(a,x) = 1-P(a,x) by the Lentz continued
// fraction.
func gammaQContinued(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= gammaMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// KolmogorovSurvival returns Q_KS(lambda) = 2 Σ_{j≥1} (-1)^{j-1}
// exp(-2 j² λ²), the asymptotic survival function of the Kolmogorov
// statistic used for two-sample KS p-values.
func KolmogorovSurvival(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	const maxTerms = 100
	var sum float64
	sign := 1.0
	for j := 1; j <= maxTerms; j++ {
		term := sign * math.Exp(-2*float64(j)*float64(j)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12*math.Abs(sum)+1e-300 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}
