package stats

import (
	"math"
	"testing"
	"testing/quick"

	"dsr/internal/prng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDescriptive(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("mean=%f", Mean(xs))
	}
	if !almost(Variance(xs), 32.0/7, 1e-12) {
		t.Errorf("variance=%f, want %f", Variance(xs), 32.0/7)
	}
	if Min(xs) != 2 || Max(xs) != 9 {
		t.Error("min/max")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.125, 1.5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%f)=%f, want %f", c.q, got, c.want)
		}
	}
}

func TestAutocorrelationOfPeriodicSeries(t *testing.T) {
	// Alternating series: lag-1 autocorrelation ≈ -1, lag-2 ≈ +1.
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 2)
	}
	if r := Autocorrelation(xs, 1); r > -0.9 {
		t.Errorf("lag-1 r=%f, want ≈ -1", r)
	}
	if r := Autocorrelation(xs, 2); r < 0.9 {
		t.Errorf("lag-2 r=%f, want ≈ +1", r)
	}
}

func TestLjungBoxOnIndependentData(t *testing.T) {
	src := prng.NewMWC(42)
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = prng.Float64(src)
	}
	res, err := LjungBox(xs, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed(0.05) {
		t.Errorf("independent data rejected: p=%f", res.PValue)
	}
}

func TestLjungBoxOnAutocorrelatedData(t *testing.T) {
	// AR(1) with strong dependence must be rejected.
	src := prng.NewMWC(43)
	xs := make([]float64, 1000)
	x := 0.0
	for i := range xs {
		x = 0.9*x + prng.Float64(src)
		xs[i] = x
	}
	res, err := LjungBox(xs, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed(0.05) {
		t.Errorf("AR(1) data passed: p=%f", res.PValue)
	}
}

func TestLjungBoxConstantSeriesPasses(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = 7
	}
	res, err := LjungBox(xs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed(0.05) {
		t.Error("constant series rejected")
	}
}

func TestLjungBoxErrors(t *testing.T) {
	if _, err := LjungBox([]float64{1, 2, 3}, 10); err == nil {
		t.Error("too-short series accepted")
	}
	if _, err := LjungBox(make([]float64, 100), 0); err == nil {
		t.Error("h=0 accepted")
	}
}

func TestKSSameDistributionPasses(t *testing.T) {
	src := prng.NewMWC(7)
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = prng.Float64(src)
		ys[i] = prng.Float64(src)
	}
	res, err := KolmogorovSmirnov2(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Passed(0.05) {
		t.Errorf("same-distribution samples rejected: p=%f", res.PValue)
	}
}

func TestKSDifferentDistributionsRejected(t *testing.T) {
	src := prng.NewMWC(8)
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = prng.Float64(src)
		ys[i] = prng.Float64(src) + 0.5 // shifted
	}
	res, err := KolmogorovSmirnov2(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed(0.05) {
		t.Errorf("shifted samples passed: p=%f", res.PValue)
	}
}

func TestKSErrors(t *testing.T) {
	if _, err := KolmogorovSmirnov2([]float64{1}, []float64{1, 2, 3, 4}); err == nil {
		t.Error("tiny sample accepted")
	}
}

func TestSplitHalves(t *testing.T) {
	a, b := SplitHalves([]float64{1, 2, 3, 4, 5})
	if len(a) != 2 || len(b) != 3 {
		t.Errorf("split=%v %v", a, b)
	}
}

func TestECDF(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, cdf float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {4, 1},
	}
	for _, c := range cases {
		if got := e.CDF(c.x); !almost(got, c.cdf, 1e-12) {
			t.Errorf("CDF(%f)=%f, want %f", c.x, got, c.cdf)
		}
		if got := e.Exceedance(c.x); !almost(got, 1-c.cdf, 1e-12) {
			t.Errorf("Exceedance(%f)=%f", c.x, got)
		}
	}
	if e.Len() != 4 {
		t.Error("Len")
	}
}

func TestChiSquareSurvivalKnownValues(t *testing.T) {
	// Median of chi-square(k) ≈ k(1-2/(9k))^3; and classic table values.
	cases := []struct{ x, k, want, tol float64 }{
		{0, 5, 1, 1e-12},
		{4.351, 5, 0.5, 0.01},     // median chi2(5) ≈ 4.351
		{11.07, 5, 0.05, 0.002},   // 95th percentile chi2(5)
		{31.41, 20, 0.05, 0.002},  // 95th percentile chi2(20)
		{37.57, 20, 0.01, 0.001},  // 99th percentile chi2(20)
		{10.83, 1, 0.001, 0.0005}, // 99.9th percentile chi2(1)
	}
	for _, c := range cases {
		if got := ChiSquareSurvival(c.x, c.k); !almost(got, c.want, c.tol) {
			t.Errorf("ChiSquareSurvival(%f,%f)=%f, want %f", c.x, c.k, got, c.want)
		}
	}
}

func TestRegularizedGammaPProperties(t *testing.T) {
	// Monotone in x, 0 at 0, → 1 for large x.
	f := func(raw uint8) bool {
		a := float64(raw%40)/4 + 0.25
		prev := 0.0
		for x := 0.0; x < 30; x += 0.5 {
			p := RegularizedGammaP(a, x)
			if p < prev-1e-9 || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return RegularizedGammaP(a, 200) > 0.999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
	// P(1,x) = 1 - e^-x exactly.
	for _, x := range []float64{0.1, 1, 2, 5} {
		if got := RegularizedGammaP(1, x); !almost(got, 1-math.Exp(-x), 1e-10) {
			t.Errorf("P(1,%f)=%f", x, got)
		}
	}
}

func TestKolmogorovSurvivalKnownValues(t *testing.T) {
	// Q_KS(1.36) ≈ 0.049 (the classic 5% critical value).
	if got := KolmogorovSurvival(1.36); !almost(got, 0.049, 0.002) {
		t.Errorf("Q_KS(1.36)=%f, want ≈0.049", got)
	}
	if got := KolmogorovSurvival(0); got != 1 {
		t.Errorf("Q_KS(0)=%f, want 1", got)
	}
	if got := KolmogorovSurvival(3); got > 1e-6 {
		t.Errorf("Q_KS(3)=%f, want ≈0", got)
	}
	// Monotone decreasing.
	prev := 1.0
	for l := 0.1; l < 3; l += 0.1 {
		p := KolmogorovSurvival(l)
		if p > prev+1e-12 {
			t.Fatalf("Q_KS not monotone at %f", l)
		}
		prev = p
	}
}

// Property: the KS test is symmetric in its arguments.
func TestKSSymmetry(t *testing.T) {
	src := prng.NewMWC(3)
	xs := make([]float64, 100)
	ys := make([]float64, 150)
	for i := range xs {
		xs[i] = prng.Float64(src)
	}
	for i := range ys {
		ys[i] = prng.Float64(src) * 1.2
	}
	r1, err1 := KolmogorovSmirnov2(xs, ys)
	r2, err2 := KolmogorovSmirnov2(ys, xs)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !almost(r1.Statistic, r2.Statistic, 1e-12) || !almost(r1.PValue, r2.PValue, 1e-12) {
		t.Error("KS not symmetric")
	}
}

// Property: Ljung-Box p-values on independent uniform data are roughly
// uniform — specifically, they should not concentrate near 0.
func TestLjungBoxFalsePositiveRate(t *testing.T) {
	src := prng.NewMWC(99)
	rejections := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 200)
		for i := range xs {
			xs[i] = prng.Float64(src)
		}
		res, err := LjungBox(xs, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Passed(0.05) {
			rejections++
		}
	}
	// Expected ~5% false positives; allow up to 12%.
	if rejections > trials*12/100 {
		t.Errorf("false positive rate %d/%d too high", rejections, trials)
	}
}
