package spaceapp

import (
	"math"

	"dsr/internal/isa"
	"dsr/internal/prog"
)

// Processing-task symbol names.
const (
	SymScene      = "scene"
	SymLensFlags  = "lens_flags"
	SymLensTotals = "lens_totals"
	SymCentroids  = "centroids" // cx[0..143] then cy[0..143]
	SymWfeOut     = "wfe_out"
	SymProcConsts = "proc_consts"
)

// proc_consts word indices.
const (
	pcZero = iota
	pcCenter
	numProcConsts
)

func procConstWords() []uint32 {
	w := make([]uint32, numProcConsts)
	w[pcZero] = f32(0)
	w[pcCenter] = f32(fineCenter)
	return w
}

// BuildProcessing constructs the low-criticality image-processing task
// (§IV): phase 1 computes a coarse intensity/threshold pass over every
// lens; phase 2 refines the lightened lenses (~70%) with a sub-pixel
// weighted centroid and per-lens wavefront error. The program halts with
// the RMS wavefront error (float bits) in %o0.
func BuildProcessing() (*prog.Program, error) {
	p := &prog.Program{Name: "processing", Entry: "proc_main"}
	data := []*prog.DataObject{
		{Name: SymScene, Size: NumLenses * PixelsPerLens, Align: 8},
		{Name: SymLensFlags, Size: NumLenses * 4, Align: 8},
		{Name: SymLensTotals, Size: NumLenses * 4, Align: 8},
		{Name: SymCentroids, Size: 2 * NumLenses * 4, Align: 8},
		{Name: SymWfeOut, Size: NumLenses * 4, Align: 8},
		{Name: SymProcConsts, Size: numProcConsts * 4, Align: 8, Init: procConstWords()},
	}
	for _, d := range data {
		if err := p.AddData(d); err != nil {
			return nil, err
		}
	}
	funcs := []*prog.Function{
		procMain(),
		coarsePhase(),
		lensTotal(),
		finePhase(),
		lensCentroid(),
		rmsWfe(),
	}
	for _, f := range funcs {
		if err := p.AddFunction(f); err != nil {
			return nil, err
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

func procMain() *prog.Function {
	return prog.NewFunc("proc_main", prog.MinFrame).
		Prologue().
		IPoint(1).
		Call("coarse_phase").
		Call("fine_phase").
		Call("rms_wfe"). // RMS float bits land in %o0
		IPoint(2).
		Halt().
		MustBuild()
}

// coarse_phase: total intensity and lit decision per lens.
func coarsePhase() *prog.Function {
	b := prog.NewFunc("coarse_phase", prog.MinFrame)
	b.Prologue().
		MovI(isa.L0, 0). // lens index
		Label("lens").
		Mov(isa.O0, isa.L0).
		Call("lens_total"). // total in %o0
		Set(isa.L1, SymLensTotals).
		SllI(isa.L2, isa.L0, 2).
		Add(isa.L3, isa.L1, isa.L2).
		St(isa.O0, isa.L3, 0).
		// flag = total > threshold
		MovI(isa.L4, 0).
		CmpI(isa.O0, LitThreshold).
		Ble("dim").
		MovI(isa.L4, 1).
		Label("dim").
		Set(isa.L1, SymLensFlags).
		Add(isa.L3, isa.L1, isa.L2).
		St(isa.L4, isa.L3, 0).
		AddI(isa.L0, isa.L0, 1).
		CmpI(isa.L0, NumLenses).
		Bl("lens").
		Epilogue()
	return b.MustBuild()
}

// lens_total(l): phase-1 sampled intensity — the top byte of each pixel
// word (one pixel in four), summed over the lens image.
func lensTotal() *prog.Function {
	b := prog.NewFunc("lens_total", prog.MinFrame)
	b.Prologue().
		Set(isa.L0, SymScene).
		MulI(isa.L1, isa.I0, PixelsPerLens).
		Add(isa.L0, isa.L0, isa.L1). // lens base
		MovI(isa.L2, 0).             // word index
		MovI(isa.L3, 0).             // sum
		Label("loop").
		SllI(isa.L4, isa.L2, 2).
		Add(isa.L5, isa.L0, isa.L4).
		Ld(isa.L6, isa.L5, 0).
		SrlI(isa.L6, isa.L6, 24). // sampled pixel
		Add(isa.L3, isa.L3, isa.L6).
		AddI(isa.L2, isa.L2, 1).
		CmpI(isa.L2, PixelsPerLens/4).
		Bl("loop").
		Mov(isa.I0, isa.L3).
		Epilogue()
	return b.MustBuild()
}

// fine_phase: sub-pixel refinement of every lit lens.
func finePhase() *prog.Function {
	b := prog.NewFunc("fine_phase", prog.MinFrame)
	b.Prologue().
		MovI(isa.L0, 0).
		Label("lens").
		Set(isa.L1, SymLensFlags).
		SllI(isa.L2, isa.L0, 2).
		Add(isa.L3, isa.L1, isa.L2).
		Ld(isa.L4, isa.L3, 0).
		CmpI(isa.L4, 0).
		Be("skip"). // dim lens: not processed (the paper's ~30%)
		Mov(isa.O0, isa.L0).
		Call("lens_centroid").
		Label("skip").
		AddI(isa.L0, isa.L0, 1).
		CmpI(isa.L0, NumLenses).
		Bl("lens").
		Epilogue()
	return b.MustBuild()
}

// lens_centroid(l): integer weighted centroid over the central
// FineWindow² pixels, converted to float with fitos, divided (the
// jittery FPU ops), and turned into a wavefront error via fsqrt.
func lensCentroid() *prog.Function {
	// MinFrame plus one double-word-aligned local slot: the int→float
	// conversions bounce sx/sy/sw through [%sp+LocalBase].
	b := prog.NewFunc("lens_centroid", prog.MinFrame+8)
	b.Prologue().
		Set(isa.L0, SymScene).
		MulI(isa.L1, isa.I0, PixelsPerLens).
		Add(isa.L0, isa.L0, isa.L1). // lens base
		MovI(isa.L1, 0).             // y
		MovI(isa.L2, 0).             // sw
		MovI(isa.L3, 0).             // sx
		MovI(isa.L4, 0).             // sy
		Label("rows").
		MovI(isa.L5, 0). // x
		// row base = lens + (FineOrigin+y)*LensPixels + FineOrigin
		AddI(isa.L6, isa.L1, FineOrigin).
		MulI(isa.L6, isa.L6, LensPixels).
		Add(isa.L6, isa.L0, isa.L6).
		Label("cols").
		Add(isa.L7, isa.L6, isa.L5).
		Ldub(isa.G1, isa.L7, FineOrigin). // w = pixel
		Add(isa.L2, isa.L2, isa.G1).      // sw += w
		Mul(isa.G2, isa.G1, isa.L5).
		Add(isa.L3, isa.L3, isa.G2). // sx += w*x
		Mul(isa.G2, isa.G1, isa.L1).
		Add(isa.L4, isa.L4, isa.G2). // sy += w*y
		AddI(isa.L5, isa.L5, 1).
		CmpI(isa.L5, FineWindow).
		Bl("cols").
		AddI(isa.L1, isa.L1, 1).
		CmpI(isa.L1, FineWindow).
		Bl("rows").
		// Guard sw == 0 (cannot happen for a lit lens, but stay safe).
		CmpI(isa.L2, 0).
		Be("zero").
		// cx = sx/sw, cy = sy/sw in float.
		St(isa.L3, isa.SP, prog.LocalBase).
		FLd(0, isa.SP, prog.LocalBase).
		Fitos(0, 0). // float(sx)
		St(isa.L4, isa.SP, prog.LocalBase).
		FLd(1, isa.SP, prog.LocalBase).
		Fitos(1, 1). // float(sy)
		St(isa.L2, isa.SP, prog.LocalBase).
		FLd(2, isa.SP, prog.LocalBase).
		Fitos(2, 2).   // float(sw)
		Fdiv(0, 0, 2). // cx
		Fdiv(1, 1, 2). // cy
		// store centroids
		Set(isa.L5, SymCentroids).
		SllI(isa.L6, isa.I0, 2).
		Add(isa.L7, isa.L5, isa.L6).
		FSt(0, isa.L7, 0).
		FSt(1, isa.L7, NumLenses*4).
		// wfe = sqrt((cx-c)^2 + (cy-c)^2)
		Set(isa.L5, SymProcConsts).
		FLd(3, isa.L5, pcCenter*4).
		Fsub(0, 0, 3).
		Fsub(1, 1, 3).
		Fmul(0, 0, 0).
		Fmul(1, 1, 1).
		Fadd(0, 0, 1).
		Fsqrt(0, 0).
		Ba("store").
		Label("zero").
		Set(isa.L5, SymProcConsts).
		FLd(0, isa.L5, pcZero*4).
		Label("store").
		Set(isa.L5, SymWfeOut).
		SllI(isa.L6, isa.I0, 2).
		Add(isa.L7, isa.L5, isa.L6).
		FSt(0, isa.L7, 0).
		Epilogue()
	return b.MustBuild()
}

// rms_wfe: aggregate RMS wavefront error over the lit lenses.
func rmsWfe() *prog.Function {
	b := prog.NewFunc("rms_wfe", prog.MinFrame+16)
	b.Prologue().
		Set(isa.L0, SymLensFlags).
		Set(isa.L1, SymWfeOut).
		Set(isa.L2, SymProcConsts).
		FLd(0, isa.L2, pcZero*4). // acc
		MovI(isa.L3, 0).          // lens
		MovI(isa.L4, 0).          // lit count
		Label("loop").
		SllI(isa.L5, isa.L3, 2).
		Add(isa.L6, isa.L0, isa.L5).
		Ld(isa.L7, isa.L6, 0).
		CmpI(isa.L7, 0).
		Be("next").
		AddI(isa.L4, isa.L4, 1).
		Add(isa.L6, isa.L1, isa.L5).
		FLd(1, isa.L6, 0).
		Fmul(1, 1, 1).
		Fadd(0, 0, 1).
		Label("next").
		AddI(isa.L3, isa.L3, 1).
		CmpI(isa.L3, NumLenses).
		Bl("loop").
		// rms = sqrt(acc / float(lit)); lit==0 → 0
		CmpI(isa.L4, 0).
		Be("empty").
		St(isa.L4, isa.SP, prog.LocalBase).
		FLd(2, isa.SP, prog.LocalBase).
		Fitos(2, 2).
		Fdiv(0, 0, 2).
		Fsqrt(0, 0).
		Ba("out").
		Label("empty").
		FLd(0, isa.L2, pcZero*4).
		Label("out").
		FSt(0, isa.SP, prog.LocalBase).
		Ld(isa.I0, isa.SP, prog.LocalBase). // RMS bits → caller %o0
		Epilogue()
	return b.MustBuild()
}

// ProcessingResult is the golden model's output.
type ProcessingResult struct {
	RMSBits   uint32 // float32 bits of the RMS wavefront error
	Lit       int
	Flags     []bool
	Wfe       []float32
	Totals    []int32
	Centroids [][2]float32
}

// ProcessingReference is the bit-exact golden model of the processing
// task (same operation order as the IR code).
func ProcessingReference(s *Scene) *ProcessingResult {
	res := &ProcessingResult{
		Flags:     make([]bool, NumLenses),
		Wfe:       make([]float32, NumLenses),
		Totals:    make([]int32, NumLenses),
		Centroids: make([][2]float32, NumLenses),
	}
	for l := 0; l < NumLenses; l++ {
		base := l * PixelsPerLens
		// Phase 1: sampled total (every 4th pixel = top byte per word).
		var total int32
		for w := 0; w < PixelsPerLens/4; w++ {
			total += int32(s.Pixels[base+w*4])
		}
		res.Totals[l] = total
		res.Flags[l] = total > LitThreshold
	}
	for l := 0; l < NumLenses; l++ {
		if !res.Flags[l] {
			continue
		}
		res.Lit++
		base := l * PixelsPerLens
		var sw, sx, sy int32
		for y := 0; y < FineWindow; y++ {
			row := base + (FineOrigin+y)*LensPixels + FineOrigin
			for x := 0; x < FineWindow; x++ {
				w := int32(s.Pixels[row+x])
				sw += w
				sx += w * int32(x)
				sy += w * int32(y)
			}
		}
		if sw == 0 {
			continue
		}
		cx := float32(sx) / float32(sw)
		cy := float32(sy) / float32(sw)
		res.Centroids[l] = [2]float32{cx, cy}
		dx := cx - fineCenter
		dy := cy - fineCenter
		res.Wfe[l] = float32(math.Sqrt(float64(dx*dx + dy*dy)))
	}
	var acc float32
	for l := 0; l < NumLenses; l++ {
		if res.Flags[l] {
			acc = acc + res.Wfe[l]*res.Wfe[l]
		}
	}
	if res.Lit > 0 {
		rms := float32(math.Sqrt(float64(acc / float32(res.Lit))))
		res.RMSBits = math.Float32bits(rms)
	}
	return res
}
