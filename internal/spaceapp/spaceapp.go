// Package spaceapp reproduces the paper's case study (§IV): the
// mixed-criticality software of an integrated active-optics instrument
// for space telescopes.
//
// Two tasks are provided, written in the simulator's IR:
//
//   - the high-criticality CONTROL task (the paper's unit of analysis,
//     invoked every second): it ingests the wavefront-error estimates,
//     validates and filters them, elaborates actuator commands for the
//     mirror displacements through an influence-matrix product and a PI
//     regulator, and handles the interface with the rest of the
//     spacecraft (uplink mailbox parsing, telemetry frame construction
//     and CRC); and
//
//   - the low-criticality image PROCESSING task (invoked every 100 ms):
//     it computes the passive deformation of the mirror from a 12×12
//     array of lenses of 34×34 pixels each, in two phases — a coarse
//     intensity/centroid pass over every lens and a fine sub-pixel pass
//     over the lightened lenses only (around 70% of the total, which
//     ties execution time to the input data, the paper's high-level
//     jitter source).
//
// Both tasks come with bit-exact Go golden models (golden.go) so every
// randomised execution can be checked for functional correctness.
package spaceapp

// Geometry of the instrument, from §IV of the paper.
const (
	// LensGrid is the lenslet array dimension (12×12).
	LensGrid = 12
	// NumLenses is the lens count (144), one wavefront zone per lens.
	NumLenses = LensGrid * LensGrid
	// LensPixels is the per-lens image dimension (34×34).
	LensPixels = 34
	// PixelsPerLens is the per-lens pixel count.
	PixelsPerLens = LensPixels * LensPixels
	// LitFraction is the nominal fraction of lightened lenses (~70%).
	LitFraction = 0.7
)

// Control-task dimensioning. The zone count equals the lens count; the
// actuator count is the instrument's mirror-displacement channel count.
const (
	NumZones     = NumLenses
	NumActuators = 16
	// MailboxWords is the spacecraft uplink mailbox scanned each cycle.
	MailboxWords = 128
	// RawWords is the sensor DMA buffer: 16 header words + one word per zone.
	RawWords = 16 + NumZones
	// FrameWords is the telemetry frame length (CRC'd in full).
	FrameWords = 64
	// ScrubWords is the EDAC memory-scrub window checked every cycle —
	// the routine integer housekeeping of on-board software.
	ScrubWords = 3072
	// HistorySlots is the telemetry history ring depth.
	HistorySlots = 4
)

// Control-law constants (IEEE single precision; the golden model and the
// IR code share them bit-exactly through the coefficient table).
const (
	coefFilterA  = float32(0.8)  // IIR pole
	coefFilterB  = float32(0.2)  // IIR gain
	coefWFELimit = float32(50.0) // validation window (±)
	coefKp       = float32(0.5)  // proportional gain
	coefKi       = float32(0.3)  // integral gain
	coefILeak    = float32(0.1)  // integrator leak-in
	coefQuant    = float32(16.0) // command quantisation scale
	coefCmdLimit = float32(1e3)  // actuator saturation (±)
)

// TelemetryMagic heads every telemetry frame ("PXMA").
const TelemetryMagic = 0x50584D41

// Processing-task parameters.
const (
	// LitThreshold is the phase-1 intensity threshold deciding whether a
	// lens is lightened. Phase 1 samples one pixel per word (289 samples
	// per lens); a lit lens sums to ~14000, a dim one to ~4500.
	LitThreshold = 9000
	// FineWindow is the centered sub-window refined in phase 2.
	FineWindow = 16
	// FineOrigin is the window's top-left offset inside a lens image.
	FineOrigin = (LensPixels - FineWindow) / 2
	// fineCenter is the window-relative spot reference (float32).
	fineCenter = float32(7.5)
)
