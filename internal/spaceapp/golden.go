package spaceapp

import "math"

// ControlReference is the bit-exact Go golden model of the control task:
// given the same input it produces the same telemetry CRC the simulated
// program leaves in %o0. Every float32 operation mirrors the IR code's
// operation order, so IEEE single-precision rounding matches exactly.
func ControlReference(in *ControlInput) uint32 {
	// dma_copy.
	frame := make([]uint32, NumZones)
	var chk uint32
	for z := 0; z < NumZones; z++ {
		w := in.Raw[16+z]
		frame[z] = w
		chk = (chk<<1 | chk>>31) ^ w
	}

	// validate_frame. NaN is rejected like an out-of-window value: a
	// sensor word with a NaN bit pattern must not enter the arithmetic
	// pipeline, both for robustness and because NaN payload propagation
	// through float ops is not bit-stable across compilers/build modes
	// (the simulated ISA and this model could then disagree on
	// telemetry bit patterns).
	last := make([]float32, NumZones)
	for z := 0; z < NumZones; z++ {
		f := math.Float32frombits(frame[z])
		if f != f || f > coefWFELimit || f < -coefWFELimit {
			f = last[z]
			frame[z] = math.Float32bits(f)
		} else {
			last[z] = f
		}
	}

	// wavefront_filter (state boots at zero: partition reboot).
	state := make([]float32, NumZones)
	for z := 0; z < NumZones; z++ {
		t1 := state[z] * coefFilterA
		t2 := math.Float32frombits(frame[z]) * coefFilterB
		state[z] = t1 + t2
	}

	// influence_matmul.
	cmdF := make([]float32, NumActuators)
	for a := 0; a < NumActuators; a++ {
		var acc float32
		for z := 0; z < NumZones; z++ {
			t := InfluenceValue(a, z) * state[z]
			acc = acc + t
		}
		cmdF[a] = acc
	}

	// pid_update.
	outF := make([]float32, NumActuators)
	integ := make([]float32, NumActuators)
	for a := 0; a < NumActuators; a++ {
		e := cmdF[a]
		integ[a] = integ[a] + e*coefILeak
		t1 := e * coefKp
		t2 := integ[a] * coefKi
		outF[a] = t1 + t2
	}

	// limit_quantize.
	cmdI := make([]uint32, NumActuators)
	for a := 0; a < NumActuators; a++ {
		v := outF[a]
		if !(v < coefCmdLimit) {
			v = coefCmdLimit + 0
		}
		if !(v > -coefCmdLimit) {
			v = -coefCmdLimit + 0
		}
		q := v * coefQuant
		cmdI[a] = uint32(int32(q))
	}

	// parse_uplink.
	var ping, load, xor, bad uint32
	for i := 0; i < MailboxWords; i++ {
		w := in.Mailbox[i]
		switch w >> 28 & 0xF {
		case 1:
			ping++
		case 2:
			s := int32(load) + int32(w&0xFFFF)
			if s > 0x00FFFFFF {
				s = 0x00FFFFFF
			}
			load = uint32(s)
		case 3:
			xor ^= w
		default:
			bad++
		}
	}

	// edac_scrub.
	scrub := scrubWords()
	var sig uint32
	for i := 0; i < ScrubWords; i++ {
		sig ^= scrub[i]
		sig ^= sig >> 13
	}

	// predict_wavefront (corrector): transposed influence product and
	// squared-residual accumulation, in the IR code's operation order.
	var resid float32
	for z := 0; z < NumZones; z++ {
		var acc float32
		for a := 0; a < NumActuators; a++ {
			t := InfluenceValue(a, z) * outF[a]
			acc = acc + t
		}
		r := state[z] - acc
		resid = resid + r*r
	}

	// build_telemetry.
	tele := make([]uint32, FrameWords)
	tele[0] = TelemetryMagic
	for a := 0; a < NumActuators; a++ {
		tele[1+a] = cmdI[a]
	}
	tele[9] = chk
	tele[10] = ping
	tele[11] = load
	tele[12] = xor
	tele[13] = bad
	tele[14] = NumZones
	tele[15] = NumActuators
	for j := 0; j < 16; j++ {
		tele[16+j] = math.Float32bits(state[j*9])
	}
	for j := 32; j < FrameWords; j++ {
		tele[j] = uint32(int32(j)*40503) ^ TelemetryMagic
	}
	tele[33] = sig
	tele[34] = math.Float32bits(resid)

	// history_update: copy the frame into the (boot-zeroed) ring, then
	// CRC the whole ring into frame[32].
	table := CRCTable()
	ring := make([]uint32, HistorySlots*FrameWords)
	slot := int(chk & (HistorySlots - 1))
	copy(ring[slot*FrameWords:], tele)
	ringCRC := uint32(0xFFFFFFFF)
	for _, w := range ring {
		for shift := 24; shift >= 0; shift -= 8 {
			b := w >> uint(shift) & 0xFF
			idx := (ringCRC>>24 ^ b) & 0xFF
			ringCRC = ringCRC<<8 ^ table[idx]
		}
	}
	tele[32] = ringCRC

	// crc_frame.
	crc := uint32(0xFFFFFFFF)
	for _, w := range tele {
		for shift := 24; shift >= 0; shift -= 8 {
			b := w >> uint(shift) & 0xFF
			idx := (crc>>24 ^ b) & 0xFF
			crc = crc<<8 ^ table[idx]
		}
	}
	return crc
}
