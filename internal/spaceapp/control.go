package spaceapp

import (
	"math"

	"dsr/internal/isa"
	"dsr/internal/prog"
)

// Coefficient-table layout (word indices into the "coeffs" object).
const (
	cfFilterA = iota
	cfFilterB
	cfPosLimit
	cfNegLimit
	cfKp
	cfKi
	cfILeak
	cfQuant
	cfPosCmd
	cfNegCmd
	cfZero
	numCoeffs
)

// Control-task symbol names. The experiments poke per-run inputs into
// SymSensorRaw and SymMailbox after each (re)load.
const (
	SymSensorRaw   = "sensor_raw"
	SymMailbox     = "mailbox"
	SymSensorFrame = "sensor_frame"
	SymLastGood    = "last_good"
	SymFilterState = "filter_state"
	SymCoeffs      = "coeffs"
	SymInfluence   = "influence"
	SymCmdF        = "cmd_f"
	SymInteg       = "integ"
	SymOutF        = "out_f"
	SymCmdI        = "cmd_i"
	SymPredicted   = "predicted"
	SymHK          = "hk"
	SymTelemetry   = "telemetry"
	SymCRCTable    = "crc_table"
	SymScrub       = "scrub_region"
	SymHistory     = "history"
	// SymReserved is a reserved DMA staging region in the baseline link
	// map, as space on-board software commonly carries. Its presence
	// places the scrub window's direct-mapped L2 shadow exactly over the
	// hot control-law data — the "bad and rare cache layout for the L2"
	// the paper observed in the COTS binary (§VI). DSR relocates
	// everything per run and thereby escapes it.
	SymReserved = "dma_reserved"
)

// Housekeeping-word indices (into "hk").
const (
	hkChecksum = 0
	hkOpPing   = 4
	hkOpLoad   = 5
	hkOpXor    = 6
	hkOpBad    = 7
	hkScrubSig = 8
	hkResidual = 10
)

func f32(v float32) uint32 { return math.Float32bits(v) }

// coeffWords builds the coefficient table shared bit-exactly with the
// golden model.
func coeffWords() []uint32 {
	w := make([]uint32, numCoeffs)
	w[cfFilterA] = f32(coefFilterA)
	w[cfFilterB] = f32(coefFilterB)
	w[cfPosLimit] = f32(coefWFELimit)
	w[cfNegLimit] = f32(-coefWFELimit)
	w[cfKp] = f32(coefKp)
	w[cfKi] = f32(coefKi)
	w[cfILeak] = f32(coefILeak)
	w[cfQuant] = f32(coefQuant)
	w[cfPosCmd] = f32(coefCmdLimit)
	w[cfNegCmd] = f32(-coefCmdLimit)
	w[cfZero] = f32(0)
	return w
}

// InfluenceValue is the deterministic influence-matrix initialiser:
// a smooth-ish but non-trivial coupling between zone z and actuator a.
func InfluenceValue(a, z int) float32 {
	return float32((a*31+z*17)%89)/89 - 0.5
}

func influenceWords() []uint32 {
	w := make([]uint32, NumActuators*NumZones)
	for a := 0; a < NumActuators; a++ {
		for z := 0; z < NumZones; z++ {
			w[a*NumZones+z] = f32(InfluenceValue(a, z))
		}
	}
	return w
}

// scrubWords is the EDAC scrub window's deterministic fill pattern.
func scrubWords() []uint32 {
	w := make([]uint32, ScrubWords)
	for i := range w {
		w[i] = uint32(i) * 0x9E3779B1
	}
	return w
}

// crcPoly is the CRC-32 generator polynomial (MSB-first form).
const crcPoly = 0x04C11DB7

// CRCTable returns the MSB-first CRC-32 table used by the telemetry
// frame check; exported so the golden model shares it.
func CRCTable() []uint32 {
	t := make([]uint32, 256)
	for i := 0; i < 256; i++ {
		c := uint32(i) << 24
		for b := 0; b < 8; b++ {
			if c&0x80000000 != 0 {
				c = c<<1 ^ crcPoly
			} else {
				c <<= 1
			}
		}
		t[i] = c
	}
	return t
}

// BuildControl constructs the high-criticality control task. The program
// halts with the telemetry CRC in %o0, so every run's functional result
// is observable and checkable against the golden model.
func BuildControl() (*prog.Program, error) {
	p := &prog.Program{Name: "control", Entry: "ctrl_main"}

	data := []*prog.DataObject{
		{Name: SymSensorRaw, Size: RawWords * 4, Align: 8},
		{Name: SymMailbox, Size: MailboxWords * 4, Align: 8},
		{Name: SymSensorFrame, Size: NumZones * 4, Align: 8},
		{Name: SymLastGood, Size: NumZones * 4, Align: 8},
		{Name: SymFilterState, Size: NumZones * 4, Align: 8},
		{Name: SymCoeffs, Size: numCoeffs * 4, Align: 8, Init: coeffWords()},
		{Name: SymInfluence, Size: NumActuators * NumZones * 4, Align: 8, Init: influenceWords()},
		{Name: SymCmdF, Size: NumActuators * 4, Align: 8},
		{Name: SymInteg, Size: NumActuators * 4, Align: 8},
		{Name: SymOutF, Size: NumActuators * 4, Align: 8},
		{Name: SymCmdI, Size: NumActuators * 4, Align: 8},
		{Name: SymPredicted, Size: NumZones * 4, Align: 8},
		{Name: SymHK, Size: 16 * 4, Align: 8},
		{Name: SymTelemetry, Size: FrameWords * 4, Align: 8},
		{Name: SymCRCTable, Size: 256 * 4, Align: 8, Init: CRCTable()},
		{Name: SymReserved, Size: 20480, Align: 8},
		{Name: SymScrub, Size: ScrubWords * 4, Align: 8, Init: scrubWords()},
		{Name: SymHistory, Size: HistorySlots * FrameWords * 4, Align: 8},
	}
	for _, d := range data {
		if err := p.AddData(d); err != nil {
			return nil, err
		}
	}

	funcs := []*prog.Function{
		ctrlMain(),
		dmaCopy(),
		validateFrame(),
		wavefrontFilter(),
		influenceMatmul(),
		pidUpdate(),
		limitQuantize(),
		parseUplink(),
		sat24Add(),
		edacScrub(),
		predictWavefront(),
		buildTelemetry(),
		historyUpdate(),
		crcFrame(),
	}
	for _, f := range funcs {
		if err := p.AddFunction(f); err != nil {
			return nil, err
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// ctrl_main: the unit of analysis between ipoints 1 and 2 (§V).
func ctrlMain() *prog.Function {
	return prog.NewFunc("ctrl_main", prog.MinFrame).
		Prologue().
		IPoint(1).
		Call("dma_copy").
		Call("validate_frame").
		Call("wavefront_filter").
		Call("influence_matmul").
		Call("pid_update").
		// Mid-cycle housekeeping slot: the EDAC scrub pass runs between
		// the predictor (influence_matmul) and the corrector
		// (predict_wavefront). In the baseline link map the scrub
		// window's direct-mapped L2 shadow covers the influence matrix,
		// so the corrector re-fetches it from memory every cycle — the
		// paper's rare bad L2 layout, which DSR escapes on most runs.
		Call("edac_scrub").
		Call("predict_wavefront").
		Call("limit_quantize").
		Call("parse_uplink").
		Call("build_telemetry").
		Call("history_update").
		Call("crc_frame"). // result lands in %o0
		IPoint(2).
		Halt().
		MustBuild()
}

// dma_copy: move the raw sensor DMA buffer into the working frame with a
// rotate-xor checksum — the integer-heavy interface work of the task.
// The running checksum is kept in a stack local so the loop also
// exercises the (randomised) stack frame.
func dmaCopy() *prog.Function {
	b := prog.NewFunc("dma_copy", prog.MinFrame+16)
	b.Prologue().
		Set(isa.L0, SymSensorRaw).
		Set(isa.L1, SymSensorFrame).
		MovI(isa.L2, 0). // z
		MovI(isa.L3, 0).
		St(isa.L3, isa.SP, prog.LocalBase). // checksum lives on the stack
		Label("loop").
		SllI(isa.L4, isa.L2, 2).
		Add(isa.L5, isa.L0, isa.L4).
		Ld(isa.L6, isa.L5, 16*4). // raw[16+z]
		Add(isa.L5, isa.L1, isa.L4).
		St(isa.L6, isa.L5, 0). // frame[z]
		Ld(isa.L3, isa.SP, prog.LocalBase).
		SllI(isa.L7, isa.L3, 1).
		SrlI(isa.G1, isa.L3, 31).
		Op3(isa.Or, isa.L7, isa.L7, isa.G1). // rotl(checksum, 1)
		Op3(isa.Xor, isa.L3, isa.L7, isa.L6).
		St(isa.L3, isa.SP, prog.LocalBase).
		AddI(isa.L2, isa.L2, 1).
		CmpI(isa.L2, NumZones).
		Bl("loop").
		Set(isa.L0, SymHK).
		St(isa.L3, isa.L0, hkChecksum*4).
		Epilogue()
	return b.MustBuild()
}

// validate_frame: clamp out-of-window wavefront errors by substituting
// the last good value (robustness to sensor misbehaviour, §IV).
func validateFrame() *prog.Function {
	b := prog.NewFunc("validate_frame", prog.MinFrame)
	b.Prologue().
		Set(isa.L0, SymSensorFrame).
		Set(isa.L1, SymLastGood).
		Set(isa.L2, SymCoeffs).
		FLd(2, isa.L2, cfPosLimit*4).
		FLd(3, isa.L2, cfNegLimit*4).
		MovI(isa.L3, 0). // z
		Label("loop").
		SllI(isa.L4, isa.L3, 2).
		Add(isa.L5, isa.L0, isa.L4).
		Add(isa.L6, isa.L1, isa.L4).
		FLd(0, isa.L5, 0). // f0 = frame[z]
		Fcmp(0, 0).
		Fbne("bad"). // f0 != f0: NaN (fbne is taken on unordered)
		Fcmp(0, 2).
		Fbg("bad"). // f0 > +limit
		Fcmp(0, 3).
		Fbl("bad").        // f0 < -limit
		FSt(0, isa.L6, 0). // last_good[z] = f0
		Ba("next").
		Label("bad").
		FLd(0, isa.L6, 0). // f0 = last_good[z]
		FSt(0, isa.L5, 0). // frame[z] = f0
		Label("next").
		AddI(isa.L3, isa.L3, 1).
		CmpI(isa.L3, NumZones).
		Bl("loop").
		Epilogue()
	return b.MustBuild()
}

// wavefront_filter: first-order IIR smoothing per zone.
func wavefrontFilter() *prog.Function {
	b := prog.NewFunc("wavefront_filter", prog.MinFrame)
	b.Prologue().
		Set(isa.L0, SymFilterState).
		Set(isa.L1, SymSensorFrame).
		Set(isa.L2, SymCoeffs).
		FLd(4, isa.L2, cfFilterA*4).
		FLd(5, isa.L2, cfFilterB*4).
		MovI(isa.L3, 0).
		Label("loop").
		SllI(isa.L4, isa.L3, 2).
		Add(isa.L5, isa.L0, isa.L4).
		Add(isa.L6, isa.L1, isa.L4).
		FLd(0, isa.L5, 0). // state
		FLd(1, isa.L6, 0). // frame
		Fmul(0, 0, 4).     // A*state
		Fmul(1, 1, 5).     // B*frame
		Fadd(0, 0, 1).
		FSt(0, isa.L5, 0).
		AddI(isa.L3, isa.L3, 1).
		CmpI(isa.L3, NumZones).
		Bl("loop").
		Epilogue()
	return b.MustBuild()
}

// influence_matmul: commands = influence-matrix × filtered wavefront,
// the FP- and memory-intensive core of the control law.
func influenceMatmul() *prog.Function {
	b := prog.NewFunc("influence_matmul", prog.MinFrame)
	b.Prologue().
		Set(isa.L0, SymInfluence).
		Set(isa.L1, SymFilterState).
		Set(isa.L2, SymCmdF).
		Set(isa.L3, SymCoeffs).
		MovI(isa.L4, 0). // a
		Label("rows").
		FLd(0, isa.L3, cfZero*4). // acc = 0.0
		MovI(isa.L5, 0).          // z
		MulI(isa.L6, isa.L4, NumZones*4).
		Add(isa.L6, isa.L0, isa.L6). // row base
		Label("cols").
		SllI(isa.L7, isa.L5, 2).
		Add(isa.G1, isa.L6, isa.L7).
		FLd(1, isa.G1, 0). // M[a][z]
		Add(isa.G1, isa.L1, isa.L7).
		FLd(2, isa.G1, 0). // state[z]
		Fmul(1, 1, 2).
		Fadd(0, 0, 1).
		AddI(isa.L5, isa.L5, 1).
		CmpI(isa.L5, NumZones).
		Bl("cols").
		SllI(isa.L7, isa.L4, 2).
		Add(isa.G1, isa.L2, isa.L7).
		FSt(0, isa.G1, 0). // cmd_f[a]
		AddI(isa.L4, isa.L4, 1).
		CmpI(isa.L4, NumActuators).
		Bl("rows").
		Epilogue()
	return b.MustBuild()
}

// pid_update: leaky-integral PI regulator per actuator.
func pidUpdate() *prog.Function {
	b := prog.NewFunc("pid_update", prog.MinFrame)
	b.Prologue().
		Set(isa.L0, SymCmdF).
		Set(isa.L1, SymInteg).
		Set(isa.L2, SymOutF).
		Set(isa.L3, SymCoeffs).
		FLd(4, isa.L3, cfKp*4).
		FLd(5, isa.L3, cfKi*4).
		FLd(6, isa.L3, cfILeak*4).
		MovI(isa.L4, 0).
		Label("loop").
		SllI(isa.L5, isa.L4, 2).
		Add(isa.L6, isa.L0, isa.L5).
		FLd(0, isa.L6, 0). // e = cmd_f[a]
		Add(isa.L6, isa.L1, isa.L5).
		FLd(1, isa.L6, 0). // integ[a]
		Fmul(2, 0, 6).     // ileak*e
		Fadd(1, 1, 2).
		FSt(1, isa.L6, 0). // integ[a] updated
		Fmul(3, 0, 4).     // kp*e
		Fmul(2, 1, 5).     // ki*integ
		Fadd(3, 3, 2).
		Add(isa.L6, isa.L2, isa.L5).
		FSt(3, isa.L6, 0). // out_f[a]
		AddI(isa.L4, isa.L4, 1).
		CmpI(isa.L4, NumActuators).
		Bl("loop").
		Epilogue()
	return b.MustBuild()
}

// limit_quantize: saturate commands and convert to fixed point.
func limitQuantize() *prog.Function {
	b := prog.NewFunc("limit_quantize", prog.MinFrame)
	b.Prologue().
		Set(isa.L0, SymOutF).
		Set(isa.L1, SymCmdI).
		Set(isa.L2, SymCoeffs).
		FLd(4, isa.L2, cfPosCmd*4).
		FLd(5, isa.L2, cfNegCmd*4).
		FLd(6, isa.L2, cfQuant*4).
		FLd(7, isa.L2, cfZero*4).
		MovI(isa.L3, 0).
		Label("loop").
		SllI(isa.L4, isa.L3, 2).
		Add(isa.L5, isa.L0, isa.L4).
		FLd(0, isa.L5, 0).
		Fcmp(0, 4).
		Fbl("nothigh").
		Fadd(0, 4, 7). // f0 = +limit
		Label("nothigh").
		Fcmp(0, 5).
		Fbg("notlow").
		Fadd(0, 5, 7). // f0 = -limit
		Label("notlow").
		Fmul(0, 0, 6). // scale
		Fstoi(1, 0).
		Add(isa.L5, isa.L1, isa.L4).
		FSt(1, isa.L5, 0). // cmd_i[a] (integer bits)
		AddI(isa.L3, isa.L3, 1).
		CmpI(isa.L3, NumActuators).
		Bl("loop").
		Epilogue()
	return b.MustBuild()
}

// parse_uplink: scan the spacecraft command mailbox, dispatching on the
// opcode nibble — the branch-heavy interface work.
func parseUplink() *prog.Function {
	b := prog.NewFunc("parse_uplink", prog.MinFrame)
	b.Prologue().
		Set(isa.L0, SymMailbox).
		Set(isa.L1, SymHK).
		MovI(isa.L2, 0). // i
		Label("loop").
		SllI(isa.L3, isa.L2, 2).
		Add(isa.L4, isa.L0, isa.L3).
		Ld(isa.L5, isa.L4, 0). // w = mailbox[i]
		SrlI(isa.L6, isa.L5, 28).
		AndI(isa.L6, isa.L6, 0xF). // opcode
		CmpI(isa.L6, 1).
		Bne("not1").
		Ld(isa.L7, isa.L1, hkOpPing*4).
		AddI(isa.L7, isa.L7, 1).
		St(isa.L7, isa.L1, hkOpPing*4).
		Ba("next").
		Label("not1").
		CmpI(isa.L6, 2).
		Bne("not2").
		Ld(isa.O0, isa.L1, hkOpLoad*4).
		AndI(isa.O1, isa.L5, 0xFFFF).
		Call("sat24_add").
		St(isa.O0, isa.L1, hkOpLoad*4).
		Ba("next").
		Label("not2").
		CmpI(isa.L6, 3).
		Bne("not3").
		Ld(isa.L7, isa.L1, hkOpXor*4).
		Op3(isa.Xor, isa.L7, isa.L7, isa.L5).
		St(isa.L7, isa.L1, hkOpXor*4).
		Ba("next").
		Label("not3").
		Ld(isa.L7, isa.L1, hkOpBad*4).
		AddI(isa.L7, isa.L7, 1).
		St(isa.L7, isa.L1, hkOpBad*4).
		Label("next").
		AddI(isa.L2, isa.L2, 1).
		CmpI(isa.L2, MailboxWords).
		Bl("loop").
		Epilogue()
	return b.MustBuild()
}

// sat24_add: leaf — saturating accumulate used by the load opcode.
func sat24Add() *prog.Function {
	b := prog.NewLeaf("sat24_add")
	b.Add(isa.O0, isa.O0, isa.O1).
		SetI(isa.G1, 0x00FFFFFF).
		Cmp(isa.O0, isa.G1).
		Ble("ok").
		Mov(isa.O0, isa.G1).
		Label("ok").
		RetLeaf()
	return b.MustBuild()
}

// edac_scrub: xor-fold signature over the scrub window — the periodic
// memory-integrity pass of on-board software, and the control task's
// main integer/memory load besides the interface handling.
func edacScrub() *prog.Function {
	b := prog.NewFunc("edac_scrub", prog.MinFrame)
	b.Prologue().
		Set(isa.L0, SymScrub).
		MovI(isa.L1, 0). // i
		MovI(isa.L2, 0). // signature
		Label("loop").
		SllI(isa.L3, isa.L1, 2).
		Add(isa.L4, isa.L0, isa.L3).
		Ld(isa.L5, isa.L4, 0).
		Op3(isa.Xor, isa.L2, isa.L2, isa.L5).
		SrlI(isa.L6, isa.L2, 13).
		Op3(isa.Xor, isa.L2, isa.L2, isa.L6).
		AddI(isa.L1, isa.L1, 1).
		CmpI(isa.L1, ScrubWords).
		Bl("loop").
		Set(isa.L0, SymHK).
		St(isa.L2, isa.L0, hkScrubSig*4).
		Epilogue()
	return b.MustBuild()
}

// history_update: copy the telemetry frame into the history ring (slot
// selected by the frame checksum) and CRC the whole ring; the ring CRC
// replaces the first fill word of the frame.
func historyUpdate() *prog.Function {
	b := prog.NewFunc("history_update", prog.MinFrame+16)
	b.Prologue().
		Set(isa.L0, SymTelemetry).
		Set(isa.L1, SymHistory).
		Set(isa.L2, SymHK).
		Ld(isa.L3, isa.L2, hkChecksum*4).
		AndI(isa.L3, isa.L3, HistorySlots-1).
		MulI(isa.L3, isa.L3, FrameWords*4).
		Add(isa.L3, isa.L1, isa.L3). // slot base
		MovI(isa.L4, 0).
		Label("copy").
		SllI(isa.L5, isa.L4, 2).
		Add(isa.L6, isa.L0, isa.L5).
		Ld(isa.L7, isa.L6, 0).
		Add(isa.L6, isa.L3, isa.L5).
		St(isa.L7, isa.L6, 0).
		AddI(isa.L4, isa.L4, 1).
		CmpI(isa.L4, FrameWords).
		Bl("copy").
		// CRC over the full ring.
		Set(isa.L2, SymCRCTable).
		SetI(isa.L4, -1). // crc
		MovI(isa.L5, 0).  // byte index
		St(isa.L4, isa.SP, prog.LocalBase).
		Label("crc").
		Add(isa.L6, isa.L1, isa.L5).
		Ldub(isa.L7, isa.L6, 0).
		Ld(isa.L4, isa.SP, prog.LocalBase).
		SrlI(isa.G1, isa.L4, 24).
		Op3(isa.Xor, isa.G1, isa.G1, isa.L7).
		AndI(isa.G1, isa.G1, 0xFF).
		SllI(isa.G1, isa.G1, 2).
		Add(isa.G2, isa.L2, isa.G1).
		Ld(isa.G2, isa.G2, 0).
		SllI(isa.L4, isa.L4, 8).
		Op3(isa.Xor, isa.L4, isa.L4, isa.G2).
		St(isa.L4, isa.SP, prog.LocalBase).
		AddI(isa.L5, isa.L5, 1).
		CmpI(isa.L5, HistorySlots*FrameWords*4).
		Bl("crc").
		St(isa.L4, isa.L0, 32*4). // frame[32] = ring CRC
		Epilogue()
	return b.MustBuild()
}

// predict_wavefront: the corrector pass — reconstruct the wavefront the
// commanded actuators would produce (transposed influence product) and
// accumulate the squared residual against the filtered estimate. The
// transposed walk re-reads the whole influence matrix with a large
// stride, so its timing depends on what survived in the L2 across the
// scrub pass.
func predictWavefront() *prog.Function {
	b := prog.NewFunc("predict_wavefront", prog.MinFrame+16)
	b.Prologue().
		Set(isa.L0, SymInfluence).
		Set(isa.L1, SymOutF).
		Set(isa.L2, SymFilterState).
		Set(isa.L3, SymCoeffs).
		FLd(7, isa.L3, cfZero*4).
		Fmul(6, 7, 7). // residual accumulator = 0
		Set(isa.L4, SymPredicted).
		MovI(isa.L5, 0). // z
		Label("zloop").
		Fmul(0, 7, 7).   // acc = 0
		MovI(isa.L6, 0). // a
		Label("aloop").
		MulI(isa.G1, isa.L6, NumZones*4).
		SllI(isa.G2, isa.L5, 2).
		Add(isa.G1, isa.G1, isa.G2).
		Add(isa.G1, isa.L0, isa.G1).
		FLd(1, isa.G1, 0). // M[a][z]
		SllI(isa.G2, isa.L6, 2).
		Add(isa.G2, isa.L1, isa.G2).
		FLd(2, isa.G2, 0). // out_f[a]
		Fmul(1, 1, 2).
		Fadd(0, 0, 1).
		AddI(isa.L6, isa.L6, 1).
		CmpI(isa.L6, NumActuators).
		Bl("aloop").
		SllI(isa.G2, isa.L5, 2).
		Add(isa.G1, isa.L4, isa.G2).
		FSt(0, isa.G1, 0). // predicted[z]
		Add(isa.G1, isa.L2, isa.G2).
		FLd(3, isa.G1, 0). // state[z]
		Fsub(3, 3, 0).
		Fmul(3, 3, 3).
		Fadd(6, 6, 3). // residual accumulation
		AddI(isa.L5, isa.L5, 1).
		CmpI(isa.L5, NumZones).
		Bl("zloop").
		FSt(6, isa.SP, prog.LocalBase).
		Ld(isa.L7, isa.SP, prog.LocalBase).
		Set(isa.L0, SymHK).
		St(isa.L7, isa.L0, hkResidual*4).
		Epilogue()
	return b.MustBuild()
}

// build_telemetry: pack the downlink frame (header, commands,
// housekeeping, strided state snapshot, fill pattern).
func buildTelemetry() *prog.Function {
	b := prog.NewFunc("build_telemetry", prog.MinFrame)
	b.Prologue().
		Set(isa.L0, SymTelemetry).
		SetI(isa.L1, TelemetryMagic).
		St(isa.L1, isa.L0, 0).
		// commands
		Set(isa.L2, SymCmdI).
		MovI(isa.L3, 0).
		Label("cmds").
		SllI(isa.L4, isa.L3, 2).
		Add(isa.L5, isa.L2, isa.L4).
		Ld(isa.L6, isa.L5, 0).
		Add(isa.L5, isa.L0, isa.L4).
		St(isa.L6, isa.L5, 4). // frame[1+a]
		AddI(isa.L3, isa.L3, 1).
		CmpI(isa.L3, NumActuators).
		Bl("cmds").
		// housekeeping words 0,4,5,6,7 → frame[9..13]
		Set(isa.L2, SymHK).
		Ld(isa.L6, isa.L2, hkChecksum*4).
		St(isa.L6, isa.L0, 9*4).
		Ld(isa.L6, isa.L2, hkOpPing*4).
		St(isa.L6, isa.L0, 10*4).
		Ld(isa.L6, isa.L2, hkOpLoad*4).
		St(isa.L6, isa.L0, 11*4).
		Ld(isa.L6, isa.L2, hkOpXor*4).
		St(isa.L6, isa.L0, 12*4).
		Ld(isa.L6, isa.L2, hkOpBad*4).
		St(isa.L6, isa.L0, 13*4).
		MovI(isa.L6, NumZones).
		St(isa.L6, isa.L0, 14*4).
		MovI(isa.L6, NumActuators).
		St(isa.L6, isa.L0, 15*4).
		// strided filter-state snapshot → frame[16..31]
		Set(isa.L2, SymFilterState).
		MovI(isa.L3, 0).
		Label("snap").
		MulI(isa.L4, isa.L3, 9*4). // zone j*9
		Add(isa.L5, isa.L2, isa.L4).
		Ld(isa.L6, isa.L5, 0).
		AddI(isa.L4, isa.L3, 16).
		SllI(isa.L4, isa.L4, 2).
		Add(isa.L5, isa.L0, isa.L4).
		St(isa.L6, isa.L5, 0).
		AddI(isa.L3, isa.L3, 1).
		CmpI(isa.L3, 16).
		Bl("snap").
		// fill pattern → frame[32..63]
		MovI(isa.L3, 32).
		Label("fill").
		MulI(isa.L6, isa.L3, 40503).
		Op3(isa.Xor, isa.L6, isa.L6, isa.L1).
		SllI(isa.L4, isa.L3, 2).
		Add(isa.L5, isa.L0, isa.L4).
		St(isa.L6, isa.L5, 0).
		AddI(isa.L3, isa.L3, 1).
		CmpI(isa.L3, FrameWords).
		Bl("fill").
		// scrub signature and residual → frame[33]/frame[34] (after fill)
		Set(isa.L2, SymHK).
		Ld(isa.L6, isa.L2, hkScrubSig*4).
		St(isa.L6, isa.L0, 33*4).
		Ld(isa.L6, isa.L2, hkResidual*4).
		St(isa.L6, isa.L0, 34*4).
		Epilogue()
	return b.MustBuild()
}

// crc_frame: byte-wise table-driven CRC-32 over the telemetry frame;
// the result (returned in %i0 → caller's %o0) is the run's observable.
func crcFrame() *prog.Function {
	b := prog.NewFunc("crc_frame", prog.MinFrame+16)
	b.Prologue().
		Set(isa.L0, SymTelemetry).
		Set(isa.L1, SymCRCTable).
		SetI(isa.L2, -1). // crc = 0xFFFFFFFF
		MovI(isa.L3, 0).  // byte index
		St(isa.L2, isa.SP, prog.LocalBase).
		Label("loop").
		Add(isa.L4, isa.L0, isa.L3).
		Ldub(isa.L5, isa.L4, 0).
		Ld(isa.L2, isa.SP, prog.LocalBase).
		SrlI(isa.L6, isa.L2, 24).
		Op3(isa.Xor, isa.L6, isa.L6, isa.L5).
		AndI(isa.L6, isa.L6, 0xFF).
		SllI(isa.L6, isa.L6, 2).
		Add(isa.L7, isa.L1, isa.L6).
		Ld(isa.L7, isa.L7, 0).
		SllI(isa.L2, isa.L2, 8).
		Op3(isa.Xor, isa.L2, isa.L2, isa.L7).
		St(isa.L2, isa.SP, prog.LocalBase).
		AddI(isa.L3, isa.L3, 1).
		CmpI(isa.L3, FrameWords*4).
		Bl("loop").
		Mov(isa.I0, isa.L2).
		Epilogue()
	return b.MustBuild()
}
