package spaceapp

import (
	"fmt"
	"math"

	"dsr/internal/cpu"
	"dsr/internal/loader"
	"dsr/internal/mem"
	"dsr/internal/prng"
)

// ControlInput is one activation's input vector for the control task:
// the raw sensor DMA buffer and the spacecraft uplink mailbox.
type ControlInput struct {
	Raw     []uint32 // RawWords: 16 header words + NumZones wfe floats
	Mailbox []uint32 // MailboxWords command words
}

// GenControlInput synthesises a plausible input: wavefront errors mostly
// inside the ±50 validation window with ~2% outliers (exercising the
// substitution path), and a mailbox with a mix of known and unknown
// opcodes. The same seed always yields the same input.
func GenControlInput(seed uint64) *ControlInput {
	src := prng.NewMWC(seed ^ 0x5EA5)
	in := &ControlInput{
		Raw:     make([]uint32, RawWords),
		Mailbox: make([]uint32, MailboxWords),
	}
	for i := 0; i < 16; i++ {
		in.Raw[i] = src.Uint32()
	}
	for z := 0; z < NumZones; z++ {
		v := float32(prng.Float64(src)*40 - 20) // nominal ±20
		if prng.Float64(src) < 0.02 {
			v *= 5 // occasional out-of-window outlier
		}
		in.Raw[16+z] = math.Float32bits(v)
	}
	for i := range in.Mailbox {
		w := src.Uint32()
		op := uint32(prng.Intn(src, 6)) // opcodes 0..5; 1-3 are known
		in.Mailbox[i] = w&0x0FFFFFFF | op<<28
	}
	return in
}

// ApplyControlInput pokes the input into the loaded image's buffers
// (the DMA delivery of fresh sensor data before an activation).
func ApplyControlInput(m *cpu.Memory, img *loader.Image, in *ControlInput) error {
	raw, ok := img.Symbols[SymSensorRaw]
	if !ok {
		return fmt.Errorf("spaceapp: image has no %s", SymSensorRaw)
	}
	mb, ok := img.Symbols[SymMailbox]
	if !ok {
		return fmt.Errorf("spaceapp: image has no %s", SymMailbox)
	}
	for i, w := range in.Raw {
		m.StoreWord(raw+mem.Addr(i)*4, w)
	}
	for i, w := range in.Mailbox {
		m.StoreWord(mb+mem.Addr(i)*4, w)
	}
	return nil
}

// Scene is one activation's input for the image-processing task: the
// 12×12 lens array, 34×34 pixels each, row-major by lens then pixel.
type Scene struct {
	Pixels []byte // NumLenses * PixelsPerLens
	// Lit is how many lenses the generator made bright (informative).
	Lit int
}

// GenScene synthesises a lens array in which litFrac of the lenses are
// brightly illuminated (a Gaussian-ish spot) and the rest are dim noise.
// The paper's inputs light around 70% of the lenses.
func GenScene(seed uint64, litFrac float64) *Scene {
	src := prng.NewMWC(seed ^ 0xC0DE)
	s := &Scene{Pixels: make([]byte, NumLenses*PixelsPerLens)}
	for l := 0; l < NumLenses; l++ {
		lit := prng.Float64(src) < litFrac
		if lit {
			s.Lit++
		}
		// Spot centre, slightly offset per lens (the wavefront slope).
		cx := float64(LensPixels)/2 + prng.Float64(src)*6 - 3
		cy := float64(LensPixels)/2 + prng.Float64(src)*6 - 3
		base := l * PixelsPerLens
		for y := 0; y < LensPixels; y++ {
			for x := 0; x < LensPixels; x++ {
				var v float64
				if lit {
					dx := float64(x) - cx
					dy := float64(y) - cy
					v = 230 * math.Exp(-(dx*dx+dy*dy)/60)
					v += prng.Float64(src) * 25
				} else {
					v = prng.Float64(src) * 30
				}
				if v > 255 {
					v = 255
				}
				s.Pixels[base+y*LensPixels+x] = byte(v)
			}
		}
	}
	return s
}

// ApplyScene pokes the lens images into the processing task's buffer.
func ApplyScene(m *cpu.Memory, img *loader.Image, s *Scene) error {
	base, ok := img.Symbols[SymScene]
	if !ok {
		return fmt.Errorf("spaceapp: image has no %s", SymScene)
	}
	// Pack bytes big-endian into words, as the target stores them.
	for i := 0; i+3 < len(s.Pixels); i += 4 {
		w := uint32(s.Pixels[i])<<24 | uint32(s.Pixels[i+1])<<16 |
			uint32(s.Pixels[i+2])<<8 | uint32(s.Pixels[i+3])
		m.StoreWord(base+mem.Addr(i), w)
	}
	return nil
}
