package spaceapp

import (
	"math"
	"testing"
	"testing/quick"

	"dsr/internal/core"
	"dsr/internal/loader"
	"dsr/internal/mem"
	"dsr/internal/platform"
	"dsr/internal/prng"
)

func loadControl(t testing.TB) (*platform.Platform, *loader.Image) {
	t.Helper()
	p, err := BuildControl()
	if err != nil {
		t.Fatal(err)
	}
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	plat := platform.New(platform.ProximaLEON3())
	plat.LoadImage(img)
	return plat, img
}

func TestControlMatchesGoldenModel(t *testing.T) {
	plat, img := loadControl(t)
	for seed := uint64(1); seed <= 10; seed++ {
		in := GenControlInput(seed)
		plat.Reload()
		if err := ApplyControlInput(plat.Mem, img, in); err != nil {
			t.Fatal(err)
		}
		res, err := plat.Run()
		if err != nil {
			t.Fatal(err)
		}
		want := ControlReference(in)
		if res.ExitValue != want {
			t.Fatalf("seed %d: CRC=%#x, golden=%#x", seed, res.ExitValue, want)
		}
	}
}

func TestControlCharacteristics(t *testing.T) {
	plat, img := loadControl(t)
	in := GenControlInput(1)
	plat.Reload()
	if err := ApplyControlInput(plat.Mem, img, in); err != nil {
		t.Fatal(err)
	}
	res, err := plat.Run()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("control task: instr=%d fpu=%d (%.1f%%) icmiss=%d dcmiss=%d l2miss=%d cycles=%d",
		res.PMCs.Instr, res.PMCs.FPU, 100*float64(res.PMCs.FPU)/float64(res.PMCs.Instr),
		res.PMCs.ICMiss, res.PMCs.DCMiss, res.PMCs.L2Miss, res.Cycles)
	// Shape guards, mirroring Table I's qualitative profile: a task of
	// tens of thousands of instructions with a small FP share.
	if res.PMCs.Instr < 10_000 || res.PMCs.Instr > 500_000 {
		t.Errorf("instr=%d out of expected band", res.PMCs.Instr)
	}
	frac := float64(res.PMCs.FPU) / float64(res.PMCs.Instr)
	if frac <= 0 || frac > 0.25 {
		t.Errorf("FPU fraction=%.2f out of band", frac)
	}
	if res.PMCs.DCMiss == 0 || res.PMCs.ICMiss == 0 || res.PMCs.L2Miss == 0 {
		t.Error("cache counters silent")
	}
	// Two instrumentation points delimit the UoA.
	if len(res.Trace) != 2 || res.Trace[0].ID != 1 || res.Trace[1].ID != 2 {
		t.Errorf("trace=%v", res.Trace)
	}
}

func TestControlInputVariationChangesTiming(t *testing.T) {
	plat, img := loadControl(t)
	distinct := map[mem.Cycles]bool{}
	for seed := uint64(1); seed <= 8; seed++ {
		in := GenControlInput(seed)
		plat.Reload()
		if err := ApplyControlInput(plat.Mem, img, in); err != nil {
			t.Fatal(err)
		}
		res, err := plat.Run()
		if err != nil {
			t.Fatal(err)
		}
		distinct[res.Cycles] = true
	}
	if len(distinct) < 2 {
		t.Error("input variation produced no timing variation (hlsoj missing)")
	}
}

func TestControlUnderDSRMatchesGolden(t *testing.T) {
	p, err := BuildControl()
	if err != nil {
		t.Fatal(err)
	}
	plat := platform.New(platform.ProximaLEON3())
	rt, err := core.NewRuntime(p, plat, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 8; seed++ {
		if _, err := rt.Reboot(seed); err != nil {
			t.Fatal(err)
		}
		in := GenControlInput(seed * 77)
		if err := ApplyControlInput(plat.Mem, rt.Image(), in); err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.ExitValue != ControlReference(in) {
			t.Fatalf("seed %d: DSR broke the control law: %#x vs %#x",
				seed, res.ExitValue, ControlReference(in))
		}
	}
}

func TestControlUnderStaticRandMatchesGolden(t *testing.T) {
	p, err := BuildControl()
	if err != nil {
		t.Fatal(err)
	}
	in := GenControlInput(3)
	want := ControlReference(in)
	for seed := uint64(1); seed <= 4; seed++ {
		img, err := core.StaticBuild(p, loader.DefaultSequentialConfig(), 32*1024, seed)
		if err != nil {
			t.Fatal(err)
		}
		plat := platform.New(platform.ProximaLEON3())
		plat.LoadImage(img)
		if err := ApplyControlInput(plat.Mem, img, in); err != nil {
			t.Fatal(err)
		}
		res, err := plat.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.ExitValue != want {
			t.Fatalf("static seed %d: %#x vs %#x", seed, res.ExitValue, want)
		}
	}
}

func TestGenControlInputShape(t *testing.T) {
	in := GenControlInput(5)
	if len(in.Raw) != RawWords || len(in.Mailbox) != MailboxWords {
		t.Fatal("input sizes")
	}
	outliers := 0
	for z := 0; z < NumZones; z++ {
		v := math.Float32frombits(in.Raw[16+z])
		if v > coefWFELimit || v < -coefWFELimit {
			outliers++
		}
		if math.IsNaN(float64(v)) || v > 500 || v < -500 {
			t.Fatalf("wfe[%d]=%f implausible", z, v)
		}
	}
	if outliers == 0 {
		t.Error("no validation outliers in the input (substitution path dead)")
	}
	// Determinism.
	in2 := GenControlInput(5)
	for i := range in.Raw {
		if in.Raw[i] != in2.Raw[i] {
			t.Fatal("input generation not deterministic")
		}
	}
}

func TestCRCTableSpotValues(t *testing.T) {
	tab := CRCTable()
	if tab[0] != 0 {
		t.Errorf("table[0]=%#x", tab[0])
	}
	if tab[1] != crcPoly {
		t.Errorf("table[1]=%#x, want %#x", tab[1], uint32(crcPoly))
	}
	if len(tab) != 256 {
		t.Error("table size")
	}
}

func TestGenSceneLitFraction(t *testing.T) {
	s := GenScene(1, LitFraction)
	if len(s.Pixels) != NumLenses*PixelsPerLens {
		t.Fatal("scene size")
	}
	if s.Lit < NumLenses/2 || s.Lit > NumLenses {
		t.Errorf("lit lenses=%d, want around %.0f", s.Lit, LitFraction*NumLenses)
	}
	// Golden model should agree closely with the generator's intent.
	ref := ProcessingReference(s)
	diff := ref.Lit - s.Lit
	if diff < -NumLenses/10 || diff > NumLenses/10 {
		t.Errorf("threshold classifies %d lit, generator made %d", ref.Lit, s.Lit)
	}
}

func TestProcessingMatchesGoldenModel(t *testing.T) {
	p, err := BuildProcessing()
	if err != nil {
		t.Fatal(err)
	}
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	plat := platform.New(platform.ProximaLEON3())
	plat.LoadImage(img)
	s := GenScene(7, LitFraction)
	if err := ApplyScene(plat.Mem, img, s); err != nil {
		t.Fatal(err)
	}
	res, err := plat.Run()
	if err != nil {
		t.Fatal(err)
	}
	ref := ProcessingReference(s)
	if res.ExitValue != ref.RMSBits {
		t.Fatalf("RMS bits=%#x (%f), golden=%#x (%f)",
			res.ExitValue, math.Float32frombits(res.ExitValue),
			ref.RMSBits, math.Float32frombits(ref.RMSBits))
	}
	// Cross-check the per-lens flags in memory.
	flagBase := img.Symbols[SymLensFlags]
	for l := 0; l < NumLenses; l++ {
		got := plat.Mem.LoadWord(flagBase+mem.Addr(l)*4) != 0
		if got != ref.Flags[l] {
			t.Fatalf("lens %d flag=%v, golden=%v", l, got, ref.Flags[l])
		}
	}
	rms := math.Float32frombits(res.ExitValue)
	if rms <= 0 || rms > float32(FineWindow) {
		t.Errorf("RMS=%f implausible", rms)
	}
	t.Logf("processing: instr=%d fpu=%d lit=%d rms=%f cycles=%d",
		res.PMCs.Instr, res.PMCs.FPU, ref.Lit, rms, res.Cycles)
}

func TestProcessingInputDependence(t *testing.T) {
	// The lit-lens count varies with the input, so execution time must
	// vary too — the paper's high-level source of jitter.
	p, err := BuildProcessing()
	if err != nil {
		t.Fatal(err)
	}
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatal(err)
	}
	plat := platform.New(platform.ProximaLEON3())
	plat.LoadImage(img)
	var c1, c2 mem.Cycles
	for i, litFrac := range []float64{0.4, 0.9} {
		s := GenScene(uint64(i)+10, litFrac)
		plat.Reload()
		if err := ApplyScene(plat.Mem, img, s); err != nil {
			t.Fatal(err)
		}
		res, err := plat.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.ExitValue != ProcessingReference(s).RMSBits {
			t.Fatal("golden mismatch")
		}
		if i == 0 {
			c1 = res.Cycles
		} else {
			c2 = res.Cycles
		}
	}
	if c2 <= c1 {
		t.Errorf("more lit lenses not slower: %d vs %d", c1, c2)
	}
}

func TestProcessingUnderDSRMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("processing under DSR is slow")
	}
	p, err := BuildProcessing()
	if err != nil {
		t.Fatal(err)
	}
	plat := platform.New(platform.ProximaLEON3())
	rt, err := core.NewRuntime(p, plat, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := GenScene(3, LitFraction)
	ref := ProcessingReference(s)
	for seed := uint64(1); seed <= 2; seed++ {
		if _, err := rt.Reboot(seed); err != nil {
			t.Fatal(err)
		}
		if err := ApplyScene(plat.Mem, rt.Image(), s); err != nil {
			t.Fatal(err)
		}
		res, err := rt.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.ExitValue != ref.RMSBits {
			t.Fatalf("seed %d: DSR broke processing: %#x vs %#x", seed, res.ExitValue, ref.RMSBits)
		}
	}
}

// Property: the simulated control task matches the golden model for
// ARBITRARY input words — including bit patterns that decode to NaN,
// infinities or denormals in the sensor frame and hostile opcodes in
// the mailbox. This pins the simulator's FP and integer semantics to
// the reference on the whole input space, not just plausible inputs.
func TestControlMatchesGoldenOnArbitraryInputs(t *testing.T) {
	plat, img := loadControl(t)
	f := func(seed uint64) bool {
		src := prng.NewMWC(seed)
		in := &ControlInput{
			Raw:     make([]uint32, RawWords),
			Mailbox: make([]uint32, MailboxWords),
		}
		for i := range in.Raw {
			in.Raw[i] = src.Uint32()
		}
		for i := range in.Mailbox {
			in.Mailbox[i] = src.Uint32()
		}
		plat.Reload()
		if err := ApplyControlInput(plat.Mem, img, in); err != nil {
			t.Fatal(err)
		}
		res, err := plat.Run()
		if err != nil {
			t.Logf("seed %d: run error: %v", seed, err)
			return false
		}
		if want := ControlReference(in); res.ExitValue != want {
			t.Logf("seed %d: CRC %#x vs golden %#x", seed, res.ExitValue, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
