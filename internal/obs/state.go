// Package obs is the live-introspection layer of the campaign stack:
// an embeddable HTTP server (metrics, health, pprof, campaign snapshot,
// SSE event stream) over a thread-safe view of a running campaign.
//
// The design constraint is strict one-way observation: the campaign
// engine and its merge goroutine must never block on an observer.
// Campaign implements experiments.RunObserver; every mutation is a
// short critical section, SSE fan-out uses non-blocking sends (slow
// consumers lose deltas, never stall workers), and MBPTA tail fits run
// on the scraping goroutine against a copied sample — the merge
// goroutine only ever appends. Telemetry registry scrapes ride on the
// registry's own concurrency contract (per-metric-consistent
// snapshots), and span timelines on the tracer's. Enabling any of it
// cannot change campaign results; the determinism suite pins that.
package obs

import (
	"encoding/json"
	"sync"

	"dsr/internal/mbpta"
	"dsr/internal/telemetry"
)

// TailEstimate is the current MBPTA pWCET estimate over the merged
// runs so far.
type TailEstimate struct {
	Runs       int     `json:"runs"`
	MOET       float64 `json:"moet"`
	PWCET      float64 `json:"pwcet"`
	Exceedance float64 `json:"exceedance"`
}

// SeriesSummary records one finished series.
type SeriesSummary struct {
	Name  string        `json:"name"`
	Runs  int           `json:"runs"`
	MOET  float64       `json:"moet,omitempty"`
	PWCET *TailEstimate `json:"pwcet,omitempty"`
}

// Snapshot is the consistent live state served at /campaign and as
// every SSE frame. Seq increases with every published change, so a
// client that connects mid-campaign can order its snapshot against
// subsequent deltas.
type Snapshot struct {
	Seq     uint64  `json:"seq"`
	Series  string  `json:"series"`
	Done    int     `json:"done"`
	Total   int     `json:"total"`
	LastUoA float64 `json:"last_uoa,omitempty"`
	// PWCET is the most recent tail fit (possibly a few runs stale; a
	// /campaign scrape refreshes it when enough new runs arrived).
	PWCET *TailEstimate `json:"pwcet,omitempty"`
	// Workers is the live per-worker state from the span tracer.
	Workers  []telemetry.WorkerLive `json:"workers,omitempty"`
	Finished []SeriesSummary        `json:"finished,omitempty"`
	Ended    bool                   `json:"ended"`
	// DroppedDeltas counts SSE deltas dropped on slow consumers.
	DroppedDeltas uint64 `json:"dropped_deltas,omitempty"`
}

// Subscription is one attached SSE consumer. The channel returned by C
// carries marshalled Snapshot frames; it is never closed, so consumers
// select against their own cancellation signal.
type Subscription struct {
	ch chan []byte
}

// C returns the subscription's delta channel.
func (s *Subscription) C() <-chan []byte { return s.ch }

// subscriberBuffer is each SSE client's delta buffer; once full,
// further deltas are dropped for that client (never queued against the
// merge goroutine).
const subscriberBuffer = 64

// Campaign is the observable state of one running campaign. It
// implements experiments.RunObserver; wire it via Config.Observer and
// (optionally) hand the same Registry/Tracer to Serve.
type Campaign struct {
	registry *telemetry.Registry
	tracer   *telemetry.Tracer
	opts     mbpta.Options

	mu       sync.Mutex
	seq      uint64
	series   string
	done     int
	total    int
	lastUoA  float64
	times    []float64
	fit      *TailEstimate
	fitRuns  int // len(times) when fit was computed
	finished []SeriesSummary
	ended    bool
	drops    uint64
	subs     map[*Subscription]struct{}
}

// NewCampaign builds an observable campaign view. registry and tracer
// may be nil (the corresponding endpoints serve empty data); opts
// configures the live MBPTA tail fit (zero value selects defaults).
func NewCampaign(registry *telemetry.Registry, tracer *telemetry.Tracer, opts mbpta.Options) *Campaign {
	if opts.BlockSize <= 0 {
		opts = mbpta.DefaultOptions()
	}
	return &Campaign{
		registry: registry,
		tracer:   tracer,
		opts:     opts,
		subs:     map[*Subscription]struct{}{},
	}
}

// Registry returns the telemetry registry served at /metrics (may be
// nil).
func (c *Campaign) Registry() *telemetry.Registry { return c.registry }

// Tracer returns the span tracer feeding per-worker live state (may be
// nil).
func (c *Campaign) Tracer() *telemetry.Tracer { return c.tracer }

// BeginSeries implements experiments.RunObserver. Like every observer
// method it is a no-op on a nil receiver, so callers can wire an
// optional view without guarding each call site.
func (c *Campaign) BeginSeries(series string, total int) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.series, c.total, c.done = series, total, 0
	c.lastUoA = 0
	c.times = c.times[:0]
	c.fit, c.fitRuns = nil, 0
	c.publishLocked()
	c.mu.Unlock()
}

// ObserveRun implements experiments.RunObserver; called from the merge
// goroutine in canonical order.
func (c *Campaign) ObserveRun(series string, index int, uoa float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.done++
	c.lastUoA = uoa
	c.times = append(c.times, uoa)
	// Publish a delta roughly every 1% of the campaign (at least every
	// run for tiny campaigns) so SSE traffic stays bounded.
	stride := c.total / 100
	if stride < 1 {
		stride = 1
	}
	if c.done%stride == 0 || c.done == c.total {
		c.publishLocked()
	}
	c.mu.Unlock()
}

// EndSeries implements experiments.RunObserver.
func (c *Campaign) EndSeries(series string) {
	if c == nil {
		return
	}
	// Final tail fit for the series summary; runs on the merge goroutine
	// between series, where a millisecond fit is harmless.
	c.refreshFit()
	c.mu.Lock()
	sum := SeriesSummary{Name: series, Runs: c.done}
	if c.fit != nil {
		f := *c.fit
		sum.MOET, sum.PWCET = f.MOET, &f
	}
	c.finished = append(c.finished, sum)
	c.publishLocked()
	c.mu.Unlock()
}

// Done marks the whole campaign finished and publishes the terminal
// event; SSE clients see ended=true and can disconnect.
func (c *Campaign) Done() {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.ended = true
	c.publishLocked()
	c.mu.Unlock()
}

// fitStride is how many new runs make the cached tail fit stale.
func (c *Campaign) fitStride() int {
	s := c.total / 20
	if s < c.opts.BlockSize {
		s = c.opts.BlockSize
	}
	return s
}

// minFitRuns is the sample size the EVT pipeline needs before a tail
// fit is attempted: 10 block maxima (the evt fitter's floor, stricter
// than Analyse's own 4-block input check).
func (c *Campaign) minFitRuns() int {
	return 10 * c.opts.BlockSize
}

// refreshFit recomputes the cached tail estimate if enough new runs
// arrived. The fit runs against a copy of the sample with no locks
// held, so it may run on a scraping goroutine without ever blocking
// the merge.
func (c *Campaign) refreshFit() {
	c.mu.Lock()
	n := len(c.times)
	if n < c.minFitRuns() || (c.fit != nil && n-c.fitRuns < c.fitStride()) {
		c.mu.Unlock()
		return
	}
	sample := append([]float64(nil), c.times...)
	c.mu.Unlock()

	rep, err := mbpta.Analyse(sample, c.opts)
	if err != nil {
		return
	}
	est := &TailEstimate{
		Runs: len(sample), MOET: rep.MOET,
		PWCET: rep.PWCET, Exceedance: rep.TargetExceedance,
	}
	c.mu.Lock()
	// Keep the newer fit if a concurrent scrape won the race.
	if c.fit == nil || est.Runs > c.fitRuns {
		c.fit, c.fitRuns = est, est.Runs
		c.publishLocked()
	}
	c.mu.Unlock()
}

// snapshotLocked builds the current snapshot; c.mu must be held. The
// tracer read takes only the tracer's own locks (never c.mu), so the
// order c.mu → tracer.mu is deadlock-free.
func (c *Campaign) snapshotLocked() Snapshot {
	s := Snapshot{
		Seq: c.seq, Series: c.series, Done: c.done, Total: c.total,
		LastUoA: c.lastUoA, Ended: c.ended, DroppedDeltas: c.drops,
		Workers: c.tracer.LiveWorkers(),
	}
	if c.fit != nil {
		f := *c.fit
		s.PWCET = &f
	}
	if len(c.finished) > 0 {
		s.Finished = append([]SeriesSummary(nil), c.finished...)
	}
	return s
}

// Snapshot returns the live state, refreshing the tail fit when stale.
func (c *Campaign) Snapshot() Snapshot {
	c.refreshFit()
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.snapshotLocked()
}

// publishLocked bumps the sequence number and fans the new snapshot
// out to every subscriber without blocking: a subscriber whose buffer
// is full loses this delta (counted in DroppedDeltas). c.mu must be
// held.
func (c *Campaign) publishLocked() {
	c.seq++
	if len(c.subs) == 0 {
		return
	}
	frame, err := json.Marshal(c.snapshotLocked())
	if err != nil {
		return
	}
	for sub := range c.subs {
		select {
		case sub.ch <- frame:
		default:
			c.drops++
		}
	}
}

// Subscribe attaches an SSE consumer, returning its subscription and
// the snapshot current at attach time. The pair is taken atomically
// under the state lock, so the consumer's view is gapless: every change
// after the snapshot arrives as a delta (or is counted as dropped).
// Exported so other servers (the dsrserve job API) can mount the same
// bounded non-blocking fan-out per job; pair every Subscribe with an
// Unsubscribe.
func (c *Campaign) Subscribe() (*Subscription, Snapshot) {
	sub := &Subscription{ch: make(chan []byte, subscriberBuffer)}
	c.mu.Lock()
	c.subs[sub] = struct{}{}
	snap := c.snapshotLocked()
	c.mu.Unlock()
	return sub, snap
}

// Unsubscribe detaches an SSE consumer.
func (c *Campaign) Unsubscribe(sub *Subscription) {
	c.mu.Lock()
	delete(c.subs, sub)
	c.mu.Unlock()
}
