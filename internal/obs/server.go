package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"dsr/internal/telemetry"
)

// Server is the embedded observability HTTP server behind the CLIs'
// -http flag. Endpoints:
//
//	/            index (plain-text endpoint list)
//	/healthz     liveness probe
//	/metrics     Prometheus text exposition of the telemetry registry
//	/campaign    JSON live snapshot (progress, workers, pWCET tail)
//	/events      SSE stream: snapshot on connect, then deltas
//	/debug/pprof host profiling (CPU, heap, goroutines, ...)
type Server struct {
	ln   net.Listener
	srv  *http.Server
	camp *Campaign
}

// Serve binds addr (":0" picks a free port) and serves the campaign
// view until Close. It returns once the listener is bound, so Addr is
// immediately valid.
func Serve(addr string, camp *Campaign) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, camp: camp}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/campaign", s.handleCampaign)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server, disconnecting any attached SSE clients.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "dsr campaign observability server\n\n"+
		"  /healthz      liveness\n"+
		"  /metrics      Prometheus exposition\n"+
		"  /campaign     JSON live snapshot\n"+
		"  /events       SSE progress stream\n"+
		"  /debug/pprof  profiling\n")
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleMetrics scrapes the telemetry registry. Only the registry is
// read — never the event log, which is single-goroutine (owned by the
// merge); the registry's snapshot is safe under concurrent mutation.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	d := &telemetry.Dump{Metrics: s.camp.Registry().Snapshot()}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := d.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleCampaign(w http.ResponseWriter, _ *http.Request) {
	snap := s.camp.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(snap); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// handleEvents is the SSE stream behind /events.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	ServeEvents(s.camp, w, r)
}

// ServeEvents streams a campaign view as Server-Sent Events: one
// `snapshot` event with the state current at connect time, then a
// `delta` event per published change. The subscription and the
// snapshot are taken atomically, so a client connecting mid-campaign
// sees a gapless sequence; a client that reads too slowly loses deltas
// (its buffer is bounded) but the stream stays ordered and the
// campaign never blocks. Exported so other servers (the dsrserve job
// API) can mount the identical stream per job.
func ServeEvents(c *Campaign, w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sub, snap := c.Subscribe()
	defer c.Unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	first, err := json.Marshal(snap)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if err := writeSSE(w, "snapshot", first); err != nil {
		return
	}
	flusher.Flush()

	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case frame := <-sub.C():
			if err := writeSSE(w, "delta", frame); err != nil {
				return
			}
			flusher.Flush()
		}
	}
}

// writeSSE emits one Server-Sent Event.
func writeSSE(w http.ResponseWriter, event string, data []byte) error {
	_, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
	return err
}
