package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"dsr/internal/mbpta"
	"dsr/internal/telemetry"
)

// newTestServer builds a campaign view with some populated state and
// serves it on a loopback port.
func newTestServer(t *testing.T) (*Server, *Campaign) {
	t.Helper()
	reg := telemetry.NewRegistry()
	reg.Counter("dsr_runs_total", telemetry.Labels{"series": "test"}).Add(42)
	reg.Gauge("dsr_last_uoa", nil).Set(12345)
	reg.Histogram("dsr_uoa_cycles", nil, telemetry.ExpBounds(1000, 2, 8)).Observe(40000)

	tr := telemetry.NewTracer()
	wt := tr.Worker(0)
	run := wt.Begin(telemetry.SpanRun, 0)
	wt.End(run)

	camp := NewCampaign(reg, tr, mbpta.Options{})
	srv, err := Serve("127.0.0.1:0", camp)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, camp
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	srv, camp := newTestServer(t)
	base := "http://" + srv.Addr()

	if code, body := get(t, base+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, base+"/"); code != 200 || !strings.Contains(body, "/campaign") {
		t.Fatalf("/ = %d %q", code, body)
	}
	if code, _ := get(t, base+"/no-such-endpoint"); code != 404 {
		t.Fatalf("unknown path = %d, want 404", code)
	}
	if code, body := get(t, base+"/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d", code)
	}

	// /metrics parses as Prometheus exposition and round-trips the
	// registry exactly.
	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	dump, err := telemetry.ReadPrometheus(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics does not parse: %v\n%s", err, body)
	}
	if !telemetry.MetricsEqual(dump.Metrics, camp.Registry().Snapshot()) {
		t.Fatalf("/metrics round-trip mismatch")
	}

	// /campaign decodes and reflects observer state.
	camp.BeginSeries("Sw Rand", 100)
	for i := 0; i < 10; i++ {
		camp.ObserveRun("Sw Rand", i, float64(40000+i))
	}
	code, body = get(t, base+"/campaign")
	if code != 200 {
		t.Fatalf("/campaign = %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/campaign does not decode: %v\n%s", err, body)
	}
	if snap.Series != "Sw Rand" || snap.Done != 10 || snap.Total != 100 {
		t.Fatalf("/campaign snapshot = %+v", snap)
	}
	if snap.LastUoA != 40009 {
		t.Fatalf("/campaign last_uoa = %v, want 40009", snap.LastUoA)
	}
	if len(snap.Workers) != 1 || snap.Workers[0].Runs != 1 {
		t.Fatalf("/campaign workers = %+v", snap.Workers)
	}
}

func TestCampaignTailEstimate(t *testing.T) {
	opts := mbpta.DefaultOptions()
	camp := NewCampaign(nil, nil, opts)
	runs := 10 * opts.BlockSize // the EVT fitter needs >=10 block maxima
	camp.BeginSeries("tail", runs)
	// A hashed (serially uncorrelated) spread so the i.i.d. gate passes
	// and the EVT fit is well-posed.
	for i := 0; i < runs; i++ {
		h := uint64(i) * 0x9e3779b97f4a7c15
		h ^= h >> 32
		camp.ObserveRun("tail", i, 40000+float64(h%997))
	}
	snap := camp.Snapshot()
	if snap.PWCET == nil {
		t.Fatal("no tail estimate after 10*BlockSize runs")
	}
	if snap.PWCET.PWCET < snap.PWCET.MOET {
		t.Fatalf("pWCET %v below MOET %v", snap.PWCET.PWCET, snap.PWCET.MOET)
	}
	camp.EndSeries("tail")
	camp.Done()
	snap = camp.Snapshot()
	if !snap.Ended || len(snap.Finished) != 1 || snap.Finished[0].PWCET == nil {
		t.Fatalf("terminal snapshot = %+v", snap)
	}
}

func TestCampaignSnapshotBelowFitThreshold(t *testing.T) {
	camp := NewCampaign(nil, nil, mbpta.Options{})
	camp.BeginSeries("small", 10)
	for i := 0; i < 10; i++ {
		camp.ObserveRun("small", i, 1000)
	}
	if snap := camp.Snapshot(); snap.PWCET != nil {
		t.Fatalf("tail estimate from %d runs, want none", snap.Done)
	}
}

func ExampleServe() {
	camp := NewCampaign(telemetry.NewRegistry(), nil, mbpta.Options{})
	srv, err := Serve("127.0.0.1:0", camp)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer resp.Body.Close()
	fmt.Println(resp.StatusCode)
	// Output: 200
}
