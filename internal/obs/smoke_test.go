package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dsr/internal/experiments"
	"dsr/internal/mbpta"
	"dsr/internal/telemetry"
)

// TestObsSmoke is the end-to-end gate behind `make obs-smoke`: a real
// 8-worker DSR campaign with the full observability stack attached —
// span tracer, live campaign view, HTTP server — scraped continuously
// mid-flight. It asserts that /metrics always parses as Prometheus
// exposition (the concurrent-scrape contract), that /campaign always
// decodes, and that the finished campaign's span timeline validates
// and produces a worker report.
//
// OBS_RUNS scales the campaign (default 60 keeps tier-1 fast; CI's
// obs-smoke target raises it to 200).
func TestObsSmoke(t *testing.T) {
	runs := 60
	if v := os.Getenv("OBS_RUNS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			t.Fatalf("bad OBS_RUNS=%q", v)
		}
		runs = n
	}

	tc := telemetry.NewCampaign(0)
	tracer := telemetry.NewTracer()
	camp := NewCampaign(tc.Registry, tracer, mbpta.DefaultOptions())
	srv, err := Serve("127.0.0.1:0", camp)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	cfg := experiments.DefaultConfig()
	cfg.Runs = runs
	cfg.Workers = 8
	cfg.Telemetry = tc
	cfg.Tracer = tracer
	cfg.Observer = camp

	// Scrape continuously while the campaign runs.
	stop := make(chan struct{})
	scraped := make(chan error, 1)
	var scrapes atomic.Int64
	go func() {
		var firstErr error
		for {
			select {
			case <-stop:
				scraped <- firstErr
				return
			default:
			}
			if err := scrapeOnce(base); err != nil && firstErr == nil {
				firstErr = err
			}
			scrapes.Add(1)
			time.Sleep(time.Millisecond)
		}
	}()

	s, err := experiments.RunDSR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	camp.Done()
	close(stop)
	if err := <-scraped; err != nil {
		t.Fatalf("mid-flight scrape failed: %v", err)
	}
	if scrapes.Load() == 0 {
		t.Fatal("no scrapes happened during the campaign")
	}
	if len(s.Cycles) != runs {
		t.Fatalf("campaign produced %d runs, want %d", len(s.Cycles), runs)
	}

	// Terminal snapshot reflects the finished campaign.
	snap := camp.Snapshot()
	if !snap.Ended || snap.Done != runs || len(snap.Finished) != 1 {
		t.Fatalf("terminal snapshot = %+v", snap)
	}

	// The span timeline validates, exports, and yields a worker report
	// that names a bottleneck.
	spans := tracer.Spans()
	if _, err := telemetry.ValidateSpans(spans); err != nil {
		t.Fatalf("campaign spans invalid: %v", err)
	}
	rep, err := telemetry.AnalyzeSpans(spans)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalRuns != runs {
		t.Fatalf("span report covers %d runs, want %d", rep.TotalRuns, runs)
	}
	if rep.BootNs == 0 || rep.RelocNs == 0 || rep.ExecNs == 0 {
		t.Fatalf("phase breakdown incomplete: boot=%d reloc=%d exec=%d",
			rep.BootNs, rep.RelocNs, rep.ExecNs)
	}
	if !strings.Contains(rep.Render(), "bottleneck: ") {
		t.Fatal("report names no bottleneck")
	}

	// Span JSONL round-trips and the Chrome export validates.
	var jsonl bytes.Buffer
	if err := (&telemetry.Dump{Spans: spans}).WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	back, err := telemetry.ReadJSONL(bytes.NewReader(jsonl.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != len(spans) {
		t.Fatalf("span JSONL round-trip lost spans: %d vs %d", len(back.Spans), len(spans))
	}
	var trace bytes.Buffer
	if err := telemetry.WriteSpanTrace(&trace, spans); err != nil {
		t.Fatal(err)
	}
	if _, err := telemetry.ValidateChromeTrace(bytes.NewReader(trace.Bytes())); err != nil {
		t.Fatalf("worker-timeline trace invalid: %v", err)
	}
}

// scrapeOnce validates one /metrics + /campaign scrape pair.
func scrapeOnce(base string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if _, err := telemetry.ReadPrometheus(bytes.NewReader(body)); err != nil {
		return err
	}
	resp, err = http.Get(base + "/campaign")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var snap Snapshot
	return json.NewDecoder(resp.Body).Decode(&snap)
}
