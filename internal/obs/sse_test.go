package obs

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"dsr/internal/mbpta"
	"dsr/internal/telemetry"
)

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	snap Snapshot
}

// readSSE parses events off an open /events stream.
func readSSE(t *testing.T, r *bufio.Reader, n int, timeout time.Duration) []sseEvent {
	t.Helper()
	var out []sseEvent
	deadline := time.Now().Add(timeout)
	var name string
	for len(out) < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out after %d/%d SSE events", len(out), n)
		}
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE read after %d events: %v", len(out), err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var snap Snapshot
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &snap); err != nil {
				t.Fatalf("SSE data does not decode: %v\n%s", err, line)
			}
			out = append(out, sseEvent{name: name, snap: snap})
		}
	}
	return out
}

// TestSSESnapshotThenDeltas: a client connecting mid-campaign receives
// the consistent state at connect time as a `snapshot` event, then
// every later change as ordered `delta` events.
func TestSSESnapshotThenDeltas(t *testing.T) {
	camp := NewCampaign(telemetry.NewRegistry(), nil, mbpta.Options{})
	srv, err := Serve("127.0.0.1:0", camp)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Mid-campaign state before the client attaches.
	camp.BeginSeries("Sw Rand", 50)
	for i := 0; i < 20; i++ {
		camp.ObserveRun("Sw Rand", i, float64(1000+i))
	}

	resp, err := http.Get("http://" + srv.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)

	first := readSSE(t, br, 1, 5*time.Second)[0]
	if first.name != "snapshot" {
		t.Fatalf("first event = %q, want snapshot", first.name)
	}
	if first.snap.Done != 20 || first.snap.Series != "Sw Rand" {
		t.Fatalf("snapshot = %+v", first.snap)
	}

	// Changes after attach arrive as deltas in seq order.
	for i := 20; i < 50; i++ {
		camp.ObserveRun("Sw Rand", i, float64(1000+i))
	}
	camp.EndSeries("Sw Rand")
	camp.Done()

	deltas := readSSE(t, br, 3, 5*time.Second)
	lastSeq := first.snap.Seq
	for _, d := range deltas {
		if d.name != "delta" {
			t.Fatalf("event = %q, want delta", d.name)
		}
		if d.snap.Seq <= lastSeq {
			t.Fatalf("seq went backwards: %d after %d", d.snap.Seq, lastSeq)
		}
		lastSeq = d.snap.Seq
	}
	// Drain until the terminal frame.
	for i := 0; i < 100; i++ {
		if deltas[len(deltas)-1].snap.Ended {
			break
		}
		deltas = append(deltas, readSSE(t, br, 1, 5*time.Second)...)
	}
	last := deltas[len(deltas)-1].snap
	if !last.Ended || last.Done != 50 {
		t.Fatalf("terminal delta = %+v", last)
	}
}

// TestSSESlowConsumerDropsNeverBlocks: a subscriber that never reads
// its channel loses deltas once its buffer fills, but publishing —
// i.e. the merge goroutine — never blocks on it.
func TestSSESlowConsumerDropsNeverBlocks(t *testing.T) {
	camp := NewCampaign(nil, nil, mbpta.Options{})
	sub, _ := camp.Subscribe()
	defer camp.Unsubscribe(sub)

	const runs = 10 * subscriberBuffer
	done := make(chan struct{})
	go func() {
		defer close(done)
		camp.BeginSeries("flood", runs)
		for i := 0; i < runs; i++ {
			camp.ObserveRun("flood", i, 1) // total<100 → every run publishes
		}
		camp.Done()
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publisher blocked on slow SSE consumer")
	}

	camp.mu.Lock()
	drops := camp.drops
	camp.mu.Unlock()
	if drops == 0 {
		t.Fatal("no deltas dropped despite a full subscriber buffer")
	}
	if got := len(sub.ch); got != subscriberBuffer {
		t.Fatalf("subscriber buffered %d frames, want full buffer %d", got, subscriberBuffer)
	}
	// The frames that were delivered are still ordered.
	var lastSeq uint64
	for i := 0; i < subscriberBuffer; i++ {
		var snap Snapshot
		if err := json.Unmarshal(<-sub.ch, &snap); err != nil {
			t.Fatal(err)
		}
		if snap.Seq <= lastSeq {
			t.Fatalf("delivered frames out of order: %d after %d", snap.Seq, lastSeq)
		}
		lastSeq = snap.Seq
	}
}
