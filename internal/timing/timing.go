// Package timing is the single source of truth for per-instruction
// latencies. Both the cycle-approximate simulator (internal/cpu) and the
// static WCET analyzer (internal/analysis/wcet) cost instructions from
// the Model defined here, so the two cannot drift: a latency changed in
// one place changes in both, and the drift test in this package steps
// the simulator instruction-by-instruction and asserts that every
// opcode's observed cycle delta equals OpLatency.
//
// The Model covers only the *core* component of an instruction's cost —
// base issue, integer/FPU latencies, taken-branch penalty, trap
// overhead. Memory-hierarchy stalls (cache misses, TLB walks, bus and
// DRAM latency) are charged by the components that model them and, on
// the static side, bounded by the analyzer's abstract cache/TLB
// domains.
package timing

import (
	"math"
	"math/bits"

	"dsr/internal/isa"
	"dsr/internal/mem"
)

// Model holds the core timing constants. It is embedded in cpu.Config,
// so simulator users see the same field names they always had.
type Model struct {
	BranchTaken mem.Cycles // extra cycles for a taken branch
	LoadUse     mem.Cycles // extra cycles for any load
	StoreBase   mem.Cycles // base cycles for any store
	// StoreHidden is the portion of the write-through path the LEON3
	// store buffer hides: the charged store stall is
	// StoreBase + max(0, hierarchy latency - StoreHidden).
	StoreHidden  mem.Cycles
	MulLatency   mem.Cycles
	DivLatency   mem.Cycles
	FAddLatency  mem.Cycles // fadd/fsub/fcmp/fitos/fstoi
	FMulLatency  mem.Cycles
	FDivLatency  mem.Cycles
	FSqrtLatency mem.Cycles
	// FPJitterMax is the value-dependent extra latency of fdiv and fsqrt,
	// the two jittery FPU instruction types (§VI: "only two types of
	// those instructions have a maximum jitter of 3 cycles").
	FPJitterMax  mem.Cycles
	TrapOverhead mem.Cycles // window overflow/underflow trap entry/exit
	IPointCost   mem.Cycles // instrumentation point (timestamp store)
}

// Default returns the timing constants of the PROXIMA LEON3
// reproduction platform (see DESIGN.md §5).
func Default() Model {
	return Model{
		BranchTaken:  1,
		LoadUse:      1,
		StoreBase:    1,
		StoreHidden:  12,
		MulLatency:   4,
		DivLatency:   20,
		FAddLatency:  3,
		FMulLatency:  4,
		FDivLatency:  15,
		FSqrtLatency: 22,
		FPJitterMax:  3,
		TrapOverhead: 3,
		IPointCost:   2,
	}
}

// Jitter is the deterministic value-dependent extra latency of the two
// jittery FPU instruction types (fdiv, fsqrt): iterative dividers
// terminate early depending on operand bit patterns, modelled as a
// function of the operand mantissa. The result is always in
// [0, FPJitterMax].
func (m *Model) Jitter(v float32) mem.Cycles {
	if m.FPJitterMax == 0 {
		return 0
	}
	mant := math.Float32bits(v) & 0x7FFFFF
	return mem.Cycles(bits.OnesCount32(mant)) % (m.FPJitterMax + 1)
}

// OpLatency returns the core-component cost of executing op once: the
// base issue cycle plus the opcode-class latency. taken selects the
// taken-branch penalty for branch opcodes (ignored otherwise); jitter
// is the value-dependent FPU jitter for fdiv/fsqrt (ignored otherwise —
// pass Jitter(operand) when simulating, FPJitterMax when bounding).
//
// Memory stalls are NOT included: loads add LoadUse plus the hierarchy
// latency, stores add StoreBase plus max(0, hierarchy-StoreHidden), and
// window traps add TrapOverhead plus 16 store/load accesses; those
// components are charged where they are modelled.
func (m *Model) OpLatency(op isa.Op, taken bool, jitter mem.Cycles) mem.Cycles {
	lat := mem.Cycles(1) // base issue cycle, charged for every instruction
	switch op {
	case isa.Mul:
		lat += m.MulLatency
	case isa.Div:
		lat += m.DivLatency
	case isa.Ld, isa.Ldub, isa.FLd:
		lat += m.LoadUse
	case isa.St, isa.Stb, isa.FSt:
		lat += m.StoreBase
	case isa.Fadd, isa.Fsub, isa.Fcmp, isa.Fitos, isa.Fstoi:
		lat += m.FAddLatency
	case isa.Fmul:
		lat += m.FMulLatency
	case isa.Fdiv:
		lat += m.FDivLatency + jitter
	case isa.Fsqrt:
		lat += m.FSqrtLatency + jitter
	case isa.IPoint:
		lat += m.IPointCost
	default:
		if op.IsBranch() && taken {
			lat += m.BranchTaken
		}
	}
	return lat
}

// WorstOpLatency returns the largest core-component cost op can incur:
// branch taken, maximal FPU jitter. This is what the static WCET
// analyzer charges per instruction before adding memory-stall bounds.
func (m *Model) WorstOpLatency(op isa.Op) mem.Cycles {
	return m.OpLatency(op, true, m.FPJitterMax)
}
