package timing_test

// The drift test is the contract between the simulator and the static
// WCET analyzer: both cost instructions from timing.Model, and this test
// proves the simulator actually charges what Model.OpLatency says, for
// EVERY opcode in the ISA. It steps a CPU instruction by instruction
// over a program that executes every isa.Op at least once (branches in
// both taken and not-taken variants) against a zero-latency memory
// hierarchy, so the only cycles charged are the core component the
// Model describes, and asserts each per-step cycle delta equals
// OpLatency. A coverage map guarantees no opcode is silently skipped —
// adding an opcode to the ISA without extending this program fails the
// test.

import (
	"math"
	"testing"

	"dsr/internal/cpu"
	"dsr/internal/isa"
	"dsr/internal/loader"
	"dsr/internal/mem"
	"dsr/internal/prog"
	"dsr/internal/timing"
)

// zeroMem is a memory hierarchy with no latency at all: every cycle a
// CPU charges against it comes from the core timing model alone.
type zeroMem struct{}

func (zeroMem) Read(mem.Addr, int) mem.Cycles  { return 0 }
func (zeroMem) Write(mem.Addr, int) mem.Cycles { return 0 }

// coverageProgram executes every opcode at least once. Branches are
// arranged so each conditional opcode runs once taken and once not
// taken; every taken branch skips at least one instruction, so a taken
// branch is detectable as pcAfter != pc+4.
func coverageProgram(t *testing.T) *prog.Program {
	t.Helper()

	main := prog.NewFunc("main", 96).
		Prologue(). // Save
		Nop().
		// Integer ALU.
		MovI(isa.G1, 5).     // Mov
		Mov(isa.G2, isa.G1). // Mov (register form)
		Add(isa.G3, isa.G1, isa.G2).
		Sub(isa.G4, isa.G3, isa.G1).
		AndI(isa.G4, isa.G3, 7).
		OpI(isa.Or, isa.G4, isa.G3, 8).
		OpI(isa.Xor, isa.G4, isa.G4, 3).
		SllI(isa.G4, isa.G4, 2).
		SrlI(isa.G4, isa.G4, 1).
		OpI(isa.Sra, isa.G4, isa.G4, 1).
		MulI(isa.G4, isa.G1, 3).
		OpI(isa.Div, isa.G4, isa.G4, 7).
		// Memory.
		Set(isa.G2, "buf").
		Ld(isa.G5, isa.G2, 0).
		St(isa.G5, isa.G2, 4).
		Ldub(isa.G5, isa.G2, 1).
		Stb(isa.G5, isa.G2, 2).
		FLd(0, isa.G2, 8).
		FLd(1, isa.G2, 12).
		FSt(1, isa.G2, 16).
		// FPU.
		Fadd(2, 0, 1).
		Fsub(2, 0, 1).
		Fmul(2, 0, 1).
		Fdiv(2, 0, 1).
		Fsqrt(2, 0).
		Fitos(3, 1).
		Fstoi(3, 3).
		// Integer branches: G1 == 5. First compare equal (Z=1, N=0):
		// Be/Ble/Bge taken, Bne/Bl/Bg not taken.
		CmpI(isa.G1, 5).
		Be("ia").Nop().Label("ia").
		Ble("ib").Nop().Label("ib").
		Bge("ic").Nop().Label("ic").
		CmpI(isa.G1, 5).
		Bne("id").Nop().Label("id").
		Bl("ie").Nop().Label("ie").
		Bg("if").Nop().Label("if").
		// Then compare less (5 < 9: Z=0, N=1): Bne/Bl/Ble taken,
		// Be/Bg/Bge not taken.
		CmpI(isa.G1, 9).
		Bne("ig").Nop().Label("ig").
		Bl("ih").Nop().Label("ih").
		Ble("ii").Nop().Label("ii").
		CmpI(isa.G1, 9).
		Be("ij").Nop().Label("ij").
		Bg("ik").Nop().Label("ik").
		Bge("il").Nop().Label("il").
		// Finally compare greater (5 > 3: Z=0, N=0): Bg/Bge taken,
		// Ble not taken.
		CmpI(isa.G1, 3).
		Bg("in").Nop().Label("in").
		Bge("io").Nop().Label("io").
		Ble("ip").Nop().Label("ip").
		Ba("im").Nop().Label("im"). // Ba always taken
		// FP branches: f0 == f0 (fcc=0): Fbe taken, Fbne/Fbl/Fbg not.
		Fcmp(0, 0).
		Fbe("fa").Nop().Label("fa").
		Fbne("fb").Nop().Label("fb").
		Fbl("fc").Nop().Label("fc").
		Fbg("fd").Nop().Label("fd").
		// f1 < f0 (fcc=-1): Fbl and Fbne taken, Fbe/Fbg not.
		Fcmp(1, 0).
		Fbl("fe").Nop().Label("fe").
		Fbne("ff").Nop().Label("ff").
		// f0 > f1 (fcc=1): Fbg taken, Fbe not.
		Fcmp(0, 1).
		Fbg("fg").Nop().Label("fg").
		Fbe("fh").Nop().Label("fh").
		// Calls: direct to a full function (Ret), direct to a leaf
		// (RetL), indirect through a register (CallR).
		Call("helper").
		Call("leaf").
		Set(isa.G1, "leaf").
		Emit(isa.Instr{Op: isa.CallR, Rs1: isa.G1}).
		// Standalone window push/pop (no trap at this depth).
		Emit(isa.Instr{Op: isa.Save, Imm: 96, UseImm: true}).
		Emit(isa.Instr{Op: isa.Restore}).
		IPoint(1).
		Halt().
		MustBuild()

	// helper uses SaveX (zero extra offset via %g0) and returns with Ret.
	helper := prog.NewFunc("helper", 96).
		Emit(isa.Instr{Op: isa.SaveX, Imm: 96, UseImm: true, Rs2: isa.G0}).
		Nop().
		Epilogue(). // Ret
		MustBuild()

	leaf := prog.NewLeaf("leaf").
		Nop().
		RetLeaf(). // RetL
		MustBuild()

	p := &prog.Program{
		Name:      "opcov",
		Entry:     "main",
		Functions: []*prog.Function{main, helper, leaf},
		Data: []*prog.DataObject{{
			Name: "buf", Size: 32, Align: 8,
			Init: []uint32{
				0x01020304, 0,
				math.Float32bits(6.5),  // f0
				math.Float32bits(2.25), // f1
				0,
			},
		}},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("coverage program invalid: %v", err)
	}
	return p
}

func newZeroLatencyCPU(t *testing.T, p *prog.Program) (*cpu.CPU, *loader.Image) {
	t.Helper()
	img, err := loader.Load(p, loader.DefaultSequentialConfig())
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	data := cpu.NewMemory()
	for _, w := range img.Inits {
		data.StoreWord(w.Addr, w.Val)
	}
	c := cpu.New(cpu.NewDefaultConfig(), img, zeroMem{}, zeroMem{}, nil, nil, data)
	c.Reset(0x6000_0000)
	return c, img
}

// TestNoDriftEveryOpcode steps the coverage program and asserts every
// instruction's cycle delta equals Model.OpLatency, and that every
// opcode in the ISA was exercised.
func TestNoDriftEveryOpcode(t *testing.T) {
	model := timing.Default()
	c, img := newZeroLatencyCPU(t, coverageProgram(t))

	covered := make([]bool, isa.NumOps)
	takenSeen := make(map[isa.Op]bool)
	notTakenSeen := make(map[isa.Op]bool)

	for steps := 0; !c.Halted(); steps++ {
		if steps > 10_000 {
			t.Fatal("coverage program did not halt")
		}
		pc := c.PC()
		in := img.InstrAt(pc)
		if in == nil {
			t.Fatalf("no instruction at pc %#x", pc)
		}
		// Jitter is value-dependent: read the operand the same way the
		// core will before stepping.
		var jit mem.Cycles
		if in.Op == isa.Fdiv || in.Op == isa.Fsqrt {
			jit = model.Jitter(c.FReg(in.FRs2))
		}
		before := c.Cycles()
		if err := c.Step(); err != nil {
			t.Fatalf("step at pc %#x (%s): %v", pc, in.Op, err)
		}
		delta := c.Cycles() - before
		taken := c.PC() != pc+isa.InstrBytes
		want := model.OpLatency(in.Op, taken, jit)
		if delta != want {
			t.Fatalf("drift at pc %#x: op %s (taken=%v jitter=%d): simulator charged %d, timing.Model says %d",
				pc, in.Op, taken, jit, delta, want)
		}
		covered[in.Op] = true
		if in.Op.IsBranch() {
			if taken {
				takenSeen[in.Op] = true
			} else {
				notTakenSeen[in.Op] = true
			}
		}
	}

	for op := isa.Op(0); op < isa.NumOps; op++ {
		if !covered[op] {
			t.Errorf("opcode %s never executed: extend the coverage program so the drift test keeps covering the full ISA", op)
		}
	}
	// Every conditional branch must have run both ways; Ba only taken.
	for op := isa.Be; op <= isa.Fbg; op++ {
		if !takenSeen[op] {
			t.Errorf("branch %s never taken", op)
		}
		if !notTakenSeen[op] {
			t.Errorf("branch %s never fell through", op)
		}
	}
	if !takenSeen[isa.Ba] {
		t.Error("ba never taken")
	}
}

// TestWorstOpLatencyDominates proves the analyzer's per-op worst case is
// an upper bound on everything the simulator can charge for the core
// component: every (taken, jitter) combination.
func TestWorstOpLatencyDominates(t *testing.T) {
	model := timing.Default()
	for op := isa.Op(0); op < isa.NumOps; op++ {
		worst := model.WorstOpLatency(op)
		for _, taken := range []bool{false, true} {
			for jit := mem.Cycles(0); jit <= model.FPJitterMax; jit++ {
				if got := model.OpLatency(op, taken, jit); got > worst {
					t.Errorf("op %s: OpLatency(taken=%v, jitter=%d)=%d exceeds WorstOpLatency=%d",
						op, taken, jit, got, worst)
				}
			}
		}
	}
}

// TestJitterBounded pins the jitter function inside [0, FPJitterMax].
func TestJitterBounded(t *testing.T) {
	model := timing.Default()
	for _, v := range []float32{0, 1, 2.25, 6.5, 3.14159, 1e-20, 1e20, -7.5} {
		if j := model.Jitter(v); j > model.FPJitterMax {
			t.Errorf("Jitter(%g) = %d exceeds FPJitterMax %d", v, j, model.FPJitterMax)
		}
	}
	zero := timing.Model{}
	if zero.Jitter(3.14159) != 0 {
		t.Error("zero-jitter model must return 0")
	}
}

// TestWindowTrapCost pins the spill/fill trap cost the WCET analyzer
// charges per Save/Restore when the call depth can exceed the register
// file: TrapOverhead plus 16 stores (spill) or 16 loads (fill), here
// measured against the zero-latency hierarchy.
func TestWindowTrapCost(t *testing.T) {
	model := timing.Default()
	b := prog.NewFunc("main", 96).Prologue()
	// Reset leaves one live window; the prologue makes 2. Five more
	// saves reach liveWin == NumWindows-1 == 7; the sixth (the seventh
	// Save overall) overflows and spills.
	for i := 0; i < 6; i++ {
		b.Emit(isa.Instr{Op: isa.Save, Imm: 96, UseImm: true})
	}
	// Unwind: six restores bring liveWin back to 1; the seventh
	// underflows and fills.
	for i := 0; i < 7; i++ {
		b.Emit(isa.Instr{Op: isa.Restore})
	}
	main := b.Halt().MustBuild()
	p := &prog.Program{Name: "trap", Entry: "main", Functions: []*prog.Function{main}}
	if err := p.Validate(); err != nil {
		t.Fatalf("trap program invalid: %v", err)
	}
	c, img := newZeroLatencyCPU(t, p)

	spill := model.OpLatency(isa.Save, false, 0) + model.TrapOverhead + 16*model.StoreBase
	fill := model.OpLatency(isa.Restore, false, 0) + model.TrapOverhead + 16*model.LoadUse

	var saves, restores int
	for !c.Halted() {
		pc := c.PC()
		in := img.InstrAt(pc)
		before := c.Cycles()
		if err := c.Step(); err != nil {
			t.Fatalf("step at pc %#x: %v", pc, err)
		}
		delta := c.Cycles() - before
		switch in.Op {
		case isa.Save:
			saves++
			want := model.OpLatency(isa.Save, false, 0)
			if saves == 7 { // prologue + 6 fill the file; the 7th overflows
				want = spill
			}
			if delta != want {
				t.Fatalf("save #%d charged %d, want %d", saves, delta, want)
			}
		case isa.Restore:
			restores++
			want := model.OpLatency(isa.Restore, false, 0)
			if restores == 7 { // the last one underflows
				want = fill
			}
			if delta != want {
				t.Fatalf("restore #%d charged %d, want %d", restores, delta, want)
			}
		}
	}
	ctr := c.Counters()
	if ctr.WindowOverflows != 1 || ctr.WindowUnderflows != 1 {
		t.Fatalf("got %d overflows, %d underflows; want 1 and 1",
			ctr.WindowOverflows, ctr.WindowUnderflows)
	}
}
