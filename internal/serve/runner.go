package serve

import (
	"bytes"
	"fmt"
	"strings"

	"dsr/internal/asm"
	"dsr/internal/campaign"
	"dsr/internal/core"
	"dsr/internal/mbpta"
	"dsr/internal/mem"
	"dsr/internal/platform"
	"dsr/internal/rvs"
	"dsr/internal/telemetry"
)

// Point is one merged campaign run — the unit the service checkpoints
// and replays. Every field is a pure function of (Spec, Index), which
// is what makes a checkpointed prefix resumable byte-identically: the
// runner rebuilds the telemetry dump, the MBPTA stream and the
// aggregate attribution from Points alone.
type Point struct {
	// Index is the canonical run index.
	Index int `json:"i"`
	// Seed is the schedule-derived layout seed of this run.
	Seed uint64 `json:"seed"`
	// Cycles is the run's total execution time.
	Cycles mem.Cycles `json:"cycles"`
	// UoA is the instrumented unit-of-analysis duration (ipoints 1→2),
	// zero when the program carries no instrumentation points.
	UoA float64 `json:"uoa,omitempty"`
	// Attr is the per-run cycle attribution (zero Valid when the
	// profiler is disabled).
	Attr telemetry.AttributionSnapshot `json:"attr"`
}

// RunObserver is the live-introspection feed of a running job; it is
// satisfied by *obs.Campaign. Calls arrive from the merge goroutine in
// canonical order; observation is strictly one-way.
type RunObserver interface {
	BeginSeries(series string, total int)
	ObserveRun(series string, index int, uoa float64)
	EndSeries(series string)
}

// Hooks is the runner's observation and control surface. Every field
// is optional; the zero value runs the campaign exactly as the dsrrun
// CLI does.
type Hooks struct {
	// OnPoint is called for every merged point — replayed checkpoint
	// points first, then fresh merges — in canonical order on the merge
	// goroutine. The service's checkpointer lives here.
	OnPoint func(Point)
	// Interrupt requests a cooperative stop (cancellation, shutdown);
	// Run then returns campaign.ErrInterrupted.
	Interrupt <-chan struct{}
	// Tracer records host wall-time worker spans (never part of the
	// deterministic output).
	Tracer *telemetry.Tracer
	// Observer receives the live progress feed (SSE views).
	Observer RunObserver
}

// Outcome is everything a finished campaign emits: the surfaces the
// determinism suite compares byte for byte between the CLI and service
// paths.
type Outcome struct {
	Spec Spec
	// Name is the measured program's name (the series label).
	Name string
	// Points are the merged runs in canonical order.
	Points []Point
	// Times is the MBPTA stream ingestion series (execution times in
	// canonical order) — the analysis input.
	Times []float64
	// Attribution is the campaign-aggregate cycle attribution.
	Attribution telemetry.AttributionSnapshot
	// Report is the MBPTA analysis (non-nil even when the analysis
	// gate rejects; Fit is nil in that case).
	Report *mbpta.Report
	// Telemetry is the full telemetry export as JSONL: per-run metrics,
	// histograms and campaign-clock event spans.
	Telemetry []byte
}

// Run executes a campaign job: the single code path behind both the
// dsrrun CLI campaign mode and the dsrserve job executor, which is
// what makes their outputs byte-identical by construction.
//
// resume, when non-empty, is the contiguous canonical prefix of
// already-merged points from a checkpoint; the runner replays it
// through every output surface (stream, telemetry, observer, OnPoint)
// and then executes only the remaining indices. Because each run is a
// pure function of (Spec, index), the final Outcome is byte-identical
// to an uninterrupted execution.
//
// On interruption Run returns campaign.ErrInterrupted with a nil
// Outcome — the merged prefix has already reached the caller through
// Hooks.OnPoint. On an analysis-stage error (e.g. the i.i.d. gate
// rejecting) Run returns the partial Outcome alongside the error.
func Run(spec Spec, resume []Point, h Hooks) (*Outcome, error) {
	for k, pt := range resume {
		if pt.Index != k {
			return nil, fmt.Errorf("serve: resume prefix not contiguous: point %d has index %d", k, pt.Index)
		}
	}
	if len(resume) > spec.Runs {
		return nil, fmt.Errorf("serve: resume prefix of %d runs exceeds campaign size %d", len(resume), spec.Runs)
	}
	p, err := asm.Assemble(spec.Source)
	if err != nil {
		return nil, fmt.Errorf("serve: assemble: %w", err)
	}

	stream := mbpta.NewStream(spec.MBPTAOptions())
	camp := telemetry.NewCampaign(0)
	out := &Outcome{Spec: spec, Name: p.Name, Points: make([]Point, 0, spec.Runs)}
	record := func(pt Point) {
		out.Points = append(out.Points, pt)
		stream.Observe(float64(pt.Cycles))
		out.Attribution.Add(pt.Attr)
		camp.RecordRun(telemetry.RunRecord{
			Series: p.Name, Index: pt.Index, Seed: pt.Seed,
			Cycles: pt.Cycles, UoA: pt.UoA, Attribution: pt.Attr,
		})
		if h.Observer != nil {
			h.Observer.ObserveRun(p.Name, pt.Index, float64(pt.Cycles))
		}
		if h.OnPoint != nil {
			h.OnPoint(pt)
		}
	}

	if h.Observer != nil {
		h.Observer.BeginSeries(p.Name, spec.Runs)
	}
	for _, pt := range resume {
		record(pt)
	}

	sched := campaign.NewSchedule(spec.Seed)
	err = campaign.Execute(
		campaign.Config{
			Runs: spec.Runs, First: len(resume), Workers: spec.Workers,
			Interrupt: h.Interrupt, Tracer: h.Tracer,
		},
		func(w int) (campaign.RunFunc[Point], error) {
			// Worker-private program, platform and DSR runtime.
			wp, err := asm.Assemble(spec.Source)
			if err != nil {
				return nil, err
			}
			wplat := platform.New(platform.ProximaLEON3())
			if spec.Attribution {
				wplat.EnableAttribution()
			}
			wrt, err := core.NewRuntime(wp, wplat, core.Options{})
			if err != nil {
				return nil, err
			}
			wt := h.Tracer.Worker(w)
			wrt.SetTracer(wt)
			return func(i int) (Point, error) {
				seed := sched.Seed(i)
				if _, err := wrt.Reboot(seed); err != nil {
					return Point{}, err
				}
				exec := wt.Begin(telemetry.SpanExecute, -1)
				res, err := wrt.Run()
				wt.End(exec)
				if err != nil {
					return Point{}, err
				}
				pt := Point{Index: i, Seed: seed, Cycles: res.Cycles, Attr: res.Attribution}
				if ds := rvs.Durations(res.Trace, 1, 2); len(ds) > 0 {
					pt.UoA = float64(ds[0])
				}
				return pt, nil
			}, nil
		},
		func(i int, pt Point) error {
			record(pt)
			return nil
		})
	if err != nil {
		return nil, err
	}
	if h.Observer != nil {
		h.Observer.EndSeries(p.Name)
	}

	out.Times = append([]float64(nil), stream.Times()...)
	var tbuf bytes.Buffer
	if err := camp.Dump().WriteJSONL(&tbuf); err != nil {
		return nil, fmt.Errorf("serve: telemetry export: %w", err)
	}
	out.Telemetry = tbuf.Bytes()

	rep, aerr := stream.Report()
	out.Report = rep
	if aerr != nil {
		return out, fmt.Errorf("serve: analysis: %w", aerr)
	}
	return out, nil
}

// FormatReport renders the campaign analysis exactly as the dsrrun CLI
// prints it — the byte-identity surface the serve-smoke gate compares
// against a real dsrrun invocation. A partial outcome (analysis gate
// rejected) renders what it has, mirroring the CLI's output before it
// exits non-zero.
func FormatReport(o *Outcome) string {
	var b strings.Builder
	if o.Attribution.Valid {
		b.WriteString(o.Attribution.Render())
		b.WriteString("\n")
	}
	rep := o.Report
	if rep == nil {
		return b.String()
	}
	fmt.Fprintf(&b, "%s under DSR, %d runs: min=%.0f mean=%.0f MOET=%.0f\n",
		o.Name, rep.N, rep.Min, rep.Mean, rep.MOET)
	fmt.Fprintf(&b, "i.i.d.: Ljung-Box p=%.4f, KS p=%.4f\n",
		rep.IID.LjungBox.PValue, rep.IID.KS.PValue)
	if rep.Fit == nil {
		return b.String()
	}
	fmt.Fprintf(&b, "pWCET @ %.0e = %.0f cycles (+%.2f%% over MOET)\n\n",
		rep.TargetExceedance, rep.PWCET, (rep.PWCET/rep.MOET-1)*100)
	b.WriteString(rvs.RenderCurve(rep, o.Times, 72, 18))
	return b.String()
}
