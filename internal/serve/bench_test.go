package serve

import (
	"testing"
)

// BenchmarkServeSubmitLatency measures the submit path — JSON decode,
// spec validation (assemble + DSR transform verification), job-dir
// persistence and enqueue — with the executor parked on a long job so
// no campaign work pollutes the numbers. This is the daemon's
// user-facing latency floor; benchgate tracks it.
func BenchmarkServeSubmitLatency(b *testing.B) {
	s, ts, cl := startServer(b, b.TempDir(), Config{
		Executors: 1, QueueCap: b.N + 8, CheckpointEvery: 1 << 30,
		Logf: func(string, ...any) {},
	})
	// Hours of simulated work: the parked job never finishes while the
	// benchmark runs.
	long := testSpec(b, "long", 40_000_000, 1, 42)
	if _, err := cl.Submit(long); err != nil {
		b.Fatalf("submit long: %v", err)
	}
	waitProgress(b, cl, "long", 1)
	src := testSource(b)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := Spec{Source: src, Runs: 600, Seed: uint64(i + 1), Workers: 1}
		if _, err := cl.Submit(spec); err != nil {
			b.Fatalf("submit %d: %v", i, err)
		}
	}
	b.StopTimer()
	s.Kill()
	ts.Close()
}
