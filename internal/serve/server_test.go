package serve

import (
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSpecValidateRejectsUnsafeID: the job id becomes a directory name
// under DataDir/jobs/, so Validate must reject anything that is not a
// single safe path segment before it can reach the filesystem.
func TestSpecValidateRejectsUnsafeID(t *testing.T) {
	src := testSource(t)
	bad := []string{
		"../evil", "..", ".", "a/b", `a\b`, "a b", "a\x00b",
		"../../../../tmp/evil", strings.Repeat("x", 65),
	}
	for _, id := range bad {
		sp := Spec{ID: id, Source: src, Runs: 600, Seed: 1}
		if err := sp.Validate(); err == nil {
			t.Errorf("Validate accepted unsafe id %q", id)
		}
	}
	good := []string{"job-0", "A.b_c-9", strings.Repeat("x", 64)}
	for _, id := range good {
		sp := Spec{ID: id, Source: src, Runs: 600, Seed: 1}
		if err := sp.Validate(); err != nil {
			t.Errorf("Validate rejected id %q: %v", id, err)
		}
	}
}

// TestServeSubmitPathTraversal: a submission whose id tries to escape
// the data directory is rejected with 400 and must not create or write
// anything anywhere on disk.
func TestServeSubmitPathTraversal(t *testing.T) {
	dir := t.TempDir()
	s, ts, cl := startServer(t, dir, Config{Executors: 1})
	defer ts.Close()
	defer s.Stop()

	_, err := cl.Submit(testSpec(t, "../../escaped", 600, 1, 42))
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("traversal submit returned %v, want 400", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "..", "escaped")); !os.IsNotExist(err) {
		t.Fatalf("traversal submit escaped the data dir: %v", err)
	}
	entries, err := os.ReadDir(filepath.Join(dir, "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("traversal submit left %d entries in the jobs dir", len(entries))
	}
}

// TestCampaignServeResubmitFreshViewAndCursor: re-enqueuing a
// cancelled job must hand SSE clients a fresh live view (not the
// previous attempt's terminated stream) and report the checkpoint
// cursor as its done count until the executor starts replaying.
func TestCampaignServeResubmitFreshViewAndCursor(t *testing.T) {
	const runs = 40000
	spec := testSpec(t, "fresh", runs, 2, 42)
	dir := t.TempDir()
	s, ts, cl := startServer(t, dir, Config{Executors: 1, CheckpointEvery: 100})
	defer ts.Close()
	defer s.Stop()

	if _, err := cl.Submit(spec); err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitProgress(t, cl, "fresh", 300)
	if _, err := cl.Cancel("fresh"); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if st := waitTerminal(t, cl, "fresh"); st.State != StateCancelled {
		t.Fatalf("cancelled job ended %s", st.State)
	}
	cp, _ := LoadCheckpoint(filepath.Join(dir, "jobs", "fresh"), "fresh", spec.Hash())
	if cp == nil || cp.Cursor == 0 {
		t.Fatal("no checkpoint on disk after mid-flight cancel")
	}

	st, err := cl.Submit(spec)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if st.State != StateQueued {
		t.Fatalf("resubmit state = %s, want %s", st.State, StateQueued)
	}
	if st.Done != cp.Cursor {
		t.Fatalf("resubmit reported done=%d, want checkpoint cursor %d", st.Done, cp.Cursor)
	}

	// The re-run's view must be live: no inherited ended flag, no stale
	// finished-series summaries from the cancelled attempt.
	s.mu.Lock()
	view := s.jobs["fresh"].view
	s.mu.Unlock()
	snap := view.Snapshot()
	if snap.Ended {
		t.Fatal("re-enqueued job's SSE view still reports ended")
	}
	if len(snap.Finished) != 0 {
		t.Fatalf("re-enqueued job's SSE view carries %d stale series summaries", len(snap.Finished))
	}
}
