package serve

import (
	"container/heap"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"dsr/internal/campaign"
	"dsr/internal/obs"
	"dsr/internal/telemetry"
)

// JobState is a job's lifecycle phase. queued and running are the
// non-terminal states a restarted daemon resumes; done, failed and
// cancelled are terminal.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateDone      JobState = "done"
	StateFailed    JobState = "failed"
	StateCancelled JobState = "cancelled"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// JobStatus is the wire format of a job's state (GET /jobs, GET
// /jobs/{id}, and the body of every submit response).
type JobStatus struct {
	ID       string   `json:"id"`
	Name     string   `json:"name"`
	State    JobState `json:"state"`
	Runs     int      `json:"runs"`
	Done     int      `json:"done"`
	Priority int      `json:"priority,omitempty"`
	SpecHash string   `json:"spec_hash"`
	Error    string   `json:"error,omitempty"`
}

// Config configures a Server. The zero value of every field selects a
// sensible default except DataDir, which is required.
type Config struct {
	// DataDir is the persistent root; jobs live in DataDir/jobs/<id>/.
	DataDir string
	// QueueCap bounds the number of queued (not yet running) jobs;
	// submissions beyond it get 429 with Retry-After. Default 64.
	QueueCap int
	// Executors is the number of concurrent job executors. Default 2.
	Executors int
	// CheckpointEvery is the number of merged runs between periodic
	// checkpoints. Default 50.
	CheckpointEvery int
	// Logf receives service log lines (default: discarded).
	Logf func(format string, args ...any)
}

// job is the in-memory state of one submitted campaign.
type job struct {
	spec      Spec
	hash      string
	name      string // program name, cached at creation (assembling is not free)
	seq       uint64
	heapIndex int // position in the pending heap, -1 when not queued

	state  JobState
	done   int
	errMsg string

	cancel     chan struct{} // closed to cancel; remade on resubmission
	cancelOnce *sync.Once
	userCancel bool // interrupt came from DELETE, not shutdown

	view   *obs.Campaign // per-job live SSE view; remade on resubmission
	tracer *telemetry.Tracer

	stateVer uint64     // bumped under s.mu by each snapshotLocked
	stateMu  sync.Mutex // serializes state.json writers, off s.mu
	wroteVer uint64     // newest snapshot persisted; guarded by stateMu
}

func (j *job) status() JobStatus {
	return JobStatus{
		ID: j.spec.ID, Name: j.name, State: j.state,
		Runs: j.spec.Runs, Done: j.done, Priority: j.spec.Priority,
		SpecHash: j.hash, Error: j.errMsg,
	}
}

// resetRun gives the job a fresh cancel channel, tracer and live view.
// Recreating the view on every (re-)enqueue matters: the previous
// attempt's view has published ended=true and its finished summaries,
// and SSE clients of the re-run must see live progress, not a
// terminated stale stream. Callers hold s.mu (or are single-threaded).
func (j *job) resetRun() {
	j.cancel = make(chan struct{})
	j.cancelOnce = new(sync.Once)
	j.userCancel = false
	j.tracer = telemetry.NewTracer()
	j.view = obs.NewCampaign(nil, j.tracer, j.spec.MBPTAOptions())
}

// Server is the dsrserve daemon core: a bounded persistent job queue
// in front of a pool of campaign executors, with an HTTP/JSON API for
// submission, inspection, SSE streaming, cancellation and metrics.
// Construction scans DataDir and re-enqueues every non-terminal job
// (resuming from its newest intact checkpoint), which is how the
// daemon survives crashes without losing or duplicating work.
type Server struct {
	cfg      Config
	registry *telemetry.Registry
	ln       net.Listener
	srv      *http.Server

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*job
	pending  jobQueue
	seq      uint64
	stopping bool
	hard     bool
	wg       sync.WaitGroup
}

// New builds a Server over cfg.DataDir, recovers persisted jobs, and
// starts the executor pool. It does not listen; call Serve (or mount
// Handler on a listener of your own).
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("serve: Config.DataDir is required")
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.Executors <= 0 {
		cfg.Executors = 2
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 50
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:      cfg,
		registry: telemetry.NewRegistry(),
		jobs:     map[string]*job{},
	}
	s.cond = sync.NewCond(&s.mu)
	if err := os.MkdirAll(filepath.Join(cfg.DataDir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("serve: data dir: %w", err)
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	for w := 0; w < cfg.Executors; w++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s, nil
}

// Serve binds addr (":0" picks a free port) and serves the job API in
// the background; Addr is valid once it returns.
func (s *Server) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	return nil
}

// Addr returns the bound listen address (host:port); only valid after
// Serve.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stop shuts the daemon down gracefully: in-flight jobs are
// interrupted, their merged prefix is written as a final checkpoint,
// and they are re-marked queued on disk so the next daemon over the
// same DataDir resumes them. Idempotent.
func (s *Server) Stop() { s.shutdown(false) }

// Kill simulates a crash: executors are abandoned mid-job with no
// final checkpoint and no state rewrite — only the periodic
// checkpoints already on disk survive. The soak suite uses it to prove
// recovery is byte-identical from arbitrary kill points.
func (s *Server) Kill() { s.shutdown(true) }

func (s *Server) shutdown(hard bool) {
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		return
	}
	s.stopping, s.hard = true, hard
	// Interrupt every running job.
	for _, j := range s.jobs {
		if j.state == StateRunning {
			j.cancelOnce.Do(func() { close(j.cancel) })
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
	if s.srv != nil {
		s.srv.Close()
	}
}

// Registry returns the service telemetry registry (per-job-labelled
// counters behind /metrics).
func (s *Server) Registry() *telemetry.Registry { return s.registry }

func (s *Server) logf(format string, args ...any) { s.cfg.Logf(format, args...) }

func (s *Server) jobDir(id string) string {
	return filepath.Join(s.cfg.DataDir, "jobs", id)
}

// persistedState is the state.json payload: the durable slice of job
// bookkeeping (everything else is derivable from spec.json and the
// checkpoint).
type persistedState struct {
	State JobState `json:"state"`
	Seq   uint64   `json:"seq"`
	Done  int      `json:"done"`
	Error string   `json:"error,omitempty"`
}

// stateWrite is a state.json snapshot taken under s.mu, tagged with a
// per-job version so writes applied after the lock is released can
// never go backwards.
type stateWrite struct {
	ver uint64
	ps  persistedState
}

// snapshotLocked captures the durable slice of the job's bookkeeping;
// s.mu must be held (or the server not yet concurrent, as in recover).
func (j *job) snapshotLocked() stateWrite {
	j.stateVer++
	return stateWrite{
		ver: j.stateVer,
		ps:  persistedState{State: j.state, Seq: j.seq, Done: j.done, Error: j.errMsg},
	}
}

// persistState atomically writes a snapshot taken by snapshotLocked.
// It must be called with s.mu released: the file I/O rides on the
// per-job stateMu instead, so a slow or full disk stalls only this
// job's state writer, never the HTTP handlers or the merge path. A
// snapshot older than the newest one persisted is dropped.
func (s *Server) persistState(j *job, sw stateWrite) {
	j.stateMu.Lock()
	defer j.stateMu.Unlock()
	if sw.ver <= j.wroteVer {
		return
	}
	j.wroteVer = sw.ver
	b, err := json.Marshal(sw.ps)
	if err != nil {
		s.logf("serve: marshal state %s: %v", j.spec.ID, err)
		return
	}
	b = append(b, '\n')
	dir := s.jobDir(j.spec.ID)
	tmp := filepath.Join(dir, "state.json.tmp")
	if err := os.WriteFile(tmp, b, 0o644); err == nil {
		err = os.Rename(tmp, filepath.Join(dir, "state.json"))
		if err != nil {
			s.logf("serve: persist state %s: %v", j.spec.ID, err)
		}
	} else {
		s.logf("serve: persist state %s: %v", j.spec.ID, err)
	}
}

// recover scans DataDir/jobs and rebuilds the in-memory job table: a
// terminal job is registered for inspection; a queued or running job —
// including one a crash left mid-flight — is re-enqueued and will
// resume from its newest intact checkpoint.
func (s *Server) recover() error {
	root := filepath.Join(s.cfg.DataDir, "jobs")
	entries, err := os.ReadDir(root)
	if err != nil {
		return fmt.Errorf("serve: scan jobs: %w", err)
	}
	var recovered []*job
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		// Only directories the daemon itself could have created are job
		// dirs; anything else (in particular names that are not a safe
		// path segment) is never trusted as a job id.
		if !ValidID(e.Name()) {
			s.logf("serve: skip job dir %q: invalid job id", e.Name())
			continue
		}
		dir := filepath.Join(root, e.Name())
		sb, err := os.ReadFile(filepath.Join(dir, "spec.json"))
		if err != nil {
			s.logf("serve: skip job dir %s: %v", e.Name(), err)
			continue
		}
		var spec Spec
		if err := json.Unmarshal(sb, &spec); err != nil {
			s.logf("serve: skip job dir %s: bad spec: %v", e.Name(), err)
			continue
		}
		spec.ID = e.Name()
		j := s.newJob(spec)
		j.state = StateQueued
		if pb, err := os.ReadFile(filepath.Join(dir, "state.json")); err == nil {
			var ps persistedState
			if err := json.Unmarshal(pb, &ps); err == nil {
				j.seq, j.done, j.errMsg = ps.Seq, ps.Done, ps.Error
				if ps.State.terminal() {
					j.state = ps.State
				}
			}
		}
		recovered = append(recovered, j)
	}
	// Preserve submission order for priority ties across restarts.
	sort.Slice(recovered, func(a, b int) bool { return recovered[a].seq < recovered[b].seq })
	for _, j := range recovered {
		if j.seq >= s.seq {
			s.seq = j.seq + 1
		}
		s.jobs[j.spec.ID] = j
		if !j.state.terminal() {
			j.state = StateQueued
			j.done = 0
			if cp, src := LoadCheckpoint(s.jobDir(j.spec.ID), j.spec.ID, j.hash); cp != nil {
				j.done = cp.Cursor
				if src != checkpointFile {
					s.logf("serve: job %s: current checkpoint corrupt, falling back to %s (cursor %d)",
						j.spec.ID, src, cp.Cursor)
				}
			}
			s.persistState(j, j.snapshotLocked())
			heap.Push(&s.pending, j)
			s.logf("serve: recovered job %s at run %d/%d", j.spec.ID, j.done, j.spec.Runs)
		}
	}
	return nil
}

// newJob builds the in-memory job for a validated spec. It assembles
// the program once to cache the name, so callers on the request path
// should invoke it before taking s.mu.
func (s *Server) newJob(spec Spec) *job {
	j := &job{
		spec:      spec,
		hash:      spec.Hash(),
		name:      spec.Name(),
		state:     StateQueued,
		heapIndex: -1,
	}
	j.resetRun()
	return j
}

// executor is one worker of the job pool: pop the highest-priority
// pending job, run it to a terminal state (or to an interruption),
// repeat until shutdown.
func (s *Server) executor() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.stopping && s.pending.Len() == 0 {
			s.cond.Wait()
		}
		if s.stopping {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.pending).(*job)
		j.state = StateRunning
		s.registry.Gauge("dsrserve_queue_depth", nil).Set(float64(s.pending.Len()))
		sw := j.snapshotLocked()
		s.mu.Unlock()
		s.persistState(j, sw)
		s.runJob(j)
	}
}

// runJob executes one job end to end: load the newest checkpoint,
// resume the campaign through the shared runner, checkpoint
// periodically from the merge hook, and persist the terminal
// artifacts. The runner's Interrupt is the job's cancel channel, which
// shutdown also closes — so cancellation, graceful stop and kill all
// ride the same cooperative stop.
func (s *Server) runJob(j *job) {
	dir := s.jobDir(j.spec.ID)
	var resume []Point
	if cp, src := LoadCheckpoint(dir, j.spec.ID, j.hash); cp != nil {
		resume = cp.Points
		if src != checkpointFile {
			s.logf("serve: job %s: resuming from fallback checkpoint %s (cursor %d)", j.spec.ID, src, cp.Cursor)
		} else {
			s.logf("serve: job %s: resuming at run %d/%d", j.spec.ID, cp.Cursor, j.spec.Runs)
		}
	}

	merged := s.registry.Counter("dsrserve_runs_merged_total", telemetry.Labels{"job": j.spec.ID})
	progress := s.registry.Gauge("dsrserve_job_runs_done", telemetry.Labels{"job": j.spec.ID})
	var pts []Point
	lastCkpt := len(resume)
	hooks := Hooks{
		Interrupt: j.cancel,
		Tracer:    j.tracer,
		Observer:  j.view,
		OnPoint: func(pt Point) {
			pts = append(pts, pt)
			merged.Inc()
			progress.Set(float64(len(pts)))
			s.mu.Lock()
			j.done = len(pts)
			s.mu.Unlock()
			if len(pts)-lastCkpt >= s.cfg.CheckpointEvery {
				if err := s.checkpoint(j, pts); err != nil {
					s.logf("serve: job %s: checkpoint: %v", j.spec.ID, err)
				} else {
					lastCkpt = len(pts)
				}
			}
		},
	}

	out, err := Run(j.spec, resume, hooks)

	s.mu.Lock()
	hard := s.hard
	stopping := s.stopping
	userCancel := j.userCancel
	s.mu.Unlock()

	switch {
	case err == nil:
		s.finishJob(j, out, StateDone, "")
	case out != nil:
		// Analysis-stage failure (e.g. i.i.d. gate): the campaign itself
		// completed, so persist the partial artifacts alongside the error.
		s.finishJob(j, out, StateFailed, err.Error())
	case errors.Is(err, campaign.ErrInterrupted):
		if hard {
			// Crash simulation: leave the disk exactly as the periodic
			// checkpoints left it.
			return
		}
		if stopping && !userCancel {
			// Graceful shutdown: final checkpoint, back to queued on disk
			// so the next daemon resumes where we stopped.
			if err := s.checkpoint(j, pts); err != nil {
				s.logf("serve: job %s: final checkpoint: %v", j.spec.ID, err)
			}
			s.mu.Lock()
			j.state = StateQueued
			sw := j.snapshotLocked()
			s.mu.Unlock()
			s.persistState(j, sw)
			s.logf("serve: job %s: suspended at run %d/%d", j.spec.ID, len(pts), j.spec.Runs)
			return
		}
		// Explicit cancellation. The view is captured under the lock: the
		// instant the state goes terminal a resubmission may swap in a
		// fresh view, and Done must land on the old one.
		s.mu.Lock()
		j.state = StateCancelled
		view := j.view
		sw := j.snapshotLocked()
		s.mu.Unlock()
		s.persistState(j, sw)
		view.Done()
		s.countTerminal(StateCancelled)
		s.logf("serve: job %s: cancelled at run %d/%d", j.spec.ID, len(pts), j.spec.Runs)
	default:
		s.mu.Lock()
		j.state = StateFailed
		j.errMsg = err.Error()
		view := j.view
		sw := j.snapshotLocked()
		s.mu.Unlock()
		s.persistState(j, sw)
		view.Done()
		s.countTerminal(StateFailed)
		s.logf("serve: job %s: failed: %v", j.spec.ID, err)
	}
}

// checkpoint snapshots the merged prefix.
func (s *Server) checkpoint(j *job, pts []Point) error {
	return WriteCheckpoint(s.jobDir(j.spec.ID), Checkpoint{
		Job: j.spec.ID, SpecHash: j.hash, Cursor: len(pts),
		Points: append([]Point(nil), pts...),
	})
}

// finishJob persists a completed campaign's artifacts — points.json,
// report.txt (the exact bytes dsrrun would print), telemetry.jsonl —
// and marks the job terminal.
func (s *Server) finishJob(j *job, out *Outcome, state JobState, errMsg string) {
	dir := s.jobDir(j.spec.ID)
	write := func(name string, b []byte) {
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			s.logf("serve: job %s: write %s: %v", j.spec.ID, name, err)
		}
	}
	pb, err := json.Marshal(out.Points)
	if err == nil {
		write("points.json", append(pb, '\n'))
	}
	write("report.txt", []byte(FormatReport(out)))
	write("telemetry.jsonl", out.Telemetry)

	s.mu.Lock()
	j.state = state
	j.done = len(out.Points)
	j.errMsg = errMsg
	view := j.view
	sw := j.snapshotLocked()
	s.mu.Unlock()
	s.persistState(j, sw)
	view.Done()
	s.countTerminal(state)
	s.logf("serve: job %s: %s (%d runs)", j.spec.ID, state, len(out.Points))
}

func (s *Server) countTerminal(state JobState) {
	s.registry.Counter("dsrserve_jobs_finished_total", telemetry.Labels{"state": string(state)}).Inc()
}

// Handler returns the job API:
//
//	POST   /jobs               submit (202; 200 idempotent; 409 id
//	                           conflict; 400 invalid; 429 queue full)
//	GET    /jobs               list job statuses
//	GET    /jobs/{id}          job status
//	DELETE /jobs/{id}          cancel (also POST /jobs/{id}/cancel)
//	GET    /jobs/{id}/events   SSE live stream (obs fan-out)
//	GET    /jobs/{id}/report   rendered report (terminal jobs)
//	GET    /jobs/{id}/telemetry  telemetry JSONL (terminal jobs)
//	GET    /jobs/{id}/points   merged points JSON (terminal jobs)
//	GET    /metrics            Prometheus exposition, per-job labels
//	GET    /healthz            liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/report", s.handleArtifact("report.txt", "text/plain; charset=utf-8"))
	mux.HandleFunc("GET /jobs/{id}/telemetry", s.handleArtifact("telemetry.jsonl", "application/jsonl"))
	mux.HandleFunc("GET /jobs/{id}/points", s.handleArtifact("points.json", "application/json"))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v) //nolint:errcheck // client gone
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := spec.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	hash := (&spec).Hash()
	// Off-lock preparation: building the job assembles the program (to
	// cache its name), and a resubmission's checkpoint cursor is read
	// from disk — neither belongs under s.mu. The cursor is what a
	// re-enqueued job reports as done until the executor starts
	// replaying; on a fresh submission no checkpoint exists and it is 0.
	j := s.newJob(spec)
	cursor := 0
	if spec.ID != "" {
		if cp, _ := LoadCheckpoint(s.jobDir(spec.ID), spec.ID, hash); cp != nil {
			cursor = cp.Cursor
		}
	}

	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	if spec.ID != "" {
		if existing, ok := s.jobs[spec.ID]; ok {
			if existing.hash != hash {
				st := existing.status()
				s.mu.Unlock()
				writeJSON(w, http.StatusConflict, st)
				return
			}
			// Idempotent resubmission. A cancelled or failed job is
			// re-enqueued (resuming from any checkpoint it left — still
			// byte-identical); anything else just reports its status.
			if existing.state == StateCancelled || existing.state == StateFailed {
				s.enqueueAndRespond(w, existing, cursor, http.StatusAccepted)
				return
			}
			st := existing.status()
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, st)
			return
		}
	} else {
		for {
			id := fmt.Sprintf("job-%d", s.seq)
			s.seq++
			if _, ok := s.jobs[id]; !ok {
				j.spec.ID = id
				break
			}
		}
	}
	if s.pending.Len() >= s.cfg.QueueCap {
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "queue full", http.StatusTooManyRequests)
		return
	}

	dir := s.jobDir(j.spec.ID)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.mu.Unlock()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	sb, err := json.Marshal(j.spec)
	if err == nil {
		err = os.WriteFile(filepath.Join(dir, "spec.json"), append(sb, '\n'), 0o644)
	}
	if err != nil {
		s.mu.Unlock()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.jobs[j.spec.ID] = j
	s.registry.Counter("dsrserve_jobs_submitted_total", nil).Inc()
	s.enqueueAndRespond(w, j, cursor, http.StatusAccepted)
}

// enqueueAndRespond queues the job (s.mu held on entry), releases the
// lock, persists the queued state off-lock and answers the request.
func (s *Server) enqueueAndRespond(w http.ResponseWriter, j *job, cursor, code int) {
	st, sw, ok := s.enqueueLocked(j, cursor)
	s.mu.Unlock()
	if !ok {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "queue full", http.StatusTooManyRequests)
		return
	}
	s.persistState(j, sw)
	writeJSON(w, code, st)
}

// enqueueLocked (re-)queues a job; s.mu must be held. Re-enqueued jobs
// get a fresh seq (they queue behind current submissions) and, via
// resetRun, a fresh cancel channel, tracer and live view — SSE clients
// of the re-run must not inherit the previous attempt's terminal
// stream. done (and its gauge) is reset to the checkpoint cursor the
// resumed run will replay. Returns the status for the response and the
// state snapshot the caller persists after releasing s.mu; ok=false
// means the queue is full.
func (s *Server) enqueueLocked(j *job, cursor int) (st JobStatus, sw stateWrite, ok bool) {
	if s.pending.Len() >= s.cfg.QueueCap {
		return JobStatus{}, stateWrite{}, false
	}
	j.state = StateQueued
	j.errMsg = ""
	j.done = cursor
	j.seq = s.seq
	s.seq++
	j.resetRun()
	s.registry.Gauge("dsrserve_job_runs_done", telemetry.Labels{"job": j.spec.ID}).Set(float64(cursor))
	heap.Push(&s.pending, j)
	s.registry.Gauge("dsrserve_queue_depth", nil).Set(float64(s.pending.Len()))
	s.cond.Signal()
	return j.status(), j.snapshotLocked(), true
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	list := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		list = append(list, j)
	}
	sort.Slice(list, func(a, b int) bool { return list[a].seq < list[b].seq })
	statuses := make([]JobStatus, len(list))
	for i, j := range list {
		statuses[i] = j.status()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, statuses)
}

// lookup resolves {id}, answering 404 itself when absent.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		http.Error(w, "no such job", http.StatusNotFound)
	}
	return j
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	st := j.status()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleCancel cancels a job: a queued job is removed from the heap
// immediately; a running one gets its interrupt closed and drains
// cooperatively. Cancelling a terminal job is a no-op (200 with the
// terminal status), so cancellation is idempotent.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	s.mu.Lock()
	var sw stateWrite
	var view *obs.Campaign
	switch j.state {
	case StateQueued:
		if j.heapIndex >= 0 {
			heap.Remove(&s.pending, j.heapIndex)
			s.registry.Gauge("dsrserve_queue_depth", nil).Set(float64(s.pending.Len()))
		}
		j.state = StateCancelled
		sw = j.snapshotLocked()
		view = j.view
		s.countTerminalLockedOK(StateCancelled)
	case StateRunning:
		j.userCancel = true
		j.cancelOnce.Do(func() { close(j.cancel) })
	}
	st := j.status()
	s.mu.Unlock()
	if view != nil {
		s.persistState(j, sw)
		view.Done()
	}
	writeJSON(w, http.StatusOK, st)
}

// countTerminalLockedOK is countTerminal for call sites already under
// s.mu (the registry takes only its own locks, so this is safe; the
// name just documents the intent).
func (s *Server) countTerminalLockedOK(state JobState) {
	s.registry.Counter("dsrserve_jobs_finished_total", telemetry.Labels{"state": string(state)}).Inc()
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	// The view is read under s.mu: a resubmission swaps in a fresh one.
	s.mu.Lock()
	view := j.view
	s.mu.Unlock()
	obs.ServeEvents(view, w, r)
}

// handleArtifact serves a terminal artifact file from the job dir; 404
// until the executor has written it.
func (s *Server) handleArtifact(name, contentType string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j := s.lookup(w, r)
		if j == nil {
			return
		}
		b, err := os.ReadFile(filepath.Join(s.jobDir(j.spec.ID), name))
		if err != nil {
			http.Error(w, "artifact not available", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", contentType)
		w.Header().Set("Content-Length", strconv.Itoa(len(b)))
		w.Write(b) //nolint:errcheck // client gone
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	d := &telemetry.Dump{Metrics: s.registry.Snapshot()}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := d.WritePrometheus(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
