package serve

import (
	"os"
	"path/filepath"
	"testing"

	"dsr/internal/mem"
)

func testCheckpoint(n int) Checkpoint {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{Index: i, Seed: uint64(i) * 7, Cycles: mem.Cycles(1000 + i)}
	}
	return Checkpoint{Job: "j1", SpecHash: "h1", Cursor: n, Points: pts}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(dir, testCheckpoint(10)); err != nil {
		t.Fatal(err)
	}
	cp, src := LoadCheckpoint(dir, "j1", "h1")
	if cp == nil {
		t.Fatal("no checkpoint loaded")
	}
	if src != checkpointFile {
		t.Fatalf("loaded from %s, want %s", src, checkpointFile)
	}
	if cp.Cursor != 10 || len(cp.Points) != 10 {
		t.Fatalf("cursor=%d points=%d, want 10/10", cp.Cursor, len(cp.Points))
	}
	for i, pt := range cp.Points {
		if pt.Index != i || pt.Seed != uint64(i)*7 {
			t.Fatalf("point %d round-tripped as %+v", i, pt)
		}
	}
}

// TestCheckpointRotation: each write rotates the previous snapshot to
// the .prev name, so two generations are always on disk.
func TestCheckpointRotation(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(dir, testCheckpoint(5)); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(dir, testCheckpoint(9)); err != nil {
		t.Fatal(err)
	}
	cp, _ := LoadCheckpoint(dir, "j1", "h1")
	if cp == nil || cp.Cursor != 9 {
		t.Fatalf("current checkpoint = %+v, want cursor 9", cp)
	}
	// Remove the current file: the rotation must hold the older one.
	if err := os.Remove(filepath.Join(dir, checkpointFile)); err != nil {
		t.Fatal(err)
	}
	cp, src := LoadCheckpoint(dir, "j1", "h1")
	if cp == nil || cp.Cursor != 5 {
		t.Fatalf("fallback checkpoint = %+v, want cursor 5", cp)
	}
	if src != checkpointPrev {
		t.Fatalf("fallback loaded from %s, want %s", src, checkpointPrev)
	}
}

// TestCheckpointTruncated: a snapshot cut short mid-write (simulated
// crash) fails to load and the loader falls back to the previous
// rotation.
func TestCheckpointTruncated(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(dir, testCheckpoint(5)); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(dir, testCheckpoint(9)); err != nil {
		t.Fatal(err)
	}
	cur := filepath.Join(dir, checkpointFile)
	b, err := os.ReadFile(cur)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cur, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	cp, src := LoadCheckpoint(dir, "j1", "h1")
	if cp == nil || cp.Cursor != 5 {
		t.Fatalf("after truncation loaded %+v from %q, want cursor 5 from prev", cp, src)
	}
	if src != checkpointPrev {
		t.Fatalf("loaded from %s, want %s", src, checkpointPrev)
	}
}

// TestCheckpointBitFlip: a single flipped bit inside the points payload
// keeps the JSON well-formed but must be caught by the checksum.
func TestCheckpointBitFlip(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(dir, testCheckpoint(5)); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(dir, testCheckpoint(9)); err != nil {
		t.Fatal(err)
	}
	cur := filepath.Join(dir, checkpointFile)
	b, err := os.ReadFile(cur)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a digit inside a cycle count: still valid JSON, wrong data.
	flipped := false
	for i := range b {
		if b[i] == '1' {
			b[i] = '2'
			flipped = true
			break
		}
	}
	if !flipped {
		t.Fatal("no digit to flip")
	}
	if err := os.WriteFile(cur, b, 0o644); err != nil {
		t.Fatal(err)
	}
	cp, src := LoadCheckpoint(dir, "j1", "h1")
	if cp == nil || cp.Cursor != 5 {
		t.Fatalf("after bit flip loaded %+v from %q, want cursor 5 from prev", cp, src)
	}
}

// TestCheckpointBothCorrupt: when every generation is damaged the
// loader reports none — a corrupt snapshot is never trusted, the job
// restarts from scratch.
func TestCheckpointBothCorrupt(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(dir, testCheckpoint(5)); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(dir, testCheckpoint(9)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{checkpointFile, checkpointPrev} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{broken"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if cp, src := LoadCheckpoint(dir, "j1", "h1"); cp != nil {
		t.Fatalf("loaded corrupt checkpoint %+v from %q", cp, src)
	}
}

// TestCheckpointOwnership: snapshots from another job or another spec
// revision are rejected even when structurally intact.
func TestCheckpointOwnership(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(dir, testCheckpoint(5)); err != nil {
		t.Fatal(err)
	}
	if cp, _ := LoadCheckpoint(dir, "other-job", "h1"); cp != nil {
		t.Fatal("checkpoint crossed job identity")
	}
	if cp, _ := LoadCheckpoint(dir, "j1", "other-hash"); cp != nil {
		t.Fatal("checkpoint crossed spec hash")
	}
}

// TestCheckpointBadPrefix: a snapshot whose cursor or index sequence
// disagrees with its points is corrupt regardless of its checksum
// (defense against a buggy writer, not just disk damage).
func TestCheckpointBadPrefix(t *testing.T) {
	dir := t.TempDir()
	cp := testCheckpoint(5)
	cp.Cursor = 4
	if err := WriteCheckpoint(dir, cp); err != nil {
		t.Fatal(err)
	}
	if got, _ := LoadCheckpoint(dir, "j1", "h1"); got != nil {
		t.Fatal("loaded checkpoint with cursor/points mismatch")
	}

	cp = testCheckpoint(5)
	cp.Points[3].Index = 7
	dir2 := t.TempDir()
	if err := WriteCheckpoint(dir2, cp); err != nil {
		t.Fatal(err)
	}
	if got, _ := LoadCheckpoint(dir2, "j1", "h1"); got != nil {
		t.Fatal("loaded checkpoint with non-contiguous points")
	}
}
