package serve

import (
	"bufio"
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestServeSmoke is the end-to-end service gate behind `make
// serve-smoke`: it builds the real dsrserve and dsrrun binaries, runs
// the daemon as a separate process, and drives three jobs through it —
// one plain, one cancelled and resubmitted, one interrupted by
// SIGKILL-ing the daemon and finished by a restarted daemon — checking
// every report byte-identical to a local dsrrun invocation, and
// finally shutting the daemon down cleanly with SIGTERM. Gated behind
// SERVE_SMOKE_OUT (the artifact directory, absolute); the service log
// lands there for CI upload.
func TestServeSmoke(t *testing.T) {
	outDir := os.Getenv("SERVE_SMOKE_OUT")
	if outDir == "" {
		t.Skip("smoke test: set SERVE_SMOKE_OUT to an artifact directory to run")
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		t.Fatal(err)
	}
	binDir := t.TempDir()
	for _, cmd := range []string{"dsrserve", "dsrrun"} {
		build := exec.Command("go", "build", "-o", filepath.Join(binDir, cmd), "dsr/cmd/"+cmd)
		build.Dir = filepath.Join("..", "..")
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", cmd, err, out)
		}
	}
	dsrserve := filepath.Join(binDir, "dsrserve")
	dsrrun := filepath.Join(binDir, "dsrrun")
	prog := filepath.Join("..", "asm", "testdata", "uoa.s")
	dataDir := filepath.Join(outDir, "data")
	logPath := filepath.Join(outDir, "dsrserve.log")

	logFile, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer logFile.Close()

	// startDaemon launches dsrserve over dataDir and parses the bound
	// address off its stdout.
	startDaemon := func() (*exec.Cmd, string) {
		t.Helper()
		cmd := exec.Command(dsrserve, "-addr", "127.0.0.1:0", "-data", dataDir, "-executors", "2")
		cmd.Stderr = logFile
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("start dsrserve: %v", err)
		}
		sc := bufio.NewScanner(stdout)
		if !sc.Scan() {
			t.Fatalf("dsrserve produced no startup line")
		}
		line := sc.Text()
		i := strings.Index(line, "http://")
		if i < 0 {
			t.Fatalf("unexpected startup line %q", line)
		}
		go func() { // drain any further stdout
			for sc.Scan() {
			}
		}()
		return cmd, strings.TrimSpace(line[i:])
	}

	// localReport runs dsrrun's local campaign path and returns stdout.
	localReport := func(args ...string) []byte {
		t.Helper()
		cmd := exec.Command(dsrrun, append(args, prog)...)
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("dsrrun %v: %v\n%s", args, err, stderr.String())
		}
		return stdout.Bytes()
	}

	daemon, base := startDaemon()
	cl := &Client{Base: base}

	// Job 1 — plain: submitted through dsrrun's own -submit mode; its
	// stdout must equal the local CLI run byte for byte.
	refPlain := localReport("-dsr", "-runs", "2000", "-seed", "42", "-workers", "4")
	gotPlain := localReport("-dsr", "-runs", "2000", "-seed", "42", "-workers", "4",
		"-submit", base, "-job", "smoke-plain")
	if !bytes.Equal(refPlain, gotPlain) {
		t.Errorf("submitted report differs from local CLI report:\n--- local\n%s--- submitted\n%s", refPlain, gotPlain)
	}

	// Job 2 — cancelled mid-flight, then resubmitted to completion.
	specCancel := testSpec(t, "smoke-cancel", 12000, 2, 1)
	if _, err := cl.Submit(specCancel); err != nil {
		t.Fatalf("submit smoke-cancel: %v", err)
	}
	waitProgress(t, cl, "smoke-cancel", 200)
	if _, err := cl.Cancel("smoke-cancel"); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	if st := waitTerminal(t, cl, "smoke-cancel"); st.State != StateCancelled {
		t.Fatalf("smoke-cancel ended %s", st.State)
	}
	if _, err := cl.Submit(specCancel); err != nil {
		t.Fatalf("resubmit smoke-cancel: %v", err)
	}

	// Job 3 — interrupted by killing the daemon process outright.
	specKill := testSpec(t, "smoke-kill", 12000, 2, 2)
	if _, err := cl.Submit(specKill); err != nil {
		t.Fatalf("submit smoke-kill: %v", err)
	}
	waitProgress(t, cl, "smoke-kill", 500)
	if err := daemon.Process.Kill(); err != nil {
		t.Fatalf("kill daemon: %v", err)
	}
	daemon.Wait() //nolint:errcheck // killed on purpose

	// Restart over the same data dir: both interrupted jobs must drain
	// to done with reports byte-identical to the local CLI.
	daemon, base = startDaemon()
	cl = &Client{Base: base}
	refCancel := localReport("-dsr", "-runs", "12000", "-seed", "1", "-telemetry")
	refKill := localReport("-dsr", "-runs", "12000", "-seed", "2", "-telemetry")
	for id, want := range map[string][]byte{"smoke-cancel": refCancel, "smoke-kill": refKill} {
		if st := waitTerminal(t, cl, id); st.State != StateDone {
			t.Fatalf("%s ended %s: %s", id, st.State, st.Error)
		}
		got, err := cl.Report(id)
		if err != nil {
			t.Fatalf("report %s: %v", id, err)
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s report differs from local CLI report:\n--- local\n%s--- service\n%s", id, want, got)
		}
	}

	// Clean shutdown: SIGTERM, zero exit.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signal daemon: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- daemon.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited uncleanly on SIGTERM: %v", err)
		}
	case <-time.After(30 * time.Second):
		daemon.Process.Kill() //nolint:errcheck // cleanup
		t.Fatal("daemon did not exit within 30s of SIGTERM")
	}
}
