// Package serve is the campaign-as-a-service layer: a long-running
// daemon (cmd/dsrserve) wrapping the parallel campaign engine behind
// an HTTP/JSON job API — submit a program plus a campaign
// configuration, get a job id; stream live MBPTA progress over SSE;
// scrape per-job metrics; cancel; and survive crashes through
// checksummed, atomically written checkpoints that resume
// byte-identically.
//
// The package's hard invariant — inherited from the campaign engine
// and proven by the service determinism suite — is that the execution
// path is unobservable in the output: a job's results, MBPTA stream,
// telemetry JSONL and rendered report are byte-identical to the
// equivalent dsrrun CLI invocation at any worker count, across
// cancel/resubmit, mid-flight checkpoint/restore, and concurrent jobs.
// The CLI and the service literally share the runner (Run/FormatReport
// in this package), so the invariant is structural, not coincidental.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"dsr/internal/analysis"
	"dsr/internal/asm"
	"dsr/internal/core"
	"dsr/internal/mbpta"
	"dsr/internal/platform"
)

// Spec is one campaign job: the program to measure plus the campaign
// dimensions. It is the wire format of POST /jobs and the persisted
// spec.json of a job directory. Everything a run produces is a pure
// function of this struct, which is what makes jobs checkpointable,
// resumable and byte-reproducible.
type Spec struct {
	// ID is the client-chosen job id (also the idempotency key: a
	// resubmission with the same id and an identical spec returns the
	// existing job instead of enqueuing a duplicate). The server
	// assigns a sequential id when empty.
	ID string `json:"id,omitempty"`
	// Source is the program in the simulator's assembly syntax.
	Source string `json:"source"`
	// Runs is the campaign size.
	Runs int `json:"runs"`
	// Seed is the base layout seed of the splittable per-run schedule.
	Seed uint64 `json:"seed"`
	// Workers is the campaign worker-pool size (0 = one per CPU,
	// 1 = sequential); output is identical for every value.
	Workers int `json:"workers,omitempty"`
	// Priority orders the job queue: higher runs sooner; ties run in
	// submission order.
	Priority int `json:"priority,omitempty"`
	// BlockSize overrides the MBPTA block size (0 selects the same
	// runs-derived default the dsrrun CLI uses).
	BlockSize int `json:"block_size,omitempty"`
	// Attribution enables the cycle-attribution profiler; the rendered
	// report then includes the per-component split.
	Attribution bool `json:"attribution,omitempty"`
}

// ValidID reports whether id is acceptable as a job id: a single safe
// path segment of at most 64 bytes drawn from [A-Za-z0-9._-], and not
// "." or "..". The job id becomes a directory name under
// DataDir/jobs/, so anything else — separators, traversal dots, empty
// segments — must be rejected before it ever reaches the filesystem.
func ValidID(id string) bool {
	if id == "" || len(id) > 64 || id == "." || id == ".." {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// Validate checks the job id and campaign dimensions, assembles the
// program and verifies the DSR transform — the same gate dsrrun
// applies before measuring anything. A spec that validates will
// execute (modulo analysis-stage errors such as an i.i.d. rejection).
func (s *Spec) Validate() error {
	if s.ID != "" && !ValidID(s.ID) {
		return fmt.Errorf("serve: job id %q is not a safe path segment (want [A-Za-z0-9._-]{1,64}, not %q or %q)", s.ID, ".", "..")
	}
	if s.Runs <= 0 {
		return fmt.Errorf("serve: runs must be positive, got %d", s.Runs)
	}
	if s.Runs < 4*s.MBPTAOptions().BlockSize {
		return fmt.Errorf("serve: %d runs too few for MBPTA block size %d", s.Runs, s.MBPTAOptions().BlockSize)
	}
	p, err := asm.Assemble(s.Source)
	if err != nil {
		return fmt.Errorf("serve: assemble: %w", err)
	}
	plat := platform.New(platform.ProximaLEON3())
	rt, err := core.NewRuntime(p, plat, core.Options{})
	if err != nil {
		return fmt.Errorf("serve: dsr runtime: %w", err)
	}
	diags := analysis.VerifyTransform(p, rt.Program(), analysis.TransformInfo{
		FTableSym: core.FTableSym, OffsetsSym: core.OffsetsSym,
		Funcs: rt.Metadata().Funcs,
	})
	if analysis.HasErrors(diags) {
		return fmt.Errorf("serve: DSR transform verification failed: %v", analysis.Errors(diags)[0])
	}
	return nil
}

// MBPTAOptions resolves the analysis options exactly as the dsrrun CLI
// does: the default block size, shrunk (floor 5) when the campaign is
// too small to yield ten block maxima.
func (s *Spec) MBPTAOptions() mbpta.Options {
	opts := mbpta.DefaultOptions()
	if s.BlockSize > 0 {
		opts.BlockSize = s.BlockSize
		return opts
	}
	if s.Runs/opts.BlockSize < 10 {
		opts.BlockSize = s.Runs / 10
		if opts.BlockSize < 5 {
			opts.BlockSize = 5
		}
	}
	return opts
}

// Name returns the program name (from the .program directive), used as
// the series label; jobs that fail to assemble report their id.
func (s *Spec) Name() string {
	p, err := asm.Assemble(s.Source)
	if err != nil {
		return s.ID
	}
	return p.Name
}

// Hash is the canonical content hash of the spec minus its id: two
// submissions measure the same campaign exactly when their hashes
// agree. Checkpoints embed it so a resumed job can prove the snapshot
// belongs to this spec.
func (s *Spec) Hash() string {
	c := *s
	c.ID = ""
	b, err := json.Marshal(c)
	if err != nil {
		// Spec is a plain data struct; Marshal cannot fail on it.
		panic(fmt.Sprintf("serve: marshal spec: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
