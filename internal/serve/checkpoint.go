package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Checkpoint file names inside a job directory. The current snapshot
// is rotated to the .prev name before each replacement, so a crash at
// any instant leaves at least one intact, checksummed snapshot on
// disk.
const (
	checkpointFile = "checkpoint.json"
	checkpointPrev = "checkpoint.prev.json"
)

// Checkpoint is a persisted campaign prefix: the merged points in
// canonical order plus the seed-schedule cursor (the next index to
// execute). Because each run is a pure function of (Spec, index), a
// job resumed from any checkpoint finishes with byte-identical
// results, telemetry and report.
type Checkpoint struct {
	// Job is the owning job id.
	Job string `json:"job"`
	// SpecHash binds the snapshot to the exact spec it was taken under;
	// a snapshot from a different spec is treated as corrupt.
	SpecHash string `json:"spec_hash"`
	// Cursor is the resume index: Points[0:Cursor] are merged, the
	// engine restarts at First=Cursor.
	Cursor int `json:"cursor"`
	// Points is the merged canonical prefix.
	Points []Point `json:"points"`
	// Sum is the hex sha256 of the checkpoint JSON with Sum itself
	// cleared; a truncated or bit-flipped snapshot fails verification
	// and the loader falls back to the previous rotation.
	Sum string `json:"sum"`
}

// sum computes the canonical payload checksum.
func (c *Checkpoint) sum() string {
	cp := *c
	cp.Sum = ""
	b, err := json.Marshal(cp)
	if err != nil {
		// Checkpoint is a plain data struct; Marshal cannot fail on it.
		panic(fmt.Sprintf("serve: marshal checkpoint: %v", err))
	}
	s := sha256.Sum256(b)
	return hex.EncodeToString(s[:])
}

// verify checks integrity (checksum) and consistency (ownership,
// cursor/prefix agreement) of a loaded snapshot.
func (c *Checkpoint) verify(job, specHash string) error {
	if c.Sum != c.sum() {
		return fmt.Errorf("serve: checkpoint checksum mismatch")
	}
	if c.Job != job {
		return fmt.Errorf("serve: checkpoint belongs to job %q, not %q", c.Job, job)
	}
	if c.SpecHash != specHash {
		return fmt.Errorf("serve: checkpoint spec hash mismatch")
	}
	if c.Cursor != len(c.Points) {
		return fmt.Errorf("serve: checkpoint cursor %d disagrees with %d points", c.Cursor, len(c.Points))
	}
	for k, pt := range c.Points {
		if pt.Index != k {
			return fmt.Errorf("serve: checkpoint prefix not contiguous at %d", k)
		}
	}
	return nil
}

// WriteCheckpoint atomically persists a snapshot into dir: the payload
// is checksummed, written to a temporary file and renamed over the
// current checkpoint, which is first rotated to the .prev name. The
// job directory therefore always holds a loadable snapshot, whatever
// instant the process dies at.
func WriteCheckpoint(dir string, c Checkpoint) error {
	c.Sum = c.sum()
	b, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("serve: marshal checkpoint: %w", err)
	}
	b = append(b, '\n')
	tmp := filepath.Join(dir, checkpointFile+".tmp")
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return fmt.Errorf("serve: write checkpoint: %w", err)
	}
	cur := filepath.Join(dir, checkpointFile)
	if _, err := os.Stat(cur); err == nil {
		if err := os.Rename(cur, filepath.Join(dir, checkpointPrev)); err != nil {
			return fmt.Errorf("serve: rotate checkpoint: %w", err)
		}
	}
	if err := os.Rename(tmp, cur); err != nil {
		return fmt.Errorf("serve: commit checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint returns the newest intact snapshot for the job, or
// (nil, "") when none survives: the current checkpoint if it verifies,
// else the previous rotation, else nothing — a corrupt file is never
// trusted, and the caller restarts from scratch rather than resuming
// from damaged state. The second result names the file the snapshot
// came from, so callers can log fallbacks.
func LoadCheckpoint(dir, job, specHash string) (*Checkpoint, string) {
	for _, name := range []string{checkpointFile, checkpointPrev} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		var c Checkpoint
		if err := json.Unmarshal(b, &c); err != nil {
			continue
		}
		if err := c.verify(job, specHash); err != nil {
			continue
		}
		return &c, name
	}
	return nil, ""
}
