package serve

// jobQueue is the pending-job priority queue (container/heap): higher
// Priority pops first, ties pop in submission order. It is always
// manipulated under the server mutex; heapIndex lets a queued job be
// removed in O(log n) on cancellation.
type jobQueue []*job

func (q jobQueue) Len() int { return len(q) }

func (q jobQueue) Less(i, j int) bool {
	if q[i].spec.Priority != q[j].spec.Priority {
		return q[i].spec.Priority > q[j].spec.Priority
	}
	return q[i].seq < q[j].seq
}

func (q jobQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].heapIndex = i
	q[j].heapIndex = j
}

func (q *jobQueue) Push(x any) {
	j := x.(*job)
	j.heapIndex = len(*q)
	*q = append(*q, j)
}

func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIndex = -1
	*q = old[:n-1]
	return j
}
