package serve

import (
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"dsr/internal/campaign/determtest"
)

// TestServeSoakKillRestart is the service soak suite: N concurrent
// jobs, repeated random daemon kills (hard, no graceful checkpoint)
// and restarts over the same data directory, finishing with every job
// done, none lost, none duplicated, and every output surface
// byte-identical to the CLI path. Gated behind SERVE_SOAK=1 (the
// serve-smoke CI job runs it); takes on the order of ten seconds.
func TestServeSoakKillRestart(t *testing.T) {
	if os.Getenv("SERVE_SOAK") == "" {
		t.Skip("soak test: set SERVE_SOAK=1 to run")
	}
	const (
		jobs     = 6
		runs     = 12000
		minKills = 20
	)
	// Deterministic kill schedule: the soak is reproducible run to run.
	rng := rand.New(rand.NewSource(7))

	refs := make([]determtest.Output, jobs)
	var wg sync.WaitGroup
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			refs[i] = refOutput(t, testSpec(t, "", runs, 1, uint64(1+i)))
		}(i)
	}
	wg.Wait()

	dir := t.TempDir()
	cfg := Config{Executors: 2, QueueCap: 16, CheckpointEvery: 500, Logf: t.Logf}
	s, ts, cl := startServer(t, dir, cfg)
	ids := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		spec := testSpec(t, "", runs, 1+i%4, uint64(1+i))
		spec.ID = "soak-" + string(rune('a'+i))
		spec.Priority = i % 3
		if _, err := cl.Submit(spec); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids[i] = spec.ID
	}

	kills := 0
	for kills < minKills {
		time.Sleep(time.Duration(30+rng.Intn(120)) * time.Millisecond)
		s.Kill()
		ts.Close()
		kills++
		s, ts, cl = startServer(t, dir, cfg)
	}
	t.Logf("soak: %d kills survived, draining", kills)
	defer ts.Close()
	defer s.Stop()

	for i, id := range ids {
		fin := waitTerminal(t, cl, id)
		if fin.State != StateDone {
			t.Fatalf("job %s ended %s after %d kills: %s", id, fin.State, kills, fin.Error)
		}
		if fin.Done != runs {
			t.Fatalf("job %s done=%d, want %d", id, fin.Done, runs)
		}
		// Byte-identity against the CLI reference implies zero lost and
		// zero duplicated runs: the reference points are exactly the
		// contiguous canonical sequence 0..runs-1.
		determtest.Check(t, "soak job "+id+" vs CLI", refs[i], jobOutput(t, cl, id))
	}
}
