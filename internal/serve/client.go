package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Client is a minimal dsrserve API client: it is what cmd/dsrrun's
// -submit mode and the serve-smoke gate speak.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client
}

// StatusError is a non-2xx API response.
type StatusError struct {
	Code int
	Body string
	// RetryAfter is the parsed Retry-After header in seconds (0 when
	// absent); set on 429 backpressure responses.
	RetryAfter int
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: server returned %d: %s", e.Code, e.Body)
}

func (c *Client) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do runs one request and decodes a 2xx JSON body into out (when
// non-nil); non-2xx responses become *StatusError.
func (c *Client) do(method, path string, body io.Reader, out any) error {
	req, err := http.NewRequest(method, c.Base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		se := &StatusError{Code: resp.StatusCode, Body: string(bytes.TrimSpace(b))}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			se.RetryAfter, _ = strconv.Atoi(ra)
		}
		return se
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(b, out)
}

// Submit enqueues a job. 429 backpressure surfaces as a *StatusError
// with RetryAfter set; the caller decides whether to back off.
func (c *Client) Submit(spec Spec) (JobStatus, error) {
	b, err := json.Marshal(spec)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	err = c.do(http.MethodPost, "/jobs", bytes.NewReader(b), &st)
	return st, err
}

// Status fetches a job's current status.
func (c *Client) Status(id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(http.MethodGet, "/jobs/"+id, nil, &st)
	return st, err
}

// Cancel cancels a job (idempotent).
func (c *Client) Cancel(id string) (JobStatus, error) {
	var st JobStatus
	err := c.do(http.MethodDelete, "/jobs/"+id, nil, &st)
	return st, err
}

// Wait polls until the job reaches a terminal state.
func (c *Client) Wait(id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		st, err := c.Status(id)
		if err != nil {
			return st, err
		}
		if st.State.terminal() {
			return st, nil
		}
		time.Sleep(poll)
	}
}

// artifact fetches a terminal artifact's raw bytes.
func (c *Client) artifact(id, name string) ([]byte, error) {
	req, err := http.NewRequest(http.MethodGet, c.Base+"/jobs/"+id+"/"+name, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{Code: resp.StatusCode, Body: string(bytes.TrimSpace(b))}
	}
	return b, nil
}

// Report fetches the rendered report — the exact bytes the equivalent
// dsrrun invocation prints.
func (c *Client) Report(id string) ([]byte, error) { return c.artifact(id, "report") }

// Telemetry fetches the job's telemetry JSONL dump.
func (c *Client) Telemetry(id string) ([]byte, error) { return c.artifact(id, "telemetry") }

// Points fetches the merged canonical points.
func (c *Client) Points(id string) ([]Point, error) {
	b, err := c.artifact(id, "points")
	if err != nil {
		return nil, err
	}
	var pts []Point
	if err := json.Unmarshal(b, &pts); err != nil {
		return nil, err
	}
	return pts, nil
}
